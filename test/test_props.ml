(* Property-based tests (qcheck): random production sets and random
   working-memory histories must satisfy the matcher's invariants, on
   every engine. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine

(* --- generators -------------------------------------------------------- *)

let colors = [ "red"; "blue"; "green" ]
let names = [ "a"; "b"; "c"; "d" ]

(* A random production over the blocks schema: 1-3 positive CEs with a
   mix of constant, variable and predicate tests, optionally a negated
   CE, RHS is a write. Always valid by construction. *)
let gen_production =
  let open QCheck.Gen in
  let gen_const_test =
    oneof
      [
        map (fun c -> ("color", Printf.sprintf "%s" c)) (oneofl colors);
        map (fun n -> ("name", n)) (oneofl names);
        map (fun i -> ("state", string_of_int i)) (int_bound 2);
      ]
  in
  let ce_src ~var i =
    let* consts = list_size (int_bound 1) gen_const_test in
    let const_str =
      String.concat " " (List.map (fun (a, v) -> Printf.sprintf "^%s %s" a v) consts)
    in
    (* bind a variable on name so later CEs can join, in half the CEs *)
    let* with_var = bool in
    let var_str =
      if with_var || i = 0 then Printf.sprintf "^on <%s>" var else ""
    in
    return (Printf.sprintf "(block %s %s)" const_str var_str)
  in
  let* n_ces = int_range 1 3 in
  let* ces = List.init n_ces (fun i -> ce_src ~var:"x" i) |> flatten_l in
  let* neg = bool in
  let neg_src = if neg then "-(block ^on <x> ^color green)" else "" in
  let* id = int_bound 10_000_000 in
  return
    (Printf.sprintf "(p rnd-%d %s %s --> (write ok))" id (String.concat " " ces)
       neg_src)

let arb_productions =
  QCheck.make
    ~print:(fun l -> String.concat "\n" l)
    QCheck.Gen.(list_size (int_range 1 4) gen_production)

(* A random history: batches of adds/deletes of block wmes; deletes only
   target wmes from earlier batches. *)
type op =
  | Add_block of string * string * int
  | Del of int  (** index into previously added wmes *)

let gen_history =
  let open QCheck.Gen in
  let gen_op =
    frequency
      [
        ( 4,
          let* n = oneofl names in
          let* c = oneofl colors in
          let* s = int_bound 2 in
          return (Add_block (n, c, s)) );
        (1, map (fun i -> Del i) (int_bound 30));
      ]
  in
  list_size (int_range 2 6) (list_size (int_range 1 8) gen_op)

let arb_history =
  QCheck.make
    ~print:(fun batches ->
      String.concat " | "
        (List.map
           (fun b ->
             String.concat ","
               (List.map
                  (function
                    | Add_block (n, c, s) -> Printf.sprintf "+%s/%s/%d" n c s
                    | Del i -> Printf.sprintf "-#%d" i)
                  b))
           batches))
    gen_history

let blocks_schema () =
  let schema = Schema.create () in
  Schema.declare schema "block" [ "name"; "color"; "on"; "state" ];
  schema

let realize_history schema batches =
  (* turn ops into per-batch change lists with consistent timetags *)
  let tag = ref 0 in
  let added = ref [||] in
  let deleted = Hashtbl.create 16 in
  List.map
    (fun batch ->
      let changes = ref [] in
      List.iter
        (fun op ->
          match op with
          | Add_block (n, c, s) ->
            incr tag;
            let cls = Sym.intern "block" in
            let fields = Array.make (Schema.arity schema cls) Value.nil in
            fields.(0) <- Value.sym n;
            fields.(1) <- Value.sym c;
            fields.(3) <- Value.Int s;
            let w = Wme.make ~cls ~fields ~timetag:!tag in
            added := Array.append !added [| w |];
            changes := (Task.Add, w) :: !changes
          | Del i ->
            let n = Array.length !added in
            if n > 0 then begin
              let idx = i mod n in
              let w = !added.(idx) in
              (* only delete committed, not-yet-deleted wmes, and not
                 ones added in this same batch *)
              if
                (not (Hashtbl.mem deleted w.Wme.timetag))
                && not (List.exists (fun (_, x) -> Wme.equal x w) !changes)
              then begin
                Hashtbl.replace deleted w.Wme.timetag ();
                changes := (Task.Delete, w) :: !changes
              end
            end)
        batch;
      List.rev !changes)
    batches

let build_net schema prods_src =
  let net = Network.create schema in
  List.iter
    (fun src ->
      match Parser.parse_production schema src with
      | p -> ( try ignore (Build.add_production net p) with Invalid_argument _ -> ())
      | exception _ -> ())
    prods_src;
  net

(* --- engine equivalence -------------------------------------------------- *)

let prop_sim_equals_serial =
  QCheck.Test.make ~count:60 ~name:"sim conflict set = serial conflict set"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let net_a = build_net schema prods in
      List.iter (fun b -> ignore (Serial.run_changes net_a b)) batches;
      let net_b = build_net schema prods in
      let cfg = { Sim.procs = 5; queues = Parallel.Multiple_queues; collect_trace = false } in
      List.iter (fun b -> ignore (Sim.run_changes cfg net_b b)) batches;
      Fixtures.cs_fingerprint net_a = Fixtures.cs_fingerprint net_b)

let prop_parallel_equals_serial =
  QCheck.Test.make ~count:15 ~name:"real domains conflict set = serial"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let net_a = build_net schema prods in
      List.iter (fun b -> ignore (Serial.run_changes net_a b)) batches;
      let net_b = build_net schema prods in
      let cfg = { Parallel.processes = 3; queues = Parallel.Multiple_queues } in
      List.iter (fun b -> ignore (Parallel.run_changes cfg net_b b)) batches;
      Fixtures.cs_fingerprint net_a = Fixtures.cs_fingerprint net_b)

(* --- observability does not perturb the match ------------------------------- *)

let prop_traced_sim_equals_serial =
  QCheck.Test.make ~count:40 ~name:"tracing and metrics do not change the match"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let net_a = build_net schema prods in
      List.iter (fun b -> ignore (Serial.run_changes net_a b)) batches;
      let net_b = build_net schema prods in
      let tracer = Psme_obs.Trace.create () in
      let cfg =
        { Sim.procs = 5; queues = Parallel.Multiple_queues; collect_trace = true }
      in
      List.iter (fun b -> ignore (Sim.run_changes ~tracer cfg net_b b)) batches;
      Fixtures.cs_fingerprint net_a = Fixtures.cs_fingerprint net_b)

let prop_traced_sim_self_consistent =
  (* one traced episode's (time, tasks-in-system) samples and its event
     stream must agree with each other and with the returned stats *)
  QCheck.Test.make ~count:40 ~name:"traced sim episode is self-consistent"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let net = build_net schema prods in
      let cfg =
        { Sim.procs = 5; queues = Parallel.Multiple_queues; collect_trace = true }
      in
      List.for_all
        (fun batch ->
          let tracer = Psme_obs.Trace.create () in
          let stats = Sim.run_changes ~tracer cfg net batch in
          let events = Psme_obs.Trace.events tracer in
          let count pred = Array.fold_left (fun a e -> if pred e then a + 1 else a) 0 events in
          let seeds =
            count (fun (e : Psme_obs.Trace.event) ->
                e.kind = Psme_obs.Trace.Queue_push && e.parent = -1)
          in
          let ends = count (fun e -> e.Psme_obs.Trace.kind = Psme_obs.Trace.Task_end) in
          let raw_makespan =
            stats.Cycle.makespan_us
            -. (Cost.default.Cost.alpha_act_us
               *. float_of_int stats.Cycle.alpha_activations)
          in
          let tr = stats.Cycle.trace in
          let n = Array.length tr in
          n >= 2
          (* starts at the seed count, at time zero *)
          && fst tr.(0) = 0.
          && snd tr.(0) = seeds
          (* every task in the system is eventually retired *)
          && snd tr.(n - 1) = 0
          (* samples stay within the episode *)
          && Array.for_all
               (fun (t, k) -> t >= 0. && t <= raw_makespan +. 1e-6 && k >= 0)
               tr
          (* one Task_end per executed task, spawned after its parent *)
          && ends = stats.Cycle.tasks
          && Array.for_all
               (fun (e : Psme_obs.Trace.event) ->
                 e.kind <> Psme_obs.Trace.Task_end
                 || e.parent < 0
                 || e.parent < e.task)
               events)
        batches)

(* --- add/remove symmetry --------------------------------------------------- *)

let prop_remove_all_empties_cs =
  QCheck.Test.make ~count:60 ~name:"removing every wme empties the conflict set"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let net = build_net schema prods in
      let live = Hashtbl.create 32 in
      List.iter
        (fun b ->
          List.iter
            (fun (flag, w) ->
              match flag with
              | Task.Add -> Hashtbl.replace live w.Wme.timetag w
              | Task.Delete -> Hashtbl.remove live w.Wme.timetag)
            b;
          ignore (Serial.run_changes net b))
        batches;
      let removals = Hashtbl.fold (fun _ w acc -> (Task.Delete, w) :: acc) live [] in
      ignore (Serial.run_changes net removals);
      Conflict_set.size net.Network.cs = 0)

let prop_match_is_history_independent =
  QCheck.Test.make ~count:60 ~name:"final conflict set depends only on final wm"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      (* incremental *)
      let net_a = build_net schema prods in
      List.iter (fun b -> ignore (Serial.run_changes net_a b)) batches;
      (* from scratch: only the surviving adds *)
      let live = Hashtbl.create 32 in
      List.iter
        (List.iter (fun (flag, w) ->
             match flag with
             | Task.Add -> Hashtbl.replace live w.Wme.timetag w
             | Task.Delete -> Hashtbl.remove live w.Wme.timetag))
        batches;
      let net_b = build_net schema prods in
      let adds = Hashtbl.fold (fun _ w acc -> (Task.Add, w) :: acc) live [] in
      ignore (Serial.run_changes net_b adds);
      Fixtures.cs_fingerprint net_a = Fixtures.cs_fingerprint net_b)

(* --- runtime addition ------------------------------------------------------- *)

let prop_runtime_add_equals_preload =
  QCheck.Test.make ~count:40
    ~name:"add-production-then-update = production-loaded-up-front"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      match prods with
      | [] -> true
      | late :: early ->
        let schema = blocks_schema () in
        let batches = realize_history schema history in
        (* all up front *)
        let net_a = build_net schema (late :: early) in
        List.iter (fun b -> ignore (Serial.run_changes net_a b)) batches;
        (* one production added at run time, then updated *)
        let net_b = build_net schema early in
        let wm = Wm.create () in
        List.iter (fun b -> ignore (Serial.run_changes net_b b)) batches;
        (* mirror the final wm for Update *)
        let live = Hashtbl.create 32 in
        List.iter
          (List.iter (fun (flag, w) ->
               match flag with
               | Task.Add -> Hashtbl.replace live w.Wme.timetag w
               | Task.Delete -> Hashtbl.remove live w.Wme.timetag))
          batches;
        Hashtbl.iter
          (fun _ w -> ignore (Wm.add wm ~cls:w.Wme.cls ~fields:w.Wme.fields))
          live;
        (match Parser.parse_production schema late with
        | p -> (
          try
            let res = Build.add_production net_b p in
            let tasks = Update.update_tasks net_b wm res in
            ignore (Serial.run_tasks net_b tasks)
          with Invalid_argument _ -> ())
        | exception _ -> ());
        (* compare only instantiation counts per production name: the
           update wm uses fresh timetags *)
        let counts net =
          Conflict_set.to_list net.Network.cs
          |> List.map (fun i -> Sym.name i.Conflict_set.prod)
          |> List.sort compare
        in
        List.length (counts net_a) = List.length (counts net_b))

(* --- preference semantics ---------------------------------------------------- *)

let arb_votes =
  let open QCheck.Gen in
  let gen_vote =
    let* v = int_bound 3 in
    let* r = int_bound 3 in
    let* p = int_bound 6 in
    let value = Value.sym (Printf.sprintf "c%d" v) in
    let referent = Some (Value.sym (Printf.sprintf "c%d" r)) in
    return
      (match p with
      | 0 -> { Psme_soar.Prefs.value; ptype = Acceptable; referent = None }
      | 1 -> { Psme_soar.Prefs.value; ptype = Reject; referent = None }
      | 2 -> { Psme_soar.Prefs.value; ptype = Better; referent }
      | 3 -> { Psme_soar.Prefs.value; ptype = Worse; referent }
      | 4 -> { Psme_soar.Prefs.value; ptype = Best; referent = None }
      | 5 -> { Psme_soar.Prefs.value; ptype = Worst; referent = None }
      | _ -> { Psme_soar.Prefs.value; ptype = Indifferent; referent })
  in
  QCheck.make
    ~print:(fun votes -> string_of_int (List.length votes))
    (list_size (int_bound 12) gen_vote)

let prop_decide_sound =
  QCheck.Test.make ~count:500 ~name:"decide: winner is acceptable and not rejected"
    arb_votes
    (fun votes ->
      let acceptable v =
        List.exists
          (fun x -> x.Psme_soar.Prefs.ptype = Acceptable && Value.equal x.value v)
          votes
      in
      let rejected v =
        List.exists
          (fun x -> x.Psme_soar.Prefs.ptype = Reject && Value.equal x.value v)
          votes
      in
      match Psme_soar.Prefs.decide votes with
      | Psme_soar.Prefs.Winner v -> acceptable v && not (rejected v)
      | Psme_soar.Prefs.Tie vs -> List.for_all (fun v -> acceptable v && not (rejected v)) vs
      | Psme_soar.Prefs.No_candidates ->
        List.for_all (fun v -> (not (acceptable v.Psme_soar.Prefs.value))
                               || rejected v.Psme_soar.Prefs.value)
          (List.filter (fun v -> v.Psme_soar.Prefs.ptype = Acceptable) votes))

(* --- data structure properties ----------------------------------------------- *)

let prop_event_queue_sorted =
  QCheck.Test.make ~count:200 ~name:"event queue pops in time order"
    QCheck.(list (pair (float_bound_inclusive 1000.) small_int))
    (fun events ->
      let q = Event_queue.create () in
      List.iter (fun (t, x) -> Event_queue.add q ~time:t x) events;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_token_permute_roundtrip =
  QCheck.Test.make ~count:200 ~name:"token permute by inverse is identity"
    QCheck.(small_nat)
    (fun n ->
      let n = max 1 (n mod 8) in
      let cls = Sym.intern "c" in
      let t =
        Token.of_wmes (Array.init n (fun i -> Wme.make ~cls ~fields:[||] ~timetag:i))
      in
      let rng = Rng.create n in
      let perm = Array.init n Fun.id in
      Rng.shuffle rng perm;
      let inv = Array.make n 0 in
      Array.iteri (fun i p -> inv.(p) <- i) perm;
      Token.equal t (Token.permute (Token.permute t perm) inv))

let prop_histogram_total =
  QCheck.Test.make ~count:200 ~name:"histogram fractions sum to 1"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_inclusive 2000.))
    (fun xs ->
      let h = Histogram.create ~bucket_width:100. ~buckets:10 in
      List.iter (Histogram.add h) xs;
      let total =
        List.fold_left (fun a (_, _, _, f) -> a +. f) 0. (Histogram.rows h)
      in
      abs_float (total -. 1.) < 1e-9 && Histogram.count h = List.length xs)

let prop_stats_merge_consistent =
  QCheck.Test.make ~count:200 ~name:"stats merge = stats of concatenation"
    QCheck.(pair (list (float_bound_inclusive 100.)) (list (float_bound_inclusive 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and c = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add c) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count c
      && abs_float (Stats.mean m -. Stats.mean c) < 1e-6
      && abs_float (Stats.total m -. Stats.total c) < 1e-6)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~count:100 ~name:"pretty-printed productions re-parse identically"
    arb_productions
    (fun srcs ->
      let schema = blocks_schema () in
      List.for_all
        (fun src ->
          match Parser.parse_production schema src with
          | p ->
            let printed = Format.asprintf "%a" (Production.pp schema) p in
            (match Parser.parse_production schema printed with
            | p' ->
              Production.num_ces p = Production.num_ces p'
              && Production.bound_vars p = Production.bound_vars p'
            | exception _ -> false)
          | exception _ -> true)
        srcs)

let prop_lexer_total =
  QCheck.Test.make ~count:300 ~name:"lexer never crashes (only Lex_error)"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.printable)
    (fun src ->
      match Lexer.tokenize src with
      | toks -> Array.length toks >= 1
      | exception Lexer.Lex_error _ -> true)

let prop_single_line_memory_equivalent =
  (* with a single hash line every activation contends on one lock;
     results must not change *)
  QCheck.Test.make ~count:30 ~name:"one memory line = default memory lines"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      let schema = blocks_schema () in
      let batches = realize_history schema history in
      let build lines =
        let net =
          Network.create ~config:{ Network.default_config with Network.lines } schema
        in
        List.iter
          (fun src ->
            match Parser.parse_production schema src with
            | p -> (
              try ignore (Build.add_production net p) with Invalid_argument _ -> ())
            | exception _ -> ())
          prods;
        List.iter (fun b -> ignore (Serial.run_changes net b)) batches;
        Fixtures.cs_fingerprint net
      in
      build 1 = build 512)

let prop_excise_then_rebuild =
  QCheck.Test.make ~count:30 ~name:"excise + re-add restores the conflict set"
    (QCheck.pair arb_productions arb_history)
    (fun (prods, history) ->
      match prods with
      | [] -> true
      | victim :: _ ->
        let schema = blocks_schema () in
        let batches = realize_history schema history in
        let net = build_net schema prods in
        List.iter (fun b -> ignore (Serial.run_changes net b)) batches;
        let before = Fixtures.cs_fingerprint net in
        (match Parser.parse_production schema victim with
        | p ->
          let name = p.Production.name in
          if Option.is_some (Network.find_production net name) then begin
            Build.excise_production net name;
            (* re-add and update from the surviving wm *)
            let wm = Wm.create () in
            let live = Hashtbl.create 32 in
            List.iter
              (List.iter (fun (flag, w) ->
                   match flag with
                   | Task.Add -> Hashtbl.replace live w.Wme.timetag w
                   | Task.Delete -> Hashtbl.remove live w.Wme.timetag))
              batches;
            Hashtbl.iter (fun _ w -> ignore (Wm.add wm ~cls:w.Wme.cls ~fields:w.Wme.fields)) live;
            (try
               let res = Build.add_production net p in
               let tasks = Update.update_tasks net wm res in
               ignore (Serial.run_tasks net tasks)
             with Invalid_argument _ -> ())
          end;
          (* instantiation multiset per production must match in count *)
          let count fp = List.length (String.split_on_char ';' fp) in
          count (Fixtures.cs_fingerprint net) = count before
        | exception _ -> true))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sim_equals_serial;
      prop_parallel_equals_serial;
      prop_traced_sim_equals_serial;
      prop_traced_sim_self_consistent;
      prop_remove_all_empties_cs;
      prop_match_is_history_independent;
      prop_runtime_add_equals_preload;
      prop_decide_sound;
      prop_event_queue_sorted;
      prop_token_permute_roundtrip;
      prop_histogram_total;
      prop_stats_merge_consistent;
      prop_parse_print_roundtrip;
      prop_lexer_total;
      prop_single_line_memory_equivalent;
      prop_excise_then_rebuild;
    ]
