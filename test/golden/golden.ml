(* Frozen serial-engine measurements for the shipped workloads.

   Runs eight-puzzle and strips (learning off) on the serial engine in a
   fresh process — the symbol table, and therefore every khash and line
   assignment, is in its deterministic initial state — and prints the
   totals the cost model is built on. The runtest rule diffs the output
   against golden.expected: a kernel optimization must leave every one
   of these numbers bit-identical (it may change speed, never the
   reproduced measurements). Use `dune promote` only for a change that
   is *supposed* to alter match semantics, and say so in the commit. *)

let () =
  let open Psme_workloads in
  let open Psme_soar in
  List.iter
    (fun (w : Workload.t) ->
      let agent =
        w.Workload.make
          ~config:{ Agent.default_config with Agent.learning = false } ()
      in
      ignore (Agent.run agent);
      let t = Psme_engine.Engine.totals (Agent.engine agent) in
      Printf.printf "%s scanned=%d alpha=%d tasks=%d emitted=%d\n"
        w.Workload.name t.Psme_engine.Cycle.scanned
        t.Psme_engine.Cycle.alpha_activations t.Psme_engine.Cycle.tasks
        t.Psme_engine.Cycle.emitted)
    [ Eight_puzzle.workload; Strips.workload ]
