(* PR 3 kernel tests: the hot-path overhaul (indexed memories, O(1)
   tokens, alpha dispatch, work-stealing deques) must not change any
   reproduced measurement. The goldens pinned here were captured from
   the pre-overhaul kernel; the contention tests prove the indexed
   memory keeps the refcount-annihilation schedule-independence
   invariant under real multi-domain interleaving. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_check
open Psme_workloads

(* --- work-stealing deque ---------------------------------------------- *)

(* n sequenced calls, in order (a bare list literal would evaluate its
   elements right to left) *)
let rec take_n f n = if n = 0 then [] else let x = f () in x :: take_n f (n - 1)

let test_deque_owner_lifo () =
  let q = Ws_deque.create ~capacity:4 () in
  List.iter (Ws_deque.push q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list (option int)))
    "pop order is LIFO then empty"
    [ Some 5; Some 4; Some 3; Some 2; Some 1; None ]
    (take_n (fun () -> Ws_deque.pop q) 6)

let test_deque_steal_fifo () =
  let q = Ws_deque.create () in
  List.iter (Ws_deque.push q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list (option int)))
    "thieves take the oldest" [ Some 1; Some 2 ]
    (take_n (fun () -> Ws_deque.steal q) 2);
  Alcotest.(check (list (option int)))
    "owner keeps the newest" [ Some 5; Some 4; Some 3; None ]
    (take_n (fun () -> Ws_deque.pop q) 4)

let test_deque_stats_provenance () =
  let q = Ws_deque.create ~capacity:4 () in
  List.iter (Ws_deque.push q) [ 1; 2; 3; 4 ];
  (* two attributed steals by thief 2, one by thief 5, one anonymous *)
  let s1 = Ws_deque.steal ~thief:2 q in
  let s2 = Ws_deque.steal ~thief:2 q in
  let s3 = Ws_deque.steal ~thief:5 q in
  let s4 = Ws_deque.steal q in
  Alcotest.(check (list (option int)))
    "attributed steals succeed"
    [ Some 1; Some 2; Some 3; Some 4 ]
    [ s1; s2; s3; s4 ];
  (* empty probes count as failed steals, attributed or not *)
  Alcotest.(check (option int)) "empty probe" None (Ws_deque.steal ~thief:2 q);
  Alcotest.(check (option int)) "empty probe" None (Ws_deque.steal q);
  let s = Ws_deque.stats q in
  Alcotest.(check int) "pushes" 4 s.Ws_deque.pushes;
  Alcotest.(check int) "steals" 4 s.Ws_deque.steals;
  Alcotest.(check int) "failed steals" 2 s.Ws_deque.failed_steals;
  Alcotest.(check int) "no CAS failures uncontended" 0 s.Ws_deque.steal_cas_failures;
  Alcotest.(check (list (pair int int)))
    "victim->thief provenance (anonymous steals unattributed)"
    [ (2, 2); (5, 1) ]
    (Ws_deque.provenance q)

let test_deque_growth () =
  let q = Ws_deque.create ~capacity:4 () in
  let n = 10_000 in
  for i = 1 to n do
    Ws_deque.push q i
  done;
  Alcotest.(check int) "size after pushes" n (Ws_deque.size q);
  let sum = ref 0 in
  let rec drain () =
    match Ws_deque.pop q with
    | Some v ->
      sum := !sum + v;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all elements survived growth" (n * (n + 1) / 2) !sum

let test_deque_concurrent_steals () =
  (* one owner producing and popping, three thieves stealing: every
     element is consumed exactly once *)
  let q = Ws_deque.create ~capacity:16 () in
  let n = 20_000 in
  let remaining = Atomic.make n in
  let consume take =
    let mine = ref [] in
    while Atomic.get remaining > 0 do
      match take () with
      | Some v ->
        mine := v :: !mine;
        Atomic.decr remaining
      | None -> Stdlib.Domain.cpu_relax ()
    done;
    !mine
  in
  let owner =
    Stdlib.Domain.spawn (fun () ->
        let early = ref [] in
        for i = 0 to n - 1 do
          Ws_deque.push q i;
          (* interleave some owner pops with the production *)
          if i mod 3 = 0 then
            match Ws_deque.pop q with
            | Some v ->
              early := v :: !early;
              Atomic.decr remaining
            | None -> ()
        done;
        !early @ consume (fun () -> Ws_deque.pop q))
  in
  let thieves =
    List.init 3 (fun _ -> Stdlib.Domain.spawn (fun () -> consume (fun () -> Ws_deque.steal q)))
  in
  (* the owner's interleaved pops return their values via a list per
     iteration; recover them by draining the consumed multiset *)
  let got = Stdlib.Domain.join owner @ List.concat_map Stdlib.Domain.join thieves in
  let seen = Array.make n 0 in
  List.iter (fun v -> seen.(v) <- seen.(v) + 1) got;
  Alcotest.(check bool)
    "every element consumed exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

(* --- access-histogram units ------------------------------------------- *)

let mk_tok tt =
  Token.singleton
    (Wme.make ~cls:(Sym.intern "c") ~fields:[| Value.nil |] ~timetag:tt)

let with_line mem ~khash f =
  Memory.locked mem ~line:(Memory.line_of mem ~khash) f

let test_histogram_units () =
  (* lines = 8, so khash k < 8 lands on line k. Cycle 1 gives line 0
     three left accesses (add/iter/remove) and line 1 one; cycle 2 gives
     line 2 two and line 1 one more. Each line contributes its access
     count k to bin k — the histogram counts accesses, not entries. *)
  let mem = Memory.create ~lines:8 () in
  let t1 = mk_tok 1 and t2 = mk_tok 2 in
  with_line mem ~khash:0 (fun () ->
      ignore (Memory.left_add mem ~node:1 ~khash:0 t1 ~count:0);
      ignore (Memory.left_iter mem ~node:1 ~khash:0 (fun _ -> ()));
      ignore (Memory.left_remove mem ~node:1 ~khash:0 t1));
  with_line mem ~khash:1 (fun () ->
      ignore (Memory.left_add mem ~node:1 ~khash:1 t2 ~count:0));
  Memory.reset_cycle_stats mem;
  Alcotest.(check (list (pair int int)))
    "cycle 1: line with 3 accesses adds 3 to bin 3"
    [ (1, 1); (3, 3) ]
    (Memory.access_histogram mem);
  with_line mem ~khash:2 (fun () ->
      ignore (Memory.left_add mem ~node:1 ~khash:2 (mk_tok 3) ~count:0);
      ignore (Memory.left_iter mem ~node:1 ~khash:2 (fun _ -> ())));
  with_line mem ~khash:1 (fun () ->
      ignore (Memory.left_iter mem ~node:1 ~khash:1 (fun _ -> ())));
  Memory.reset_cycle_stats mem;
  Alcotest.(check (list (pair int int)))
    "cycle 2 accumulates; sum of bins = total left accesses"
    [ (1, 2); (2, 2); (3, 3) ]
    (Memory.access_histogram mem);
  Alcotest.(check int) "total left accesses" 7 (Memory.total_left_accesses mem);
  Memory.clear_access_histogram mem;
  Alcotest.(check (list (pair int int))) "clear" [] (Memory.access_histogram mem)

(* --- multi-domain contention on the indexed memory -------------------- *)

type mem_op =
  | Ladd of int * int * Token.t
  | Lrem of int * int * Token.t
  | Liter of int * int
  | Radd of int * int * Memory.right_payload
  | Rrem of int * int * Memory.right_payload

let apply_op mem op =
  match op with
  | Ladd (node, khash, tok) ->
    with_line mem ~khash (fun () ->
        ignore (Memory.left_add mem ~node ~khash tok ~count:0))
  | Lrem (node, khash, tok) ->
    with_line mem ~khash (fun () -> ignore (Memory.left_remove mem ~node ~khash tok))
  | Liter (node, khash) ->
    with_line mem ~khash (fun () ->
        ignore (Memory.left_iter mem ~node ~khash (fun _ -> ())))
  | Radd (node, khash, p) ->
    with_line mem ~khash (fun () -> ignore (Memory.right_add mem ~node ~khash p))
  | Rrem (node, khash, p) ->
    with_line mem ~khash (fun () -> ignore (Memory.right_remove mem ~node ~khash p))

let left_fingerprint mem =
  Memory.fold_left_entries mem ~init:[] ~f:(fun acc ~node ~khash e ->
      (node, khash, Token.hash e.Memory.l_token, e.Memory.l_refs) :: acc)
  |> List.sort compare

let right_fingerprint mem =
  Memory.fold_right_entries mem ~init:[] ~f:(fun acc ~node ~khash ~refs p ->
      let pid =
        match p with
        | Memory.R_wme w -> w.Wme.timetag
        | Memory.R_tok t -> Token.hash t
      in
      (node, khash, pid, refs) :: acc)
  |> List.sort compare

let test_memory_contention () =
  let nd = 4 and iters = 256 in
  (* 4 lines so every domain contends on every line *)
  let shared_toks = Array.init 16 (fun i -> mk_tok (1000 + i)) in
  let shared_wmes =
    Array.init 16 (fun i ->
        Memory.R_wme
          (Wme.make ~cls:(Sym.intern "c") ~fields:[| Value.nil |]
             ~timetag:(3000 + i)))
  in
  let ops_for d =
    List.concat
      (List.init iters (fun i ->
           let tok = shared_toks.(i mod 16) in
           let khash = i mod 8 in
           let node = i mod 3 in
           (* paired add/remove of shared keys — half the domains in
              remove-first (tombstone) order — must fully annihilate *)
           let shared_left =
             if (i + d) mod 2 = 0 then
               [ Ladd (node, khash, tok); Liter (node, khash);
                 Lrem (node, khash, tok) ]
             else
               [ Lrem (node, khash, tok); Liter (node, khash);
                 Ladd (node, khash, tok) ]
           in
           let shared_right =
             let p = shared_wmes.(i mod 16) in
             if (i + d) mod 2 = 0 then
               [ Radd (node, khash, p); Rrem (node, khash, p) ]
             else [ Rrem (node, khash, p); Radd (node, khash, p) ]
           in
           (* a little private residue so the final state is non-trivial *)
           let residue =
             if i mod 16 = d then
               [ Ladd (100 + d, i, mk_tok (2000 + (d * iters) + i));
                 Radd (200 + d, i, shared_wmes.(d)) ]
             else []
           in
           shared_left @ shared_right @ residue))
  in
  let all_ops = Array.init nd ops_for in
  let par = Memory.create ~lines:4 () in
  Array.map
    (fun ops -> Stdlib.Domain.spawn (fun () -> List.iter (apply_op par) ops))
    all_ops
  |> Array.iter Stdlib.Domain.join;
  let ser = Memory.create ~lines:4 () in
  Array.iter (List.iter (apply_op ser)) all_ops;
  let show fp =
    List.map (fun (a, b, c, d) -> Printf.sprintf "%d:%d:%d:%d" a b c d) fp
  in
  Alcotest.(check (list string))
    "left state equals serial replay"
    (show (left_fingerprint ser))
    (show (left_fingerprint par));
  Alcotest.(check (list string))
    "right state equals serial replay"
    (show (right_fingerprint ser))
    (show (right_fingerprint par));
  Alcotest.(check bool)
    "all shared keys annihilated (only private residue remains)" true
    (List.for_all (fun (node, _, _, _) -> node >= 100) (left_fingerprint par))

let test_parallel_trace_race_free () =
  (* a real 4-domain run over the work-stealing deques: the vector-clock
     race detector must see every memory access locked, no unordered
     unlocked pairs, and — the deque's no-double-delivery guarantee —
     no task popped twice *)
  let schema, net =
    Fixtures.network_of
      {|
(p r1 (block ^name <x> ^color blue) -(block ^on <x>) (hand ^state free) --> (write a))
(p r2 (block ^name <a> ^on <b>) (block ^name <b>) --> (write b))
(p r3 (block ^name <x> ^color red ^state <s>) (block ^name { <y> <> <x> } ^state <s>) --> (write c))
|}
  in
  let wm = Wm.create () in
  let block name color on =
    Fixtures.add_wme schema wm "block"
      ([ ("name", Fixtures.sym name); ("color", Fixtures.sym color);
         ("state", Fixtures.sym "live") ]
      @ if on = "" then [] else [ ("on", Fixtures.sym on) ])
  in
  let wmes =
    [
      block "a" "red" "b"; block "b" "red" "c"; block "c" "blue" "";
      block "d" "blue" ""; block "e" "green" "d"; block "f" "red" "a";
      Fixtures.add_wme schema wm "hand" [ ("state", Fixtures.sym "free") ];
    ]
  in
  let tracer = Psme_obs.Trace.create () in
  ignore
    (Parallel.run_changes ~tracer
       { Parallel.processes = 4; queues = Parallel.Multiple_queues }
       net
       (List.map (fun w -> (Task.Add, w)) wmes));
  let r = Races.analyze (Psme_obs.Trace.events tracer) in
  Alcotest.(check bool) "accesses traced" true (r.Races.n_accesses > 0);
  Alcotest.(check int) "no unlocked accesses" 0 r.Races.n_unlocked;
  Alcotest.(check int) "no unordered unlocked pairs" 0 r.Races.n_races;
  Alcotest.(check (list (pair int int))) "no double pops" [] r.Races.double_pops

(* --- workload equivalence ---------------------------------------------- *)

(* The serial engine's exact scanned / alpha-activation totals are
   pinned by the test/golden expect test, which runs in a fresh process
   (khash values depend on the global symbol table, which other suites
   in this process have already grown). Here we check the engines agree
   with each other. *)
let workloads = [ Eight_puzzle.workload; Strips.workload ]

let run_with mode (w : Workload.t) =
  let agent =
    w.Workload.make
      ~config:
        {
          Psme_soar.Agent.default_config with
          Psme_soar.Agent.learning = false;
          engine_mode = mode;
        }
      ()
  in
  let s = Psme_soar.Agent.run agent in
  (agent, s)

let verify_clean name agent =
  (* (halt) exits mid-phase; deliver the buffered changes first *)
  Psme_soar.Agent.flush_match agent;
  let r =
    Verify.state
      (Psme_soar.Agent.network agent)
      (Wm.to_list (Psme_soar.Agent.wm agent))
  in
  Alcotest.(check int) (name ^ ": Verify.state zero diffs") 0
    (List.length r.Finding.findings)

let test_workload_equivalence () =
  List.iter
    (fun (w : Workload.t) ->
      let sa, ss = run_with Engine.Serial_mode w in
      Alcotest.(check bool) (w.Workload.name ^ ": serial halted") true
        ss.Psme_soar.Agent.halted;
      verify_clean (w.Workload.name ^ "/serial") sa;
      List.iter
        (fun (label, mode) ->
          let a, s = run_with mode w in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s halted" w.Workload.name label)
            true s.Psme_soar.Agent.halted;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s same decisions as serial" w.Workload.name label)
            ss.Psme_soar.Agent.decisions s.Psme_soar.Agent.decisions;
          verify_clean (Printf.sprintf "%s/%s" w.Workload.name label) a)
        [
          ( "parallel",
            Engine.Parallel_mode
              { Parallel.processes = 2; queues = Parallel.Multiple_queues } );
          ( "sim",
            Engine.Sim_mode
              { Sim.procs = 4; queues = Parallel.Multiple_queues;
                collect_trace = false } );
        ])
    workloads

let suite =
  [
    Alcotest.test_case "deque: owner LIFO" `Quick test_deque_owner_lifo;
    Alcotest.test_case "deque: steal FIFO" `Quick test_deque_steal_fifo;
    Alcotest.test_case "deque: growth" `Quick test_deque_growth;
    Alcotest.test_case "deque: stats + steal provenance" `Quick
      test_deque_stats_provenance;
    Alcotest.test_case "deque: concurrent steals exactly-once" `Quick
      test_deque_concurrent_steals;
    Alcotest.test_case "memory: histogram units pinned" `Quick
      test_histogram_units;
    Alcotest.test_case "memory: 4-domain contention = serial replay" `Quick
      test_memory_contention;
    Alcotest.test_case "parallel: deque run race-free" `Quick
      test_parallel_trace_race_free;
    Alcotest.test_case "workloads: serial/parallel/sim equivalence" `Slow
      test_workload_equivalence;
  ]
