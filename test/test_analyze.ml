(* The static-analyzer suite: the value domain, condition-set
   subsumption, the join-cost model and the network rules. The same
   philosophy as Test_check: every rule is shown both silent on clean
   input and loud on a planted defect, the planted defects being the
   ones shipped (suppressed) in programs/analyze.ops5. The cost model
   is validated the only way a static model can be — by rank
   correlation against the profiler's measured scan counts. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_check

let parse schema src = Parser.parse_production schema src

let rules findings = List.map (fun f -> f.Finding.rule) findings |> List.sort_uniq compare

let has_rule ?subject rule findings =
  List.exists
    (fun f ->
      f.Finding.rule = rule
      && match subject with None -> true | Some s -> f.Finding.subject = s)
    findings

(* --- the value domain --------------------------------------------------------- *)

let gt n = Cond.T_rel (Cond.Gt, Cond.Oconst (Value.Int n))
let lt n = Cond.T_rel (Cond.Lt, Cond.Oconst (Value.Int n))

let test_domain_emptiness () =
  (* the fixture's planted conflict: an ordering bound against a
     disjunction, which neither test alone makes empty *)
  let d = Domain.of_tests [ gt 5; Cond.T_disj [ Value.Int 1; Value.Int 2; Value.Int 3 ] ] in
  Alcotest.(check bool) "bound vs disjunction" true (Domain.is_empty d);
  Alcotest.(check bool) "empty interval" true
    (Domain.is_empty (Domain.of_tests [ gt 5; lt 2 ]));
  Alcotest.(check bool) "point interval lives" false
    (Domain.is_empty
       (Domain.of_tests
          [
            Cond.T_rel (Cond.Ge, Cond.Oconst (Value.Int 2));
            Cond.T_rel (Cond.Le, Cond.Oconst (Value.Int 2));
          ]));
  Alcotest.(check bool) "constant against matching bound" false
    (Domain.is_empty (Domain.of_tests [ Cond.T_const (Value.Int 7); gt 5 ]));
  Alcotest.(check bool) "constant against failing bound" true
    (Domain.is_empty (Domain.of_tests [ Cond.T_const (Value.Int 3); gt 5 ]));
  Alcotest.(check bool) "top is not empty" false (Domain.is_empty Domain.top);
  Alcotest.(check bool) "bottom is empty" true (Domain.is_empty Domain.bottom)

let test_domain_membership () =
  let d =
    Domain.of_tests
      [
        Cond.T_disj [ Value.sym "red"; Value.sym "blue" ];
        Cond.T_rel (Cond.Ne, Cond.Oconst (Value.sym "red"));
      ]
  in
  Alcotest.(check bool) "survivor of disj minus exclusion" true
    (Domain.mem d (Value.sym "blue"));
  Alcotest.(check bool) "excluded member gone" false (Domain.mem d (Value.sym "red"));
  Alcotest.(check bool) "never a member" false (Domain.mem d (Value.sym "green"))

let test_domain_leq () =
  let point = Domain.of_tests [ Cond.T_const (Value.Int 3) ] in
  let above2 = Domain.of_tests [ gt 2 ] in
  Alcotest.(check bool) "{3} under (> 2)" true (Domain.leq point above2);
  Alcotest.(check bool) "(> 2) not under {3}" false (Domain.leq above2 point);
  Alcotest.(check bool) "bottom under everything" true (Domain.leq Domain.bottom point);
  Alcotest.(check bool) "everything under top" true (Domain.leq above2 Domain.top);
  Alcotest.(check bool) "tighter interval under looser" true
    (Domain.leq (Domain.of_tests [ gt 4; lt 6 ]) (Domain.of_tests [ gt 2 ]));
  Alcotest.(check bool) "looser not under tighter" false
    (Domain.leq (Domain.of_tests [ gt 2 ]) (Domain.of_tests [ gt 4 ]))

(* --- per-production rules ------------------------------------------------------ *)

let blocks_schema = Test_check.blocks_schema

let test_unsat_condition () =
  let schema = blocks_schema () in
  let p = parse schema "(p u (block ^state { > 5 << 1 2 3 >> }) --> (write ok))" in
  Alcotest.(check bool) "unsat positive CE is an error" true
    (has_rule "unsat-condition" ~subject:"u" (Analyze.production p));
  let ok = parse schema "(p ok (block ^state { > 5 << 4 6 7 >> }) --> (write ok))" in
  Alcotest.(check bool) "satisfiable disjunction is clean" false
    (has_rule "unsat-condition" (Analyze.production ok))

let test_vacuous_negation () =
  let schema = blocks_schema () in
  let p =
    parse schema "(p v (block ^name <x>) -(block ^state { > 5 < 2 }) --> (write ok))"
  in
  let fs = Analyze.production p in
  Alcotest.(check bool) "impossible negation is vacuous" true
    (has_rule "vacuous-negation" ~subject:"v" fs);
  Alcotest.(check bool) "but not production-killing" false (has_rule "unsat-condition" fs)

let test_subsumes_direction () =
  let schema = blocks_schema () in
  let gen = parse schema "(p gen (block ^color red) --> (write ok))" in
  let spec =
    parse schema "(p spec (block ^name <x> ^color red ^on <y>) --> (write ok))"
  in
  Alcotest.(check bool) "general subsumes specific" true (Analyze.subsumes gen spec);
  Alcotest.(check bool) "specific does not subsume general" false
    (Analyze.subsumes spec gen);
  (* constant structure: a disjunction covers its members *)
  let disj = parse schema "(p disj (block ^state << 1 2 >>) --> (write ok))" in
  let one = parse schema "(p one (block ^state 1) --> (write ok))" in
  Alcotest.(check bool) "disjunction covers a member" true (Analyze.subsumes disj one);
  Alcotest.(check bool) "member does not cover the disjunction" false
    (Analyze.subsumes one disj);
  (* negations reverse: the more general negation is the weaker one *)
  let a = parse schema "(p a (block ^name <x>) -(block ^on <x>) --> (write ok))" in
  let b =
    parse schema "(p b (block ^name <y> ^color red) -(block ^on <y>) --> (write ok))"
  in
  Alcotest.(check bool) "same negation, fewer positives subsumes" true
    (Analyze.subsumes a b);
  Alcotest.(check bool) "not the other way" false (Analyze.subsumes b a)

let test_shadowed_pair_rules () =
  let schema = blocks_schema () in
  let p = parse schema "(p p1 (block ^name <x> ^on <y>) (block ^name <y>) --> (write ok))" in
  let q = parse schema "(p p2 (block ^name <b>) (block ^name <a> ^on <b>) --> (write ok))" in
  Alcotest.(check bool) "renamed+reordered pair is mutual" true
    (Analyze.subsumes p q && Analyze.subsumes q p);
  let r = Analyze.productions [ p; q ] in
  Alcotest.(check bool) "reported once as shadowed-pair" true
    (has_rule "shadowed-pair" ~subject:"p2" r.Finding.findings);
  Alcotest.(check bool) "not also as subsumed-production" false
    (has_rule "subsumed-production" r.Finding.findings)

(* --- the join-cost model ------------------------------------------------------- *)

let sched_schema () =
  let schema = Schema.create () in
  Schema.declare schema "item" [ "name"; "kind"; "size" ];
  Schema.declare schema "slot" [ "name"; "holds" ];
  Schema.declare schema "order" [ "task"; "target" ];
  schema

let test_jcost_shapes () =
  let schema = sched_schema () in
  let cross =
    parse schema "(p cross (item ^name <a> ^kind crate) (slot ^name <s>) --> (write ok))"
  in
  let ch = Jcost.chain cross in
  Alcotest.(check (list int)) "unlinked second level flagged" [ 1 ] ch.Jcost.ch_cross;
  let linked =
    parse schema
      "(p linked (item ^name <a> ^kind crate) (slot ^name <s> ^holds <a>) --> (write ok))"
  in
  Alcotest.(check (list int)) "variable link clears the flag" []
    (Jcost.chain linked).Jcost.ch_cross;
  Alcotest.(check bool) "variable link cuts the output tokens" true
    ((Jcost.chain linked).Jcost.ch_peak < ch.Jcost.ch_peak);
  let single = parse schema "(p single (item ^name <a>) --> (write ok))" in
  Alcotest.(check bool) "single CE not reorderable" false (Jcost.reorderable single);
  Alcotest.(check bool) "no suggestion for a single CE" true
    (Jcost.suggest_order single = None)

let test_jcost_suggest_selective_first () =
  let schema = sched_schema () in
  let p =
    parse schema
      "(p demo (item ^name <n>) (slot ^name <s> ^holds <n>) (order ^task deliver ^target <n>) --> (write ok))"
  in
  match Jcost.suggest p with
  | None -> Alcotest.fail "expected a cheaper order for the broad-first chain"
  | Some better ->
    Alcotest.(check (array int)) "selective order CE placed first" [| 2; 0; 1 |]
      better.Jcost.ch_order;
    let written = Jcost.chain p in
    Alcotest.(check bool) "suggested order is predicted cheaper" true
      (better.Jcost.ch_cost < written.Jcost.ch_cost);
    (* the suggestion is a permutation replayable through the model *)
    let replay = Jcost.chain_of_order p better.Jcost.ch_order in
    Alcotest.(check (float 1e-9)) "chain_of_order agrees" better.Jcost.ch_cost
      replay.Jcost.ch_cost

(* --- the shipped fixture: every planted defect fires ---------------------------- *)

let fixture () =
  let schema = Schema.create () in
  let src = Test_check.read_file "programs/analyze.ops5" in
  let forms = Parser.parse_program schema src in
  let prods =
    List.filter_map (function Parser.Prod p -> Some p | Parser.Literalize _ -> None) forms
  in
  let net = Network.create schema in
  List.iter (fun p -> ignore (Build.add_production net p)) prods;
  (schema, src, prods, net)

let test_fixture_plants () =
  let _, _, prods, net = fixture () in
  let r = Analyze.productions prods in
  let fs = r.Finding.findings in
  Alcotest.(check bool) "planted shadowed pair" true
    (has_rule "shadowed-pair" ~subject:"ship-crate-again" fs);
  Alcotest.(check bool) "planted cross product" true
    (has_rule "cross-product-join" ~subject:"audit-pairs" fs);
  Alcotest.(check bool) "planted unsat condition" true
    (has_rule "unsat-condition" ~subject:"impossible-size" fs);
  Alcotest.(check bool) "planted bad ordering" true
    (has_rule "condition-reorder" ~subject:"reorder-demo" fs);
  let nr = Analyze.network net in
  Alcotest.(check bool) "dead alpha memory behind the unsat CE" true
    (has_rule "dead-alpha-memory" nr.Finding.findings);
  Alcotest.(check bool) "dead beta nodes downstream of it" true
    (has_rule "dead-node" nr.Finding.findings);
  Alcotest.(check bool) "network errors are errors" true (Finding.errors nr > 0)

let test_fixture_suppressed_clean () =
  let schema, src, _, net = fixture () in
  let r = Analyze.source ~net schema src in
  Alcotest.(check (list string)) "pragmas silence every plant" [] (rules r.Finding.findings);
  Alcotest.(check bool) "suppressions are counted" true (r.Finding.suppressed >= 6);
  Alcotest.(check int) "gate exit code clean" 0 (Finding.exit_code r)

(* --- network rules under fault injection ---------------------------------------- *)

let test_dead_node_injection () =
  (* hand-build what no honest front end would: an alpha chain requiring
     one field to equal two different constants, feeding an entry node,
     feeding a join whose tests contradict each other *)
  let schema = blocks_schema () in
  let net = Network.create schema in
  let cls = Sym.intern "block" in
  let dead_amem =
    Alpha.add_chain net.Network.alpha ~cls
      [ Alpha.A_const (1, Value.sym "red"); Alpha.A_const (1, Value.sym "blue") ]
  in
  let entry =
    Network.add_node net ~kind:Network.Entry ~parent:None ~alpha_src:(Some dead_amem)
  in
  Alpha.add_successor net.Network.alpha ~amem:dead_amem ~node:entry.Network.id;
  let live_amem = Alpha.add_chain net.Network.alpha ~cls [] in
  let live_entry =
    Network.add_node net ~kind:Network.Entry ~parent:None ~alpha_src:(Some live_amem)
  in
  Alpha.add_successor net.Network.alpha ~amem:live_amem ~node:live_entry.Network.id;
  let contradictory =
    {
      Network.eq = [ { Network.l_slot = 0; l_fld = 0; rel = Cond.Eq; r_fld = 0 } ];
      others = [ { Network.l_slot = 0; l_fld = 0; rel = Cond.Ne; r_fld = 0 } ];
    }
  in
  let join =
    Network.add_node net
      ~kind:(Network.Join contradictory)
      ~parent:(Some live_entry.Network.id) ~alpha_src:(Some live_amem)
  in
  Alpha.add_successor net.Network.alpha ~amem:live_amem ~node:join.Network.id;
  Network.add_successor net ~of_:live_entry.Network.id ~node:join.Network.id
    ~port:Network.P_left;
  (* a healthy join below the dead entry: dead by left-input propagation *)
  let downstream =
    Network.add_node net
      ~kind:(Network.Join { Network.eq = []; others = [] })
      ~parent:(Some entry.Network.id) ~alpha_src:(Some live_amem)
  in
  Alpha.add_successor net.Network.alpha ~amem:live_amem ~node:downstream.Network.id;
  Network.add_successor net ~of_:entry.Network.id ~node:downstream.Network.id
    ~port:Network.P_left;
  let r = Analyze.network net in
  let fs = r.Finding.findings in
  let subj fmt id = Printf.sprintf fmt id in
  Alcotest.(check bool) "unsatisfiable chain flagged" true
    (has_rule "dead-alpha-memory" ~subject:(subj "amem %d" dead_amem) fs);
  Alcotest.(check bool) "entry on the dead memory flagged" true
    (has_rule "dead-node" ~subject:(subj "node %d" entry.Network.id) fs);
  Alcotest.(check bool) "contradictory join flagged" true
    (has_rule "dead-node" ~subject:(subj "node %d" join.Network.id) fs);
  Alcotest.(check bool) "death propagates down the left input" true
    (has_rule "dead-node" ~subject:(subj "node %d" downstream.Network.id) fs);
  Alcotest.(check bool) "the live entry is not flagged" false
    (has_rule "dead-node" ~subject:(subj "node %d" live_entry.Network.id) fs)

(* --- subsumption vs runtime ----------------------------------------------------- *)

let insts net name =
  Conflict_set.to_list net.Network.cs
  |> List.filter (fun i -> Sym.name i.Conflict_set.prod = name)

let test_subsumed_runtime_inclusion () =
  let schema = blocks_schema () in
  let net = Network.create schema in
  let gen = parse schema "(p gen (block ^color red) --> (write ok))" in
  let spec =
    parse schema "(p spec (block ^name <x> ^color red ^on <y>) --> (write ok))"
  in
  Alcotest.(check bool) "analyzer claims subsumption" true (Analyze.subsumes gen spec);
  ignore (Build.add_production net gen);
  ignore (Build.add_production net spec);
  let wm = Wm.create () in
  ignore (Serial.run_changes net (Test_check.adds (Test_check.seed_scene wm)));
  Alcotest.(check bool) "the specific one fires on the scene" true
    (insts net "spec" <> []);
  (* every wme matched by spec is matched by gen (single-CE general side:
     its instantiations are exactly the wmes) *)
  let gen_wmes =
    insts net "gen" |> List.map (fun i -> (Token.wme i.Conflict_set.token 0).Wme.timetag)
  in
  List.iter
    (fun i ->
      let w = Token.wme i.Conflict_set.token 0 in
      Alcotest.(check bool) "spec's block is among gen's" true
        (List.mem w.Wme.timetag gen_wmes))
    (insts net "spec")

let prop_subsumption_runtime =
  QCheck.Test.make ~count:40
    ~name:"analyzer-subsumed pairs are runtime-included on random streams"
    (QCheck.pair Test_props.arb_productions Test_props.arb_history)
    (fun (srcs, history) ->
      let schema = blocks_schema () in
      let net = Network.create schema in
      ignore (Test_check.try_build net schema srcs);
      let prods =
        List.map (fun pm -> pm.Network.meta_production) (Network.productions net)
      in
      let wm = Wm.create () in
      let batches = Test_check.realize_history_wm wm history in
      List.iter (fun b -> ignore (Serial.run_changes net b)) batches;
      let fired p = insts net (Sym.name p.Production.name) <> [] in
      List.for_all
        (fun p ->
          List.for_all
            (fun q ->
              (not (p != q && Analyze.subsumes p q)) || (not (fired q)) || fired p)
            prods)
        prods)

(* --- join reordering is invisible to the conflict set --------------------------- *)

let sched_wme wm cls vals =
  let fields = Array.of_list vals in
  Wm.add wm ~cls:(Sym.intern cls) ~fields

let sched_scene wm =
  let s = Value.sym in
  [
    sched_wme wm "item" [ s "a"; s "crate"; Value.Int 3 ];
    sched_wme wm "item" [ s "b"; s "crate"; Value.Int 2 ];
    sched_wme wm "item" [ s "c"; s "tool"; Value.Int 3 ];
    sched_wme wm "item" [ s "d"; s "crate"; Value.Int 3 ];
    sched_wme wm "slot" [ s "s1"; s "a" ];
    sched_wme wm "slot" [ s "s2"; s "c" ];
    sched_wme wm "slot" [ s "s3"; s "b" ];
    sched_wme wm "order" [ s "deliver"; s "a" ];
    sched_wme wm "order" [ s "deliver"; s "c" ];
    sched_wme wm "order" [ s "audit"; s "d" ];
    sched_wme wm "order" [ s "audit"; s "a" ];
  ]

let sched_prods =
  [
    "(p deliver (item ^name <n>) (slot ^name <s> ^holds <n>) (order ^task deliver ^target <n>) --> (write ok))";
    "(p stray (item ^name <n> ^kind crate) -(slot ^holds <n>) (order ^task audit ^target <n>) --> (write ok))";
    "(p broad (item ^name <n>) (item ^name <m> ^kind crate ^size 3) --> (write ok))";
  ]

let cs_snapshot net =
  Conflict_set.to_list net.Network.cs
  |> List.map (fun i ->
         ( Sym.name i.Conflict_set.prod,
           Token.wmes i.Conflict_set.token |> Array.to_list
           |> List.map (fun w -> w.Wme.timetag) ))
  |> List.sort compare

let bindings_snapshot net =
  Conflict_set.to_list net.Network.cs
  |> List.map (fun i ->
         ( Sym.name i.Conflict_set.prod,
           (* binding-list order follows first occurrence under the build's
              placement; only the variable->value map is order-invariant *)
           List.sort compare
             (Network.bindings_of net i.Conflict_set.prod i.Conflict_set.token) ))
  |> List.sort compare

let test_reorder_differential () =
  let schema = sched_schema () in
  let plain = Network.create schema in
  let reordered =
    Network.create
      ~config:{ Network.default_config with Network.reorder_joins = true }
      schema
  in
  List.iter
    (fun src ->
      ignore (Build.add_production plain (parse schema src));
      ignore (Build.add_production reordered (parse schema src)))
    sched_prods;
  Alcotest.(check bool) "at least one production is actually reordered" true
    (List.exists
       (fun src -> Jcost.suggest_order (parse schema src) <> None)
       sched_prods);
  Alcotest.(check int) "reordering keeps the verifier silent" 0
    (Finding.errors (Verify.structure reordered));
  let wm = Wm.create () in
  let wmes = sched_scene wm in
  ignore (Serial.run_changes plain (Test_check.adds wmes));
  ignore (Serial.run_changes reordered (Test_check.adds wmes));
  Alcotest.(check bool) "the scene matches at all" true (cs_snapshot plain <> []);
  Alcotest.(check
      (list (pair string (list int))))
    "identical conflict sets, wmes in CE order" (cs_snapshot plain)
    (cs_snapshot reordered);
  Alcotest.(check bool) "identical variable bindings" true
    (bindings_snapshot plain = bindings_snapshot reordered);
  (* deletions must retract the same instantiations through the
     permuted chain (including re-admitting a negation) *)
  let victim = List.nth wmes 4 (* slot s1 holding a *) in
  ignore (Serial.run_changes plain [ (Task.Delete, victim) ]);
  ignore (Serial.run_changes reordered [ (Task.Delete, victim) ]);
  Alcotest.(check
      (list (pair string (list int))))
    "identical after a retraction" (cs_snapshot plain) (cs_snapshot reordered);
  Alcotest.(check bool) "the retraction re-admitted the negation" true
    (List.exists (fun (n, _) -> n = "stray") (cs_snapshot plain))

(* --- codesize accounting after excise ------------------------------------------- *)

let test_codesize_excise () =
  let schema = blocks_schema () in
  let net = Network.create schema in
  let tower =
    parse schema "(p tower (block ^name <a> ^on <b>) (block ^name <b>) --> (write ok))"
  in
  let twin =
    parse schema
      "(p tower-twin (block ^name <a> ^on <b>) (block ^name <b>) --> (write ok))"
  in
  let r1 = Build.add_production net tower in
  let r2 = Build.add_production net twin in
  let before = Codesize.sharing_report net in
  Alcotest.(check int) "both productions accounted" 2
    (List.length before.Codesize.sh_per_production);
  Alcotest.(check bool) "the twin's chain is shared" true (before.Codesize.sh_shared > 0);
  Alcotest.(check bool) "the twin's addition cost something (its P-node)" true
    (Codesize.bytes_of_addition net r2 > 0);
  Build.excise_production net (Sym.intern "tower-twin");
  let after = Codesize.sharing_report net in
  Alcotest.(check (list string)) "excised production owns nothing"
    [ "tower" ]
    (List.map (fun (n, _, _) -> Sym.name n) after.Codesize.sh_per_production);
  Alcotest.(check int) "no node is shared any more" 0 after.Codesize.sh_shared;
  Alcotest.(check int) "the twin's generated code is gone" 0
    (Codesize.bytes_of_addition net r2);
  Alcotest.(check bool) "the survivor's code remains" true
    (Codesize.bytes_of_addition net r1 > 0);
  Alcotest.(check bool) "total bytes shrank" true
    (after.Codesize.sh_bytes < before.Codesize.sh_bytes)

(* --- cost model vs the profiler -------------------------------------------------- *)

(* Spearman rank correlation with average ranks on ties. *)
let ranks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
  let rk = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      rk.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  rk

let spearman xs ys =
  let rx = ranks xs and ry = ranks ys in
  let n = Array.length rx in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int n in
  let mx = mean rx and my = mean ry in
  let num = ref 0. and dx = ref 0. and dy = ref 0. in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ry.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    rx;
  if !dx = 0. || !dy = 0. then 0. else !num /. sqrt (!dx *. !dy)

let profiled_correlation w =
  let open Psme_soar in
  let tracer = Psme_obs.Trace.create () in
  let engine_mode =
    Engine.Sim_mode { Sim.procs = 4; queues = Parallel.Multiple_queues; collect_trace = false }
  in
  let config =
    { Agent.default_config with Agent.learning = false; engine_mode; tracer = Some tracer }
  in
  let agent = w.Psme_workloads.Workload.make ~config () in
  ignore (Agent.run agent);
  let net = Agent.network agent in
  let prof = Psme_harness.Observe.profile net (Psme_obs.Trace.events tracer) in
  let prods =
    List.map (fun pm -> pm.Network.meta_production) (Network.productions net)
  in
  let costs = Analyze.static_costs prods in
  (* rank only the productions the run exercised: a production that never
     received a token has no measured cost to rank against *)
  let paired =
    List.filter_map
      (fun r ->
        if r.Psme_obs.Profile.pr_scanned > 0. then
          Option.map
            (fun c -> (c, r.Psme_obs.Profile.pr_scanned))
            (List.assoc_opt r.Psme_obs.Profile.pr_name costs)
        else None)
      prof.Psme_obs.Profile.prods
  in
  (List.length paired, spearman (List.map fst paired) (List.map snd paired))

(* The simulated engine is deterministic, so the measured correlations
   are stable run to run: strips rho=0.620 over 104 exercised
   productions, cypress rho=0.461 over 195 (the generated cypress rule
   families share one template and hence one static cost — large tie
   blocks cap the achievable rank agreement). The floors sit below the
   measured values with margin; a genuine model regression (sign flip,
   degenerate constant cost) lands far below them. *)
let check_correlation name w floor =
  let n, rho = profiled_correlation w in
  Alcotest.(check bool)
    (Printf.sprintf "%s: enough exercised productions (%d)" name n)
    true (n >= 8);
  Alcotest.(check bool)
    (Printf.sprintf "%s: static cost ranks like measured scans (rho=%.3f, floor %.2f)"
       name rho floor)
    true (rho >= floor)

let test_cost_model_strips () =
  check_correlation "strips" Psme_workloads.Strips.workload 0.55

let test_cost_model_cypress () =
  check_correlation "cypress" Psme_workloads.Cypress.workload 0.40

let suite =
  [
    Alcotest.test_case "domain: emptiness" `Quick test_domain_emptiness;
    Alcotest.test_case "domain: membership" `Quick test_domain_membership;
    Alcotest.test_case "domain: leq" `Quick test_domain_leq;
    Alcotest.test_case "analyze: unsat condition" `Quick test_unsat_condition;
    Alcotest.test_case "analyze: vacuous negation" `Quick test_vacuous_negation;
    Alcotest.test_case "analyze: subsumption direction" `Quick test_subsumes_direction;
    Alcotest.test_case "analyze: shadowed pair" `Quick test_shadowed_pair_rules;
    Alcotest.test_case "jcost: chain shapes" `Quick test_jcost_shapes;
    Alcotest.test_case "jcost: suggests selective-first" `Quick
      test_jcost_suggest_selective_first;
    Alcotest.test_case "fixture: planted defects fire" `Quick test_fixture_plants;
    Alcotest.test_case "fixture: pragmas keep the gate clean" `Quick
      test_fixture_suppressed_clean;
    Alcotest.test_case "network: injected dead nodes flagged" `Quick
      test_dead_node_injection;
    Alcotest.test_case "subsumption: runtime inclusion (deterministic)" `Quick
      test_subsumed_runtime_inclusion;
    Alcotest.test_case "reorder: conflict set is order-blind" `Quick
      test_reorder_differential;
    Alcotest.test_case "codesize: excise drops shared accounting" `Quick
      test_codesize_excise;
    Alcotest.test_case "cost model: strips rank correlation" `Quick
      test_cost_model_strips;
    Alcotest.test_case "cost model: cypress rank correlation" `Quick
      test_cost_model_cypress;
    QCheck_alcotest.to_alcotest prop_subsumption_runtime;
  ]
