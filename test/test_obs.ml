(* Unit tests for the observability layer: the JSON writer/validator,
   the metrics registry, the event tracer's ring buffer, the Chrome
   trace exporter, the per-node/per-production profiler and the
   critical-path analyzer — plus the [Cycle.to_json] field-name
   contract. *)

open Psme_ops5
open Psme_obs
open Psme_rete
open Psme_engine

(* --- json --------------------------------------------------------------- *)

let test_json_writer () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("inf", Json.Float Float.infinity);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Int 0 ]);
      ]
  in
  let s = Json.to_string doc in
  Alcotest.(check string)
    "rendering"
    {|{"s":"a\"b\\c\nd","i":-3,"f":1.5,"inf":null,"l":[null,true,0]}|}
    s;
  Alcotest.(check bool) "writer output validates" true
    (Result.is_ok (Json.validate s))

let test_json_validate () =
  let ok s = Alcotest.(check bool) (s ^ " accepted") true (Result.is_ok (Json.validate s)) in
  let bad s = Alcotest.(check bool) (s ^ " rejected") false (Result.is_ok (Json.validate s)) in
  ok {|{"a": [1, 2.5, -3e2, "xé", {}], "b": null}|};
  ok "[]";
  ok "  true ";
  bad "";
  bad "{";
  bad {|{"a": 1,}|};
  bad "[1 2]";
  bad {|"unterminated|};
  bad "[1] trailing"

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.value c);
  Metrics.observe r "a.gauge" 2.;
  Metrics.observe r "a.gauge" 6.;
  Metrics.set_probe r "a.probe" (fun () -> 42.);
  let snap = Metrics.snapshot r in
  let get name = List.assoc name snap in
  Alcotest.(check (float 0.)) "counter in snapshot" 5. (get "a.count");
  Alcotest.(check (float 0.)) "gauge count" 2. (get "a.gauge.count");
  Alcotest.(check (float 1e-9)) "gauge mean" 4. (get "a.gauge.mean");
  Alcotest.(check (float 0.)) "gauge total" 8. (get "a.gauge.total");
  Alcotest.(check (float 0.)) "probe sampled" 42. (get "a.probe");
  Alcotest.(check bool) "sorted by name" true
    (List.sort compare snap = snap);
  (* same-name lookups share state; delta meters a region *)
  Metrics.incr (Metrics.counter r "a.count");
  let snap' = Metrics.snapshot r in
  Alcotest.(check (float 0.)) "delta" 1.
    (List.assoc "a.count" (Metrics.delta ~before:snap ~after:snap'));
  Alcotest.(check bool) "json validates" true
    (Result.is_ok (Json.validate (Metrics.to_json snap')));
  Metrics.reset r;
  Alcotest.(check (float 0.)) "reset zeroes counters" 0.
    (List.assoc "a.count" (Metrics.snapshot r));
  Alcotest.(check (float 0.)) "probes survive reset" 42.
    (List.assoc "a.probe" (Metrics.snapshot r))

(* --- tracer ring ---------------------------------------------------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:9 () in
  Alcotest.(check int) "capacity rounded to a power of two" 16 (Trace.capacity tr);
  for i = 0 to 19 do
    Trace.emit tr Trace.Task_end ~t_us:(float_of_int i) ~task:i ()
  done;
  Alcotest.(check int) "length capped" 16 (Trace.length tr);
  Alcotest.(check int) "dropped counted" 4 (Trace.dropped tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "oldest overwritten" 4 evs.(0).Trace.task;
  Alcotest.(check int) "newest kept" 19 evs.(15).Trace.task;
  Array.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool) "time-ordered" true
          (e.Trace.t_us >= evs.(i - 1).Trace.t_us))
    evs;
  Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (Trace.length tr);
  (* base offsets the emitted time; cycle is stamped *)
  Trace.set_base tr 100.;
  Trace.set_cycle tr 7;
  Trace.emit tr Trace.Task_start ~t_us:2.5 ();
  let e = (Trace.events tr).(0) in
  Alcotest.(check (float 0.)) "base applied" 102.5 e.Trace.t_us;
  Alcotest.(check int) "cycle stamped" 7 e.Trace.cycle

(* --- traced engine runs ---------------------------------------------------- *)

let procs = 4

let traced_run ?(changes = 30) ?(compiled = true) () =
  let schema = Fixtures.schema_with () in
  let prods =
    Fixtures.parse_prods schema
      (Fixtures.graspable_src
      ^ {|
(p stack-pairs
  (block ^name <x> ^color blue)
  (block ^on <x>)
  -->
  (make place ^name <x>))
|})
  in
  let net =
    Network.create ~config:{ Network.default_config with Network.compiled } schema
  in
  ignore (Build.add_all net prods);
  let tracer = Trace.create () in
  let engine =
    Engine.create ~tracer
      (Engine.Sim_mode
         { Sim.procs; queues = Psme_engine.Parallel.Multiple_queues; collect_trace = false })
      net
  in
  let wm = Wm.create () in
  let names = [ "a"; "b"; "c"; "d"; "e" ] in
  for i = 0 to (changes / 10) - 1 do
    let batch =
      List.concat_map
        (fun n ->
          let w1 =
            Fixtures.add_wme schema wm "block"
              [ ("name", Fixtures.sym n); ("color", Fixtures.sym "blue");
                ("state", Fixtures.int i) ]
          in
          let w2 =
            Fixtures.add_wme schema wm "block"
              [ ("on", Fixtures.sym n); ("state", Fixtures.int i) ]
          in
          [ (Task.Add, w1); (Task.Add, w2) ])
        names
    in
    ignore (Engine.run_changes engine batch)
  done;
  (net, engine, tracer)

let test_chrome_trace_valid () =
  let _, _, tracer = traced_run () in
  let events = Trace.events tracer in
  Alcotest.(check bool) "events recorded" true (Array.length events > 0);
  let s = Chrome_trace.to_string events in
  (match Json.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e);
  let lanes = Chrome_trace.lanes events in
  Alcotest.(check bool)
    (Printf.sprintf "at most one lane per proc (%d)" (List.length lanes))
    true
    (List.length lanes <= procs && lanes <> []);
  List.iter
    (fun l -> Alcotest.(check bool) "lane ids are procs" true (l >= 0 && l < procs))
    lanes

let test_profile_totals_match_serial () =
  let net, engine, tracer = traced_run () in
  let node_kind id =
    match Hashtbl.find_opt net.Network.beta id with
    | Some n -> (
      match n.Network.kind with Network.Pnode _ -> "pnode" | _ -> "other")
    | None -> "?"
  in
  let node_prods _ = [] in
  let prof = Profile.of_events ~node_kind ~node_prods (Trace.events tracer) in
  let totals = Engine.totals engine in
  let alpha_us =
    float_of_int totals.Cycle.alpha_activations *. Cost.default.Cost.alpha_act_us
  in
  Alcotest.(check int) "every task profiled" totals.Cycle.tasks prof.Profile.total_tasks;
  Alcotest.(check (float 0.5)) "task time partitions serial time"
    totals.Cycle.serial_us
    (prof.Profile.total_us +. alpha_us);
  (* the production table partitions the same total *)
  let prod_sum =
    List.fold_left (fun a r -> a +. r.Profile.pr_us) 0. prof.Profile.prods
  in
  Alcotest.(check (float 0.5)) "prod rows partition task time"
    prof.Profile.total_us prod_sum

let test_critical_path_bounds () =
  let _, engine, tracer = traced_run () in
  let reports = Critical_path.per_cycle (Trace.events tracer) in
  let cycles =
    List.filter (fun (s : Cycle.stats) -> s.Cycle.tasks > 0) (Engine.history engine)
  in
  Alcotest.(check int) "one report per non-empty cycle" (List.length cycles)
    (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "cycle %d: chain %.1f <= makespan %.1f"
           r.Critical_path.cp_cycle r.Critical_path.cp_us r.Critical_path.cp_makespan_us)
        true
        (r.Critical_path.cp_us <= r.Critical_path.cp_makespan_us +. 1e-6);
      Alcotest.(check bool) "chain has tasks" true (r.Critical_path.cp_len >= 1);
      Alcotest.(check bool) "serial >= chain" true
        (r.Critical_path.cp_serial_us >= r.Critical_path.cp_us -. 1e-6))
    reports;
  (* the spawn-order invariant the analyzer relies on *)
  Array.iter
    (fun e ->
      if e.Trace.kind = Trace.Task_end && e.Trace.parent >= 0 then
        Alcotest.(check bool) "parent spawned before child" true
          (e.Trace.parent < e.Trace.task))
    (Trace.events tracer)

(* The acceptance bound on a real task: in a cycle with enough work to
   keep the simulated processes busy, the longest spawn chain is never
   longer than the makespan and never shorter than makespan/P (the
   schedule is within a factor P of chain-optimal). Queue overhead can
   break the lower bound on toy cycles, so this runs the paper's
   Eight-puzzle. *)
let test_eight_puzzle_chain_bounds () =
  let tracer = Trace.create () in
  let config =
    {
      Psme_soar.Agent.default_config with
      Psme_soar.Agent.learning = false;
      tracer = Some tracer;
      engine_mode =
        Engine.Sim_mode
          { Sim.procs = 8; queues = Psme_engine.Parallel.Multiple_queues;
            collect_trace = false };
    }
  in
  let w = Psme_workloads.Eight_puzzle.workload in
  let agent = w.Psme_workloads.Workload.make ~config () in
  ignore (Psme_soar.Agent.run agent);
  let reports = Critical_path.per_cycle (Trace.events tracer) in
  match Critical_path.longest reports with
  | None -> Alcotest.fail "no traced cycles"
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "chain %.0f <= makespan %.0f" r.Critical_path.cp_us
         r.Critical_path.cp_makespan_us)
      true
      (r.Critical_path.cp_us <= r.Critical_path.cp_makespan_us +. 1e-6);
    Alcotest.(check bool)
      (Printf.sprintf "chain %.0f >= makespan/8 %.0f" r.Critical_path.cp_us
         (r.Critical_path.cp_makespan_us /. 8.))
      true
      (r.Critical_path.cp_us >= r.Critical_path.cp_makespan_us /. 8.)

let test_cycle_to_json_fields () =
  let stats =
    {
      Cycle.tasks = 3;
      alpha_activations = 2;
      serial_us = 10.5;
      makespan_us = 5.25;
      queue_spins = 1.;
      failed_pops = 4;
      scanned = 7;
      emitted = 6;
      wall_ns = 12345;
      trace = [| (0., 1) |];
    }
  in
  let s = Cycle.to_json stats in
  (match Json.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Cycle.to_json invalid: %s" e);
  (* the field names are a stable contract for `soar_cli profile --json` *)
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (let re = Printf.sprintf "\"%s\":" field in
         let rec find i =
           i + String.length re <= String.length s
           && (String.sub s i (String.length re) = re || find (i + 1))
         in
         find 0))
    [
      "tasks"; "alpha_activations"; "serial_us"; "makespan_us"; "queue_spins";
      "failed_pops"; "scanned"; "emitted"; "wall_ns"; "speedup";
    ]

(* --- speedup-loss attribution --------------------------------------------- *)

let check_ledgers name ledgers =
  Alcotest.(check bool) (name ^ ": ledgers produced") true (ledgers <> []);
  List.iter
    (fun l ->
      match Attribution.check l with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    ledgers

let test_attribution_invariant () =
  let _, _, tracer = traced_run () in
  let ledgers =
    Attribution.per_cycle ~procs ~queue_op_us:Cost.default.Cost.queue_op_us
      (Trace.events tracer)
  in
  check_ledgers "traced run" ledgers;
  List.iter
    (fun l ->
      Alcotest.(check int) "one row per configured process" procs
        (List.length l.Attribution.a_workers);
      Alcotest.(check (list string)) "stable component names"
        [ "cp_residual"; "imbalance"; "queue"; "lock" ]
        (List.map fst (Attribution.components l));
      let wbusy =
        List.fold_left (fun s w -> s +. w.Attribution.w_busy_us) 0.
          l.Attribution.a_workers
      in
      Alcotest.(check (float 0.5)) "worker busy partitions cycle busy"
        l.Attribution.a_busy_us wbusy)
    ledgers

let run_workload_ledgers (w : Psme_workloads.Workload.t) ~procs =
  let tracer = Trace.create ~capacity:(1 lsl 21) () in
  let config =
    {
      Psme_soar.Agent.default_config with
      Psme_soar.Agent.learning = false;
      tracer = Some tracer;
      engine_mode =
        Engine.Sim_mode
          { Sim.procs; queues = Psme_engine.Parallel.Multiple_queues;
            collect_trace = false };
    }
  in
  let agent = w.Psme_workloads.Workload.make ~config () in
  ignore (Psme_soar.Agent.run agent);
  let cost = (Psme_soar.Agent.config agent).Psme_soar.Agent.cost in
  Attribution.per_cycle ~procs ~queue_op_us:cost.Cost.queue_op_us
    (Trace.events tracer)

(* The tentpole invariant on the paper's tasks: at every measured
   processor count the four ledger components sum to the measured gap
   and stay non-negative, cycle by cycle. *)
let attribution_workload_case (w : Psme_workloads.Workload.t) () =
  List.iter
    (fun p ->
      let name = Printf.sprintf "%s at %d procs" w.Psme_workloads.Workload.name p in
      check_ledgers name (run_workload_ledgers w ~procs:p))
    [ 1; 8; 11; 13 ]

(* Figure 6-6: the worst-parallelizing Eight-puzzle cycle is pinned
   down by its spawn chain — the ledger names the critical-path
   residual, not queue or lock overhead, as the dominant loss. *)
let test_attribution_worst_eight_puzzle () =
  let ledgers =
    run_workload_ledgers Psme_workloads.Eight_puzzle.workload ~procs:11
  in
  check_ledgers "eight-puzzle at 11 procs" ledgers;
  match Attribution.worst ledgers with
  | None -> Alcotest.fail "no traced cycles"
  | Some w ->
    let dom, _ = Attribution.dominant w in
    Alcotest.(check string)
      (Printf.sprintf "worst cycle %d dominated by the chain" w.Attribution.a_cycle)
      "cp_residual" dom

let test_attribution_json_contract () =
  let _, _, tracer = traced_run () in
  let ledgers =
    Attribution.per_cycle ~procs ~queue_op_us:Cost.default.Cost.queue_op_us
      (Trace.events tracer)
  in
  let doc =
    Attribution.to_json ~per_cycle:true ~task:"blocks"
      ~queue_op_us:Cost.default.Cost.queue_op_us ledgers
  in
  let s = Json.to_string doc in
  (match Json.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "attribution json invalid: %s" e);
  match Json.parse s with
  | Error e -> Alcotest.failf "attribution json does not parse: %s" e
  | Ok (Json.Obj fields) ->
    let get k = List.assoc_opt k fields in
    (match get "schema" with
    | Some (Json.Str "psme-attribution/1") -> ()
    | _ -> Alcotest.fail "schema tag missing or wrong");
    (match get "totals" with
    | Some (Json.Obj t) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("totals." ^ k ^ " present") true
            (List.mem_assoc k t))
        [ "cycles"; "ideal_us"; "busy_us"; "gap_us"; "cp_residual_us";
          "imbalance_us"; "queue_us"; "lock_us"; "dominant" ]
    | _ -> Alcotest.fail "totals object missing");
    (match get "worst_cycle" with
    | Some (Json.Obj w) ->
      Alcotest.(check bool) "worst cycle carries dominant" true
        (List.mem_assoc "dominant" w)
    | Some Json.Null when ledgers = [] -> ()
    | _ -> Alcotest.fail "worst_cycle missing");
    (match get "cycles" with
    | Some (Json.List (Json.Obj c :: _)) ->
      (match List.assoc_opt "workers" c with
      | Some (Json.List ws) ->
        Alcotest.(check int) "per-worker rows in per-cycle json" procs
          (List.length ws)
      | _ -> Alcotest.fail "workers array missing")
    | _ -> Alcotest.fail "cycles array missing")
  | Ok _ -> Alcotest.fail "attribution json is not an object"

(* --- chrome trace export --------------------------------------------------- *)

(* Satellite: the exporter sorts events by timestamp and labels lanes
   with Perfetto metadata records; attribution ledgers ride along as a
   counter track. *)
let test_chrome_trace_sorted_metadata () =
  let tr = Trace.create () in
  Trace.set_cycle tr 1;
  (* deliberately emitted out of timeline order *)
  Trace.emit tr Trace.Queue_push ~t_us:260. ~proc:1 ~task:2 ();
  Trace.emit tr Trace.Task_end ~t_us:250. ~dur_us:50. ~proc:1 ~node:3 ~task:2 ();
  Trace.emit tr Trace.Task_end ~t_us:140. ~dur_us:40. ~proc:0 ~node:2 ~task:1 ();
  Trace.emit tr Trace.Queue_push ~t_us:60. ~proc:0 ~task:1 ();
  let events = Trace.events tr in
  let ledgers = Attribution.per_cycle ~procs:2 ~queue_op_us:30. events in
  let s = Chrome_trace.to_string ~ledgers events in
  (match Json.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace invalid: %s" e);
  match Json.parse s with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok (Json.Obj fields) when List.mem_assoc "traceEvents" fields ->
    let records =
      match List.assoc "traceEvents" fields with
      | Json.List records -> records
      | _ -> Alcotest.fail "traceEvents is not an array"
    in
    let assoc k r = match r with Json.Obj f -> List.assoc_opt k f | _ -> None in
    let str v = match v with Some (Json.Str s) -> Some s | _ -> None in
    let metas =
      List.filter_map
        (fun r ->
          if str (assoc "ph" r) = Some "M" then str (assoc "name" r) else None)
        records
    in
    List.iter
      (fun n ->
        Alcotest.(check bool) (n ^ " metadata present") true (List.mem n metas))
      [ "process_name"; "thread_name"; "process_sort_index"; "thread_sort_index" ];
    let ts_of r =
      match assoc "ts" r with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let spans =
      List.filter_map
        (fun r -> if str (assoc "ph" r) = Some "X" then ts_of r else None)
        records
    in
    Alcotest.(check int) "both task spans exported" 2 (List.length spans);
    Alcotest.(check bool) "spans sorted by timestamp" true
      (List.sort compare spans = spans);
    let counters =
      List.filter
        (fun r ->
          str (assoc "ph" r) = Some "C"
          && str (assoc "name" r) = Some "speedup-loss")
        records
    in
    Alcotest.(check int) "one counter sample per ledger" (List.length ledgers)
      (List.length counters);
    List.iter
      (fun r ->
        match assoc "args" r with
        | Some (Json.Obj args) ->
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " counter track") true
                (List.mem_assoc k args))
            [ "cp_residual_us"; "imbalance_us"; "queue_us"; "lock_us" ]
        | _ -> Alcotest.fail "counter without args")
      counters
  | Ok _ -> Alcotest.fail "chrome trace is not a traceEvents object"

(* --- critical path on the compiled match path ------------------------------ *)

(* Satellite: the spawn-DAG reconstruction does not depend on the
   dispatch mechanism — closure-compiled node programs and the
   interpreted path produce the same per-cycle chains. *)
let test_critical_path_compiled_matches_interpreted () =
  let report compiled =
    let _, _, tracer = traced_run ~compiled () in
    Critical_path.per_cycle (Trace.events tracer)
  in
  let compiled = report true and interpreted = report false in
  Alcotest.(check int) "same cycle count" (List.length interpreted)
    (List.length compiled);
  List.iter2
    (fun (a : Critical_path.cycle_report) (b : Critical_path.cycle_report) ->
      Alcotest.(check int) "same cycle" a.Critical_path.cp_cycle
        b.Critical_path.cp_cycle;
      Alcotest.(check int) "same chain length" a.Critical_path.cp_len
        b.Critical_path.cp_len;
      Alcotest.(check (float 1e-6)) "same chain cost" a.Critical_path.cp_us
        b.Critical_path.cp_us;
      Alcotest.(check (float 1e-6)) "same serial cost"
        a.Critical_path.cp_serial_us b.Critical_path.cp_serial_us)
    interpreted compiled

let suite =
  [
    Alcotest.test_case "json writer" `Quick test_json_writer;
    Alcotest.test_case "json validator" `Quick test_json_validate;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
    Alcotest.test_case "chrome trace valid" `Quick test_chrome_trace_valid;
    Alcotest.test_case "profile totals = serial time" `Quick test_profile_totals_match_serial;
    Alcotest.test_case "critical path bounds" `Quick test_critical_path_bounds;
    Alcotest.test_case "eight-puzzle chain bounds" `Slow test_eight_puzzle_chain_bounds;
    Alcotest.test_case "cycle to_json contract" `Quick test_cycle_to_json_fields;
    Alcotest.test_case "attribution invariant" `Quick test_attribution_invariant;
    Alcotest.test_case "attribution json contract" `Quick test_attribution_json_contract;
    Alcotest.test_case "chrome trace sorted + metadata" `Quick
      test_chrome_trace_sorted_metadata;
    Alcotest.test_case "critical path: compiled = interpreted" `Quick
      test_critical_path_compiled_matches_interpreted;
    Alcotest.test_case "attribution invariant: strips" `Slow
      (attribution_workload_case Psme_workloads.Strips.workload);
    Alcotest.test_case "attribution invariant: cypress" `Slow
      (attribution_workload_case Psme_workloads.Cypress.workload);
    Alcotest.test_case "attribution invariant: eight-puzzle" `Slow
      (attribution_workload_case Psme_workloads.Eight_puzzle.workload);
    Alcotest.test_case "attribution worst cycle is chain-bound" `Slow
      test_attribution_worst_eight_puzzle;
  ]
