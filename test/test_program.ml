(* PR 5: closure-compiled node programs. The compiled path (PSM-E's
   "machine code" analogue, PAPER §4) must be bit-identical to the
   interpreter it replaces: same conflict sets, same measured counts
   (tasks, alpha activations, scanned, emitted), same verifier silence —
   on random production sets, random wme histories, and chunk batches
   spliced in at run time (§5.1). *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_check

let blocks_schema () =
  let schema = Schema.create () in
  Schema.declare schema "block" [ "name"; "color"; "on"; "state" ];
  schema

let parse schema src = Parser.parse_production schema src

let net_with ~compiled schema =
  Network.create ~config:{ Network.default_config with Network.compiled } schema

(* --- fingerprints ------------------------------------------------------ *)

let token_tags t =
  List.init (Token.length t) (fun i -> (Token.wme t i).Wme.timetag)

let cs_fingerprint net =
  Conflict_set.to_list net.Network.cs
  |> List.map (fun i -> (Sym.name i.Conflict_set.prod, token_tags i.Conflict_set.token))
  |> List.sort compare

let stats_fingerprint (s : Cycle.stats) =
  (s.Cycle.tasks, s.Cycle.alpha_activations, s.Cycle.scanned, s.Cycle.emitted)

(* --- differential property: compiled vs interpreted -------------------- *)

(* The same random early productions, wme history and late (chunk) batch
   drive two networks differing only in [config.compiled]. Every batch
   must produce the same golden counts, and the end state the same
   conflict set with a silent verifier on both. *)
let prop_differential engine_name run =
  QCheck.Test.make ~count:30
    ~name:
      (Printf.sprintf "compiled = interpreted on random chunk batches (%s)"
         engine_name)
    (QCheck.pair Test_props.arb_productions
       (QCheck.pair Test_props.arb_productions Test_props.arb_history))
    (fun (early, (late, history)) ->
      let schema = blocks_schema () in
      let netc = net_with ~compiled:true schema in
      let neti = net_with ~compiled:false schema in
      ignore (Test_check.try_build netc schema early);
      ignore (Test_check.try_build neti schema early);
      let wm = Wm.create () in
      let batches = Test_check.realize_history_wm wm history in
      List.iter
        (fun b ->
          let sc = run netc b and si = run neti b in
          if stats_fingerprint sc <> stats_fingerprint si then
            QCheck.Test.fail_reportf
              "batch counts diverge: compiled %s vs interpreted %s"
              (let a, b, c, d = stats_fingerprint sc in
               Printf.sprintf "(%d,%d,%d,%d)" a b c d)
              (let a, b, c, d = stats_fingerprint si in
               Printf.sprintf "(%d,%d,%d,%d)" a b c d))
        batches;
      (* the chunk batch arrives at quiescence, §5.2-style, and executes
         through the freshly spliced jumptable slots on the compiled net *)
      let rc = Test_check.try_build netc schema late in
      let ri = Test_check.try_build neti schema late in
      if List.length rc <> List.length ri then
        QCheck.Test.fail_reportf "chunk builds diverge: %d vs %d"
          (List.length rc) (List.length ri);
      let tc = Update.update_tasks_batch netc wm rc in
      let ti = Update.update_tasks_batch neti wm ri in
      let sc = Serial.run_tasks netc tc and si = Serial.run_tasks neti ti in
      if stats_fingerprint sc <> stats_fingerprint si then
        QCheck.Test.fail_reportf "chunk-splice counts diverge";
      if cs_fingerprint netc <> cs_fingerprint neti then
        QCheck.Test.fail_reportf "conflict sets diverge after chunk splice";
      let live = Wm.to_list wm in
      let vc = Verify.state netc live and vi = Verify.state neti live in
      if List.length vc.Finding.findings > 0 then
        QCheck.Test.fail_reportf "compiled net fails verifier:@ %a" Finding.pp vc;
      if List.length vi.Finding.findings > 0 then
        QCheck.Test.fail_reportf "interpreted net fails verifier:@ %a" Finding.pp
          vi;
      true)

let prop_differential_serial =
  prop_differential "serial" (fun net b -> Serial.run_changes net b)

let prop_differential_sim =
  let cfg = { Sim.procs = 5; queues = Parallel.Multiple_queues; collect_trace = false } in
  prop_differential "sim" (fun net b -> Sim.run_changes cfg net b)

(* --- exec_interpreted as the oracle on one network --------------------- *)

(* One network, compiled on: [Runtime.exec_interpreted] must agree with
   the compiled [Runtime.exec] outcome for the same task, including on a
   production whose residual uses an ordered relation (the comparator
   fallback path — eq/ne chains take the direct-call specialization). *)
let test_exec_oracle () =
  let schema = blocks_schema () in
  let build src =
    let net = net_with ~compiled:true schema in
    ignore (Build.add_production net (parse schema src));
    net
  in
  let srcs =
    [
      "(p eqne (block ^name <x> ^color <c>) (block ^on <x> ^color <> <c>) --> (write a))";
      "(p ord (block ^name <x> ^state <s>) (block ^on <x> ^state > <s>) --> (write b))";
    ]
  in
  List.iter
    (fun src ->
      let netc = build src and neti = build src in
      let mk wm name color on state =
        let fields = Array.make 4 Value.nil in
        fields.(0) <- Value.sym name;
        fields.(1) <- Value.sym color;
        fields.(2) <- Value.sym on;
        fields.(3) <- Value.int state;
        Wm.add wm ~cls:(Sym.intern "block") ~fields
      in
      let wm = Wm.create () in
      let ws =
        [
          mk wm "a" "red" "t" 1; mk wm "b" "blue" "a" 2; mk wm "c" "red" "a" 0;
          mk wm "a2" "red" "b" 3;
        ]
      in
      let changes = List.map (fun w -> (Task.Add, w)) ws in
      ignore (Serial.run_changes netc changes);
      (* drive the oracle net through exec_interpreted via config *)
      ignore (Serial.run_changes neti changes);
      Alcotest.(check (list (pair string (list int))))
        ("same conflict set: " ^ src) (cs_fingerprint neti) (cs_fingerprint netc))
    srcs

(* --- the jumptable grows in place (§5.1) -------------------------------- *)

(* Chunks spliced mid-run must execute compiled without a network
   rebuild: the dispatch table keeps its identity, its slot array grows,
   and the new production's nodes get entries immediately. *)
let test_jumptable_grows_in_place () =
  let schema = blocks_schema () in
  let net = net_with ~compiled:true schema in
  ignore
    (Build.add_production net
       (parse schema "(p base (block ^name <x> ^color red) --> (write base))"));
  let t1 =
    match Program.table net with
    | Some t -> t
    | None -> Alcotest.fail "no jumptable after first build"
  in
  let c1 = Program.compiled_count net in
  Alcotest.(check bool) "programs installed at build time" true (c1 > 0);
  (* mid-run: the network has already matched wmes *)
  let wm = Wm.create () in
  let mk name color on =
    let fields = Array.make 4 Value.nil in
    fields.(0) <- Value.sym name;
    fields.(1) <- Value.sym color;
    fields.(2) <- Value.sym on;
    Wm.add wm ~cls:(Sym.intern "block") ~fields
  in
  let w1 = mk "a" "red" "t" in
  ignore (Serial.run_changes net [ (Task.Add, w1) ]);
  Alcotest.(check (list (pair string (list int))))
    "base matched" [ ("base", [ w1.Wme.timetag ]) ] (cs_fingerprint net);
  (* splice enough chunks to force the slot array past its initial
     capacity; the table record itself must never be replaced *)
  let cap1 = Program.table_capacity t1 in
  let i = ref 0 in
  while Network.next_id net <= cap1 do
    incr i;
    ignore
      (Build.add_production net
         (parse schema
            (Printf.sprintf
               "(p chunk-%d (block ^name <x> ^color c%d) (block ^on <x>) --> (write c))"
               !i !i)))
  done;
  let t2 =
    match Program.table net with
    | Some t -> t
    | None -> Alcotest.fail "jumptable lost after chunk splice"
  in
  Alcotest.(check bool) "table record identity preserved" true (t1 == t2);
  Alcotest.(check bool)
    "slot array grew in place"
    true
    (Program.table_capacity t2 > cap1);
  Alcotest.(check bool)
    "chunk programs compiled incrementally" true
    (Program.compiled_count net > c1);
  (* and the spliced production matches through the compiled path *)
  let w2 = mk "b" "c1" "t" in
  let w3 = mk "x" "blue" "b" in
  ignore (Serial.run_changes net [ (Task.Add, w2); (Task.Add, w3) ]);
  let cs = cs_fingerprint net in
  Alcotest.(check bool)
    "spliced chunk fired" true
    (List.exists (fun (p, _) -> p = "chunk-1") cs)

(* --- excise clears slots ------------------------------------------------ *)

let test_excise_clears_programs () =
  let schema = blocks_schema () in
  let net = net_with ~compiled:true schema in
  ignore
    (Build.add_production net
       (parse schema "(p doomed (block ^name <x>) (block ^on <x>) --> (write d))"));
  let c1 = Program.compiled_count net in
  Build.excise_production net (Sym.intern "doomed");
  Alcotest.(check bool)
    "excise removed compiled programs" true
    (Program.compiled_count net < c1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_differential_serial;
    QCheck_alcotest.to_alcotest prop_differential_sim;
    Alcotest.test_case "compiled exec agrees with interpreter oracle" `Quick
      test_exec_oracle;
    Alcotest.test_case "jumptable grows in place on chunk splice" `Quick
      test_jumptable_grows_in_place;
    Alcotest.test_case "excise clears compiled programs" `Quick
      test_excise_clears_programs;
  ]
