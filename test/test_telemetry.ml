(* Tests for the always-on telemetry layer: the log-scale histogram,
   the zero-allocation contract of the record path, exclusive GC/phase
   attribution, the frozen JSON field names, the binary event-stream
   codec, the JSON parser, and the perf gate's verdict logic. *)

open Psme_obs

(* --- loghist ------------------------------------------------------------- *)

let test_loghist_basics () =
  let h = Loghist.create () in
  Alcotest.(check int) "empty count" 0 (Loghist.count h);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Loghist.percentile h 50.));
  List.iter (Loghist.add h) [ 0; 1; 7; 15; 100; 1_000; 1_000_000; -5 ];
  Alcotest.(check int) "count (negatives clamp to 0)" 8 (Loghist.count h);
  Alcotest.(check int) "min" 0 (Loghist.min h);
  Alcotest.(check int) "max" 1_000_000 (Loghist.max h);
  Alcotest.(check int) "sum" 1_001_123 (Loghist.sum h);
  (* values 0-15 land in exact unit buckets *)
  Alcotest.(check (float 0.)) "p=0 is min" 0. (Loghist.percentile h 0.);
  Alcotest.(check (float 0.)) "p=100 is exact max" 1_000_000.
    (Loghist.percentile h 100.)

let test_loghist_relative_error () =
  (* bucket width is <= 1/16 of the octave, so any percentile of a
     single-value population is within 6.25% of that value *)
  List.iter
    (fun v ->
      let h = Loghist.create () in
      for _ = 1 to 100 do
        Loghist.add h v
      done;
      let p50 = Loghist.percentile h 50. in
      let err = Float.abs (p50 -. float_of_int v) /. float_of_int v in
      Alcotest.(check bool)
        (Printf.sprintf "p50 of %d within 6.25%% (got %.1f)" v p50)
        true (err <= 0.0625))
    [ 17; 1_000; 123_456; 10_000_000; 987_654_321 ]

let test_loghist_merge () =
  let a = Loghist.create () and b = Loghist.create () in
  for i = 1 to 100 do
    Loghist.add a i
  done;
  for i = 101 to 200 do
    Loghist.add b (i * 1000)
  done;
  Loghist.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 200 (Loghist.count a);
  Alcotest.(check int) "merged max" 200_000 (Loghist.max a);
  Alcotest.(check int) "merged min" 1 (Loghist.min a);
  let total = ref 0 in
  Loghist.iter_nonempty (fun ~lower:_ ~upper:_ ~count -> total := !total + count) a;
  Alcotest.(check int) "bucket counts sum to count" 200 !total

(* --- zero-allocation record path ----------------------------------------- *)

let test_record_path_zero_alloc () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ ->
    (* bytecode boxes every float temporary; the contract is native *)
    ()
  | Sys.Native ->
    let t = Telemetry.create () in
    (* warm up so any one-time allocation is outside the window *)
    Telemetry.record_cycle_ns t 10;
    Telemetry.record_task_us t 1.5;
    Telemetry.record_dwell_ns t 10;
    Telemetry.incr_lock_acquired t;
    Telemetry.add_steals t 1;
    let us = Sys.opaque_identity 123.5 in
    let before = Gc.minor_words () in
    for i = 1 to 100_000 do
      Telemetry.record_cycle_ns t i;
      Telemetry.record_task_us t us;
      Telemetry.record_dwell_ns t i;
      Telemetry.add_steal_attempts t 1;
      Telemetry.incr_lock_acquired t
    done;
    let allocated = Gc.minor_words () -. before in
    (* budget covers the two Gc.minor_words calls themselves *)
    Alcotest.(check bool)
      (Printf.sprintf "500k record calls allocated %.0f words" allocated)
      true
      (allocated < 64.)

let test_phase_attribution_exclusive () =
  let t = Telemetry.create () in
  let churn n =
    for _ = 1 to n do
      ignore (Sys.opaque_identity (ref 0))
    done
  in
  Telemetry.with_phase t Telemetry.Match (fun () ->
      churn 1_000;
      Telemetry.with_phase t Telemetry.Act (fun () -> churn 10_000));
  let kv = Telemetry.snapshot_kv t in
  let get k = Option.value ~default:(-1.) (List.assoc_opt k kv) in
  let m = get "telemetry.phase.match.minor_words" in
  let a = get "telemetry.phase.act.minor_words" in
  (* a ref is >= 2 words; attribution is exclusive, so the nested Act
     section's words must not be double-counted into Match *)
  Alcotest.(check bool) (Printf.sprintf "act saw its churn (%.0f)" a) true (a >= 15_000.);
  Alcotest.(check bool) (Printf.sprintf "match excludes act (%.0f)" m) true
    (m >= 1_000. && m <= 10_000.);
  Alcotest.(check (float 0.)) "one match section" 1.
    (get "telemetry.phase.match.sections");
  Alcotest.(check (float 0.)) "no dropped sections" 0.
    (get "telemetry.dropped_sections")

let test_phase_overflow () =
  let t = Telemetry.create () in
  (* 12 nested begins overflow the 8-deep frame stack; the matching
     ends must drop symmetrically and leave the stack balanced *)
  for _ = 1 to 12 do
    Telemetry.phase_begin t Telemetry.Match
  done;
  for _ = 1 to 12 do
    Telemetry.phase_end t Telemetry.Match
  done;
  let kv = Telemetry.snapshot_kv t in
  let get k = Option.value ~default:(-1.) (List.assoc_opt k kv) in
  Alcotest.(check (float 0.)) "dropped count" 4. (get "telemetry.dropped_sections");
  Alcotest.(check (float 0.)) "recorded sections" 8.
    (get "telemetry.phase.match.sections");
  (* an unmatched extra end on the empty stack must not raise *)
  Telemetry.phase_end t Telemetry.Match

(* --- telemetry JSON: frozen field names ---------------------------------- *)

let test_telemetry_json_golden () =
  let t = Telemetry.create () in
  Telemetry.with_phase t Telemetry.Match (fun () -> ignore (Sys.opaque_identity (ref 0)));
  Telemetry.record_cycle_us t 100.;
  Telemetry.add_steals t 3;
  Telemetry.incr_lock_contended t;
  let s = Json.to_string (Telemetry.to_json t) in
  let doc =
    match Json.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "telemetry JSON does not parse: %s" e
  in
  let has path =
    let node =
      List.fold_left
        (fun acc k -> Option.bind acc (Json.member k))
        (Some doc) path
    in
    Alcotest.(check bool) (String.concat "." path ^ " present") true
      (node <> None)
  in
  (* the contract consumed by soar_cli telemetry --json and bench --gate;
     renaming any of these is a breaking change *)
  Alcotest.(check bool) "schema" true
    (Json.member "schema" doc = Some (Json.Str "psme-telemetry/1"));
  List.iter has
    [
      [ "cycles" ];
      [ "dropped_sections" ];
      [ "phases"; "match"; "sections" ];
      [ "phases"; "match"; "time_us" ];
      [ "phases"; "match"; "minor_words" ];
      [ "phases"; "match"; "promoted_words" ];
      [ "phases"; "match"; "major_words" ];
      [ "phases"; "match"; "minor_collections" ];
      [ "phases"; "match"; "major_collections" ];
      [ "phases"; "match"; "compactions" ];
      [ "phases"; "match"; "max_gc_section_us" ];
      [ "phases"; "conflict-resolution"; "sections" ];
      [ "phases"; "act"; "sections" ];
      [ "phases"; "chunk-splice"; "sections" ];
      [ "hist"; "cycle_us"; "count" ];
      [ "hist"; "cycle_us"; "mean_us" ];
      [ "hist"; "cycle_us"; "p50_us" ];
      [ "hist"; "cycle_us"; "p90_us" ];
      [ "hist"; "cycle_us"; "p99_us" ];
      [ "hist"; "cycle_us"; "max_us" ];
      [ "hist"; "cycle_us"; "buckets" ];
      [ "hist"; "task_us"; "count" ];
      [ "hist"; "dwell_us"; "count" ];
      [ "queue"; "pushes" ];
      [ "queue"; "pops" ];
      [ "queue"; "steal_attempts" ];
      [ "queue"; "steals" ];
      [ "queue"; "steal_cas_failures" ];
      [ "queue"; "pop_races" ];
      [ "lock"; "acquired" ];
      [ "lock"; "contended" ];
      [ "lock"; "spins" ];
    ];
  (* non-empty histogram buckets carry the per-bucket contract *)
  (match
     Option.bind (Json.member "hist" doc) (Json.member "cycle_us")
     |> Fun.flip Option.bind (Json.member "buckets")
   with
  | Some (Json.List (Json.Obj fields :: _)) ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("bucket field " ^ k) true
          (List.mem_assoc k fields))
      [ "lo_ns"; "hi_ns"; "count" ]
  | _ -> Alcotest.fail "cycle_us has no buckets despite one sample");
  (* a snapshot taken now and one taken after counters moved produce a
     well-formed one-line delta *)
  let before = Telemetry.snapshot_kv t in
  Telemetry.record_cycle_us t 50.;
  Telemetry.add_steals t 2;
  let after = Telemetry.snapshot_kv t in
  let line = Telemetry.delta_line ~before ~after in
  Alcotest.(check bool) "delta line mentions cycles" true
    (String.length line > 0 && String.contains line 'c')

(* --- stream codec -------------------------------------------------------- *)

let ev ?(kind = Trace.Task_end) i =
  {
    Trace.t_us = float_of_int i *. 1.5;
    kind;
    proc = i mod 4;
    node = 100 + i;
    task = i;
    parent = i - 1;
    cycle = i / 10;
    dur_us = 0.25 *. float_of_int i;
    scanned = 2 * i;
    emitted = (if i mod 2 = 0 then 1 else 0);
  }

let test_stream_roundtrip () =
  let events =
    Array.append
      [| ev ~kind:Trace.Cycle_begin 0; ev ~kind:Trace.Mem_access 1 |]
      (Array.init 50 (fun i -> ev (i + 2)))
  in
  match Stream.decode (Stream.encode events) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok back ->
    Alcotest.(check int) "length" (Array.length events) (Array.length back);
    Array.iteri
      (fun i e ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d survives" i)
          true (e = events.(i)))
      back

let test_stream_empty_roundtrip () =
  match Stream.decode (Stream.encode [||]) with
  | Ok [||] -> ()
  | Ok _ -> Alcotest.fail "empty stream decoded non-empty"
  | Error e -> Alcotest.failf "empty roundtrip failed: %s" e

let test_stream_decode_errors () =
  let bad name s =
    match Stream.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s was accepted" name
  in
  let good = Stream.encode [| ev 1; ev 2 |] in
  bad "empty input" "";
  bad "short header" "PSMEEV";
  bad "bad magic" ("XXXXXXXX" ^ String.sub good 8 (String.length good - 8));
  bad "truncated event" (String.sub good 0 (String.length good - 5));
  bad "trailing bytes" (good ^ "\000");
  (* corrupt the first event's kind tag to an out-of-range value *)
  let unknown = Bytes.of_string good in
  Bytes.set unknown 16 '\255';
  bad "unknown tag" (Bytes.to_string unknown);
  (* count field claiming more events than present *)
  let overcount = Bytes.of_string good in
  Bytes.set_int64_le overcount 8 99L;
  bad "overstated count" (Bytes.to_string overcount)

let test_stream_file_roundtrip () =
  let path = Filename.temp_file "psme-stream" ".evs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let events = Array.init 10 ev in
      Stream.write_file path events;
      match Stream.read_file path with
      | Ok back -> Alcotest.(check int) "length" 10 (Array.length back)
      | Error e -> Alcotest.failf "file roundtrip failed: %s" e);
  Alcotest.(check bool) "missing file is Error" true
    (Result.is_error (Stream.read_file "/nonexistent/psme.evs"))

(* --- json parser --------------------------------------------------------- *)

let test_json_parse_tree () =
  let check_parse name src expected =
    match Json.parse src with
    | Ok v -> Alcotest.(check bool) name true (v = expected)
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  check_parse "ints stay ints" "[1, -2, 0]"
    (Json.List [ Json.Int 1; Json.Int (-2); Json.Int 0 ]);
  check_parse "fractions become floats" "[1.5, 1e2]"
    (Json.List [ Json.Float 1.5; Json.Float 100. ]);
  check_parse "nested object" {|{"a": {"b": [true, null]}}|}
    (Json.Obj [ ("a", Json.Obj [ ("b", Json.List [ Json.Bool true; Json.Null ]) ]) ]);
  check_parse "escapes" {|"a\n\t\"\\A"|} (Json.Str "a\n\t\"\\A");
  (* emitter -> parser -> emitter is a fixed point *)
  let doc =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 2.5);
        ("s", Json.Str "x\"y");
        ("l", Json.List [ Json.Null; Json.Bool false ]);
      ]
  in
  let s = Json.to_string doc in
  (match Json.parse s with
  | Ok back -> Alcotest.(check string) "round-trip stable" s (Json.to_string back)
  | Error e -> Alcotest.failf "round-trip: %s" e);
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) (name ^ " rejected") true
        (Result.is_error (Json.parse src)))
    [
      ("trailing data", "{} x");
      ("bare word", "nope");
      ("unterminated string", {|"abc|});
      ("lone brace", "{");
    ];
  (* accessors *)
  let d = Json.Obj [ ("a", Json.Int 3); ("b", Json.Str "s") ] in
  Alcotest.(check bool) "member hit" true (Json.member "a" d = Some (Json.Int 3));
  Alcotest.(check bool) "member miss" true (Json.member "z" d = None);
  Alcotest.(check bool) "member on list" true (Json.member "a" (Json.List []) = None);
  Alcotest.(check bool) "to_float_opt int" true
    (Json.to_float_opt (Json.Int 3) = Some 3.);
  Alcotest.(check bool) "to_float_opt str" true
    (Json.to_float_opt (Json.Str "3") = None)

(* --- perf gate ----------------------------------------------------------- *)

let bench_doc ~e2e_cps ~micro_ns =
  Json.Obj
    [
      ("schema", Json.Str "psme-bench/1");
      ( "e2e",
        Json.List
          [
            Json.Obj
              [
                ("workload", Json.Str "eight-puzzle");
                ("variant", Json.Str "compiled");
                ("cycles_per_sec", Json.Float e2e_cps);
              ];
          ] );
      ( "micro",
        Json.List
          (List.mapi
             (fun i ns ->
               Json.Obj
                 [
                   ("name", Json.Str (Printf.sprintf "bench-%d" i));
                   ("ns_per_run", Json.Float ns);
                 ])
             micro_ns) );
      ( "speedup",
        Json.List
          [
            Json.Obj
              [
                ("workload", Json.Str "eight-puzzle");
                ("queues", Json.Str "multi");
                ( "points",
                  Json.List
                    [
                      Json.Obj
                        [ ("procs", Json.Int 4); ("speedup", Json.Float 3.1) ];
                    ] );
              ];
          ] );
      ("telemetry", Json.Obj [ ("minor_words_per_cycle", Json.Float 90_000.) ]);
    ]

let test_perf_gate_verdicts () =
  let base = bench_doc ~e2e_cps:900. ~micro_ns:[ 100.; 200.; 300. ] in
  (* identical documents pass with geomean 1.0 *)
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:base ~current:base () in
  Alcotest.(check bool) "identical passes" true v.Psme_harness.Perf_gate.v_passed;
  Alcotest.(check int) "exit 0" 0 (Psme_harness.Perf_gate.exit_code v);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9))
        ("geomean 1.0 for " ^ s.Psme_harness.Perf_gate.s_section)
        1.0 s.Psme_harness.Perf_gate.s_geomean)
    v.Psme_harness.Perf_gate.v_sections;
  (* a uniform 20% micro regression trips the 15% band *)
  let slow = bench_doc ~e2e_cps:900. ~micro_ns:[ 120.; 240.; 360. ] in
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:base ~current:slow () in
  Alcotest.(check bool) "20% regression fails" false v.Psme_harness.Perf_gate.v_passed;
  Alcotest.(check int) "exit 1" 1 (Psme_harness.Perf_gate.exit_code v);
  (* one outlier that leaves the section geomean inside the band is
     advisory only (1.3^(1/3) = 1.09 < 1.15) *)
  let outlier = bench_doc ~e2e_cps:900. ~micro_ns:[ 130.; 200.; 300. ] in
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:base ~current:outlier () in
  Alcotest.(check bool) "single outlier passes" true v.Psme_harness.Perf_gate.v_passed;
  Alcotest.(check bool) "outlier is advisory" true
    (List.exists
       (fun c -> c.Psme_harness.Perf_gate.c_name = "bench-0")
       v.Psme_harness.Perf_gate.v_advisories);
  (* e2e is oriented: fewer cycles/sec is worse *)
  let slower_e2e = bench_doc ~e2e_cps:700. ~micro_ns:[ 100.; 200.; 300. ] in
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:base ~current:slower_e2e () in
  Alcotest.(check bool) "e2e slowdown fails" false v.Psme_harness.Perf_gate.v_passed;
  (* ...and a faster current tree passes with geomean < 1 *)
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:slower_e2e ~current:base () in
  Alcotest.(check bool) "speedup passes" true v.Psme_harness.Perf_gate.v_passed;
  (* benchmarks only in one document are ignored, not errors *)
  let fewer = bench_doc ~e2e_cps:900. ~micro_ns:[ 100. ] in
  let v = Psme_harness.Perf_gate.compare_docs ~baseline:base ~current:fewer () in
  Alcotest.(check bool) "shrunken suite passes" true v.Psme_harness.Perf_gate.v_passed;
  Alcotest.(check bool) "tolerance validated" true
    (try
       ignore (Psme_harness.Perf_gate.compare_docs ~tolerance:1.5 ~baseline:base ~current:base ());
       false
     with Invalid_argument _ -> true)

let test_perf_gate_doc_of_string () =
  let plain = Json.to_string (bench_doc ~e2e_cps:900. ~micro_ns:[ 100. ]) in
  Alcotest.(check bool) "psme-bench/1 accepted" true
    (Result.is_ok (Psme_harness.Perf_gate.doc_of_string plain));
  let compare_doc =
    Printf.sprintf {|{"schema": "psme-bench-compare/1", "before": {}, "after": %s}|}
      plain
  in
  (match Psme_harness.Perf_gate.doc_of_string compare_doc with
  | Ok doc ->
    Alcotest.(check bool) "compare doc unwraps after" true
      (Json.member "schema" doc = Some (Json.Str "psme-bench/1"))
  | Error e -> Alcotest.failf "compare doc rejected: %s" e);
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) (name ^ " rejected") true
        (Result.is_error (Psme_harness.Perf_gate.doc_of_string src)))
    [
      ("not json", "nope");
      ("unknown schema", {|{"schema": "psme-bench/99"}|});
      ("missing schema", "{}");
      ("compare without after", {|{"schema": "psme-bench-compare/1"}|});
    ]

let suite =
  [
    Alcotest.test_case "loghist basics" `Quick test_loghist_basics;
    Alcotest.test_case "loghist relative error" `Quick test_loghist_relative_error;
    Alcotest.test_case "loghist merge" `Quick test_loghist_merge;
    Alcotest.test_case "record path zero alloc" `Quick test_record_path_zero_alloc;
    Alcotest.test_case "phase attribution exclusive" `Quick
      test_phase_attribution_exclusive;
    Alcotest.test_case "phase stack overflow" `Quick test_phase_overflow;
    Alcotest.test_case "telemetry json golden" `Quick test_telemetry_json_golden;
    Alcotest.test_case "stream roundtrip" `Quick test_stream_roundtrip;
    Alcotest.test_case "stream empty roundtrip" `Quick test_stream_empty_roundtrip;
    Alcotest.test_case "stream decode errors" `Quick test_stream_decode_errors;
    Alcotest.test_case "stream file roundtrip" `Quick test_stream_file_roundtrip;
    Alcotest.test_case "json parse tree" `Quick test_json_parse_tree;
    Alcotest.test_case "perf gate verdicts" `Quick test_perf_gate_verdicts;
    Alcotest.test_case "perf gate doc_of_string" `Quick test_perf_gate_doc_of_string;
  ]
