(* Shared helpers for the test suites. *)

open Psme_support
open Psme_ops5
open Psme_rete

let blocks_decls =
  {|
(literalize block name color on state)
(literalize hand state name)
(literalize place name table)
|}

(* The paper's Figure 2-1 production. *)
let graspable_src =
  {|
(p blue-block-is-graspable
  (block ^name <x> ^color blue)
  -(block ^on <x>)
  (hand ^state free)
  -->
  (make place ^name <x>))
|}

let schema_with ?(decls = blocks_decls) () =
  let schema = Schema.create () in
  ignore (Parser.parse_program schema decls);
  schema

let parse_prods schema src = Parser.productions schema src

(* Build a wme value array for a class from attribute/value pairs. *)
let fields schema cls pairs =
  let cls = Sym.intern cls in
  let arr = Array.make (Schema.arity schema cls) Value.nil in
  List.iter
    (fun (attr, v) -> arr.(Schema.field_index schema cls (Sym.intern attr)) <- v)
    pairs;
  arr

let add_wme schema wm cls pairs =
  Wm.add wm ~cls:(Sym.intern cls) ~fields:(fields schema cls pairs)

let sym = Value.sym
let int = Value.int

(* Serial match of a set of changes against a network. *)
let match_changes net changes =
  ignore (Psme_engine.Serial.run_changes net changes)

let add_and_match net wm schema cls pairs =
  let w = add_wme schema wm cls pairs in
  match_changes net [ (Task.Add, w) ];
  w

let remove_and_match net wm w =
  Wm.remove wm w;
  match_changes net [ (Task.Delete, w) ]

let cs_names net =
  List.map
    (fun i -> Sym.name i.Conflict_set.prod)
    (Conflict_set.to_list net.Network.cs)

(* A network loaded with the given source text. *)
let network_of ?(config = Network.default_config) ?(decls = blocks_decls) src =
  let schema = schema_with ~decls () in
  let prods = parse_prods schema src in
  let net = Network.create ~config schema in
  ignore (Build.add_all net prods);
  (schema, net)

(* Deterministic rendering of a conflict set for equality checks. *)
let cs_fingerprint net =
  Conflict_set.to_list net.Network.cs
  |> List.map (fun i ->
         Printf.sprintf "%s:%s" (Sym.name i.Conflict_set.prod)
           (String.concat ","
              (Array.to_list
                 (Array.map
                    (fun w -> string_of_int w.Wme.timetag)
                    (Token.wmes i.Conflict_set.token)))))
  |> String.concat ";"
