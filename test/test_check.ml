(* The correctness-analysis suite: network/state verifier, production
   linter, race detector. The fault-injection tests are the point: a
   verifier that never fires is indistinguishable from no verifier, so
   each analyzer is shown both clean on correct runs and loud under a
   seeded §5.2 / §6.1 bug. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_check

let blocks_schema () =
  let schema = Schema.create () in
  Schema.declare schema "block" [ "name"; "color"; "on"; "state" ];
  schema

let parse schema src = Parser.parse_production schema src

let build_net ?config schema srcs =
  let net = Network.create ?config schema in
  List.iter (fun src -> ignore (Build.add_production net (parse schema src))) srcs;
  net

let block_wme wm ~name ~color ~on =
  let cls = Sym.intern "block" in
  let fields = Array.make 4 Value.nil in
  fields.(0) <- Value.sym name;
  fields.(1) <- Value.sym color;
  if on <> "" then fields.(2) <- Value.sym on;
  Wm.add wm ~cls ~fields

let base_prods =
  [
    "(p graspable (block ^name <x> ^color blue) -(block ^on <x>) --> (write ok))";
    "(p tower (block ^name <a> ^on <b>) (block ^name <b>) --> (write ok))";
    "(p reds (block ^color red ^on <x>) (block ^name <x> ^color red) --> (write ok))";
  ]

(* a small scene: towers a-on-b-on-c plus loose blocks *)
let seed_scene wm =
  [
    block_wme wm ~name:"a" ~color:"red" ~on:"b";
    block_wme wm ~name:"b" ~color:"red" ~on:"c";
    block_wme wm ~name:"c" ~color:"blue" ~on:"";
    block_wme wm ~name:"d" ~color:"blue" ~on:"";
    block_wme wm ~name:"e" ~color:"green" ~on:"d";
  ]

let adds wmes = List.map (fun w -> (Task.Add, w)) wmes

(* --- structural verifier ---------------------------------------------------- *)

let test_structure_clean () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let r = Verify.structure net in
  Alcotest.(check int) "no errors" 0 (Finding.errors r);
  Alcotest.(check bool) "checked something" true (r.Finding.checked > 0)

let test_structure_dangling_successor () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  (* wire an edge to a node that does not exist *)
  let some_id =
    Network.fold_nodes net ~init:0 ~f:(fun a n -> max a n.Network.id)
  in
  Network.add_successor net ~of_:some_id ~node:999_999 ~port:Network.P_left;
  let r = Verify.structure net in
  Alcotest.(check bool) "dangling edge detected" true (Finding.errors r > 0)

let test_structure_lost_pnode () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let pm = List.hd (Network.productions net) in
  Hashtbl.remove net.Network.beta pm.Network.pnode;
  let r = Verify.structure net in
  Alcotest.(check bool) "lost P-node detected" true (Finding.errors r > 0)

(* --- state verifier ---------------------------------------------------------- *)

let test_state_clean () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  let wmes = seed_scene wm in
  ignore (Serial.run_changes net (adds wmes));
  (* delete one and verify against the surviving wm *)
  let victim = List.nth wmes 4 in
  Wm.remove wm victim;
  ignore (Serial.run_changes net [ (Task.Delete, victim) ]);
  let r = Verify.state net (Wm.to_list wm) in
  Alcotest.(check int) "no diffs" 0 (List.length r.Finding.findings)

let test_state_clean_after_update () =
  (* §5.2 done right: add a production at run time, deliver through the
     filtered update, and the state verifier stays silent *)
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  ignore (Serial.run_changes net (adds (seed_scene wm)));
  let chunk =
    parse schema
      "(p chunk (block ^name <a> ^on <b>) (block ^name <b> ^color red) --> (write ok))"
  in
  let res = Build.add_production net chunk in
  let tasks = Update.update_tasks net wm res in
  ignore (Serial.run_tasks net tasks);
  let r = Verify.state net (Wm.to_list wm) in
  Alcotest.(check int) "no diffs after update" 0 (List.length r.Finding.findings)

let test_state_detects_unfiltered_update () =
  (* the injected §5.2 fault: re-seed working memory WITHOUT the
     min-node-id filter, so pre-existing shared nodes receive every wme
     a second time — refcounts inflate and duplicates appear *)
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  ignore (Serial.run_changes net (adds (seed_scene wm)));
  let chunk =
    parse schema
      "(p chunk (block ^name <a> ^on <b>) (block ^name <b> ^color red) --> (write ok))"
  in
  ignore (Build.add_production net chunk);
  let tasks = ref [] in
  Wm.iter
    (fun w ->
      let seeded, _ = Runtime.seed_wme_change net Task.Add w in
      tasks := List.rev_append seeded !tasks)
    wm;
  ignore (Serial.run_tasks net !tasks);
  let r = Verify.state net (Wm.to_list wm) in
  Alcotest.(check bool) "unfiltered update detected" true (Finding.errors r > 0)

(* --- seed_wme_change boundaries (the §5.2 filter) ---------------------------- *)

let test_seed_filter_threshold () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  ignore (Serial.run_changes net (adds (seed_scene wm)));
  let threshold = Network.next_id net in
  let chunk =
    parse schema
      "(p chunk (block ^name <a> ^on <b>) (block ^name <b> ^color red) --> (write ok))"
  in
  let res = Build.add_production net chunk in
  Alcotest.(check int) "watermark = lowest new node id" threshold
    res.Build.first_new_id;
  Wm.iter
    (fun w ->
      let filtered, _ = Runtime.seed_wme_change ~min_node_id:threshold net Task.Add w in
      let all, _ = Runtime.seed_wme_change net Task.Add w in
      List.iter
        (fun t ->
          Alcotest.(check bool) "filtered delivery targets only new nodes" true
            (Task.node t >= threshold))
        filtered;
      Alcotest.(check bool) "filter only removes deliveries" true
        (List.length filtered <= List.length all);
      (* a threshold above every node suppresses everything *)
      let none, _ =
        Runtime.seed_wme_change ~min_node_id:(Network.next_id net) net Task.Add w
      in
      Alcotest.(check int) "past-the-end threshold delivers nothing" 0
        (List.length none))
    wm

let test_update_empty_batch () =
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  ignore (Serial.run_changes net (adds (seed_scene wm)));
  Alcotest.(check int) "empty batch yields no tasks" 0
    (List.length (Update.update_tasks_batch net wm []))

let test_update_fully_shared_chunk () =
  (* a chunk identical to an existing production shares every beta node:
     only a fresh P-node is created, the update replays the last shared
     node into it, and the new production matches exactly like the old *)
  let schema = blocks_schema () in
  let net = build_net schema base_prods in
  let wm = Wm.create () in
  ignore (Serial.run_changes net (adds (seed_scene wm)));
  let twin =
    parse schema "(p tower-twin (block ^name <a> ^on <b>) (block ^name <b>) --> (write ok))"
  in
  let res = Build.add_production net twin in
  Alcotest.(check int) "only the P-node is new" 1
    (List.length res.Build.new_beta_nodes);
  let tasks = Update.update_tasks_batch net wm [ res ] in
  ignore (Serial.run_tasks net tasks);
  let insts name =
    Conflict_set.to_list net.Network.cs
    |> List.filter (fun i -> Sym.name i.Conflict_set.prod = name)
    |> List.length
  in
  Alcotest.(check int) "twin matches like the original" (insts "tower")
    (insts "tower-twin");
  Alcotest.(check bool) "twin matches at all" true (insts "tower-twin" > 0);
  let r = Verify.full net (Wm.to_list wm) in
  Alcotest.(check int) "verifier silent" 0 (Finding.errors r)

(* --- state verifier as a property (satellite: random chunk batches) ---------- *)

(* realize a Test_props history against a Wm, so live wmes and the
   verifier's rebuild seed share timetags *)
let realize_history_wm wm batches =
  let added = ref [||] in
  let deleted = Hashtbl.create 16 in
  List.map
    (fun batch ->
      let changes = ref [] in
      List.iter
        (fun op ->
          match op with
          | Test_props.Add_block (n, c, s) ->
            let cls = Sym.intern "block" in
            let fields = Array.make 4 Value.nil in
            fields.(0) <- Value.sym n;
            fields.(1) <- Value.sym c;
            fields.(3) <- Value.Int s;
            let w = Wm.add wm ~cls ~fields in
            added := Array.append !added [| w |];
            changes := (Task.Add, w) :: !changes
          | Test_props.Del i ->
            let n = Array.length !added in
            if n > 0 then begin
              let w = !added.(i mod n) in
              if
                (not (Hashtbl.mem deleted w.Wme.timetag))
                && not (List.exists (fun (_, x) -> Wme.equal x w) !changes)
              then begin
                Hashtbl.replace deleted w.Wme.timetag ();
                Wm.remove wm w;
                changes := (Task.Delete, w) :: !changes
              end
            end)
        batch;
      List.rev !changes)
    batches

let try_build net schema srcs =
  (* random productions may collide on name or be rejected; skip those *)
  List.filter_map
    (fun src ->
      match parse schema src with
      | p -> (
        try Some (Build.add_production net p) with
        | Invalid_argument _ | Build.Build_error _ -> None)
      | exception _ -> None)
    srcs

let prop_update_state_verified engine_name run =
  QCheck.Test.make ~count:40
    ~name:
      (Printf.sprintf "random chunk batch leaves zero state diffs (%s)" engine_name)
    (QCheck.pair Test_props.arb_productions
       (QCheck.pair Test_props.arb_productions Test_props.arb_history))
    (fun (early, (late, history)) ->
      let schema = blocks_schema () in
      let net = Network.create schema in
      ignore (try_build net schema early);
      let wm = Wm.create () in
      let batches = realize_history_wm wm history in
      List.iter (fun b -> run net b) batches;
      (* the chunk batch arrives at quiescence, §5.2-style *)
      let results = try_build net schema late in
      let tasks = Update.update_tasks_batch net wm results in
      ignore (Serial.run_tasks net tasks);
      let r = Verify.full net (Wm.to_list wm) in
      if Finding.errors r > 0 then
        QCheck.Test.fail_reportf "verifier found diffs:@ %a" Finding.pp r
      else true)

let prop_update_state_verified_serial =
  prop_update_state_verified "serial" (fun net b ->
      ignore (Serial.run_changes net b))

let prop_update_state_verified_sim =
  let cfg = { Sim.procs = 5; queues = Parallel.Multiple_queues; collect_trace = false } in
  prop_update_state_verified "sim" (fun net b -> ignore (Sim.run_changes cfg net b))

(* --- linter ------------------------------------------------------------------- *)

let lint_src src =
  let schema = blocks_schema () in
  Lint.source schema src

let rules report =
  List.map (fun f -> f.Finding.rule) report.Finding.findings |> List.sort_uniq compare

let test_lint_clean () =
  let r =
    lint_src "(p ok (block ^name <x> ^color blue) -(block ^on <x>) --> (write <x>))"
  in
  Alcotest.(check (list string)) "no findings" [] (rules r)

(* The parser rejects unknown classes and same-field constant clashes at
   parse time, so those lint rules only matter for productions built
   programmatically — which is exactly how chunking creates them. *)
let raw_prod ?(name = "bad") lhs =
  Production.make ~name:(Sym.intern name) ~lhs ~rhs:[ Action.Halt ] ()

let prod_rules schema p = List.map (fun f -> f.Finding.rule) (Lint.production schema p)

let test_lint_undeclared () =
  let schema = blocks_schema () in
  let widget = { Cond.cls = Sym.intern "widget"; tests = [] } in
  Alcotest.(check (list string)) "undeclared class" [ "undeclared-class" ]
    (prod_rules schema (raw_prod [ Cond.Pos widget ]));
  let bad_field =
    { Cond.cls = Sym.intern "block"; tests = [ (9, Cond.T_const (Value.sym "x")) ] }
  in
  Alcotest.(check (list string)) "unknown field" [ "bad-field" ]
    (prod_rules schema (raw_prod [ Cond.Pos bad_field ]))

let test_lint_unsatisfiable_ce () =
  let schema = blocks_schema () in
  let clash =
    {
      Cond.cls = Sym.intern "block";
      tests =
        [
          (1, Cond.T_const (Value.sym "red")); (1, Cond.T_const (Value.sym "blue"));
        ];
    }
  in
  Alcotest.(check bool) "constant clash" true
    (List.mem "unsatisfiable-ce" (prod_rules schema (raw_prod [ Cond.Pos clash ])));
  let r2 = lint_src "(p bad (block ^state { > 5 < 2 }) --> (write ok))" in
  Alcotest.(check bool) "empty numeric interval" true
    (List.mem "unsatisfiable-ce" (rules r2))

let test_lint_never_fires () =
  let r =
    lint_src
      "(p bad (block ^color red) -(block ^color red) --> (write ok))"
  in
  Alcotest.(check bool) "positive CE also negated" true
    (List.mem "unsatisfiable-production" (rules r))

let test_lint_unused_and_duplicates () =
  let r =
    lint_src
      "(p a (block ^name <x> ^on <y>) --> (write <x>))\n\
       (p b (block ^color red) (block ^color red) --> (write ok))"
  in
  let rs = rules r in
  Alcotest.(check bool) "unused variable" true (List.mem "unused-variable" rs);
  Alcotest.(check bool) "duplicate CE" true (List.mem "duplicate-ce" rs)

let test_lint_pragma_suppression () =
  let src =
    "; lint: allow unused-variable a\n\
     (p a (block ^name <x> ^on <y>) --> (write <x>))"
  in
  let r = lint_src src in
  Alcotest.(check (list string)) "finding suppressed" [] (rules r);
  Alcotest.(check int) "suppression counted" 1 r.Finding.suppressed;
  Alcotest.(check (list (pair string (option string))))
    "pragma parsed"
    [ ("unused-variable", Some "a") ]
    (Lint.pragmas_of_source src)

let read_file path =
  let path =
    (* dune runtest sandboxes the test one level below the workspace *)
    List.find_opt Sys.file_exists [ path; Filename.concat ".." path ]
    |> Option.value ~default:path
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_lint_shipped_programs () =
  (* the satellite gate: the bundled programs lint clean, strictly *)
  let check_file path =
    let schema = Schema.create () in
    Psme_soar.Agent.prepare_schema schema;
    let r = Lint.source schema (read_file path) in
    Alcotest.(check int)
      (Printf.sprintf "%s strict-clean" path)
      0
      (Finding.exit_code ~strict:true r)
  in
  check_file "programs/blocks.ops5";
  check_file "programs/selection.soar"

(* --- race detector ------------------------------------------------------------ *)

let bits = Psme_obs.Stream.access_bits

let test_races_synthetic () =
  (* two unordered tasks on different processors, same hash line, both
     writing without the lock: exactly one racy pair *)
  let tr = Psme_obs.Trace.create () in
  let open Psme_obs.Trace in
  emit tr Task_start ~t_us:0. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr Task_start ~t_us:1. ~proc:1 ~task:2 ~parent:(-1) ();
  emit tr Mem_access ~t_us:2. ~proc:0 ~node:10 ~task:1 ~scanned:3
    ~emitted:(bits ~write:true ~locked:false) ();
  emit tr Mem_access ~t_us:3. ~proc:1 ~node:11 ~task:2 ~scanned:3
    ~emitted:(bits ~write:true ~locked:false) ();
  emit tr Task_end ~t_us:4. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr Task_end ~t_us:5. ~proc:1 ~task:2 ~parent:(-1) ();
  let r = Races.analyze (events tr) in
  Alcotest.(check int) "one racy pair" 1 r.Races.n_races;
  Alcotest.(check int) "both accesses seen" 2 r.Races.n_accesses;
  Alcotest.(check bool) "reported as error" true
    (Finding.errors (Races.to_findings r) > 0)

let test_races_ordered_and_locked () =
  let open Psme_obs.Trace in
  (* spawn-ordered tasks do not race even unlocked... *)
  let tr = create () in
  emit tr Task_start ~t_us:0. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr Mem_access ~t_us:1. ~proc:0 ~node:10 ~task:1 ~scanned:3
    ~emitted:(bits ~write:true ~locked:false) ();
  emit tr Task_end ~t_us:2. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr Task_start ~t_us:3. ~proc:1 ~task:2 ~parent:1 ();
  emit tr Mem_access ~t_us:4. ~proc:1 ~node:11 ~task:2 ~scanned:3
    ~emitted:(bits ~write:true ~locked:false) ();
  emit tr Task_end ~t_us:5. ~proc:1 ~task:2 ~parent:1 ();
  Alcotest.(check int) "spawn edge orders the pair" 0
    (Races.analyze (events tr)).Races.n_races;
  (* ...and concurrent tasks do not race when both hold the line lock *)
  let tr2 = create () in
  emit tr2 Task_start ~t_us:0. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr2 Task_start ~t_us:1. ~proc:1 ~task:2 ~parent:(-1) ();
  emit tr2 Mem_access ~t_us:2. ~proc:0 ~node:10 ~task:1 ~scanned:3
    ~emitted:(bits ~write:true ~locked:true) ();
  emit tr2 Mem_access ~t_us:3. ~proc:1 ~node:11 ~task:2 ~scanned:3
    ~emitted:(bits ~write:true ~locked:true) ();
  emit tr2 Task_end ~t_us:4. ~proc:0 ~task:1 ~parent:(-1) ();
  emit tr2 Task_end ~t_us:5. ~proc:1 ~task:2 ~parent:(-1) ();
  Alcotest.(check int) "lockset discharges the pair" 0
    (Races.analyze (events tr2)).Races.n_races

let test_races_double_pop () =
  let open Psme_obs.Trace in
  let tr = create () in
  emit tr Queue_pop ~t_us:0. ~proc:0 ~task:7 ();
  emit tr Queue_pop ~t_us:1. ~proc:1 ~task:7 ();
  let r = Races.analyze (events tr) in
  Alcotest.(check (list (pair int int))) "double pop flagged" [ (0, 7) ]
    r.Races.double_pops

let sim_trace ?(lines = Network.default_config.Network.lines) () =
  let schema = blocks_schema () in
  let config = { Network.default_config with Network.lines } in
  let net = build_net ~config schema base_prods in
  let wm = Wm.create () in
  let wmes =
    seed_scene wm
    @ [
        block_wme wm ~name:"f" ~color:"red" ~on:"a";
        block_wme wm ~name:"g" ~color:"red" ~on:"f";
        block_wme wm ~name:"h" ~color:"blue" ~on:"g";
      ]
  in
  let tracer = Psme_obs.Trace.create () in
  let cfg = { Sim.procs = 4; queues = Parallel.Multiple_queues; collect_trace = false } in
  ignore (Sim.run_changes ~tracer cfg net (adds wmes));
  Psme_obs.Trace.events tracer

let test_races_sim_clean () =
  let r = Races.analyze (sim_trace ()) in
  Alcotest.(check bool) "memory accesses traced" true (r.Races.n_accesses > 0);
  Alcotest.(check int) "every access locked" 0 r.Races.n_unlocked;
  Alcotest.(check int) "no races" 0 r.Races.n_races;
  Alcotest.(check int) "no double pops" 0 (List.length r.Races.double_pops)

let test_races_detects_lock_elision () =
  (* the injected §6.1 fault: elide the hash-line locks; with one line,
     every concurrent task collides and the detector must fire *)
  Runtime.set_lock_elision true;
  let events =
    Fun.protect
      ~finally:(fun () -> Runtime.set_lock_elision false)
      (fun () -> sim_trace ~lines:1 ())
  in
  let r = Races.analyze events in
  Alcotest.(check bool) "unlocked accesses observed" true (r.Races.n_unlocked > 0);
  Alcotest.(check bool) "races detected" true (r.Races.n_races > 0);
  Alcotest.(check bool) "reported as errors" true
    (Finding.errors (Races.to_findings r) > 0)

let suite =
  [
    Alcotest.test_case "verify: structure clean" `Quick test_structure_clean;
    Alcotest.test_case "verify: dangling successor" `Quick
      test_structure_dangling_successor;
    Alcotest.test_case "verify: lost pnode" `Quick test_structure_lost_pnode;
    Alcotest.test_case "verify: state clean" `Quick test_state_clean;
    Alcotest.test_case "verify: state clean after update" `Quick
      test_state_clean_after_update;
    Alcotest.test_case "verify: unfiltered update detected" `Quick
      test_state_detects_unfiltered_update;
    Alcotest.test_case "update: seed filter threshold" `Quick
      test_seed_filter_threshold;
    Alcotest.test_case "update: empty batch" `Quick test_update_empty_batch;
    Alcotest.test_case "update: fully shared chunk" `Quick
      test_update_fully_shared_chunk;
    Alcotest.test_case "lint: clean production" `Quick test_lint_clean;
    Alcotest.test_case "lint: undeclared class/field" `Quick test_lint_undeclared;
    Alcotest.test_case "lint: unsatisfiable ce" `Quick test_lint_unsatisfiable_ce;
    Alcotest.test_case "lint: never fires" `Quick test_lint_never_fires;
    Alcotest.test_case "lint: unused + duplicates" `Quick
      test_lint_unused_and_duplicates;
    Alcotest.test_case "lint: pragma suppression" `Quick
      test_lint_pragma_suppression;
    Alcotest.test_case "lint: shipped programs" `Quick test_lint_shipped_programs;
    Alcotest.test_case "races: synthetic pair" `Quick test_races_synthetic;
    Alcotest.test_case "races: ordered and locked" `Quick
      test_races_ordered_and_locked;
    Alcotest.test_case "races: double pop" `Quick test_races_double_pop;
    Alcotest.test_case "races: sim run clean" `Quick test_races_sim_clean;
    Alcotest.test_case "races: lock elision detected" `Quick
      test_races_detects_lock_elision;
    QCheck_alcotest.to_alcotest prop_update_state_verified_serial;
    QCheck_alcotest.to_alcotest prop_update_state_verified_sim;
  ]
