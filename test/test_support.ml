(* Unit tests for the support library. *)

open Psme_support

let test_sym_interning () =
  let a = Sym.intern "blue" in
  let b = Sym.intern "blue" in
  let c = Sym.intern "red" in
  Alcotest.(check bool) "same spelling, same symbol" true (Sym.equal a b);
  Alcotest.(check bool) "different spelling, different symbol" false (Sym.equal a c);
  Alcotest.(check string) "name round-trips" "blue" (Sym.name a)

let test_sym_fresh () =
  let a = Sym.fresh "g" in
  let b = Sym.fresh "g" in
  Alcotest.(check bool) "fresh symbols are distinct" false (Sym.equal a b);
  let again = Sym.intern (Sym.name a) in
  Alcotest.(check bool) "fresh symbol is interned" true (Sym.equal a again)

let test_sym_concurrent_intern () =
  (* Interning the same strings from several domains must converge. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init 100 (fun i -> Sym.intern (Printf.sprintf "sym-%d" (i mod 50)))
            |> fun syms -> (d, syms)))
  in
  let results = List.map Domain.join domains in
  let _, first = List.hd results in
  List.iter
    (fun (_, syms) ->
      List.iteri
        (fun i s ->
          Alcotest.(check bool)
            "same string interned identically across domains" true
            (Sym.equal s (List.nth first i)))
        syms)
    results

let test_value_equal () =
  Alcotest.(check bool) "sym=sym" true (Value.equal (Value.sym "a") (Value.sym "a"));
  Alcotest.(check bool) "int<>sym" false (Value.equal (Value.int 1) (Value.sym "1"));
  Alcotest.(check bool) "nil is nil" true (Value.is_nil Value.nil);
  Alcotest.(check bool) "numeric of int" true (Value.numeric (Value.int 3) = Some 3.)

let test_value_compare_total () =
  let vs =
    [ Value.sym "a"; Value.sym "b"; Value.int 1; Value.Float 2.5; Value.Str "x" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        vs)
    vs

let test_vec_basic () =
  let v = Vec.create () in
  for i = 0 to 99 do Vec.push v i done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Vec.set v 0 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 0)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 1;
  Alcotest.(check (list int)) "swap_remove moves last" [ 1; 4; 3 ] (Vec.to_list v)

let test_vec_fold_iter () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (2, 3); (1, 2); (0, 1) ] !acc

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "still a permutation" true (sorted = Array.init 50 Fun.id)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  Event_queue.add q ~time:1.0 "a2";
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, x) ->
      order := x :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order, FIFO ties" [ "a"; "a2"; "b"; "c" ]
    (List.rev !order)

let test_event_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5.0 5;
  Event_queue.add q ~time:1.0 1;
  Alcotest.(check (option (pair (float 0.001) int))) "pop min" (Some (1.0, 1))
    (Event_queue.pop q);
  Event_queue.add q ~time:2.0 2;
  Alcotest.(check (option (pair (float 0.001) int))) "pop new min" (Some (2.0, 2))
    (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.001) int))) "pop last" (Some (5.0, 5))
    (Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.138089935 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter (Stats.add a) [ 1.; 2.; 3. ];
  List.iter (Stats.add b) [ 10.; 20. ];
  List.iter (Stats.add all) [ 1.; 2.; 3.; 10.; 20. ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean all) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.stddev all) (Stats.stddev m)

let test_percentile_edges () =
  Alcotest.(check bool) "empty yields nan" true
    (Float.is_nan (Stats.percentile [||] 50.));
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check (float 0.)) "p0 is the minimum" 1. (Stats.percentile xs 0.);
  Alcotest.(check (float 0.)) "p100 is the maximum" 5. (Stats.percentile xs 100.);
  Alcotest.(check (float 0.)) "p50 is the median" 3. (Stats.percentile xs 50.);
  Alcotest.(check (float 0.)) "singleton, any p" 7. (Stats.percentile [| 7. |] 0.);
  Alcotest.(check (float 0.)) "input not mutated" 5. xs.(0);
  let rejects p =
    Alcotest.check_raises
      (Printf.sprintf "p = %g rejected" p)
      (Invalid_argument "Stats.percentile: p must be in [0, 100]")
      (fun () -> ignore (Stats.percentile xs p))
  in
  rejects (-1.);
  rejects 100.5;
  rejects Float.nan

let test_histogram () =
  let h = Histogram.create ~bucket_width:25. ~buckets:4 in
  List.iter (Histogram.add h) [ 0.; 10.; 30.; 70.; 1000. ];
  Alcotest.(check int) "bucket 0" 2 (Histogram.samples_in h 0);
  Alcotest.(check int) "bucket 1" 1 (Histogram.samples_in h 1);
  Alcotest.(check int) "bucket 2" 1 (Histogram.samples_in h 2);
  Alcotest.(check int) "overflow lands in last" 1 (Histogram.samples_in h 3);
  Alcotest.(check (float 1e-9)) "fraction" 0.4 (Histogram.fraction_in h 0)

let suite =
  [
    Alcotest.test_case "sym interning" `Quick test_sym_interning;
    Alcotest.test_case "sym fresh" `Quick test_sym_fresh;
    Alcotest.test_case "sym concurrent intern" `Quick test_sym_concurrent_intern;
    Alcotest.test_case "value equal" `Quick test_value_equal;
    Alcotest.test_case "value compare total" `Quick test_value_compare_total;
    Alcotest.test_case "vec basic" `Quick test_vec_basic;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "vec fold/iter" `Quick test_vec_fold_iter;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue interleaved" `Quick test_event_queue_interleaved;
    Alcotest.test_case "stats welford" `Quick test_stats_welford;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
