let () =
  Alcotest.run "soar-psme"
    [
      ("support", Test_support.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("ops5", Test_ops5.suite);
      ("rete", Test_rete.suite);
      ("soar", Test_soar.suite);
      ("engine", Test_engine.suite);
      ("ops5-loop", Test_ops5_loop.suite);
      ("workloads", Test_workloads.suite);
      ("future-work", Test_future_work.suite);
      ("harness", Test_harness.suite);
      ("properties", Test_props.suite);
      ("perf-kernel", Test_perf_kernel.suite);
      ("program", Test_program.suite);
      ("check", Test_check.suite);
      ("analyze", Test_analyze.suite);
    ]
