(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the rows/series printed match the paper's): Tables 5-1, 5-2, 6-1 and
   Figures 6-1 through 6-12. Part 2 runs Bechamel micro-benchmarks of
   the matcher's primitives and of run-time production addition (the
   §5.1 mechanism), including the sharing ablation.

   Run with: dune exec bench/main.exe *)

open Psme_support
open Psme_ops5
open Psme_rete
open Bechamel
open Toolkit

(* --- micro-benchmark fixtures ------------------------------------------ *)

let fixture_schema () =
  let schema = Schema.create () in
  ignore
    (Parser.parse_program schema
       {|
(literalize block name color on state)
(literalize hand state name)
(literalize place name table)
|});
  schema

let fixture_net schema =
  let prods =
    Parser.productions schema
      {|
(p g1 (block ^name <x> ^color blue) -(block ^on <x>) (hand ^state free) --> (write a))
(p g2 (block ^name <x> ^color red) (place ^name <x>) --> (write b))
(p g3 (block ^name <x> ^state <s>) (block ^name <> <x> ^state <s>) --> (write c))
|}
  in
  let net = Network.create schema in
  ignore (Build.add_all net prods);
  net

let bench_wme_churn =
  Test.make ~name:"match: add+delete one wme (serial)"
    (let schema = fixture_schema () in
     let net = fixture_net schema in
     let cls = Sym.intern "block" in
     let tag = ref 0 in
     Staged.stage (fun () ->
         incr tag;
         let fields = Array.make 4 Value.nil in
         fields.(0) <- Value.sym "b";
         fields.(1) <- Value.sym "blue";
         let w = Wme.make ~cls ~fields ~timetag:!tag in
         ignore (Psme_engine.Serial.run_changes net [ (Task.Add, w) ]);
         ignore (Psme_engine.Serial.run_changes net [ (Task.Delete, w) ])))

let added_prod schema n =
  Parser.parse_production schema
    (Printf.sprintf
       {|(p added-%d (block ^name <x> ^color blue) (place ^name <x> ^table free) --> (write x))|}
       n)

let bench_add_production ~share name =
  Test.make ~name
    (let counter = ref 0 in
     let schema = fixture_schema () in
     Staged.stage (fun () ->
         (* a fresh small network per iteration: run-time addition cost
            includes the share-point search against existing nodes *)
         let net =
           Network.create ~config:{ Network.default_config with Network.share } schema
         in
         ignore
           (Build.add_all net
              (Parser.productions schema
                 {|(p base (block ^name <x> ^color blue) (hand ^state free) --> (write a))|}));
         incr counter;
         ignore (Build.add_production net (added_prod schema !counter))))

let bench_token_ops =
  Test.make ~name:"token: extend+hash (8 slots)"
    (let cls = Sym.intern "block" in
     let wmes = Array.init 8 (fun i -> Wme.make ~cls ~fields:[||] ~timetag:i) in
     Staged.stage (fun () ->
         let t = ref (Token.singleton wmes.(0)) in
         for i = 1 to 7 do
           t := Token.extend !t wmes.(i)
         done;
         ignore (Token.hash !t)))

let bench_memory_ops =
  Test.make ~name:"memory: insert+probe+remove under line lock"
    (let mem = Memory.create ~lines:64 () in
     let cls = Sym.intern "c" in
     let tag = ref 0 in
     Staged.stage (fun () ->
         incr tag;
         let w = Wme.make ~cls ~fields:[||] ~timetag:!tag in
         let tok = Token.singleton w in
         let kh = !tag * 7 in
         let line = Memory.line_of mem ~khash:kh in
         Memory.locked mem ~line (fun () ->
             ignore (Memory.left_add mem ~node:1 ~khash:kh tok ~count:0);
             ignore (Memory.left_iter mem ~node:1 ~khash:kh (fun _ -> ()));
             ignore (Memory.left_remove mem ~node:1 ~khash:kh tok))))

let bench_alpha =
  Test.make ~name:"alpha: constant-test pass for one wme"
    (let schema = fixture_schema () in
     let net = fixture_net schema in
     let cls = Sym.intern "block" in
     let fields = Array.make 4 Value.nil in
     let () = fields.(1) <- Value.sym "blue" in
     let w = Wme.make ~cls ~fields ~timetag:1 in
     Staged.stage (fun () -> ignore (Runtime.seed_wme_change net Task.Add w)))

let bench_trace_emit =
  (* the per-event cost tracing adds to an engine's hot loop *)
  Test.make ~name:"obs: tracer emit (ring store)"
    (let tr = Psme_obs.Trace.create ~capacity:(1 lsl 16) () in
     let t = ref 0. in
     Staged.stage (fun () ->
         t := !t +. 1.;
         Psme_obs.Trace.emit tr Psme_obs.Trace.Task_end ~t_us:!t ~proc:1 ~node:7
           ~task:3 ~parent:1 ~dur_us:400. ~scanned:5 ~emitted:2 ()))

let bench_metrics_incr =
  Test.make ~name:"obs: metrics counter incr (atomic)"
    (let c = Psme_obs.Metrics.counter Psme_obs.Metrics.global "bench.counter" in
     Staged.stage (fun () -> Psme_obs.Metrics.incr c))

let run_bechamel () =
  let benchmarks =
    [
      bench_wme_churn;
      bench_add_production ~share:true "compile: add production, sharing on";
      bench_add_production ~share:false "compile: add production, sharing off";
      bench_token_ops;
      bench_memory_ops;
      bench_alpha;
      bench_trace_emit;
      bench_metrics_incr;
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  Format.printf "@.== micro-benchmarks (Bechamel, ns/iteration) ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-48s %12.0f ns/run@." name est
          | _ -> Format.printf "%-48s (no estimate)@." name)
        ols)
    benchmarks

let () =
  Format.printf "Soar/PSM-E reproduction — evaluation harness@.";
  Format.printf "(simulated Encore Multimax; see DESIGN.md for the cost model)@.";
  Psme_harness.Experiments.print_all Format.std_formatter;
  run_bechamel ();
  Format.printf "@.done.@."
