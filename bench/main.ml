(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the rows/series printed match the paper's): Tables 5-1, 5-2, 6-1 and
   Figures 6-1 through 6-12. Part 2 runs Bechamel micro-benchmarks of
   the matcher's primitives and of run-time production addition (the
   §5.1 mechanism), including the sharing ablation.

   Modes (see README "Benchmark JSON"):

     dune exec bench/main.exe                  # full: tables + micro, human-readable
     dune exec bench/main.exe -- --json F      # also write machine-readable results to F
     dune exec bench/main.exe -- --quick       # CI mode: short quotas, micro + small
                                               # speedup probe only, no paper tables

   The micro fixtures are deliberately *populated*: the match kernel's
   cost is per-probe complexity against loaded memories (hash-line
   collision chains), not the empty-table fast path, so the fixtures
   pre-load working memory / memory lines before staging the measured
   operation. The JSON from each perf PR is committed as BENCH_<PR>.json
   at the repo root (before/after pairs), forming the perf trajectory. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Bechamel
open Toolkit

(* --- micro-benchmark fixtures ------------------------------------------ *)

let fixture_schema () =
  let schema = Schema.create () in
  ignore
    (Parser.parse_program schema
       {|
(literalize block name color on state)
(literalize hand state name)
(literalize place name table)
|});
  schema

let fixture_net ?(lines = 512) schema =
  let prods =
    Parser.productions schema
      {|
(p g1 (block ^name <x> ^color blue) -(block ^on <x>) (hand ^state free) --> (write a))
(p g2 (block ^name <x> ^color red) (place ^name <x>) --> (write b))
(p g3 (block ^name <x> ^state <s>) (block ^name <> <x> ^state <s>) --> (write c))
|}
  in
  let net =
    Network.create ~config:{ Network.default_config with Network.lines } schema
  in
  ignore (Build.add_all net prods);
  net

let block_wme ?on ~name ~color ~state ~timetag () =
  let fields = Array.make 4 Value.nil in
  fields.(0) <- Value.sym name;
  fields.(1) <- Value.sym color;
  (match on with None -> () | Some o -> fields.(2) <- Value.sym o);
  fields.(3) <- Value.sym state;
  Wme.make ~cls:(Sym.intern "block") ~fields ~timetag

(* A net under sustained load: 16 hash lines (so distinct-key entries
   collide into shared lines, the regime §6.1's line lock exists for)
   and a working memory of blocks already resident in the entry and
   two-input memories. The residents form an ^on cycle (p0 sits on p191,
   p_i on p_{i-1}) so every join key — name, on, state — is distinct:
   the populated memories hold many entries per *line* (~256) but few
   per *bucket*, which is the regime the secondary index targets (an
   all-nil ^on column would funnel every entry into one bucket and
   measure nothing but chain walking). The measured operation is the
   paper's unit of match work: one wme add and its retraction. *)
let bench_wme_churn =
  Test.make ~name:"match: add+delete one wme (serial)"
    (let schema = fixture_schema () in
     let net = fixture_net ~lines:16 schema in
     let resident = 1024 in
     let () =
       List.iter
         (fun w -> ignore (Psme_engine.Serial.run_changes net [ (Task.Add, w) ]))
         (List.init resident (fun i ->
              block_wme
                ~on:(Printf.sprintf "p%d" ((i + resident - 1) mod resident))
                ~name:(Printf.sprintf "p%d" i) ~color:"blue"
                ~state:(Printf.sprintf "s%d" i) ~timetag:(i + 1) ()))
     in
     let () =
       let fields = Array.make 3 Value.nil in
       fields.(0) <- Value.sym "free";
       let hand = Wme.make ~cls:(Sym.intern "hand") ~fields ~timetag:(resident + 1) in
       ignore (Psme_engine.Serial.run_changes net [ (Task.Add, hand) ])
     in
     let tag = ref (resident + 1) in
     Staged.stage (fun () ->
         incr tag;
         let w = block_wme ~name:"bench" ~color:"blue" ~state:"sbench" ~timetag:!tag () in
         ignore (Psme_engine.Serial.run_changes net [ (Task.Add, w) ]);
         ignore (Psme_engine.Serial.run_changes net [ (Task.Delete, w) ])))

let added_prod schema n =
  Parser.parse_production schema
    (Printf.sprintf
       {|(p added-%d (block ^name <x> ^color blue) (place ^name <x> ^table free) --> (write x))|}
       n)

let bench_add_production ~share name =
  Test.make ~name
    (let counter = ref 0 in
     let schema = fixture_schema () in
     Staged.stage (fun () ->
         (* a fresh small network per iteration: run-time addition cost
            includes the share-point search against existing nodes *)
         let net =
           Network.create ~config:{ Network.default_config with Network.share } schema
         in
         ignore
           (Build.add_all net
              (Parser.productions schema
                 {|(p base (block ^name <x> ^color blue) (hand ^state free) --> (write a))|}));
         incr counter;
         ignore (Build.add_production net (added_prod schema !counter))))

let bench_token_ops =
  Test.make ~name:"token: extend+hash (8 slots)"
    (let cls = Sym.intern "block" in
     let wmes = Array.init 8 (fun i -> Wme.make ~cls ~fields:[||] ~timetag:i) in
     Staged.stage (fun () ->
         let t = ref (Token.singleton wmes.(0)) in
         for i = 1 to 7 do
           t := Token.extend !t wmes.(i)
         done;
         ignore (Token.hash !t)))

(* One join level at depth [d]: the cost of Token.extend must not grow
   with the chain already matched (the paper's long-chain productions,
   §6.2, pay this on every level). *)
let bench_token_depth d =
  Test.make ~name:(Printf.sprintf "token: extend+hash @depth=%d" d)
    (let cls = Sym.intern "block" in
     let base =
       let t = ref (Token.singleton (Wme.make ~cls ~fields:[||] ~timetag:0)) in
       for i = 1 to d - 1 do
         t := Token.extend !t (Wme.make ~cls ~fields:[||] ~timetag:i)
       done;
       !t
     in
     let w = Wme.make ~cls ~fields:[||] ~timetag:d in
     Staged.stage (fun () -> ignore (Token.hash (Token.extend base w))))

(* One line loaded with [resident] entries of *distinct* (node, khash)
   keys that all collide into the same hash line — the §6.1 collision
   chain. The measured op probes one key; its cost should depend on the
   bucket, not the line. *)
let bench_memory_ops =
  Test.make ~name:"memory: insert+probe+remove under line lock"
    (let lines = 64 in
     let mem = Memory.create ~lines () in
     let cls = Sym.intern "c" in
     let resident = 128 in
     let () =
       for i = 1 to resident do
         (* khash multiples of [lines] all map to line 0, distinct keys *)
         let kh = i * lines in
         let w = Wme.make ~cls ~fields:[||] ~timetag:(1000 + i) in
         let line = Memory.line_of mem ~khash:kh in
         Memory.locked mem ~line (fun () ->
             ignore
               (Memory.left_add mem ~node:(100 + i) ~khash:kh (Token.singleton w)
                  ~count:0))
       done
     in
     let tag = ref 0 in
     let kh = (resident + 7) * lines in
     let line = Memory.line_of mem ~khash:kh in
     Staged.stage (fun () ->
         incr tag;
         let w = Wme.make ~cls ~fields:[||] ~timetag:!tag in
         let tok = Token.singleton w in
         Memory.locked mem ~line (fun () ->
             ignore (Memory.left_add mem ~node:1 ~khash:kh tok ~count:0);
             ignore (Memory.left_iter mem ~node:1 ~khash:kh (fun _ -> ()));
             ignore (Memory.left_remove mem ~node:1 ~khash:kh tok))))

let bench_alpha =
  Test.make ~name:"alpha: constant-test pass for one wme"
    (let schema = fixture_schema () in
     let net = fixture_net schema in
     let cls = Sym.intern "block" in
     let fields = Array.make 4 Value.nil in
     let () = fields.(1) <- Value.sym "blue" in
     let w = Wme.make ~cls ~fields ~timetag:1 in
     Staged.stage (fun () -> ignore (Runtime.seed_wme_change net Task.Add w)))

(* Wide literal discrimination: 64 sibling constant tests on the same
   field. A list-walk alpha network pays all 64 per wme; a dispatch
   table pays one lookup. *)
let bench_alpha_wide =
  Test.make ~name:"alpha: 64-way sibling constant dispatch"
    (let schema = fixture_schema () in
     let prods =
       String.concat "\n"
         (List.init 64 (fun i ->
              Printf.sprintf
                {|(p w%d (block ^name n%d ^state live) --> (write x))|} i i))
     in
     let net = Network.create schema in
     ignore (Build.add_all net (Parser.productions schema prods));
     let w = block_wme ~name:"n63" ~color:"c" ~state:"live" ~timetag:1 () in
     Staged.stage (fun () -> ignore (Runtime.seed_wme_change net Task.Add w)))

(* --- match kernel: compiled node programs vs the interpreter ------------ *)

(* Each pair builds the same one-production network twice — once with
   [config.compiled] on (closure-compiled node programs, the PSM-E
   machine-code analogue) and once off (the interpreter oracle) — and
   measures the same activation against a populated opposite memory.
   The fixture funnels 128 residents into ONE hash bucket (shared join
   key) with a 4-test chain (1 eq + 3 residuals), so the measured cost
   is the per-candidate test loop the compiler specializes: the staged
   predicate extracts the activation-fixed fields once, where the
   interpreter re-walks the test list per candidate. *)

let kernel_join_prod =
  {|(p kjoin (block ^name <x> ^color <c> ^on <o> ^state <s>)
            (block ^on <x> ^name <> <o> ^color <> <c> ^state <> <s>)
            --> (write j))|}

let kernel_neg_prod =
  {|(p kneg (block ^name <x> ^color <c> ^on <o> ^state <s>)
           -(block ^on <x> ^name <> <o> ^color <> <c> ^state <> <s>)
           --> (write n))|}

let kernel_fixture ~compiled ~src ~kindp =
  let schema = fixture_schema () in
  let net =
    Network.create
      ~config:{ Network.default_config with Network.lines = 16; compiled }
      schema
  in
  ignore (Build.add_all net (Parser.productions schema src));
  let node =
    Network.fold_nodes net ~init:None ~f:(fun acc n ->
        match acc with
        | Some _ -> acc
        | None -> if kindp n.Network.kind then Some n else None)
  in
  (net, Option.get node)

let kernel_variant compiled = if compiled then "compiled" else "interpreted"

(* Token-side activation: the left token arrives, the right memory holds
   the residents. All 4 tests pass for every candidate (join emits 128
   children; neg counts 128 blockers and emits none — the pure scan). *)
let bench_kernel_left ~compiled ~neg =
  let base = if neg then "kernel: neg-left 4-test scan" else "kernel: join-left 4-test scan" in
  Test.make ~name:(Printf.sprintf "%s (%s)" base (kernel_variant compiled))
    (let src = if neg then kernel_neg_prod else kernel_join_prod in
     let kindp = function
       | Network.Join _ -> not neg
       | Network.Neg _ -> neg
       | _ -> false
     in
     let net, node = kernel_fixture ~compiled ~src ~kindp in
     let nid = node.Network.id in
     let resident = 128 in
     let () =
       for i = 1 to resident do
         let w =
           block_wme ~on:"kb" ~name:(Printf.sprintf "n%d" i)
             ~color:(Printf.sprintf "c%d" i)
             ~state:(Printf.sprintf "s%d" i)
             ~timetag:i ()
         in
         ignore (Runtime.exec net (Task.Right { node = nid; flag = Task.Add; wme = w }))
       done
     in
     let lw = block_wme ~name:"kb" ~color:"lc" ~on:"lo" ~state:"ls" ~timetag:9001 () in
     let token = Token.singleton lw in
     Staged.stage (fun () ->
         ignore (Runtime.exec net (Task.Left { node = nid; flag = Task.Add; token }));
         ignore (Runtime.exec net (Task.Left { node = nid; flag = Task.Delete; token }))))

(* Miss scan: every candidate evaluates the full four-test chain (the
   last residual fails) and nothing is emitted, so the measured cost is
   the per-candidate test-evaluation kernel alone — no token-extension
   or task-allocation tail shared with the interpreter. *)
let bench_kernel_miss ~compiled =
  Test.make
    ~name:
      (Printf.sprintf "kernel: join-left 4-test miss scan (%s)" (kernel_variant compiled))
    (let kindp = function Network.Join _ -> true | _ -> false in
     let net, node = kernel_fixture ~compiled ~src:kernel_join_prod ~kindp in
     let nid = node.Network.id in
     let () =
       for i = 1 to 128 do
         let w =
           block_wme ~on:"kb" ~name:(Printf.sprintf "n%d" i)
             ~color:(Printf.sprintf "c%d" i)
             ~state:"ms" ~timetag:i ()
         in
         ignore (Runtime.exec net (Task.Right { node = nid; flag = Task.Add; wme = w }))
       done
     in
     let lw = block_wme ~name:"kb" ~color:"lc" ~on:"lo" ~state:"ms" ~timetag:9001 () in
     let token = Token.singleton lw in
     Staged.stage (fun () ->
         ignore (Runtime.exec net (Task.Left { node = nid; flag = Task.Add; token }));
         ignore (Runtime.exec net (Task.Left { node = nid; flag = Task.Delete; token }))))

(* Wme-side activation: the right wme arrives, the left memory holds 128
   resident tokens in the same bucket. *)
let bench_kernel_right ~compiled =
  Test.make
    ~name:(Printf.sprintf "kernel: join-right 4-test scan (%s)" (kernel_variant compiled))
    (let kindp = function Network.Join _ -> true | _ -> false in
     let net, node = kernel_fixture ~compiled ~src:kernel_join_prod ~kindp in
     let nid = node.Network.id in
     let resident = 128 in
     let () =
       for i = 1 to resident do
         let lw =
           block_wme ~name:"kb"
             ~color:(Printf.sprintf "lc%d" i)
             ~on:(Printf.sprintf "lo%d" i)
             ~state:(Printf.sprintf "ls%d" i)
             ~timetag:(2000 + i) ()
         in
         ignore
           (Runtime.exec net
              (Task.Left { node = nid; flag = Task.Add; token = Token.singleton lw }))
       done
     in
     let tag = ref 9000 in
     Staged.stage (fun () ->
         incr tag;
         let w = block_wme ~on:"kb" ~name:"rn" ~color:"rc" ~state:"rs" ~timetag:!tag () in
         ignore (Runtime.exec net (Task.Right { node = nid; flag = Task.Add; wme = w }));
         ignore (Runtime.exec net (Task.Right { node = nid; flag = Task.Delete; wme = w }))))

let kernel_pairs =
  [
    "kernel: join-left 4-test scan";
    "kernel: join-left 4-test miss scan";
    "kernel: neg-left 4-test scan";
    "kernel: join-right 4-test scan";
  ]

let bench_trace_emit =
  (* the per-event cost tracing adds to an engine's hot loop *)
  Test.make ~name:"obs: tracer emit (ring store)"
    (let tr = Psme_obs.Trace.create ~capacity:(1 lsl 16) () in
     let t = ref 0. in
     Staged.stage (fun () ->
         t := !t +. 1.;
         Psme_obs.Trace.emit tr Psme_obs.Trace.Task_end ~t_us:!t ~proc:1 ~node:7
           ~task:3 ~parent:1 ~dur_us:400. ~scanned:5 ~emitted:2 ()))

let bench_metrics_incr =
  Test.make ~name:"obs: metrics counter incr (atomic)"
    (let c = Psme_obs.Metrics.counter Psme_obs.Metrics.global "bench.counter" in
     Staged.stage (fun () -> Psme_obs.Metrics.incr c))

let micro_benchmarks () =
  [
    bench_wme_churn;
    bench_add_production ~share:true "compile: add production, sharing on";
    bench_add_production ~share:false "compile: add production, sharing off";
    bench_token_ops;
    bench_token_depth 4;
    bench_token_depth 64;
    bench_token_depth 256;
    bench_memory_ops;
    bench_alpha;
    bench_alpha_wide;
    bench_kernel_left ~compiled:true ~neg:false;
    bench_kernel_left ~compiled:false ~neg:false;
    bench_kernel_left ~compiled:true ~neg:true;
    bench_kernel_left ~compiled:false ~neg:true;
    bench_kernel_miss ~compiled:true;
    bench_kernel_miss ~compiled:false;
    bench_kernel_right ~compiled:true;
    bench_kernel_right ~compiled:false;
    bench_trace_emit;
    bench_metrics_incr;
  ]

let run_micro ~quota =
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.fold
        (fun name result acc ->
          let est =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Some est
            | _ -> None
          in
          (* strip Bechamel's "g/" group prefix *)
          let name =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          (name, est) :: acc)
        ols [])
    (micro_benchmarks ())

(* --- sim-engine speedup curves ------------------------------------------ *)

let speedup_series ~procs_axis (w : Psme_workloads.Workload.t) =
  let open Psme_soar in
  List.map
    (fun procs ->
      let config =
        {
          Agent.default_config with
          Agent.learning = false;
          engine_mode =
            Psme_engine.Engine.Sim_mode
              {
                Psme_engine.Sim.procs;
                queues = Psme_engine.Parallel.Multiple_queues;
                collect_trace = false;
              };
        }
      in
      let agent = w.Psme_workloads.Workload.make ~config () in
      ignore (Agent.run agent);
      let totals = Psme_engine.Engine.totals (Agent.engine agent) in
      (procs, Psme_engine.Cycle.speedup totals))
    procs_axis

(* --- speedup-loss attribution ------------------------------------------- *)

(* The per-cycle bottleneck ledger on the paper's tasks at the §6.2
   processor counts, one summary row per (workload, procs) point. The
   perf gate only reads the e2e/micro/speedup/telemetry sections, so
   this rides along for dashboards and the CI artifact without gating. *)
let attribution_series ~procs_axis workloads =
  let open Psme_soar in
  List.concat_map
    (fun (w : Psme_workloads.Workload.t) ->
      List.map
        (fun procs ->
          let tracer = Psme_obs.Trace.create ~capacity:(1 lsl 21) () in
          let config =
            {
              Agent.default_config with
              Agent.learning = false;
              tracer = Some tracer;
              engine_mode =
                Psme_engine.Engine.Sim_mode
                  {
                    Psme_engine.Sim.procs;
                    queues = Psme_engine.Parallel.Multiple_queues;
                    collect_trace = false;
                  };
            }
          in
          let agent = w.Psme_workloads.Workload.make ~config () in
          ignore (Agent.run agent);
          let cost = (Agent.config agent).Agent.cost in
          let ledgers =
            Psme_obs.Attribution.per_cycle ~procs
              ~queue_op_us:cost.Psme_engine.Cost.queue_op_us
              (Psme_obs.Trace.events tracer)
          in
          ( w.Psme_workloads.Workload.name,
            procs,
            Psme_obs.Attribution.totals ledgers,
            Psme_obs.Attribution.worst ledgers ))
        procs_axis)
    workloads

(* --- end-to-end cycles/sec: compiled vs interpreted ---------------------- *)

type e2e_result = {
  e2e_workload : string;
  e2e_variant : string;  (* "compiled" | "interpreted" *)
  e2e_decisions : int;
  e2e_cycles : int;      (* elaboration cycles *)
  e2e_wall_ns : int;
  e2e_cps : float;       (* elaboration cycles per wall second *)
}

(* Full learning run on the real serial engine: chunks built mid-run are
   compiled and spliced into the jumptable, so the compiled variant
   measures the §5.1 story end to end. Best of [reps] wall times. *)
let e2e_run ?(reps = 3) (w : Psme_workloads.Workload.t) ~compiled =
  let open Psme_soar in
  let config =
    {
      Agent.default_config with
      Agent.learning = true;
      engine_mode = Psme_engine.Engine.Serial_mode;
      net_config = { Network.default_config with Network.compiled };
    }
  in
  let best = ref max_int in
  let decisions = ref 0 in
  let cycles = ref 0 in
  for _ = 1 to reps do
    let agent = w.Psme_workloads.Workload.make ~config () in
    let t0 = Clock.now_ns () in
    let summary = Agent.run agent in
    let dt = Clock.now_ns () - t0 in
    if dt < !best then best := dt;
    decisions := summary.Agent.decisions;
    cycles := summary.Agent.elab_cycles
  done;
  {
    e2e_workload = w.Psme_workloads.Workload.name;
    e2e_variant = kernel_variant compiled;
    e2e_decisions = !decisions;
    e2e_cycles = !cycles;
    e2e_wall_ns = !best;
    e2e_cps = float_of_int !cycles /. (float_of_int !best /. 1e9);
  }

let e2e_series ~reps workloads =
  List.concat_map
    (fun w -> [ e2e_run ~reps w ~compiled:true; e2e_run ~reps w ~compiled:false ])
    workloads

(* --- machine-readable output -------------------------------------------- *)

(* Provenance: bench numbers are only comparable within one machine (and
   really within one run — the container is multi-tenant), so each
   document records where it came from. *)
let machine_doc () =
  let open Psme_obs.Json in
  let proc_line path =
    match open_in path with
    | exception Sys_error _ -> Null
    | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      if line = "" then Null else Str line
  in
  Obj
    [
      ( "os",
        Str
          (if Sys.file_exists "/proc/version" then "linux"
           else String.lowercase_ascii Sys.os_type) );
      ("kernel", proc_line "/proc/sys/kernel/osrelease");
      ("arch", proc_line "/proc/sys/kernel/arch");
      ("cores", Int (Domain.recommended_domain_count ()));
    ]

let json_doc ~mode ~micro ~speedups ~e2e ~telemetry ~attribution =
  let open Psme_obs.Json in
  Obj
    [
      ("schema", Str "psme-bench/1");
      ("mode", Str mode);
      ("machine", machine_doc ());
      ( "telemetry",
        Obj (List.map (fun (k, v) -> (k, Float v)) telemetry) );
      ( "e2e",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("workload", Str r.e2e_workload);
                   ("variant", Str r.e2e_variant);
                   ("decisions", Int r.e2e_decisions);
                   ("elab_cycles", Int r.e2e_cycles);
                   ("wall_ns", Int r.e2e_wall_ns);
                   ("cycles_per_sec", Float r.e2e_cps);
                 ])
             e2e) );
      ( "micro",
        List
          (List.map
             (fun (name, est) ->
               Obj
                 [
                   ("name", Str name);
                   ("ns_per_run", match est with Some e -> Float e | None -> Null);
                 ])
             micro) );
      ( "speedup",
        List
          (List.map
             (fun (workload, points) ->
               Obj
                 [
                   ("workload", Str workload);
                   ("queues", Str "multi");
                   ( "points",
                     List
                       (List.map
                          (fun (p, s) ->
                            Obj [ ("procs", Int p); ("speedup", Float s) ])
                          points) );
                 ])
             speedups) );
      ( "attribution",
        List
          (List.map
             (fun (workload, procs, t, worst_cycle) ->
               let open Psme_obs.Attribution in
               Obj
                 ([
                    ("workload", Str workload);
                    ("procs", Int procs);
                    ("cycles", Int t.t_cycles);
                    ("ideal_us", Float t.t_ideal_us);
                    ("busy_us", Float t.t_busy_us);
                    ("gap_us", Float t.t_gap_us);
                    ("cp_residual_us", Float t.t_cp_residual_us);
                    ("imbalance_us", Float t.t_imbalance_us);
                    ("queue_us", Float t.t_queue_us);
                    ("lock_us", Float t.t_lock_us);
                    ( "dominant",
                      if t.t_cycles = 0 then Null
                      else Str (fst (totals_dominant t)) );
                  ]
                 @
                 (match worst_cycle with
                 | None -> []
                 | Some l ->
                   [
                     ( "worst_cycle",
                       Obj
                         [
                           ("cycle", Int l.a_cycle);
                           ("gap_us", Float l.a_gap_us);
                           ("dominant", Str (fst (dominant l)));
                         ] );
                   ])))
             attribution) );
    ]

let write_json path doc =
  let oc = open_out path in
  output_string oc (Psme_obs.Json.to_string doc);
  output_string oc "\n";
  close_out oc

(* --- compiled-vs-interpreted advisory check ------------------------------ *)

(* CI's fail-soft bench-regression gate: compare each kernel pair and
   emit a GitHub warning annotation (not a failure) when the compiled
   program is not faster than the interpreter. *)
let check_compiled micro =
  let find name =
    match List.assoc_opt name micro with Some (Some e) -> Some e | _ -> None
  in
  List.iter
    (fun base ->
      match (find (base ^ " (compiled)"), find (base ^ " (interpreted)")) with
      | Some c, Some i when c < i ->
        Format.printf "compiled-check: %-32s ok  %8.0f vs %8.0f ns/run (%.2fx)@."
          base c i (i /. c)
      | Some c, Some i ->
        Format.printf
          "::warning title=bench regression::%s: compiled %.0f ns/run is not \
           faster than interpreted %.0f ns/run@."
          base c i
      | _ ->
        Format.printf "::warning title=bench regression::%s: missing estimates@."
          base)
    kernel_pairs

(* --- driver -------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--check-compiled] [--json FILE]\n\
    \       [--gate BASELINE.json] [--gate-tolerance X] [--gate-handicap X]";
  exit 2

let () =
  let quick = ref false in
  let json_path = ref None in
  let check = ref false in
  let gate = ref None in
  let gate_tolerance = ref Psme_harness.Perf_gate.default_tolerance in
  let gate_handicap = ref 0. in
  let float_arg name x =
    match float_of_string_opt x with
    | Some v -> v
    | None ->
      prerr_endline (name ^ ": not a number: " ^ x);
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--check-compiled" :: rest ->
      check := true;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--gate" :: path :: rest ->
      gate := Some path;
      parse rest
    | "--gate-tolerance" :: x :: rest ->
      gate_tolerance := float_arg "--gate-tolerance" x;
      parse rest
    | "--gate-handicap" :: x :: rest ->
      (* self-test hook: degrade every current number by x (e.g. 0.2 =
         a seeded 20% uniform regression) and check the gate trips *)
      gate_handicap := float_arg "--gate-handicap" x;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let gating = !gate <> None in
  Format.printf "Soar/PSM-E reproduction — evaluation harness@.";
  Format.printf "(simulated Encore Multimax; see DESIGN.md for the cost model)@.";
  if (not !quick) && not gating then
    Psme_harness.Experiments.print_all Format.std_formatter;
  (* gate runs want turnaround, not paper tables: medium quotas *)
  let quota = if !quick then 0.05 else if gating then 0.15 else 0.5 in
  let micro = run_micro ~quota in
  Format.printf "@.== micro-benchmarks (Bechamel, ns/iteration) ==@.";
  List.iter
    (fun (name, est) ->
      match est with
      | Some e -> Format.printf "%-48s %12.0f ns/run@." name e
      | None -> Format.printf "%-48s (no estimate)@." name)
    micro;
  if !check then begin
    Format.printf "@.== compiled vs interpreted (kernel) ==@.";
    check_compiled micro
  end;
  Psme_obs.Telemetry.reset Psme_obs.Telemetry.global;
  let e2e =
    let workloads =
      if !quick then [ Psme_workloads.Eight_puzzle.workload ]
      else [ Psme_workloads.Eight_puzzle.workload; Psme_workloads.Strips.workload ]
    in
    let reps = if !quick then 1 else if gating then 2 else 3 in
    Format.printf "@.== end-to-end cycles/sec (serial, learning on) ==@.";
    let rs = e2e_series ~reps workloads in
    List.iter
      (fun r ->
        Format.printf "%-14s %-12s %5d decisions %6d cycles %8.3f s  %9.0f cyc/s@."
          r.e2e_workload r.e2e_variant r.e2e_decisions r.e2e_cycles
          (float_of_int r.e2e_wall_ns /. 1e9)
          r.e2e_cps)
      rs;
    rs
  in
  (* allocation discipline over the e2e runs, from the always-on
     telemetry layer: total attributed minor words per elaboration
     cycle (lower is better; gated like any other benchmark) *)
  let telemetry =
    let tm = Psme_obs.Telemetry.global in
    let kv = Psme_obs.Telemetry.snapshot_kv tm in
    let get k = Option.value ~default:0. (List.assoc_opt k kv) in
    let cycles = get "telemetry.cycles" in
    if cycles <= 0. then []
    else begin
      let words =
        List.fold_left
          (fun a p ->
            a +. get ("telemetry.phase." ^ Psme_obs.Telemetry.phase_name p ^ ".minor_words"))
          0. Psme_obs.Telemetry.phases
      in
      let wpc = words /. cycles in
      Format.printf "@.== telemetry (e2e runs) ==@.";
      Format.printf "minor words / cycle %36.0f@." wpc;
      [ ("minor_words_per_cycle", wpc) ]
    end
  in
  let speedups =
    let procs_axis = if !quick then [ 1; 4; 8 ] else [ 1; 2; 4; 8; 13 ] in
    let workloads =
      if !quick then [ Psme_workloads.Eight_puzzle.workload ]
      else [ Psme_workloads.Eight_puzzle.workload; Psme_workloads.Strips.workload ]
    in
    List.map
      (fun (w : Psme_workloads.Workload.t) ->
        Format.printf "@.== sim speedup: %s (multiple queues) ==@." w.Psme_workloads.Workload.name;
        let pts = speedup_series ~procs_axis w in
        List.iter (fun (p, s) -> Format.printf "  %2d procs  %.2fx@." p s) pts;
        (w.Psme_workloads.Workload.name, pts))
      workloads
  in
  let attribution =
    let procs_axis = if !quick then [ 8 ] else [ 8; 11; 13 ] in
    let workloads =
      if !quick then [ Psme_workloads.Eight_puzzle.workload ]
      else
        [
          Psme_workloads.Strips.workload;
          Psme_workloads.Cypress.workload;
          Psme_workloads.Eight_puzzle.workload;
        ]
    in
    let rows = attribution_series ~procs_axis workloads in
    Format.printf "@.== speedup-loss attribution (multiple queues) ==@.";
    List.iter
      (fun (w, p, t, _) ->
        let open Psme_obs.Attribution in
        let pct v = if t.t_gap_us <= 0. then 0. else 100. *. v /. t.t_gap_us in
        Format.printf
          "  %-14s %2d procs  gap %9.0f us  chain %4.1f%%  imbal %4.1f%%  \
           queue %4.1f%%  lock %4.1f%%@."
          w p t.t_gap_us (pct t.t_cp_residual_us) (pct t.t_imbalance_us)
          (pct t.t_queue_us) (pct t.t_lock_us))
      rows;
    rows
  in
  let mode = if !quick then "quick" else "full" in
  let doc = json_doc ~mode ~micro ~speedups ~e2e ~telemetry ~attribution in
  (match !json_path with
  | Some path ->
    write_json path doc;
    Format.printf "@.wrote %s@." path
  | None -> ());
  let gate_status =
    match !gate with
    | None -> 0
    | Some baseline_path ->
      let read_file path =
        match open_in path with
        | exception Sys_error msg ->
          Error msg
        | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Ok s
      in
      let result =
        match read_file baseline_path with
        | Error msg -> Error msg
        | Ok src -> (
          match Psme_harness.Perf_gate.doc_of_string src with
          | Error msg -> Error (baseline_path ^ ": " ^ msg)
          | Ok baseline ->
            let current =
              if !gate_handicap > 0. then begin
                (* degrade every measured number by the handicap: worse
                   is slower micro, fewer cycles/sec, lower speedup,
                   more words per cycle *)
                let h = 1. +. !gate_handicap in
                let rec worsen path j =
                  match j with
                  | Psme_obs.Json.Obj fields ->
                    Psme_obs.Json.Obj
                      (List.map (fun (k, v) -> (k, worsen (k :: path) v)) fields)
                  | Psme_obs.Json.List l ->
                    Psme_obs.Json.List (List.map (worsen path) l)
                  | Psme_obs.Json.Float x -> (
                    match path with
                    | "ns_per_run" :: _ | "minor_words_per_cycle" :: _ ->
                      Psme_obs.Json.Float (x *. h)
                    | "cycles_per_sec" :: _ | "speedup" :: _ ->
                      Psme_obs.Json.Float (x /. h)
                    | _ -> j)
                  | _ -> j
                in
                worsen [] doc
              end
              else doc
            in
            Ok
              (Psme_harness.Perf_gate.compare_docs ~tolerance:!gate_tolerance
                 ~baseline ~current ()))
      in
      (match result with
      | Error msg ->
        Format.printf "@.perf gate: cannot gate: %s@." msg;
        2
      | Ok verdict ->
        Format.printf "@.%a" Psme_harness.Perf_gate.pp verdict;
        Psme_harness.Perf_gate.exit_code verdict)
  in
  Format.printf "@.done.@.";
  exit gate_status
