# Local fallback for the CI gate: `make check` runs exactly what a PR
# must pass. Formatting is checked only when ocamlformat is installed
# (the CI format job is advisory too).

.PHONY: all build test fmt check bench clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test fmt

bench:
	dune exec bench/main.exe

clean:
	dune clean
