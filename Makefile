# Local fallback for the CI gate: `make check` runs exactly what a PR
# must pass. Formatting is checked only when ocamlformat is installed
# (the CI format job is advisory too).

.PHONY: all build test fmt lint analyze verify attribute check bench bench-json bench-quick bench-gate clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

lint:
	dune exec bin/soar_cli.exe -- lint programs/blocks.ops5 programs/selection.soar programs/analyze.ops5 --strict

# Static network analysis: errors (unsatisfiable conditions, dead
# nodes) fail the gate; warnings (cost model, redundancy) are reported
# but do not — suppress an acknowledged finding with an
# `; analyze: allow <rule> [<subject>]` pragma.
analyze:
	dune exec bin/soar_cli.exe -- analyze programs/blocks.ops5 programs/selection.soar programs/analyze.ops5
	dune exec bin/soar_cli.exe -- analyze --workload all

verify:
	dune exec bin/soar_cli.exe -- check --workload all
	dune exec bin/soar_cli.exe -- races --engine sim

# Speedup-loss attribution gate: the four ledger components must sum
# to the measured ideal-vs-achieved gap on every cycle (the command
# exits 1 on any invariant violation).
attribute:
	dune exec bin/soar_cli.exe -- attribute --workload strips --procs 11 > /dev/null
	dune exec bin/soar_cli.exe -- attribute --workload cypress --procs 11 > /dev/null
	dune exec bin/soar_cli.exe -- attribute --workload eight-puzzle --procs 11 > /dev/null

check: build test fmt lint analyze verify attribute

bench:
	dune exec bench/main.exe

# Full machine-readable run (the BENCH_*.json trajectory; see README)
bench-json:
	dune exec bench/main.exe -- --json bench.json

# Abbreviated run for CI artifacts
bench-quick:
	dune exec bench/main.exe -- --quick --json bench-quick.json

# Perf gate against the committed baseline (section geomeans, 15%
# tolerance; exit 0 pass / 1 regression / 2 baseline unreadable).
# Override the baseline for a same-machine comparison:
#   make bench-gate GATE_BASELINE=my-baseline.json
GATE_BASELINE ?= BENCH_PR9.json
bench-gate:
	dune exec bench/main.exe -- --gate $(GATE_BASELINE)

clean:
	dune clean
