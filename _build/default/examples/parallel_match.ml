(* The real parallel engine: OCaml 5 domains pulling node activations
   from shared task queues against the line-locked global memories.
   Every engine must produce the same conflict set; this example checks
   that on a live workload and reports the lock/queue statistics the
   paper measures (§6.1).

   Run with: dune exec examples/parallel_match.exe *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine

let build_network () =
  let schema = Schema.create () in
  let prods =
    Parser.productions schema
      {|
(literalize item kind weight on)
(literalize bin name load)

(p stackable
  (item ^kind <k> ^weight <w>)
  (item ^kind <k> ^weight > <w> ^on nil)
  (bin ^name <b>)
  -->
  (write <k> <b>))

(p heavy-pair
  (item ^kind <k1> ^weight <w>)
  (item ^kind { <k2> <> <k1> } ^weight <w>)
  -->
  (write <k1> <k2>))
|}
  in
  let net = Network.create schema in
  ignore (Build.add_all net prods);
  (schema, net)

let changes schema n =
  let rng = Rng.create 42 in
  let kinds = [| "box"; "crate"; "drum"; "pallet" |] in
  List.init n (fun i ->
      let cls = Sym.intern "item" in
      let fields = Array.make (Schema.arity schema cls) Value.nil in
      fields.(Schema.field_index schema cls (Sym.intern "kind")) <-
        Value.sym kinds.(Rng.int rng 4);
      fields.(Schema.field_index schema cls (Sym.intern "weight")) <-
        Value.Int (Rng.int rng 20);
      (Task.Add, Wme.make ~cls ~fields ~timetag:(i + 1)))

let () =
  let n = 150 in
  (* Reference: serial. *)
  let schema, net_serial = build_network () in
  ignore (Serial.run_changes net_serial (changes schema n));
  let reference = Conflict_set.size net_serial.Network.cs in
  Format.printf "serial engine:   %d instantiations@." reference;
  (* Real domains, single shared queue and multiple queues. *)
  List.iter
    (fun (label, queues) ->
      let _, net = build_network () in
      let stats =
        Parallel.run_changes
          { Parallel.processes = 3; queues }
          net (changes schema n)
      in
      Format.printf "%s %d instantiations, %d tasks, %d failed pops, %d lock spins@."
        label
        (Conflict_set.size net.Network.cs)
        stats.Cycle.tasks stats.Cycle.failed_pops
        (Memory.total_spins net.Network.mem);
      assert (Conflict_set.size net.Network.cs = reference))
    [
      ("3 domains (1q): ", Parallel.Single_queue);
      ("3 domains (nq): ", Parallel.Multiple_queues);
    ];
  (* And the simulated 13-processor Multimax. *)
  let _, net = build_network () in
  let stats =
    Sim.run_changes
      { Sim.procs = 13; queues = Parallel.Single_queue; collect_trace = false }
      net (changes schema n)
  in
  assert (Conflict_set.size net.Network.cs = reference);
  Format.printf
    "simulated 13p:   %d instantiations, speedup %.2f, %.0f queue spins (%.1f/task)@."
    (Conflict_set.size net.Network.cs)
    (Cycle.speedup stats) stats.Cycle.queue_spins
    (stats.Cycle.queue_spins /. float_of_int stats.Cycle.tasks);
  Format.printf "all engines agree with the serial conflict set.@."
