(* Eight-Puzzle-Soar: solve a scrambled board, watch the moves and the
   chunks being learned.

   Run with: dune exec examples/eight_puzzle_demo.exe *)

open Psme_soar
open Psme_workloads

let render { Eight_puzzle.board } =
  let cell i = if board.(i) = 0 then " " else string_of_int board.(i) in
  for r = 0 to 2 do
    Format.printf "    %s %s %s@." (cell (3 * r)) (cell ((3 * r) + 1)) (cell ((3 * r) + 2))
  done

let () =
  let instance = Eight_puzzle.scrambled ~seed:14 ~moves:10 in
  Format.printf "start configuration:@.";
  render instance;
  Format.printf "goal configuration:@.";
  render Eight_puzzle.goal_board;
  let agent = Eight_puzzle.make_agent ~instance () in
  let summary = Agent.run agent in
  Format.printf "@.moves:@.";
  List.iter
    (fun line ->
      if String.length line >= 4 && String.sub line 0 4 = "move" then
        Format.printf "  %s@." line)
    summary.Agent.output;
  Format.printf "@.solved: %b in %d decisions (%d elaboration cycles)@."
    (Eight_puzzle.solved agent) summary.Agent.decisions summary.Agent.elab_cycles;
  Format.printf "chunks learned: %d@." (List.length summary.Agent.chunks);
  List.iteri
    (fun i (ci : Agent.chunk_info) ->
      if i < 3 then
        Format.printf "  %s: %d CEs, %d new nodes, %d modeled bytes@."
          (Psme_support.Sym.name ci.Agent.ci_prod.Psme_ops5.Production.name)
          ci.Agent.ci_ces ci.Agent.ci_new_nodes ci.Agent.ci_bytes)
    summary.Agent.chunks;
  let totals = Psme_engine.Engine.totals (Agent.engine agent) in
  Format.printf "match work: %d node activations, %.1f simulated seconds@."
    totals.Psme_engine.Cycle.tasks
    (totals.Psme_engine.Cycle.serial_us /. 1e6)
