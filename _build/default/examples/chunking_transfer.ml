(* Chunking and transfer: learn on one run, reload the chunks, and show
   that the learned rules preempt the impasses (fewer decisions) — and
   measure the run-time production-addition machinery while we're at it.

   Run with: dune exec examples/chunking_transfer.exe *)

open Psme_soar
open Psme_workloads

let () =
  let instance = Eight_puzzle.scrambled ~seed:14 ~moves:10 in
  (* During-chunking run: learn. *)
  let first = Eight_puzzle.make_agent ~instance () in
  let s1 = Agent.run first in
  let chunks = Agent.learned_productions first in
  Format.printf "during-chunking run: %d decisions, %d elaboration cycles, %d chunks@."
    s1.Agent.decisions s1.Agent.elab_cycles (List.length chunks);
  let compile_ms =
    List.fold_left
      (fun a (c : Agent.chunk_info) -> a +. (float_of_int c.Agent.ci_compile_ns /. 1e6))
      0. s1.Agent.chunks
  in
  let avg_ces =
    float_of_int (List.fold_left (fun a c -> a + c.Agent.ci_ces) 0 s1.Agent.chunks)
    /. float_of_int (max 1 (List.length s1.Agent.chunks))
  in
  Format.printf "  run-time compilation: %.2f ms total; chunks average %.1f CEs@."
    compile_ms avg_ces;
  (* After-chunking run: same input, chunks preloaded, learning off. *)
  let config = { Agent.default_config with Agent.learning = false } in
  let second = Eight_puzzle.make_agent ~config ~extra:chunks ~instance () in
  let s2 = Agent.run second in
  Format.printf "after-chunking run:  %d decisions, %d elaboration cycles, %d chunks@."
    s2.Agent.decisions s2.Agent.elab_cycles (List.length s2.Agent.chunks);
  Format.printf "@.transfer: %d -> %d decisions (%s)@." s1.Agent.decisions s2.Agent.decisions
    (if s2.Agent.decisions < s1.Agent.decisions then
       "the learned preferences preempt the tie impasses"
     else "no improvement — unexpected");
  let t1 = Psme_engine.Engine.totals (Agent.engine first) in
  let t2 = Psme_engine.Engine.totals (Agent.engine second) in
  Format.printf
    "match time: %.1f s during vs %.1f s after (the paper notes chunking can\n\
     increase total match time even as decisions drop — §3)@."
    (t1.Psme_engine.Cycle.serial_us /. 1e6)
    (t2.Psme_engine.Cycle.serial_us /. 1e6)
