examples/eight_puzzle_demo.mli:
