examples/parallel_match.ml: Array Build Conflict_set Cycle Format List Memory Network Parallel Parser Psme_engine Psme_ops5 Psme_rete Psme_support Rng Schema Serial Sim Sym Task Value Wme
