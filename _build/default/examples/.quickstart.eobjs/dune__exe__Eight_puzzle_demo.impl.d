examples/eight_puzzle_demo.ml: Agent Array Eight_puzzle Format List Psme_engine Psme_ops5 Psme_soar Psme_support Psme_workloads String
