examples/strips_planning.mli:
