examples/parallel_match.mli:
