examples/io_streaming.ml: Agent Cycle Engine Format Io_stream List Parallel Psme_engine Psme_soar Psme_workloads Sim
