examples/io_streaming.mli:
