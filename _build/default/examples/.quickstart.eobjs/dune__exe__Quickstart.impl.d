examples/quickstart.ml: Array Build Codesize Conflict_set Format List Network Parser Production Psme_engine Psme_ops5 Psme_rete Psme_support Schema Sym Task Token Update Value Wm
