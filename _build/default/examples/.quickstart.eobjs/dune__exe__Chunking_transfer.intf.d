examples/chunking_transfer.mli:
