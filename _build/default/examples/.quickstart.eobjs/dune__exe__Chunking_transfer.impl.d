examples/chunking_transfer.ml: Agent Eight_puzzle Format List Psme_engine Psme_soar Psme_workloads
