examples/strips_planning.ml: Agent Format List Psme_ops5 Psme_soar Psme_workloads Strips
