examples/quickstart.mli:
