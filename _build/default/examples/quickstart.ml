(* Quickstart: the paper's Figure 2-1 production, compiled into a Rete
   network, matched incrementally, and extended at run time (§5.1/§5.2).

   Run with: dune exec examples/quickstart.exe *)

open Psme_support
open Psme_ops5
open Psme_rete

let () =
  (* 1. Declare classes and write productions in OPS5 syntax. *)
  let schema = Schema.create () in
  let productions =
    Parser.productions schema
      {|
(literalize block name color on state)
(literalize hand state name)
(literalize place name table)

(p blue-block-is-graspable
  (block ^name <x> ^color blue)
  -(block ^on <x>)
  (hand ^state free)
  -->
  (write |block| <x> |is graspable|))
|}
  in
  (* 2. Compile them into a network and attach a working memory. *)
  let net = Network.create schema in
  ignore (Build.add_all net productions);
  let wm = Wm.create () in
  let add cls pairs =
    let cls = Sym.intern cls in
    let fields = Array.make (Schema.arity schema cls) Value.nil in
    List.iter
      (fun (a, v) -> fields.(Schema.field_index schema cls (Sym.intern a)) <- v)
      pairs;
    let w = Wm.add wm ~cls ~fields in
    ignore (Psme_engine.Serial.run_changes net [ (Task.Add, w) ]);
    w
  in
  let remove w =
    Wm.remove wm w;
    ignore (Psme_engine.Serial.run_changes net [ (Task.Delete, w) ])
  in
  let show_cs label =
    Format.printf "%-28s conflict set: %d instantiation(s)@." label
      (Conflict_set.size net.Network.cs)
  in
  (* 3. Match incrementally as working memory changes. *)
  let _b1 = add "block" [ ("name", Value.sym "b1"); ("color", Value.sym "blue") ] in
  show_cs "blue block b1";
  let _hand = add "hand" [ ("state", Value.sym "free") ] in
  show_cs "free hand";
  let blocker = add "block" [ ("name", Value.sym "b2"); ("on", Value.sym "b1") ] in
  show_cs "b2 stacked on b1";
  remove blocker;
  show_cs "b2 removed";
  (* 4. Add a production at run time and update its state from the
        current working memory — the paper's chunking substrate. *)
  let chunk =
    Parser.parse_production schema
      {|(p blue-block-on-table
          (block ^name <x> ^color blue)
          (place ^name <x> ^table free)
          -->
          (write <x> |can go on the table|))|}
  in
  let result = Build.add_production net chunk in
  let tasks = Update.update_tasks net wm result in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Format.printf "added %a at run time: %d new nodes, %d bytes of generated code@."
    Sym.pp chunk.Production.name
    (List.length result.Build.new_beta_nodes)
    (Codesize.bytes_of_addition net result);
  ignore (add "place" [ ("name", Value.sym "b1"); ("table", Value.sym "free") ]);
  show_cs "place for b1";
  Format.printf "instantiations:@.";
  List.iter
    (fun i ->
      Format.printf "  %a %a@." Sym.pp i.Conflict_set.prod Token.pp i.Conflict_set.token)
    (Conflict_set.to_list net.Network.cs)
