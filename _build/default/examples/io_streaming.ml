(* Streaming sensor input (the paper's §7 I/O module): external readings
   arrive every decision cycle, classification and correlation
   productions elaborate them, and raising the input rate raises the
   match parallelism.

   Run with: dune exec examples/io_streaming.exe *)

open Psme_soar
open Psme_engine
open Psme_workloads

let speedup stats =
  let s = List.fold_left (fun a c -> a +. c.Cycle.serial_us) 0. stats in
  let m = List.fold_left (fun a c -> a +. c.Cycle.makespan_us) 0. stats in
  if m <= 0. then 1. else s /. m

let () =
  let base = Io_stream.default_params in
  Format.printf "%d sensor channels, %d decision cycles of streamed input@."
    base.Io_stream.channels base.Io_stream.ticks;
  Format.printf "%-26s %10s %12s@." "readings/channel/cycle" "alerts" "speedup@13";
  List.iter
    (fun rate ->
      let params = { base with Io_stream.rate } in
      let config =
        {
          Agent.default_config with
          Agent.engine_mode =
            Engine.Sim_mode
              { Sim.procs = 13; queues = Parallel.Multiple_queues; collect_trace = false };
        }
      in
      let agent = Io_stream.make_agent ~config ~params () in
      let summary = Agent.run agent in
      Format.printf "%-26d %10d %12.2f@." rate (Io_stream.alerts agent)
        (speedup summary.Agent.match_stats))
    [ 1; 2; 4; 8; 16 ];
  Format.printf
    "@.the paper's §7 expectation: a higher rate of working-memory change@.";
  Format.printf "means larger elaboration cycles, and the match parallelizes.@."
