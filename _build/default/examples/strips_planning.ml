(* Strips-Soar: plan a box-pushing route through rooms with doors (one
   of them closed), and print the resulting plan.

   Run with: dune exec examples/strips_planning.exe *)

open Psme_soar
open Psme_workloads

let () =
  let layout = Strips.default_layout in
  Format.printf "rooms: %dx%d grid; robot in r%d; %s must reach r%d@." layout.Strips.rows
    layout.Strips.cols
    (layout.Strips.robot_room + 1)
    layout.Strips.goal_box
    (layout.Strips.goal_room + 1);
  List.iter
    (fun (b, r) -> Format.printf "  %s starts in r%d@." b (r + 1))
    layout.Strips.boxes;
  let agent = Strips.make_agent ~layout () in
  let summary = Agent.run agent in
  Format.printf "@.plan:@.";
  List.iter
    (fun line ->
      if line <> "strips done" then Format.printf "  %s@." line)
    summary.Agent.output;
  Format.printf "@.goal reached: %b in %d decisions@." (Strips.solved agent)
    summary.Agent.decisions;
  Format.printf "chunks learned: %d (e.g. door/route preferences)@."
    (List.length summary.Agent.chunks);
  (* the paper's Figure 6-7 long-chain production is part of this task *)
  let schema = Psme_ops5.Schema.create () in
  Agent.prepare_schema schema;
  let monitor =
    Psme_ops5.Parser.parse_production schema (Strips.monitor_production layout)
  in
  Format.printf "monitor-strips-state: %d condition elements (the paper's long chain)@."
    (Psme_ops5.Production.num_ces monitor)
