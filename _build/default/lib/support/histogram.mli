(** Fixed-width bucketed histograms.

    Used for the paper's tasks-per-cycle distributions (Figures 6-11 and
    6-12) and the hash-bucket access distribution (Figure 6-2). *)

type t

val create : bucket_width:float -> buckets:int -> t
(** [create ~bucket_width ~buckets] covers [\[0, bucket_width*buckets)];
    values beyond the top land in the last (overflow) bucket. *)

val add : t -> float -> unit
val add_n : t -> float -> int -> unit
val count : t -> int
(** Total number of samples. *)

val bucket_count : t -> int
val bucket_width : t -> float
val samples_in : t -> int -> int
(** Raw count in bucket [i]. *)

val fraction_in : t -> int -> float
(** Share of all samples in bucket [i]; 0 when empty. *)

val lower_bound : t -> int -> float
(** Lower edge of bucket [i]. *)

val rows : t -> (float * float * int * float) list
(** [(lo, hi, count, fraction)] for each bucket, in order. *)

val pp : ?label:string -> unit -> Format.formatter -> t -> unit
(** Text rendering with proportional bars. *)
