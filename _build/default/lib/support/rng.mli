(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the repository — workload generation,
    property-test data, simulated service-time jitter — draws from an
    explicit [Rng.t] so that runs are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits64 : t -> int64
(** Raw next 64-bit output of the generator. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent generator (advances [t]). *)
