(** Interned symbols.

    Symbols are the atoms of the production-system language: class names,
    attribute names, constant values such as [blue] or [robby-the-robot].
    Interning maps each distinct spelling to a small integer so that
    symbol comparison — the innermost operation of the matcher — is a
    single integer compare.

    The intern table is global and protected by a mutex, so symbols may be
    created from any domain; once created, a symbol is immutable and may
    be read without synchronization. *)

type t = private int
(** An interned symbol. Equality, ordering and hashing are O(1). *)

val intern : string -> t
(** [intern s] returns the unique symbol spelled [s], creating it on first
    use. Thread-safe. *)

val name : t -> string
(** [name t] is the spelling [t] was interned from. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val count : unit -> int
(** Number of distinct symbols interned so far (for diagnostics). *)

val pp : Format.formatter -> t -> unit

val fresh : string -> t
(** [fresh prefix] interns a symbol [prefix<n>] guaranteed not to have
    been interned before; used to generate identifiers (Soar ids such as
    [g12], [o3]) and generated production names. Thread-safe. *)
