type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a entry Vec.t;
  mutable next_seq : int;
}

let create () = { heap = Vec.create (); next_seq = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let add t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  Vec.push t.heap e;
  (* Sift up. *)
  let i = ref (Vec.length t.heap - 1) in
  while !i > 0 do
    let parent = (!i - 1) / 2 in
    let pe = Vec.get t.heap parent and ce = Vec.get t.heap !i in
    if before ce pe then begin
      Vec.set t.heap parent ce;
      Vec.set t.heap !i pe;
      i := parent
    end else i := 0
  done

let pop t =
  let n = Vec.length t.heap in
  if n = 0 then None
  else begin
    let top = Vec.get t.heap 0 in
    let last = Vec.get t.heap (n - 1) in
    ignore (Vec.pop t.heap);
    if n > 1 then begin
      Vec.set t.heap 0 last;
      (* Sift down. *)
      let n = n - 1 in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < n && before (Vec.get t.heap l) (Vec.get t.heap !smallest) then smallest := l;
        if r < n && before (Vec.get t.heap r) (Vec.get t.heap !smallest) then smallest := r;
        if !smallest <> !i then begin
          let a = Vec.get t.heap !i and b = Vec.get t.heap !smallest in
          Vec.set t.heap !i b;
          Vec.set t.heap !smallest a;
          i := !smallest
        end else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t =
  if Vec.is_empty t.heap then None else Some (Vec.get t.heap 0).time

let length t = Vec.length t.heap
let is_empty t = Vec.is_empty t.heap
let clear t = Vec.clear t.heap
