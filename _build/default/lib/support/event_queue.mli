(** Priority queue of timestamped events for discrete-event simulation.

    A binary min-heap on [(time, seq)]: ties in time are broken by
    insertion order so that simulations are fully deterministic. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> time:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
