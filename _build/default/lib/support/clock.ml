let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time_ns f =
  let t0 = now_ns () in
  let x = f () in
  (x, now_ns () - t0)
