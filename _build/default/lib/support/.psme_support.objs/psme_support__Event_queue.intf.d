lib/support/event_queue.mli:
