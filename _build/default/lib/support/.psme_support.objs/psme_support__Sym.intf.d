lib/support/sym.mli: Format
