lib/support/clock.mli:
