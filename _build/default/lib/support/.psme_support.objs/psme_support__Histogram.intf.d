lib/support/histogram.mli: Format
