lib/support/histogram.ml: Array Format List String
