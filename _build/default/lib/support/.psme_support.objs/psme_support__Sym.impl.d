lib/support/sym.ml: Array Format Hashtbl Mutex Printf Stdlib
