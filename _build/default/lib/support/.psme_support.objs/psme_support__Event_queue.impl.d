lib/support/event_queue.ml: Vec
