lib/support/stats.ml: Array Format Stdlib
