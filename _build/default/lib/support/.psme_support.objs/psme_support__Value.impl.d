lib/support/value.ml: Format Hashtbl Stdlib String Sym
