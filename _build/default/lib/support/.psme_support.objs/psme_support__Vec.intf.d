lib/support/vec.mli:
