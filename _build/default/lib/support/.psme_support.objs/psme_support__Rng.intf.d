lib/support/rng.mli:
