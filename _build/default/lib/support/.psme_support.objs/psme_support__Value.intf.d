lib/support/value.mli: Format Sym
