(** Wall-clock timing for measurements. *)

val now_ns : unit -> int
(** Monotonic-ish wall time in nanoseconds (from [Unix.gettimeofday]). *)

val time_ns : (unit -> 'a) -> 'a * int
(** Run a thunk and report its elapsed time. *)
