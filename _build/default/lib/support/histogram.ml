type t = {
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~bucket_width ~buckets =
  if bucket_width <= 0. then invalid_arg "Histogram.create: width";
  if buckets <= 0 then invalid_arg "Histogram.create: buckets";
  { width = bucket_width; counts = Array.make buckets 0; total = 0 }

let bucket_of t x =
  let i = int_of_float (x /. t.width) in
  let last = Array.length t.counts - 1 in
  if i < 0 then 0 else if i > last then last else i

let add_n t x n =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + n;
  t.total <- t.total + n

let add t x = add_n t x 1

let count t = t.total
let bucket_count t = Array.length t.counts
let bucket_width t = t.width
let samples_in t i = t.counts.(i)

let fraction_in t i =
  if t.total = 0 then 0. else float_of_int t.counts.(i) /. float_of_int t.total

let lower_bound t i = t.width *. float_of_int i

let rows t =
  List.init (Array.length t.counts) (fun i ->
      (lower_bound t i, lower_bound t (i + 1), t.counts.(i), fraction_in t i))

let pp ?(label = "") () ppf t =
  if label <> "" then Format.fprintf ppf "%s@." label;
  List.iter
    (fun (lo, hi, n, frac) ->
      let bar = String.make (int_of_float (frac *. 50.)) '#' in
      Format.fprintf ppf "  [%6.0f,%6.0f) %6d %5.1f%% %s@." lo hi n (100. *. frac) bar)
    (rows t)
