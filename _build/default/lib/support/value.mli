(** Constant values carried by working-memory elements.

    OPS5 attributes hold symbolic or numeric constants. We additionally
    allow strings (for [write] actions) — they behave like opaque
    symbols for matching purposes. *)

type t =
  | Sym of Sym.t
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val sym : string -> t
(** [sym s] is [Sym (Sym.intern s)]. *)

val int : int -> t
val nil : t
(** The distinguished symbol [nil], used for absent attributes. *)

val is_nil : t -> bool

val numeric : t -> float option
(** [numeric v] is the numeric magnitude of [v] if it is a number. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
