(** Partial instantiations.

    A token is the paper's PI: the list of wmes matched so far along one
    path through the beta network. We store it as an array of wmes, one
    per {e slot}; a node's [layout] maps slots back to the production's
    positive-CE indices (identity for linear networks, permuted for
    bilinear ones). *)

open Psme_ops5

type t = private {
  wmes : Wme.t array;
  hash : int;  (** precomputed structural hash of the wme timetags *)
}

val of_wmes : Wme.t array -> t
val singleton : Wme.t -> t
val extend : t -> Wme.t -> t
(** Append one wme (the usual linear-join step). *)

val concat : t -> t -> t
(** Concatenate two tokens (binary joins in bilinear networks). *)

val length : t -> int
val wme : t -> int -> Wme.t
val prefix : t -> int -> t
(** First [n] slots. *)

val suffix : t -> int -> t
(** All slots from index [n] on. *)

val equal : t -> t -> bool
val hash : t -> int
val field : t -> slot:int -> fld:int -> Psme_support.Value.t
val permute : t -> int array -> t
(** [permute t perm] builds a token whose slot [i] is [t]'s slot
    [perm.(i)] — used at P-nodes to restore CE order. *)

val pp : Format.formatter -> t -> unit
