(** Model of generated machine-code size (Table 5-1).

    PSM-E compiled each node to open-coded NS32032 machine code; the
    paper reports ~219–304 bytes per two-input node (inline-expanded)
    and notes closed-coding would shrink that to ~15–20 bytes at some
    speed cost. Our "code generation" targets heap data structures, so
    we report a byte model derived from the node structure: a fixed
    open-coded body per node kind plus per-test and per-successor
    instruction sequences. The model's constants are stated here so the
    Table 5-1 reproduction is an honest function of the networks we
    actually build, not an echo of the paper's numbers. *)

val bytes_of_node : Network.t -> Network.node -> int

val open_coded : bool ref
(** When set to [false], uses the paper's closed-coded estimate
    (procedure calls instead of inline expansion). Default [true]. *)

val bytes_of_addition : Network.t -> Build.add_result -> int
(** Bytes of code generated when this production was added: the sum over
    the nodes the addition actually created (shared nodes cost nothing,
    which is exactly why shared compilation is smaller and faster). *)

val bytes_per_two_input_node : Network.t -> Build.add_result -> float
(** Average over the two-input nodes created by the addition; [nan] if
    it created none. *)
