(** Compiling productions into the network.

    The same code path serves initial loading and run-time chunk
    addition (§5.1): a production is compiled {e into} the existing
    network, reusing every structurally identical node reachable from
    the same parents (when [config.share] is true) and appending fresh
    nodes — with monotonically larger IDs — where sharing stops. The
    returned {!add_result} carries what the §5.2 state update needs. *)

open Psme_support
open Psme_ops5

type add_result = {
  meta : Network.pmeta;
  first_new_id : int;
      (** the network's ID watermark before the addition; every node
          created by this addition has an ID [>= first_new_id] *)
  new_beta_nodes : int list;  (** created beta nodes, creation order *)
}

exception Build_error of string

val add_production : Network.t -> Production.t -> add_result
(** Compile and wire one production. Respects [config.share] and
    [config.bilinear]. Raises {!Build_error} on semantic errors the
    front end cannot catch (e.g. a predicate on a variable bound only
    textually later). Raises [Invalid_argument] if a production with
    the same name is already present. *)

val add_all : Network.t -> Production.t list -> add_result list

val excise_production : Network.t -> Sym.t -> unit
(** Remove a production: its P-node, every node that no longer feeds
    anything, and their memory-table state. *)
