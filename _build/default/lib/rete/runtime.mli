(** Executing node activations.

    [exec] performs one task against the shared match state and returns
    the successor tasks plus the work accounting the simulator's cost
    model charges for. Inserting into a memory and probing the opposite
    memory happen under the entry's line lock, so concurrent executions
    of joinable activations produce each join result exactly once (see
    {!Memory}). Thread-safe: any number of match processes may call
    [exec] concurrently. *)

open Psme_ops5

type outcome = {
  children : Task.t list;
  scanned : int;  (** opposite-memory entries scanned under the lock *)
  matched : int;  (** successful pairings (tokens emitted downstream) *)
  insts : (Task.flag * Conflict_set.inst) list;
      (** conflict-set transitions performed (P-node activations only) —
          engines running asynchronous elaboration fire these without
          waiting for quiescence (paper §7) *)
}

val exec : Network.t -> Task.t -> outcome

val seed_wme_change :
  ?min_node_id:int -> Network.t -> Task.flag -> Wme.t -> Task.t list * int
(** Run the alpha (constant-test) network for one wme change and return
    the right activations it produces, plus the number of constant-test
    node activations performed. [min_node_id] filters deliveries to
    nodes with at least that ID — the §5.2 update filter. *)

val replay_parent :
  Network.t -> parent:Network.node -> child:int -> port:Network.port -> Task.t list
(** "Specially execute" an existing node: recompute its stored output
    tokens from its memory state and address them to exactly one (new)
    successor — the last-shared-node step of the §5.2 update. *)

val excess_cross_products : Network.t -> int
(** Diagnostic: total left-store entries across Bjoin nodes (state kept
    by bilinear networks beyond what a linear network stores). *)
