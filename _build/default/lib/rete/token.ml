open Psme_ops5

type t = {
  wmes : Wme.t array;
  hash : int;
}

let compute_hash wmes =
  Array.fold_left (fun acc w -> (acc * 31) + w.Wme.timetag) 17 wmes land max_int

let of_wmes wmes = { wmes; hash = compute_hash wmes }
let singleton w = of_wmes [| w |]

let extend t w =
  let n = Array.length t.wmes in
  let wmes = Array.make (n + 1) w in
  Array.blit t.wmes 0 wmes 0 n;
  of_wmes wmes

let concat a b = of_wmes (Array.append a.wmes b.wmes)

let length t = Array.length t.wmes
let wme t i = t.wmes.(i)
let prefix t n = of_wmes (Array.sub t.wmes 0 n)
let suffix t n = of_wmes (Array.sub t.wmes n (Array.length t.wmes - n))

let equal a b =
  a.hash = b.hash
  && Array.length a.wmes = Array.length b.wmes
  && begin
    let ok = ref true in
    Array.iteri (fun i w -> if not (Wme.equal w b.wmes.(i)) then ok := false) a.wmes;
    !ok
  end

let hash t = t.hash
let field t ~slot ~fld = Wme.field t.wmes.(slot) fld
let permute t perm = of_wmes (Array.map (fun i -> t.wmes.(i)) perm)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf w -> Format.pp_print_int ppf w.Wme.timetag))
    (Array.to_list t.wmes)
