open Psme_ops5

let last_alpha = ref 0

let batch_tasks net wm ~first_new ~new_nodes =
  last_alpha := 0;
  if new_nodes = [] then []
  else begin
    let tasks = ref [] in
    (* Replay: "specially execute" each pre-batch node that feeds a new
       node, delivering its stored output to that new successor only. *)
    List.iter
      (fun nid ->
        let n = Network.node net nid in
        match n.Network.parent with
        | Some pid when pid < first_new ->
          let parent = Network.node net pid in
          let port =
            match
              List.find_opt (fun (i, _) -> i = nid) (Network.successors parent)
            with
            | Some (_, p) -> p
            | None -> Network.P_left
          in
          tasks :=
            List.rev_append
              (Runtime.replay_parent net ~parent ~child:nid ~port)
              !tasks
        | Some _ | None -> ())
      new_nodes;
    (* The whole working memory through the constant-test network,
       delivered only to new nodes. *)
    Wm.iter
      (fun w ->
        let seeded, acts = Runtime.seed_wme_change ~min_node_id:first_new net Task.Add w in
        last_alpha := !last_alpha + acts;
        tasks := List.rev_append seeded !tasks)
      wm;
    List.rev !tasks
  end

let update_tasks net wm (res : Build.add_result) =
  batch_tasks net wm ~first_new:res.Build.first_new_id
    ~new_nodes:res.Build.new_beta_nodes

let update_tasks_batch net wm results =
  match results with
  | [] -> []
  | _ ->
    let first_new =
      List.fold_left (fun a r -> min a r.Build.first_new_id) max_int results
    in
    let new_nodes = List.concat_map (fun r -> r.Build.new_beta_nodes) results in
    batch_tasks net wm ~first_new ~new_nodes

let alpha_activations_of_last_update () = !last_alpha
