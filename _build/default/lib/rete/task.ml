open Psme_ops5

type flag = Add | Delete

type t =
  | Left of { node : int; flag : flag; token : Token.t }
  | Right of { node : int; flag : flag; wme : Wme.t }
  | Rtok of { node : int; flag : flag; token : Token.t }

let node = function
  | Left { node; _ } | Right { node; _ } | Rtok { node; _ } -> node

let flag = function
  | Left { flag; _ } | Right { flag; _ } | Rtok { flag; _ } -> flag

let pp_flag ppf = function
  | Add -> Format.pp_print_string ppf "+"
  | Delete -> Format.pp_print_string ppf "-"

let pp ppf = function
  | Left { node; flag; token } ->
    Format.fprintf ppf "L%a@%d%a" pp_flag flag node Token.pp token
  | Right { node; flag; wme } ->
    Format.fprintf ppf "R%a@%d[%d]" pp_flag flag node wme.Wme.timetag
  | Rtok { node; flag; token } ->
    Format.fprintf ppf "RT%a@%d%a" pp_flag flag node Token.pp token
