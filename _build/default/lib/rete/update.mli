(** Run-time update of a newly added production's state (§5.2).

    After {!Build.add_production} at quiescence, the new production's
    unshared memory nodes are empty. This module produces the initial
    task set that fills them:

    + every new node fed from the alpha network receives the current
      working memory as right activations, filtered by the node-ID
      threshold so no duplicate state enters shared nodes;
    + every new node whose (left) parent is an {e old} node receives
      that parent's stored output — the paper's "specially executed"
      last shared node.

    The tasks are ordinary node activations, so any engine may process
    them with full match parallelism (the Figure 6-9 measurement). *)

open Psme_ops5

val update_tasks : Network.t -> Wm.t -> Build.add_result -> Task.t list
(** Empty when the addition created no nodes (fully shared chunk). *)

val update_tasks_batch : Network.t -> Wm.t -> Build.add_result list -> Task.t list
(** Update several productions added at the same quiescence point with a
    single working-memory pass (chunks are handed over per elaboration
    cycle, so several usually arrive together). The node-ID filter uses
    the batch's lowest watermark; replay only applies where a new node
    hangs off a node that predates the whole batch — new-on-new edges
    fill by ordinary propagation. *)

val alpha_activations_of_last_update : unit -> int
(** Constant-test activations performed while seeding the most recent
    {!update_tasks} call (cost accounting for the simulator). *)
