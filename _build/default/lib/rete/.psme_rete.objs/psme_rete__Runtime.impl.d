lib/rete/runtime.ml: Alpha Conflict_set Hashtbl List Memory Network Production Psme_ops5 Task Token
