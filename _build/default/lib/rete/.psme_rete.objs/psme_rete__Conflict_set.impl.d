lib/rete/conflict_set.ml: Array Format Hashtbl List Mutex Psme_ops5 Psme_support Stdlib String Sym Token Wme
