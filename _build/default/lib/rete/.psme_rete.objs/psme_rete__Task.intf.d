lib/rete/task.mli: Format Psme_ops5 Token Wme
