lib/rete/token.ml: Array Format Psme_ops5 Wme
