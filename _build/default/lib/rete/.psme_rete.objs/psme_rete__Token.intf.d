lib/rete/token.mli: Format Psme_ops5 Psme_support Wme
