lib/rete/build.mli: Network Production Psme_ops5 Psme_support Sym
