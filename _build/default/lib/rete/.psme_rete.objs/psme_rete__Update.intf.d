lib/rete/update.mli: Build Network Psme_ops5 Task Wm
