lib/rete/memory.mli: Psme_ops5 Token Wme
