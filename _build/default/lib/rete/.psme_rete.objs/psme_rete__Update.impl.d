lib/rete/update.ml: Build List Network Psme_ops5 Runtime Task Wm
