lib/rete/conflict_set.mli: Format Psme_support Sym Token
