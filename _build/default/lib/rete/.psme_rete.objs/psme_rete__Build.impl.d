lib/rete/build.ml: Alpha Array Cond Conflict_set Format Fun Hashtbl List Memory Network Option Printf Production Psme_ops5 Psme_support Stdlib Sym Vec
