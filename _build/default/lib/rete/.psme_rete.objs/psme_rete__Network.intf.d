lib/rete/network.mli: Alpha Cond Conflict_set Hashtbl Memory Production Psme_ops5 Psme_support Schema Sym Token Value Wme
