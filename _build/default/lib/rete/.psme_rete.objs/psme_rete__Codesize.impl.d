lib/rete/codesize.ml: Build List Network
