lib/rete/memory.ml: Array Atomic Domain Fun Hashtbl List Mutex Option Psme_ops5 Psme_support Token Vec Wme
