lib/rete/codesize.mli: Build Network
