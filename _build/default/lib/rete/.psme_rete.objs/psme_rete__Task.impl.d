lib/rete/task.ml: Format Psme_ops5 Token Wme
