lib/rete/alpha.mli: Cond Psme_ops5 Psme_support Sym Value Wme
