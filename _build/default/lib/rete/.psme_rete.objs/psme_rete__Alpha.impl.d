lib/rete/alpha.ml: Cond Hashtbl List Psme_ops5 Psme_support Sym Value Wme
