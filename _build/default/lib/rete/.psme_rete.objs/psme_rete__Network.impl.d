lib/rete/network.ml: Alpha Cond Conflict_set Hashtbl List Memory Production Psme_ops5 Psme_support Schema Sym Token Value Wme
