lib/rete/runtime.mli: Conflict_set Network Psme_ops5 Task Wme
