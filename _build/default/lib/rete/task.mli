(** Node activations — the unit of parallel work (the paper's "task").

    A task pairs a destination node with an input token or wme and an
    add/delete flag. Engines schedule tasks; {!Runtime.exec} performs
    them. *)

open Psme_ops5

type flag = Add | Delete

type t =
  | Left of { node : int; flag : flag; token : Token.t }
      (** token arriving on a two-input node's left arc (or at a P-node) *)
  | Right of { node : int; flag : flag; wme : Wme.t }
      (** wme arriving from an alpha memory on a right arc *)
  | Rtok of { node : int; flag : flag; token : Token.t }
      (** token arriving on a right arc: NCC-partner inputs and the right
          side of binary (bilinear) joins *)

val node : t -> int
val flag : t -> flag
val pp : Format.formatter -> t -> unit
