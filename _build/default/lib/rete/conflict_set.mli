(** The conflict set: current production instantiations.

    Thread-safe (P-node activations may run on any match process).
    Instantiations carry the matched wmes in condition order. Firing
    state is tracked here because both OPS5 (refraction) and Soar (fire
    every instantiation exactly once, all in parallel) need it. *)

open Psme_support


type inst = {
  prod : Sym.t;
  token : Token.t;  (** slots in positive-CE order *)
}

val inst_equal : inst -> inst -> bool

type t

val create : unit -> t

val add : t -> inst -> unit
(** Adding an instantiation that is already present (fired or not) is a
    no-op — Rete delivers each instantiation at most once, but the state
    update of a duplicate chunk may legitimately re-derive one. *)

val remove : t -> inst -> unit
(** Removing an absent instantiation is a no-op (it may already have
    been removed by firing). *)

val mem : t -> inst -> bool
val size : t -> int

val pending : t -> inst list
(** Unfired instantiations, deterministically ordered (production name,
    then matched timetags). *)

val mark_fired : t -> inst -> unit
val to_list : t -> inst list
(** All current instantiations, same ordering as {!pending}. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
