open Psme_support

exception Parse_error of string * Lexer.loc

type form =
  | Literalize of Sym.t * Sym.t list
  | Prod of Production.t

type state = {
  toks : (Lexer.token * Lexer.loc) array;
  mutable pos : int;
  schema : Schema.t;
}

let triple_fields = [ "identifier"; "attribute"; "value" ]

let peek st = fst st.toks.(st.pos)
let loc st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (m, loc st))) fmt

let expect st tok what =
  if peek st = tok then advance st else err st "expected %s, found %a" what Lexer.pp_token (peek st)

let sym st =
  match peek st with
  | Lexer.SYM s -> advance st; s
  | t -> err st "expected a symbol, found %a" Lexer.pp_token t

let constant st =
  match peek st with
  | Lexer.SYM s -> advance st; Value.sym s
  | Lexer.INT i -> advance st; Value.Int i
  | Lexer.FLOAT f -> advance st; Value.Float f
  | Lexer.STR s -> advance st; Value.Str s
  | t -> err st "expected a constant, found %a" Lexer.pp_token t

(* --- tests ------------------------------------------------------- *)

let rec parse_test st =
  match peek st with
  | Lexer.VAR v -> advance st; Cond.T_var v
  | Lexer.SYM _ | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STR _ ->
    Cond.T_const (constant st)
  | Lexer.REL r -> (
    advance st;
    match peek st with
    | Lexer.VAR v -> advance st;
      if r = Cond.Eq then Cond.T_var v else Cond.T_rel (r, Cond.Ovar v)
    | _ ->
      let c = constant st in
      if r = Cond.Eq then Cond.T_const c else Cond.T_rel (r, Cond.Oconst c))
  | Lexer.DISJ_OPEN ->
    advance st;
    let rec consts acc =
      if peek st = Lexer.DISJ_CLOSE then (advance st; List.rev acc)
      else consts (constant st :: acc)
    in
    Cond.T_disj (consts [])
  | Lexer.LBRACE ->
    advance st;
    let rec tests acc =
      if peek st = Lexer.RBRACE then (advance st; List.rev acc)
      else tests (parse_test st :: acc)
    in
    Cond.T_conj (tests [])
  | t -> err st "expected a test, found %a" Lexer.pp_token t

(* --- plain OPS5 condition elements ------------------------------- *)

let field_of st cls attr =
  match Schema.field_index st.schema cls (Sym.intern attr) with
  | i -> i
  | exception Not_found ->
    err st "class %a has no attribute ^%s (missing literalize?)" Sym.pp cls attr

let parse_ce_body st =
  (* After the opening paren: class name then ^attr test pairs. *)
  let cls = Sym.intern (sym st) in
  if not (Schema.declared st.schema cls) then
    err st "undeclared class %a" Sym.pp cls;
  let rec pairs acc =
    match peek st with
    | Lexer.CARET attr ->
      advance st;
      let f = field_of st cls attr in
      let t = parse_test st in
      pairs ((f, t) :: acc)
    | Lexer.RPAREN -> advance st; List.rev acc
    | t -> err st "expected ^attribute or ), found %a" Lexer.pp_token t
  in
  let tests = pairs [] in
  Cond.ce cls tests

let rec parse_cond st =
  match peek st with
  | Lexer.LPAREN -> advance st; Cond.Pos (parse_ce_body st)
  | Lexer.DASH -> (
    advance st;
    match peek st with
    | Lexer.LPAREN -> advance st; Cond.Neg (parse_ce_body st)
    | Lexer.LBRACE ->
      advance st;
      let rec group acc =
        if peek st = Lexer.RBRACE then (advance st; List.rev acc)
        else group (parse_cond st :: acc)
      in
      Cond.Ncc (group [])
    | t -> err st "expected ( or { after -, found %a" Lexer.pp_token t)
  | t -> err st "expected a condition, found %a" Lexer.pp_token t

(* --- plain OPS5 actions ------------------------------------------ *)

let parse_term st =
  match peek st with
  | Lexer.VAR v -> advance st; Action.Tvar v
  | Lexer.LPAREN -> (
    advance st;
    match sym st with
    | "genatom" ->
      let prefix = match peek st with Lexer.SYM s -> advance st; s | _ -> "x" in
      expect st Lexer.RPAREN ")";
      Action.Tgensym prefix
    | f -> err st "unknown RHS function %s" f)
  | _ -> Action.Tconst (constant st)

let parse_make_fields st cls =
  let rec pairs acc =
    match peek st with
    | Lexer.CARET attr ->
      advance st;
      let f = field_of st cls attr in
      let t = parse_term st in
      pairs ((f, t) :: acc)
    | Lexer.RPAREN -> advance st; List.rev acc
    | t -> err st "expected ^attribute or ), found %a" Lexer.pp_token t
  in
  pairs []

let parse_action st =
  expect st Lexer.LPAREN "(";
  let kind = sym st in
  match kind with
  | "make" ->
    let cls = Sym.intern (sym st) in
    if not (Schema.declared st.schema cls) then err st "undeclared class %a" Sym.pp cls;
    [ Action.Make (cls, parse_make_fields st cls) ]
  | "remove" -> (
    match peek st with
    | Lexer.INT i -> advance st; expect st Lexer.RPAREN ")"; [ Action.Remove i ]
    | t -> err st "expected CE index, found %a" Lexer.pp_token t)
  | "modify" -> (
    match peek st with
    | Lexer.INT i ->
      advance st;
      (* Modify needs the class of the i-th CE to resolve attributes; the
         caller's production isn't assembled yet, so we defer resolution:
         store the pairs against a pseudo-class below. To keep the parser
         single-pass we require the class name explicitly after the
         index, e.g. (modify 1 block ^state graspable). *)
      let cls = Sym.intern (sym st) in
      if not (Schema.declared st.schema cls) then err st "undeclared class %a" Sym.pp cls;
      [ Action.Modify (i, parse_make_fields st cls) ]
    | t -> err st "expected CE index, found %a" Lexer.pp_token t)
  | "write" ->
    let rec terms acc =
      if peek st = Lexer.RPAREN then (advance st; List.rev acc)
      else terms (parse_term st :: acc)
    in
    [ Action.Write (terms []) ]
  | "halt" -> expect st Lexer.RPAREN ")"; [ Action.Halt ]
  | k -> err st "unknown action %s" k

(* --- Soar sugar forms -------------------------------------------- *)

let declare_triple st cls =
  if not (Schema.declared st.schema cls) then
    Schema.declare st.schema (Sym.name cls) triple_fields
  else if Schema.arity st.schema cls <> 3 then
    err st "class %a is declared as a plain OPS5 class; cannot use in sp form" Sym.pp cls

let attr_value attr = Value.Sym (Sym.intern attr)

(* (class <id> ^a t ^b t2) -> one triple CE per attribute pair. A class
   already literalized with a non-triple layout is parsed as a plain
   OPS5 CE instead (used for the architecture's [preference] wmes). *)
let parse_sugar_ce_body st =
  let cls = Sym.intern (sym st) in
  if Schema.declared st.schema cls && Schema.arity st.schema cls <> 3 then
    let rec plain_pairs acc =
      match peek st with
      | Lexer.CARET attr ->
        advance st;
        let f = field_of st cls attr in
        let t = parse_test st in
        plain_pairs ((f, t) :: acc)
      | Lexer.RPAREN -> advance st; List.rev acc
      | t -> err st "expected ^attribute or ), found %a" Lexer.pp_token t
    in
    [ Cond.ce cls (plain_pairs []) ]
  else begin
    declare_triple st cls;
    let id_test =
      match peek st with
      | Lexer.VAR v -> advance st; Cond.T_var v
      | Lexer.SYM _ | Lexer.INT _ -> Cond.T_const (constant st)
      | _ -> err st "expected identifier variable or constant in sugar CE"
    in
    let rec pairs acc =
      match peek st with
      | Lexer.CARET attr ->
        advance st;
        let t = parse_test st in
        pairs ((attr, t) :: acc)
      | Lexer.RPAREN -> advance st; List.rev acc
      | t -> err st "expected ^attribute or ), found %a" Lexer.pp_token t
    in
    let pairs = pairs [] in
    match pairs with
    | [] -> [ Cond.ce cls [ (0, id_test) ] ]
    | _ ->
      List.map
        (fun (attr, t) ->
          Cond.ce cls [ (0, id_test); (1, Cond.T_const (attr_value attr)); (2, t) ])
        pairs
  end

let rec parse_sugar_cond st =
  match peek st with
  | Lexer.LPAREN ->
    advance st;
    List.map (fun ce -> Cond.Pos ce) (parse_sugar_ce_body st)
  | Lexer.DASH -> (
    advance st;
    match peek st with
    | Lexer.LPAREN -> (
      advance st;
      match parse_sugar_ce_body st with
      | [ ce ] -> [ Cond.Neg ce ]
      | ces -> [ Cond.Ncc (List.map (fun ce -> Cond.Pos ce) ces) ])
    | Lexer.LBRACE ->
      advance st;
      let rec group acc =
        if peek st = Lexer.RBRACE then (advance st; List.concat (List.rev acc))
        else group (parse_sugar_cond st :: acc)
      in
      [ Cond.Ncc (group []) ]
    | t -> err st "expected ( or { after -, found %a" Lexer.pp_token t)
  | t -> err st "expected a condition, found %a" Lexer.pp_token t

(* (make class <id> ^a t ^b t) -> one triple Make per pair.
   (write ...) and (halt) pass through. *)
let parse_sugar_action st =
  expect st Lexer.LPAREN "(";
  let kind = sym st in
  match kind with
  | "make" when (match peek st with
                 | Lexer.SYM c ->
                   let c = Sym.intern c in
                   Schema.declared st.schema c && Schema.arity st.schema c <> 3
                 | _ -> false) ->
    (* plain literalized class inside an sp form *)
    let cls = Sym.intern (sym st) in
    [ Action.Make (cls, parse_make_fields st cls) ]
  | "make" ->
    let cls = Sym.intern (sym st) in
    declare_triple st cls;
    let id_term = parse_term st in
    let rec pairs acc =
      match peek st with
      | Lexer.CARET attr ->
        advance st;
        let t = parse_term st in
        pairs ((attr, t) :: acc)
      | Lexer.RPAREN -> advance st; List.rev acc
      | t -> err st "expected ^attribute or ), found %a" Lexer.pp_token t
    in
    let pairs = pairs [] in
    if pairs = [] then err st "sugar make needs at least one ^attribute pair";
    List.map
      (fun (attr, t) ->
        Action.Make (cls, [ (0, id_term); (1, Action.Tconst (attr_value attr)); (2, t) ]))
      pairs
  | "write" ->
    let rec terms acc =
      if peek st = Lexer.RPAREN then (advance st; List.rev acc)
      else terms (parse_term st :: acc)
    in
    [ Action.Write (terms []) ]
  | "halt" -> expect st Lexer.RPAREN ")"; [ Action.Halt ]
  | k -> err st "action %s not allowed in sp form (Soar productions only add wmes)" k

(* --- top level ---------------------------------------------------- *)

let parse_rule st ~sugar =
  let name = Sym.intern (sym st) in
  let rec conds acc =
    if peek st = Lexer.ARROW then (advance st; List.rev acc)
    else if sugar then conds (List.rev_append (parse_sugar_cond st) acc)
    else conds (parse_cond st :: acc)
  in
  let lhs = conds [] in
  let rec actions acc =
    if peek st = Lexer.RPAREN then (advance st; List.rev acc)
    else if sugar then actions (List.rev_append (parse_sugar_action st) acc)
    else actions (List.rev_append (parse_action st) acc)
  in
  let rhs = actions [] in
  try Production.make ~name ~lhs ~rhs () with
  | Invalid_argument m -> err st "%s" m

let parse_form st =
  expect st Lexer.LPAREN "(";
  let kind = sym st in
  match kind with
  | "literalize" ->
    let cls = sym st in
    let rec attrs acc =
      if peek st = Lexer.RPAREN then (advance st; List.rev acc)
      else attrs (sym st :: acc)
    in
    let attrs = attrs [] in
    (try Schema.declare st.schema cls attrs with
    | Invalid_argument m -> err st "%s" m);
    Literalize (Sym.intern cls, List.map Sym.intern attrs)
  | "p" -> Prod (parse_rule st ~sugar:false)
  | "sp" -> Prod (parse_rule st ~sugar:true)
  | k -> err st "unknown top-level form %s" k

let parse_program schema src =
  let st = { toks = Lexer.tokenize src; pos = 0; schema } in
  let rec forms acc =
    if peek st = Lexer.EOF then List.rev acc else forms (parse_form st :: acc)
  in
  forms []

let productions schema src =
  List.filter_map
    (function Prod p -> Some p | Literalize _ -> None)
    (parse_program schema src)

let parse_production schema src =
  match parse_program schema src with
  | [ Prod p ] -> p
  | _ -> invalid_arg "Parser.parse_production: expected exactly one rule"
