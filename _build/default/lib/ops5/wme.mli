(** Working-memory elements.

    A wme is an instance of a declared class: the class symbol plus one
    value per declared attribute (absent attributes hold [nil]). The
    timetag is the OPS5 creation stamp; two wmes with equal contents but
    different timetags are distinct elements of working memory, and
    deletion targets a specific timetag. *)

open Psme_support

type t = private {
  cls : Sym.t;
  fields : Value.t array;
  timetag : int;
}

val make : cls:Sym.t -> fields:Value.t array -> timetag:int -> t

val field : t -> int -> Value.t

val same_contents : t -> t -> bool
(** Class and all fields equal (timetags ignored). *)

val equal : t -> t -> bool
(** Identity: equal timetags. Within one working memory timetags are
    unique, so this is also structural identity of the element. *)

val compare : t -> t -> int
val hash : t -> int
(** Hash of the contents (class + fields), independent of timetag, so a
    delete token can locate the add token it cancels. *)

val pp : Schema.t -> Format.formatter -> t -> unit
val pp_plain : Format.formatter -> t -> unit
(** Without attribute names, for contexts with no schema at hand. *)
