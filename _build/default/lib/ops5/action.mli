(** Right-hand-side actions. *)

open Psme_support

type term =
  | Tconst of Value.t
  | Tvar of string  (** substituted from the instantiation's bindings *)
  | Tgensym of string
      (** a fresh symbol per firing ([{(genatom prefix)}] in source) —
          how Soar RHS actions mint new object identifiers *)

type t =
  | Make of Sym.t * (int * term) list
      (** create a wme of the class with the given field assignments;
          unassigned fields are [nil] *)
  | Remove of int
      (** remove the wme matching the n-th (1-based) positive CE *)
  | Modify of int * (int * term) list
      (** remove + re-make with changed fields *)
  | Write of term list  (** print (OPS5 I/O) *)
  | Halt

val vars : t -> string list
(** Variables consumed by the action. *)

val pp : Schema.t -> Format.formatter -> t -> unit
