(** Working memory: the multiset of current wmes.

    Owns timetag allocation. Engines receive wme {e changes}; this module
    is the bookkeeping behind them, shared by the OPS5 top level and the
    Soar decide module. *)

open Psme_support

type change =
  | Add of Wme.t
  | Remove of Wme.t

type t

val create : unit -> t

val add : t -> cls:Sym.t -> fields:Value.t array -> Wme.t
(** Allocates a timetag, inserts, and returns the new wme. *)

val remove : t -> Wme.t -> unit
(** Raises [Not_found] if the wme (by timetag) is not present. *)

val mem : t -> Wme.t -> bool
val size : t -> int
val iter : (Wme.t -> unit) -> t -> unit
val to_list : t -> Wme.t list
(** In ascending timetag order. *)

val find_same_contents : t -> cls:Sym.t -> fields:Value.t array -> Wme.t option
(** An arbitrary present wme with these contents (for OPS5 [remove] of a
    matched element and for duplicate suppression in Soar). *)

val pp : Schema.t -> Format.formatter -> t -> unit
