(** Tokenizer for the OPS5 / Soar production syntax. *)


type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | DISJ_OPEN   (** [<<] *)
  | DISJ_CLOSE  (** [>>] *)
  | ARROW       (** [-->] *)
  | DASH        (** [-] introducing a negation *)
  | CARET of string  (** [^attr] *)
  | VAR of string    (** [<x>] *)
  | SYM of string
  | INT of int
  | FLOAT of float
  | STR of string    (** [|literal|] or ["literal"] *)
  | REL of Cond.relation  (** [=] [<>] [<] [<=] [>] [>=] *)
  | EOF

type loc = { line : int }

exception Lex_error of string * loc

val tokenize : string -> (token * loc) array
(** Comments run from [;] to end of line. Raises {!Lex_error} on
    malformed input. *)

val pp_token : Format.formatter -> token -> unit
