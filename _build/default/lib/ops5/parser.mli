(** Parser for production-system source text.

    Two top-level rule forms are accepted:

    - [(p name ce... --> action...)] — plain OPS5 over classes declared
      with [(literalize class attr...)].

    - [(sp name sugar-ce... --> sugar-action...)] — Soar-style rules over
      object/attribute/value triples. A sugar CE
      [(class <id> ^a t1 ^b t2)] expands to one primitive CE per
      attribute pair, each testing the shared identifier — the paper's
      "collections of smaller wmes" representation, in which every CE is
      linked to a previous CE through an equal-variable test. Negating a
      multi-attribute sugar CE produces a conjunctive negation. Triple
      classes are declared automatically with fields
      [identifier], [attribute], [value].

    Top-level [(literalize ...)] forms mutate the supplied schema. *)

open Psme_support

exception Parse_error of string * Lexer.loc

type form =
  | Literalize of Sym.t * Sym.t list
  | Prod of Production.t

val parse_program : Schema.t -> string -> form list
(** Parse a whole source text; [literalize] forms are also applied to the
    schema as they are encountered (so later rules can use them). *)

val productions : Schema.t -> string -> Production.t list
(** Convenience: {!parse_program} keeping only the productions. *)

val parse_production : Schema.t -> string -> Production.t
(** Parse exactly one [(p ...)] or [(sp ...)] form. *)

val triple_fields : string list
(** The automatic field layout of Soar triple classes:
    [["identifier"; "attribute"; "value"]]. *)
