(** Productions (condition–action rules). *)

open Psme_support

type t = private {
  name : Sym.t;
  lhs : Cond.t list;
  rhs : Action.t list;
  is_chunk : bool;  (** learned at run time by chunking *)
}

val make :
  ?is_chunk:bool -> name:Sym.t -> lhs:Cond.t list -> rhs:Action.t list -> unit -> t
(** Validates the production:
    - the LHS is non-empty and its first condition is positive;
    - every variable used in a negated CE, an NCC, a predicate operand or
      the RHS is bound by some positive CE (binding occurrences are
      [T_var] tests in positive CEs);
    - [Remove]/[Modify] indices refer to positive CEs.
    Raises [Invalid_argument] with a descriptive message otherwise. *)

val num_ces : t -> int
(** The paper's condition-element count (Table 5-1). *)

val bound_vars : t -> string list
(** Variables bound by positive CEs, in binding order, without
    duplicates. *)

val positive_ce : t -> int -> Cond.ce
(** [positive_ce p n] is the [n]-th (1-based) positive CE, as addressed
    by [Remove]/[Modify]. *)

val pp : Schema.t -> Format.formatter -> t -> unit
