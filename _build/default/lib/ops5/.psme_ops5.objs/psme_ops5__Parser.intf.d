lib/ops5/parser.mli: Lexer Production Psme_support Schema Sym
