lib/ops5/wme.ml: Array Format Psme_support Schema Stdlib Sym Value
