lib/ops5/schema.ml: Array Hashtbl List Printf Psme_support Sym
