lib/ops5/lexer.mli: Cond Format
