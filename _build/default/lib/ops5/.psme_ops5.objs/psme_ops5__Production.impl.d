lib/ops5/production.ml: Action Cond Format Hashtbl List Printf Psme_support Sym
