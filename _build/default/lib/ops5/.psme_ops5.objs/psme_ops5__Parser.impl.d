lib/ops5/parser.ml: Action Array Cond Format Lexer List Production Psme_support Schema Sym Value
