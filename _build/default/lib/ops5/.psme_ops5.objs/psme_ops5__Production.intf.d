lib/ops5/production.mli: Action Cond Format Psme_support Schema Sym
