lib/ops5/action.ml: Format List Psme_support Schema Sym Value
