lib/ops5/wme.mli: Format Psme_support Schema Sym Value
