lib/ops5/wm.mli: Format Psme_support Schema Sym Value Wme
