lib/ops5/lexer.ml: Array Cond Format List String
