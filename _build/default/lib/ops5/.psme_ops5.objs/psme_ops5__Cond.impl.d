lib/ops5/cond.ml: Format List Psme_support Schema Stdlib Sym Value
