lib/ops5/wm.ml: Format Hashtbl List Wme
