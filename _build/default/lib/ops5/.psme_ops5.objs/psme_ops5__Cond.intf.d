lib/ops5/cond.mli: Format Psme_support Schema Sym Value
