lib/ops5/action.mli: Format Psme_support Schema Sym Value
