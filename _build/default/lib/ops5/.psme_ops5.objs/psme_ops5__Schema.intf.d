lib/ops5/schema.mli: Psme_support Sym
