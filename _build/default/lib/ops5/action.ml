open Psme_support

type term =
  | Tconst of Value.t
  | Tvar of string
  | Tgensym of string

type t =
  | Make of Sym.t * (int * term) list
  | Remove of int
  | Modify of int * (int * term) list
  | Write of term list
  | Halt

let vars_of_term = function
  | Tvar v -> [ v ]
  | Tconst _ | Tgensym _ -> []

let vars = function
  | Make (_, fields) | Modify (_, fields) ->
    List.concat_map (fun (_, t) -> vars_of_term t) fields
  | Write terms -> List.concat_map vars_of_term terms
  | Remove _ | Halt -> []

let pp_term ppf = function
  | Tconst v -> Value.pp ppf v
  | Tvar v -> Format.fprintf ppf "<%s>" v
  | Tgensym p -> Format.fprintf ppf "(genatom %s)" p

let pp schema ppf = function
  | Make (cls, fields) ->
    Format.fprintf ppf "(make %a" Sym.pp cls;
    List.iter
      (fun (i, t) ->
        Format.fprintf ppf " ^%a %a" Sym.pp (Schema.attr_name schema cls i) pp_term t)
      fields;
    Format.fprintf ppf ")"
  | Remove i -> Format.fprintf ppf "(remove %d)" i
  | Modify (i, fields) ->
    Format.fprintf ppf "(modify %d" i;
    List.iter (fun (_, t) -> Format.fprintf ppf " %a" pp_term t) fields;
    Format.fprintf ppf ")"
  | Write terms ->
    Format.fprintf ppf "(write %a)"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_term)
      terms
  | Halt -> Format.pp_print_string ppf "(halt)"
