
type change =
  | Add of Wme.t
  | Remove of Wme.t

type t = {
  mutable next_tag : int;
  by_tag : (int, Wme.t) Hashtbl.t;
}

let create () = { next_tag = 1; by_tag = Hashtbl.create 256 }

let add t ~cls ~fields =
  let w = Wme.make ~cls ~fields ~timetag:t.next_tag in
  t.next_tag <- t.next_tag + 1;
  Hashtbl.replace t.by_tag w.Wme.timetag w;
  w

let remove t w =
  if not (Hashtbl.mem t.by_tag w.Wme.timetag) then raise Not_found;
  Hashtbl.remove t.by_tag w.Wme.timetag

let mem t w = Hashtbl.mem t.by_tag w.Wme.timetag
let size t = Hashtbl.length t.by_tag
let iter f t = Hashtbl.iter (fun _ w -> f w) t.by_tag

let to_list t =
  Hashtbl.fold (fun _ w acc -> w :: acc) t.by_tag []
  |> List.sort Wme.compare

let find_same_contents t ~cls ~fields =
  let probe = Wme.make ~cls ~fields ~timetag:0 in
  let found = ref None in
  (try
     Hashtbl.iter
       (fun _ w -> if Wme.same_contents w probe then begin found := Some w; raise Exit end)
       t.by_tag
   with Exit -> ());
  !found

let pp schema ppf t =
  List.iter (fun w -> Format.fprintf ppf "%a@." (Wme.pp schema) w) (to_list t)
