open Psme_support

type t = {
  name : Sym.t;
  lhs : Cond.t list;
  rhs : Action.t list;
  is_chunk : bool;
}

(* Variables bound by [T_var] tests of positive CEs, in order. A
   variable's first (binding) occurrence may be in the same CE as later
   equality uses; for validation we only need the set. *)
let bound_vars_of_lhs lhs =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec scan_test = function
    | Cond.T_var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        out := v :: !out
      end
    | Cond.T_conj ts -> List.iter scan_test ts
    | Cond.T_const _ | Cond.T_rel _ | Cond.T_disj _ -> ()
  in
  let rec scan = function
    | Cond.Pos ce -> List.iter (fun (_, t) -> scan_test t) ce.Cond.tests
    | Cond.Neg _ -> ()
    | Cond.Ncc group -> List.iter scan group
  in
  List.iter scan lhs;
  List.rev !out

let validate name lhs rhs =
  let fail fmt =
    Format.kasprintf
      (fun msg -> invalid_arg (Printf.sprintf "production %s: %s" (Sym.name name) msg))
      fmt
  in
  (match lhs with
  | [] -> fail "empty LHS"
  | Cond.Pos _ :: _ -> ()
  | (Cond.Neg _ | Cond.Ncc _) :: _ -> fail "first condition must be positive");
  let bound = bound_vars_of_lhs lhs in
  let is_bound v = List.mem v bound in
  (* Predicate-operand and negation variables must be bound positively. *)
  let rec check_cond = function
    | Cond.Pos ce | Cond.Neg ce ->
      List.iter
        (fun (_, test) ->
          let rec chk = function
            | Cond.T_rel (_, Cond.Ovar v) ->
              if not (is_bound v) then fail "unbound variable <%s> in predicate" v
            | Cond.T_conj ts -> List.iter chk ts
            | Cond.T_var _ | Cond.T_const _ | Cond.T_rel (_, Cond.Oconst _)
            | Cond.T_disj _ -> ()
          in
          chk test)
        ce.Cond.tests
    | Cond.Ncc group -> List.iter check_cond group
  in
  List.iter check_cond lhs;
  let check_neg_vars = function
    | Cond.Pos _ -> ()
    | Cond.Neg ce ->
      List.iter
        (fun v ->
          if not (is_bound v) then
            fail "variable <%s> of a negated CE is never bound positively" v)
        (Cond.vars_of_ce ce)
    | Cond.Ncc group ->
      (* Inside an NCC, positive CEs of the group may bind locally. *)
      let local = bound_vars_of_lhs group in
      List.iter
        (fun v ->
          if not (is_bound v || List.mem v local) then
            fail "variable <%s> of an NCC group is never bound" v)
        (List.concat_map Cond.vars group)
  in
  List.iter check_neg_vars lhs;
  let n_pos = List.length (Cond.positives lhs) in
  List.iter
    (fun action ->
      List.iter
        (fun v ->
          if not (is_bound v) then fail "RHS uses unbound variable <%s>" v)
        (Action.vars action);
      match action with
      | Action.Remove i | Action.Modify (i, _) ->
        if i < 1 || i > n_pos then fail "RHS index %d out of range (1..%d)" i n_pos
      | Action.Make _ | Action.Write _ | Action.Halt -> ())
    rhs

let make ?(is_chunk = false) ~name ~lhs ~rhs () =
  validate name lhs rhs;
  { name; lhs; rhs; is_chunk }

let num_ces t = Cond.count_ces t.lhs
let bound_vars t = bound_vars_of_lhs t.lhs

let positive_ce t n =
  match List.nth_opt (Cond.positives t.lhs) (n - 1) with
  | Some ce -> ce
  | None -> invalid_arg "Production.positive_ce"

let pp schema ppf t =
  Format.fprintf ppf "@[<v 2>(p %a" Sym.pp t.name;
  List.iter (fun c -> Format.fprintf ppf "@,%a" (Cond.pp schema) c) t.lhs;
  Format.fprintf ppf "@,-->";
  List.iter (fun a -> Format.fprintf ppf "@,%a" (Action.pp schema) a) t.rhs;
  Format.fprintf ppf ")@]"
