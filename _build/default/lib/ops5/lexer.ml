
type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | DISJ_OPEN
  | DISJ_CLOSE
  | ARROW
  | DASH
  | CARET of string
  | VAR of string
  | SYM of string
  | INT of int
  | FLOAT of float
  | STR of string
  | REL of Cond.relation
  | EOF

type loc = { line : int }

exception Lex_error of string * loc

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'
let is_digit c = c >= '0' && c <= '9'

(* Symbols may contain almost anything that is not structure: letters,
   digits, and punctuation such as [-], [_], [*], [?], [.], [!], [:]. *)
let is_sym_char c =
  not (is_space c)
  && not (List.mem c [ '('; ')'; '{'; '}'; ';'; '^'; '<'; '>'; '='; '|'; '"' ])

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let err fmt = Format.kasprintf (fun m -> raise (Lex_error (m, { line = !line }))) fmt in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let emit tok = out := (tok, { line = !line }) :: !out in
  let read_while pred =
    let start = !pos in
    while (match cur () with Some c -> pred c | None -> false) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let read_number () =
    let s =
      read_while (fun c -> is_digit c || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-')
    in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
      match float_of_string_opt s with
      | Some f -> FLOAT f
      | None -> err "malformed number %S" s
    else
      match int_of_string_opt s with
      | Some i -> INT i
      | None -> err "malformed number %S" s
  in
  let read_delimited close =
    advance ();
    let start = !pos in
    while (match cur () with Some c -> c <> close | None -> err "unterminated string") do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    advance ();
    STR s
  in
  while !pos < n do
    match cur () with
    | None -> ()
    | Some c ->
      if is_space c then advance ()
      else if c = ';' then ignore (read_while (fun c -> c <> '\n'))
      else if c = '(' then (emit LPAREN; advance ())
      else if c = ')' then (emit RPAREN; advance ())
      else if c = '{' then (emit LBRACE; advance ())
      else if c = '}' then (emit RBRACE; advance ())
      else if c = '|' then emit (read_delimited '|')
      else if c = '"' then emit (read_delimited '"')
      else if c = '=' then (emit (REL Cond.Eq); advance ())
      else if c = '^' then begin
        advance ();
        let s = read_while is_sym_char in
        if s = "" then err "empty attribute after ^";
        emit (CARET s)
      end
      else if c = '>' then begin
        advance ();
        match cur () with
        | Some '>' -> advance (); emit DISJ_CLOSE
        | Some '=' -> advance (); emit (REL Cond.Ge)
        | _ -> emit (REL Cond.Gt)
      end
      else if c = '<' then begin
        advance ();
        match cur () with
        | Some '<' -> advance (); emit DISJ_OPEN
        | Some '=' -> advance (); emit (REL Cond.Le)
        | Some '>' -> advance (); emit (REL Cond.Ne)
        | _ ->
          let name = read_while is_sym_char in
          if name <> "" && cur () = Some '>' then begin
            advance ();
            emit (VAR name)
          end
          else if name = "" then emit (REL Cond.Lt)
          else err "expected '>' to close variable <%s" name
      end
      else if c = '-' then begin
        (* Distinguish: "-->" arrow, "-3"/"-.5" negative number, "-" dash
           (negation), and symbols that merely start with '-'. *)
        if peek 1 = Some '-' && peek 2 = Some '>' then begin
          advance (); advance (); advance ();
          emit ARROW
        end
        else
          match peek 1 with
          | Some d when is_digit d || d = '.' ->
            advance ();
            (match read_number () with
            | INT i -> emit (INT (-i))
            | FLOAT f -> emit (FLOAT (-.f))
            | _ -> assert false)
          | Some d when is_sym_char d ->
            (* A '-' immediately followed by symbol characters is read as
               a symbol only when it cannot open a negation; negations
               are "- (" or "-(", so a following sym char means symbol. *)
            emit (SYM (read_while is_sym_char))
          | _ -> advance (); emit DASH
      end
      else if is_digit c then emit (read_number ())
      else if is_sym_char c then begin
        let s = read_while is_sym_char in
        emit (SYM s)
      end
      else err "unexpected character %C" c
  done;
  emit EOF;
  Array.of_list (List.rev !out)

let pp_token ppf = function
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | DISJ_OPEN -> Format.pp_print_string ppf "<<"
  | DISJ_CLOSE -> Format.pp_print_string ppf ">>"
  | ARROW -> Format.pp_print_string ppf "-->"
  | DASH -> Format.pp_print_string ppf "-"
  | CARET s -> Format.fprintf ppf "^%s" s
  | VAR s -> Format.fprintf ppf "<%s>" s
  | SYM s -> Format.pp_print_string ppf s
  | INT i -> Format.pp_print_int ppf i
  | FLOAT f -> Format.pp_print_float ppf f
  | STR s -> Format.fprintf ppf "|%s|" s
  | REL r ->
    Format.pp_print_string ppf
      (match r with
      | Cond.Eq -> "="
      | Cond.Ne -> "<>"
      | Cond.Lt -> "<"
      | Cond.Le -> "<="
      | Cond.Gt -> ">"
      | Cond.Ge -> ">=")
  | EOF -> Format.pp_print_string ppf "<eof>"
