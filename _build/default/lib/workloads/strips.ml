open Psme_support
open Psme_ops5
open Psme_soar

type layout = {
  rows : int;
  cols : int;
  closed_doors : (int * int) list;
  robot_room : int;
  boxes : (string * int) list;
  goal_box : string;
  goal_room : int;
}

(* rooms
     r1 r2 r3
     r4 r5 r6
   robby starts in r1; box1 (the goal box) in r4 must reach r6, and the
   r4-r5 door starts closed so the plan must open it. *)
let default_layout =
  {
    rows = 2;
    cols = 3;
    closed_doors = [ (3, 4); (2, 5) ];
    robot_room = 0;
    boxes = [ ("box1", 3); ("box2", 1); ("box3", 4) ];
    goal_box = "box1";
    goal_room = 5;
  }

let room_name i = Printf.sprintf "r%d" (i + 1)

let room_pairs l =
  let idx r c = (r * l.cols) + c in
  let pairs = ref [] in
  for r = 0 to l.rows - 1 do
    for c = 0 to l.cols - 1 do
      if c + 1 < l.cols then pairs := (idx r c, idx r (c + 1)) :: !pairs;
      if r + 1 < l.rows then pairs := (idx r c, idx (r + 1) c) :: !pairs
    done
  done;
  List.rev !pairs

let door_name (a, b) = Printf.sprintf "d%d%d" (min a b + 1) (max a b + 1)

let rooms l = List.init (l.rows * l.cols) Fun.id

(* BFS distances over the room graph (doors treated as passable: the
   heuristic ignores closed doors, as STRIPS difference tables did). *)
let distances l =
  let n = l.rows * l.cols in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (room_pairs l);
  let dist = Array.make_matrix n n max_int in
  List.iter
    (fun s ->
      dist.(s).(s) <- 0;
      let q = Queue.create () in
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if dist.(s).(v) = max_int then begin
              dist.(s).(v) <- dist.(s).(u) + 1;
              Queue.add v q
            end)
          adj.(u)
      done)
    (rooms l);
  dist

let max_dist l =
  let d = distances l in
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 d

(* --- hand-written core rules ----------------------------------------- *)

let source _layout =
  {|
(sp st*init
  (goal <g> ^top-goal yes)
  -->
  (make preference ^goal <g> ^role problem-space ^value strips ^type acceptable))

(sp st*attach-state
  (goal <g> ^problem-space strips)
  (first-state <f> ^id <s>)
  -->
  (make preference ^goal <g> ^role state ^value <s> ^type acceptable))

(sp st*propose-gothru
  (goal <g> ^problem-space strips ^state <s>)
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby ^room <r1>)
  (door <d> ^room1 <r1> ^room2 <r2> ^name <dn>)
  (state <s> ^holds <h2>)
  (holds <h2> ^pred door-open ^obj <dn>)
  -->
  (make operator (genatom o) ^name go-thru ^door-name <dn> ^to-room <r2>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp st*propose-open-door
  (goal <g> ^problem-space strips ^state <s>)
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby ^room <r1>)
  (door <d> ^room1 <r1> ^room2 <r2> ^name <dn>)
  -{(state <s> ^holds <h2>)
    (holds <h2> ^pred door-open ^obj <dn>)}
  -->
  (make operator (genatom o) ^name open-door ^door-name <dn> ^to-room <r2>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp st*propose-pushthru
  (goal <g> ^problem-space strips ^state <s>)
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby ^room <r1>)
  (state <s> ^holds <hb>)
  (holds <hb> ^pred box-in ^obj <b> ^room <r1>)
  (door <d> ^room1 <r1> ^room2 <r2> ^name <dn>)
  (state <s> ^holds <h2>)
  (holds <h2> ^pred door-open ^obj <dn>)
  -->
  (make operator (genatom o) ^name push-thru ^box <b> ^door-name <dn> ^to-room <r2>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp st*apply-gothru
  (goal <g> ^problem-space strips ^state <s> ^operator <o>)
  (operator <o> ^name go-thru ^door-name <dn> ^to-room <r2>)
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby)
  -->
  (make state (genatom s2) ^copy-from <s> ^drop <h> ^last-door <dn>)
  (make holds (genatom h2) ^pred in-room ^obj robby ^room <r2>)
  (make state (genatom s2) ^holds (genatom h2))
  (write go-thru <dn>)
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp st*apply-open-door
  (goal <g> ^problem-space strips ^state <s> ^operator <o>)
  (operator <o> ^name open-door ^door-name <dn>)
  -->
  (make state (genatom s2) ^copy-from <s>)
  (make holds (genatom h2) ^pred door-open ^obj <dn>)
  (make state (genatom s2) ^holds (genatom h2))
  (write open-door <dn>)
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp st*apply-pushthru
  (goal <g> ^problem-space strips ^state <s> ^operator <o>)
  (operator <o> ^name push-thru ^box <b> ^door-name <dn> ^to-room <r2>)
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby)
  (state <s> ^holds <hb>)
  (holds <hb> ^pred box-in ^obj <b>)
  -->
  (make state (genatom s2) ^copy-from <s> ^drop <h> ^drop <hb> ^last-door <dn>)
  (make holds (genatom h2) ^pred in-room ^obj robby ^room <r2>)
  (make holds (genatom h3) ^pred box-in ^obj <b> ^room <r2>)
  (make state (genatom s2) ^holds (genatom h2) ^holds (genatom h3))
  (write push-thru <b> <dn>)
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp st*copy-holds
  (goal <g> ^problem-space strips ^state <s2>)
  (state <s2> ^copy-from <s>)
  (state <s> ^holds <h>)
  -(state <s2> ^drop <h>)
  -->
  (make state <s2> ^holds <h>))

(sp st*elab-objective-approach
  (goal <g> ^problem-space strips ^state <s>)
  (task-goal <tg> ^box <b>)
  (state <s> ^holds <h1>)
  (holds <h1> ^pred in-room ^obj robby ^room <rr>)
  (state <s> ^holds <h2>)
  (holds <h2> ^pred box-in ^obj <b> ^room { <br> <> <rr> })
  -->
  (make state <s> ^objective <br>))

(sp st*elab-objective-deliver
  (goal <g> ^problem-space strips ^state <s>)
  (task-goal <tg> ^box <b> ^room <rt>)
  (state <s> ^holds <h1>)
  (holds <h1> ^pred in-room ^obj robby ^room <rr>)
  (state <s> ^holds <h2>)
  (holds <h2> ^pred box-in ^obj <b> ^room <rr>)
  -->
  (make state <s> ^objective <rt>))

(sp st*evaluate-move
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (goal <g1> ^state <s>)
  (state <s> ^objective <obj>)
  (operator <o> ^name go-thru ^to-room <r2>)
  (room-dist <rd> ^from <r2> ^to <obj> ^value <dv>)
  (score-move <sc> ^dist <dv> ^value <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))

(sp st*evaluate-open
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (goal <g1> ^state <s>)
  (state <s> ^objective <obj>)
  (operator <o> ^name open-door ^to-room <r2>)
  (room-dist <rd> ^from <r2> ^to <obj> ^value <dv>)
  (score-open <sc> ^dist <dv> ^value <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))

(sp st*evaluate-push
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (goal <g1> ^state <s>)
  (state <s> ^objective <obj>)
  (operator <o> ^name push-thru ^box <b> ^to-room <r2>)
  (task-goal <tg> ^box <b>)
  (room-dist <rd> ^from <r2> ^to <obj> ^value <dv>)
  (score-push <sc> ^dist <dv> ^value <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))

(sp st*evaluate-push-other
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (operator <o> ^name push-thru ^box <b>)
  (task-goal <tg> ^box <> <b>)
  -->
  (make evaluation (genatom e) ^object <o> ^value 0))

(sp st*reject-backtrack
  (goal <g> ^problem-space strips ^state <s>)
  (state <s> ^last-door <dn>)
  (operator <o> ^name go-thru ^door-name <dn>)
  -->
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp st*goal-test
  (goal <g> ^problem-space strips ^state <s>)
  (task-goal <tg> ^box <b> ^room <rt>)
  (state <s> ^holds <h>)
  (holds <h> ^pred box-in ^obj <b> ^room <rt>)
  -->
  (write strips done)
  (halt))
|}

(* --- the Figure 6-7 long-chain production ----------------------------- *)

let monitor_production l =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "(sp monitor-strips-state\n";
  pr "  (goal <g> ^problem-space strips ^state <s>)\n";
  pr "  (object <ob> ^name robby ^type robot)\n";
  pr "  (state <s> ^holds <hr>)\n";
  pr "  (holds <hr> ^pred in-room ^obj robby ^room <anyr>)\n";
  let open_doors =
    List.filter (fun p -> not (List.mem p l.closed_doors)) (room_pairs l)
  in
  List.iteri
    (fun i p ->
      pr "  (door <dv%d> ^name %s ^room1 <dr%da> ^room2 <dr%db>)\n" i (door_name p) i i;
      pr "  (state <s> ^holds <hd%d>)\n" i;
      pr "  (holds <hd%d> ^pred door-open ^obj %s)\n" i (door_name p))
    open_doors;
  List.iteri
    (fun i (b, _) ->
      pr "  (object <bo%d> ^name %s ^type box)\n" i b;
      pr "  (state <s> ^holds <hb%d>)\n" i;
      pr "  (holds <hb%d> ^pred box-in ^obj %s ^room <br%d>)\n" i b i)
    l.boxes;
  pr "  (task-goal <tg> ^box <gb> ^room <gr>)\n";
  pr "  -->\n";
  pr "  (make state <s> ^monitored yes))\n";
  Buffer.contents buf

(* --- generated monitor/elaboration families --------------------------- *)

let generated_rules l =
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let dist = distances l in
  let ctx = "(goal <g> ^problem-space strips ^state <s>)" in
  List.iter
    (fun p ->
      let dn = door_name p in
      pr
        {|
(sp st*monitor-door-open-%s
  %s
  (state <s> ^holds <h>)
  (holds <h> ^pred door-open ^obj %s)
  -->
  (make state <s> ^door-ok %s))
|}
        dn ctx dn dn;
      pr
        {|
(sp st*elab-can-pass-%s
  %s
  (state <s> ^holds <hr>)
  (holds <hr> ^pred in-room ^obj robby ^room <r1>)
  (door <d> ^room1 <r1> ^name %s)
  (state <s> ^door-ok %s)
  -->
  (make state <s> ^can-pass %s))
|}
        dn ctx dn dn dn)
    (room_pairs l);
  List.iter
    (fun r ->
      let rn = room_name r in
      pr
        {|
(sp st*monitor-robot-at-%s
  %s
  (state <s> ^holds <h>)
  (holds <h> ^pred in-room ^obj robby ^room %s)
  -->
  (make state <s> ^robot-at %s))
|}
        rn ctx rn rn;
      pr
        {|
(sp st*monitor-objective-%s
  %s
  (state <s> ^objective %s)
  -->
  (make state <s> ^focus-room %s))
|}
        rn ctx rn rn)
    (rooms l);
  List.iter
    (fun (b, _) ->
      pr
        {|
(sp st*monitor-with-robot-%s
  %s
  (state <s> ^holds <h1>)
  (holds <h1> ^pred in-room ^obj robby ^room <r>)
  (state <s> ^holds <h2>)
  (holds <h2> ^pred box-in ^obj %s ^room <r>)
  -->
  (make state <s> ^with-robot %s))
|}
        b ctx b b;
      pr
        {|
(sp st*elab-box-room-%s
  %s
  (state <s> ^holds <h>)
  (holds <h> ^pred box-in ^obj %s ^room <r>)
  -->
  (make state <s> ^room-of-%s <r>))
|}
        b ctx b b;
      pr
        {|
(sp st*monitor-delivered-%s
  %s
  (task-goal <tg> ^room <rt>)
  (state <s> ^holds <h>)
  (holds <h> ^pred box-in ^obj %s ^room <rt>)
  -->
  (make state <s> ^delivered %s))
|}
        b ctx b b)
    l.boxes;
  (* deliberation families: box-location notes and route appraisal run
     inside the tie subgoal, so learned chunks make this work vanish in
     after-chunking runs (the paper's Strips after run is shorter). *)
  List.iter
    (fun (b, _) ->
      List.iter
        (fun r ->
          pr
            {|
(sp st*note-%s-%s
  (goal <g2> ^impasse tie ^object <g1>)
  (goal <g1> ^state <s>)
  (state <s> ^holds <h>)
  (holds <h> ^pred box-in ^obj %s ^room %s)
  -->
  (make goal <g2> ^note-%s-%s yes))
|}
            b (room_name r) b (room_name r) b (room_name r))
        (rooms l))
    l.boxes;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            pr
              {|
(sp st*focus-%s-%s
  (goal <g2> ^impasse tie ^object <g1>)
  (goal <g1> ^state <s>)
  (state <s> ^robot-at %s ^objective %s)
  (state <s> ^holds <h1>)
  (holds <h1> ^pred in-room ^obj robby ^room %s)
  -->
  (make goal <g2> ^span %d))
|}
              (room_name a) (room_name b) (room_name a) (room_name b)
              (room_name a) dist.(a).(b))
        (rooms l))
    (rooms l);
  Buffer.contents buf

(* --- agent construction ------------------------------------------------ *)

let make_agent ?(config = Agent.default_config) ?(extra = []) ?(layout = default_layout)
    () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    Parser.productions schema (source layout)
    @ Parser.productions schema (monitor_production layout)
    @ Parser.productions schema (generated_rules layout)
    @ Defaults.productions_best schema
  in
  let agent = Agent.create ~config schema (prods @ extra) in
  let v = Value.sym and i = Value.int in
  let triple cls id attr value = Agent.add_triple agent ~cls ~id ~attr ~value in
  (* static objects *)
  let obj name ty =
    let id = Agent.new_id agent "ob" in
    triple "object" id "name" (v name);
    triple "object" id "type" (v ty)
  in
  obj "robby" "robot";
  List.iter (fun (b, _) -> obj b "box") layout.boxes;
  (* doors, one object per orientation *)
  List.iter
    (fun (a, b) ->
      List.iter
        (fun (x, y) ->
          let id = Agent.new_id agent "dr" in
          triple "door" id "name" (v (door_name (a, b)));
          triple "door" id "room1" (v (room_name x));
          triple "door" id "room2" (v (room_name y)))
        [ (a, b); (b, a) ];
      obj (door_name (a, b)) "door")
    (room_pairs layout);
  (* distance table and score tables *)
  let dist = distances layout in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let id = Agent.new_id agent "rd" in
          triple "room-dist" id "from" (v (room_name a));
          triple "room-dist" id "to" (v (room_name b));
          triple "room-dist" id "value" (i dist.(a).(b)))
        (rooms layout))
    (rooms layout);
  (* One distance scale for every operator kind: moving (or pushing)
     into a room at distance d of the objective scores 2*(md-d); a push
     of the goal box earns +1 (progress on the real goal); opening a
     door earns -1 relative to actually moving through it. *)
  let md = max_dist layout in
  for d = 0 to md do
    let sm = Agent.new_id agent "sm" in
    triple "score-move" sm "dist" (i d);
    triple "score-move" sm "value" (i (2 * (md - d)));
    let so = Agent.new_id agent "so" in
    triple "score-open" so "dist" (i d);
    triple "score-open" so "value" (i (max 0 ((2 * (md - d)) - 1)));
    let sp = Agent.new_id agent "sp" in
    triple "score-push" sp "dist" (i d);
    triple "score-push" sp "value" (i ((2 * (md - d)) + 1))
  done;
  (* the task goal *)
  let tg = Agent.new_id agent "tg" in
  triple "task-goal" tg "box" (v layout.goal_box);
  triple "task-goal" tg "room" (v (room_name layout.goal_room));
  (* the initial state *)
  let s0 = Agent.new_id agent "s" in
  let holds assigns =
    let h = Agent.new_id agent "h" in
    List.iter (fun (attr, value) -> triple "holds" h attr value) assigns;
    triple "state" s0 "holds" (Value.Sym h)
  in
  holds [ ("pred", v "in-room"); ("obj", v "robby");
          ("room", v (room_name layout.robot_room)) ];
  List.iter
    (fun (b, r) ->
      holds [ ("pred", v "box-in"); ("obj", v b); ("room", v (room_name r)) ])
    layout.boxes;
  List.iter
    (fun p ->
      if not (List.mem p layout.closed_doors) then
        holds [ ("pred", v "door-open"); ("obj", v (door_name p)) ])
    (room_pairs layout);
  let f = Agent.new_id agent "f" in
  triple "first-state" f "id" (Value.Sym s0);
  agent

(* The goal box sits in the target room of the current state. *)
let solved agent =
  let wm = Agent.wm agent in
  match Agent.slot agent ~goal:(Agent.top_goal agent) ~role:"state" with
  | None | Some (Value.Int _ | Value.Float _ | Value.Str _) -> false
  | Some (Value.Sym s) ->
    let layout = default_layout in
    let target = Value.sym (room_name layout.goal_room) in
    let box = Value.sym layout.goal_box in
    let hold_ids = ref [] in
    Wm.iter
      (fun w ->
        if
          Sym.name w.Wme.cls = "state"
          && Value.equal w.Wme.fields.(0) (Value.Sym s)
          && Value.equal w.Wme.fields.(1) (Value.sym "holds")
        then hold_ids := w.Wme.fields.(2) :: !hold_ids)
      wm;
    let attr_of h name =
      let out = ref None in
      Wm.iter
        (fun w ->
          if
            Sym.name w.Wme.cls = "holds"
            && Value.equal w.Wme.fields.(0) h
            && Value.equal w.Wme.fields.(1) (Value.sym name)
          then out := Some w.Wme.fields.(2))
        wm;
      !out
    in
    List.exists
      (fun h ->
        attr_of h "pred" = Some (Value.sym "box-in")
        && attr_of h "obj" = Some box
        && attr_of h "room" = Some target)
      !hold_ids

let workload =
  {
    Workload.name = "strips";
    paper_productions = 105;
    paper_uniproc_s = 43.7;
    paper_uniproc_after_s = 30.6;
    make = (fun ?config ?extra () -> make_agent ?config ?extra ());
    chunks_expected = 26;
  }
