open Psme_rete
open Psme_soar

type t = {
  name : string;
  paper_productions : int;
  paper_uniproc_s : float;
  paper_uniproc_after_s : float;
  make : ?config:Agent.config -> ?extra:Psme_ops5.Production.t list -> unit -> Agent.t;
  chunks_expected : int;
}

let production_count t =
  let agent = t.make () in
  List.length (Network.productions (Agent.network agent))
