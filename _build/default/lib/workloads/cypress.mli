(** Cypress-Soar substitute: algorithm design as a derivation task.

    The original Cypress-Soar rule base (196 productions; derives
    quicksort) is not available, so this module implements the closest
    synthetic equivalent: a divide-and-conquer {e design space} in which
    the agent derives a sorting algorithm by fixing one design dimension
    at a time — paradigm, decomposition, base case, recursive step,
    composition, verification, optimization, packaging — each with three
    competing alternatives resolved through tie impasses, evaluation
    subgoals and chunking, exactly like the other tasks.

    What the paper uses Cypress for is its {e match profile}: many large
    productions (average ≈26 CEs), long dependent join chains, big
    chunks (≈51 CEs), and the largest uniprocessor time of the three
    tasks. The generator reproduces those properties structurally:
    every evaluation and monitor rule walks a multi-fact specification
    chain (variable-linked spec wmes), which is precisely what produces
    long chains of dependent node activations. See DESIGN.md for the
    substitution note. *)

open Psme_soar

val steps : (string * string list) list
(** The design dimensions and their alternatives, in derivation order. *)

val preferred : (string * string) list
(** The quicksort-like target derivation (step, alternative). *)

val chain_length : int
(** Spec-chain facts walked by each evaluation rule. *)

val source : string
val generated_rules : string
val make_agent :
  ?config:Agent.config -> ?extra:Psme_ops5.Production.t list -> unit -> Agent.t
val workload : Workload.t
val derivation : Agent.t -> (string * string) list
(** Choices fixed in the final design state. *)
