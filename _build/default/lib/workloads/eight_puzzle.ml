open Psme_support
open Psme_ops5
open Psme_soar

type instance = { board : int array }

(* The classic spiral goal configuration:
     1 2 3
     8 _ 4
     7 6 5     (0 is the blank)                                        *)
let goal_board = { board = [| 1; 2; 3; 8; 0; 4; 7; 6; 5 |] }

let cell_name i = Printf.sprintf "c%d%d" ((i / 3) + 1) ((i mod 3) + 1)

let adjacent i j =
  let ri = i / 3 and ci = i mod 3 and rj = j / 3 and cj = j mod 3 in
  abs (ri - rj) + abs (ci - cj) = 1

let manhattan i j =
  let ri = i / 3 and ci = i mod 3 and rj = j / 3 and cj = j mod 3 in
  abs (ri - rj) + abs (ci - cj)

let target_cell tile =
  let rec find i =
    if goal_board.board.(i) = tile then i else find (i + 1)
  in
  find 0

let scrambled ~seed ~moves =
  let rng = Rng.create seed in
  let board = Array.copy goal_board.board in
  let blank = ref (target_cell 0) in
  let last = ref (-1) in
  for _ = 1 to moves do
    let candidates =
      List.filter
        (fun i -> adjacent i !blank && i <> !last)
        (List.init 9 Fun.id)
    in
    let from = List.nth candidates (Rng.int rng (List.length candidates)) in
    board.(!blank) <- board.(from);
    board.(from) <- 0;
    last := !blank;
    blank := from
  done;
  { board }

(* --- rules ------------------------------------------------------------ *)

let source =
  {|
(sp ep*init
  (goal <g> ^top-goal yes)
  -->
  (make preference ^goal <g> ^role problem-space ^value eight-puzzle ^type acceptable))

(sp ep*attach-state
  (goal <g> ^problem-space eight-puzzle)
  (first-state <f> ^id <s>)
  -->
  (make preference ^goal <g> ^role state ^value <s> ^type acceptable))

(sp ep*propose-move
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <bb>)
  (binding <bb> ^tile blank ^cell <bc>)
  (state <s> ^binding <tb>)
  (binding <tb> ^tile { <t> <> blank } ^cell <tc>)
  (adj <a> ^from <tc> ^to <bc>)
  -->
  (make operator (genatom o) ^name move-tile ^tile <t> ^from <tc> ^to <bc>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp ep*apply-move
  (goal <g> ^problem-space eight-puzzle ^state <s> ^operator <o>)
  (operator <o> ^name move-tile ^tile <t> ^from <tc> ^to <bc>)
  -->
  (make state (genatom s2) ^copy-from <s> ^moved-tile <t> ^moved-from <tc> ^moved-to <bc>)
  (make binding (genatom nb) ^tile <t> ^cell <bc>)
  (make binding (genatom nb2) ^tile blank ^cell <tc>)
  (make state (genatom s2) ^binding (genatom nb) ^binding (genatom nb2))
  (write move <t> <tc> <bc>)
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp ep*copy-binding
  (goal <g> ^problem-space eight-puzzle ^state <s2>)
  (state <s2> ^copy-from <s> ^moved-from <tc> ^moved-to <bc>)
  (state <s> ^binding <b>)
  (binding <b> ^cell { <c> <> <tc> <> <bc> })
  -->
  (make state <s2> ^binding <b>))

(sp ep*reject-undo
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^moved-tile <t> ^moved-from <tc> ^moved-to <bc>)
  (operator <o> ^name move-tile ^tile <t> ^from <bc> ^to <tc>)
  -->
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp ep*evaluate-move
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (operator <o> ^name move-tile ^tile <t> ^from <tc> ^to <bc>)
  (gain <x> ^tile <t> ^from <tc> ^to <bc> ^value <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))

(sp ep*goal-test
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  -{(target <tt> ^tile <t> ^cell <c>)
    -{(state <s> ^binding <b>)
      (binding <b> ^tile <t> ^cell <c>)}}
  -->
  (write solved)
  (halt))
|}

(* The monitor/elaboration family: one rule per tile or cell, each with
   its own constants — the kind of knowledge real Soar task systems
   carried, and what brings the count to the paper's 71 productions. *)
let generated_rules =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let tiles = List.init 8 (fun i -> i + 1) in
  let cells = List.init 9 Fun.id in
  (* per tile: tile on its target cell *)
  List.iter
    (fun t ->
      pr
        {|
(sp ep*monitor-placed-%d
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^tile %d ^cell %s)
  -->
  (make state <s> ^placed %d))
|}
        t t (cell_name (target_cell t)) t)
    tiles;
  (* per tile: tile off its target cell *)
  List.iter
    (fun t ->
      pr
        {|
(sp ep*monitor-misplaced-%d
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^tile %d ^cell <> %s)
  -->
  (make state <s> ^misplaced %d))
|}
        t t (cell_name (target_cell t)) t)
    tiles;
  (* per cell: where is the blank *)
  List.iter
    (fun c ->
      pr
        {|
(sp ep*elaborate-blank-%s
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^tile blank ^cell %s)
  -->
  (make state <s> ^blank-at %s))
|}
        (cell_name c) (cell_name c) (cell_name c))
    cells;
  (* per cell: who occupies it *)
  List.iter
    (fun c ->
      pr
        {|
(sp ep*occupant-%s
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^cell %s ^tile <t>)
  -->
  (make state <s> ^occ-%s <t>))
|}
        (cell_name c) (cell_name c) (cell_name c))
    cells;
  (* per tile: already in its target row / column *)
  let row_cells t =
    let r = target_cell t / 3 in
    List.filter (fun c -> c / 3 = r) cells
  in
  let col_cells t =
    let k = target_cell t mod 3 in
    List.filter (fun c -> c mod 3 = k) cells
  in
  List.iter
    (fun t ->
      pr
        {|
(sp ep*monitor-row-%d
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^tile %d ^cell << %s >>)
  -->
  (make state <s> ^row-ok %d))
|}
        t t
        (String.concat " " (List.map cell_name (row_cells t)))
        t)
    tiles;
  List.iter
    (fun t ->
      pr
        {|
(sp ep*monitor-col-%d
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^binding <b>)
  (binding <b> ^tile %d ^cell << %s >>)
  -->
  (make state <s> ^col-ok %d))
|}
        t t
        (String.concat " " (List.map cell_name (col_cells t)))
        t)
    tiles;
  (* per cell: cells adjacent to the blank *)
  List.iter
    (fun c ->
      let adjs = List.filter (adjacent c) cells in
      pr
        {|
(sp ep*blank-adjacent-%s
  (goal <g> ^problem-space eight-puzzle ^state <s>)
  (state <s> ^blank-at %s)
  -->
  (make state <s> %s))
|}
        (cell_name c) (cell_name c)
        (String.concat " "
           (List.map (fun a -> Printf.sprintf "^blank-adj %s" (cell_name a)) adjs)))
    cells;
  Buffer.contents buf

(* Seed 14 at 10 scramble moves solves greedily in 82 decisions with 31
   chunks and ~42 simulated uniprocessor seconds — close to the paper's
   37.7 s / ~20 chunks profile for this task. *)
let make_agent ?(config = Agent.default_config) ?(extra = [])
    ?(instance = scrambled ~seed:14 ~moves:10) () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    Parser.productions schema source
    @ Parser.productions schema generated_rules
    @ Defaults.productions schema
  in
  let agent = Agent.create ~config schema (prods @ extra) in
  let v = Value.sym and i = Value.int in
  let triple cls id attr value = Agent.add_triple agent ~cls ~id ~attr ~value in
  let cells = List.init 9 Fun.id in
  (* adjacency facts *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if adjacent a b then begin
            let id = Agent.new_id agent "adj" in
            triple "adj" id "from" (v (cell_name a));
            triple "adj" id "to" (v (cell_name b))
          end)
        cells)
    cells;
  (* target cells per tile *)
  List.iter
    (fun t ->
      let id = Agent.new_id agent "tgt" in
      triple "target" id "tile" (i t);
      triple "target" id "cell" (v (cell_name (target_cell t))))
    (List.init 8 (fun k -> k + 1));
  (* Per-move gain facts: 8 * (1 + d(from,target) - d(to,target)) plus a
     small content-derived tie-break (< 8, so it never outweighs a real
     distance difference). Without it, equally-good moves are broken by
     operator-identifier order, which varies with firing order and would
     make runs depend on the engine's schedule. *)
  List.iter
    (fun t ->
      let tc = target_cell t in
      List.iter
        (fun from ->
          List.iter
            (fun to_ ->
              if adjacent from to_ then begin
                let gain = 1 + manhattan from tc - manhattan to_ tc in
                let noise = ((t * 31) + (from * 7) + (to_ * 3)) mod 7 in
                let id = Agent.new_id agent "gain" in
                triple "gain" id "tile" (i t);
                triple "gain" id "from" (v (cell_name from));
                triple "gain" id "to" (v (cell_name to_));
                triple "gain" id "value" (i ((8 * gain) + noise))
              end)
            cells)
        cells)
    (List.init 8 (fun k -> k + 1));
  (* the initial board *)
  let s0 = Agent.new_id agent "s" in
  Array.iteri
    (fun c tile ->
      let b = Agent.new_id agent "b" in
      triple "binding" b "tile" (if tile = 0 then v "blank" else i tile);
      triple "binding" b "cell" (v (cell_name c));
      triple "state" s0 "binding" (Value.Sym b))
    instance.board;
  let f = Agent.new_id agent "f" in
  triple "first-state" f "id" (Value.Sym s0);
  agent

(* Check the goal configuration directly against the current state's
   bindings (rather than trusting the halt). *)
let solved agent =
  let wm = Agent.wm agent in
  match Agent.slot agent ~goal:(Agent.top_goal agent) ~role:"state" with
  | None -> false
  | Some (Value.Sym s) ->
    let tiles_ok = ref 0 in
    let bindings = ref [] in
    Psme_ops5.Wm.iter
      (fun w ->
        if
          Sym.name w.Wme.cls = "state"
          && Value.equal w.Wme.fields.(0) (Value.Sym s)
          && Value.equal w.Wme.fields.(1) (Value.sym "binding")
        then bindings := w.Wme.fields.(2) :: !bindings)
      wm;
    let binding_attr b attr =
      let out = ref None in
      Psme_ops5.Wm.iter
        (fun w ->
          if
            Sym.name w.Wme.cls = "binding"
            && Value.equal w.Wme.fields.(0) b
            && Value.equal w.Wme.fields.(1) (Value.sym attr)
          then out := Some w.Wme.fields.(2))
        wm;
      !out
    in
    List.iter
      (fun b ->
        match binding_attr b "tile", binding_attr b "cell" with
        | Some (Value.Int t), Some (Value.Sym c)
          when t >= 1 && t <= 8 && Sym.name c = cell_name (target_cell t) ->
          incr tiles_ok
        | _ -> ())
      !bindings;
    !tiles_ok = 8
  | Some _ -> false

let workload =
  {
    Workload.name = "eight-puzzle";
    paper_productions = 71;
    paper_uniproc_s = 37.7;
    paper_uniproc_after_s = 111.2;
    make = (fun ?config ?extra () -> make_agent ?config ?extra ());
    chunks_expected = 20;
  }
