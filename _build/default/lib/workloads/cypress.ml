open Psme_support
open Psme_ops5
open Psme_soar

let steps =
  [
    ("paradigm", [ "divide-conquer"; "transform"; "generate-test" ]);
    ("decompose", [ "split-pivot"; "split-half"; "split-one" ]);
    ("base-case", [ "singleton"; "empty"; "pair" ]);
    ("recursive-step", [ "recurse"; "iterate"; "lookup" ]);
    ("compose", [ "append"; "merge"; "interleave" ]);
    ("verify", [ "induction"; "invariant"; "testing" ]);
    ("optimize", [ "fuse"; "inline"; "no-change" ]);
    ("package", [ "function"; "module"; "script" ]);
  ]

let preferred = List.map (fun (s, alts) -> (s, List.hd alts)) steps

let chain_length = 8

let step_names = List.map fst steps
let next_step s =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = s then b else go rest
    | [ a ] -> if a = s then "design-done" else raise Not_found
    | [] -> raise Not_found
  in
  go step_names

let tok step alt i = Printf.sprintf "tok-%s-%s-%d" step alt i

(* A spec chain walked with variable joins: each CE binds the next
   link's token, so the compiled join chain is long and strictly
   dependent — the paper's "long chain" structure. *)
let chain_ces ~links ~step ~alt ~prefix =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "  (spec <%sf0> ^token %s ^next <%st1>)\n" prefix (tok step alt 0) prefix;
  for i = 1 to links - 1 do
    pr "  (spec <%sf%d> ^token <%st%d> ^next <%st%d>)\n" prefix i prefix i prefix (i + 1)
  done;
  pr "  (spec <%sf%d> ^token <%st%d> ^tier %d)\n" prefix links prefix links links;
  Buffer.contents buf

let source =
  {|
(sp cy*init
  (goal <g> ^top-goal yes)
  -->
  (make preference ^goal <g> ^role problem-space ^value cypress ^type acceptable))

(sp cy*attach-state
  (goal <g> ^problem-space cypress)
  (first-state <f> ^id <s>)
  -->
  (make preference ^goal <g> ^role state ^value <s> ^type acceptable))

(sp cy*propose-alternative
  (goal <g> ^problem-space cypress ^state <s>)
  (state <s> ^step <k>)
  (alt <a> ^step <k> ^name <n>)
  -->
  (make operator (genatom o) ^name choose ^step <k> ^alt <n>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp cy*apply-choose
  (goal <g> ^problem-space cypress ^state <s> ^operator <o>)
  (operator <o> ^name choose ^step <k> ^alt <n>)
  (succession <ns> ^after <k> ^is <k2>)
  -->
  (make design (genatom d) ^step <k> ^choice <n>)
  (write fixed <k> <n>)
  (make state (genatom s2) ^copy-from <s> ^step <k2> ^design (genatom d))
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp cy*copy-design
  (goal <g> ^problem-space cypress ^state <s2>)
  (state <s2> ^copy-from <s>)
  (state <s> ^design <d>)
  -->
  (make state <s2> ^design <d>))

(sp cy*goal-test
  (goal <g> ^problem-space cypress ^state <s>)
  (state <s> ^step design-done)
  -->
  (write design complete)
  (halt))
|}

let generated_rules =
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let count = ref 0 in
  let rule fmt =
    incr count;
    Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt
  in
  ignore pr;
  let ctx = "(goal <g> ^problem-space cypress ^state <s>)" in
  (* one evaluation rule per (step, alternative): a full spec-chain walk
     ending in a quality lookup — ~26 CEs apiece *)
  List.iter
    (fun (step, alts) ->
      List.iter
        (fun alt ->
          rule
            {|
(sp cy*evaluate-%s-%s
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (operator <o> ^name choose ^step %s ^alt %s)
%s  (quality <q> ^step %s ^alt %s ^value <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))
|}
            step alt step alt
            (chain_ces ~links:(chain_length - 1) ~step ~alt ~prefix:"")
            step alt)
        alts)
    steps;
  (* monitor: a fixed design choice, revalidated against its spec chain *)
  List.iter
    (fun (step, alts) ->
      List.iter
        (fun alt ->
          rule
            {|
(sp cy*monitor-chosen-%s-%s
  %s
  (state <s> ^design <d>)
  (design <d> ^step %s ^choice %s)
%s  -->
  (make state <s> ^validated-%s %s))
|}
            step alt ctx step alt
            (chain_ces ~links:4 ~step ~alt ~prefix:"m")
            step alt)
        alts)
    steps;
  (* monitor: compatibility of consecutive design choices *)
  let rec consecutive = function
    | (s1, a1) :: ((s2, a2) :: _ as rest) ->
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              rule
                {|
(sp cy*monitor-pair-%s-%s-%s-%s
  %s
  (state <s> ^design <d1>)
  (design <d1> ^step %s ^choice %s)
  (state <s> ^design <d2>)
  (design <d2> ^step %s ^choice %s)
%s  -->
  (make state <s> ^compatible-%s-%s %s-%s))
|}
                s1 x s2 y ctx s1 x s2 y
                (chain_ces ~links:3 ~step:s1 ~alt:x ~prefix:"p")
                s1 s2 x y)
            a2)
        a1;
      consecutive rest
    | _ -> ()
  in
  consecutive steps;
  (* deliberation: full spec-chain walks performed inside the tie
     subgoal — the work chunking later makes unnecessary (the paper's
     Cypress spent most of its match in subgoals, which is why its
     after-chunking run is very short) *)
  List.iter
    (fun (step, alts) ->
      List.iter
        (fun alt ->
          rule
            {|
(sp cy*deliberate-chain-%s-%s
  (goal <g2> ^impasse tie ^object <g1>)
%s  -->
  (make goal <g2> ^considered-%s %s))
|}
            step alt
            (chain_ces ~links:(chain_length - 1) ~step ~alt ~prefix:"c")
            step alt)
        alts)
    steps;
  (* note available quality while a step is pending *)
  List.iter
    (fun (step, alts) ->
      List.iter
        (fun alt ->
          rule
            {|
(sp cy*note-quality-%s-%s
  %s
  (state <s> ^step %s)
  (quality <q> ^step %s ^alt %s ^value <v>)
  -->
  (make state <s> ^considering-%s <v>))
|}
            step alt ctx step step alt alt)
        alts)
    steps;
  (* filler monitors up to the paper's 196 productions: spec prefix
     checks, each with distinct constants *)
  let base_rules = 6 + 4 in
  (* core + defaults, counted by the caller *)
  let target = 196 - base_rules in
  let all_pairs =
    List.concat_map (fun (s, alts) -> List.map (fun a -> (s, a)) alts) steps
  in
  let i = ref 0 in
  while !count < target do
    let s, a = List.nth all_pairs (!i mod List.length all_pairs) in
    incr i;
    rule
      {|
(sp cy*deliberate-prefix-%d-%s-%s
  (goal <g2> ^impasse tie ^object <g1>)
%s  -->
  (make goal <g2> ^weighed-%d yes))
|}
      !i s a
      (chain_ces ~links:(4 + (!i mod 3)) ~step:s ~alt:a ~prefix:"x")
      !i
  done;
  Buffer.contents buf

let make_agent ?(config = Agent.default_config) ?(extra = []) () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    Parser.productions schema source
    @ Parser.productions schema generated_rules
    @ Defaults.productions schema
  in
  let agent = Agent.create ~config schema (prods @ extra) in
  let v = Value.sym and i = Value.int in
  let triple cls id attr value = Agent.add_triple agent ~cls ~id ~attr ~value in
  (* alternatives, succession, quality, spec chains *)
  List.iter
    (fun (step, alts) ->
      let ns = Agent.new_id agent "ns" in
      triple "succession" ns "after" (v step);
      triple "succession" ns "is" (v (next_step step));
      List.iteri
        (fun k alt ->
          let a = Agent.new_id agent "alt" in
          triple "alt" a "step" (v step);
          triple "alt" a "name" (v alt);
          let q = Agent.new_id agent "q" in
          triple "quality" q "step" (v step);
          triple "quality" q "alt" (v alt);
          triple "quality" q "value" (i (match k with 0 -> 10 | 1 -> 5 | _ -> 3));
          (* the spec chain for this design alternative *)
          for t = 0 to chain_length - 1 do
            let f = Agent.new_id agent "spec" in
            triple "spec" f "token" (v (tok step alt t));
            triple "spec" f "tier" (i t);
            if t < chain_length - 1 then
              triple "spec" f "next" (v (tok step alt (t + 1)))
          done)
        alts)
    steps;
  let s0 = Agent.new_id agent "s" in
  triple "state" s0 "step" (v (fst (List.hd steps)));
  let f = Agent.new_id agent "f" in
  triple "first-state" f "id" (Value.Sym s0);
  agent

let derivation agent =
  let wm = Agent.wm agent in
  match Agent.slot agent ~goal:(Agent.top_goal agent) ~role:"state" with
  | None | Some (Value.Int _ | Value.Float _ | Value.Str _) -> []
  | Some (Value.Sym s) ->
    let designs = ref [] in
    Wm.iter
      (fun w ->
        if
          Sym.name w.Wme.cls = "state"
          && Value.equal w.Wme.fields.(0) (Value.Sym s)
          && Value.equal w.Wme.fields.(1) (Value.sym "design")
        then designs := w.Wme.fields.(2) :: !designs)
      wm;
    let attr_of d name =
      let out = ref None in
      Wm.iter
        (fun w ->
          if
            Sym.name w.Wme.cls = "design"
            && Value.equal w.Wme.fields.(0) d
            && Value.equal w.Wme.fields.(1) (Value.sym name)
          then out := Some w.Wme.fields.(2))
        wm;
      !out
    in
    List.filter_map
      (fun d ->
        match attr_of d "step", attr_of d "choice" with
        | Some (Value.Sym st), Some (Value.Sym c) -> Some (Sym.name st, Sym.name c)
        | _ -> None)
      !designs
    |> List.sort compare

let workload =
  {
    Workload.name = "cypress";
    paper_productions = 196;
    paper_uniproc_s = 172.7;
    paper_uniproc_after_s = 9.5;
    make = (fun ?config ?extra () -> make_agent ?config ?extra ());
    chunks_expected = 26;
  }
