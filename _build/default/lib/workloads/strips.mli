(** Strips-Soar: planning in the robot-control domain of Fikes, Hart &
    Nilsson's STRIPS (the paper's 105-production task).

    A robot moves through a grid of rooms connected by doors (some
    initially closed), and must push a goal box to a target room.
    Operators: [go-thru], [push-thru], [open-door]. Selection works as
    in Eight-Puzzle: ties among proposed operators are evaluated in a
    subgoal against a precomputed room-distance table. The module also
    contains the paper's Figure 6-7 {e long-chain} production
    ([monitor-strips-state], 40+ condition elements), which is what the
    constrained-bilinear ablation (Figure 6-8) restructures. *)

open Psme_soar

type layout = {
  rows : int;
  cols : int;
  closed_doors : (int * int) list;  (** room-index pairs whose door starts closed *)
  robot_room : int;
  boxes : (string * int) list;      (** box name, start room *)
  goal_box : string;
  goal_room : int;
}

val default_layout : layout
(** 2x3 rooms; the goal box must cross a closed door. *)

val source : layout -> string
val generated_rules : layout -> string
val monitor_production : layout -> string
(** The Figure 6-7 long-chain production (>= 40 CEs). *)

val make_agent :
  ?config:Agent.config ->
  ?extra:Psme_ops5.Production.t list ->
  ?layout:layout ->
  unit ->
  Agent.t
val workload : Workload.t
val solved : Agent.t -> bool
