(** Eight-Puzzle-Soar (the paper's 71-production task).

    The puzzle is solved by greedy operator selection: all legal moves
    are proposed as operators; the resulting tie impasse is resolved in
    a selection subgoal by evaluating each move's effect on the moved
    tile's distance to its target cell; chunks learned from those
    evaluations prefer good moves directly in later situations. A
    monitor/elaboration rule family (one rule per tile/cell, as real
    Soar systems carried) brings the production count to the paper's
    71. *)

open Psme_soar

type instance = { board : int array }
(** Row-major 3x3, [0] is the blank. *)

val goal_board : instance
val scrambled : seed:int -> moves:int -> instance
(** Apply [moves] legal random moves to the goal configuration (always
    solvable; never undoes the immediately preceding move). *)

val source : string
(** Hand-written core rules. *)

val generated_rules : string
(** The monitor/elaboration family. *)

val make_agent :
  ?config:Agent.config ->
  ?extra:Psme_ops5.Production.t list ->
  ?instance:instance ->
  unit ->
  Agent.t
val workload : Workload.t
(** Default instance: [scrambled ~seed:14 ~moves:10]. *)

val solved : Agent.t -> bool
(** The last run reached the goal configuration (a [(halt)] fired and
    "solved" was written). *)
