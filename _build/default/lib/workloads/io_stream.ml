open Psme_support
open Psme_ops5
open Psme_soar

type params = {
  channels : int;
  rate : int;
  ticks : int;
  seed : int;
}

let default_params = { channels = 6; rate = 4; ticks = 25; seed = 7 }

let channel_name k = Printf.sprintf "ch-%d" (k + 1)

let source p =
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  for k = 0 to p.channels - 1 do
    let ch = channel_name k in
    (* thresholds differ per channel so the rules stay distinct *)
    let hi = 60 + (5 * (k mod 5)) in
    let lo = 15 + (3 * (k mod 4)) in
    pr
      {|
(sp io*classify-high-%s
  (reading <r> ^channel %s ^value > %d ^tick <n>)
  -->
  (make alert (genatom a) ^channel %s ^kind high ^tick <n>))
|}
      ch ch hi ch;
    pr
      {|
(sp io*classify-low-%s
  (reading <r> ^channel %s ^value < %d ^tick <n>)
  -->
  (make alert (genatom a) ^channel %s ^kind low ^tick <n>))
|}
      ch ch lo ch;
    pr
      {|
(sp io*spike-%s
  (reading <r> ^channel %s ^value > 93 ^tick <n>)
  -->
  (make alert (genatom a) ^channel %s ^kind spike ^tick <n>))
|}
      ch ch ch
  done;
  (* cross-channel correlation within one tick *)
  for k = 0 to p.channels - 2 do
    pr
      {|
(sp io*correlate-%s-%s
  (reading <r1> ^channel %s ^value > 75 ^tick <n>)
  (reading <r2> ^channel %s ^value > 75 ^tick <n>)
  -->
  (make alert (genatom a) ^kind correlated ^tick <n>))
|}
      (channel_name k)
      (channel_name (k + 1))
      (channel_name k)
      (channel_name (k + 1))
  done;
  (* a per-tick summary over all alerts *)
  pr
    {|
(sp io*tick-summary
  (alert <a> ^kind spike ^tick <n>)
  (alert <b> ^kind correlated ^tick <n>)
  -->
  (make alert (genatom s) ^kind storm ^tick <n>))
|};
  Buffer.contents buf

let make_agent ?config ?(params = default_params) () =
  let config =
    match config with
    | Some c -> { c with Agent.learning = false; max_decisions = params.ticks }
    | None ->
      { Agent.default_config with Agent.learning = false; max_decisions = params.ticks }
  in
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods = Parser.productions schema (source params) in
  let agent = Agent.create ~config schema prods in
  let rng = Rng.create params.seed in
  Agent.set_input agent (fun tick ->
      List.concat
        (List.init params.channels (fun k ->
             List.init params.rate (fun _ ->
                 let id = Sym.fresh "rd" in
                 let v = Rng.int rng 100 in
                 [
                   ("reading", id, "channel", Value.sym (channel_name k));
                   ("reading", id, "value", Value.Int v);
                   ("reading", id, "tick", Value.Int tick);
                 ])
             |> List.concat)));
  agent

let alerts agent =
  let ids = Hashtbl.create 256 in
  Wm.iter
    (fun w ->
      if Sym.name w.Wme.cls = "alert" then Hashtbl.replace ids w.Wme.fields.(0) ())
    (Agent.wm agent);
  Hashtbl.length ids
