lib/workloads/io_stream.ml: Agent Array Buffer Hashtbl List Parser Printf Psme_ops5 Psme_soar Psme_support Rng Schema Sym Value Wm Wme
