lib/workloads/eight_puzzle.ml: Agent Array Buffer Defaults Fun List Parser Printf Psme_ops5 Psme_soar Psme_support Rng Schema String Sym Value Wme Workload
