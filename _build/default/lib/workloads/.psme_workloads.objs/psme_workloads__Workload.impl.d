lib/workloads/workload.ml: Agent List Network Psme_ops5 Psme_rete Psme_soar
