lib/workloads/workload.mli: Agent Psme_ops5 Psme_soar
