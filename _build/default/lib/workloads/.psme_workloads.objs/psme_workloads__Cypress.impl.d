lib/workloads/cypress.ml: Agent Array Buffer Defaults List Parser Printf Psme_ops5 Psme_soar Psme_support Schema Sym Value Wm Wme Workload
