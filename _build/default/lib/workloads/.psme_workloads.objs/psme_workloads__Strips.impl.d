lib/workloads/strips.ml: Agent Array Buffer Defaults Fun List Parser Printf Psme_ops5 Psme_soar Psme_support Queue Schema Sym Value Wm Wme Workload
