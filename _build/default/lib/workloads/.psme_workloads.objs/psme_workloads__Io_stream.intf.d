lib/workloads/io_stream.mli: Agent Psme_soar
