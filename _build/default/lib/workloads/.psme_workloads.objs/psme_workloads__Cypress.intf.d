lib/workloads/cypress.mli: Agent Psme_ops5 Psme_soar Workload
