lib/workloads/eight_puzzle.mli: Agent Psme_ops5 Psme_soar Workload
