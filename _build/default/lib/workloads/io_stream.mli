(** The §7 I/O workload: external sensor input streaming into working
    memory.

    The paper expected the planned input/output module — with
    applications "in fields such as Robotics" — to raise the rate of
    working-memory change and hence the available parallelism. This
    task realizes that: every decision cycle, [rate] fresh readings per
    sensor channel arrive through {!Psme_soar.Agent.set_input};
    classification and cross-channel correlation productions elaborate
    them. Raising [rate] makes the elaboration cycles larger, which is
    precisely the regime in which the paper's speedups improve. *)

open Psme_soar

type params = {
  channels : int;
  rate : int;   (** readings per channel per decision cycle *)
  ticks : int;  (** decision cycles to run *)
  seed : int;
}

val default_params : params

val source : params -> string
(** Per-channel classification and correlation productions. *)

val make_agent : ?config:Agent.config -> ?params:params -> unit -> Agent.t
(** Learning off; the input function is attached; the run ends after
    [ticks] decision cycles. *)

val alerts : Agent.t -> int
(** Alert wmes raised over the run. *)
