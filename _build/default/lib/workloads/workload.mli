(** Common shape of the three measured Soar tasks.

    Each workload builds an agent loaded with its production set (task
    rules, the selection defaults, and the task's monitor/elaboration
    rule families — real Soar systems carried such families, which is
    how the paper's production counts arise) and its initial working
    memory. The paper's reference numbers (production counts, uniprocessor
    seconds) are carried along for the harness's tables. *)

open Psme_soar

type t = {
  name : string;
  paper_productions : int;   (** production count reported in the paper *)
  paper_uniproc_s : float;   (** Figure 6-1 uniprocessor match seconds *)
  paper_uniproc_after_s : float;  (** Figure 6-10 *)
  make : ?config:Agent.config -> ?extra:Psme_ops5.Production.t list -> unit -> Agent.t;
      (** fresh agent, productions loaded (plus [extra], e.g. chunks from
          an earlier learning run for after-chunking measurements),
          initial wmes buffered *)
  chunks_expected : int;  (** Table 5-2's "number of chunks added" *)
}

val production_count : t -> int
(** Actual number of productions loaded (counted on a fresh agent). *)
