(** Default productions: the selection knowledge every task loads.

    Real Soar systems carry a default production set; ours covers tie
    impasses resolved by evaluation: task productions compute
    [(evaluation e ^object item ^value n)] wmes inside the subgoal, and
    these rules convert evaluations into better / indifferent
    preferences for the supergoal slot — which both resolves the tie and
    is the creation of results that chunking summarizes. *)

open Psme_ops5

val source : string
(** Pairwise comparison style: one better-preference per unequally
    evaluated pair. Chunks learned through it encode exact comparisons. *)

val source_best : string
(** Best style: a best-preference per maximal item, via a conjunctive
    negation. Fewer, more general chunks (the negation is not traced
    into them). *)

val productions : Schema.t -> Production.t list
(** Parse {!source} against the schema (declares the triple classes it
    uses). *)

val productions_best : Schema.t -> Production.t list
