(** Chunk construction: dependency backtracing and variablization.

    When problem solving in a subgoal creates a {e result} — a wme
    attached to a supergoal — chunking walks backward through the
    instantiation records that produced it, collecting the supergoal
    wmes that the derivation ultimately rested on. Those become the new
    production's conditions; the result, variablized consistently,
    becomes its action (§3 of the paper; Laird, Rosenbloom & Newell
    1986 for the mechanism). *)

open Psme_support
open Psme_ops5

type creator = {
  c_conds : Wme.t list;  (** the wmes the creating instantiation matched *)
  c_level : int;         (** goal depth the instantiation matched at *)
}

val backtrace :
  creator_of:(Wme.t -> creator option) ->
  level_of:(Wme.t -> int) ->
  target_level:int ->
  seeds:Wme.t list ->
  Wme.t list
(** Transitively replace every seed wme deeper than [target_level] by
    the conditions of its creator; wmes at or above the target level are
    the {e grounds} and are returned, deduplicated, in timetag order.
    Wmes with no recorded creator (architecture-generated) contribute
    nothing. *)

val build :
  Schema.t ->
  is_id:(Value.t -> bool) ->
  name:Sym.t ->
  grounds:Wme.t list ->
  results:(Sym.t * Value.t array) list ->
  Production.t option
(** Variablize identifiers consistently across grounds and results and
    assemble the chunk. Result identifiers that no condition binds
    become [(genatom)] terms. Returns [None] when no grounds survived
    backtracing (a chunk with an empty LHS would fire unconditionally). *)

val canonical_form : Schema.t -> Production.t -> string
(** A renaming-invariant rendering used to suppress duplicate chunks. *)
