lib/soar/chunker.ml: Action Array Buffer Cond Hashtbl List Printf Production Psme_ops5 Psme_support String Sym Value Wme
