lib/soar/defaults.ml: Parser Prefs Psme_ops5 Psme_support Schema
