lib/soar/chunker.mli: Production Psme_ops5 Psme_support Schema Sym Value Wme
