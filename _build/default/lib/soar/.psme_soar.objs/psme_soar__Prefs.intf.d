lib/soar/prefs.mli: Psme_ops5 Psme_support Schema Sym Value
