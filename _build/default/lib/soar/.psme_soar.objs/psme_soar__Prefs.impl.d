lib/soar/prefs.ml: Array List Psme_ops5 Psme_support Schema Sym Value Wme
