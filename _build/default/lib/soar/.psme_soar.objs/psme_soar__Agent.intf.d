lib/soar/agent.mli: Cost Cycle Engine Network Production Psme_engine Psme_ops5 Psme_rete Psme_support Schema Sym Value Wm
