lib/soar/defaults.mli: Production Psme_ops5 Schema
