open Psme_support
open Psme_ops5

type creator = {
  c_conds : Wme.t list;
  c_level : int;
}

let backtrace ~creator_of ~level_of ~target_level ~seeds =
  let visited = Hashtbl.create 64 in
  let grounds = ref [] in
  let rec visit w =
    if not (Hashtbl.mem visited w.Wme.timetag) then begin
      Hashtbl.replace visited w.Wme.timetag ();
      if level_of w <= target_level then grounds := w :: !grounds
      else
        match creator_of w with
        | Some c -> List.iter visit c.c_conds
        | None -> ()  (* architecture wme with no recorded provenance *)
    end
  in
  List.iter visit seeds;
  List.sort Wme.compare !grounds

let build schema ~is_id ~name ~grounds ~results =
  if grounds = [] then None
  else begin
    let var_of = Hashtbl.create 16 in
    let next_var = ref 0 in
    let variablize v =
      if is_id v then begin
        match Hashtbl.find_opt var_of v with
        | Some name -> Cond.T_var name
        | None ->
          incr next_var;
          let name = Printf.sprintf "v%d" !next_var in
          Hashtbl.replace var_of v name;
          Cond.T_var name
      end
      else Cond.T_const v
    in
    let lhs =
      List.map
        (fun w ->
          let tests = ref [] in
          Array.iteri
            (fun i v -> if not (Value.is_nil v) then tests := (i, variablize v) :: !tests)
            w.Wme.fields;
          Cond.Pos (Cond.ce w.Wme.cls (List.rev !tests)))
        grounds
    in
    (* Identifiers bound by the conditions; result ids outside this set
       are minted fresh at fire time. *)
    let rhs =
      List.map
        (fun (cls, fields) ->
          let assigns = ref [] in
          Array.iteri
            (fun i v ->
              if not (Value.is_nil v) then
                let term =
                  if is_id v then
                    match Hashtbl.find_opt var_of v with
                    | Some name -> Action.Tvar name
                    | None -> Action.Tgensym "c"
                  else Action.Tconst v
                in
                assigns := (i, term) :: !assigns)
            fields;
          Action.Make (cls, List.rev !assigns))
        results
    in
    ignore schema;
    match Production.make ~is_chunk:true ~name ~lhs ~rhs () with
    | p -> Some p
    | exception Invalid_argument _ -> None
  end

let canonical_form schema p =
  (* Render with variables renamed in order of first occurrence so that
     two chunks differing only in variable names (or in construction
     order of identical CEs) compare equal. *)
  let rename = Hashtbl.create 16 in
  let next = ref 0 in
  let var v =
    match Hashtbl.find_opt rename v with
    | Some n -> n
    | None ->
      incr next;
      let n = Printf.sprintf "x%d" !next in
      Hashtbl.replace rename v n;
      n
  in
  let buf = Buffer.create 256 in
  let rec test_str = function
    | Cond.T_const v -> Value.to_string v
    | Cond.T_var v -> "<" ^ var v ^ ">"
    | Cond.T_rel (r, Cond.Oconst c) ->
      Printf.sprintf "(%s %s)" (rel_str r) (Value.to_string c)
    | Cond.T_rel (r, Cond.Ovar v) -> Printf.sprintf "(%s <%s>)" (rel_str r) (var v)
    | Cond.T_disj vs -> "<<" ^ String.concat " " (List.map Value.to_string vs) ^ ">>"
    | Cond.T_conj ts -> "{" ^ String.concat " " (List.map test_str ts) ^ "}"
  and rel_str = function
    | Cond.Eq -> "="
    | Cond.Ne -> "<>"
    | Cond.Lt -> "<"
    | Cond.Le -> "<="
    | Cond.Gt -> ">"
    | Cond.Ge -> ">="
  in
  let ce_str ce =
    Printf.sprintf "(%s %s)" (Sym.name ce.Cond.cls)
      (String.concat " "
         (List.map (fun (f, t) -> Printf.sprintf "^%d %s" f (test_str t)) ce.Cond.tests))
  in
  let rec cond_str = function
    | Cond.Pos ce -> ce_str ce
    | Cond.Neg ce -> "-" ^ ce_str ce
    | Cond.Ncc g -> "-{" ^ String.concat " " (List.map cond_str g) ^ "}"
  in
  List.iter (fun c -> Buffer.add_string buf (cond_str c)) p.Production.lhs;
  Buffer.add_string buf "-->";
  List.iter
    (fun a ->
      match a with
      | Action.Make (cls, fields) ->
        Buffer.add_string buf
          (Printf.sprintf "(make %s %s)" (Sym.name cls)
             (String.concat " "
                (List.map
                   (fun (f, t) ->
                     Printf.sprintf "^%d %s" f
                       (match t with
                       | Action.Tconst v -> Value.to_string v
                       | Action.Tvar v -> "<" ^ var v ^ ">"
                       | Action.Tgensym p -> "(genatom " ^ p ^ ")"))
                   fields)))
      | Action.Remove i -> Buffer.add_string buf (Printf.sprintf "(remove %d)" i)
      | Action.Modify (i, _) -> Buffer.add_string buf (Printf.sprintf "(modify %d)" i)
      | Action.Write _ -> Buffer.add_string buf "(write)"
      | Action.Halt -> Buffer.add_string buf "(halt)")
    p.Production.rhs;
  ignore schema;
  Buffer.contents buf
