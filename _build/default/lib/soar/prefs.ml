open Psme_support
open Psme_ops5

type ptype =
  | Acceptable
  | Reject
  | Better
  | Worse
  | Best
  | Worst
  | Indifferent

let ptype_table =
  [
    ("acceptable", Acceptable);
    ("reject", Reject);
    ("better", Better);
    ("worse", Worse);
    ("best", Best);
    ("worst", Worst);
    ("indifferent", Indifferent);
  ]

let ptype_of_sym s =
  List.assoc_opt (Sym.name s) ptype_table

let sym_of_ptype p =
  let name, _ = List.find (fun (_, q) -> q = p) ptype_table in
  Sym.intern name

type vote = {
  value : Value.t;
  ptype : ptype;
  referent : Value.t option;
}

type verdict =
  | Winner of Value.t
  | No_candidates
  | Tie of Value.t list

let decide votes =
  let values_with p =
    List.filter_map (fun v -> if v.ptype = p then Some v.value else None) votes
  in
  let acceptable = List.sort_uniq Value.compare (values_with Acceptable) in
  let rejected = values_with Reject in
  let cands =
    List.filter (fun v -> not (List.exists (Value.equal v) rejected)) acceptable
  in
  (* better/worse: v dominated when some candidate w is better than v and
     v is not better than w (preference cycles leave both standing). *)
  let better_pairs =
    List.filter_map
      (fun v ->
        match v.ptype, v.referent with
        | Better, Some r -> Some (v.value, r)
        | Worse, Some r -> Some (r, v.value)
        | _ -> None)
      votes
  in
  let is_better a b =
    List.exists (fun (x, y) -> Value.equal x a && Value.equal y b) better_pairs
  in
  let cands =
    List.filter
      (fun v ->
        not
          (List.exists
             (fun w ->
               (not (Value.equal v w)) && is_better w v && not (is_better v w))
             cands))
      cands
  in
  let best = List.filter (fun v -> List.exists (Value.equal v) (values_with Best)) cands in
  let cands = if best <> [] then List.sort_uniq Value.compare best else cands in
  let worsts = values_with Worst in
  let non_worst =
    List.filter (fun v -> not (List.exists (Value.equal v) worsts)) cands
  in
  let cands = if non_worst <> [] then non_worst else cands in
  match cands with
  | [] -> No_candidates
  | [ v ] -> Winner v
  | many ->
    let unary_indiff =
      List.filter_map
        (fun v -> if v.ptype = Indifferent && v.referent = None then Some v.value else None)
        votes
    in
    let binary_indiff a b =
      List.exists
        (fun v ->
          v.ptype = Indifferent
          &&
          match v.referent with
          | Some r ->
            (Value.equal v.value a && Value.equal r b)
            || (Value.equal v.value b && Value.equal r a)
          | None -> false)
        votes
    in
    let indifferent a b =
      Value.equal a b
      || List.exists (Value.equal a) unary_indiff
      || List.exists (Value.equal b) unary_indiff
      || binary_indiff a b
    in
    let all_indifferent =
      List.for_all (fun a -> List.for_all (fun b -> indifferent a b) many) many
    in
    if all_indifferent then Winner (List.hd many) else Tie many

(* --- wme encoding ---------------------------------------------------- *)

let class_name = "preference"
let fields = [ "goal"; "role"; "value"; "type"; "referent" ]

let declare schema = Schema.declare schema class_name fields

let encode schema ~goal ~role vote =
  let cls = Sym.intern class_name in
  let arr = Array.make (Schema.arity schema cls) Value.nil in
  let set name v = arr.(Schema.field_index schema cls (Sym.intern name)) <- v in
  set "goal" (Value.Sym goal);
  set "role" (Value.Sym role);
  set "value" vote.value;
  set "type" (Value.Sym (sym_of_ptype vote.ptype));
  (match vote.referent with Some r -> set "referent" r | None -> ());
  arr

let decode w =
  if Sym.name w.Wme.cls <> class_name then None
  else
    (* field order is [fields]: goal role value type referent *)
    match w.Wme.fields with
    | [| Value.Sym goal; Value.Sym role; value; Value.Sym ty; referent |] -> (
      match ptype_of_sym ty with
      | Some ptype ->
        Some
          ( goal,
            role,
            {
              value;
              ptype;
              referent = (if Value.is_nil referent then None else Some referent);
            } )
      | None -> None)
    | _ -> None
