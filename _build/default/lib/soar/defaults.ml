open Psme_ops5

(* Two selection styles are provided. The pairwise style creates one
   better-preference per ordered pair of unequally evaluated items: the
   chunks it produces encode exact comparisons ("a gain-2 move beats a
   gain-0 move") and never over-generalize. The best style creates a
   best-preference for each maximal item through a conjunctive negation:
   far fewer chunks, but — since negated conditions are not backtraced
   into chunks (see DESIGN.md) — the learned rules over-generalize when
   evaluations are coarse. Tasks pick whichever matches their heuristic
   structure; both resolve ties identically before learning. *)

let pairwise_rule =
  {|
; An item whose evaluation strictly exceeds another's is better.
(sp default*compare-better
  (goal <g2> ^impasse tie ^object <g1> ^role <r> ^item <o1>)
  (goal <g2> ^item { <o2> <> <o1> })
  (evaluation <e1> ^object <o1> ^value <v1>)
  (evaluation <e2> ^object <o2> ^value < <v1>)
  -->
  (make preference ^goal <g1> ^role <r> ^value <o1> ^type better ^referent <o2>))
|}

let best_rule =
  {|
; An item no other item's evaluation strictly exceeds is best.
(sp default*prefer-best-evaluated
  (goal <g2> ^impasse tie ^object <g1> ^role <r> ^item <o1>)
  (evaluation <e1> ^object <o1> ^value <v1>)
  -{(goal <g2> ^item { <o2> <> <o1> })
    (evaluation <e2> ^object <o2> ^value > <v1>)}
  -->
  (make preference ^goal <g1> ^role <r> ^value <o1> ^type best))
|}

let common =
  {|

; Items with equal evaluations are mutually indifferent.
(sp default*compare-indifferent
  (goal <g2> ^impasse tie ^object <g1> ^role <r> ^item <o1>)
  (goal <g2> ^item { <o2> <> <o1> })
  (evaluation <e1> ^object <o1> ^value <v1>)
  (evaluation <e2> ^object <o2> ^value <v1>)
  -->
  (make preference ^goal <g1> ^role <r> ^value <o1> ^type indifferent ^referent <o2>))

; An item evaluated as failure is rejected outright.
(sp default*reject-failure
  (goal <g2> ^impasse tie ^object <g1> ^role <r> ^item <o1>)
  (evaluation <e1> ^object <o1> ^symbolic-value failure)
  -->
  (make preference ^goal <g1> ^role <r> ^value <o1> ^type reject))

; An item evaluated as success is best.
(sp default*prefer-success
  (goal <g2> ^impasse tie ^object <g1> ^role <r> ^item <o1>)
  (evaluation <e1> ^object <o1> ^symbolic-value success)
  -->
  (make preference ^goal <g1> ^role <r> ^value <o1> ^type best))
|}

let source = pairwise_rule ^ common
let source_best = best_rule ^ common

let prepare schema =
  Prefs.declare schema;
  if not (Schema.declared schema (Psme_support.Sym.intern "goal")) then
    Schema.declare schema "goal" Parser.triple_fields

let productions schema =
  prepare schema;
  Parser.productions schema source

let productions_best schema =
  prepare schema;
  Parser.productions schema source_best
