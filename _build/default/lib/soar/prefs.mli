(** Preference semantics for context-slot decisions.

    Productions vote for slot values by creating wmes of the literalized
    [preference] class; the decision procedure reduces the votes for one
    (goal, role) slot to a verdict. The subset implemented — acceptable,
    reject, better/worse, best, worst, indifferent — is the part of
    Soar's preference language the paper's tasks rely on. *)

open Psme_support
open Psme_ops5

type ptype =
  | Acceptable
  | Reject
  | Better   (** value is better than referent *)
  | Worse    (** value is worse than referent *)
  | Best
  | Worst
  | Indifferent  (** binary with referent, or unary (indifferent to all) *)

val ptype_of_sym : Sym.t -> ptype option
val sym_of_ptype : ptype -> Sym.t

type vote = {
  value : Value.t;
  ptype : ptype;
  referent : Value.t option;
}

type verdict =
  | Winner of Value.t
  | No_candidates
  | Tie of Value.t list  (** surviving candidates, deterministic order *)

val decide : vote list -> verdict
(** Reduce one slot's votes:
    candidates = acceptable − rejected; better/worse prune dominated
    candidates (cycles leave both); best restricts to best-marked
    candidates when any survive; worst-marked candidates are dropped
    when a non-worst candidate survives; a multi-candidate remainder is
    a {!Winner} (the least value) only if every pair is covered by an
    indifferent vote, otherwise a {!Tie}. *)

(** {2 The wme encoding} *)

val class_name : string
val fields : string list
(** [["goal"; "role"; "value"; "type"; "referent"]] *)

val declare : Schema.t -> unit

val encode :
  Schema.t -> goal:Sym.t -> role:Sym.t -> vote -> Value.t array
(** Field array for a preference wme. *)

val decode : Psme_ops5.Wme.t -> (Sym.t * Sym.t * vote) option
(** [(goal, role, vote)] if the wme is a well-formed preference. *)
