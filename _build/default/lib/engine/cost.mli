(** The simulated-multiprocessor cost model.

    Times are microseconds on the paper's reference processor (an
    NS32032 at ~0.75 MIPS; Table 6-1 reports tasks averaging ~400 µs,
    ranging 200–800 µs). A task's cost is a base amount for its node
    kind plus per-entry-scanned and per-child-generated increments, so
    cost scales with the real work the activation performed. Queue
    parameters drive the contention behaviour of Figures 6-1/6-3/6-4. *)

type params = {
  two_input_base_us : float;  (** join/negative/NCC/binary activation body *)
  entry_base_us : float;      (** first-CE wme-to-token conversion *)
  pnode_base_us : float;      (** conflict-set insertion/removal *)
  per_scan_us : float;        (** per opposite-memory entry scanned *)
  per_child_us : float;       (** per successor task generated *)
  alpha_act_us : float;       (** per constant-test node activation *)
  queue_op_us : float;        (** exclusive queue access (push/pop/steal) *)
  poll_us : float;            (** idle re-poll interval (failed pops) *)
  spin_unit_us : float;       (** one spin on a contended lock *)
  cycle_overhead_us : float;  (** fixed per-cycle cost (synchronization,
                                  informing the control process) *)
  fire_us : float;  (** control-process cost of firing one instantiation
                        during asynchronous elaboration (§7) *)
}

val default : params

val task_cost : params -> Psme_rete.Network.kind -> Psme_rete.Runtime.outcome -> float
(** Cost in µs of one executed activation. *)
