open Psme_rete

type mode =
  | Serial_mode
  | Parallel_mode of Parallel.config
  | Sim_mode of Sim.config

type t = {
  net : Network.t;
  mode : mode;
  cost : Cost.params;
  mutable history_rev : Cycle.stats list;
}

let create ?(cost = Cost.default) mode net = { net; mode; cost; history_rev = [] }
let network t = t.net
let mode t = t.mode

let record t stats =
  t.history_rev <- stats :: t.history_rev;
  stats

let run_changes t changes =
  Memory.reset_cycle_stats t.net.Network.mem;
  let stats =
    match t.mode with
    | Serial_mode -> Serial.run_changes ~cost:t.cost t.net changes
    | Parallel_mode cfg -> Parallel.run_changes ~cost:t.cost cfg t.net changes
    | Sim_mode cfg -> Sim.run_changes ~cost:t.cost cfg t.net changes
  in
  record t stats

let run_tasks t tasks =
  Memory.reset_cycle_stats t.net.Network.mem;
  let stats =
    match t.mode with
    | Serial_mode -> Serial.run_tasks ~cost:t.cost t.net tasks
    | Parallel_mode cfg -> Parallel.run_tasks ~cost:t.cost cfg t.net tasks
    | Sim_mode cfg -> Sim.run_tasks ~cost:t.cost cfg t.net tasks
  in
  record t stats

let run_changes_async t ~on_inst changes =
  Memory.reset_cycle_stats t.net.Network.mem;
  let stats =
    match t.mode with
    | Serial_mode -> Serial.run_changes_async ~cost:t.cost t.net ~on_inst changes
    | Sim_mode cfg -> Sim.run_changes_async ~cost:t.cost cfg t.net ~on_inst changes
    | Parallel_mode cfg ->
      (* fall back to barrier-synchronized waves so the callback never
         runs concurrently with itself *)
      let total = ref Cycle.empty in
      let pending = ref changes in
      let continue_ = ref true in
      while !continue_ do
        let batch = !pending in
        pending := [];
        let insts_before = Conflict_set.pending t.net.Network.cs in
        if batch = [] && insts_before = [] then continue_ := false
        else begin
          let s = Parallel.run_changes ~cost:t.cost cfg t.net batch in
          total := Cycle.add !total s;
          List.iter
            (fun inst ->
              Conflict_set.mark_fired t.net.Network.cs inst;
              pending := !pending @ on_inst inst)
            (Conflict_set.pending t.net.Network.cs)
        end
      done;
      !total
  in
  record t stats

let history t = List.rev t.history_rev
let reset_history t = t.history_rev <- []
let totals t = List.fold_left Cycle.add Cycle.empty (history t)
