open Psme_support
open Psme_rete

let run_tasks ?(cost = Cost.default) net seed =
  let t0 = Clock.now_ns () in
  let stack = Vec.create () in
  List.iter (Vec.push stack) seed;
  let tasks = ref 0 in
  let serial_us = ref 0. in
  let scanned = ref 0 in
  let emitted = ref 0 in
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some task ->
      let kind = (Network.node net (Task.node task)).Network.kind in
      let o = Runtime.exec net task in
      incr tasks;
      serial_us := !serial_us +. Cost.task_cost cost kind o;
      scanned := !scanned + o.Runtime.scanned;
      emitted := !emitted + List.length o.Runtime.children;
      List.iter (Vec.push stack) o.Runtime.children;
      drain ()
  in
  drain ();
  {
    Cycle.empty with
    tasks = !tasks;
    serial_us = !serial_us;
    makespan_us = !serial_us;
    scanned = !scanned;
    emitted = !emitted;
    wall_ns = Clock.now_ns () - t0;
  }

let run_changes_async ?(cost = Cost.default) net ~on_inst changes =
  let t0 = Clock.now_ns () in
  let alpha = ref 0 in
  let stack = Vec.create () in
  let seed flag w =
    let tasks, acts = Runtime.seed_wme_change net flag w in
    alpha := !alpha + acts;
    List.iter (Vec.push stack) tasks
  in
  List.iter (fun (flag, w) -> seed flag w) changes;
  let tasks = ref 0 in
  let serial_us = ref 0. in
  let scanned = ref 0 in
  let emitted = ref 0 in
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some task ->
      let kind = (Network.node net (Task.node task)).Network.kind in
      let o = Runtime.exec net task in
      incr tasks;
      serial_us := !serial_us +. Cost.task_cost cost kind o;
      scanned := !scanned + o.Runtime.scanned;
      emitted := !emitted + List.length o.Runtime.children;
      List.iter (Vec.push stack) o.Runtime.children;
      List.iter
        (fun (flag, inst) ->
          match flag with
          | Task.Add ->
            serial_us := !serial_us +. cost.Cost.fire_us;
            List.iter (fun (f, w) -> seed f w) (on_inst inst)
          | Task.Delete -> ())
        o.Runtime.insts;
      drain ()
  in
  drain ();
  let alpha_us = cost.Cost.alpha_act_us *. float_of_int !alpha in
  {
    Cycle.empty with
    tasks = !tasks;
    alpha_activations = !alpha;
    serial_us = !serial_us +. alpha_us;
    makespan_us = !serial_us +. alpha_us;
    scanned = !scanned;
    emitted = !emitted;
    wall_ns = Clock.now_ns () - t0;
  }

let run_changes ?(cost = Cost.default) net changes =
  let alpha = ref 0 in
  let seed =
    List.concat_map
      (fun (flag, w) ->
        let tasks, acts = Runtime.seed_wme_change net flag w in
        alpha := !alpha + acts;
        tasks)
      changes
  in
  let stats = run_tasks ~cost net seed in
  let alpha_us = cost.Cost.alpha_act_us *. float_of_int !alpha in
  {
    stats with
    Cycle.alpha_activations = !alpha;
    serial_us = stats.Cycle.serial_us +. alpha_us;
    makespan_us = stats.Cycle.makespan_us +. alpha_us;
  }
