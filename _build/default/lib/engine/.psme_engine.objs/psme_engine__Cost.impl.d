lib/engine/cost.ml: List Network Psme_rete Runtime
