lib/engine/sim.mli: Conflict_set Cost Cycle Network Parallel Psme_ops5 Psme_rete Task
