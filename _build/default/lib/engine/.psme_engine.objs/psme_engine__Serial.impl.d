lib/engine/serial.ml: Clock Cost Cycle List Network Psme_rete Psme_support Runtime Task Vec
