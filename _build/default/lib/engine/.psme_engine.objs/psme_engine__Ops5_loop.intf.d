lib/engine/ops5_loop.mli: Conflict_set Cost Engine Network Production Psme_ops5 Psme_rete Psme_support Schema Value Wm Wme
