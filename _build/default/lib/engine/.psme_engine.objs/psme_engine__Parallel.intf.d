lib/engine/parallel.mli: Cost Cycle Network Psme_ops5 Psme_rete Task
