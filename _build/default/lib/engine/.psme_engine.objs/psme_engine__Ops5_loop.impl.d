lib/engine/ops5_loop.ml: Action Array Build Cond Conflict_set Cost Engine Hashtbl List Network Printf Production Psme_ops5 Psme_rete Psme_support Schema String Sym Task Token Value Wm Wme
