lib/engine/cycle.ml: Format
