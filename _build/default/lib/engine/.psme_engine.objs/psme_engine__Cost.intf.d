lib/engine/cost.mli: Psme_rete
