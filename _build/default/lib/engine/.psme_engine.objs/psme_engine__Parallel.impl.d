lib/engine/parallel.ml: Array Atomic Clock Cost Cycle Domain List Mutex Network Psme_rete Psme_support Runtime Task Vec
