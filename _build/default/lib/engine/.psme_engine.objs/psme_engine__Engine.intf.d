lib/engine/engine.mli: Conflict_set Cost Cycle Network Parallel Psme_ops5 Psme_rete Sim Task
