lib/engine/cycle.mli: Format
