lib/engine/serial.mli: Conflict_set Cost Cycle Network Psme_ops5 Psme_rete Task
