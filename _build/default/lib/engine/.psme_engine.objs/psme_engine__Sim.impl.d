lib/engine/sim.ml: Array Clock Cost Cycle Event_queue Float List Network Parallel Psme_rete Psme_support Runtime Task Vec
