lib/engine/engine.ml: Conflict_set Cost Cycle List Memory Network Parallel Psme_rete Serial Sim
