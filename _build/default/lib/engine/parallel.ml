open Psme_support
open Psme_rete

type queue_mode =
  | Single_queue
  | Multiple_queues

type config = {
  processes : int;
  queues : queue_mode;
}

type queue = {
  lock : Mutex.t;
  items : Task.t Vec.t;
}

let make_queue () = { lock = Mutex.create (); items = Vec.create () }

let try_pop q =
  if Mutex.try_lock q.lock then begin
    let item = Vec.pop q.items in
    Mutex.unlock q.lock;
    item
  end
  else None

let push q task =
  Mutex.protect q.lock (fun () -> Vec.push q.items task)

let run_tasks ?(cost = Cost.default) config net seed =
  let t0 = Clock.now_ns () in
  let nq = match config.queues with Single_queue -> 1 | Multiple_queues -> config.processes in
  let queues = Array.init nq (fun _ -> make_queue ()) in
  (* outstanding = queued + currently executing; the cycle ends at 0. *)
  let outstanding = Atomic.make 0 in
  let tasks_done = Atomic.make 0 in
  let scanned = Atomic.make 0 in
  let emitted = Atomic.make 0 in
  let failed_pops = Atomic.make 0 in
  let serial_us_bits = Atomic.make 0 in
  (* accumulate µs as integer tenths to stay atomic *)
  List.iteri
    (fun i task ->
      Atomic.incr outstanding;
      push queues.(i mod nq) task)
    seed;
  let worker me () =
    let my_q = me mod nq in
    let rec loop () =
      if Atomic.get outstanding = 0 then ()
      else begin
        let task =
          let rec scan k =
            if k >= nq then None
            else
              match try_pop queues.((my_q + k) mod nq) with
              | Some t -> Some t
              | None ->
                Atomic.incr failed_pops;
                scan (k + 1)
          in
          scan 0
        in
        (match task with
        | None -> Domain.cpu_relax ()
        | Some task ->
          let kind = (Network.node net (Task.node task)).Network.kind in
          let o = Runtime.exec net task in
          Atomic.incr tasks_done;
          ignore (Atomic.fetch_and_add scanned o.Runtime.scanned);
          let kids = o.Runtime.children in
          let nkids = List.length kids in
          ignore (Atomic.fetch_and_add emitted nkids);
          ignore
            (Atomic.fetch_and_add serial_us_bits
               (int_of_float (10. *. Cost.task_cost cost kind o)));
          ignore (Atomic.fetch_and_add outstanding nkids);
          List.iter (push queues.(my_q)) kids;
          Atomic.decr outstanding);
        loop ()
      end
    in
    loop ()
  in
  let domains =
    List.init (max 1 config.processes) (fun i -> Domain.spawn (worker i))
  in
  List.iter Domain.join domains;
  let wall_ns = Clock.now_ns () - t0 in
  {
    Cycle.empty with
    tasks = Atomic.get tasks_done;
    serial_us = float_of_int (Atomic.get serial_us_bits) /. 10.;
    makespan_us = float_of_int wall_ns /. 1000.;
    failed_pops = Atomic.get failed_pops;
    scanned = Atomic.get scanned;
    emitted = Atomic.get emitted;
    wall_ns;
  }

let run_changes ?(cost = Cost.default) config net changes =
  let alpha = ref 0 in
  let seed =
    List.concat_map
      (fun (flag, w) ->
        let tasks, acts = Runtime.seed_wme_change net flag w in
        alpha := !alpha + acts;
        tasks)
      changes
  in
  let stats = run_tasks ~cost config net seed in
  { stats with Cycle.alpha_activations = !alpha }
