(** The OPS5 recognize–act cycle (§2.1): match, conflict-resolve with
    the LEX strategy, fire one instantiation.

    This is the substrate PSM-E originally ran — unlike Soar it fires a
    single instantiation per cycle, chosen by refraction, recency of the
    matched timetags, and specificity. [remove] and [modify] RHS actions
    are supported (Soar productions only add). *)

open Psme_support
open Psme_ops5
open Psme_rete


type t

(** OPS5's two conflict-resolution strategies. Both apply refraction
    first; LEX then orders by recency of all matched timetags, MEA by
    the recency of the wme matching the {e first} condition element
    before the LEX ordering (means-ends analysis: goal elements first). *)
type strategy =
  | Lex
  | Mea

val create :
  ?engine:Engine.mode ->
  ?cost:Cost.params ->
  ?strategy:strategy ->
  Schema.t ->
  Production.t list ->
  t
val network : t -> Network.t
val wm : t -> Wm.t
val output : t -> string list
(** [(write ...)] output so far, oldest first. *)

val add_wme : t -> cls:string -> (string * Value.t) list -> Wme.t
(** Insert a wme and match immediately (the OPS5 top level's [make]). *)

val remove_wme : t -> Wme.t -> unit

type stop_reason =
  | Halted            (** a production executed [(halt)] *)
  | Quiescent         (** empty conflict set *)
  | Cycle_limit

val run : ?max_cycles:int -> t -> stop_reason * int
(** Run recognize–act cycles; returns the stop reason and the number of
    productions fired. *)

val select : t -> Conflict_set.inst option
(** The instantiation LEX would fire next (exposed for tests). *)
