(** One reproduction entry per table and figure of the paper's
    evaluation (§5–§6). Each function runs the workloads it needs (runs
    are cached within the process), returns structured data, and can
    print itself in the same rows/series the paper reports.

    Engine note: speedup figures come from the simulated multiprocessor
    (see {!Psme_engine.Sim}); uniprocessor times are the cost model's
    microseconds over the real task stream. *)

open Psme_support


type chunking_mode =
  | Without  (** learning off (Figures 6-1/6-4, Table 6-1) *)
  | During   (** learning on (Tables 5-1/5-2, Figure 6-9) *)
  | After    (** chunks from a During run preloaded, learning off
                 (Figure 6-10) *)

val procs_axis : int list
(** The paper's X axis: 1..13 match processes. *)

(** A per-task series over the processor axis. *)
type series = {
  s_task : string;
  s_uniproc_s : float;      (** this run's uniprocessor seconds *)
  s_paper_uniproc_s : float;
  s_points : (int * float) list;  (** (match processes, y) *)
}

type speedup_figure = {
  fig_name : string;
  fig_title : string;
  fig_series : series list;
}

val figure_6_1 : unit -> speedup_figure
(** Speedups without chunking, single task queue. *)

val figure_6_2 : unit -> (string * (int * float) list) list
(** Hash-bucket contention: per task, (left-token accesses per bucket
    per cycle, percent of left tokens). *)

val figure_6_3 : unit -> speedup_figure
(** Task-queue contention: y is spins per task, single queue. *)

val figure_6_4 : unit -> speedup_figure
(** Speedups without chunking, multiple task queues. *)

val figure_6_5 : unit -> (int * float) list
(** Eight-Puzzle, 11 processes: (tasks in cycle, cycle speedup). *)

val figure_6_6 : unit -> (float * int) list
(** Tasks-in-system trace of a large, low-speedup Eight-Puzzle cycle. *)

type bilinear_report = {
  bl_production : string;
  bl_ces : int;
  bl_linear_depth : int;    (** beta-chain length, linear network *)
  bl_bilinear_depth : int;  (** same production, constrained bilinear *)
  bl_linear_speedup : float;   (** Strips run at 13 processes *)
  bl_bilinear_speedup : float;
}

val figure_6_8_bilinear : unit -> bilinear_report
(** The §6.2 long-chain remedy, applied to Strips'
    [monitor-strips-state]. *)

val figure_6_9 : unit -> speedup_figure
(** Speedups of the §5.2 state-update phase (during-chunking runs). *)

val figure_6_10 : unit -> speedup_figure
(** Speedups after chunking. *)

val figure_6_11 : unit -> Histogram.t
(** Eight-Puzzle tasks/cycle distribution, without chunking. *)

val figure_6_12 : unit -> Histogram.t
(** Same, after chunking: the mass moves right. *)

type t51_row = {
  r51_task : string;
  r51_task_ces : float;   (** avg CEs of the hand-written productions *)
  r51_chunk_ces : float;  (** avg CEs of the learned chunks *)
  r51_bytes_per_chunk : float;
  r51_bytes_per_two_input : float;
  r51_paper : float * float * float * float;
}

val table_5_1 : unit -> t51_row list

type t52_row = {
  r52_task : string;
  r52_chunks : int;
  r52_shared_ms : float;    (** run-time chunk compilation, sharing on *)
  r52_unshared_ms : float;  (** sharing off *)
  r52_shared_bytes : int;   (** generated code (model), sharing on *)
  r52_unshared_bytes : int;
  r52_paper_chunks : int;
  r52_paper_shared_s : float;
  r52_paper_unshared_s : float;
}

val table_5_2 : unit -> t52_row list

type t61_row = {
  r61_task : string;
  r61_uniproc_s : float;
  r61_tasks : int;
  r61_us_per_task : float;
  r61_paper : float * int * float;
}

val table_6_1 : unit -> t61_row list

(** {2 Beyond the paper: §7 future work, measured} *)

type async_row = {
  a_task : string;
  a_sync_speedup : float;   (** 13 processes, synchronous cycles *)
  a_async_speedup : float;  (** 13 processes, asynchronous elaboration *)
  a_same_outcome : bool;    (** both runs reach the same decision count *)
}

val future_async_elaboration : unit -> async_row list
(** The paper's §7 prediction — firing asynchronously, synchronizing
    only at decisions, should increase parallelism — measured on the
    three tasks. *)

val future_io_rate : unit -> (int * float) list
(** §7's other prediction: input/output raising the rate of wme change
    raises parallelism. Returns (readings per channel per cycle,
    13-process speedup) for the streaming-sensor workload. *)

val print_all : Format.formatter -> unit
(** Run and print every table and figure (the bench harness's body). *)

val markdown_report : unit -> string
(** The EXPERIMENTS.md body: paper-vs-measured for every entry. *)

val clear_cache : unit -> unit
