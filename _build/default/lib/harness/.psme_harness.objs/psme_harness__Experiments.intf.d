lib/harness/experiments.mli: Format Histogram Psme_support
