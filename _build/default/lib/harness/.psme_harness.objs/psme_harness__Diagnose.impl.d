lib/harness/diagnose.ml: Agent Array Cycle Engine Format List Network Parallel Psme_engine Psme_ops5 Psme_rete Psme_soar Psme_support Psme_workloads Sim Workload
