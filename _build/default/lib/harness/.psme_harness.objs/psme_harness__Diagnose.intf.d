lib/harness/diagnose.mli: Format Psme_workloads Workload
