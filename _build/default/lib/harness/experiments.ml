open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_soar
open Psme_workloads

type chunking_mode =
  | Without
  | During
  | After

let procs_axis = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13 ]

type series = {
  s_task : string;
  s_uniproc_s : float;
  s_paper_uniproc_s : float;
  s_points : (int * float) list;
}

type speedup_figure = {
  fig_name : string;
  fig_title : string;
  fig_series : series list;
}

let workloads = [ Eight_puzzle.workload; Strips.workload; Cypress.workload ]

(* --- cached runs ------------------------------------------------------ *)

type run_data = {
  rd_summary : Agent.run_summary;
  rd_access_hist : (int * int) list;
  rd_initial_ces : float;  (* avg CEs of loaded non-chunk productions *)
}

let cache : (string, run_data) Hashtbl.t = Hashtbl.create 128
let chunk_cache : (string, Production.t list) Hashtbl.t = Hashtbl.create 8

let clear_cache () =
  Hashtbl.reset cache;
  Hashtbl.reset chunk_cache

let sim ?(trace = false) ?(queues = Parallel.Multiple_queues) procs =
  Engine.Sim_mode { Sim.procs; queues; collect_trace = trace }

let engine_key = function
  | Engine.Serial_mode -> "serial"
  | Engine.Parallel_mode { processes; queues } ->
    Printf.sprintf "par:%d:%s" processes
      (match queues with Parallel.Single_queue -> "1q" | Parallel.Multiple_queues -> "nq")
  | Engine.Sim_mode { Sim.procs; queues; collect_trace } ->
    Printf.sprintf "sim:%d:%s:%b" procs
      (match queues with Parallel.Single_queue -> "1q" | Parallel.Multiple_queues -> "nq")
      collect_trace

let mode_key = function Without -> "w" | During -> "d" | After -> "a"

let learned (w : Workload.t) =
  match Hashtbl.find_opt chunk_cache w.Workload.name with
  | Some cs -> cs
  | None ->
    let config = { Agent.default_config with Agent.learning = true } in
    let agent = w.Workload.make ~config () in
    ignore (Agent.run agent);
    let cs = Agent.learned_productions agent in
    Hashtbl.replace chunk_cache w.Workload.name cs;
    cs

let run ?(net_config = Network.default_config) ?(async = false) (w : Workload.t) mode
    engine_mode =
  let key =
    Printf.sprintf "%s|%s|%s|share=%b|bil=%b|async=%b" w.Workload.name (mode_key mode)
      (engine_key engine_mode) net_config.Network.share net_config.Network.bilinear async
  in
  match Hashtbl.find_opt cache key with
  | Some rd -> rd
  | None ->
    let config =
      {
        Agent.default_config with
        Agent.learning = (mode = During);
        engine_mode;
        net_config;
        async_elaboration = async;
      }
    in
    let extra = match mode with After -> learned w | Without | During -> [] in
    let agent = w.Workload.make ~config ~extra () in
    let summary = Agent.run agent in
    let net = Agent.network agent in
    (* fold the final cycle's bucket counters into the histogram *)
    Memory.reset_cycle_stats net.Network.mem;
    let initial =
      Network.productions net
      |> List.filter (fun pm ->
             not pm.Network.meta_production.Production.is_chunk)
      |> List.map (fun pm -> Production.num_ces pm.Network.meta_production)
    in
    let rd =
      {
        rd_summary = summary;
        rd_access_hist = Memory.access_histogram net.Network.mem;
        rd_initial_ces =
          float_of_int (List.fold_left ( + ) 0 initial)
          /. float_of_int (max 1 (List.length initial));
      }
    in
    Hashtbl.replace cache key rd;
    rd

let sum_serial stats = List.fold_left (fun a s -> a +. s.Cycle.serial_us) 0. stats
let sum_makespan stats = List.fold_left (fun a s -> a +. s.Cycle.makespan_us) 0. stats
let sum_tasks stats = List.fold_left (fun a s -> a + s.Cycle.tasks) 0 stats
let sum_spins stats = List.fold_left (fun a s -> a +. s.Cycle.queue_spins) 0. stats

let speedup_of stats =
  let m = sum_makespan stats in
  if m <= 0. then 1.0 else sum_serial stats /. m

(* --- speedup sweeps ---------------------------------------------------- *)

let sweep ~mode ~queues ~pick w =
  let uniproc =
    let rd = run w mode (sim ~queues 1) in
    sum_serial (pick rd.rd_summary) /. 1e6
  in
  let points =
    List.map
      (fun p ->
        let rd = run w mode (sim ~queues p) in
        (p, speedup_of (pick rd.rd_summary)))
      procs_axis
  in
  {
    s_task = w.Workload.name;
    s_uniproc_s = uniproc;
    s_paper_uniproc_s =
      (match mode with
      | After -> w.Workload.paper_uniproc_after_s
      | Without | During -> w.Workload.paper_uniproc_s);
    s_points = points;
  }

let match_cycles (s : Agent.run_summary) = s.Agent.match_stats
let update_cycles (s : Agent.run_summary) = s.Agent.update_stats

let figure_6_1 () =
  {
    fig_name = "figure-6-1";
    fig_title = "Speedups without chunking, single task queue";
    fig_series =
      List.map
        (sweep ~mode:Without ~queues:Parallel.Single_queue ~pick:match_cycles)
        workloads;
  }

let figure_6_2 () =
  List.map
    (fun (w : Workload.t) ->
      let rd = run w Without (sim ~queues:Parallel.Single_queue 13) in
      let total =
        List.fold_left (fun a (_, n) -> a + n) 0 rd.rd_access_hist
      in
      let pct =
        List.map
          (fun (k, n) -> (k, 100. *. float_of_int n /. float_of_int (max 1 total)))
          rd.rd_access_hist
      in
      (w.Workload.name, pct))
    workloads

let figure_6_3 () =
  {
    fig_name = "figure-6-3";
    fig_title = "Task-queue contention (spins/task), single queue";
    fig_series =
      List.map
        (fun (w : Workload.t) ->
          let points =
            List.filter_map
              (fun p ->
                if p < 3 then None
                else
                  let rd = run w Without (sim ~queues:Parallel.Single_queue p) in
                  let stats = match_cycles rd.rd_summary in
                  Some (p, sum_spins stats /. float_of_int (max 1 (sum_tasks stats))))
              procs_axis
          in
          {
            s_task = w.Workload.name;
            s_uniproc_s = 0.;
            s_paper_uniproc_s = 0.;
            s_points = points;
          })
        workloads;
  }

let figure_6_4 () =
  {
    fig_name = "figure-6-4";
    fig_title = "Speedups without chunking, multiple task queues";
    fig_series =
      List.map
        (sweep ~mode:Without ~queues:Parallel.Multiple_queues ~pick:match_cycles)
        workloads;
  }

let figure_6_5 () =
  let rd = run Eight_puzzle.workload Without (sim 11) in
  List.filter_map
    (fun (s : Cycle.stats) ->
      if s.Cycle.tasks = 0 then None else Some (s.Cycle.tasks, Cycle.speedup s))
    (match_cycles rd.rd_summary)

let figure_6_6 () =
  let rd = run Eight_puzzle.workload Without (sim ~trace:true 11) in
  let candidates =
    List.filter
      (fun (s : Cycle.stats) -> s.Cycle.tasks >= 150 && Array.length s.Cycle.trace > 0)
      (match_cycles rd.rd_summary)
  in
  let worst =
    List.fold_left
      (fun acc s ->
        match acc with
        | None -> Some s
        | Some best -> if Cycle.speedup s < Cycle.speedup best then Some s else acc)
      None candidates
  in
  match worst with
  | None -> []
  | Some s ->
    let tr = s.Cycle.trace in
    let n = Array.length tr in
    let step = max 1 (n / 200) in
    List.filteri (fun i _ -> i mod step = 0) (Array.to_list tr)

(* --- bilinear (Figures 6-7/6-8) ---------------------------------------- *)

type bilinear_report = {
  bl_production : string;
  bl_ces : int;
  bl_linear_depth : int;
  bl_bilinear_depth : int;
  bl_linear_speedup : float;
  bl_bilinear_speedup : float;
}

let bilinear_config =
  { Network.default_config with Network.bilinear = true; bilinear_min_ces = 15 }

let chain_depth net pnode_id =
  let rec go id acc =
    match (Network.node net id).Network.parent with
    | None -> acc
    | Some p -> go p (acc + 1)
  in
  go pnode_id 1

let figure_6_8_bilinear () =
  let monitor = Sym.intern "monitor-strips-state" in
  let depth_with cfg =
    let config = { Agent.default_config with Agent.net_config = cfg } in
    let agent = Strips.make_agent ~config () in
    let net = Agent.network agent in
    match Network.find_production net monitor with
    | Some pm -> chain_depth net pm.Network.pnode
    | None -> 0
  in
  let speedup_with cfg =
    let rd = run ~net_config:cfg Strips.workload Without (sim 13) in
    speedup_of (match_cycles rd.rd_summary)
  in
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let mp = Parser.parse_production schema (Strips.monitor_production Strips.default_layout) in
  {
    bl_production = "monitor-strips-state";
    bl_ces = Production.num_ces mp;
    bl_linear_depth = depth_with Network.default_config;
    bl_bilinear_depth = depth_with bilinear_config;
    bl_linear_speedup = speedup_with Network.default_config;
    bl_bilinear_speedup = speedup_with bilinear_config;
  }

let figure_6_9 () =
  {
    fig_name = "figure-6-9";
    fig_title = "Speedups in the update phase, multiple task queues";
    fig_series =
      List.map
        (sweep ~mode:During ~queues:Parallel.Multiple_queues ~pick:update_cycles)
        workloads;
  }

let figure_6_10 () =
  {
    fig_name = "figure-6-10";
    fig_title = "Speedups after chunking, multiple task queues";
    fig_series =
      List.map
        (sweep ~mode:After ~queues:Parallel.Multiple_queues ~pick:match_cycles)
        workloads;
  }

let cycle_histogram stats =
  let h = Histogram.create ~bucket_width:25. ~buckets:48 in
  List.iter
    (fun (s : Cycle.stats) ->
      if s.Cycle.tasks > 0 then Histogram.add h (float_of_int s.Cycle.tasks))
    stats;
  h

let figure_6_11 () =
  let rd = run Eight_puzzle.workload Without (sim 11) in
  cycle_histogram (match_cycles rd.rd_summary)

let figure_6_12 () =
  let rd = run Eight_puzzle.workload After (sim 11) in
  cycle_histogram (match_cycles rd.rd_summary)

(* --- tables -------------------------------------------------------------- *)

type t51_row = {
  r51_task : string;
  r51_task_ces : float;
  r51_chunk_ces : float;
  r51_bytes_per_chunk : float;
  r51_bytes_per_two_input : float;
  r51_paper : float * float * float * float;
}

let paper_t51 = function
  | "eight-puzzle" -> (18., 36., 7900., 219.)
  | "strips" -> (13., 34., 8500., 250.)
  | "cypress" -> (26., 51., 15500., 304.)
  | _ -> (0., 0., 0., 0.)

let table_5_1 () =
  List.map
    (fun (w : Workload.t) ->
      let rd = run w During Engine.Serial_mode in
      let chunks = rd.rd_summary.Agent.chunks in
      let n = max 1 (List.length chunks) in
      let favg f =
        List.fold_left (fun a c -> a +. f c) 0. chunks /. float_of_int n
      in
      let two_input =
        let vals =
          List.filter_map
            (fun (c : Agent.chunk_info) ->
              if Float.is_nan c.Agent.ci_bytes_per_two_input then None
              else Some c.Agent.ci_bytes_per_two_input)
            chunks
        in
        match vals with
        | [] -> nan
        | _ -> List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)
      in
      {
        r51_task = w.Workload.name;
        r51_task_ces = rd.rd_initial_ces;
        r51_chunk_ces = favg (fun c -> float_of_int c.Agent.ci_ces);
        r51_bytes_per_chunk = favg (fun c -> float_of_int c.Agent.ci_bytes);
        r51_bytes_per_two_input = two_input;
        r51_paper = paper_t51 w.Workload.name;
      })
    workloads

type t52_row = {
  r52_task : string;
  r52_chunks : int;
  r52_shared_ms : float;
  r52_unshared_ms : float;
  r52_shared_bytes : int;
  r52_unshared_bytes : int;
  r52_paper_chunks : int;
  r52_paper_shared_s : float;
  r52_paper_unshared_s : float;
}

let paper_t52 = function
  | "eight-puzzle" -> (20, 23.7, 25.5)
  | "strips" -> (26, 31.5, 34.7)
  | "cypress" -> (26, 56.7, 60.2)
  | _ -> (0, 0., 0.)

let table_5_2 () =
  List.map
    (fun (w : Workload.t) ->
      let compile_ms rd =
        List.fold_left
          (fun a (c : Agent.chunk_info) -> a +. (float_of_int c.Agent.ci_compile_ns /. 1e6))
          0. rd.rd_summary.Agent.chunks
      in
      let bytes rd =
        List.fold_left
          (fun a (c : Agent.chunk_info) -> a + c.Agent.ci_bytes)
          0 rd.rd_summary.Agent.chunks
      in
      let shared = run w During Engine.Serial_mode in
      let unshared =
        run ~net_config:{ Network.default_config with Network.share = false } w During
          Engine.Serial_mode
      in
      let pc, ps, pu = paper_t52 w.Workload.name in
      {
        r52_task = w.Workload.name;
        r52_chunks = List.length shared.rd_summary.Agent.chunks;
        r52_shared_ms = compile_ms shared;
        r52_unshared_ms = compile_ms unshared;
        r52_shared_bytes = bytes shared;
        r52_unshared_bytes = bytes unshared;
        r52_paper_chunks = pc;
        r52_paper_shared_s = ps;
        r52_paper_unshared_s = pu;
      })
    workloads

type t61_row = {
  r61_task : string;
  r61_uniproc_s : float;
  r61_tasks : int;
  r61_us_per_task : float;
  r61_paper : float * int * float;
}

let paper_t61 = function
  | "eight-puzzle" -> (37.7, 87974, 428.)
  | "strips" -> (43.7, 99611, 438.)
  | "cypress" -> (172.7, 432390, 400.)
  | _ -> (0., 0, 0.)

let table_6_1 () =
  List.map
    (fun (w : Workload.t) ->
      let rd = run w Without Engine.Serial_mode in
      let stats = match_cycles rd.rd_summary in
      let tasks = sum_tasks stats in
      let serial = sum_serial stats in
      {
        r61_task = w.Workload.name;
        r61_uniproc_s = serial /. 1e6;
        r61_tasks = tasks;
        r61_us_per_task = serial /. float_of_int (max 1 tasks);
        r61_paper = paper_t61 w.Workload.name;
      })
    workloads

(* --- beyond the paper: §7 asynchronous elaboration ----------------------- *)

type async_row = {
  a_task : string;
  a_sync_speedup : float;
  a_async_speedup : float;
  a_same_outcome : bool;
}

let future_async_elaboration () =
  List.map
    (fun (w : Workload.t) ->
      let sync = run w Without (sim 13) in
      let asyn = run ~async:true w Without (sim 13) in
      {
        a_task = w.Workload.name;
        a_sync_speedup = speedup_of (match_cycles sync.rd_summary);
        a_async_speedup = speedup_of (match_cycles asyn.rd_summary);
        a_same_outcome =
          sync.rd_summary.Agent.decisions = asyn.rd_summary.Agent.decisions
          && sync.rd_summary.Agent.halted = asyn.rd_summary.Agent.halted;
      })
    workloads

let future_io_rate () =
  List.map
    (fun rate ->
      let params = { Io_stream.default_params with Io_stream.rate } in
      let config = { Agent.default_config with Agent.engine_mode = sim 13 } in
      let agent = Io_stream.make_agent ~config ~params () in
      let summary = Agent.run agent in
      (rate, speedup_of summary.Agent.match_stats))
    [ 1; 2; 4; 8; 16 ]

(* --- rendering -------------------------------------------------------------- *)

let pp_speedup_figure ppf fig =
  Format.fprintf ppf "@.== %s: %s ==@." fig.fig_name fig.fig_title;
  List.iter
    (fun s ->
      if s.s_uniproc_s > 0. then
        Format.fprintf ppf "%-14s uniproc %.1f s (paper %.1f s)@." s.s_task
          s.s_uniproc_s s.s_paper_uniproc_s
      else Format.fprintf ppf "%-14s@." s.s_task;
      Format.fprintf ppf "  procs: %s@."
        (String.concat " " (List.map (fun (p, _) -> Printf.sprintf "%6d" p) s.s_points));
      Format.fprintf ppf "  value: %s@."
        (String.concat " " (List.map (fun (_, y) -> Printf.sprintf "%6.2f" y) s.s_points)))
    fig.fig_series

let print_all ppf =
  let t61 = table_6_1 () in
  Format.fprintf ppf "@.== table-6-1: task granularity ==@.";
  Format.fprintf ppf "%-14s %12s %12s %12s   (paper: s / tasks / us)@." "task"
    "uniproc-s" "tasks" "us/task";
  List.iter
    (fun r ->
      let ps, pt, pu = r.r61_paper in
      Format.fprintf ppf "%-14s %12.1f %12d %12.0f   (%.1f / %d / %.0f)@." r.r61_task
        r.r61_uniproc_s r.r61_tasks r.r61_us_per_task ps pt pu)
    t61;
  pp_speedup_figure ppf (figure_6_1 ());
  Format.fprintf ppf "@.== figure-6-2: hash-bucket contention (13 procs) ==@.";
  List.iter
    (fun (task, pts) ->
      Format.fprintf ppf "%-14s@." task;
      List.iter
        (fun (k, pct) ->
          if k <= 16 then Format.fprintf ppf "  %3d accesses/bucket/cycle: %5.1f%%@." k pct)
        pts)
    (figure_6_2 ());
  pp_speedup_figure ppf (figure_6_3 ());
  pp_speedup_figure ppf (figure_6_4 ());
  Format.fprintf ppf "@.== figure-6-5: Eight-Puzzle cycle speedups vs tasks/cycle (11 procs) ==@.";
  let f5 = figure_6_5 () in
  let buckets = [ (0, 50); (50, 100); (100, 200); (200, 400); (400, 800); (800, 10000) ] in
  List.iter
    (fun (lo, hi) ->
      let xs = List.filter (fun (t, _) -> t >= lo && t < hi) f5 in
      if xs <> [] then begin
        let avg = List.fold_left (fun a (_, s) -> a +. s) 0. xs /. float_of_int (List.length xs) in
        Format.fprintf ppf "  %5d-%-5d tasks: %3d cycles, mean speedup %5.2f@." lo hi
          (List.length xs) avg
      end)
    buckets;
  Format.fprintf ppf "@.== figure-6-6: tasks in system over time (one large low-speedup cycle) ==@.";
  List.iteri
    (fun i (t, n) ->
      if i mod 10 = 0 then Format.fprintf ppf "  t=%8.0fus  tasks=%4d@." t n)
    (figure_6_6 ());
  let bl = figure_6_8_bilinear () in
  Format.fprintf ppf "@.== figure-6-7/6-8: long chains and the constrained bilinear network ==@.";
  Format.fprintf ppf "  %s: %d CEs@." bl.bl_production bl.bl_ces;
  Format.fprintf ppf "  beta-chain depth: linear %d -> bilinear %d@." bl.bl_linear_depth
    bl.bl_bilinear_depth;
  Format.fprintf ppf "  Strips speedup at 13 procs: linear %.2f -> bilinear %.2f@."
    bl.bl_linear_speedup bl.bl_bilinear_speedup;
  pp_speedup_figure ppf (figure_6_9 ());
  pp_speedup_figure ppf (figure_6_10 ());
  Format.fprintf ppf "@.== figure-6-11: Eight-Puzzle tasks/cycle, without chunking ==@.";
  Histogram.pp () ppf (figure_6_11 ());
  Format.fprintf ppf "@.== figure-6-12: Eight-Puzzle tasks/cycle, after chunking ==@.";
  Histogram.pp () ppf (figure_6_12 ());
  Format.fprintf ppf "@.== table-5-1: chunk sizes ==@.";
  List.iter
    (fun r ->
      let pt, pc, pb, p2 = r.r51_paper in
      Format.fprintf ppf
        "%-14s task-CEs %5.1f (paper %2.0f)  chunk-CEs %5.1f (%2.0f)  bytes/chunk %7.0f (%5.0f)  bytes/2-input %5.0f (%3.0f)@."
        r.r51_task r.r51_task_ces pt r.r51_chunk_ces pc r.r51_bytes_per_chunk pb
        r.r51_bytes_per_two_input p2)
    (table_5_1 ());
  Format.fprintf ppf
    "@.== beyond the paper: I/O-driven wme churn (section 7, 13 procs) ==@.";
  List.iter
    (fun (rate, sp) ->
      Format.fprintf ppf "  %2d readings/channel/cycle -> speedup %.2f@." rate sp)
    (future_io_rate ());
  Format.fprintf ppf
    "@.== beyond the paper: asynchronous elaboration (section 7, 13 procs) ==@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s sync %.2f -> async %.2f  (same outcome: %b)@." r.a_task
        r.a_sync_speedup r.a_async_speedup r.a_same_outcome)
    (future_async_elaboration ());
  Format.fprintf ppf "@.== table-5-2: run-time chunk compilation ==@.";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-14s chunks %3d (paper %2d)  shared %7.2f ms / %6d B  unshared %7.2f ms / %6d B  (paper %4.1f s / %4.1f s)@."
        r.r52_task r.r52_chunks r.r52_paper_chunks r.r52_shared_ms r.r52_shared_bytes
        r.r52_unshared_ms r.r52_unshared_bytes r.r52_paper_shared_s
        r.r52_paper_unshared_s)
    (table_5_2 ());
  Format.fprintf ppf "@."

let markdown_report () =
  let buf = Buffer.create 16384 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# EXPERIMENTS — paper vs. measured\n\n";
  pr "All measurements produced by `dune exec bench/main.exe` (also\n";
  pr "regenerable via `dune exec bin/soar_cli.exe -- report`). Speedups come\n";
  pr "from the discrete-event simulated multiprocessor over the real Rete\n";
  pr "task stream; times are the calibrated cost model's microseconds\n";
  pr "(NS32032-class processor). Absolute numbers are not expected to match\n";
  pr "the 1988 testbed; shapes are (see DESIGN.md).\n\n";
  pr "## Table 6-1 — task granularity\n\n";
  pr "| task | uniproc s (paper) | tasks (paper) | us/task (paper) |\n|---|---|---|---|\n";
  List.iter
    (fun r ->
      let ps, pt, pu = r.r61_paper in
      pr "| %s | %.1f (%.1f) | %d (%d) | %.0f (%.0f) |\n" r.r61_task r.r61_uniproc_s ps
        r.r61_tasks pt r.r61_us_per_task pu)
    (table_6_1 ());
  let dump_fig fig =
    pr "\n## %s — %s\n\n" fig.fig_name fig.fig_title;
    let axis = match fig.fig_series with s :: _ -> List.map fst s.s_points | [] -> [] in
    pr "| task | uniproc s (paper) |%s\n"
      (String.concat "" (List.map (fun p -> Printf.sprintf " %d |" p) axis));
    pr "|---|---|%s\n" (String.concat "" (List.map (fun _ -> "---|") axis));
    List.iter
      (fun s ->
        pr "| %s | %.1f (%.1f) |%s\n" s.s_task s.s_uniproc_s s.s_paper_uniproc_s
          (String.concat ""
             (List.map (fun (_, y) -> Printf.sprintf " %.2f |" y) s.s_points)))
      fig.fig_series
  in
  dump_fig (figure_6_1 ());
  pr "\nPaper shape: peaks ~4.2x, decline past ~9 processes. \n";
  dump_fig (figure_6_3 ());
  pr "\nPaper shape: spins/task grows with processes at a similar rate for all three tasks.\n";
  dump_fig (figure_6_4 ());
  pr "\nPaper shape: multiple queues lift the curves (to ~7x in Strips/Cypress).\n";
  pr "\n## figure-6-2 — hash-bucket contention\n\n";
  List.iter
    (fun (task, pts) ->
      pr "- %s: " task;
      List.iter
        (fun (k, pct) -> if k <= 8 then pr "%d:%.1f%% " k pct)
        pts;
      pr "\n")
    (figure_6_2 ());
  pr "\nPaper shape: most left tokens see 1-2 accesses/bucket/cycle; Strips is the worst case.\n";
  pr "\n## figure-6-5 / figure-6-6 — per-cycle behaviour (Eight-Puzzle, 11 procs)\n\n";
  let f5 = figure_6_5 () in
  pr "%d cycles; small cycles cluster at low speedups, large cycles reach higher ones.\n"
    (List.length f5);
  (match figure_6_6 () with
  | [] -> pr "(no large low-speedup cycle found)\n"
  | trace ->
    let tmax = List.fold_left (fun a (t, _) -> max a t) 0. trace in
    let peak = List.fold_left (fun a (_, n) -> max a n) 0 trace in
    pr
      "Worst large cycle: peak %d concurrent tasks, tail of few tasks until %.0f us (the long-chain effect).\n"
      peak tmax);
  let bl = figure_6_8_bilinear () in
  pr "\n## figure-6-7/6-8 — long chains and the constrained bilinear network\n\n";
  pr "- `%s`: %d CEs\n" bl.bl_production bl.bl_ces;
  pr "- beta-chain depth: linear %d -> bilinear %d (paper: 43 CEs -> chain of 15)\n"
    bl.bl_linear_depth bl.bl_bilinear_depth;
  pr "- Strips speedup at 13 procs: linear %.2f -> bilinear %.2f\n" bl.bl_linear_speedup
    bl.bl_bilinear_speedup;
  dump_fig (figure_6_9 ());
  pr
    "\nPaper shape: the update phase shows the highest speedups of all\n\
     measurements. Partially reproduced: our compiler shares far more\n\
     chunk structure than PSM-E's code generator could (Table 5-2's\n\
     sharing column), so each update touches fewer new nodes and the\n\
     update task sets are much smaller than the paper's — Strips's\n\
     updates are near-trivial and do not parallelize.\n";
  dump_fig (figure_6_10 ());
  pr
    "\nPaper shape: after chunking, Eight-Puzzle gains most (~10x at 13 procs); Cypress's after run is very short.\n";
  let dump_hist name h =
    pr "\n## %s — tasks/cycle histogram\n\n| bucket | share |\n|---|---|\n" name;
    List.iter
      (fun (lo, hi, n, frac) ->
        if n > 0 then pr "| %.0f-%.0f | %.1f%% |\n" lo hi (100. *. frac))
      (Histogram.rows h)
  in
  dump_hist "figure-6-11 (without chunking)" (figure_6_11 ());
  dump_hist "figure-6-12 (after chunking)" (figure_6_12 ());
  pr "\nPaper shape: chunking moves cycle sizes right (30%%+ of cycles above 1000 tasks after learning).\n";
  pr "\n## Table 5-1 — chunk sizes\n\n";
  pr "| task | task CEs (paper) | chunk CEs (paper) | bytes/chunk (paper) | bytes/2-input (paper) |\n|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      let pt, pc, pb, p2 = r.r51_paper in
      pr "| %s | %.1f (%.0f) | %.1f (%.0f) | %.0f (%.0f) | %.0f (%.0f) |\n" r.r51_task
        r.r51_task_ces pt r.r51_chunk_ces pc r.r51_bytes_per_chunk pb
        r.r51_bytes_per_two_input p2)
    (table_5_1 ());
  pr "\n## Table 5-2 — run-time chunk compilation\n\n";
  pr "| task | chunks (paper) | shared ms / bytes | unshared ms / bytes | paper shared/unshared s |\n|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      pr "| %s | %d (%d) | %.2f / %d | %.2f / %d | %.1f / %.1f |\n" r.r52_task
        r.r52_chunks r.r52_paper_chunks r.r52_shared_ms r.r52_shared_bytes
        r.r52_unshared_ms r.r52_unshared_bytes r.r52_paper_shared_s
        r.r52_paper_unshared_s)
    (table_5_2 ());
  pr
    "\nPaper shape: compiling with sharing generates less code and is faster\n\
     despite the search for share points. The byte columns carry the\n\
     deterministic effect; our heap-target compilation takes tens of\n\
     microseconds per chunk, so the millisecond columns jitter.\n";
  pr "\n## Beyond the paper: asynchronous elaboration (section 7)\n\n";
  pr "| task | sync speedup @13 | async speedup @13 | same outcome |\n|---|---|---|---|\n";
  List.iter
    (fun r ->
      pr "| %s | %.2f | %.2f | %b |\n" r.a_task r.a_sync_speedup r.a_async_speedup
        r.a_same_outcome)
    (future_async_elaboration ());
  pr
    "\nThe paper predicted asynchronous firing would raise parallelism. It does\n\
     where synchronization dominates (Eight-Puzzle's small cycles merge into\n\
     continuous episodes); negation-involving productions still fire at episode\n\
     quiescence for soundness, so the gain is bounded.\n";
  pr "\n## Beyond the paper: I/O-driven wme change rate (section 7)\n\n";
  pr "| readings/channel/cycle | speedup @13 |\n|---|---|\n";
  List.iter (fun (rate, sp) -> pr "| %d | %.2f |\n" rate sp) (future_io_rate ());
  pr
    "\nThe paper expected the I/O module and robotics-style applications to raise\n\
     the rate of working-memory change and hence the parallelism: at 16 readings\n\
     per channel per cycle the match runs near-linearly on 13 processes.\n";
  Buffer.contents buf
