(* Engine tests: the serial engine defines the semantics; the real
   parallel engine and the simulated multiprocessor must agree with it,
   and the simulator must be deterministic with sane accounting. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Fixtures

let rules =
  {|
(p r1 (block ^name <x> ^color blue) -(block ^on <x>) (hand ^state free) --> (write a))
(p r2 (block ^name <x> ^state <s>) (block ^name { <y> <> <x> } ^state <s>) --> (write b))
(p r3 (block ^name <x> ^color red) (place ^name <x> ^table free) --> (write c))
|}

(* Batches of changes: a wme may only be deleted in a batch after the
   one that added it — within one buffered cycle the changes must be
   independent, or concurrent processing would be order-dependent
   (Soar's decide module guarantees the same property). *)
let random_batches schema ~seed ~n =
  let rng = Rng.create seed in
  let colors = [| "red"; "blue"; "green" |] in
  let names = [| "a"; "b"; "c"; "d"; "e" |] in
  let tag = ref 0 in
  let committed = ref [] in
  let batch_size = 10 in
  List.init ((n + batch_size - 1) / batch_size) (fun _ ->
      let batch_adds = ref [] in
      let batch =
        List.concat
          (List.init batch_size (fun _ ->
               if !committed <> [] && Rng.int rng 4 = 0 then begin
                 let idx = Rng.int rng (List.length !committed) in
                 let w = List.nth !committed idx in
                 committed := List.filteri (fun i _ -> i <> idx) !committed;
                 [ (Task.Delete, w) ]
               end
               else begin
                 incr tag;
                 let cls = Sym.intern "block" in
                 let fields = Array.make (Schema.arity schema cls) Value.nil in
                 fields.(Schema.field_index schema cls (Sym.intern "name")) <-
                   Value.sym (Rng.pick rng names);
                 fields.(Schema.field_index schema cls (Sym.intern "color")) <-
                   Value.sym (Rng.pick rng colors);
                 fields.(Schema.field_index schema cls (Sym.intern "state")) <-
                   Value.Int (Rng.int rng 3);
                 let w = Wme.make ~cls ~fields ~timetag:!tag in
                 batch_adds := w :: !batch_adds;
                 [ (Task.Add, w) ]
               end))
      in
      committed := !batch_adds @ !committed;
      batch)

let random_changes schema ~seed ~n =
  List.concat (random_batches schema ~seed ~n)

let fresh () =
  let schema = schema_with () in
  let net = Network.create schema in
  ignore (Build.add_all net (parse_prods schema rules));
  (schema, net)

let hand_wme schema =
  Wme.make ~cls:(Sym.intern "hand")
    ~fields:(fields schema "hand" [ ("state", sym "free") ]) ~timetag:100000

let serial_reference ~seed ~n =
  let schema, net = fresh () in
  ignore (Serial.run_changes net [ (Task.Add, hand_wme schema) ]);
  List.iter
    (fun batch -> ignore (Serial.run_changes net batch))
    (random_batches schema ~seed ~n);
  cs_fingerprint net

let test_parallel_matches_serial () =
  List.iter
    (fun seed ->
      let reference = serial_reference ~seed ~n:60 in
      List.iter
        (fun queues ->
          let schema, net = fresh () in
          ignore
            (Parallel.run_changes { Parallel.processes = 3; queues } net
               [ (Task.Add, hand_wme schema) ]);
          List.iter
            (fun batch ->
              ignore (Parallel.run_changes { Parallel.processes = 3; queues } net batch))
            (random_batches schema ~seed ~n:60);
          Alcotest.(check string)
            (Printf.sprintf "parallel = serial (seed %d)" seed)
            reference (cs_fingerprint net))
        [ Parallel.Single_queue; Parallel.Multiple_queues ])
    [ 1; 2; 3 ]

let test_sim_matches_serial () =
  List.iter
    (fun seed ->
      let reference = serial_reference ~seed ~n:60 in
      List.iter
        (fun procs ->
          let schema, net = fresh () in
          let cfg = { Sim.procs; queues = Parallel.Multiple_queues; collect_trace = false } in
          ignore (Sim.run_changes cfg net [ (Task.Add, hand_wme schema) ]);
          List.iter
            (fun batch -> ignore (Sim.run_changes cfg net batch))
            (random_batches schema ~seed ~n:60);
          Alcotest.(check string)
            (Printf.sprintf "sim(%d) = serial (seed %d)" procs seed)
            reference (cs_fingerprint net))
        [ 1; 4; 13 ])
    [ 7; 8 ]

let sim_run ~procs ~queues ~seed =
  let schema, net = fresh () in
  Sim.run_changes
    { Sim.procs; queues; collect_trace = false }
    net
    (random_changes schema ~seed ~n:80)

let test_sim_deterministic () =
  let a = sim_run ~procs:7 ~queues:Parallel.Single_queue ~seed:5 in
  let b = sim_run ~procs:7 ~queues:Parallel.Single_queue ~seed:5 in
  Alcotest.(check int) "same tasks" a.Cycle.tasks b.Cycle.tasks;
  Alcotest.(check (float 1e-9)) "same makespan" a.Cycle.makespan_us b.Cycle.makespan_us;
  Alcotest.(check (float 1e-9)) "same spins" a.Cycle.queue_spins b.Cycle.queue_spins

let test_sim_speedup_monotone_band () =
  (* More processes never increase makespan wildly, and speedup stays
     within [0.5, procs]. *)
  let s1 = sim_run ~procs:1 ~queues:Parallel.Multiple_queues ~seed:11 in
  List.iter
    (fun procs ->
      let s = sim_run ~procs ~queues:Parallel.Multiple_queues ~seed:11 in
      let speedup = s1.Cycle.serial_us /. s.Cycle.makespan_us in
      Alcotest.(check bool)
        (Printf.sprintf "speedup %.2f at %d procs within band" speedup procs)
        true
        (speedup >= 0.5 && speedup <= float_of_int procs))
    [ 2; 4; 8; 13 ]

let test_sim_work_conserved () =
  (* The same semantic work is done regardless of processor count. *)
  let a = sim_run ~procs:1 ~queues:Parallel.Single_queue ~seed:21 in
  let b = sim_run ~procs:13 ~queues:Parallel.Single_queue ~seed:21 in
  Alcotest.(check int) "same task count" a.Cycle.tasks b.Cycle.tasks;
  (* bucket scan counts may differ slightly: tombstone entries exist
     transiently under some schedules *)
  let drift =
    abs (a.Cycle.scanned - b.Cycle.scanned) * 100 / max 1 a.Cycle.scanned
  in
  Alcotest.(check bool) "scan counts within 5%" true (drift <= 5)

let test_single_queue_contention_grows () =
  let spins procs =
    let s = sim_run ~procs ~queues:Parallel.Single_queue ~seed:31 in
    s.Cycle.queue_spins /. float_of_int (max 1 s.Cycle.tasks)
  in
  let low = spins 3 and high = spins 13 in
  Alcotest.(check bool)
    (Printf.sprintf "spins/task grows with processes (%.2f -> %.2f)" low high)
    true (high > low)

let test_multi_queue_reduces_contention () =
  let spins queues =
    let s = sim_run ~procs:13 ~queues ~seed:31 in
    s.Cycle.queue_spins /. float_of_int (max 1 s.Cycle.tasks)
  in
  let single = spins Parallel.Single_queue in
  let multi = spins Parallel.Multiple_queues in
  Alcotest.(check bool)
    (Printf.sprintf "multiple queues reduce spins/task (%.2f -> %.2f)" single multi)
    true (multi < single)

let test_serial_stats_consistency () =
  let schema, net = fresh () in
  let stats = Serial.run_changes net (random_changes schema ~seed:3 ~n:40) in
  Alcotest.(check bool) "tasks executed" true (stats.Cycle.tasks > 0);
  Alcotest.(check bool) "serial time positive" true (stats.Cycle.serial_us > 0.);
  Alcotest.(check (float 1e-9)) "serial engine speedup is 1"
    stats.Cycle.serial_us stats.Cycle.makespan_us;
  Alcotest.(check bool) "alpha activations counted" true
    (stats.Cycle.alpha_activations > 0)

let test_cost_model_band () =
  (* Average cost per task should sit in the paper's 200-800us band for
     a join-heavy workload. *)
  let schema, net = fresh () in
  let stats = Serial.run_changes net (random_changes schema ~seed:13 ~n:80) in
  let per_task = stats.Cycle.serial_us /. float_of_int stats.Cycle.tasks in
  Alcotest.(check bool)
    (Printf.sprintf "avg %.0f us/task in band" per_task)
    true
    (per_task > 100. && per_task < 900.)

let test_engine_facade_history () =
  let schema, net = fresh () in
  let eng = Engine.create Engine.Serial_mode net in
  ignore (Engine.run_changes eng (random_changes schema ~seed:17 ~n:10));
  ignore (Engine.run_changes eng []);
  Alcotest.(check int) "two cycles recorded" 2 (List.length (Engine.history eng));
  let totals = Engine.totals eng in
  Alcotest.(check bool) "totals aggregate" true (totals.Cycle.tasks > 0);
  Engine.reset_history eng;
  Alcotest.(check int) "reset" 0 (List.length (Engine.history eng))

let suite =
  [
    Alcotest.test_case "parallel engines match serial" `Quick test_parallel_matches_serial;
    Alcotest.test_case "sim matches serial" `Quick test_sim_matches_serial;
    Alcotest.test_case "sim deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "sim speedup band" `Quick test_sim_speedup_monotone_band;
    Alcotest.test_case "sim work conserved" `Quick test_sim_work_conserved;
    Alcotest.test_case "single-queue contention grows" `Quick
      test_single_queue_contention_grows;
    Alcotest.test_case "multi-queue cuts contention" `Quick
      test_multi_queue_reduces_contention;
    Alcotest.test_case "serial stats consistency" `Quick test_serial_stats_consistency;
    Alcotest.test_case "cost model band" `Quick test_cost_model_band;
    Alcotest.test_case "engine facade history" `Quick test_engine_facade_history;
  ]
