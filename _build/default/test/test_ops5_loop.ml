(* Tests of the OPS5 recognize-act top level: LEX selection, refraction,
   remove/modify actions, halting. *)

open Psme_support
open Psme_ops5
open Psme_engine

let v = Value.sym
let i = Value.int

let make_interp src =
  let schema = Schema.create () in
  let prods = Parser.productions schema src in
  (schema, Ops5_loop.create schema prods)

let test_count_to_three () =
  (* modify-based counting: one production fires repeatedly via recency *)
  let _, interp =
    make_interp
      {|
(literalize counter value)
(literalize succ of is)
(p count-up
  (counter ^value { <n> < 3 })
  (succ ^of <n> ^is <m>)
  -->
  (modify 1 counter ^value <m>)
  (write tick <m>))
(p done
  (counter ^value 3)
  -->
  (write done)
  (halt))
|}
  in
  List.iter
    (fun (a, b) ->
      ignore (Ops5_loop.add_wme interp ~cls:"succ" [ ("of", i a); ("is", i b) ]))
    [ (0, 1); (1, 2); (2, 3) ];
  ignore (Ops5_loop.add_wme interp ~cls:"counter" [ ("value", i 0) ]);
  let reason, fired = Ops5_loop.run interp in
  Alcotest.(check bool) "halted" true (reason = Ops5_loop.Halted);
  Alcotest.(check int) "fired 4 productions" 4 fired;
  Alcotest.(check (list string)) "output"
    [ "tick 1"; "tick 2"; "tick 3"; "done" ]
    (Ops5_loop.output interp)

let test_refraction () =
  (* without refraction this would loop forever *)
  let _, interp =
    make_interp
      {|
(literalize fact name)
(p note (fact ^name <n>) --> (write saw <n>))
|}
  in
  ignore (Ops5_loop.add_wme interp ~cls:"fact" [ ("name", v "x") ]);
  let reason, fired = Ops5_loop.run interp in
  Alcotest.(check bool) "quiescent" true (reason = Ops5_loop.Quiescent);
  Alcotest.(check int) "fired once" 1 fired

let test_recency_prefers_new_wmes () =
  let _, interp =
    make_interp
      {|
(literalize fact name)
(p note (fact ^name <n>) --> (write saw <n>))
|}
  in
  ignore (Ops5_loop.add_wme interp ~cls:"fact" [ ("name", v "old") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"fact" [ ("name", v "new") ]);
  (match Ops5_loop.select interp with
  | Some inst ->
    let w = Psme_rete.Token.wme inst.Psme_rete.Conflict_set.token 0 in
    Alcotest.(check bool) "most recent timetag selected" true
      (Value.equal (Wme.field w 0) (v "new"))
  | None -> Alcotest.fail "expected a selectable instantiation");
  let _, fired = Ops5_loop.run interp in
  Alcotest.(check int) "both eventually fire" 2 fired;
  Alcotest.(check (list string)) "newest first" [ "saw new"; "saw old" ]
    (Ops5_loop.output interp)

let test_specificity_breaks_ties () =
  (* both productions match the same single wme (same recency); the more
     specific one must fire first *)
  let _, interp =
    make_interp
      {|
(literalize fact name kind)
(p vague (fact ^name <n>) --> (write vague))
(p specific (fact ^name <n> ^kind good) --> (write specific))
|}
  in
  ignore (Ops5_loop.add_wme interp ~cls:"fact" [ ("name", v "x"); ("kind", v "good") ]);
  (match Ops5_loop.select interp with
  | Some inst ->
    Alcotest.(check string) "specific selected" "specific"
      (Sym.name inst.Psme_rete.Conflict_set.prod)
  | None -> Alcotest.fail "expected a selectable instantiation");
  ignore (Ops5_loop.run interp)

let test_remove_action () =
  let _, interp =
    make_interp
      {|
(literalize item name)
(literalize trigger on)
(p consume
  (trigger ^on yes)
  (item ^name <n>)
  -->
  (remove 2)
  (write consumed <n>))
|}
  in
  ignore (Ops5_loop.add_wme interp ~cls:"item" [ ("name", v "i1") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"item" [ ("name", v "i2") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"trigger" [ ("on", v "yes") ]);
  let reason, fired = Ops5_loop.run interp in
  Alcotest.(check bool) "quiescent after consuming both" true
    (reason = Ops5_loop.Quiescent);
  Alcotest.(check int) "two firings" 2 fired;
  Alcotest.(check int) "wm holds only the trigger" 1 (Wm.size (Ops5_loop.wm interp))

let test_monkey_and_bananas () =
  (* the classic: climb on the box under the bananas, then grab them *)
  let _, interp =
    make_interp
      {|
(literalize monkey at on holds)
(literalize thing name at)
(p push-box
  (monkey ^at <p> ^on floor)
  (thing ^name box ^at { <q> <> <p> })
  (thing ^name bananas ^at <r>)
  -->
  (modify 2 thing ^at <r>)
  (write pushed box))
(p walk-to-box
  (monkey ^at <p> ^on floor)
  (thing ^name box ^at <r>)
  (thing ^name bananas ^at <r>)
  -->
  (modify 1 monkey ^at <r>)
  (write walked))
(p climb
  (monkey ^at <r> ^on floor)
  (thing ^name box ^at <r>)
  (thing ^name bananas ^at <r>)
  -->
  (modify 1 monkey ^on box)
  (write climbed))
(p grab
  (monkey ^at <r> ^on box ^holds nil)
  (thing ^name bananas ^at <r>)
  -->
  (modify 1 monkey ^holds bananas)
  (write got-bananas)
  (halt))
|}
  in
  ignore
    (Ops5_loop.add_wme interp ~cls:"monkey"
       [ ("at", v "door"); ("on", v "floor"); ("holds", Value.nil) ]);
  ignore (Ops5_loop.add_wme interp ~cls:"thing" [ ("name", v "box"); ("at", v "window") ]);
  ignore
    (Ops5_loop.add_wme interp ~cls:"thing" [ ("name", v "bananas"); ("at", v "ceiling") ]);
  let reason, _ = Ops5_loop.run interp in
  Alcotest.(check bool) "monkey gets the bananas" true (reason = Ops5_loop.Halted);
  Alcotest.(check string) "last step" "got-bananas"
    (List.nth (Ops5_loop.output interp) (List.length (Ops5_loop.output interp) - 1))

let test_runs_on_sim_engine () =
  let schema = Schema.create () in
  let prods =
    Parser.productions schema
      {|
(literalize counter value)
(literalize succ of is)
(p count-up
  (counter ^value { <n> < 5 })
  (succ ^of <n> ^is <m>)
  -->
  (modify 1 counter ^value <m>))
(p done (counter ^value 5) --> (halt))
|}
  in
  let interp =
    Ops5_loop.create
      ~engine:
        (Engine.Sim_mode
           { Sim.procs = 4; queues = Parallel.Multiple_queues; collect_trace = false })
      schema prods
  in
  for k = 0 to 4 do
    ignore (Ops5_loop.add_wme interp ~cls:"succ" [ ("of", i k); ("is", i (k + 1)) ])
  done;
  ignore (Ops5_loop.add_wme interp ~cls:"counter" [ ("value", i 0) ]);
  let reason, fired = Ops5_loop.run interp in
  Alcotest.(check bool) "halts on the sim engine too" true (reason = Ops5_loop.Halted);
  Alcotest.(check int) "six firings" 6 fired

let test_mea_prefers_first_ce_recency () =
  (* two wmes match the first CE of a rule; LEX and MEA order by
     different keys when the rest of the instantiation is more recent *)
  let src =
    {|
(literalize goal-elem name)
(literalize datum name)
(p act (goal-elem ^name <g>) (datum ^name <d>) --> (write <g> <d>))
|}
  in
  let make strategy =
    let schema = Schema.create () in
    let prods = Parser.productions schema src in
    let interp = Ops5_loop.create ~strategy schema prods in
    (* old goal, then datum, then new goal: under LEX the newest tag
       (new goal) wins; under MEA too — so flip: old goal + new datum vs
       new goal + old datum *)
    ignore (Ops5_loop.add_wme interp ~cls:"goal-elem" [ ("name", v "g-old") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"goal-elem" [ ("name", v "g-new") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"datum" [ ("name", v "d1") ]);
    match Ops5_loop.select interp with
    | Some inst ->
      let w = Psme_rete.Token.wme inst.Psme_rete.Conflict_set.token 0 in
      Value.to_string (Wme.field w 0)
    | None -> "none"
  in
  (* both prefer the newer goal element here *)
  Alcotest.(check string) "lex" "g-new" (make Ops5_loop.Lex);
  Alcotest.(check string) "mea" "g-new" (make Ops5_loop.Mea);
  (* now make the datum newer than one goal but not the other: MEA still
     keys on the goal element *)
  let make2 strategy =
    let schema = Schema.create () in
    let prods = Parser.productions schema src in
    let interp = Ops5_loop.create ~strategy schema prods in
    ignore (Ops5_loop.add_wme interp ~cls:"goal-elem" [ ("name", v "g1") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"datum" [ ("name", v "d-old") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"datum" [ ("name", v "d-new") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"goal-elem" [ ("name", v "g2") ]);
    ignore (Ops5_loop.add_wme interp ~cls:"datum" [ ("name", v "d-mid") ]);
    (* instantiations: (g2, d-mid tag5)... LEX: highest overall vector;
       MEA: among first-CE, g2 (tag 4) beats g1 (tag 1); then LEX *)
    match Ops5_loop.select interp with
    | Some inst ->
      let g = Psme_rete.Token.wme inst.Psme_rete.Conflict_set.token 0 in
      let d = Psme_rete.Token.wme inst.Psme_rete.Conflict_set.token 1 in
      (Value.to_string (Wme.field g 0), Value.to_string (Wme.field d 0))
    | None -> ("none", "none")
  in
  let lg, ld = make2 Ops5_loop.Lex in
  let mg, md = make2 Ops5_loop.Mea in
  Alcotest.(check (pair string string)) "lex picks newest overall" ("g2", "d-mid") (lg, ld);
  Alcotest.(check (pair string string)) "mea keys on the goal element" ("g2", "d-mid") (mg, md)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_blocks_program_file () =
  (* the shipped sample program must parse and run: pick up a block and
     stack it as ordered *)
  let src = read_file "../programs/blocks.ops5" in
  let schema = Schema.create () in
  let prods = Parser.productions schema src in
  let interp = Ops5_loop.create schema prods in
  ignore (Ops5_loop.add_wme interp ~cls:"hand" [ ("state", v "free") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"block"
            [ ("name", v "b1"); ("color", v "blue"); ("state", v "table") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"block"
            [ ("name", v "b2"); ("color", v "red"); ("state", v "table") ]);
  ignore (Ops5_loop.add_wme interp ~cls:"order" [ ("move", v "b1"); ("onto", v "b2") ]);
  let reason, _fired = Ops5_loop.run interp in
  Alcotest.(check bool) "quiescent" true (reason = Ops5_loop.Quiescent);
  let out = Ops5_loop.output interp in
  Alcotest.(check bool) "picked up b1" true (List.mem "picked up b1" out);
  Alcotest.(check bool) "stacked b1 onto b2" true (List.mem "stacked b1 onto b2" out)

let suite =
  [
    Alcotest.test_case "count to three (modify)" `Quick test_count_to_three;
    Alcotest.test_case "refraction" `Quick test_refraction;
    Alcotest.test_case "recency" `Quick test_recency_prefers_new_wmes;
    Alcotest.test_case "specificity" `Quick test_specificity_breaks_ties;
    Alcotest.test_case "remove action" `Quick test_remove_action;
    Alcotest.test_case "monkey and bananas" `Quick test_monkey_and_bananas;
    Alcotest.test_case "ops5 on sim engine" `Quick test_runs_on_sim_engine;
    Alcotest.test_case "MEA strategy" `Quick test_mea_prefers_first_ce_recency;
    Alcotest.test_case "blocks.ops5 program file" `Quick test_blocks_program_file;
  ]
