test/test_harness.ml: Alcotest Experiments List Printf Psme_harness Psme_support
