test/test_soar.ml: Agent Alcotest Chunker Defaults Format List Option Parser Prefs Printf Production Psme_ops5 Psme_soar Psme_support Schema String Sym Value Wme
