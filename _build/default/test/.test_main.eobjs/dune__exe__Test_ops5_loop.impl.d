test/test_ops5_loop.ml: Alcotest Engine List Ops5_loop Parallel Parser Psme_engine Psme_ops5 Psme_rete Psme_support Schema Sim Sym Value Wm Wme
