test/test_workloads.ml: Agent Alcotest Array Cypress Eight_puzzle Fun List Network Parser Printf Production Psme_engine Psme_ops5 Psme_rete Psme_soar Psme_workloads Schema Strips Workload
