test/test_support.ml: Alcotest Array Domain Event_queue Fun Histogram List Printf Psme_support Rng Stats Sym Value Vec
