test/test_ops5.ml: Alcotest Array Cond Fixtures Lexer List Parser Production Psme_ops5 Psme_support Schema Sym Value Wm Wme
