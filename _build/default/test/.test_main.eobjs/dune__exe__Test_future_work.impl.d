test/test_future_work.ml: Agent Alcotest Diagnose Eight_puzzle Engine Experiments Io_stream List Parallel Printf Psme_engine Psme_harness Psme_soar Psme_workloads Sim Strips Workload
