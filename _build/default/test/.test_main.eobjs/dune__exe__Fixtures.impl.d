test/fixtures.ml: Array Build Conflict_set List Network Parser Printf Psme_engine Psme_ops5 Psme_rete Psme_support Schema String Sym Task Token Value Wm Wme
