test/test_engine.ml: Alcotest Array Build Cycle Engine Fixtures List Network Parallel Printf Psme_engine Psme_ops5 Psme_rete Psme_support Rng Schema Serial Sim Sym Task Value Wme
