test/test_rete.ml: Alcotest Array Build Conflict_set Fixtures Hashtbl List Memory Network Parser Printf Psme_engine Psme_ops5 Psme_rete Psme_support Sym Token Update Value Wm Wme
