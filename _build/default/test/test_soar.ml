(* Tests of the Soar architecture: preference semantics, decisions,
   tie impasses/subgoals, chunk construction, transfer. *)

open Psme_support
open Psme_ops5
open Psme_soar

let v = Value.sym

(* --- preference semantics ------------------------------------------- *)

let vote ?referent value ptype = { Prefs.value; ptype; referent }

let verdict_t =
  Alcotest.testable
    (fun ppf -> function
      | Prefs.Winner x -> Format.fprintf ppf "Winner %s" (Value.to_string x)
      | Prefs.No_candidates -> Format.fprintf ppf "No_candidates"
      | Prefs.Tie xs ->
        Format.fprintf ppf "Tie [%s]" (String.concat ";" (List.map Value.to_string xs)))
    (fun a b ->
      match a, b with
      | Prefs.Winner x, Prefs.Winner y -> Value.equal x y
      | Prefs.No_candidates, Prefs.No_candidates -> true
      | Prefs.Tie xs, Prefs.Tie ys ->
        List.length xs = List.length ys && List.for_all2 Value.equal xs ys
      | _ -> false)

let test_prefs_single_acceptable () =
  Alcotest.check verdict_t "single acceptable wins" (Prefs.Winner (v "a"))
    (Prefs.decide [ vote (v "a") Prefs.Acceptable ])

let test_prefs_reject () =
  Alcotest.check verdict_t "reject removes" Prefs.No_candidates
    (Prefs.decide [ vote (v "a") Prefs.Acceptable; vote (v "a") Prefs.Reject ])

let test_prefs_tie () =
  Alcotest.check verdict_t "two acceptables tie"
    (Prefs.Tie [ v "a"; v "b" ])
    (Prefs.decide [ vote (v "a") Prefs.Acceptable; vote (v "b") Prefs.Acceptable ])

let test_prefs_better_resolves () =
  Alcotest.check verdict_t "better prunes" (Prefs.Winner (v "a"))
    (Prefs.decide
       [
         vote (v "a") Prefs.Acceptable;
         vote (v "b") Prefs.Acceptable;
         vote ~referent:(v "b") (v "a") Prefs.Better;
       ])

let test_prefs_better_cycle_stays_tie () =
  Alcotest.check verdict_t "preference cycle leaves both"
    (Prefs.Tie [ v "a"; v "b" ])
    (Prefs.decide
       [
         vote (v "a") Prefs.Acceptable;
         vote (v "b") Prefs.Acceptable;
         vote ~referent:(v "b") (v "a") Prefs.Better;
         vote ~referent:(v "a") (v "b") Prefs.Better;
       ])

let test_prefs_best () =
  Alcotest.check verdict_t "best dominates" (Prefs.Winner (v "b"))
    (Prefs.decide
       [
         vote (v "a") Prefs.Acceptable;
         vote (v "b") Prefs.Acceptable;
         vote (v "b") Prefs.Best;
       ])

let test_prefs_worst_avoided () =
  Alcotest.check verdict_t "worst is a last resort" (Prefs.Winner (v "a"))
    (Prefs.decide
       [
         vote (v "a") Prefs.Acceptable;
         vote (v "b") Prefs.Acceptable;
         vote (v "b") Prefs.Worst;
       ]);
  Alcotest.check verdict_t "lone worst still wins" (Prefs.Winner (v "b"))
    (Prefs.decide [ vote (v "b") Prefs.Acceptable; vote (v "b") Prefs.Worst ])

let test_prefs_indifferent_breaks_tie () =
  Alcotest.check verdict_t "binary indifference picks deterministically"
    (Prefs.Winner (v "a"))
    (Prefs.decide
       [
         vote (v "a") Prefs.Acceptable;
         vote (v "b") Prefs.Acceptable;
         vote ~referent:(v "b") (v "a") Prefs.Indifferent;
       ])

(* --- a tiny counting task ------------------------------------------- *)

let counting_task =
  {|
(sp counting*propose-space
  (goal <g> ^top-goal yes)
  -->
  (make preference ^goal <g> ^role problem-space ^value counting ^type acceptable))

(sp counting*propose-state
  (goal <g> ^problem-space counting)
  -->
  (make state (genatom s) ^count n0)
  (make preference ^goal <g> ^role state ^value (genatom s) ^type acceptable))

(sp counting*propose-inc
  (goal <g> ^problem-space counting ^state <s>)
  (state <s> ^count <c>)
  (succ <t> ^of <c> ^is <n>)
  -->
  (make operator (genatom o) ^name inc ^from <c> ^to <n>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp counting*apply-inc
  (goal <g> ^problem-space counting ^state <s> ^operator <o>)
  (operator <o> ^name inc ^to <n>)
  -->
  (make state (genatom s2) ^count <n>)
  (make preference ^goal <g> ^role state ^value (genatom s2) ^type acceptable)
  (make preference ^goal <g> ^role operator ^value <o> ^type reject))

(sp counting*done
  (goal <g> ^problem-space counting ^state <s>)
  (state <s> ^count n3)
  -->
  (write |counted to| n3)
  (halt))
|}

let make_counting_agent ?(config = Agent.default_config) () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods = Parser.productions schema counting_task in
  let agent = Agent.create ~config schema prods in
  (* successor facts: n0 -> n1 -> n2 -> n3 *)
  List.iter
    (fun (a, b) ->
      let id = Agent.new_id agent "succ" in
      Agent.add_triple agent ~cls:"succ" ~id ~attr:"of" ~value:(v a);
      Agent.add_triple agent ~cls:"succ" ~id ~attr:"is" ~value:(v b))
    [ ("n0", "n1"); ("n1", "n2"); ("n2", "n3") ];
  agent

let test_counting_runs_to_halt () =
  let agent = make_counting_agent () in
  let summary = Agent.run agent in
  Alcotest.(check bool) "halted" true summary.Agent.halted;
  Alcotest.(check bool) "made decisions" true (summary.Agent.decisions >= 4);
  Alcotest.(check (list string)) "output" [ "counted to n3" ] summary.Agent.output

let test_counting_slots () =
  let agent = make_counting_agent () in
  ignore (Agent.run agent);
  let g = Agent.top_goal agent in
  Alcotest.(check bool) "problem space decided" true
    (Agent.slot agent ~goal:g ~role:"problem-space" = Some (v "counting"));
  Alcotest.(check bool) "state decided" true
    (Agent.slot agent ~goal:g ~role:"state" <> None)

(* --- tie impasse, evaluation subgoal, chunking ------------------------ *)

(* Two operators with different scores tie; the subgoal evaluates them
   from score facts; defaults prefer the higher; a chunk is learned. *)
let choice_task =
  {|
(sp choice*propose-space
  (goal <g> ^top-goal yes)
  -->
  (make preference ^goal <g> ^role problem-space ^value choice ^type acceptable))

(sp choice*propose-state
  (goal <g> ^problem-space choice)
  -->
  (make state (genatom s) ^phase pick)
  (make preference ^goal <g> ^role state ^value (genatom s) ^type acceptable))

(sp choice*propose-option
  (goal <g> ^problem-space choice ^state <s>)
  (state <s> ^phase pick)
  (option <x> ^name <n>)
  -->
  (make operator (genatom o) ^option <x>)
  (make preference ^goal <g> ^role operator ^value (genatom o) ^type acceptable))

(sp choice*evaluate-option
  (goal <g2> ^impasse tie ^object <g1> ^item <o>)
  (operator <o> ^option <x>)
  (option <x> ^score <v>)
  -->
  (make evaluation (genatom e) ^object <o> ^value <v>))

(sp choice*apply
  (goal <g> ^problem-space choice ^state <s> ^operator <o>)
  (operator <o> ^option <x>)
  (option <x> ^name <n>)
  -->
  (write chose <n>)
  (halt))
|}

let make_choice_agent ?(config = Agent.default_config) ~scores () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    Parser.productions schema choice_task @ Defaults.productions schema
  in
  let agent = Agent.create ~config schema prods in
  List.iter
    (fun (name, score) ->
      let id = Agent.new_id agent "opt" in
      Agent.add_triple agent ~cls:"option" ~id ~attr:"name" ~value:(v name);
      Agent.add_triple agent ~cls:"option" ~id ~attr:"score" ~value:(Value.int score))
    scores;
  agent

let test_tie_creates_subgoal_and_resolves () =
  let agent = make_choice_agent ~scores:[ ("left", 3); ("right", 7) ] () in
  let summary = Agent.run agent in
  Alcotest.(check bool) "halted" true summary.Agent.halted;
  Alcotest.(check (list string)) "picked the higher score" [ "chose right" ]
    summary.Agent.output

let test_tie_learns_chunk () =
  let agent = make_choice_agent ~scores:[ ("left", 3); ("right", 7) ] () in
  let summary = Agent.run agent in
  Alcotest.(check bool) "built at least one chunk" true
    (List.length summary.Agent.chunks >= 1);
  List.iter
    (fun ci ->
      Alcotest.(check bool) "chunk marked as chunk" true
        ci.Agent.ci_prod.Production.is_chunk;
      Alcotest.(check bool) "chunk has conditions" true (ci.Agent.ci_ces >= 2);
      Alcotest.(check bool) "chunk compiled quickly but measurably" true
        (ci.Agent.ci_compile_ns >= 0))
    summary.Agent.chunks

let test_chunk_transfer_avoids_impasse () =
  (* During-chunking run learns; an after-chunking run on a fresh agent
     with the chunks loaded must reach the same answer with fewer
     decisions and no subgoal. *)
  let first = make_choice_agent ~scores:[ ("left", 3); ("right", 7) ] () in
  let s1 = Agent.run first in
  let chunks = Agent.learned_productions first in
  Alcotest.(check bool) "chunks learned" true (chunks <> []);
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    Parser.productions schema choice_task @ Defaults.productions schema
  in
  let config = { Agent.default_config with Agent.learning = false } in
  let agent2 = Agent.create ~config schema (prods @ chunks) in
  List.iter
    (fun (name, score) ->
      let id = Agent.new_id agent2 "opt" in
      Agent.add_triple agent2 ~cls:"option" ~id ~attr:"name" ~value:(v name);
      Agent.add_triple agent2 ~cls:"option" ~id ~attr:"score" ~value:(Value.int score))
    [ ("left", 3); ("right", 7) ];
  let s2 = Agent.run agent2 in
  Alcotest.(check (list string)) "same answer" [ "chose right" ] s2.Agent.output;
  Alcotest.(check bool)
    (Printf.sprintf "fewer decisions after chunking (%d < %d)" s2.Agent.decisions
       s1.Agent.decisions)
    true
    (s2.Agent.decisions < s1.Agent.decisions);
  Alcotest.(check int) "no new chunks without learning" 0
    (List.length s2.Agent.chunks)

let test_update_phase_recorded () =
  let agent = make_choice_agent ~scores:[ ("left", 3); ("right", 7) ] () in
  let summary = Agent.run agent in
  let batches = List.length summary.Agent.update_stats in
  let chunks = List.length summary.Agent.chunks in
  Alcotest.(check bool) "at least one update batch" true (chunks = 0 || batches >= 1);
  Alcotest.(check bool) "no more batches than chunks" true (batches <= chunks)

let test_stall_detection () =
  (* No productions at all: the agent quiesces with nothing to decide. *)
  let schema = Schema.create () in
  let agent = Agent.create schema [] in
  let summary = Agent.run agent in
  Alcotest.(check bool) "stalled" true summary.Agent.stalled;
  Alcotest.(check bool) "not halted" false summary.Agent.halted

(* --- chunker unit tests ----------------------------------------------- *)

let test_backtrace_grounds () =
  let mk tag = Wme.make ~cls:(Sym.intern "x") ~fields:[||] ~timetag:tag in
  let g1 = mk 1 and g2 = mk 2 and sub1 = mk 10 and sub2 = mk 11 and _res_seed = mk 20 in
  let levels = [ (1, 1); (2, 1); (10, 2); (11, 2); (20, 2) ] in
  let creators =
    [
      (20, { Chunker.c_conds = [ sub1; g1 ]; c_level = 2 });
      (10, { Chunker.c_conds = [ g2; sub2 ]; c_level = 2 });
      (11, { Chunker.c_conds = [ g1 ]; c_level = 2 });
    ]
  in
  let grounds =
    Chunker.backtrace
      ~creator_of:(fun w -> List.assoc_opt w.Wme.timetag creators)
      ~level_of:(fun w -> List.assoc w.Wme.timetag levels)
      ~target_level:1
      ~seeds:[ sub1; g1 ]
  in
  Alcotest.(check (list int)) "grounds are the level-1 wmes, deduplicated"
    [ 1; 2 ]
    (List.map (fun w -> w.Wme.timetag) grounds)

let test_chunk_build_variablizes () =
  let schema = Schema.create () in
  Schema.declare schema "state" Psme_ops5.Parser.triple_fields;
  let s1 = Value.sym "s1" and b7 = Value.sym "b7" in
  let w1 =
    Wme.make ~cls:(Sym.intern "state")
      ~fields:[| s1; Value.sym "binding"; b7 |]
      ~timetag:1
  in
  let w2 =
    Wme.make ~cls:(Sym.intern "state")
      ~fields:[| b7; Value.sym "tile"; Value.int 3 |]
      ~timetag:2
  in
  let is_id v = Value.equal v s1 || Value.equal v b7 in
  let chunk =
    Chunker.build schema ~is_id ~name:(Sym.intern "chunk-test")
      ~grounds:[ w1; w2 ]
      ~results:[ (Sym.intern "state", [| s1; Value.sym "good"; Value.sym "yes" |]) ]
  in
  match chunk with
  | None -> Alcotest.fail "chunk should build"
  | Some p ->
    Alcotest.(check int) "two conditions" 2 (Production.num_ces p);
    (* s1 and b7 became variables, shared across conditions *)
    Alcotest.(check int) "two variables" 2 (List.length (Production.bound_vars p))

let test_chunk_duplicate_canonical () =
  let schema = Schema.create () in
  Schema.declare schema "state" Psme_ops5.Parser.triple_fields;
  let mk id tag =
    Wme.make ~cls:(Sym.intern "state")
      ~fields:[| Value.sym id; Value.sym "p"; Value.int 1 |]
      ~timetag:tag
  in
  let build name id tag =
    Chunker.build schema
      ~is_id:(fun v -> Value.equal v (Value.sym id))
      ~name:(Sym.intern name) ~grounds:[ mk id tag ]
      ~results:[ (Sym.intern "state", [| Value.sym id; Value.sym "q"; Value.int 2 |]) ]
    |> Option.get
  in
  let c1 = build "chunk-a" "s1" 1 in
  let c2 = build "chunk-b" "s9" 2 in
  Alcotest.(check string) "alpha-equivalent chunks share canonical form"
    (Chunker.canonical_form schema c1)
    (Chunker.canonical_form schema c2)

let suite =
  [
    Alcotest.test_case "prefs: single acceptable" `Quick test_prefs_single_acceptable;
    Alcotest.test_case "prefs: reject" `Quick test_prefs_reject;
    Alcotest.test_case "prefs: tie" `Quick test_prefs_tie;
    Alcotest.test_case "prefs: better resolves" `Quick test_prefs_better_resolves;
    Alcotest.test_case "prefs: better cycle" `Quick test_prefs_better_cycle_stays_tie;
    Alcotest.test_case "prefs: best" `Quick test_prefs_best;
    Alcotest.test_case "prefs: worst" `Quick test_prefs_worst_avoided;
    Alcotest.test_case "prefs: indifferent" `Quick test_prefs_indifferent_breaks_tie;
    Alcotest.test_case "counting runs to halt" `Quick test_counting_runs_to_halt;
    Alcotest.test_case "counting decides slots" `Quick test_counting_slots;
    Alcotest.test_case "tie creates subgoal and resolves" `Quick
      test_tie_creates_subgoal_and_resolves;
    Alcotest.test_case "tie learns chunk" `Quick test_tie_learns_chunk;
    Alcotest.test_case "chunk transfer avoids impasse" `Quick
      test_chunk_transfer_avoids_impasse;
    Alcotest.test_case "update phase recorded" `Quick test_update_phase_recorded;
    Alcotest.test_case "stall detection" `Quick test_stall_detection;
    Alcotest.test_case "backtrace grounds" `Quick test_backtrace_grounds;
    Alcotest.test_case "chunk build variablizes" `Quick test_chunk_build_variablizes;
    Alcotest.test_case "chunk canonical form" `Quick test_chunk_duplicate_canonical;
  ]
