(* Unit tests for the OPS5 language layer: schema, wmes, conditions,
   lexer, parser, working memory. *)

open Psme_support
open Psme_ops5

let test_schema_declare () =
  let s = Schema.create () in
  Schema.declare s "block" [ "name"; "color"; "on" ];
  Alcotest.(check int) "arity" 3 (Schema.arity s (Sym.intern "block"));
  Alcotest.(check int) "field index" 1
    (Schema.field_index s (Sym.intern "block") (Sym.intern "color"));
  Alcotest.(check string) "attr name" "on"
    (Sym.name (Schema.attr_name s (Sym.intern "block") 2));
  Schema.declare s "block" [ "name"; "color"; "on" ] (* same: ok *);
  Alcotest.check_raises "re-declare differently"
    (Invalid_argument "Schema.declare: class block re-declared with different attributes")
    (fun () -> Schema.declare s "block" [ "name" ])

let test_schema_unknown () =
  let s = Schema.create () in
  Alcotest.(check bool) "undeclared" false (Schema.declared s (Sym.intern "nope"));
  (try
     ignore (Schema.arity s (Sym.intern "nope"));
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_wme_contents () =
  let s = Fixtures.schema_with () in
  let wm = Wm.create () in
  let a = Fixtures.add_wme s wm "block" [ ("name", Fixtures.sym "b1") ] in
  let b = Fixtures.add_wme s wm "block" [ ("name", Fixtures.sym "b1") ] in
  Alcotest.(check bool) "same contents" true (Wme.same_contents a b);
  Alcotest.(check bool) "different timetags" false (Wme.equal a b);
  Alcotest.(check bool) "content hash agrees" true (Wme.hash a = Wme.hash b)

let test_wm_add_remove () =
  let s = Fixtures.schema_with () in
  let wm = Wm.create () in
  let w = Fixtures.add_wme s wm "hand" [ ("state", Fixtures.sym "free") ] in
  Alcotest.(check int) "size" 1 (Wm.size wm);
  Alcotest.(check bool) "mem" true (Wm.mem wm w);
  Wm.remove wm w;
  Alcotest.(check int) "size after remove" 0 (Wm.size wm);
  Alcotest.check_raises "double remove" Not_found (fun () -> Wm.remove wm w)

let test_wm_find_same_contents () =
  let s = Fixtures.schema_with () in
  let wm = Wm.create () in
  let w = Fixtures.add_wme s wm "hand" [ ("state", Fixtures.sym "free") ] in
  let found =
    Wm.find_same_contents wm ~cls:(Sym.intern "hand")
      ~fields:(Fixtures.fields s "hand" [ ("state", Fixtures.sym "free") ])
  in
  Alcotest.(check bool) "found" true (found = Some w);
  let missing =
    Wm.find_same_contents wm ~cls:(Sym.intern "hand")
      ~fields:(Fixtures.fields s "hand" [ ("state", Fixtures.sym "busy") ])
  in
  Alcotest.(check bool) "missing" true (missing = None)

(* --- lexer -------------------------------------------------------- *)

let lex src = Array.to_list (Array.map fst (Lexer.tokenize src))

let test_lexer_basic () =
  Alcotest.(check bool) "parens and symbols" true
    (lex "(p foo)" = [ Lexer.LPAREN; Lexer.SYM "p"; Lexer.SYM "foo"; Lexer.RPAREN; Lexer.EOF ])

let test_lexer_variables_and_relations () =
  Alcotest.(check bool) "var" true (lex "<x>" = [ Lexer.VAR "x"; Lexer.EOF ]);
  Alcotest.(check bool) "ne" true (lex "<>" = [ Lexer.REL Cond.Ne; Lexer.EOF ]);
  Alcotest.(check bool) "le" true (lex "<=" = [ Lexer.REL Cond.Le; Lexer.EOF ]);
  Alcotest.(check bool) "lt" true (lex "< 3" = [ Lexer.REL Cond.Lt; Lexer.INT 3; Lexer.EOF ]);
  Alcotest.(check bool) "ge" true (lex ">=" = [ Lexer.REL Cond.Ge; Lexer.EOF ]);
  Alcotest.(check bool) "disjunction" true
    (lex "<< red blue >>"
    = [ Lexer.DISJ_OPEN; Lexer.SYM "red"; Lexer.SYM "blue"; Lexer.DISJ_CLOSE; Lexer.EOF ])

let test_lexer_numbers () =
  Alcotest.(check bool) "int" true (lex "42" = [ Lexer.INT 42; Lexer.EOF ]);
  Alcotest.(check bool) "negative" true (lex "-42" = [ Lexer.INT (-42); Lexer.EOF ]);
  Alcotest.(check bool) "float" true (lex "2.5" = [ Lexer.FLOAT 2.5; Lexer.EOF ])

let test_lexer_arrow_dash_symbols () =
  Alcotest.(check bool) "arrow" true (lex "-->" = [ Lexer.ARROW; Lexer.EOF ]);
  Alcotest.(check bool) "dash before paren" true
    (lex "-(block)" = [ Lexer.DASH; Lexer.LPAREN; Lexer.SYM "block"; Lexer.RPAREN; Lexer.EOF ]);
  Alcotest.(check bool) "hyphenated symbol" true
    (lex "eight-puzzle" = [ Lexer.SYM "eight-puzzle"; Lexer.EOF ]);
  Alcotest.(check bool) "caret attr" true
    (lex "^problem-space" = [ Lexer.CARET "problem-space"; Lexer.EOF ])

let test_lexer_strings_comments () =
  Alcotest.(check bool) "ops5 string" true (lex "|hi there|" = [ Lexer.STR "hi there"; Lexer.EOF ]);
  Alcotest.(check bool) "comment skipped" true (lex "; nothing\n42" = [ Lexer.INT 42; Lexer.EOF ])

(* --- parser ------------------------------------------------------- *)

let test_parse_graspable () =
  let s = Fixtures.schema_with () in
  let p = Parser.parse_production s Fixtures.graspable_src in
  Alcotest.(check string) "name" "blue-block-is-graspable" (Sym.name p.Production.name);
  Alcotest.(check int) "num CEs" 3 (Production.num_ces p);
  Alcotest.(check (list string)) "bound vars" [ "x" ] (Production.bound_vars p);
  match p.Production.lhs with
  | [ Cond.Pos _; Cond.Neg _; Cond.Pos _ ] -> ()
  | _ -> Alcotest.fail "expected pos/neg/pos structure"

let test_parse_predicates_disjunctions () =
  let s = Fixtures.schema_with () in
  let p =
    Parser.parse_production s
      {|(p preds
          (block ^name <x> ^color << red blue >>)
          (block ^name <> <x> ^on <x> ^state { <s> <> held })
          -->
          (write <x> <s>))|}
  in
  Alcotest.(check int) "two CEs" 2 (Production.num_ces p);
  Alcotest.(check (list string)) "binds x then s" [ "x"; "s" ] (Production.bound_vars p)

let test_parse_ncc () =
  let s = Fixtures.schema_with () in
  let p =
    Parser.parse_production s
      {|(p conj-neg
          (hand ^state free)
          -{(block ^name <b> ^color blue) (block ^on <b>)}
          -->
          (write ok))|}
  in
  (match p.Production.lhs with
  | [ Cond.Pos _; Cond.Ncc [ Cond.Pos _; Cond.Pos _ ] ] -> ()
  | _ -> Alcotest.fail "expected NCC group");
  Alcotest.(check int) "CE count descends into NCC" 3 (Production.num_ces p)

let test_parse_errors () =
  let s = Fixtures.schema_with () in
  let expect_parse_error src =
    try
      ignore (Parser.parse_production s src);
      Alcotest.fail "expected Parse_error"
    with Parser.Parse_error _ -> ()
  in
  expect_parse_error "(p bad (nonexistent ^a 1) --> (halt))";
  expect_parse_error "(p bad (block ^nonexistent 1) --> (halt))";
  expect_parse_error "(p bad (block ^name x) --> (make nonexistent ^a 1))";
  (* RHS with unbound variable *)
  expect_parse_error "(p bad (block ^name b1) --> (write <nope>))";
  (* first condition negated *)
  expect_parse_error "(p bad -(block ^name b1) (hand ^state free) --> (halt))"

let test_parse_literalize_inline () =
  let s = Schema.create () in
  let forms =
    Parser.parse_program s
      {|(literalize thing size)
        (p big (thing ^size > 10) --> (halt))|}
  in
  Alcotest.(check int) "two forms" 2 (List.length forms);
  Alcotest.(check bool) "class declared" true (Schema.declared s (Sym.intern "thing"))

let test_parse_sp_sugar () =
  let s = Schema.create () in
  let p =
    Parser.parse_production s
      {|(sp monitor
          (goal <g> ^problem-space <p> ^state <s>)
          (state <s> ^object <o>)
          -->
          (make state <s> ^marked <o>))|}
  in
  (* (goal ...) expands into 2 CEs, (state ...) into 1. *)
  Alcotest.(check int) "expanded CEs" 3 (Production.num_ces p);
  Alcotest.(check int) "triple arity" 3 (Schema.arity s (Sym.intern "goal"));
  Alcotest.(check (list string)) "vars" [ "g"; "p"; "s"; "o" ] (Production.bound_vars p)

let test_parse_sp_negation_conjunctive () =
  let s = Schema.create () in
  let p =
    Parser.parse_production s
      {|(sp neg
          (goal <g> ^state <s>)
          -(state <s> ^blocked yes ^frozen yes)
          -->
          (make goal <g> ^ok yes))|}
  in
  match p.Production.lhs with
  | [ Cond.Pos _; Cond.Ncc [ Cond.Pos _; Cond.Pos _ ] ] -> ()
  | _ -> Alcotest.fail "multi-attribute negated sugar CE should become an NCC"

let test_parse_sp_single_negation () =
  let s = Schema.create () in
  let p =
    Parser.parse_production s
      {|(sp neg1
          (goal <g> ^state <s>)
          -(state <s> ^blocked yes)
          -->
          (make goal <g> ^ok yes))|}
  in
  match p.Production.lhs with
  | [ Cond.Pos _; Cond.Neg _ ] -> ()
  | _ -> Alcotest.fail "single-attribute negated sugar CE should stay a Neg"

let test_production_validation () =
  let s = Fixtures.schema_with () in
  (* remove index out of range *)
  try
    ignore (Parser.parse_production s "(p bad (block ^name b1) --> (remove 2))");
    Alcotest.fail "expected failure"
  with Parser.Parse_error _ -> ()

let test_positive_ce_indexing () =
  let s = Fixtures.schema_with () in
  let p = Parser.parse_production s Fixtures.graspable_src in
  let ce1 = Production.positive_ce p 1 in
  Alcotest.(check string) "first positive CE class" "block" (Sym.name ce1.Cond.cls);
  let ce2 = Production.positive_ce p 2 in
  Alcotest.(check string) "second positive CE class (negation skipped)" "hand"
    (Sym.name ce2.Cond.cls)

let test_cond_eval_relation () =
  let open Cond in
  Alcotest.(check bool) "int lt" true (eval_relation Lt (Value.int 2) (Value.int 3));
  Alcotest.(check bool) "int ge" false (eval_relation Ge (Value.int 2) (Value.int 3));
  Alcotest.(check bool) "float/int mix" true
    (eval_relation Gt (Value.Float 3.5) (Value.int 3));
  Alcotest.(check bool) "ne syms" true
    (eval_relation Ne (Value.sym "a") (Value.sym "b"))

let test_count_ces_nested () =
  let s = Fixtures.schema_with () in
  let p =
    Parser.parse_production s
      {|(p nested
          (hand ^state free)
          -{(block ^name <b>) -{(block ^on <b>) (block ^color blue)}}
          -->
          (halt))|}
  in
  Alcotest.(check int) "nested NCC counting" 4 (Production.num_ces p)

let suite =
  [
    Alcotest.test_case "schema declare" `Quick test_schema_declare;
    Alcotest.test_case "schema unknown" `Quick test_schema_unknown;
    Alcotest.test_case "wme contents vs identity" `Quick test_wme_contents;
    Alcotest.test_case "wm add/remove" `Quick test_wm_add_remove;
    Alcotest.test_case "wm find_same_contents" `Quick test_wm_find_same_contents;
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer vars/relations" `Quick test_lexer_variables_and_relations;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer arrow/dash/symbols" `Quick test_lexer_arrow_dash_symbols;
    Alcotest.test_case "lexer strings/comments" `Quick test_lexer_strings_comments;
    Alcotest.test_case "parse graspable" `Quick test_parse_graspable;
    Alcotest.test_case "parse predicates/disjunctions" `Quick test_parse_predicates_disjunctions;
    Alcotest.test_case "parse NCC" `Quick test_parse_ncc;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse literalize inline" `Quick test_parse_literalize_inline;
    Alcotest.test_case "parse sp sugar" `Quick test_parse_sp_sugar;
    Alcotest.test_case "parse sp conjunctive negation" `Quick test_parse_sp_negation_conjunctive;
    Alcotest.test_case "parse sp single negation" `Quick test_parse_sp_single_negation;
    Alcotest.test_case "production validation" `Quick test_production_validation;
    Alcotest.test_case "positive CE indexing" `Quick test_positive_ce_indexing;
    Alcotest.test_case "relation evaluation" `Quick test_cond_eval_relation;
    Alcotest.test_case "nested NCC CE count" `Quick test_count_ces_nested;
  ]
