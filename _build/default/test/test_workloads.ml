(* Workload tests: the three measured tasks must have the paper's
   production counts, run to their goals, learn chunks with the right
   structural profile, and transfer. *)

open Psme_ops5
open Psme_rete
open Psme_soar
open Psme_workloads

let all = [ Eight_puzzle.workload; Strips.workload; Cypress.workload ]

let test_production_counts () =
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "%s has the paper's production count" w.Workload.name)
        w.Workload.paper_productions
        (Workload.production_count w))
    all

let test_eight_puzzle_solves () =
  let agent =
    Eight_puzzle.make_agent ~instance:(Eight_puzzle.scrambled ~seed:3 ~moves:6) ()
  in
  let s = Agent.run agent in
  Alcotest.(check bool) "halted" true s.Agent.halted;
  Alcotest.(check bool) "solved" true (Eight_puzzle.solved agent);
  Alcotest.(check bool) "learned chunks" true (s.Agent.chunks <> [])

let test_eight_puzzle_scramble_reachable () =
  (* a scrambled board is a permutation of the goal board *)
  let { Eight_puzzle.board } = Eight_puzzle.scrambled ~seed:99 ~moves:30 in
  let sorted = Array.copy board in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation of 0..8" true
    (sorted = Array.init 9 Fun.id)

let test_strips_solves () =
  let agent = Strips.make_agent () in
  let s = Agent.run agent in
  Alcotest.(check bool) "halted" true s.Agent.halted;
  Alcotest.(check bool) "box delivered" true (Strips.solved agent);
  (* the plan must open the closed door before pushing through it *)
  let plan = List.filter (fun l -> l <> "strips done") s.Agent.output in
  let index p =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if p x then i else go (i + 1) rest
    in
    go 0 plan
  in
  let open_idx = index (fun l -> l = "open-door d45") in
  let push_idx = index (fun l -> l = "push-thru box1 d45") in
  Alcotest.(check bool) "door opened" true (open_idx >= 0);
  Alcotest.(check bool) "box pushed through it afterwards" true
    (push_idx > open_idx)

let test_strips_monitor_long_chain () =
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let p = Parser.parse_production schema (Strips.monitor_production Strips.default_layout) in
  Alcotest.(check bool)
    (Printf.sprintf "monitor has a long chain (%d CEs >= 40)" (Production.num_ces p))
    true
    (Production.num_ces p >= 40)

let test_cypress_derives_quicksort () =
  let agent = Cypress.make_agent () in
  let s = Agent.run agent in
  Alcotest.(check bool) "halted" true s.Agent.halted;
  let derivation = Cypress.derivation agent in
  List.iter
    (fun (step, want) ->
      match List.assoc_opt step derivation with
      | Some got ->
        Alcotest.(check string) (Printf.sprintf "step %s" step) want got
      | None -> Alcotest.fail (Printf.sprintf "step %s missing from derivation" step))
    Cypress.preferred

let test_cypress_chunks_are_large () =
  let agent = Cypress.make_agent () in
  let s = Agent.run agent in
  let chunks = s.Agent.chunks in
  Alcotest.(check bool) "chunks built" true (chunks <> []);
  let avg =
    float_of_int (List.fold_left (fun a c -> a + c.Agent.ci_ces) 0 chunks)
    /. float_of_int (List.length chunks)
  in
  Alcotest.(check bool)
    (Printf.sprintf "cypress chunks are large (avg %.1f CEs >= 30)" avg)
    true (avg >= 30.)

let test_chunks_bigger_than_task_productions () =
  (* Table 5-1's headline: chunks have 2-3x the CEs of the hand-written
     productions. *)
  List.iter
    (fun w ->
      let agent = w.Workload.make () in
      let s = Agent.run agent in
      if s.Agent.chunks <> [] then begin
        let initial =
          Network.productions (Agent.network agent)
          |> List.filter (fun pm -> not pm.Network.meta_production.Production.is_chunk)
        in
        let avg_task =
          float_of_int
            (List.fold_left
               (fun a pm -> a + Production.num_ces pm.Network.meta_production)
               0 initial)
          /. float_of_int (List.length initial)
        in
        let avg_chunk =
          float_of_int (List.fold_left (fun a c -> a + c.Agent.ci_ces) 0 s.Agent.chunks)
          /. float_of_int (List.length s.Agent.chunks)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: chunks (%.1f CEs) > productions (%.1f CEs)"
             w.Workload.name avg_chunk avg_task)
          true
          (avg_chunk > avg_task)
      end)
    all

let test_transfer_all_tasks () =
  List.iter
    (fun w ->
      let first = w.Workload.make () in
      let s1 = Agent.run first in
      let chunks = Agent.learned_productions first in
      let config = { Agent.default_config with Agent.learning = false } in
      let second = w.Workload.make ~config ~extra:chunks () in
      let s2 = Agent.run second in
      Alcotest.(check bool)
        (Printf.sprintf "%s: after-run still reaches the goal" w.Workload.name)
        true s2.Agent.halted;
      Alcotest.(check bool)
        (Printf.sprintf "%s: fewer decisions after chunking (%d < %d)" w.Workload.name
           s2.Agent.decisions s1.Agent.decisions)
        true
        (s2.Agent.decisions < s1.Agent.decisions))
    all

let test_chunk_installation_is_fast () =
  (* Table 5-2's point: incremental compilation must not be a serial
     bottleneck. Bound: < 2ms per chunk of real time. *)
  let agent = Eight_puzzle.make_agent () in
  let s = Agent.run agent in
  List.iter
    (fun (c : Agent.chunk_info) ->
      Alcotest.(check bool) "chunk compiles in < 2ms" true
        (c.Agent.ci_compile_ns < 2_000_000))
    s.Agent.chunks

let test_sharing_reduces_new_nodes () =
  let run share =
    let config =
      {
        Agent.default_config with
        Agent.net_config = { Network.default_config with Network.share };
      }
    in
    let agent = Eight_puzzle.make_agent ~config () in
    let s = Agent.run agent in
    List.fold_left (fun a c -> a + c.Agent.ci_new_nodes) 0 s.Agent.chunks
  in
  let shared = run true and unshared = run false in
  Alcotest.(check bool)
    (Printf.sprintf "sharing creates fewer nodes (%d < %d)" shared unshared)
    true (shared < unshared)

let test_workloads_under_sim_engine () =
  (* The full Soar loop must run unchanged on the simulated engine and
     produce the same decision count as the serial engine. *)
  let serial = Eight_puzzle.make_agent () in
  let s_serial = Agent.run serial in
  let config =
    {
      Agent.default_config with
      Agent.engine_mode =
        Psme_engine.Engine.Sim_mode
          { Psme_engine.Sim.procs = 8;
            queues = Psme_engine.Parallel.Multiple_queues;
            collect_trace = false };
    }
  in
  let sim = Eight_puzzle.make_agent ~config () in
  let s_sim = Agent.run sim in
  Alcotest.(check int) "same decisions on sim engine" s_serial.Agent.decisions
    s_sim.Agent.decisions;
  Alcotest.(check bool) "same halt" true (s_serial.Agent.halted = s_sim.Agent.halted)

let test_bilinear_strips_equivalent () =
  (* Compiling Strips with bilinear networks must not change behaviour. *)
  let config =
    {
      Agent.default_config with
      Agent.net_config =
        { Network.default_config with Network.bilinear = true; bilinear_min_ces = 15 };
    }
  in
  let lin = Strips.make_agent () in
  let bil = Strips.make_agent ~config () in
  let s_lin = Agent.run lin and s_bil = Agent.run bil in
  Alcotest.(check int) "same decisions" s_lin.Agent.decisions s_bil.Agent.decisions;
  Alcotest.(check bool) "both solve" true (Strips.solved lin && Strips.solved bil)

let suite =
  [
    Alcotest.test_case "production counts match paper" `Quick test_production_counts;
    Alcotest.test_case "eight-puzzle solves" `Quick test_eight_puzzle_solves;
    Alcotest.test_case "scramble is reachable" `Quick test_eight_puzzle_scramble_reachable;
    Alcotest.test_case "strips solves with door opening" `Quick test_strips_solves;
    Alcotest.test_case "strips monitor long chain" `Quick test_strips_monitor_long_chain;
    Alcotest.test_case "cypress derives quicksort" `Quick test_cypress_derives_quicksort;
    Alcotest.test_case "cypress chunks large" `Quick test_cypress_chunks_are_large;
    Alcotest.test_case "chunks bigger than task productions" `Quick
      test_chunks_bigger_than_task_productions;
    Alcotest.test_case "transfer on all tasks" `Slow test_transfer_all_tasks;
    Alcotest.test_case "chunk installation fast" `Quick test_chunk_installation_is_fast;
    Alcotest.test_case "sharing reduces new nodes" `Quick test_sharing_reduces_new_nodes;
    Alcotest.test_case "soar loop on sim engine" `Quick test_workloads_under_sim_engine;
    Alcotest.test_case "bilinear strips equivalent" `Slow test_bilinear_strips_equivalent;
  ]
