(* Tests of the paper's §7 future-work features, which this repository
   implements: asynchronous elaboration and automatic low-speedup
   diagnosis (the bilinear networks are covered in test_rete /
   test_workloads). *)

open Psme_soar
open Psme_engine
open Psme_workloads
open Psme_harness

let sim procs =
  Engine.Sim_mode { Sim.procs; queues = Parallel.Multiple_queues; collect_trace = false }

let run_task (w : Workload.t) ~async ~engine_mode =
  let config =
    {
      Agent.default_config with
      Agent.learning = false;
      async_elaboration = async;
      engine_mode;
    }
  in
  let agent = w.Workload.make ~config () in
  (agent, Agent.run agent)

let test_async_same_outcome () =
  (* asynchronous firing must not change what the agent decides *)
  List.iter
    (fun (w : Workload.t) ->
      let _, sync = run_task w ~async:false ~engine_mode:Engine.Serial_mode in
      let _, asyn = run_task w ~async:true ~engine_mode:Engine.Serial_mode in
      Alcotest.(check int)
        (Printf.sprintf "%s: same decisions" w.Workload.name)
        sync.Agent.decisions asyn.Agent.decisions;
      Alcotest.(check bool)
        (Printf.sprintf "%s: same halt" w.Workload.name)
        sync.Agent.halted asyn.Agent.halted)
    [ Eight_puzzle.workload; Strips.workload ]

let test_async_fewer_episodes () =
  (* an elaboration phase becomes one episode instead of many cycles *)
  let _, sync = run_task Eight_puzzle.workload ~async:false ~engine_mode:Engine.Serial_mode in
  let _, asyn = run_task Eight_puzzle.workload ~async:true ~engine_mode:Engine.Serial_mode in
  Alcotest.(check bool)
    (Printf.sprintf "fewer engine episodes (%d < %d)" asyn.Agent.elab_cycles
       sync.Agent.elab_cycles)
    true
    (asyn.Agent.elab_cycles < sync.Agent.elab_cycles)

let test_async_on_sim () =
  let _, sync = run_task Eight_puzzle.workload ~async:false ~engine_mode:(sim 8) in
  let _, asyn = run_task Eight_puzzle.workload ~async:true ~engine_mode:(sim 8) in
  Alcotest.(check int) "same decisions on the simulator" sync.Agent.decisions
    asyn.Agent.decisions;
  Alcotest.(check bool) "both halt" true (sync.Agent.halted && asyn.Agent.halted)

let test_async_goal_test_not_premature () =
  (* the NCC goal test must still only fire when the goal really holds:
     a solved run's final state must be the goal configuration *)
  let agent, asyn = run_task Eight_puzzle.workload ~async:true ~engine_mode:Engine.Serial_mode in
  Alcotest.(check bool) "halted" true asyn.Agent.halted;
  Alcotest.(check bool) "and genuinely solved" true (Eight_puzzle.solved agent)

let test_async_harness_rows () =
  Experiments.clear_cache ();
  let rows = Experiments.future_async_elaboration () in
  Alcotest.(check int) "three tasks" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s keeps its outcome under async" r.Experiments.a_task)
        true r.Experiments.a_same_outcome)
    rows

let test_diagnose_eight_puzzle () =
  let d = Diagnose.diagnose ~procs:11 Eight_puzzle.workload in
  Alcotest.(check bool) "saw cycles" true (d.Diagnose.d_cycles > 50);
  Alcotest.(check bool) "small cycles detected" true (d.Diagnose.d_small_cycles > 0);
  Alcotest.(check bool) "recommends async (small cycles dominate)" true
    d.Diagnose.d_recommend_async;
  Alcotest.(check bool) "does not recommend bilinear (no deep chains)" false
    d.Diagnose.d_recommend_bilinear

let test_diagnose_strips_finds_long_chain () =
  let d = Diagnose.diagnose ~procs:11 Strips.workload in
  (match d.Diagnose.d_deepest with
  | (name, depth) :: _ ->
    Alcotest.(check string) "deepest chain is the monitor" "monitor-strips-state" name;
    Alcotest.(check bool) "depth > 40" true (depth > 40)
  | [] -> Alcotest.fail "no chains ranked");
  Alcotest.(check bool) "recommends bilinear" true d.Diagnose.d_recommend_bilinear

let test_diagnose_apply_improves () =
  let d = Diagnose.diagnose ~procs:13 Strips.workload in
  let t = Diagnose.apply_recommendations Strips.workload d in
  Alcotest.(check bool) "applied something" true (t.Diagnose.t_applied <> []);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive change improves speedup (%.2f -> %.2f)"
       t.Diagnose.t_before t.Diagnose.t_after)
    true
    (t.Diagnose.t_after > t.Diagnose.t_before)

(* --- the §7 I/O module --------------------------------------------------- *)

let test_io_stream_runs () =
  let params = { Io_stream.default_params with Io_stream.ticks = 10 } in
  let agent = Io_stream.make_agent ~params () in
  let s = Agent.run agent in
  Alcotest.(check int) "ran the requested ticks" 10 s.Agent.decisions;
  Alcotest.(check bool) "did not stall (input keeps it alive)" false s.Agent.stalled;
  Alcotest.(check bool) "raised alerts" true (Io_stream.alerts agent > 0)

let test_io_stream_deterministic () =
  let go () =
    let agent = Io_stream.make_agent () in
    ignore (Agent.run agent);
    Io_stream.alerts agent
  in
  Alcotest.(check int) "same seed, same alerts" (go ()) (go ())

let test_io_rate_raises_parallelism () =
  let speedup rate =
    let params = { Io_stream.default_params with Io_stream.rate; ticks = 15 } in
    let config =
      {
        Agent.default_config with
        Agent.engine_mode =
          Engine.Sim_mode
            { Sim.procs = 13; queues = Parallel.Multiple_queues; collect_trace = false };
      }
    in
    let agent = Io_stream.make_agent ~config ~params () in
    let s = Agent.run agent in
    let ser = List.fold_left (fun a c -> a +. c.Psme_engine.Cycle.serial_us) 0. s.Agent.match_stats in
    let mk = List.fold_left (fun a c -> a +. c.Psme_engine.Cycle.makespan_us) 0. s.Agent.match_stats in
    ser /. mk
  in
  let slow = speedup 1 and fast = speedup 8 in
  Alcotest.(check bool)
    (Printf.sprintf "higher input rate, higher speedup (%.2f -> %.2f)" slow fast)
    true (fast > slow)

let suite =
  [
    Alcotest.test_case "async: same outcome" `Slow test_async_same_outcome;
    Alcotest.test_case "async: fewer episodes" `Quick test_async_fewer_episodes;
    Alcotest.test_case "async: sim engine" `Quick test_async_on_sim;
    Alcotest.test_case "async: NCC goal test sound" `Quick test_async_goal_test_not_premature;
    Alcotest.test_case "async: harness rows" `Slow test_async_harness_rows;
    Alcotest.test_case "diagnose: eight-puzzle" `Quick test_diagnose_eight_puzzle;
    Alcotest.test_case "diagnose: strips long chain" `Quick test_diagnose_strips_finds_long_chain;
    Alcotest.test_case "diagnose: apply improves" `Slow test_diagnose_apply_improves;
    Alcotest.test_case "io: streaming input runs" `Quick test_io_stream_runs;
    Alcotest.test_case "io: deterministic" `Quick test_io_stream_deterministic;
    Alcotest.test_case "io: rate raises parallelism" `Quick test_io_rate_raises_parallelism;
  ]
