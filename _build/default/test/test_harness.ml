(* Integration tests of the experiment harness: the paper's headline
   shapes must hold in the regenerated tables (the full speedup sweeps
   run in the bench harness; here we check the cheap table experiments
   and the bilinear report). *)

open Psme_harness

let test_table_6_1_shapes () =
  let rows = Experiments.table_6_1 () in
  Alcotest.(check int) "three tasks" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: positive uniprocessor time" r.Experiments.r61_task)
        true
        (r.Experiments.r61_uniproc_s > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "%s: per-task cost in the paper's band (%.0f us)"
           r.Experiments.r61_task r.Experiments.r61_us_per_task)
        true
        (r.Experiments.r61_us_per_task > 100. && r.Experiments.r61_us_per_task < 1000.))
    rows;
  (* Cypress is the largest task, as in the paper *)
  let time name =
    (List.find (fun r -> r.Experiments.r61_task = name) rows).Experiments.r61_uniproc_s
  in
  Alcotest.(check bool) "cypress dominates" true
    (time "cypress" > time "eight-puzzle" && time "cypress" > time "strips")

let test_table_5_1_shapes () =
  let rows = Experiments.table_5_1 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: chunks bigger than task productions (%.1f > %.1f)"
           r.Experiments.r51_task r.Experiments.r51_chunk_ces r.Experiments.r51_task_ces)
        true
        (r.Experiments.r51_chunk_ces > r.Experiments.r51_task_ces);
      Alcotest.(check bool)
        (Printf.sprintf "%s: plausible bytes per two-input node (%.0f)"
           r.Experiments.r51_task r.Experiments.r51_bytes_per_two_input)
        true
        (r.Experiments.r51_bytes_per_two_input > 100.
        && r.Experiments.r51_bytes_per_two_input < 500.))
    rows;
  let chunk_ces name =
    (List.find (fun r -> r.Experiments.r51_task = name) rows).Experiments.r51_chunk_ces
  in
  Alcotest.(check bool) "cypress chunks are the largest" true
    (chunk_ces "cypress" > chunk_ces "eight-puzzle"
    && chunk_ces "cypress" > chunk_ces "strips")

let test_table_5_2_shapes () =
  let rows = Experiments.table_5_2 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: built chunks" r.Experiments.r52_task)
        true (r.Experiments.r52_chunks > 0);
      (* the deterministic mechanism behind Table 5-2: sharing generates
         less code *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: sharing generates less code (%d < %d bytes)"
           r.Experiments.r52_task r.Experiments.r52_shared_bytes
           r.Experiments.r52_unshared_bytes)
        true
        (r.Experiments.r52_shared_bytes < r.Experiments.r52_unshared_bytes);
      (* sub-millisecond wall times jitter; only catch gross regressions *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: shared compile not grossly slower (%.2f vs %.2f ms)"
           r.Experiments.r52_task r.Experiments.r52_shared_ms
           r.Experiments.r52_unshared_ms)
        true
        (r.Experiments.r52_shared_ms <= (r.Experiments.r52_unshared_ms *. 2.5) +. 0.5))
    rows

let test_bilinear_report () =
  let bl = Experiments.figure_6_8_bilinear () in
  Alcotest.(check string) "production" "monitor-strips-state" bl.Experiments.bl_production;
  Alcotest.(check bool) "long chain" true (bl.Experiments.bl_ces >= 40);
  Alcotest.(check bool)
    (Printf.sprintf "bilinear shortens the chain (%d < %d)"
       bl.Experiments.bl_bilinear_depth bl.Experiments.bl_linear_depth)
    true
    (bl.Experiments.bl_bilinear_depth < bl.Experiments.bl_linear_depth)

let test_histograms_shift_right () =
  (* Figure 6-11 vs 6-12: chunking moves cycle sizes right *)
  let mass_above h cut =
    List.fold_left
      (fun acc (lo, _, _, frac) -> if lo >= cut then acc +. frac else acc)
      0.
      (Psme_support.Histogram.rows h)
  in
  let without = Experiments.figure_6_11 () in
  let after = Experiments.figure_6_12 () in
  let cut = 300. in
  Alcotest.(check bool)
    (Printf.sprintf "more large cycles after chunking (%.2f > %.2f above %.0f)"
       (mass_above after cut) (mass_above without cut) cut)
    true
    (mass_above after cut > mass_above without cut)

let suite =
  [
    Alcotest.test_case "table 6-1 shapes" `Slow test_table_6_1_shapes;
    Alcotest.test_case "table 5-1 shapes" `Slow test_table_5_1_shapes;
    Alcotest.test_case "table 5-2 shapes" `Slow test_table_5_2_shapes;
    Alcotest.test_case "bilinear report" `Slow test_bilinear_report;
    Alcotest.test_case "histograms shift right" `Slow test_histograms_shift_right;
  ]
