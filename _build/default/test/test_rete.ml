(* Behavioural tests of the Rete matcher: incremental add/delete,
   negation, conjunctive negation, predicates, node sharing, run-time
   addition with state update, and bilinear network equivalence. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Fixtures

let count_insts net name =
  List.length
    (List.filter
       (fun i -> Sym.name i.Conflict_set.prod = name)
       (Conflict_set.to_list net.Network.cs))

let test_basic_match () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  let _b = add_and_match net wm schema "block"
      [ ("name", sym "b1"); ("color", sym "blue") ] in
  Alcotest.(check int) "no hand yet" 0 (count_insts net "blue-block-is-graspable");
  let _h = add_and_match net wm schema "hand" [ ("state", sym "free") ] in
  Alcotest.(check int) "matched" 1 (count_insts net "blue-block-is-graspable")

let test_constant_test_filters () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "red") ]);
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  Alcotest.(check int) "red block does not match" 0
    (count_insts net "blue-block-is-graspable")

let test_negation_blocks () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  Alcotest.(check int) "matched before blocker" 1
    (count_insts net "blue-block-is-graspable");
  (* a block on b1 blocks the negation *)
  let blocker = add_and_match net wm schema "block"
      [ ("name", sym "b2"); ("on", sym "b1") ] in
  Alcotest.(check int) "negation blocks" 0 (count_insts net "blue-block-is-graspable");
  remove_and_match net wm blocker;
  Alcotest.(check int) "unblocked on delete" 1
    (count_insts net "blue-block-is-graspable")

let test_wme_delete_retracts () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  let b = add_and_match net wm schema "block"
      [ ("name", sym "b1"); ("color", sym "blue") ] in
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  Alcotest.(check int) "matched" 1 (count_insts net "blue-block-is-graspable");
  remove_and_match net wm b;
  Alcotest.(check int) "retracted" 0 (count_insts net "blue-block-is-graspable")

let test_variable_join () =
  let src =
    {|(p on-chain
        (block ^name <a> ^on <b>)
        (block ^name <b> ^on <c>)
        -->
        (write <a> <b> <c>))|}
  in
  let schema, net = network_of src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block" [ ("name", sym "x"); ("on", sym "y") ]);
  Alcotest.(check int) "half chain" 0 (count_insts net "on-chain");
  ignore (add_and_match net wm schema "block" [ ("name", sym "y"); ("on", sym "z") ]);
  Alcotest.(check int) "chain complete" 1 (count_insts net "on-chain");
  (* a second lower block creates a second instantiation through y *)
  ignore (add_and_match net wm schema "block" [ ("name", sym "z"); ("on", sym "w") ]);
  Alcotest.(check int) "z-w chain joins y-z" 2 (count_insts net "on-chain")

let test_right_before_left_order () =
  (* Matching is order-independent: wmes for later CEs first. *)
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  Alcotest.(check int) "matched with reversed arrival" 1
    (count_insts net "blue-block-is-graspable")

let test_predicate_tests () =
  let src =
    {|(p big-on-small
        (block ^name <a> ^state <sa>)
        (block ^name { <b> <> <a> } ^state > <sa>)
        -->
        (write <a> <b>))|}
  in
  let schema, net = network_of src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block" [ ("name", sym "a"); ("state", int 1) ]);
  ignore (add_and_match net wm schema "block" [ ("name", sym "b"); ("state", int 5) ]);
  (* (a,b) passes: 5 > 1. (b,a) fails: 1 > 5 false. self pairs fail <>. *)
  Alcotest.(check int) "one ordered pair" 1 (count_insts net "big-on-small")

let test_intra_ce_variable () =
  let src =
    {|(p self-loop
        (block ^name <x> ^on <x>)
        -->
        (write <x>))|}
  in
  let schema, net = network_of src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block" [ ("name", sym "a"); ("on", sym "b") ]);
  Alcotest.(check int) "a-on-b no self loop" 0 (count_insts net "self-loop");
  ignore (add_and_match net wm schema "block" [ ("name", sym "c"); ("on", sym "c") ]);
  Alcotest.(check int) "c-on-c matches" 1 (count_insts net "self-loop")

let test_disjunction () =
  let src =
    {|(p warm
        (block ^name <x> ^color << red orange yellow >>)
        -->
        (write <x>))|}
  in
  let schema, net = network_of src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block" [ ("name", sym "a"); ("color", sym "red") ]);
  ignore (add_and_match net wm schema "block" [ ("name", sym "b"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "block" [ ("name", sym "c"); ("color", sym "yellow") ]);
  Alcotest.(check int) "two warm blocks" 2 (count_insts net "warm")

let ncc_src =
  {|(p clear-tower
      (hand ^state free)
      -{(block ^name <b> ^color blue) (block ^on <b>)}
      -->
      (write ok))|}

let test_ncc () =
  let schema, net = network_of ncc_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  Alcotest.(check int) "no blue-covered pair: matches" 1 (count_insts net "clear-tower");
  let blue = add_and_match net wm schema "block"
      [ ("name", sym "b1"); ("color", sym "blue") ] in
  Alcotest.(check int) "blue alone is not the conjunction" 1
    (count_insts net "clear-tower");
  let cover = add_and_match net wm schema "block"
      [ ("name", sym "b2"); ("on", sym "b1") ] in
  Alcotest.(check int) "conjunction present: blocked" 0 (count_insts net "clear-tower");
  remove_and_match net wm cover;
  Alcotest.(check int) "cover removed: matches again" 1 (count_insts net "clear-tower");
  ignore (add_and_match net wm schema "block" [ ("name", sym "b3"); ("on", sym "b1") ]);
  Alcotest.(check int) "re-blocked" 0 (count_insts net "clear-tower");
  remove_and_match net wm blue;
  Alcotest.(check int) "blue removed: conjunction gone" 1 (count_insts net "clear-tower")

let test_sharing_identical_prefix () =
  let src =
    {|(p p1 (block ^name <x> ^color blue) (hand ^state free) --> (write a))
      (p p2 (block ^name <x> ^color blue) (hand ^state free) --> (write b))|}
  in
  let _, net = network_of src in
  (* Entry + join shared; only the P-nodes differ. *)
  let metas = Network.productions net in
  let m1 = List.nth metas 0 and m2 = List.nth metas 1 in
  let shared =
    List.filter (fun n -> List.mem n m2.Network.chain) m1.Network.chain
  in
  Alcotest.(check int) "entry and join shared" 2 (List.length shared);
  Alcotest.(check int) "second production created only its P-node" 1
    (List.length m2.Network.created_nodes)

let test_sharing_divergence_is_permanent () =
  let src =
    {|(p p1 (block ^name <x> ^color blue) (hand ^state free) --> (write a))
      (p p2 (block ^name <x> ^color red) (hand ^state free) --> (write b))|}
  in
  let _, net = network_of src in
  let metas = Network.productions net in
  let m1 = List.nth metas 0 and m2 = List.nth metas 1 in
  let shared = List.filter (fun n -> List.mem n m2.Network.chain) m1.Network.chain in
  Alcotest.(check int) "nothing shared after alpha divergence" 0 (List.length shared)

let test_sharing_off () =
  let config = { Network.default_config with Network.share = false } in
  let src =
    {|(p p1 (block ^name <x> ^color blue) (hand ^state free) --> (write a))
      (p p2 (block ^name <x> ^color blue) (hand ^state free) --> (write b))|}
  in
  let _, net = network_of ~config src in
  let metas = Network.productions net in
  let m2 = List.nth metas 1 in
  Alcotest.(check int) "all nodes created fresh without sharing" 3
    (List.length m2.Network.created_nodes)

(* --- run-time addition and state update (§5.1/§5.2) ----------------- *)

let test_runtime_add_and_update () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  (* Add a new production at quiescence; it shares the block prefix. *)
  let p2 =
    Parser.parse_production schema
      {|(p blue-block-on-table
          (block ^name <x> ^color blue)
          (place ^name <x> ^table free)
          -->
          (write <x>))|}
  in
  let res = Build.add_production net p2 in
  let tasks = Update.update_tasks net wm res in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Alcotest.(check int) "new production not yet matched" 0
    (count_insts net "blue-block-on-table");
  (* Subsequent changes flow into the new production normally. *)
  ignore (add_and_match net wm schema "place"
            [ ("name", sym "b1"); ("table", sym "free") ]);
  Alcotest.(check int) "matches after new wme" 1 (count_insts net "blue-block-on-table");
  Alcotest.(check int) "old production undisturbed" 1
    (count_insts net "blue-block-is-graspable")

let test_update_fills_memories () =
  (* The added production must match *existing* working memory via the
     update, including partial state in its memories. *)
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "place"
            [ ("name", sym "b1"); ("table", sym "free") ]);
  let p2 =
    Parser.parse_production schema
      {|(p blue-block-on-table
          (block ^name <x> ^color blue)
          (place ^name <x> ^table free)
          -->
          (write <x>))|}
  in
  let res = Build.add_production net p2 in
  Alcotest.(check bool) "created at least one node" true
    (res.Build.new_beta_nodes <> []);
  let tasks = Update.update_tasks net wm res in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Alcotest.(check int) "instantiation found by update alone" 1
    (count_insts net "blue-block-on-table")

let test_update_no_duplicate_state () =
  (* After the update, deleting a wme must retract exactly once; a
     duplicate-state bug would make counts go negative or leave
     phantom instantiations. *)
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  let b = add_and_match net wm schema "block"
      [ ("name", sym "b1"); ("color", sym "blue") ] in
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  let p2 =
    Parser.parse_production schema
      {|(p two
          (block ^name <x> ^color blue)
          (hand ^state free)
          -->
          (write <x>))|}
  in
  (* p2 shares the entire prefix with graspable's first CE and the hand
     join cannot be shared (different middle), so update must replay
     through the last shared node without duplicating. *)
  let res = Build.add_production net p2 in
  let tasks = Update.update_tasks net wm res in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Alcotest.(check int) "update matched existing wm" 1 (count_insts net "two");
  remove_and_match net wm b;
  Alcotest.(check int) "clean retract for new production" 0 (count_insts net "two");
  Alcotest.(check int) "clean retract for old production" 0
    (count_insts net "blue-block-is-graspable")

let test_duplicate_chunk_fully_shared () =
  (* Adding a structurally identical production shares every node but
     the P-node; the update must still produce its instantiations. *)
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  let dup =
    Parser.parse_production schema
      {|(p duplicate
          (block ^name <x> ^color blue)
          -(block ^on <x>)
          (hand ^state free)
          -->
          (make place ^name <x>))|}
  in
  let res = Build.add_production net dup in
  Alcotest.(check int) "only the P-node is new" 1 (List.length res.Build.new_beta_nodes);
  let tasks = Update.update_tasks net wm res in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Alcotest.(check int) "duplicate production matched from replay" 1
    (count_insts net "duplicate")

let test_excise_production () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  ignore (add_and_match net wm schema "hand" [ ("state", sym "free") ]);
  Alcotest.(check int) "matched" 1 (count_insts net "blue-block-is-graspable");
  Build.excise_production net (Sym.intern "blue-block-is-graspable");
  Alcotest.(check int) "conflict set cleared" 0
    (count_insts net "blue-block-is-graspable");
  Alcotest.(check int) "beta network emptied" 0 (Network.beta_node_count net);
  (* Changes after excision are inert but harmless. *)
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b9"); ("color", sym "blue") ]);
  Alcotest.(check int) "still nothing" 0 (count_insts net "blue-block-is-graspable")

(* --- bilinear networks ---------------------------------------------- *)

let long_chain_src =
  {|(p chain6
      (block ^name <a> ^on <b>)
      (block ^name <b> ^on <c>)
      (block ^name <c> ^on <d>)
      (block ^name <d> ^on <e>)
      (block ^name <e> ^on <f>)
      (block ^name <f> ^on <g>)
      (block ^name <g> ^on <h>)
      (block ^name <h> ^on <i>)
      -->
      (write <a> <i>))|}

let tower schema wm net n =
  for i = 0 to n - 1 do
    ignore
      (add_and_match net wm schema "block"
         [ ("name", sym (Printf.sprintf "t%d" i)); ("on", sym (Printf.sprintf "t%d" (i + 1))) ])
  done

let test_bilinear_equivalence () =
  let linear_cfg = Network.default_config in
  let bilinear_cfg = { Network.default_config with Network.bilinear = true } in
  let schema1, net1 = network_of ~config:linear_cfg long_chain_src in
  let schema2, net2 = network_of ~config:bilinear_cfg long_chain_src in
  let wm1 = Wm.create () and wm2 = Wm.create () in
  tower schema1 wm1 net1 10;
  tower schema2 wm2 net2 10;
  Alcotest.(check int) "linear matches" 3 (count_insts net1 "chain6");
  Alcotest.(check int) "bilinear matches the same" 3 (count_insts net2 "chain6");
  Alcotest.(check string) "identical instantiations" (cs_fingerprint net1)
    (cs_fingerprint net2)

let test_bilinear_uses_bjoins () =
  let config = { Network.default_config with Network.bilinear = true } in
  let _, net = network_of ~config long_chain_src in
  let has_bjoin =
    Hashtbl.fold
      (fun _ n acc ->
        acc || match n.Network.kind with Network.Bjoin _ -> true | _ -> false)
      net.Network.beta false
  in
  Alcotest.(check bool) "network contains binary joins" true has_bjoin

let test_bilinear_shortens_chain () =
  let depth net =
    let metas = Network.productions net in
    let pm = List.hd metas in
    let rec depth_of id =
      match (Network.node net id).Network.parent with
      | None -> 1
      | Some p -> 1 + depth_of p
    in
    depth_of pm.Network.pnode
  in
  let _, lin = network_of long_chain_src in
  let _, bil =
    network_of ~config:{ Network.default_config with Network.bilinear = true }
      long_chain_src
  in
  Alcotest.(check bool)
    (Printf.sprintf "bilinear depth %d < linear depth %d" (depth bil) (depth lin))
    true
    (depth bil < depth lin)

let test_bilinear_delete () =
  let config = { Network.default_config with Network.bilinear = true } in
  let schema, net = network_of ~config long_chain_src in
  let wm = Wm.create () in
  tower schema wm net 10;
  Alcotest.(check int) "matches" 3 (count_insts net "chain6");
  (* remove a middle block: all chains through it retract *)
  let victim =
    Wm.to_list wm
    |> List.find (fun w ->
           Value.equal (Wme.field w 0) (sym "t5"))
  in
  remove_and_match net wm victim;
  Alcotest.(check int) "retracts through binary joins" 0 (count_insts net "chain6")

let test_bilinear_runtime_add_and_update () =
  (* a long production added at run time under the bilinear config must
     match existing working memory after the §5.2 update *)
  let config =
    { Network.default_config with Network.bilinear = true; bilinear_min_ces = 6 }
  in
  let schema, net = network_of ~config graspable_src in
  let wm = Wm.create () in
  tower schema wm net 10;
  let late = Parser.parse_production schema long_chain_src in
  let res = Build.add_production net late in
  let tasks = Update.update_tasks net wm res in
  ignore (Psme_engine.Serial.run_tasks net tasks);
  Alcotest.(check int) "bilinear runtime-added production matched by update" 3
    (count_insts net "chain6");
  (* and further changes flow normally *)
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "t10"); ("on", sym "t11") ]);
  Alcotest.(check int) "incremental match continues" 4 (count_insts net "chain6")

(* --- memory table ----------------------------------------------------- *)

let test_memory_roundtrip () =
  let mem = Memory.create ~lines:8 () in
  let w = Wme.make ~cls:(Sym.intern "c") ~fields:[| Value.nil |] ~timetag:1 in
  let tok = Token.singleton w in
  let line = Memory.line_of mem ~khash:5 in
  Memory.locked mem ~line (fun () ->
      (match Memory.left_add mem ~node:3 ~khash:5 tok ~count:0 with
      | `Activated _ -> ()
      | `Inert -> Alcotest.fail "fresh add should activate");
      let n = ref 0 in
      ignore (Memory.left_iter mem ~node:3 ~khash:5 (fun _ -> incr n));
      Alcotest.(check int) "inserted" 1 !n;
      (match Memory.left_remove mem ~node:3 ~khash:5 tok with
      | `Deactivated _ -> ()
      | `Inert -> Alcotest.fail "remove should deactivate");
      let m = ref 0 in
      ignore (Memory.left_iter mem ~node:3 ~khash:5 (fun _ -> incr m));
      Alcotest.(check int) "empty" 0 !m)

let test_memory_node_isolation () =
  let mem = Memory.create ~lines:8 () in
  let w = Wme.make ~cls:(Sym.intern "c") ~fields:[| Value.nil |] ~timetag:1 in
  let line = Memory.line_of mem ~khash:5 in
  Memory.locked mem ~line (fun () ->
      ignore (Memory.right_add mem ~node:1 ~khash:5 (Memory.R_wme w));
      ignore (Memory.right_add mem ~node:2 ~khash:5 (Memory.R_wme w));
      let seen = ref 0 in
      ignore (Memory.right_iter mem ~node:1 ~khash:5 (fun _ -> incr seen));
      Alcotest.(check int) "only node 1's entry" 1 !seen);
  Memory.drop_node mem ~node:1;
  Memory.locked mem ~line (fun () ->
      let seen = ref 0 in
      ignore (Memory.right_iter mem ~node:2 ~khash:5 (fun _ -> incr seen));
      Alcotest.(check int) "node 2 survives drop of node 1" 1 !seen)

let test_left_access_counters () =
  let schema, net = network_of graspable_src in
  let wm = Wm.create () in
  Memory.reset_cycle_stats net.Network.mem;
  ignore (add_and_match net wm schema "block"
            [ ("name", sym "b1"); ("color", sym "blue") ]);
  let total = Array.fold_left ( + ) 0 (Memory.left_accesses_per_line net.Network.mem) in
  Alcotest.(check bool) "left accesses recorded" true (total > 0);
  Memory.reset_cycle_stats net.Network.mem;
  let total' = Array.fold_left ( + ) 0 (Memory.left_accesses_per_line net.Network.mem) in
  Alcotest.(check int) "reset clears" 0 total'

let test_token_ops () =
  let w1 = Wme.make ~cls:(Sym.intern "c") ~fields:[||] ~timetag:1 in
  let w2 = Wme.make ~cls:(Sym.intern "c") ~fields:[||] ~timetag:2 in
  let w3 = Wme.make ~cls:(Sym.intern "c") ~fields:[||] ~timetag:3 in
  let t = Token.extend (Token.extend (Token.singleton w1) w2) w3 in
  Alcotest.(check int) "length" 3 (Token.length t);
  Alcotest.(check bool) "prefix" true
    (Token.equal (Token.prefix t 2) (Token.extend (Token.singleton w1) w2));
  Alcotest.(check bool) "suffix" true (Token.equal (Token.suffix t 2) (Token.singleton w3));
  Alcotest.(check bool) "permute" true
    (Token.equal
       (Token.permute t [| 2; 1; 0 |])
       (Token.extend (Token.extend (Token.singleton w3) w2) w1));
  Alcotest.(check bool) "concat" true
    (Token.equal (Token.concat (Token.prefix t 1) (Token.suffix t 1)) t)

let suite =
  [
    Alcotest.test_case "basic match" `Quick test_basic_match;
    Alcotest.test_case "constant tests filter" `Quick test_constant_test_filters;
    Alcotest.test_case "negation blocks/unblocks" `Quick test_negation_blocks;
    Alcotest.test_case "wme delete retracts" `Quick test_wme_delete_retracts;
    Alcotest.test_case "variable join" `Quick test_variable_join;
    Alcotest.test_case "arrival order independent" `Quick test_right_before_left_order;
    Alcotest.test_case "predicate tests" `Quick test_predicate_tests;
    Alcotest.test_case "intra-CE variables" `Quick test_intra_ce_variable;
    Alcotest.test_case "disjunction test" `Quick test_disjunction;
    Alcotest.test_case "conjunctive negation" `Quick test_ncc;
    Alcotest.test_case "node sharing" `Quick test_sharing_identical_prefix;
    Alcotest.test_case "sharing divergence permanent" `Quick
      test_sharing_divergence_is_permanent;
    Alcotest.test_case "sharing disabled" `Quick test_sharing_off;
    Alcotest.test_case "runtime add + update" `Quick test_runtime_add_and_update;
    Alcotest.test_case "update fills memories" `Quick test_update_fills_memories;
    Alcotest.test_case "update avoids duplicate state" `Quick
      test_update_no_duplicate_state;
    Alcotest.test_case "duplicate chunk fully shared" `Quick
      test_duplicate_chunk_fully_shared;
    Alcotest.test_case "excise production" `Quick test_excise_production;
    Alcotest.test_case "bilinear equivalence" `Quick test_bilinear_equivalence;
    Alcotest.test_case "bilinear uses binary joins" `Quick test_bilinear_uses_bjoins;
    Alcotest.test_case "bilinear shortens chain" `Quick test_bilinear_shortens_chain;
    Alcotest.test_case "bilinear delete" `Quick test_bilinear_delete;
    Alcotest.test_case "bilinear runtime add + update" `Quick
      test_bilinear_runtime_add_and_update;
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "memory node isolation" `Quick test_memory_node_isolation;
    Alcotest.test_case "left access counters" `Quick test_left_access_counters;
    Alcotest.test_case "token operations" `Quick test_token_ops;
  ]
