(* Command-line driver for Soar/PSM-E: run the measured tasks, inspect
   networks, reproduce the paper's tables and figures. *)

open Cmdliner
open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine
open Psme_soar
open Psme_workloads

let workloads = [ Eight_puzzle.workload; Strips.workload; Cypress.workload ]

let find_workload name =
  let name = String.map (function '_' -> '-' | c -> c) name in
  match List.find_opt (fun w -> w.Workload.name = name) workloads with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown task %S (available: %s)" name
         (String.concat ", " (List.map (fun w -> w.Workload.name) workloads)))

(* --- shared args ------------------------------------------------------ *)

let task_arg =
  let doc = "Task to run: eight-puzzle, strips or cypress." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TASK" ~doc)

let engine_arg =
  let doc = "Match engine: serial, sim or parallel." in
  Arg.(value & opt string "serial" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let procs_arg =
  let doc = "Match processes for sim/parallel engines." in
  Arg.(value & opt int 8 & info [ "procs"; "p" ] ~docv:"N" ~doc)

let queues_arg =
  let doc = "Task-queue organization: single or multi." in
  Arg.(value & opt string "multi" & info [ "queues" ] ~docv:"Q" ~doc)

let learning_arg =
  let doc = "Enable chunking." in
  Arg.(value & opt bool true & info [ "learning" ] ~docv:"BOOL" ~doc)

let after_arg =
  let doc =
    "After-chunking run: learn on a first run, reload the chunks, run again."
  in
  Arg.(value & flag & info [ "after" ] ~doc)

let bilinear_arg =
  let doc = "Compile long productions into constrained bilinear networks." in
  Arg.(value & flag & info [ "bilinear" ] ~doc)

let async_arg =
  let doc = "Fire instantiations asynchronously, synchronizing only at decisions." in
  Arg.(value & flag & info [ "async" ] ~doc)

let trace_arg =
  let doc = "Log decisions, firings and chunks." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let parse_queues = function
  | "single" -> Ok Parallel.Single_queue
  | "multi" -> Ok Parallel.Multiple_queues
  | q -> Error (Printf.sprintf "unknown queue organization %S" q)

let parse_engine engine procs queues =
  match parse_queues queues with
  | Error e -> Error e
  | Ok q -> (
    match engine with
    | "serial" -> Ok Engine.Serial_mode
    | "sim" -> Ok (Engine.Sim_mode { Sim.procs; queues = q; collect_trace = false })
    | "parallel" -> Ok (Engine.Parallel_mode { Parallel.processes = procs; queues = q })
    | e -> Error (Printf.sprintf "unknown engine %S" e))

let setup_logs trace =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if trace then Logs.Debug else Logs.Warning))

(* --- run ---------------------------------------------------------------- *)

let run_cmd_impl task engine procs queues learning after bilinear async trace =
  setup_logs trace;
  match find_workload task, parse_engine engine procs queues with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | Ok w, Ok engine_mode ->
    let net_config =
      if bilinear then
        { Network.default_config with Network.bilinear = true; bilinear_min_ces = 15 }
      else Network.default_config
    in
    let config =
      {
        Agent.default_config with
        Agent.learning = learning && not after;
        engine_mode;
        net_config;
        trace;
        async_elaboration = async;
      }
    in
    let extra =
      if after then begin
        let learn_cfg = { config with Agent.learning = true; engine_mode = Engine.Serial_mode } in
        let first = w.Workload.make ~config:learn_cfg () in
        ignore (Agent.run first);
        Agent.learned_productions first
      end
      else []
    in
    let agent = w.Workload.make ~config ~extra () in
    let summary = Agent.run agent in
    let totals = Engine.totals (Agent.engine agent) in
    Format.printf "task            %s@." w.Workload.name;
    Format.printf "productions     %d (+%d chunks loaded)@."
      (List.length (Network.productions (Agent.network agent))
      - List.length summary.Agent.chunks - List.length extra)
      (List.length extra);
    Format.printf "decisions       %d@." summary.Agent.decisions;
    Format.printf "elab cycles     %d@." summary.Agent.elab_cycles;
    Format.printf "outcome         %s@."
      (if summary.Agent.halted then "halted (goal reached)"
       else if summary.Agent.stalled then "stalled"
       else "decision limit");
    Format.printf "chunks built    %d@." (List.length summary.Agent.chunks);
    Format.printf "tasks executed  %d@." totals.Cycle.tasks;
    Format.printf "uniproc time    %.2f s (simulated)@." (totals.Cycle.serial_us /. 1e6);
    (match engine_mode with
    | Engine.Sim_mode _ ->
      Format.printf "makespan        %.2f s on %d procs -> speedup %.2f@."
        (totals.Cycle.makespan_us /. 1e6) procs (Cycle.speedup totals)
    | Engine.Parallel_mode _ ->
      Format.printf "wall time       %.3f s on %d domains@."
        (float_of_int totals.Cycle.wall_ns /. 1e9) procs
    | Engine.Serial_mode ->
      Format.printf "wall time       %.3f s@." (float_of_int totals.Cycle.wall_ns /. 1e9));
    List.iter (fun line -> Format.printf "output          %s@." line) summary.Agent.output;
    0

let run_cmd =
  let doc = "Run one of the paper's tasks." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_cmd_impl $ task_arg $ engine_arg $ procs_arg $ queues_arg
      $ learning_arg $ after_arg $ bilinear_arg $ async_arg $ trace_arg)

(* --- tasks ---------------------------------------------------------------- *)

let tasks_cmd_impl () =
  Format.printf "%-14s %12s %12s %8s@." "task" "productions" "paper-prods" "chunks";
  List.iter
    (fun w ->
      Format.printf "%-14s %12d %12d %8d@." w.Workload.name
        (Workload.production_count w) w.Workload.paper_productions
        w.Workload.chunks_expected)
    workloads;
  0

let tasks_cmd =
  let doc = "List the available tasks." in
  Cmd.v (Cmd.info "tasks" ~doc) Term.(const tasks_cmd_impl $ const ())

(* --- network ----------------------------------------------------------------- *)

let network_cmd_impl task bilinear chunks_too =
  match find_workload task with
  | Error e -> prerr_endline e; 2
  | Ok w ->
    let net_config =
      if bilinear then
        { Network.default_config with Network.bilinear = true; bilinear_min_ces = 15 }
      else Network.default_config
    in
    let config =
      { Agent.default_config with Agent.net_config = net_config;
        Agent.learning = chunks_too }
    in
    let agent = w.Workload.make ~config () in
    let chunk_names =
      if chunks_too then
        List.map
          (fun ci -> ci.Agent.ci_prod.Production.name)
          (Agent.run agent).Agent.chunks
      else []
    in
    let net = Agent.network agent in
    let count pred =
      Hashtbl.fold (fun _ n acc -> if pred n.Network.kind then acc + 1 else acc)
        net.Network.beta 0
    in
    Format.printf "productions       %d@." (List.length (Network.productions net));
    Format.printf "alpha nodes       %d@." (Alpha.node_count net.Network.alpha);
    Format.printf "beta nodes        %d@." (Network.beta_node_count net);
    Format.printf "  entry           %d@." (count (function Network.Entry -> true | _ -> false));
    Format.printf "  join            %d@." (count (function Network.Join _ -> true | _ -> false));
    Format.printf "  negative        %d@." (count (function Network.Neg _ -> true | _ -> false));
    Format.printf "  ncc (+partner)  %d@."
      (count (function Network.Ncc _ | Network.Ncc_partner _ -> true | _ -> false));
    Format.printf "  binary join     %d@." (count (function Network.Bjoin _ -> true | _ -> false));
    Format.printf "  production      %d@." (count (function Network.Pnode _ -> true | _ -> false));
    let total_ces =
      List.fold_left
        (fun a pm -> a + Production.num_ces pm.Network.meta_production)
        0 (Network.productions net)
    in
    Format.printf "CEs compiled      %d (sharing saves %d two-input nodes)@." total_ces
      (max 0 (total_ces - Network.two_input_node_count net));
    let cr = Codesize.compiled_report net in
    Format.printf "node programs     %d compiled (%d closures, %d heap words)@."
      cr.Codesize.cp_programs cr.Codesize.cp_closures cr.Codesize.cp_words;
    if chunks_too then begin
      (* Growth as learning adds productions: each chunk's compiled
         closures, spliced into the jumptable at run time (§5.1). *)
      Format.printf "@.%-40s %9s %9s %9s@." "production" "programs" "closures" "words";
      List.iter
        (fun pm ->
          let c = Codesize.compiled_of_production net pm in
          let name = pm.Network.meta_production.Production.name in
          let chunk =
            if List.exists (Sym.equal name) chunk_names then " [chunk]" else ""
          in
          Format.printf "%-40s %9d %9d %9d@."
            (Sym.name name ^ chunk)
            c.Codesize.cp_programs c.Codesize.cp_closures c.Codesize.cp_words)
        (Network.productions net)
    end;
    0

let network_cmd =
  let doc = "Show the compiled Rete network of a task." in
  let chunks =
    Arg.(
      value & flag
      & info [ "with-chunks" ]
          ~doc:
            "Run the task with learning first and include the chunks' compiled \
             node programs (code-size growth under learning).")
  in
  Cmd.v (Cmd.info "network" ~doc)
    Term.(const network_cmd_impl $ task_arg $ bilinear_arg $ chunks)

(* --- report --------------------------------------------------------------------- *)

let report_cmd_impl write_md =
  Psme_harness.Experiments.print_all Format.std_formatter;
  (match write_md with
  | Some path ->
    let oc = open_out path in
    output_string oc (Psme_harness.Experiments.markdown_report ());
    close_out oc;
    Format.printf "wrote %s@." path
  | None -> ());
  0

let report_cmd =
  let doc = "Reproduce every table and figure of the paper's evaluation." in
  let md =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-experiments" ] ~docv:"PATH"
          ~doc:"Also write the markdown report to $(docv).")
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report_cmd_impl $ md)

(* --- dump ------------------------------------------------------------------------ *)

let dump_cmd_impl task chunks_too =
  match find_workload task with
  | Error e -> prerr_endline e; 2
  | Ok w ->
    let agent =
      if chunks_too then begin
        let a = w.Workload.make () in
        ignore (Agent.run a);
        a
      end
      else
        w.Workload.make
          ~config:{ Agent.default_config with Agent.learning = false }
          ()
    in
    let net = Agent.network agent in
    List.iter
      (fun pm ->
        Format.printf "%a@.@." (Production.pp (Agent.schema agent))
          pm.Network.meta_production)
      (Network.productions net);
    0

let dump_cmd =
  let doc = "Print a task's full production set in OPS5 syntax." in
  let chunks =
    Arg.(value & flag & info [ "with-chunks" ] ~doc:"Run the task first and include its learned chunks.")
  in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const dump_cmd_impl $ task_arg $ chunks)

(* --- diagnose -------------------------------------------------------------------- *)

let diagnose_cmd_impl task procs apply =
  match find_workload task with
  | Error e -> prerr_endline e; 2
  | Ok w ->
    let d = Psme_harness.Diagnose.diagnose ~procs w in
    Psme_harness.Diagnose.pp Format.std_formatter d;
    if apply then begin
      let t = Psme_harness.Diagnose.apply_recommendations w d in
      match t.Psme_harness.Diagnose.t_applied with
      | [] -> Format.printf "nothing to apply.@."
      | remedies ->
        Format.printf "applied: %s@." (String.concat ", " remedies);
        Format.printf "speedup: %.2f -> %.2f@." t.Psme_harness.Diagnose.t_before
          t.Psme_harness.Diagnose.t_after
    end;
    0

let diagnose_cmd =
  let doc =
    "Diagnose the causes of low match speedups (small cycles, long chains) and \
     optionally apply the recommended remedies (paper section 7)."
  in
  let apply =
    Arg.(value & flag & info [ "apply" ] ~doc:"Apply the recommendations and re-measure.")
  in
  Cmd.v (Cmd.info "diagnose" ~doc)
    Term.(const diagnose_cmd_impl $ task_arg $ procs_arg $ apply)

(* --- profile --------------------------------------------------------------------- *)

let top_arg =
  let doc = "Rows to show in each profile table." in
  Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc)

let json_arg =
  let doc =
    "Emit machine-readable JSON (per-cycle stats and the metrics registry) \
     instead of tables."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let traced_agent w ~engine_mode ~learning =
  let tracer = Psme_obs.Trace.create () in
  let config =
    { Agent.default_config with Agent.learning; engine_mode; tracer = Some tracer }
  in
  let agent = w.Workload.make ~config () in
  ignore (Agent.run agent);
  (agent, tracer)

let profile_cmd_impl task procs queues learning top json =
  setup_logs false;
  match find_workload task, parse_queues queues with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | Ok w, Ok q ->
    let engine_mode =
      Engine.Sim_mode { Sim.procs; queues = q; collect_trace = false }
    in
    let agent, tracer = traced_agent w ~engine_mode ~learning in
    let engine = Agent.engine agent in
    let net = Agent.network agent in
    let events = Psme_obs.Trace.events tracer in
    let prof = Psme_harness.Observe.profile net events in
    let totals = Engine.totals engine in
    let cost = (Agent.config agent).Agent.cost in
    let alpha_us =
      float_of_int totals.Cycle.alpha_activations *. cost.Cost.alpha_act_us
    in
    if json then begin
      let cycles = Engine.history engine in
      Format.printf "{\"task\": \"%s\", \"cycles\": [%s], \"metrics\": %s}@."
        w.Workload.name
        (String.concat ", " (List.map Cycle.to_json cycles))
        (Psme_obs.Metrics.to_json (Psme_obs.Metrics.snapshot Psme_obs.Metrics.global));
      0
    end
    else begin
      if Psme_obs.Trace.dropped tracer > 0 then
        Format.printf
          "warning: ring buffer wrapped, %d events dropped — totals are partial@."
          (Psme_obs.Trace.dropped tracer);
      Format.printf "task %s on %d simulated processes: %d tasks, %d cycles@.@."
        w.Workload.name procs totals.Cycle.tasks
        (List.length (Engine.history engine));
      Psme_obs.Profile.pp_nodes ~top Format.std_formatter prof;
      Format.printf "@.";
      Psme_obs.Profile.pp_prods ~top Format.std_formatter prof;
      Format.printf "  %-40s %33.0f@." "(alpha pass)" alpha_us;
      Format.printf "  %-40s %33.0f  (engine serial %.0f us)@.@." "total"
        (prof.Psme_obs.Profile.total_us +. alpha_us)
        totals.Cycle.serial_us;
      let reports = Psme_obs.Critical_path.per_cycle events in
      Psme_obs.Critical_path.pp ~top:5 Format.std_formatter reports;
      (match Psme_obs.Critical_path.longest reports with
      | Some r ->
        let owners =
          Psme_harness.Observe.node_prods net r.Psme_obs.Critical_path.cp_head_node
        in
        Format.printf "worst chain ends at %s%s@.@."
          (Psme_harness.Observe.node_name net r.Psme_obs.Critical_path.cp_head_node)
          (match owners with [] -> "" | o :: _ -> Printf.sprintf " (production %s)" o)
      | None -> ());
      Format.printf "metrics registry:@.";
      Psme_obs.Metrics.pp Format.std_formatter
        (Psme_obs.Metrics.snapshot Psme_obs.Metrics.global);
      0
    end

let profile_cmd =
  let doc =
    "Run a task on the traced simulator and print the per-node and \
     per-production match profile, the critical-path report and the metrics \
     registry."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const profile_cmd_impl $ task_arg $ procs_arg $ queues_arg $ learning_arg
      $ top_arg $ json_arg)

(* --- attribute ------------------------------------------------------------------- *)

let attribute_workload_arg =
  let doc = "Workload to attribute: eight-puzzle, strips or cypress." in
  Arg.(value & opt string "eight-puzzle" & info [ "workload" ] ~docv:"TASK" ~doc)

let attribute_cmd_impl task procs queues json per_cycle trace_out =
  setup_logs false;
  match (find_workload task, parse_queues queues) with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | Ok w, Ok q ->
    let engine_mode =
      Engine.Sim_mode { Sim.procs; queues = q; collect_trace = false }
    in
    let agent, tracer = traced_agent w ~engine_mode ~learning:false in
    let cost = (Agent.config agent).Agent.cost in
    let queue_op_us = cost.Cost.queue_op_us in
    let events = Psme_obs.Trace.events tracer in
    let ledgers = Psme_obs.Attribution.per_cycle ~procs ~queue_op_us events in
    let trace_status =
      match trace_out with
      | None -> 0
      | Some path -> (
        (* the Chrome trace with the attribution counter track riding on
           the per-worker lanes *)
        let buf = Buffer.create (256 * Array.length events) in
        Psme_harness.Observe.chrome_trace ~ledgers (Agent.network agent) buf events;
        match open_out path with
        | exception Sys_error msg ->
          Format.eprintf "cannot write trace: %s@." msg;
          2
        | oc ->
          Buffer.output_buffer oc buf;
          close_out oc;
          if not json then Format.printf "wrote %s@." path;
          0)
    in
    let violations =
      List.filter_map
        (fun l ->
          match Psme_obs.Attribution.check l with
          | Ok () -> None
          | Error msg -> Some msg)
        ledgers
    in
    if json then
      Format.printf "%s@."
        (Psme_obs.Json.to_string
           (Psme_obs.Attribution.to_json ~per_cycle ~task:w.Workload.name
              ~queue_op_us ledgers))
    else begin
      Format.printf "task %s on %d simulated processes (queue op %.0f us)@.@."
        w.Workload.name procs queue_op_us;
      Psme_obs.Attribution.pp ~top:(if per_cycle then max_int else 8)
        Format.std_formatter ledgers;
      if Psme_obs.Trace.dropped tracer > 0 then
        Format.printf
          "warning: ring buffer wrapped, %d events dropped — ledgers are partial@."
          (Psme_obs.Trace.dropped tracer)
    end;
    (match violations with
    | [] -> trace_status
    | msgs ->
      List.iter (fun m -> Format.eprintf "attribution invariant violated: %s@." m) msgs;
      1)

let attribute_cmd =
  let doc =
    "Attribute a task's speedup loss: run it on the traced simulator and \
     decompose each cycle's gap to ideal P-times-makespan processor-time into \
     critical-path residual, load imbalance, queue/steal overhead and lock \
     contention (an additive per-cycle ledger; exit 1 if the components fail \
     to sum to the gap)."
  in
  let per_cycle =
    Arg.(
      value & flag
      & info [ "per-cycle" ]
          ~doc:
            "Include every cycle's ledger (JSON: the cycles array with \
             per-worker timelines; table: all cycles instead of the top 8).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit JSON (schema psme-attribution/1) instead of a table.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:
            "Also write the Chrome trace-event JSON with the attribution \
             counter track to $(docv).")
  in
  Cmd.v (Cmd.info "attribute" ~doc)
    Term.(
      const attribute_cmd_impl $ attribute_workload_arg $ procs_arg $ queues_arg
      $ json $ per_cycle $ trace_out)

(* --- trace ----------------------------------------------------------------------- *)

let trace_out_arg =
  let doc = "Write the Chrome trace-event JSON to $(docv)." in
  Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"PATH" ~doc)

let trace_engine_arg =
  let doc = "Match engine to trace: serial, sim or parallel." in
  Arg.(value & opt string "sim" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let trace_cmd_impl task engine procs queues learning async out =
  setup_logs false;
  match find_workload task, parse_engine engine procs queues with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | Ok w, Ok engine_mode -> (
    (* open the output before the (possibly long) run, so a bad path
       fails in milliseconds instead of after the whole simulation *)
    match open_out out with
    | exception Sys_error msg ->
      prerr_endline ("cannot write trace: " ^ msg);
      2
    | oc ->
    let tracer = Psme_obs.Trace.create () in
    let config =
      {
        Agent.default_config with
        Agent.learning;
        engine_mode;
        async_elaboration = async;
        tracer = Some tracer;
      }
    in
    let agent = w.Workload.make ~config () in
    ignore (Agent.run agent);
    let net = Agent.network agent in
    let events = Psme_obs.Trace.events tracer in
    let buf = Buffer.create (256 * Array.length events) in
    Psme_harness.Observe.chrome_trace net buf events;
    Buffer.output_buffer oc buf;
    close_out oc;
    Format.printf "wrote %s: %d events (%d dropped), %d match-process lanes@."
      out (Array.length events)
      (Psme_obs.Trace.dropped tracer)
      (List.length (Psme_obs.Chrome_trace.lanes events));
    Format.printf "open it at ui.perfetto.dev or chrome://tracing@.";
    0)

let trace_cmd =
  let doc =
    "Run a task with the structured event tracer and export the timeline as \
     Chrome trace-event JSON (one lane per virtual match process)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_cmd_impl $ task_arg $ trace_engine_arg $ procs_arg $ queues_arg
      $ learning_arg $ async_arg $ trace_out_arg)

(* --- telemetry ------------------------------------------------------------------- *)

let telemetry_cmd_impl task engine procs queues learning async watch every json =
  setup_logs false;
  match find_workload task, parse_engine engine procs queues with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | Ok w, Ok engine_mode ->
    let tm = Psme_obs.Telemetry.global in
    Psme_obs.Telemetry.reset tm;
    let config =
      {
        Agent.default_config with
        Agent.learning;
        engine_mode;
        async_elaboration = async;
      }
    in
    let agent = w.Workload.make ~config () in
    if watch then begin
      (* rolling deltas: one line per [every] decisions *)
      let last = ref (Psme_obs.Telemetry.snapshot_kv tm) in
      Agent.set_monitor agent (fun decisions ->
          if decisions mod every = 0 then begin
            let now = Psme_obs.Telemetry.snapshot_kv tm in
            Format.printf "d%-5d %s@." decisions
              (Psme_obs.Telemetry.delta_line ~before:!last ~after:now);
            last := now
          end)
    end;
    ignore (Agent.run agent);
    if json then
      Format.printf "%s@."
        (Psme_obs.Json.to_string (Psme_obs.Telemetry.to_json tm))
    else begin
      if watch then Format.printf "@.";
      Psme_obs.Telemetry.pp Format.std_formatter tm
    end;
    0

let telemetry_cmd =
  let doc =
    "Run a task with the always-on telemetry layer and print its snapshot: \
     per-phase allocation/GC accounting (match, conflict-resolution, act, \
     chunk-splice), cycle/task/queue-dwell latency histograms with \
     p50/p90/p99/max, and queue/lock contention counters."
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:"Print a rolling one-line delta during the run (per decision).")
  in
  let every =
    Arg.(
      value & opt int 1
      & info [ "every" ] ~docv:"N" ~doc:"With $(b,--watch): print every $(docv) decisions.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the snapshot as JSON (schema psme-telemetry/1) instead of a table.")
  in
  Cmd.v (Cmd.info "telemetry" ~doc)
    Term.(
      const telemetry_cmd_impl $ task_arg $ engine_arg $ procs_arg $ queues_arg
      $ learning_arg $ async_arg $ watch $ every $ json)

(* --- parse ----------------------------------------------------------------------- *)

let parse_cmd_impl file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  (try
     let forms = Parser.parse_program schema src in
     List.iter
       (function
         | Parser.Literalize (cls, attrs) ->
           Format.printf "literalize %a (%d attributes)@." Sym.pp cls (List.length attrs)
         | Parser.Prod p ->
           Format.printf "production %a: %d CEs, %d actions@." Sym.pp p.Production.name
             (Production.num_ces p)
             (List.length p.Production.rhs))
       forms;
     exit 0
   with
  | Parser.Parse_error (msg, { line }) ->
    Format.eprintf "parse error at line %d: %s@." line msg;
    exit 2
  | Lexer.Lex_error (msg, { line }) ->
    Format.eprintf "lex error at line %d: %s@." line msg;
    exit 2)

let parse_cmd =
  let doc = "Parse and validate a production source file." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "parse" ~doc) Term.(const parse_cmd_impl $ file)

(* --- check ----------------------------------------------------------------------- *)

let check_workload_arg =
  let doc = "Workload to verify: eight-puzzle, strips, cypress or all." in
  Arg.(value & opt string "all" & info [ "workload" ] ~docv:"TASK" ~doc)

let print_report name report =
  if report.Psme_check.Finding.findings = [] then
    Format.printf "%s: clean (%d checked)@." name report.Psme_check.Finding.checked
  else Format.printf "%s:@.%a@." name Psme_check.Finding.pp report

let check_one w =
  (* A full learning run exercises §5.1 chunk addition and the §5.2
     state update before the verifier looks at the result. *)
  let config =
    { Agent.default_config with Agent.learning = true; engine_mode = Engine.Serial_mode }
  in
  let agent = w.Workload.make ~config () in
  ignore (Agent.run agent);
  (* a (halt) exits mid-phase; settle the match before diffing it *)
  Agent.flush_match agent;
  let net = Agent.network agent in
  let wmes = Wm.to_list (Agent.wm agent) in
  Psme_check.Verify.full net wmes

let check_cmd_impl task =
  setup_logs false;
  let targets =
    if task = "all" then Ok workloads
    else match find_workload task with Ok w -> Ok [ w ] | Error e -> Error e
  in
  match targets with
  | Error e -> prerr_endline e; 2
  | Ok ws ->
    let report =
      List.fold_left
        (fun acc w ->
          let r = check_one w in
          print_report w.Workload.name r;
          Psme_check.Finding.merge acc r)
        Psme_check.Finding.empty ws
    in
    Psme_check.Finding.exit_code report

let check_cmd =
  let doc =
    "Verify the compiled (and chunk-extended) Rete network of a workload: \
     structural invariants (wiring, monotone node ids, reachability) and \
     match-state consistency against a from-scratch serial rebuild."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd_impl $ check_workload_arg)

(* --- lint ----------------------------------------------------------------------- *)

let lint_files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")

let strict_arg =
  let doc = "Fail (exit 1) on warnings too, not just errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_cmd_impl files strict =
  setup_logs false;
  let lint_file acc file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let schema = Schema.create () in
    Agent.prepare_schema schema;
    match Psme_check.Lint.source schema src with
    | report ->
      print_report file report;
      Result.map (fun a -> Psme_check.Finding.merge a report) acc
    | exception Parser.Parse_error (msg, { Lexer.line }) ->
      Format.eprintf "%s: parse error at line %d: %s@." file line msg;
      Error ()
    | exception Lexer.Lex_error (msg, { Lexer.line }) ->
      Format.eprintf "%s: lex error at line %d: %s@." file line msg;
      Error ()
  in
  match List.fold_left lint_file (Ok Psme_check.Finding.empty) files with
  | Error () -> 2
  | Ok report -> Psme_check.Finding.exit_code ~strict report

let lint_cmd =
  let doc =
    "Lint production source files: schema-aware checks for unused variables, \
     unsatisfiable or duplicate conditions, cross-product joins and \
     productions that can never fire. Suppress a finding with a \
     '; lint: allow <rule> [<production>]' comment."
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint_cmd_impl $ lint_files_arg $ strict_arg)

(* --- analyze --------------------------------------------------------------------- *)

let analyze_files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE")

let analyze_workload_arg =
  let doc =
    "Analyze a generated workload's production set instead of source files: \
     eight-puzzle, strips, cypress or all."
  in
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"TASK" ~doc)

let analyze_json_arg =
  let doc = "Emit the report as JSON on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let analyze_reorder_arg =
  let doc =
    "Build the analyzed network with join reordering \
     (Network.config.reorder_joins) so the report reflects the reordered \
     chains."
  in
  Arg.(value & flag & info [ "reorder" ] ~doc)

let print_analyze name report json =
  if json then Format.printf "%s@." (Psme_check.Finding.to_json report)
  else print_report name report

let analyze_source_file ~reorder ~json file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let schema = Schema.create () in
  Agent.prepare_schema schema;
  let prods =
    List.filter_map
      (function Parser.Prod p -> Some p | Parser.Literalize _ -> None)
      (Parser.parse_program schema src)
  in
  (* the network rules need a built network; a build failure downgrades
     to source-only analysis rather than masking the other rules *)
  let net =
    let config =
      { Network.default_config with Network.reorder_joins = reorder }
    in
    let net = Network.create ~config schema in
    match List.iter (fun p -> ignore (Build.add_production net p)) prods with
    | () -> Some net
    | exception Build.Build_error msg ->
      Format.eprintf "%s: network build failed (%s); network rules skipped@."
        file msg;
      None
  in
  let report = Psme_check.Analyze.source ?net schema src in
  print_analyze file report json;
  report

let analyze_workload ~json w =
  let config =
    { Agent.default_config with Agent.engine_mode = Engine.Serial_mode }
  in
  let agent = w.Workload.make ~config () in
  let net = Agent.network agent in
  let prods =
    List.map
      (fun pm -> pm.Network.meta_production)
      (Network.productions net)
  in
  let report =
    Psme_check.Finding.merge
      (Psme_check.Analyze.productions prods)
      (Psme_check.Analyze.network net)
  in
  print_analyze w.Workload.name report json;
  report

let analyze_cmd_impl files task strict json reorder =
  setup_logs false;
  match files, task with
  | [], None ->
    prerr_endline "nothing to analyze: give source files or --workload";
    2
  | _ :: _, Some _ ->
    prerr_endline "give either source files or --workload, not both";
    2
  | files, None -> (
    try
      let report =
        List.fold_left
          (fun acc file ->
            Psme_check.Finding.merge acc
              (analyze_source_file ~reorder ~json file))
          Psme_check.Finding.empty files
      in
      Psme_check.Finding.exit_code ~strict report
    with
    | Parser.Parse_error (msg, { Lexer.line }) ->
      Format.eprintf "parse error at line %d: %s@." line msg;
      2
    | Lexer.Lex_error (msg, { Lexer.line }) ->
      Format.eprintf "lex error at line %d: %s@." line msg;
      2)
  | [], Some task -> (
    let targets =
      if task = "all" then Ok workloads
      else match find_workload task with Ok w -> Ok [ w ] | Error e -> Error e
    in
    match targets with
    | Error e ->
      prerr_endline e;
      2
    | Ok ws ->
      let report =
        List.fold_left
          (fun acc w -> Psme_check.Finding.merge acc (analyze_workload ~json w))
          Psme_check.Finding.empty ws
      in
      Psme_check.Finding.exit_code ~strict report)

let analyze_cmd =
  let doc =
    "Statically analyze productions and their compiled Rete network: \
     unsatisfiable conditions, dead or vacuous nodes, shadowed and subsumed \
     production pairs, cross-product joins and the static join-cost model's \
     reordering suggestions. Exit 0 when clean, 1 on findings that matter \
     (errors, or any finding under --strict), 2 on parse failure. Suppress a \
     finding with a '; analyze: allow <rule> [<subject>]' comment."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const analyze_cmd_impl $ analyze_files_arg $ analyze_workload_arg
      $ strict_arg $ analyze_json_arg $ analyze_reorder_arg)

(* --- races ----------------------------------------------------------------------- *)

let races_workload_arg =
  let doc = "Workload to run under the race detector." in
  Arg.(value & opt string "eight-puzzle" & info [ "workload" ] ~docv:"TASK" ~doc)

let races_engine_arg =
  let doc = "Engine to race-check: sim or parallel." in
  Arg.(value & opt string "sim" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let races_cmd_impl task engine procs queues =
  setup_logs false;
  match (find_workload task, parse_engine engine procs queues) with
  | Error e, _ | _, Error e -> prerr_endline e; 2
  | _, Ok Engine.Serial_mode ->
    prerr_endline "the serial engine has no concurrency to race-check; use sim or parallel";
    2
  | Ok w, Ok engine_mode ->
    let tracer = Psme_obs.Trace.create ~capacity:(1 lsl 21) () in
    let config =
      {
        Agent.default_config with
        Agent.learning = true;
        engine_mode;
        tracer = Some tracer;
      }
    in
    let agent = w.Workload.make ~config () in
    ignore (Agent.run agent);
    let events = Psme_obs.Trace.events tracer in
    if Psme_obs.Trace.dropped tracer > 0 then
      Format.printf
        "warning: ring buffer wrapped, %d events dropped — coverage is partial@."
        (Psme_obs.Trace.dropped tracer);
    let r = Psme_check.Races.analyze events in
    Format.printf "%s on %s: %a@." w.Workload.name engine Psme_check.Races.pp r;
    let report = Psme_check.Races.to_findings r in
    if report.Psme_check.Finding.findings <> [] then
      Format.printf "%a@." Psme_check.Finding.pp report;
    Psme_check.Finding.exit_code report

let races_cmd =
  let doc =
    "Run a workload on a concurrent engine with memory-access tracing and \
     check the trace for data races: accesses to one hash line unordered by \
     happens-before and not both holding the line lock."
  in
  Cmd.v (Cmd.info "races" ~doc)
    Term.(
      const races_cmd_impl $ races_workload_arg $ races_engine_arg $ procs_arg
      $ queues_arg)

let main =
  let doc = "Soar/PSM-E: a learning production system on a parallel matcher" in
  Cmd.group (Cmd.info "soar_cli" ~doc)
    [
      run_cmd; tasks_cmd; network_cmd; report_cmd; diagnose_cmd; profile_cmd;
      attribute_cmd; trace_cmd; dump_cmd; parse_cmd; check_cmd; lint_cmd;
      analyze_cmd; races_cmd; telemetry_cmd;
    ]

let () = exit (Cmd.eval' main)
