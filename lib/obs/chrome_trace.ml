(* Lane (tid) assignment: virtual processors keep their own number, the
   control process and the cycle markers get high tids so they sort
   below the processor lanes. *)
let control_tid = 9998
let cycles_tid = 9999

let tid_of_proc p = if p >= 0 then p else control_tid

let lanes (events : Trace.event array) =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (e : Trace.event) -> if e.Trace.proc >= 0 then Hashtbl.replace seen e.Trace.proc ())
    events;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen [])

let emit_event buf ~first ~name ~cat ~ph ~ts ?dur ~tid args =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "\n{\"name\":";
  Json.escape_to_buffer buf name;
  Buffer.add_string buf ",\"cat\":";
  Json.escape_to_buffer buf cat;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":%S,\"ts\":" ph);
  Json.float_to_buffer buf ts;
  (match dur with
  | Some d ->
    Buffer.add_string buf ",\"dur\":";
    Json.float_to_buffer buf d
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ",\"pid\":0,\"tid\":%d" tid);
  if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
  (match args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":";
    Json.to_buffer buf (Json.Obj args));
  Buffer.add_char buf '}'

let emit_meta buf ~first ~name ~tid ~value =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "\n{\"name\":";
  Json.escape_to_buffer buf name;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":" tid);
  Json.escape_to_buffer buf value;
  Buffer.add_string buf "}}"

let emit_sort_index buf ~first ~name ~tid ~index =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "\n{\"name\":";
  Json.escape_to_buffer buf name;
  Buffer.add_string buf
    (Printf.sprintf ",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
       tid index)

(* One counter sample per cycle: the four speedup-loss components of
   the cycle's attribution ledger, drawn as stacked counter tracks. *)
let emit_ledger_counters buf ~first (ledgers : Attribution.ledger list) =
  List.iter
    (fun (l : Attribution.ledger) ->
      emit_event buf ~first ~name:"speedup-loss" ~cat:"attribution" ~ph:"C"
        ~ts:l.Attribution.a_t0_us ~tid:0
        [
          ("cp_residual_us", Json.Float l.Attribution.a_cp_residual_us);
          ("imbalance_us", Json.Float l.Attribution.a_imbalance_us);
          ("queue_us", Json.Float l.Attribution.a_queue_us);
          ("lock_us", Json.Float l.Attribution.a_lock_us);
        ])
    ledgers

let to_buffer ?(node_name = fun id -> Printf.sprintf "node%d" id)
    ?(queue_events = true) ?(ledgers = []) buf (events : Trace.event array) =
  (* Perfetto tolerates unsorted streams but renders sorted ones
     faster and unambiguously; emission order across engine domains is
     not the timeline order, so sort a copy by timestamp here. *)
  let events = Array.copy events in
  Array.stable_sort
    (fun (a : Trace.event) (b : Trace.event) -> compare a.Trace.t_us b.Trace.t_us)
    events;
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  emit_meta buf ~first ~name:"process_name" ~tid:0 ~value:"soar/psme match";
  emit_sort_index buf ~first ~name:"process_sort_index" ~tid:0 ~index:0;
  List.iter
    (fun p ->
      emit_meta buf ~first ~name:"thread_name" ~tid:p
        ~value:(Printf.sprintf "proc %d" p);
      (* per-worker lanes in worker-id order, ahead of the control and
         cycle lanes (whose high tids are also their sort keys) *)
      emit_sort_index buf ~first ~name:"thread_sort_index" ~tid:p ~index:p)
    (lanes events);
  emit_meta buf ~first ~name:"thread_name" ~tid:control_tid ~value:"control";
  emit_sort_index buf ~first ~name:"thread_sort_index" ~tid:control_tid
    ~index:control_tid;
  emit_meta buf ~first ~name:"thread_name" ~tid:cycles_tid ~value:"cycles";
  emit_sort_index buf ~first ~name:"thread_sort_index" ~tid:cycles_tid
    ~index:cycles_tid;
  emit_ledger_counters buf ~first ledgers;
  Array.iter
    (fun (e : Trace.event) ->
      let open Trace in
      let tid = tid_of_proc e.proc in
      match e.kind with
      | Task_start -> ()  (* the Task_end complete event carries the span *)
      | Task_end ->
        emit_event buf ~first ~name:(node_name e.node) ~cat:"task" ~ph:"X"
          ~ts:(e.t_us -. e.dur_us) ~dur:e.dur_us ~tid
          [
            ("node", Json.Int e.node);
            ("task", Json.Int e.task);
            ("parent", Json.Int e.parent);
            ("cycle", Json.Int e.cycle);
            ("scanned", Json.Int e.scanned);
            ("emitted", Json.Int e.emitted);
          ]
      | Queue_push | Queue_pop | Queue_steal | Queue_failed_pop ->
        if queue_events then
          emit_event buf ~first ~name:(kind_name e.kind) ~cat:"queue" ~ph:"i"
            ~ts:e.t_us ~tid
            (if e.task >= 0 then [ ("task", Json.Int e.task) ] else [])
      | Lock_wait ->
        emit_event buf ~first ~name:"lock-wait" ~cat:"lock" ~ph:"X"
          ~ts:(e.t_us -. e.dur_us) ~dur:e.dur_us ~tid []
      | Cycle_begin -> ()  (* Cycle_end carries the whole span *)
      | Cycle_end ->
        emit_event buf ~first
          ~name:(Printf.sprintf "cycle %d" e.cycle)
          ~cat:"cycle" ~ph:"X" ~ts:(e.t_us -. e.dur_us) ~dur:e.dur_us
          ~tid:cycles_tid
          [ ("tasks", Json.Int e.scanned) ]
      | Chunk_add ->
        emit_event buf ~first ~name:"chunk-add" ~cat:"chunk" ~ph:"i" ~ts:e.t_us
          ~tid:cycles_tid
          [ ("pnode", Json.Int e.node); ("new_nodes", Json.Int e.emitted) ]
      | Chunk_update ->
        emit_event buf ~first ~name:"chunk-update" ~cat:"chunk" ~ph:"i"
          ~ts:e.t_us ~tid:cycles_tid
          [ ("chunks", Json.Int e.emitted) ]
      | Mem_access -> ()  (* race-detector bookkeeping, not a visual span *))
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string ?node_name ?queue_events ?ledgers events =
  let buf = Buffer.create (64 * Array.length events) in
  to_buffer ?node_name ?queue_events ?ledgers buf events;
  Buffer.contents buf
