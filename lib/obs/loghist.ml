(* Log-scale histogram in the HdrHistogram style: 16 sub-buckets per
   power of two, so every recorded value lands in a bucket whose width
   is at most 1/16 (6.25%) of its magnitude. Values 0..15 get exact
   unit buckets. The bucket array is preallocated at [create]; [add]
   touches one array slot and a handful of immediate (unboxed) fields,
   so the record path allocates nothing — the property the telemetry
   layer's always-on latency histograms rely on (asserted by a test
   that diffs [Gc.minor_words] across a burst of records).

   Not thread-safe: concurrent [add]s may lose counts (plain int
   stores). The engines either record from one domain or accept the
   statistical undercount; exact counters stay in [Atomic.t]s. *)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)

(* octaves for msb positions 4..61 after the 16 unit buckets *)
let n_buckets = sub + ((62 - sub_bits) * sub)

let create () =
  { counts = Array.make n_buckets 0; total = 0; sum = 0; vmin = max_int; vmax = 0 }

(* Highest set bit position of v > 0, branch-reduced and allocation-free
   (all locals are immediates). *)
let msb v =
  let a = if v lsr 32 <> 0 then 32 else 0 in
  let v1 = v lsr a in
  let b = if v1 lsr 16 <> 0 then 16 else 0 in
  let v2 = v1 lsr b in
  let c = if v2 lsr 8 <> 0 then 8 else 0 in
  let v3 = v2 lsr c in
  let d = if v3 lsr 4 <> 0 then 4 else 0 in
  let v4 = v3 lsr d in
  let e = if v4 lsr 2 <> 0 then 2 else 0 in
  let v5 = v4 lsr e in
  let f = if v5 lsr 1 <> 0 then 1 else 0 in
  a + b + c + d + e + f

let index_of v =
  if v < sub then v
  else begin
    let m = msb v in
    let i = ((m - (sub_bits - 1)) * sub) + ((v lsr (m - sub_bits)) land (sub - 1)) in
    if i >= n_buckets then n_buckets - 1 else i
  end

(* Inclusive lower bound of bucket [i]. *)
let lower_of i =
  if i < sub then i
  else begin
    let oct = (i / sub) - 1 in
    let s = i land (sub - 1) in
    (sub + s) lsl oct
  end

(* Exclusive upper bound of bucket [i]. *)
let upper_of i = if i < sub then i + 1 else lower_of i + (1 lsl ((i / sub) - 1))

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.total
let max t = if t.total = 0 then 0 else t.vmax
let min t = if t.total = 0 then 0 else t.vmin
let sum t = t.sum
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

(* Value at percentile p (0..100]: the smallest bucket whose cumulative
   count reaches rank = ceil(p/100 * total). Within the bucket the
   midpoint is reported, except that the histogram's tracked extremes
   make p=100 exact and single-bucket distributions collapse to the
   bucket. *)
let percentile t p =
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Loghist.percentile: p must be in [0, 100]";
  if t.total = 0 then Float.nan
  else if p >= 100. then float_of_int t.vmax
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
      if r < 1 then 1 else r
    in
    let rec walk i acc =
      if i >= n_buckets then float_of_int t.vmax
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then begin
          let lo = lower_of i and hi = upper_of i in
          (* width-1 buckets hold exactly one integer value; wider ones
             report their midpoint, clamped to the observed extremes so
             tiny histograms stay exact *)
          let mid =
            if hi - lo <= 1 then float_of_int lo
            else float_of_int (lo + hi) /. 2.
          in
          Float.min (float_of_int t.vmax) (Float.max (float_of_int t.vmin) mid)
        end
        else walk (i + 1) acc
      end
    in
    walk 0 0
  end

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let iter_nonempty f t =
  Array.iteri
    (fun i n -> if n > 0 then f ~lower:(lower_of i) ~upper:(upper_of i) ~count:n)
    t.counts

let merge_into ~into t =
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) t.counts;
  into.total <- into.total + t.total;
  into.sum <- into.sum + t.sum;
  if t.total > 0 then begin
    if t.vmin < into.vmin then into.vmin <- t.vmin;
    if t.vmax > into.vmax then into.vmax <- t.vmax
  end
