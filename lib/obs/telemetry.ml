open Psme_support

(* Always-on runtime telemetry: per-phase allocation/GC accounting,
   log-scale latency histograms and contention counters, distinct from
   the opt-in tracer/profiler. Everything on the record path writes
   into preallocated structures — no allocation in steady state (the
   test suite asserts this by diffing [Gc.minor_words] across bursts of
   records). Snapshots and exports allocate freely; they run off the
   hot path. *)

(* --- phases ------------------------------------------------------------ *)

type phase =
  | Match
  | Conflict_resolution
  | Act
  | Chunk_splice

let phases = [ Match; Conflict_resolution; Act; Chunk_splice ]

let phase_name = function
  | Match -> "match"
  | Conflict_resolution -> "conflict-resolution"
  | Act -> "act"
  | Chunk_splice -> "chunk-splice"

let phase_index = function
  | Match -> 0
  | Conflict_resolution -> 1
  | Act -> 2
  | Chunk_splice -> 3

let n_phases = 4

(* Per-phase accumulators. Words are stored as ints ([Gc] reports
   integral floats); an all-immediate record keeps phase_end free of
   float boxing. *)
type phase_acc = {
  mutable a_sections : int;
  mutable a_time_ns : int;
  mutable a_minor_words : int;
  mutable a_promoted_words : int;
  mutable a_major_words : int;
  mutable a_minor_collections : int;
  mutable a_major_collections : int;
  mutable a_compactions : int;
  mutable a_max_gc_section_ns : int;
      (* longest section that saw a collection: the pause proxy *)
}

let acc_create () =
  {
    a_sections = 0;
    a_time_ns = 0;
    a_minor_words = 0;
    a_promoted_words = 0;
    a_major_words = 0;
    a_minor_collections = 0;
    a_major_collections = 0;
    a_compactions = 0;
    a_max_gc_section_ns = 0;
  }

(* A phase stack frame: the counter readings at phase_begin plus the
   totals consumed by nested phases, so phase_end can attribute
   {e exclusive} cost (own minus children). *)
type frame = {
  mutable f_phase : int;
  mutable f_t0_ns : int;
  mutable f_minor0 : int;
  mutable f_promoted0 : int;
  mutable f_major0 : int;
  mutable f_minor_col0 : int;
  mutable f_major_col0 : int;
  mutable f_compact0 : int;
  mutable f_child_ns : int;
  mutable f_child_minor : int;
  mutable f_child_promoted : int;
  mutable f_child_major : int;
  mutable f_child_minor_col : int;
  mutable f_child_major_col : int;
  mutable f_child_compact : int;
}

let frame_create () =
  {
    f_phase = 0; f_t0_ns = 0; f_minor0 = 0; f_promoted0 = 0; f_major0 = 0;
    f_minor_col0 = 0; f_major_col0 = 0; f_compact0 = 0;
    f_child_ns = 0; f_child_minor = 0; f_child_promoted = 0; f_child_major = 0;
    f_child_minor_col = 0; f_child_major_col = 0; f_child_compact = 0;
  }

let max_depth = 8

(* Minor words must come from [Gc.minor_words ()] (an unboxed
   [@@noalloc] external reading the live young pointer), NOT from the
   [Gc.quick_stat] record: in native code the stat record's
   [minor_words] field is only synced at minor collections, so a
   section shorter than a collection interval would always read a zero
   delta. quick_stat still supplies promoted/major words and collection
   counts, which by nature only advance at collections.

   The begin/end reads are ordered so that a section's own minor-word
   window contains no measurement allocation at all (the quick_stat
   record and the boxed [gettimeofday] float are allocated outside the
   window). A {e nested} section's measurement calls do land in its
   parent's window, though: two quick_stats and two clock reads per
   child. Calibrate those two constants once and charge them to the
   parent's child-total alongside the child's own words, so exclusive
   attribution measures the phase, not the measurement. *)
let calibrate sample =
  let m = ref Stdlib.max_int in
  for _ = 1 to 8 do
    let d = sample () in
    if d >= 0 && d < !m then m := d
  done;
  if !m = Stdlib.max_int then 0 else !m

let quick_stat_self_words =
  calibrate (fun () ->
      let a = Gc.minor_words () in
      let s = Gc.quick_stat () in
      let b = Gc.minor_words () in
      ignore (Sys.opaque_identity s);
      int_of_float (b -. a))

let clock_self_words =
  calibrate (fun () ->
      let a = Gc.minor_words () in
      let t = Clock.now_ns () in
      let b = Gc.minor_words () in
      ignore (Sys.opaque_identity t);
      int_of_float (b -. a))

(* words a nested section's four measurement calls allocate inside its
   parent's window *)
let child_measure_words = (2 * quick_stat_self_words) + (2 * clock_self_words)

type t = {
  phase_accs : phase_acc array;
  frames : frame array;
  mutable depth : int;
  mutable overflow : int; (* open begins beyond max_depth *)
  mutable dropped_sections : int; (* begins beyond max_depth *)
  (* latency histograms, recorded in nanoseconds *)
  cycle_ns : Loghist.t; (* cycle latency (modeled makespan) *)
  task_ns : Loghist.t; (* per-task execution time *)
  dwell_ns : Loghist.t; (* queue residency: push -> pop *)
  (* contention counters: queue side (Chase-Lev deques / sim queues) *)
  steal_attempts : int Atomic.t;
  steals : int Atomic.t;
  steal_cas_failures : int Atomic.t;
  pop_races : int Atomic.t;
  queue_pushes : int Atomic.t;
  queue_pops : int Atomic.t;
  (* contention counters: memory line locks (§6.1 granule) *)
  lock_acquired : int Atomic.t;
  lock_contended : int Atomic.t;
  lock_spins : int Atomic.t;
  mutable cycles : int;
}

let create () =
  {
    phase_accs = Array.init n_phases (fun _ -> acc_create ());
    frames = Array.init max_depth (fun _ -> frame_create ());
    depth = 0;
    overflow = 0;
    dropped_sections = 0;
    cycle_ns = Loghist.create ();
    task_ns = Loghist.create ();
    dwell_ns = Loghist.create ();
    steal_attempts = Atomic.make 0;
    steals = Atomic.make 0;
    steal_cas_failures = Atomic.make 0;
    pop_races = Atomic.make 0;
    queue_pushes = Atomic.make 0;
    queue_pops = Atomic.make 0;
    lock_acquired = Atomic.make 0;
    lock_contended = Atomic.make 0;
    lock_spins = Atomic.make 0;
    cycles = 0;
  }

let global = create ()

(* --- phase accounting -------------------------------------------------- *)

let phase_begin t phase =
  if t.depth >= max_depth then begin
    t.overflow <- t.overflow + 1;
    t.dropped_sections <- t.dropped_sections + 1
  end
  else begin
    let s = Gc.quick_stat () in
    let f = t.frames.(t.depth) in
    t.depth <- t.depth + 1;
    f.f_phase <- phase_index phase;
    f.f_promoted0 <- int_of_float s.Gc.promoted_words;
    f.f_major0 <- int_of_float s.Gc.major_words;
    f.f_minor_col0 <- s.Gc.minor_collections;
    f.f_major_col0 <- s.Gc.major_collections;
    f.f_compact0 <- s.Gc.compactions;
    f.f_child_ns <- 0;
    f.f_child_minor <- 0;
    f.f_child_promoted <- 0;
    f.f_child_major <- 0;
    f.f_child_minor_col <- 0;
    f.f_child_major_col <- 0;
    f.f_child_compact <- 0;
    (* clock after the stat sampling so the span excludes it; precise
       minor counter last so the allocation window excludes the boxed
       clock read too *)
    f.f_t0_ns <- Clock.now_ns ();
    f.f_minor0 <- int_of_float (Gc.minor_words ())
  end

let phase_end t phase =
  if t.overflow > 0 then
    (* matching end for a dropped begin *)
    t.overflow <- t.overflow - 1
  else if t.depth = 0 then ()
  else begin
    (* mirror of phase_begin's ordering: close the allocation window
       before the clock and stat reads allocate *)
    let minor_now = int_of_float (Gc.minor_words ()) in
    let now = Clock.now_ns () in
    let s = Gc.quick_stat () in
    t.depth <- t.depth - 1;
    let f = t.frames.(t.depth) in
    (* unbalanced begin/end pairs attribute to the frame actually open *)
    ignore (phase_index phase);
    let raw_ns = now - f.f_t0_ns in
    let raw_minor = minor_now - f.f_minor0 in
    let raw_promoted = int_of_float s.Gc.promoted_words - f.f_promoted0 in
    let raw_major = int_of_float s.Gc.major_words - f.f_major0 in
    let raw_minor_col = s.Gc.minor_collections - f.f_minor_col0 in
    let raw_major_col = s.Gc.major_collections - f.f_major_col0 in
    let raw_compact = s.Gc.compactions - f.f_compact0 in
    let pos x = if x < 0 then 0 else x in
    let acc = t.phase_accs.(f.f_phase) in
    acc.a_sections <- acc.a_sections + 1;
    acc.a_time_ns <- acc.a_time_ns + pos (raw_ns - f.f_child_ns);
    acc.a_minor_words <- acc.a_minor_words + pos (raw_minor - f.f_child_minor);
    acc.a_promoted_words <-
      acc.a_promoted_words + pos (raw_promoted - f.f_child_promoted);
    acc.a_major_words <- acc.a_major_words + pos (raw_major - f.f_child_major);
    acc.a_minor_collections <-
      acc.a_minor_collections + pos (raw_minor_col - f.f_child_minor_col);
    acc.a_major_collections <-
      acc.a_major_collections + pos (raw_major_col - f.f_child_major_col);
    acc.a_compactions <- acc.a_compactions + pos (raw_compact - f.f_child_compact);
    if raw_minor_col - f.f_child_minor_col > 0 || raw_major_col - f.f_child_major_col > 0
    then begin
      let own_ns = pos (raw_ns - f.f_child_ns) in
      if own_ns > acc.a_max_gc_section_ns then acc.a_max_gc_section_ns <- own_ns
    end;
    (* charge this section (including the measurement allocations its
       own window excluded) to the enclosing frame's child totals *)
    if t.depth > 0 then begin
      let p = t.frames.(t.depth - 1) in
      p.f_child_ns <- p.f_child_ns + raw_ns;
      p.f_child_minor <- p.f_child_minor + raw_minor + child_measure_words;
      p.f_child_promoted <- p.f_child_promoted + raw_promoted;
      p.f_child_major <- p.f_child_major + raw_major;
      p.f_child_minor_col <- p.f_child_minor_col + raw_minor_col;
      p.f_child_major_col <- p.f_child_major_col + raw_major_col;
      p.f_child_compact <- p.f_child_compact + raw_compact
    end
  end

let with_phase t phase f =
  phase_begin t phase;
  Fun.protect ~finally:(fun () -> phase_end t phase) f

(* --- record paths ------------------------------------------------------- *)

let record_cycle_ns t ns =
  t.cycles <- t.cycles + 1;
  Loghist.add t.cycle_ns ns

let record_cycle_us t us = record_cycle_ns t (int_of_float (us *. 1e3))
let record_task_ns t ns = Loghist.add t.task_ns ns
let record_task_us t us = record_task_ns t (int_of_float (us *. 1e3))
let record_dwell_ns t ns = Loghist.add t.dwell_ns ns
let record_dwell_us t us = record_dwell_ns t (int_of_float (us *. 1e3))

let add_steal_attempts t n = ignore (Atomic.fetch_and_add t.steal_attempts n)
let add_steals t n = ignore (Atomic.fetch_and_add t.steals n)
let add_steal_cas_failures t n = ignore (Atomic.fetch_and_add t.steal_cas_failures n)
let add_pop_races t n = ignore (Atomic.fetch_and_add t.pop_races n)
let add_queue_pushes t n = ignore (Atomic.fetch_and_add t.queue_pushes n)
let add_queue_pops t n = ignore (Atomic.fetch_and_add t.queue_pops n)
let incr_lock_acquired t = Atomic.incr t.lock_acquired
let incr_lock_contended t = Atomic.incr t.lock_contended
let add_lock_spins t n = ignore (Atomic.fetch_and_add t.lock_spins n)

let cycle_hist t = t.cycle_ns
let task_hist t = t.task_ns
let dwell_hist t = t.dwell_ns

let reset t =
  Array.iter
    (fun a ->
      a.a_sections <- 0;
      a.a_time_ns <- 0;
      a.a_minor_words <- 0;
      a.a_promoted_words <- 0;
      a.a_major_words <- 0;
      a.a_minor_collections <- 0;
      a.a_major_collections <- 0;
      a.a_compactions <- 0;
      a.a_max_gc_section_ns <- 0)
    t.phase_accs;
  t.depth <- 0;
  t.overflow <- 0;
  t.dropped_sections <- 0;
  Loghist.reset t.cycle_ns;
  Loghist.reset t.task_ns;
  Loghist.reset t.dwell_ns;
  Atomic.set t.steal_attempts 0;
  Atomic.set t.steals 0;
  Atomic.set t.steal_cas_failures 0;
  Atomic.set t.pop_races 0;
  Atomic.set t.queue_pushes 0;
  Atomic.set t.queue_pops 0;
  Atomic.set t.lock_acquired 0;
  Atomic.set t.lock_contended 0;
  Atomic.set t.lock_spins 0;
  t.cycles <- 0

(* --- snapshots ----------------------------------------------------------- *)

(* Flat key/value view, sorted by name. Names carry their unit as a
   suffix (_us, _words, or unsuffixed pure counts) — the same
   convention the metrics registry documents. *)
let snapshot_kv t =
  let rows = ref [] in
  let push k v = rows := (k, v) :: !rows in
  let ns_us n = float_of_int n /. 1e3 in
  List.iter
    (fun p ->
      let a = t.phase_accs.(phase_index p) in
      let pre = "telemetry.phase." ^ phase_name p in
      push (pre ^ ".sections") (float_of_int a.a_sections);
      push (pre ^ ".time_us") (ns_us a.a_time_ns);
      push (pre ^ ".minor_words") (float_of_int a.a_minor_words);
      push (pre ^ ".promoted_words") (float_of_int a.a_promoted_words);
      push (pre ^ ".major_words") (float_of_int a.a_major_words);
      push (pre ^ ".minor_collections") (float_of_int a.a_minor_collections);
      push (pre ^ ".major_collections") (float_of_int a.a_major_collections);
      push (pre ^ ".compactions") (float_of_int a.a_compactions);
      push (pre ^ ".max_gc_section_us") (ns_us a.a_max_gc_section_ns))
    phases;
  let hist name h =
    let pre = "telemetry." ^ name in
    push (pre ^ ".count") (float_of_int (Loghist.count h));
    if Loghist.count h > 0 then begin
      push (pre ^ ".mean_us") (Loghist.mean h /. 1e3);
      push (pre ^ ".p50_us") (Loghist.percentile h 50. /. 1e3);
      push (pre ^ ".p90_us") (Loghist.percentile h 90. /. 1e3);
      push (pre ^ ".p99_us") (Loghist.percentile h 99. /. 1e3);
      push (pre ^ ".max_us") (ns_us (Loghist.max h))
    end
  in
  hist "cycle" t.cycle_ns;
  hist "task" t.task_ns;
  hist "dwell" t.dwell_ns;
  push "telemetry.cycles" (float_of_int t.cycles);
  push "telemetry.queue.steal_attempts" (float_of_int (Atomic.get t.steal_attempts));
  push "telemetry.queue.steals" (float_of_int (Atomic.get t.steals));
  push "telemetry.queue.steal_cas_failures"
    (float_of_int (Atomic.get t.steal_cas_failures));
  push "telemetry.queue.pop_races" (float_of_int (Atomic.get t.pop_races));
  push "telemetry.queue.pushes" (float_of_int (Atomic.get t.queue_pushes));
  push "telemetry.queue.pops" (float_of_int (Atomic.get t.queue_pops));
  push "telemetry.lock.acquired" (float_of_int (Atomic.get t.lock_acquired));
  push "telemetry.lock.contended" (float_of_int (Atomic.get t.lock_contended));
  push "telemetry.lock.spins" (float_of_int (Atomic.get t.lock_spins));
  push "telemetry.dropped_sections" (float_of_int t.dropped_sections);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let hist_json h =
  let buckets = ref [] in
  Loghist.iter_nonempty
    (fun ~lower ~upper ~count ->
      buckets :=
        Json.Obj
          [
            ("lo_ns", Json.Int lower); ("hi_ns", Json.Int upper);
            ("count", Json.Int count);
          ]
        :: !buckets)
    h;
  let p q = if Loghist.count h = 0 then Json.Null else Json.Float (Loghist.percentile h q /. 1e3) in
  Json.Obj
    [
      ("count", Json.Int (Loghist.count h));
      ("mean_us", if Loghist.count h = 0 then Json.Null else Json.Float (Loghist.mean h /. 1e3));
      ("p50_us", p 50.);
      ("p90_us", p 90.);
      ("p99_us", p 99.);
      ("max_us", Json.Float (float_of_int (Loghist.max h) /. 1e3));
      ("buckets", Json.List (List.rev !buckets));
    ]

(* Field names below are a stable contract (frozen by an expect-test):
   tools parse `soar_cli telemetry --json` and the bench --gate
   telemetry section with them. *)
let to_json t =
  let phase_obj p =
    let a = t.phase_accs.(phase_index p) in
    ( phase_name p,
      Json.Obj
        [
          ("sections", Json.Int a.a_sections);
          ("time_us", Json.Float (float_of_int a.a_time_ns /. 1e3));
          ("minor_words", Json.Int a.a_minor_words);
          ("promoted_words", Json.Int a.a_promoted_words);
          ("major_words", Json.Int a.a_major_words);
          ("minor_collections", Json.Int a.a_minor_collections);
          ("major_collections", Json.Int a.a_major_collections);
          ("compactions", Json.Int a.a_compactions);
          ("max_gc_section_us", Json.Float (float_of_int a.a_max_gc_section_ns /. 1e3));
        ] )
  in
  Json.Obj
    [
      ("schema", Json.Str "psme-telemetry/1");
      ("cycles", Json.Int t.cycles);
      ("phases", Json.Obj (List.map phase_obj phases));
      ( "hist",
        Json.Obj
          [
            ("cycle_us", hist_json t.cycle_ns);
            ("task_us", hist_json t.task_ns);
            ("dwell_us", hist_json t.dwell_ns);
          ] );
      ( "queue",
        Json.Obj
          [
            ("pushes", Json.Int (Atomic.get t.queue_pushes));
            ("pops", Json.Int (Atomic.get t.queue_pops));
            ("steal_attempts", Json.Int (Atomic.get t.steal_attempts));
            ("steals", Json.Int (Atomic.get t.steals));
            ("steal_cas_failures", Json.Int (Atomic.get t.steal_cas_failures));
            ("pop_races", Json.Int (Atomic.get t.pop_races));
          ] );
      ( "lock",
        Json.Obj
          [
            ("acquired", Json.Int (Atomic.get t.lock_acquired));
            ("contended", Json.Int (Atomic.get t.lock_contended));
            ("spins", Json.Int (Atomic.get t.lock_spins));
          ] );
      ("dropped_sections", Json.Int t.dropped_sections);
    ]

(* --- one-line delta ------------------------------------------------------ *)

let kv_get kv k = Option.value ~default:0. (List.assoc_opt k kv)

(* Rolling watch line: counter deltas between two snapshots plus the
   {e current} latency percentiles (percentile deltas are meaningless).
   Format: one line, fixed field order, human- and grep-friendly. *)
let delta_line ~before ~after =
  let d k = kv_get after k -. kv_get before k in
  let cyc = d "telemetry.cycles" in
  let alloc =
    List.fold_left
      (fun a p -> a +. d ("telemetry.phase." ^ phase_name p ^ ".minor_words"))
      0. phases
  in
  let minor_col =
    List.fold_left
      (fun a p -> a +. d ("telemetry.phase." ^ phase_name p ^ ".minor_collections"))
      0. phases
  in
  let per_cycle x = if cyc > 0. then x /. cyc else 0. in
  Printf.sprintf
    "+%.0fcyc %.0fw/cyc %.0fgc cycle[p50 %.0fus p99 %.0fus max %.0fus] \
     task[p50 %.0fus p99 %.0fus] steals +%.0f/%.0f cas-fail +%.0f lock +%.0f/%.0f \
     spins +%.0f"
    cyc (per_cycle alloc) minor_col
    (kv_get after "telemetry.cycle.p50_us")
    (kv_get after "telemetry.cycle.p99_us")
    (kv_get after "telemetry.cycle.max_us")
    (kv_get after "telemetry.task.p50_us")
    (kv_get after "telemetry.task.p99_us")
    (d "telemetry.queue.steals")
    (d "telemetry.queue.steal_attempts")
    (d "telemetry.queue.steal_cas_failures")
    (d "telemetry.lock.contended")
    (d "telemetry.lock.acquired")
    (d "telemetry.lock.spins")

let pp ppf t =
  List.iter
    (fun (name, v) ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Format.fprintf ppf "%-48s %14.0f@." name v
      else Format.fprintf ppf "%-48s %14.3f@." name v)
    (snapshot_kv t)
