(** Consumer API over a captured event stream.

    The tracer stores flat events ({!Trace.event}); analyses downstream —
    the race detector above all — want typed views and per-cycle
    groupings. This module is the one place that knows the field-reuse
    conventions of each event kind, starting with [Mem_access]:
    [node] = the beta node owning the touched entries, [task] = serial
    of the task that ran the critical section, [scanned] = hash-line
    index, [emitted] = flag bits packed by {!access_bits}. *)

type mem_access = {
  ma_time : float;  (** global virtual time of the access *)
  ma_proc : int;    (** virtual processor that performed it *)
  ma_task : int;    (** task serial within the episode *)
  ma_node : int;    (** beta node owning the memory entries *)
  ma_line : int;    (** hash line = lock granule (§6.1) *)
  ma_cycle : int;
  ma_write : bool;
  ma_locked : bool; (** the section held the line lock *)
}

val access_bits : write:bool -> locked:bool -> int
(** Pack the flag bits stored in a [Mem_access] event's [emitted] field
    (bit 0 = write, bit 1 = locked). Engines call this at emission. *)

val mem_access_of_event : Trace.event -> mem_access option
(** [Some] exactly for [Mem_access] events. *)

val mem_accesses : Trace.event array -> mem_access list
(** All memory accesses of a stream, in stream (time) order. *)

val by_cycle : Trace.event array -> (int * Trace.event array) list
(** Split a stream into per-cycle sub-streams, ascending by cycle index.
    Task serial numbers restart every episode, so happens-before graphs
    must be built per cycle; cycles themselves are barrier-ordered. *)

val iter_kind : Trace.kind -> (Trace.event -> unit) -> Trace.event array -> unit

val procs : Trace.event array -> int list
(** Distinct [proc] values appearing in the stream, ascending. Includes
    [-1] (the control process) when present. *)

(** {2 Binary persistence}

    Fixed-size little-endian records behind the magic ["PSMEEVS1"], so a
    capture can be written to disk and re-analysed offline. Kind tags
    come from {!Trace.kind_to_int} and are append-only. *)

val encode : Trace.event array -> string

val decode : string -> (Trace.event array, string) result
(** Errors (never exceptions) on a bad magic, a truncated header or
    event record, an unknown kind tag, or trailing bytes beyond the
    header's event count. *)

val write_file : string -> Trace.event array -> unit

val read_file : string -> (Trace.event array, string) result
(** [Error] also covers an unopenable file. *)
