(** Structured event tracer: a fixed-capacity ring buffer of typed
    match events.

    The engines emit one event per interesting transition — task
    start/end (with the Rete node, a per-episode task serial number and
    the parent task that spawned it), task-queue operations, lock waits,
    cycle boundaries, chunk additions and updates. The buffer is
    struct-of-arrays and preallocated, so an emission is a handful of
    array stores; when the buffer is full the oldest events are
    overwritten and counted in {!dropped}.

    Times are in {e virtual microseconds} on a single global timeline:
    each engine emits cycle-local times and the tracer offsets them by
    {!set_base}, which {!Psme_engine.Engine} advances after every cycle.
    The tracer also stamps every event with the current cycle index
    ({!set_cycle}).

    Emission is serialized by an internal mutex so the real parallel
    engine's domains can share one tracer. *)

type kind =
  | Task_start
  | Task_end  (** [dur_us] = task cost; [scanned]/[emitted] filled *)
  | Queue_push  (** a task was enqueued; [task]/[parent] identify it *)
  | Queue_pop  (** popped from the process's own queue *)
  | Queue_steal
      (** popped from another process's queue; [node] = the victim
          queue's index (steal provenance: victim→thief edges, the
          thief being [proc]) — [-1] in traces predating the
          attribution layer *)
  | Queue_failed_pop  (** probe found the queue empty *)
  | Lock_wait  (** waited [dur_us] for an exclusive resource *)
  | Cycle_begin
  | Cycle_end  (** [dur_us] = makespan; [scanned] = tasks executed *)
  | Chunk_add  (** [node] = new P-node; [emitted] = new beta nodes *)
  | Chunk_update  (** [emitted] = chunks updated in this batch *)
  | Mem_access
      (** one line-lock critical section against the global hashed
          memories (§6.1): [node] = owning beta node, [task] = the serial
          of the task that performed it, [scanned] = hash-line index,
          [emitted] = flag bits (see {!Stream.access_bits}) *)

val kind_name : kind -> string

val kind_to_int : kind -> int
(** Stable wire tag, 0-based in declaration order. New kinds must be
    appended, never renumbered: {!Stream} persists these tags. *)

val kind_of_int : int -> kind
(** Inverse of {!kind_to_int}; raises [Invalid_argument] on an unknown
    tag. *)

type event = {
  t_us : float;  (** global virtual time *)
  kind : kind;
  proc : int;  (** virtual processor; -1 = the control process *)
  node : int;  (** Rete node id; -1 when not applicable *)
  task : int;  (** task serial number within the episode; -1 n/a *)
  parent : int;  (** serial number of the spawning task; -1 = seed *)
  cycle : int;  (** elaboration-cycle index *)
  dur_us : float;
  scanned : int;
  emitted : int;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to [1 lsl 20] events and is rounded up to a
    power of two. *)

val capacity : t -> int

val emit :
  t ->
  kind ->
  t_us:float ->
  ?proc:int ->
  ?node:int ->
  ?task:int ->
  ?parent:int ->
  ?dur_us:float ->
  ?scanned:int ->
  ?emitted:int ->
  unit ->
  unit
(** Record one event at base + [t_us], stamped with the current cycle. *)

val set_base : t -> float -> unit
(** Set the offset added to every emitted [t_us]. *)

val base : t -> float

val set_cycle : t -> int -> unit
val cycle : t -> int

val length : t -> int
(** Events currently held (<= capacity). *)

val dropped : t -> int
(** Events overwritten because the buffer wrapped. *)

val events : t -> event array
(** The retained events, sorted by time (stable). *)

val clear : t -> unit
(** Drop all events and the dropped count; base and cycle are kept. *)
