(** Minimal JSON emission and validation.

    The container carries no JSON library, and the observability layer
    only needs to {e write} machine-readable exports (metrics snapshots,
    [Cycle.to_json], Chrome trace files) and to {e check} them in tests,
    so this module provides exactly that: a small document type with a
    serializer, low-level [Buffer] helpers for bulk writers that cannot
    afford an intermediate tree (the Chrome exporter), and a validating
    parser used by the test suite and by consumers that want a sanity
    check before shipping a file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** {2 Low-level buffer helpers} *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string. *)

val float_to_buffer : Buffer.t -> float -> unit
(** Append a float literal ([null] when not finite). *)

(** {2 Parsing} *)

val parse : string -> (t, string) result
(** Parse one complete JSON document into a tree. Numbers without a
    fraction or exponent become [Int], others [Float] (so round-trips
    of this module's own output preserve constructors); [\u] escapes
    are decoded to UTF-8. Errors report a byte offset. *)

val validate : string -> (unit, string) result
(** Check that the whole input is one well-formed JSON document.
    Errors report a byte offset. *)

(** {2 Tree accessors} *)

val member : string -> t -> t option
(** [member k j] is field [k] of object [j]; [None] on non-objects or
    missing fields. *)

val to_float_opt : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
