(** Speedup-loss attribution: a per-cycle bottleneck ledger.

    The paper's central negative result (§6.2, Figures 6-5/6-6) is that
    per-cycle speedup is capped well below the processor count. This
    module turns "speedup is 4.1× at 11 procs" into an {e additive
    ledger of why}: for every cycle it decomposes the gap between ideal
    and achieved processor-time into four named components that sum to
    the measured gap exactly (the invariant {!check} enforces and the
    test suite asserts on the paper's tasks).

    All quantities are processor-time (µs × processors) over the
    cycle's {e task-phase window}: the span from the cycle's start to
    the last task/queue/lock event. The alpha constant-test pass that
    {!Psme_engine.Sim.finish_stats} adds to both serial and makespan
    time is deliberately outside the window — it dilutes serial and
    parallel time equally and carries no attribution signal.

    With [P] processors, window makespan [M], summed task cost [S] and
    longest spawn chain [C] (from {!Critical_path}):

    - [ideal = P·M] and [gap = ideal − S]: the processor-time not spent
      executing match tasks;
    - {b critical-path residual} is taken first: the larger of the
      provable chain floor [P·C − S] (processor-time no schedule can
      recover while the longest dependent chain pins the cycle down)
      and the observed {e starvation idle} — processor-time spent while
      the task queues were globally empty, reconstructed by sweeping
      push/pop/steal events against running task spans. When the spawn
      DAG cannot feed the processors, the idleness and the empty-system
      polling it causes are forced by the dependence structure — the
      Figure 6-6 serial tail — and are charged here, not to overhead;
    - {b lock contention}: summed [Lock_wait] durations of the worker
      processes (in the simulator, waits for a busy task queue — the
      §6.1 line-lock analogue on the scheduling structure);
    - {b queue/steal overhead}: every worker-side queue operation
      ([Queue_push]/[Queue_pop]/[Queue_steal]/[Queue_failed_pop])
      charged at the cost-model's per-operation price [queue_op_us];
      lock and queue charges fill the gap remaining after the chain
      component, scaled down proportionally when they exceed it;
    - {b load imbalance}: whatever idle time is left — work existed
      and no chain or measured overhead forced the stall.

    Components are clamped in that order, so each is non-negative and
    they sum to [gap] by construction (± float rounding). *)

type worker = {
  w_proc : int;
  w_tasks : int;
  w_busy_us : float;  (** summed task cost executed on this process *)
  w_queue_ops : int;  (** pushes + pops + steals + failed pops *)
  w_queue_us : float;  (** [w_queue_ops × queue_op_us] *)
  w_lock_us : float;  (** summed [Lock_wait] durations *)
  w_idle_us : float;  (** window makespan minus the three above, >= 0 *)
  w_steals : int;  (** tasks this process took from another queue *)
  w_stolen_from : int;
      (** tasks thieves took from this process's queue (steal
          provenance: the victim queue index rides in the [node] field
          of [Queue_steal] events) *)
  w_failed_pops : int;
}

type ledger = {
  a_cycle : int;  (** elaboration-cycle index *)
  a_procs : int;
  a_tasks : int;
  a_t0_us : float;  (** window start on the global virtual timeline *)
  a_makespan_us : float;  (** task-phase window span [M] *)
  a_busy_us : float;  (** [S]: summed task cost *)
  a_ideal_us : float;  (** [P·M] *)
  a_gap_us : float;  (** [ideal − busy] *)
  a_cp_us : float;  (** [C]: longest spawn chain *)
  a_cp_residual_us : float;
  a_imbalance_us : float;
  a_queue_us : float;
  a_lock_us : float;
  a_workers : worker list;  (** per-worker timeline, by process id *)
}

val per_cycle :
  procs:int -> queue_op_us:float -> Trace.event array -> ledger list
(** One ledger per cycle that executed at least one task, in cycle
    order. [procs] is the configured process count (idle processes may
    emit no events); [queue_op_us] prices one queue operation — pass
    the cost model's [Cost.queue_op_us] for simulator traces and [0.]
    for real-engine traces, where queue operations are part of the
    measured wall time rather than a modeled charge. *)

val components : ledger -> (string * float) list
(** The four components with their stable names, ledger order:
    [cp_residual], [imbalance], [queue], [lock]. *)

val component_label : string -> string
(** Human-readable label for a stable component name, e.g.
    ["cp_residual"] -> ["critical-path residual"]. *)

val dominant : ledger -> string * float
(** The largest component (stable name, µs). *)

val check : ledger -> (unit, string) result
(** The additivity invariant: components sum to [a_gap_us] within
    rounding, every component and every worker idle is non-negative. *)

type totals = {
  t_cycles : int;
  t_ideal_us : float;
  t_busy_us : float;
  t_gap_us : float;
  t_cp_residual_us : float;
  t_imbalance_us : float;
  t_queue_us : float;
  t_lock_us : float;
}

val totals : ledger list -> totals
val totals_components : totals -> (string * float) list
val totals_dominant : totals -> string * float

val worst : ledger list -> ledger option
(** The worst-parallelizing cycle: the one losing the greatest {e
    share} of its ideal processor-time ([a_gap_us / a_ideal_us], ties
    broken by absolute loss) — the per-cycle worst-speedup notion of
    the paper's Figure 6-6, and the cycle a diagnosis should explain
    first. *)

val to_json :
  ?per_cycle:bool -> task:string -> queue_op_us:float -> ledger list -> Json.t
(** Schema ["psme-attribution/1"]. Always carries [totals] and the
    totals' dominant component; [per_cycle] (default false) adds the
    [cycles] array with each ledger and its per-worker rows. *)

val pp : ?top:int -> Format.formatter -> ledger list -> unit
(** Totals plus the [top] cycles by gap. *)
