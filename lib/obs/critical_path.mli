(** Critical-path analysis of the task dependence DAG.

    Every [Task_end] event names the task that spawned it, so the
    tracer's stream contains the whole parent→child dependence DAG of
    each cycle. This module reconstructs it and computes, per cycle, the
    {e longest chain}: the maximum over tasks of the summed cost along
    the spawn chain ending at that task. That chain is the paper's
    "long chains" limit (§6.2, Figure 6-7) made computable — no
    schedule on any number of processors can finish the cycle in less
    than the chain's time, so [serial_us / cp_us] bounds the cycle's
    attainable speedup and [cp_us <= makespan_us] always holds for the
    simulated schedule.

    Task serial numbers are assigned at spawn time, so a parent's
    number is always smaller than its children's — one pass in id order
    computes all chain lengths. *)

type cycle_report = {
  cp_cycle : int;  (** elaboration-cycle index *)
  cp_tasks : int;  (** tasks executed in the cycle *)
  cp_serial_us : float;  (** summed task cost (no alpha pass) *)
  cp_us : float;  (** longest chain, µs *)
  cp_len : int;  (** tasks on that chain *)
  cp_head_node : int;  (** Rete node of the chain's last task *)
  cp_makespan_us : float;
      (** from the cycle's events: last activity minus cycle start
          (includes queue waits, excludes the alpha pass) *)
}

val per_cycle : Trace.event array -> cycle_report list
(** One report per cycle that executed at least one task, in cycle
    order. *)

val bound_speedup : cycle_report -> float
(** [cp_serial_us / cp_us]: the cycle's chain-limited speedup bound. *)

val longest : cycle_report list -> cycle_report option
(** The cycle with the longest chain. *)

val pp : ?top:int -> Format.formatter -> cycle_report list -> unit
(** The [top] cycles by chain length, plus totals. *)
