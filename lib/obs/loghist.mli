(** Log-scale latency/size histogram (HdrHistogram style).

    Buckets are preallocated: 16 exact unit buckets for values 0..15,
    then 16 sub-buckets per power of two, bounding relative bucket
    width at 6.25%. {!add} writes one array slot and a few immediate
    fields — {e zero allocation}, cheap enough to leave on in the match
    hot path. Percentile extraction ({!percentile}) is exact to bucket
    resolution; {!max} and {!min} are exact (tracked separately).

    Values are non-negative integers; the telemetry layer records
    nanoseconds (histogram names carry the unit of the {e exported}
    figures, e.g. [..._us] when the snapshot divides by 1000). Negative
    inputs clamp to 0. Not thread-safe: racing [add]s may drop counts;
    treat concurrent use as statistical sampling. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one value. Allocation-free. *)

val count : t -> int
val sum : t -> int
val mean : t -> float

val min : t -> int
(** Exact smallest recorded value; 0 when empty. *)

val max : t -> int
(** Exact largest recorded value; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for p in [0,100]: bucket-midpoint estimate, exact
    to bucket resolution; [p = 100] returns the exact max. NaN when
    empty. *)

val reset : t -> unit

val iter_nonempty : (lower:int -> upper:int -> count:int -> unit) -> t -> unit
(** Visit non-empty buckets in ascending value order ([lower] inclusive,
    [upper] exclusive). *)

val merge_into : into:t -> t -> unit
(** Add every bucket of the argument into [into] (for per-domain
    histograms folded at a barrier). *)
