(** Per-node / per-production match profiler over the event stream.

    Folds the tracer's [Task_end] events into a cost account: for every
    Rete node, the tasks executed there, the memory entries scanned, the
    child tasks emitted and the virtual microseconds charged; and the
    same rolled up to productions. A node shared by [k] productions
    contributes [1/k] of its cost to each (so the production table
    partitions the total task time exactly); nodes owned by no
    production are reported under ["(unattributed)"].

    The caller supplies the node metadata as functions, so this module
    needs no dependency on the Rete representation. *)

type node_row = {
  nr_node : int;
  nr_kind : string;
  nr_tasks : int;
  nr_scanned : int;
  nr_emitted : int;
  nr_us : float;
  nr_owners : int;  (** productions sharing this node *)
}

type prod_row = {
  pr_name : string;
  pr_tasks : float;  (** fractional: shared nodes split their counts *)
  pr_scanned : float;
  pr_emitted : float;
  pr_us : float;
  pr_nodes : int;  (** nodes (partly) attributed to this production *)
}

type t = {
  nodes : node_row list;  (** sorted by µs, hottest first *)
  prods : prod_row list;  (** sorted by µs, hottest first *)
  total_tasks : int;
  total_us : float;  (** sum of task costs over all events *)
}

val of_events :
  node_kind:(int -> string) ->
  node_prods:(int -> string list) ->
  Trace.event array ->
  t

val pp_nodes : ?top:int -> Format.formatter -> t -> unit
val pp_prods : ?top:int -> Format.formatter -> t -> unit
