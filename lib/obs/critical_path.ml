type cycle_report = {
  cp_cycle : int;
  cp_tasks : int;
  cp_serial_us : float;
  cp_us : float;
  cp_len : int;
  cp_head_node : int;
  cp_makespan_us : float;
}

type acc = {
  mutable tasks : int;
  mutable serial_us : float;
  mutable best_us : float;
  mutable best_len : int;
  mutable best_node : int;
  mutable t_min : float;
  mutable t_max : float;
  depth : (int, float * int) Hashtbl.t;  (* task -> (chain µs, chain len) *)
}

let per_cycle (events : Trace.event array) =
  let cycles : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_of c =
    match Hashtbl.find_opt cycles c with
    | Some a -> a
    | None ->
      let a =
        {
          tasks = 0;
          serial_us = 0.;
          best_us = 0.;
          best_len = 0;
          best_node = -1;
          t_min = infinity;
          t_max = neg_infinity;
          depth = Hashtbl.create 256;
        }
      in
      Hashtbl.replace cycles c a;
      a
  in
  (* Chain lengths need parents resolved before children; task ids are
     spawn-ordered, so process Task_end events sorted by task id. *)
  let ends =
    events |> Array.to_list
    |> List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Task_end)
    |> List.sort (fun (a : Trace.event) (b : Trace.event) ->
           compare a.Trace.task b.Trace.task)
  in
  List.iter
    (fun (e : Trace.event) ->
      let a = acc_of e.Trace.cycle in
      a.tasks <- a.tasks + 1;
      a.serial_us <- a.serial_us +. e.Trace.dur_us;
      a.t_min <- Float.min a.t_min (e.Trace.t_us -. e.Trace.dur_us);
      a.t_max <- Float.max a.t_max e.Trace.t_us;
      let p_us, p_len =
        match Hashtbl.find_opt a.depth e.Trace.parent with
        | Some d -> d
        | None -> (0., 0)
      in
      let us = p_us +. e.Trace.dur_us in
      let len = p_len + 1 in
      Hashtbl.replace a.depth e.Trace.task (us, len);
      if us > a.best_us then begin
        a.best_us <- us;
        a.best_len <- len;
        a.best_node <- e.Trace.node
      end)
    ends;
  (* Cycle boundary events refine the makespan when present. *)
  Array.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Cycle_end when Hashtbl.mem cycles e.Trace.cycle ->
        let a = acc_of e.Trace.cycle in
        a.t_min <- Float.min a.t_min (e.Trace.t_us -. e.Trace.dur_us);
        a.t_max <- Float.max a.t_max e.Trace.t_us
      | _ -> ())
    events;
  Hashtbl.fold
    (fun c a reports ->
      {
        cp_cycle = c;
        cp_tasks = a.tasks;
        cp_serial_us = a.serial_us;
        cp_us = a.best_us;
        cp_len = a.best_len;
        cp_head_node = a.best_node;
        cp_makespan_us = (if a.tasks = 0 then 0. else a.t_max -. a.t_min);
      }
      :: reports)
    cycles []
  |> List.filter (fun r -> r.cp_tasks > 0)
  |> List.sort (fun a b -> compare a.cp_cycle b.cp_cycle)

let bound_speedup r = if r.cp_us <= 0. then 1. else r.cp_serial_us /. r.cp_us

let longest reports =
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some b -> if r.cp_us > b.cp_us then Some r else best)
    None reports

let pp ?(top = 8) ppf reports =
  Format.fprintf ppf "%-7s %8s %12s %12s %7s %12s %8s@." "cycle" "tasks"
    "serial_us" "chain_us" "chain" "makespan_us" "bound";
  let by_chain = List.sort (fun a b -> compare b.cp_us a.cp_us) reports in
  List.iteri
    (fun i r ->
      if i < top then
        Format.fprintf ppf "%-7d %8d %12.1f %12.1f %7d %12.1f %8.2f@."
          r.cp_cycle r.cp_tasks r.cp_serial_us r.cp_us r.cp_len
          r.cp_makespan_us (bound_speedup r))
    by_chain;
  let total_serial = List.fold_left (fun a r -> a +. r.cp_serial_us) 0. reports in
  let total_cp = List.fold_left (fun a r -> a +. r.cp_us) 0. reports in
  Format.fprintf ppf
    "%d cycles: total serial %.1f us, summed chains %.1f us (chain-bound speedup %.2f)@."
    (List.length reports) total_serial total_cp
    (if total_cp <= 0. then 1. else total_serial /. total_cp)
