type worker = {
  w_proc : int;
  w_tasks : int;
  w_busy_us : float;
  w_queue_ops : int;
  w_queue_us : float;
  w_lock_us : float;
  w_idle_us : float;
  w_steals : int;
  w_stolen_from : int;
  w_failed_pops : int;
}

type ledger = {
  a_cycle : int;
  a_procs : int;
  a_tasks : int;
  a_t0_us : float;
  a_makespan_us : float;
  a_busy_us : float;
  a_ideal_us : float;
  a_gap_us : float;
  a_cp_us : float;
  a_cp_residual_us : float;
  a_imbalance_us : float;
  a_queue_us : float;
  a_lock_us : float;
  a_workers : worker list;
}

(* per-cycle accumulator over one pass of the event stream *)
type wacc = {
  mutable c_tasks : int;
  mutable c_busy : float;
  mutable c_qops : int;
  mutable c_lock : float;
  mutable c_steals : int;
  mutable c_stolen : int;
  mutable c_failed : int;
}

type acc = {
  mutable tasks : int;
  mutable t0 : float;
  mutable t1 : float;
  workers : (int, wacc) Hashtbl.t;
}

let wacc_of a p =
  match Hashtbl.find_opt a.workers p with
  | Some w -> w
  | None ->
    let w =
      { c_tasks = 0; c_busy = 0.; c_qops = 0; c_lock = 0.; c_steals = 0;
        c_stolen = 0; c_failed = 0 }
    in
    Hashtbl.replace a.workers p w;
    w

let per_cycle ~procs ~queue_op_us (events : Trace.event array) =
  let procs = max 1 procs in
  let cycles : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_of c =
    match Hashtbl.find_opt cycles c with
    | Some a -> a
    | None ->
      let a =
        { tasks = 0; t0 = infinity; t1 = neg_infinity; workers = Hashtbl.create 16 }
      in
      Hashtbl.replace cycles c a;
      a
  in
  Array.iter
    (fun (e : Trace.event) ->
      let a = acc_of e.Trace.cycle in
      let p = e.Trace.proc in
      (* the task-phase window spans task/queue/lock activity; cycle
         markers (which include the alpha pass) and chunk/memory
         bookkeeping events stay out of it *)
      let window start fin =
        a.t0 <- Float.min a.t0 start;
        a.t1 <- Float.max a.t1 fin
      in
      match e.Trace.kind with
      | Trace.Cycle_begin -> a.t0 <- Float.min a.t0 e.Trace.t_us
      | Trace.Cycle_end | Trace.Chunk_add | Trace.Chunk_update | Trace.Mem_access
        -> ()
      | Trace.Task_start -> window e.Trace.t_us e.Trace.t_us
      | Trace.Task_end ->
        window (e.Trace.t_us -. e.Trace.dur_us) e.Trace.t_us;
        a.tasks <- a.tasks + 1;
        if p >= 0 then begin
          let w = wacc_of a p in
          w.c_tasks <- w.c_tasks + 1;
          w.c_busy <- w.c_busy +. e.Trace.dur_us
        end
      | Trace.Lock_wait ->
        window (e.Trace.t_us -. e.Trace.dur_us) e.Trace.t_us;
        if p >= 0 then begin
          let w = wacc_of a p in
          w.c_lock <- w.c_lock +. e.Trace.dur_us
        end
      | Trace.Queue_push | Trace.Queue_pop | Trace.Queue_steal
      | Trace.Queue_failed_pop ->
        window e.Trace.t_us e.Trace.t_us;
        if p >= 0 then begin
          let w = wacc_of a p in
          w.c_qops <- w.c_qops + 1;
          (match e.Trace.kind with
          | Trace.Queue_steal ->
            w.c_steals <- w.c_steals + 1;
            (* steal provenance: the victim queue index rides in the
               event's node field (see Trace.mli) *)
            if e.Trace.node >= 0 then begin
              let v = wacc_of a e.Trace.node in
              v.c_stolen <- v.c_stolen + 1
            end
          | Trace.Queue_failed_pop -> w.c_failed <- w.c_failed + 1
          | _ -> ())
        end)
    events;
  (* longest spawn chain per cycle, from the critical-path analyzer *)
  let cp_by_cycle = Hashtbl.create 64 in
  List.iter
    (fun (r : Critical_path.cycle_report) ->
      Hashtbl.replace cp_by_cycle r.Critical_path.cp_cycle r.Critical_path.cp_us)
    (Critical_path.per_cycle events);
  (* Starvation idle per cycle: processor-time spent while the task
     queues were globally empty — the spawn DAG could not feed the
     processors, so the idleness (and the polling it causes) is forced
     by the dependence structure, not by scheduling. Reconstructed by a
     sweep over queue push/pop/steal events (queue depth) and task
     spans (running count r): integrate (P − r)·dt where depth = 0. *)
  let starvation_by_cycle =
    let edges : (int, (float * int * int) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    (* edge = (time, queue delta, running delta) *)
    let add c t dq dr =
      match Hashtbl.find_opt edges c with
      | Some l -> l := (t, dq, dr) :: !l
      | None -> Hashtbl.replace edges c (ref [ (t, dq, dr) ])
    in
    Array.iter
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Queue_push -> add e.Trace.cycle e.Trace.t_us 1 0
        | Trace.Queue_pop | Trace.Queue_steal -> add e.Trace.cycle e.Trace.t_us (-1) 0
        | Trace.Task_end ->
          add e.Trace.cycle (e.Trace.t_us -. e.Trace.dur_us) 0 1;
          add e.Trace.cycle e.Trace.t_us 0 (-1)
        | _ -> ())
      events;
    let out = Hashtbl.create 64 in
    Hashtbl.iter
      (fun c l ->
        let p = float_of_int procs in
        (* at equal times, apply pushes and task starts before pops and
           task ends, so depth/running never dip negative on ties *)
        let sorted =
          List.sort
            (fun (ta, dqa, dra) (tb, dqb, drb) ->
              match compare ta tb with
              | 0 -> compare (dqb, drb) (dqa, dra)
              | n -> n)
            !l
        in
        let starved = ref 0. in
        let depth = ref 0 in
        let running = ref 0 in
        let prev = ref nan in
        List.iter
          (fun (t, dq, dr) ->
            (if (not (Float.is_nan !prev)) && !depth <= 0 then
               starved :=
                 !starved +. ((t -. !prev) *. Float.max 0. (p -. float_of_int !running)));
            depth := max 0 (!depth + dq);
            running := max 0 (!running + dr);
            prev := t)
          sorted;
        Hashtbl.replace out c !starved)
      edges;
    out
  in
  Hashtbl.fold
    (fun c a ledgers ->
      if a.tasks = 0 then ledgers
      else begin
        let m = Float.max 0. (a.t1 -. a.t0) in
        let p = float_of_int procs in
        let workers =
          List.init procs (fun i ->
              let w =
                Option.value
                  ~default:
                    { c_tasks = 0; c_busy = 0.; c_qops = 0; c_lock = 0.;
                      c_steals = 0; c_stolen = 0; c_failed = 0 }
                  (Hashtbl.find_opt a.workers i)
              in
              let queue_us = float_of_int w.c_qops *. queue_op_us in
              {
                w_proc = i;
                w_tasks = w.c_tasks;
                w_busy_us = w.c_busy;
                w_queue_ops = w.c_qops;
                w_queue_us = queue_us;
                w_lock_us = w.c_lock;
                w_idle_us = Float.max 0. (m -. w.c_busy -. queue_us -. w.c_lock);
                w_steals = w.c_steals;
                w_stolen_from = w.c_stolen;
                w_failed_pops = w.c_failed;
              })
        in
        let busy = List.fold_left (fun s w -> s +. w.w_busy_us) 0. workers in
        let ideal = p *. m in
        let gap = Float.max 0. (ideal -. busy) in
        (* The chain component comes first. It is the larger of two
           views of the same cause: the provable floor [P·C − S]
           (processor-time no schedule can recover while the longest
           dependent chain pins the cycle down for C µs), and the
           observed starvation idle (processor-time spent while the
           task queues were globally empty — the spawn DAG could not
           feed the processors, so the idleness and the empty-system
           polling it causes are forced by the dependence structure).
           Overhead measured during starvation is absorbed here rather
           than double-counted. The measured lock and queue charges
           then fill the remainder (scaled down together when they
           exceed it), and load imbalance is what's left. Each step
           keeps the components non-negative and summing to the gap by
           construction. *)
        let cp = Option.value ~default:0. (Hashtbl.find_opt cp_by_cycle c) in
        let starved =
          Option.value ~default:0. (Hashtbl.find_opt starvation_by_cycle c)
        in
        let cp_residual =
          Float.min gap (Float.max starved (Float.max 0. ((p *. cp) -. busy)))
        in
        let rem = gap -. cp_residual in
        let lock_m = List.fold_left (fun s w -> s +. w.w_lock_us) 0. workers in
        let queue_m = List.fold_left (fun s w -> s +. w.w_queue_us) 0. workers in
        let lock, queue =
          if lock_m +. queue_m <= rem || lock_m +. queue_m <= 0. then
            (lock_m, queue_m)
          else begin
            let scale = rem /. (lock_m +. queue_m) in
            (lock_m *. scale, queue_m *. scale)
          end
        in
        let imbalance = Float.max 0. (rem -. lock -. queue) in
        {
          a_cycle = c;
          a_procs = procs;
          a_tasks = a.tasks;
          a_t0_us = a.t0;
          a_makespan_us = m;
          a_busy_us = busy;
          a_ideal_us = ideal;
          a_gap_us = gap;
          a_cp_us = cp;
          a_cp_residual_us = cp_residual;
          a_imbalance_us = imbalance;
          a_queue_us = queue;
          a_lock_us = lock;
          a_workers = workers;
        }
        :: ledgers
      end)
    cycles []
  |> List.sort (fun a b -> compare a.a_cycle b.a_cycle)

let components l =
  [
    ("cp_residual", l.a_cp_residual_us);
    ("imbalance", l.a_imbalance_us);
    ("queue", l.a_queue_us);
    ("lock", l.a_lock_us);
  ]

let component_label = function
  | "cp_residual" -> "critical-path residual"
  | "imbalance" -> "load imbalance"
  | "queue" -> "queue/steal overhead"
  | "lock" -> "lock contention"
  | s -> s

let pick_dominant comps =
  List.fold_left
    (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
    (List.hd comps) (List.tl comps)

let dominant l = pick_dominant (components l)

let check l =
  let eps = 1e-6 *. Float.max 1. l.a_ideal_us in
  let sum = List.fold_left (fun s (_, v) -> s +. v) 0. (components l) in
  if Float.abs (sum -. l.a_gap_us) > eps then
    Error
      (Printf.sprintf
         "cycle %d: components sum to %.3f us but the gap is %.3f us" l.a_cycle
         sum l.a_gap_us)
  else
    match List.find_opt (fun (_, v) -> v < -.eps) (components l) with
    | Some (n, v) ->
      Error (Printf.sprintf "cycle %d: component %s is negative (%.3f us)" l.a_cycle n v)
    | None -> (
      match List.find_opt (fun w -> w.w_idle_us < -.eps) l.a_workers with
      | Some w ->
        Error
          (Printf.sprintf "cycle %d: worker %d idle time is negative (%.3f us)"
             l.a_cycle w.w_proc w.w_idle_us)
      | None -> Ok ())

type totals = {
  t_cycles : int;
  t_ideal_us : float;
  t_busy_us : float;
  t_gap_us : float;
  t_cp_residual_us : float;
  t_imbalance_us : float;
  t_queue_us : float;
  t_lock_us : float;
}

let totals ledgers =
  List.fold_left
    (fun t l ->
      {
        t_cycles = t.t_cycles + 1;
        t_ideal_us = t.t_ideal_us +. l.a_ideal_us;
        t_busy_us = t.t_busy_us +. l.a_busy_us;
        t_gap_us = t.t_gap_us +. l.a_gap_us;
        t_cp_residual_us = t.t_cp_residual_us +. l.a_cp_residual_us;
        t_imbalance_us = t.t_imbalance_us +. l.a_imbalance_us;
        t_queue_us = t.t_queue_us +. l.a_queue_us;
        t_lock_us = t.t_lock_us +. l.a_lock_us;
      })
    {
      t_cycles = 0;
      t_ideal_us = 0.;
      t_busy_us = 0.;
      t_gap_us = 0.;
      t_cp_residual_us = 0.;
      t_imbalance_us = 0.;
      t_queue_us = 0.;
      t_lock_us = 0.;
    }
    ledgers

let totals_components t =
  [
    ("cp_residual", t.t_cp_residual_us);
    ("imbalance", t.t_imbalance_us);
    ("queue", t.t_queue_us);
    ("lock", t.t_lock_us);
  ]

let totals_dominant t = pick_dominant (totals_components t)

(* the worst-parallelizing cycle: greatest share of its ideal
   processor-time lost (ties broken by absolute loss) — the per-cycle
   worst-speedup notion of the paper's Figure 6-6 *)
let worst ledgers =
  let share l = if l.a_ideal_us <= 0. then 0. else l.a_gap_us /. l.a_ideal_us in
  List.fold_left
    (fun best l ->
      match best with
      | None -> Some l
      | Some b ->
        let sl = share l and sb = share b in
        if sl > sb || (sl = sb && l.a_gap_us > b.a_gap_us) then Some l else best)
    None ledgers

(* --- JSON export --------------------------------------------------------- *)

let worker_json w =
  Json.Obj
    [
      ("proc", Json.Int w.w_proc);
      ("tasks", Json.Int w.w_tasks);
      ("busy_us", Json.Float w.w_busy_us);
      ("queue_ops", Json.Int w.w_queue_ops);
      ("queue_us", Json.Float w.w_queue_us);
      ("lock_us", Json.Float w.w_lock_us);
      ("idle_us", Json.Float w.w_idle_us);
      ("steals", Json.Int w.w_steals);
      ("stolen_from", Json.Int w.w_stolen_from);
      ("failed_pops", Json.Int w.w_failed_pops);
    ]

let ledger_json ?(workers = false) l =
  Json.Obj
    ([
       ("cycle", Json.Int l.a_cycle);
       ("tasks", Json.Int l.a_tasks);
       ("t0_us", Json.Float l.a_t0_us);
       ("makespan_us", Json.Float l.a_makespan_us);
       ("busy_us", Json.Float l.a_busy_us);
       ("ideal_us", Json.Float l.a_ideal_us);
       ("gap_us", Json.Float l.a_gap_us);
       ("cp_us", Json.Float l.a_cp_us);
       ("cp_residual_us", Json.Float l.a_cp_residual_us);
       ("imbalance_us", Json.Float l.a_imbalance_us);
       ("queue_us", Json.Float l.a_queue_us);
       ("lock_us", Json.Float l.a_lock_us);
       ("dominant", Json.Str (fst (dominant l)));
     ]
    @
    if workers then
      [ ("workers", Json.List (List.map worker_json l.a_workers)) ]
    else [])

let to_json ?(per_cycle = false) ~task ~queue_op_us ledgers =
  let t = totals ledgers in
  let procs = match ledgers with [] -> 0 | l :: _ -> l.a_procs in
  Json.Obj
    ([
       ("schema", Json.Str "psme-attribution/1");
       ("task", Json.Str task);
       ("procs", Json.Int procs);
       ("queue_op_us", Json.Float queue_op_us);
       ( "totals",
         Json.Obj
           [
             ("cycles", Json.Int t.t_cycles);
             ("ideal_us", Json.Float t.t_ideal_us);
             ("busy_us", Json.Float t.t_busy_us);
             ("gap_us", Json.Float t.t_gap_us);
             ("cp_residual_us", Json.Float t.t_cp_residual_us);
             ("imbalance_us", Json.Float t.t_imbalance_us);
             ("queue_us", Json.Float t.t_queue_us);
             ("lock_us", Json.Float t.t_lock_us);
             ( "dominant",
               if t.t_cycles = 0 then Json.Null
               else Json.Str (fst (totals_dominant t)) );
           ] );
       ( "worst_cycle",
         match worst ledgers with
         | None -> Json.Null
         | Some l -> ledger_json l );
     ]
    @
    if per_cycle then
      [ ("cycles", Json.List (List.map (ledger_json ~workers:true) ledgers)) ]
    else [])

(* --- pretty printing ----------------------------------------------------- *)

let pct part whole = if whole <= 0. then 0. else 100. *. part /. whole

let pp ?(top = 8) ppf ledgers =
  let t = totals ledgers in
  Format.fprintf ppf
    "%d cycles: ideal %.0f us of processor-time, busy %.0f us, gap %.0f us \
     (%.0f%%)@."
    t.t_cycles t.t_ideal_us t.t_busy_us t.t_gap_us (pct t.t_gap_us t.t_ideal_us);
  List.iter
    (fun (n, v) ->
      Format.fprintf ppf "  %-24s %14.0f us  %5.1f%% of the gap@."
        (component_label n) v (pct v t.t_gap_us))
    (totals_components t);
  (match t.t_cycles with
  | 0 -> ()
  | _ ->
    let n, v = totals_dominant t in
    Format.fprintf ppf "dominant: %s (%.1f%% of the gap)@." (component_label n)
      (pct v t.t_gap_us));
  Format.fprintf ppf "%-7s %7s %11s %11s %11s %11s %9s %9s  %s@." "cycle"
    "tasks" "gap_us" "cp_res_us" "imbal_us" "queue_us" "lock_us" "chain_us"
    "dominant";
  let by_gap = List.sort (fun a b -> compare b.a_gap_us a.a_gap_us) ledgers in
  List.iteri
    (fun i l ->
      if i < top then
        Format.fprintf ppf "%-7d %7d %11.1f %11.1f %11.1f %11.1f %9.1f %9.1f  %s@."
          l.a_cycle l.a_tasks l.a_gap_us l.a_cp_residual_us l.a_imbalance_us
          l.a_queue_us l.a_lock_us l.a_cp_us
          (component_label (fst (dominant l))))
    by_gap
