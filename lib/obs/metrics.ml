open Psme_support

type counter = int Atomic.t

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, Stats.t) Hashtbl.t;
  probes : (string, unit -> float) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 64;
    probes = Hashtbl.create 64;
  }

let global = create ()

let counter t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace t.counters name c;
        c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        let g = Stats.create () in
        Hashtbl.replace t.gauges name g;
        g)

let observe t name x =
  let g = gauge t name in
  Mutex.protect t.lock (fun () -> Stats.add g x)

let set_probe t name f =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.probes name f)

type snapshot = (string * float) list

let snapshot t =
  let rows = ref [] in
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter
        (fun name c -> rows := (name, float_of_int (Atomic.get c)) :: !rows)
        t.counters;
      Hashtbl.iter
        (fun name g ->
          rows := (name ^ ".count", float_of_int (Stats.count g)) :: !rows;
          if Stats.count g > 0 then begin
            rows := (name ^ ".total", Stats.total g) :: !rows;
            rows := (name ^ ".mean", Stats.mean g) :: !rows;
            rows := (name ^ ".min", Stats.min g) :: !rows;
            rows := (name ^ ".max", Stats.max g) :: !rows
          end)
        t.gauges;
      Hashtbl.iter (fun name f -> rows := (name, f ()) :: !rows) t.probes);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let delta ~before ~after =
  let prior = Hashtbl.create (List.length before) in
  List.iter (fun (k, v) -> Hashtbl.replace prior k v) before;
  List.map
    (fun (k, v) ->
      let v0 = Option.value ~default:0. (Hashtbl.find_opt prior k) in
      (k, v -. v0))
    after

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) t.counters;
      Hashtbl.reset t.gauges)

let pp ppf (snap : snapshot) =
  List.iter
    (fun (name, v) ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Format.fprintf ppf "%-44s %12.0f@." name v
      else Format.fprintf ppf "%-44s %12.3f@." name v)
    snap

let to_json (snap : snapshot) =
  Json.to_string (Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap))
