(** Always-on runtime telemetry.

    Distinct from the opt-in tracer ({!Trace}) and profiler
    ({!Profile}): this layer is cheap enough to stay enabled in
    production runs. The record path — histogram adds, counter bumps —
    performs {e zero allocation} (asserted by a test diffing
    [Gc.minor_words] across a burst of records). Phase accounting reads
    minor words from the precise [Gc.minor_words] counter (the
    [Gc.quick_stat] field only syncs at minor collections and reads a
    zero delta over short sections) and orders its measurement calls so
    a section's own window contains no measurement allocation; a nested
    section's measurement overhead is calibrated at module load and
    charged to the parent's child total, so attributed words measure
    the phase rather than the measurement.

    Three kinds of signal:
    - {b per-phase GC accounting}: minor/promoted/major words,
      collection counts, and a max-pause proxy (longest section that
      saw a collection), attributed exclusively — a nested phase's cost
      is subtracted from its parent;
    - {b latency histograms} ({!Loghist}): cycle time, task time, queue
      dwell time, recorded in nanoseconds, exported in microseconds
      with exact p50/p90/p99/max;
    - {b contention counters}: Chase–Lev deque steal traffic and memory
      line-lock contention, threaded through {!Psme_support.Ws_deque}
      and the rete memories. *)

type phase =
  | Match  (** rete activation propagation (Engine.run_changes / run_tasks) *)
  | Conflict_resolution  (** decision procedure over the conflict set *)
  | Act  (** RHS firing: instantiation, working-memory changes *)
  | Chunk_splice  (** chunk compilation and network splice *)

val phases : phase list
(** All phases, in display order. *)

val phase_name : phase -> string
(** Stable lowercase name: ["match"], ["conflict-resolution"], ["act"],
    ["chunk-splice"]. *)

type t

val create : unit -> t

val global : t
(** Shared instance the engines and CLI record into. *)

(** {2 Phase accounting}

    Sections may nest (chunk-splice runs a nested match); attribution
    is exclusive. Nesting deeper than 8 frames drops the section (and
    counts it in [dropped_sections]). Begin/end must pair on one
    domain. *)

val phase_begin : t -> phase -> unit
val phase_end : t -> phase -> unit

val with_phase : t -> phase -> (unit -> 'a) -> 'a
(** Bracketed {!phase_begin}/{!phase_end}; the end runs on exceptions. *)

(** {2 Record paths — allocation-free} *)

val record_cycle_ns : t -> int -> unit
val record_cycle_us : t -> float -> unit
val record_task_ns : t -> int -> unit
val record_task_us : t -> float -> unit
val record_dwell_ns : t -> int -> unit
val record_dwell_us : t -> float -> unit

val add_steal_attempts : t -> int -> unit
val add_steals : t -> int -> unit
val add_steal_cas_failures : t -> int -> unit
val add_pop_races : t -> int -> unit
val add_queue_pushes : t -> int -> unit
val add_queue_pops : t -> int -> unit
val incr_lock_acquired : t -> unit
val incr_lock_contended : t -> unit
val add_lock_spins : t -> int -> unit

val cycle_hist : t -> Loghist.t
val task_hist : t -> Loghist.t
val dwell_hist : t -> Loghist.t

val reset : t -> unit

(** {2 Snapshots and export} *)

val snapshot_kv : t -> (string * float) list
(** Flat view sorted by name. Names are unit-suffixed ([_us],
    [_words]); unsuffixed names are pure counts. *)

val to_json : t -> Json.t
(** Schema ["psme-telemetry/1"]. Field names are a stable contract
    frozen by an expect-test. *)

val delta_line : before:(string * float) list -> after:(string * float) list -> string
(** One-line rolling delta between two {!snapshot_kv} snapshots:
    counter deltas plus current latency percentiles. Drives
    [soar_cli telemetry --watch]. *)

val pp : Format.formatter -> t -> unit
