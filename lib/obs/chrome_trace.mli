(** Chrome trace-event (Perfetto) export.

    Renders a traced run as a JSON timeline that opens directly in
    [ui.perfetto.dev] or [chrome://tracing]: one lane ("thread") per
    virtual match process showing its task executions as duration
    events, a control lane for injected work, a cycles lane marking
    elaboration-cycle spans and chunk events, and instant markers for
    queue operations. This is the paper's Figure 6-6 at full fidelity —
    every task, on its processor, on the shared virtual time axis.

    The format is the "JSON Object Format" of the Trace Event spec:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], timestamps in
    microseconds. *)

val to_buffer :
  ?node_name:(int -> string) ->
  ?queue_events:bool ->
  ?ledgers:Attribution.ledger list ->
  Buffer.t ->
  Trace.event array ->
  unit
(** [node_name] labels task slices (defaults to ["node<id>"]);
    [queue_events] (default true) includes instant markers for queue
    push/pop/steal/failed-pop; [ledgers] (default none) adds a
    "speedup-loss" counter track with one sample per cycle holding the
    four attribution components. Events are sorted by timestamp before
    emission, and process/thread metadata records (names plus sort
    indices) label and order the per-worker lanes by worker id. *)

val to_string :
  ?node_name:(int -> string) ->
  ?queue_events:bool ->
  ?ledgers:Attribution.ledger list ->
  Trace.event array ->
  string

val lanes : Trace.event array -> int list
(** The distinct virtual processors appearing in the events, sorted;
    [-1] (control) excluded. *)
