type kind =
  | Task_start
  | Task_end
  | Queue_push
  | Queue_pop
  | Queue_steal
  | Queue_failed_pop
  | Lock_wait
  | Cycle_begin
  | Cycle_end
  | Chunk_add
  | Chunk_update
  | Mem_access

let kind_name = function
  | Task_start -> "task-start"
  | Task_end -> "task-end"
  | Queue_push -> "queue-push"
  | Queue_pop -> "queue-pop"
  | Queue_steal -> "queue-steal"
  | Queue_failed_pop -> "queue-failed-pop"
  | Lock_wait -> "lock-wait"
  | Cycle_begin -> "cycle-begin"
  | Cycle_end -> "cycle-end"
  | Chunk_add -> "chunk-add"
  | Chunk_update -> "chunk-update"
  | Mem_access -> "mem-access"

let kind_to_int = function
  | Task_start -> 0
  | Task_end -> 1
  | Queue_push -> 2
  | Queue_pop -> 3
  | Queue_steal -> 4
  | Queue_failed_pop -> 5
  | Lock_wait -> 6
  | Cycle_begin -> 7
  | Cycle_end -> 8
  | Chunk_add -> 9
  | Chunk_update -> 10
  | Mem_access -> 11

let kind_of_int = function
  | 0 -> Task_start
  | 1 -> Task_end
  | 2 -> Queue_push
  | 3 -> Queue_pop
  | 4 -> Queue_steal
  | 5 -> Queue_failed_pop
  | 6 -> Lock_wait
  | 7 -> Cycle_begin
  | 8 -> Cycle_end
  | 9 -> Chunk_add
  | 10 -> Chunk_update
  | 11 -> Mem_access
  | _ -> invalid_arg "Trace.kind_of_int"

type event = {
  t_us : float;
  kind : kind;
  proc : int;
  node : int;
  task : int;
  parent : int;
  cycle : int;
  dur_us : float;
  scanned : int;
  emitted : int;
}

(* Struct-of-arrays ring: an emission touches ten flat arrays and never
   allocates, which keeps tracing cheap enough to leave on. *)
type t = {
  cap : int;
  e_t : float array;
  e_dur : float array;
  e_kind : int array;
  e_proc : int array;
  e_node : int array;
  e_task : int array;
  e_parent : int array;
  e_cycle : int array;
  e_scanned : int array;
  e_emitted : int array;
  mutable len : int;  (* events stored, <= cap *)
  mutable head : int;  (* next write slot *)
  mutable n_dropped : int;
  mutable base_us : float;
  mutable cur_cycle : int;
  lock : Mutex.t;
}

let round_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 1

let create ?(capacity = 1 lsl 20) () =
  let cap = round_pow2 (max 16 capacity) in
  {
    cap;
    e_t = Array.make cap 0.;
    e_dur = Array.make cap 0.;
    e_kind = Array.make cap 0;
    e_proc = Array.make cap 0;
    e_node = Array.make cap 0;
    e_task = Array.make cap 0;
    e_parent = Array.make cap 0;
    e_cycle = Array.make cap 0;
    e_scanned = Array.make cap 0;
    e_emitted = Array.make cap 0;
    len = 0;
    head = 0;
    n_dropped = 0;
    base_us = 0.;
    cur_cycle = 0;
    lock = Mutex.create ();
  }

let capacity t = t.cap

let emit t kind ~t_us ?(proc = -1) ?(node = -1) ?(task = -1) ?(parent = -1)
    ?(dur_us = 0.) ?(scanned = 0) ?(emitted = 0) () =
  Mutex.lock t.lock;
  let i = t.head in
  t.e_t.(i) <- t.base_us +. t_us;
  t.e_dur.(i) <- dur_us;
  t.e_kind.(i) <- kind_to_int kind;
  t.e_proc.(i) <- proc;
  t.e_node.(i) <- node;
  t.e_task.(i) <- task;
  t.e_parent.(i) <- parent;
  t.e_cycle.(i) <- t.cur_cycle;
  t.e_scanned.(i) <- scanned;
  t.e_emitted.(i) <- emitted;
  t.head <- (i + 1) land (t.cap - 1);
  if t.len < t.cap then t.len <- t.len + 1 else t.n_dropped <- t.n_dropped + 1;
  Mutex.unlock t.lock

let set_base t b = Mutex.protect t.lock (fun () -> t.base_us <- b)
let base t = t.base_us
let set_cycle t c = Mutex.protect t.lock (fun () -> t.cur_cycle <- c)
let cycle t = t.cur_cycle
let length t = t.len
let dropped t = t.n_dropped

let events t =
  Mutex.protect t.lock (fun () ->
      let start = (t.head - t.len + t.cap) land (t.cap - 1) in
      let arr =
        Array.init t.len (fun j ->
            let i = (start + j) land (t.cap - 1) in
            {
              t_us = t.e_t.(i);
              kind = kind_of_int t.e_kind.(i);
              proc = t.e_proc.(i);
              node = t.e_node.(i);
              task = t.e_task.(i);
              parent = t.e_parent.(i);
              cycle = t.e_cycle.(i);
              dur_us = t.e_dur.(i);
              scanned = t.e_scanned.(i);
              emitted = t.e_emitted.(i);
            })
      in
      (* Emission order is not strictly time order (an engine may emit a
         future task-end before an earlier queue event); sort stably. *)
      let idx = Array.mapi (fun i e -> (i, e)) arr in
      Array.sort
        (fun (i, a) (j, b) ->
          match compare a.t_us b.t_us with 0 -> compare i j | c -> c)
        idx;
      Array.map snd idx)

let clear t =
  Mutex.protect t.lock (fun () ->
      t.len <- 0;
      t.head <- 0;
      t.n_dropped <- 0)
