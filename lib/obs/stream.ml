type mem_access = {
  ma_time : float;
  ma_proc : int;
  ma_task : int;
  ma_node : int;
  ma_line : int;
  ma_cycle : int;
  ma_write : bool;
  ma_locked : bool;
}

let access_bits ~write ~locked =
  (if write then 1 else 0) lor if locked then 2 else 0

let mem_access_of_event (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Mem_access ->
    Some
      {
        ma_time = e.t_us;
        ma_proc = e.proc;
        ma_task = e.task;
        ma_node = e.node;
        ma_line = e.scanned;
        ma_cycle = e.cycle;
        ma_write = e.emitted land 1 <> 0;
        ma_locked = e.emitted land 2 <> 0;
      }
  | _ -> None

let mem_accesses events =
  Array.to_list events |> List.filter_map mem_access_of_event

let by_cycle (events : Trace.event array) =
  let tbl : (int, Trace.event list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (e : Trace.event) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl e.Trace.cycle) in
      Hashtbl.replace tbl e.Trace.cycle (e :: prev))
    events;
  Hashtbl.fold (fun c evs acc -> (c, Array.of_list (List.rev evs)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter_kind kind f events =
  Array.iter (fun (e : Trace.event) -> if e.Trace.kind = kind then f e) events

let procs (events : Trace.event array) =
  let seen = Hashtbl.create 8 in
  Array.iter (fun (e : Trace.event) -> Hashtbl.replace seen e.Trace.proc ()) events;
  Hashtbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort compare

(* --- binary persistence -------------------------------------------------- *)

(* Fixed-size little-endian records behind an 8-byte magic so captures
   can be saved and re-analysed offline. Layout per event (73 bytes):
   kind tag byte, t_us and dur_us as float64 bit patterns, then proc,
   node, task, parent, cycle, scanned, emitted as int64. The count in
   the header is authoritative: trailing bytes after [count] events are
   a decode error, not ignored padding. *)

let magic = "PSMEEVS1"
let event_size = 1 + (2 * 8) + (7 * 8)

let encode (events : Trace.event array) =
  let buf = Buffer.create (String.length magic + 8 + (Array.length events * event_size)) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (Int64.of_int (Array.length events));
  Array.iter
    (fun (e : Trace.event) ->
      Buffer.add_uint8 buf (Trace.kind_to_int e.Trace.kind);
      Buffer.add_int64_le buf (Int64.bits_of_float e.Trace.t_us);
      Buffer.add_int64_le buf (Int64.bits_of_float e.Trace.dur_us);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.proc);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.node);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.task);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.parent);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.cycle);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.scanned);
      Buffer.add_int64_le buf (Int64.of_int e.Trace.emitted))
    events;
  Buffer.contents buf

let decode s =
  let header = String.length magic + 8 in
  if String.length s < header then Error "truncated header"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic (not a PSMEEVS1 event stream)"
  else begin
    let count = Int64.to_int (String.get_int64_le s (String.length magic)) in
    if count < 0 then Error "negative event count"
    else if String.length s <> header + (count * event_size) then
      Error
        (Printf.sprintf "stream length %d does not match %d events"
           (String.length s) count)
    else begin
      let err = ref None in
      let events =
        Array.init count (fun i ->
            let off = header + (i * event_size) in
            let f64 k = Int64.float_of_bits (String.get_int64_le s (off + k)) in
            let i64 k = Int64.to_int (String.get_int64_le s (off + k)) in
            let kind =
              match Trace.kind_of_int (Char.code s.[off]) with
              | k -> k
              | exception Invalid_argument _ ->
                if !err = None then
                  err :=
                    Some
                      (Printf.sprintf "unknown event tag %d at event %d"
                         (Char.code s.[off]) i);
                Trace.Task_start
            in
            {
              Trace.t_us = f64 1;
              kind;
              proc = i64 17;
              node = i64 25;
              task = i64 33;
              parent = i64 41;
              cycle = i64 49;
              dur_us = f64 9;
              scanned = i64 57;
              emitted = i64 65;
            })
      in
      match !err with Some m -> Error m | None -> Ok events
    end
  end

let write_file path events =
  let oc = open_out_bin path in
  output_string oc (encode events);
  close_out oc

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    decode s
