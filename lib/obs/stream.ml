type mem_access = {
  ma_time : float;
  ma_proc : int;
  ma_task : int;
  ma_node : int;
  ma_line : int;
  ma_cycle : int;
  ma_write : bool;
  ma_locked : bool;
}

let access_bits ~write ~locked =
  (if write then 1 else 0) lor if locked then 2 else 0

let mem_access_of_event (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Mem_access ->
    Some
      {
        ma_time = e.t_us;
        ma_proc = e.proc;
        ma_task = e.task;
        ma_node = e.node;
        ma_line = e.scanned;
        ma_cycle = e.cycle;
        ma_write = e.emitted land 1 <> 0;
        ma_locked = e.emitted land 2 <> 0;
      }
  | _ -> None

let mem_accesses events =
  Array.to_list events |> List.filter_map mem_access_of_event

let by_cycle (events : Trace.event array) =
  let tbl : (int, Trace.event list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (e : Trace.event) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl e.Trace.cycle) in
      Hashtbl.replace tbl e.Trace.cycle (e :: prev))
    events;
  Hashtbl.fold (fun c evs acc -> (c, Array.of_list (List.rev evs)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter_kind kind f events =
  Array.iter (fun (e : Trace.event) -> if e.Trace.kind = kind then f e) events

let procs (events : Trace.event array) =
  let seen = Hashtbl.create 8 in
  Array.iter (fun (e : Trace.event) -> Hashtbl.replace seen e.Trace.proc ()) events;
  Hashtbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort compare
