type node_row = {
  nr_node : int;
  nr_kind : string;
  nr_tasks : int;
  nr_scanned : int;
  nr_emitted : int;
  nr_us : float;
  nr_owners : int;
}

type prod_row = {
  pr_name : string;
  pr_tasks : float;
  pr_scanned : float;
  pr_emitted : float;
  pr_us : float;
  pr_nodes : int;
}

type t = {
  nodes : node_row list;
  prods : prod_row list;
  total_tasks : int;
  total_us : float;
}

type node_acc = {
  mutable a_tasks : int;
  mutable a_scanned : int;
  mutable a_emitted : int;
  mutable a_us : float;
}

type prod_acc = {
  mutable p_tasks : float;
  mutable p_scanned : float;
  mutable p_emitted : float;
  mutable p_us : float;
  mutable p_nodes : int;
}

let unattributed = "(unattributed)"

let of_events ~node_kind ~node_prods (events : Trace.event array) =
  let by_node : (int, node_acc) Hashtbl.t = Hashtbl.create 256 in
  let total_tasks = ref 0 in
  let total_us = ref 0. in
  Array.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Task_end ->
        let acc =
          match Hashtbl.find_opt by_node e.Trace.node with
          | Some a -> a
          | None ->
            let a = { a_tasks = 0; a_scanned = 0; a_emitted = 0; a_us = 0. } in
            Hashtbl.replace by_node e.Trace.node a;
            a
        in
        acc.a_tasks <- acc.a_tasks + 1;
        acc.a_scanned <- acc.a_scanned + e.Trace.scanned;
        acc.a_emitted <- acc.a_emitted + e.Trace.emitted;
        acc.a_us <- acc.a_us +. e.Trace.dur_us;
        incr total_tasks;
        total_us := !total_us +. e.Trace.dur_us
      | _ -> ())
    events;
  let by_prod : (string, prod_acc) Hashtbl.t = Hashtbl.create 64 in
  let prod_acc name =
    match Hashtbl.find_opt by_prod name with
    | Some p -> p
    | None ->
      let p =
        { p_tasks = 0.; p_scanned = 0.; p_emitted = 0.; p_us = 0.; p_nodes = 0 }
      in
      Hashtbl.replace by_prod name p;
      p
  in
  let nodes =
    Hashtbl.fold
      (fun node acc rows ->
        let owners = node_prods node in
        let owners = if owners = [] then [ unattributed ] else owners in
        let share = 1. /. float_of_int (List.length owners) in
        List.iter
          (fun name ->
            let p = prod_acc name in
            p.p_tasks <- p.p_tasks +. (share *. float_of_int acc.a_tasks);
            p.p_scanned <- p.p_scanned +. (share *. float_of_int acc.a_scanned);
            p.p_emitted <- p.p_emitted +. (share *. float_of_int acc.a_emitted);
            p.p_us <- p.p_us +. (share *. acc.a_us);
            p.p_nodes <- p.p_nodes + 1)
          owners;
        {
          nr_node = node;
          nr_kind = node_kind node;
          nr_tasks = acc.a_tasks;
          nr_scanned = acc.a_scanned;
          nr_emitted = acc.a_emitted;
          nr_us = acc.a_us;
          nr_owners = List.length owners;
        }
        :: rows)
      by_node []
  in
  let prods =
    Hashtbl.fold
      (fun name p rows ->
        {
          pr_name = name;
          pr_tasks = p.p_tasks;
          pr_scanned = p.p_scanned;
          pr_emitted = p.p_emitted;
          pr_us = p.p_us;
          pr_nodes = p.p_nodes;
        }
        :: rows)
      by_prod []
  in
  {
    nodes = List.sort (fun a b -> compare b.nr_us a.nr_us) nodes;
    prods = List.sort (fun a b -> compare b.pr_us a.pr_us) prods;
    total_tasks = !total_tasks;
    total_us = !total_us;
  }

let pp_nodes ?(top = 10) ppf t =
  Format.fprintf ppf "%-8s %-12s %8s %9s %8s %12s %6s@." "node" "kind" "tasks"
    "scanned" "emitted" "us" "owners";
  List.iteri
    (fun i r ->
      if i < top then
        Format.fprintf ppf "%-8d %-12s %8d %9d %8d %12.1f %6d@." r.nr_node
          r.nr_kind r.nr_tasks r.nr_scanned r.nr_emitted r.nr_us r.nr_owners)
    t.nodes

let pp_prods ?(top = 15) ppf t =
  Format.fprintf ppf "%-40s %10s %10s %9s %12s %6s@." "production" "tasks"
    "scanned" "emitted" "us" "nodes";
  List.iteri
    (fun i r ->
      if i < top then
        Format.fprintf ppf "%-40s %10.1f %10.1f %9.1f %12.1f %6d@." r.pr_name
          r.pr_tasks r.pr_scanned r.pr_emitted r.pr_us r.pr_nodes)
    t.prods;
  if List.length t.prods > top then
    Format.fprintf ppf "  ... %d more productions@." (List.length t.prods - top)
