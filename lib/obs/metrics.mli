(** Metrics registry: named counters, gauges and probes.

    Every subsystem that wants its internals visible registers here
    under a dotted name ("rete.runtime.tasks",
    "engine.cycle.makespan_us"). {b Unit convention}: any metric whose
    value is not a plain count carries its unit as a name suffix —
    [_us] for microseconds (matching the Chrome-trace exporter, whose
    [ts]/[dur] fields are microseconds by spec), [_ns] for nanoseconds,
    [_words] for heap words, [_x] for dimensionless ratios. Bare names
    are counts. {!Psme_obs.Telemetry.snapshot_kv} follows the same
    convention.

    Three metric shapes cover the codebase:

    - {e counters} — monotone atomic integers, safe to bump from any
      domain (the real parallel engine increments them from workers);
    - {e gauges} — {!Psme_support.Stats} accumulators fed one
      observation per cycle (count/mean/min/max/total are exported);
    - {e probes} — zero-overhead callbacks sampled only at snapshot
      time, for subsystems that already keep their own totals (the
      line-locked memories). Re-registering a probe name replaces the
      previous callback, so each new network's memories take over the
      well-known names.

    [snapshot] flattens everything to a sorted [(name, value)] list;
    [delta] subtracts two snapshots so a caller can meter one region of
    a run; [pp] and [to_json] render a snapshot for humans and tools. *)

open Psme_support

type t
(** A registry. *)

val create : unit -> t

val global : t
(** The process-wide registry the engines and the Rete register into. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the named counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {2 Gauges} *)

val gauge : t -> string -> Stats.t
(** Get or create the named gauge. *)

val observe : t -> string -> float -> unit
(** Add one observation to the named gauge (creates it if needed);
    serialized by the registry lock. *)

(** {2 Probes} *)

val set_probe : t -> string -> (unit -> float) -> unit
(** Register or replace a callback sampled at snapshot time. *)

(** {2 Snapshots} *)

type snapshot = (string * float) list
(** Sorted by name. Counters appear under their own name; a gauge [g]
    appears as [g.count], [g.total], [g.mean], [g.min], [g.max] (the
    last four only when it has observations); probes under their own
    name. *)

val snapshot : t -> snapshot

val delta : before:snapshot -> after:snapshot -> snapshot
(** Pointwise [after - before]; names missing from [before] count as 0.
    Meaningful for counters and totals; min/max/mean deltas are reported
    as-is and are up to the reader. *)

val reset : t -> unit
(** Zero all counters and drop all gauge observations; probes stay. *)

val pp : Format.formatter -> snapshot -> unit
val to_json : snapshot -> string
