type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_buffer buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.6g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to_buffer buf x
  | Str s -> escape_to_buffer buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to_buffer buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* --- validation ------------------------------------------------------- *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_body () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          string_body ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ())
    | Some '[' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some ']' -> advance ()
      | _ ->
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ())
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c));
    skip_ws ()
  in
  try
    value ();
    if !pos <> n then Error (Printf.sprintf "trailing data at byte %d" !pos)
    else Ok ()
  with Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)
