type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_buffer buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.6g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to_buffer buf x
  | Str s -> escape_to_buffer buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to_buffer buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Bad of int * string

(* Recursive-descent parser building the document tree. Numbers without
   a fraction or exponent become [Int] (so round-trips of the emitter's
   output preserve constructors); everything else becomes [Float]. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char buf c;
          advance ();
          go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' as c) ->
              code := (!code * 16) + (Char.code c - Char.code '0');
              advance ()
            | Some ('a' .. 'f' as c) ->
              code := (!code * 16) + (Char.code c - Char.code 'a' + 10);
              advance ()
            | Some ('A' .. 'F' as c) ->
              code := (!code * 16) + (Char.code c - Char.code 'A' + 10);
              advance ()
            | _ -> fail "bad \\u escape"
          done;
          (* UTF-8 encode the code point (no surrogate pairing: the
             emitter only writes \u for control chars) *)
          let c = !code in
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected digit"
  in
  let number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    let fractional = ref false in
    (match peek () with
    | Some '.' ->
      fractional := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit) (* out of int range *)
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some '}' ->
          advance ();
          Obj []
        | _ ->
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            let acc = (k, v) :: acc in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members acc
            | Some '}' ->
              advance ();
              Obj (List.rev acc)
            | _ -> fail "expected ',' or '}'"
          in
          members [])
      | Some '[' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some ']' ->
          advance ();
          List []
        | _ ->
          let rec elements acc =
            let v = value () in
            let acc = v :: acc in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements acc
            | Some ']' ->
              advance ();
              List (List.rev acc)
            | _ -> fail "expected ',' or ']'"
          in
          elements [])
      | Some '"' -> Str (string_body ())
      | Some 't' ->
        literal "true";
        Bool true
      | Some 'f' ->
        literal "false";
        Bool false
      | Some 'n' ->
        literal "null";
        Null
      | Some ('-' | '0' .. '9') -> number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    skip_ws ();
    v
  in
  try
    let v = value () in
    if !pos <> n then Error (Printf.sprintf "trailing data at byte %d" !pos)
    else Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let validate s = Result.map ignore (parse s)

(* --- tree accessors ----------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None
