type stats = {
  tasks : int;
  alpha_activations : int;
  serial_us : float;
  makespan_us : float;
  queue_spins : float;
  failed_pops : int;
  scanned : int;
  emitted : int;
  wall_ns : int;
  trace : (float * int) array;
}

let empty =
  {
    tasks = 0;
    alpha_activations = 0;
    serial_us = 0.;
    makespan_us = 0.;
    queue_spins = 0.;
    failed_pops = 0;
    scanned = 0;
    emitted = 0;
    wall_ns = 0;
    trace = [||];
  }

let speedup s = if s.makespan_us <= 0. then 1.0 else s.serial_us /. s.makespan_us

let add a b =
  {
    tasks = a.tasks + b.tasks;
    alpha_activations = a.alpha_activations + b.alpha_activations;
    serial_us = a.serial_us +. b.serial_us;
    makespan_us = a.makespan_us +. b.makespan_us;
    queue_spins = a.queue_spins +. b.queue_spins;
    failed_pops = a.failed_pops + b.failed_pops;
    scanned = a.scanned + b.scanned;
    emitted = a.emitted + b.emitted;
    wall_ns = a.wall_ns + b.wall_ns;
    trace = [||];
  }

let pp ppf s =
  Format.fprintf ppf
    "tasks=%d serial=%.0fus makespan=%.0fus speedup=%.2f spins=%.0f failed_pops=%d"
    s.tasks s.serial_us s.makespan_us (speedup s) s.queue_spins s.failed_pops

(* Field names are part of the output contract (pinned by a unit test):
   tools parse `soar_cli profile` output with them. *)
let to_json s =
  Psme_obs.Json.(
    to_string
      (Obj
         [
           ("tasks", Int s.tasks);
           ("alpha_activations", Int s.alpha_activations);
           ("serial_us", Float s.serial_us);
           ("makespan_us", Float s.makespan_us);
           ("queue_spins", Float s.queue_spins);
           ("failed_pops", Int s.failed_pops);
           ("scanned", Int s.scanned);
           ("emitted", Int s.emitted);
           ("wall_ns", Int s.wall_ns);
           ("speedup", Float (speedup s));
         ]))
