open Psme_obs
open Psme_rete

type mode =
  | Serial_mode
  | Parallel_mode of Parallel.config
  | Sim_mode of Sim.config

type t = {
  net : Network.t;
  mode : mode;
  cost : Cost.params;
  tracer : Trace.t option;
  mutable vclock_us : float;
      (* running virtual time: cycles abut on one global timeline *)
  mutable history_rev : Cycle.stats list;
}

let create ?(cost = Cost.default) ?tracer mode net =
  { net; mode; cost; tracer; vclock_us = 0.; history_rev = [] }

let network t = t.net
let mode t = t.mode
let tracer t = t.tracer
let vclock_us t = t.vclock_us

(* Every completed episode feeds the global metrics registry, whatever
   the engine — per-cycle aggregates become queryable totals. *)
let m_cycles = Metrics.counter Metrics.global "engine.cycles"
let m_tasks = Metrics.counter Metrics.global "engine.tasks"
let m_failed_pops = Metrics.counter Metrics.global "engine.failed_pops"
let m_scanned = Metrics.counter Metrics.global "engine.scanned"
let m_emitted = Metrics.counter Metrics.global "engine.emitted"

let record t stats =
  t.history_rev <- stats :: t.history_rev;
  Metrics.incr m_cycles;
  Metrics.add m_tasks stats.Cycle.tasks;
  Metrics.add m_failed_pops stats.Cycle.failed_pops;
  Metrics.add m_scanned stats.Cycle.scanned;
  Metrics.add m_emitted stats.Cycle.emitted;
  Metrics.observe Metrics.global "engine.cycle.serial_us" stats.Cycle.serial_us;
  Metrics.observe Metrics.global "engine.cycle.makespan_us" stats.Cycle.makespan_us;
  if stats.Cycle.tasks > 0 then
    Metrics.observe Metrics.global "engine.cycle.speedup_x" (Cycle.speedup stats);
  Telemetry.record_cycle_us Telemetry.global stats.Cycle.makespan_us;
  stats

(* Run one episode with cycle bracketing on the tracer: the engines emit
   cycle-local times; the tracer's base places them on the global
   timeline, which then advances by the episode's makespan. *)
let with_cycle t run =
  Memory.reset_cycle_stats t.net.Network.mem;
  (match t.tracer with
  | Some tr ->
    Trace.set_cycle tr (List.length t.history_rev);
    Trace.set_base tr t.vclock_us;
    Trace.emit tr Trace.Cycle_begin ~t_us:0. ()
  | None -> ());
  (* every engine episode is match work; the agent loop brackets its
     other phases (conflict-resolution / act / chunk-splice) itself *)
  let stats = Telemetry.with_phase Telemetry.global Telemetry.Match run in
  (match t.tracer with
  | Some tr ->
    Trace.emit tr Trace.Cycle_end ~t_us:stats.Cycle.makespan_us
      ~dur_us:stats.Cycle.makespan_us ~scanned:stats.Cycle.tasks ();
    t.vclock_us <- t.vclock_us +. stats.Cycle.makespan_us;
    Trace.set_base tr t.vclock_us
  | None -> ());
  record t stats

let run_changes t changes =
  with_cycle t (fun () ->
      match t.mode with
      | Serial_mode -> Serial.run_changes ~cost:t.cost ?tracer:t.tracer t.net changes
      | Parallel_mode cfg ->
        Parallel.run_changes ~cost:t.cost ?tracer:t.tracer cfg t.net changes
      | Sim_mode cfg -> Sim.run_changes ~cost:t.cost ?tracer:t.tracer cfg t.net changes)

let run_tasks t tasks =
  with_cycle t (fun () ->
      match t.mode with
      | Serial_mode -> Serial.run_tasks ~cost:t.cost ?tracer:t.tracer t.net tasks
      | Parallel_mode cfg ->
        Parallel.run_tasks ~cost:t.cost ?tracer:t.tracer cfg t.net tasks
      | Sim_mode cfg -> Sim.run_tasks ~cost:t.cost ?tracer:t.tracer cfg t.net tasks)

let run_changes_async t ~on_inst changes =
  with_cycle t (fun () ->
      match t.mode with
      | Serial_mode ->
        Serial.run_changes_async ~cost:t.cost ?tracer:t.tracer t.net ~on_inst changes
      | Sim_mode cfg ->
        Sim.run_changes_async ~cost:t.cost ?tracer:t.tracer cfg t.net ~on_inst changes
      | Parallel_mode cfg ->
        (* fall back to barrier-synchronized waves so the callback never
           runs concurrently with itself *)
        let total = ref Cycle.empty in
        let pending = ref changes in
        let continue_ = ref true in
        while !continue_ do
          let batch = !pending in
          pending := [];
          let insts_before = Conflict_set.pending t.net.Network.cs in
          if batch = [] && insts_before = [] then continue_ := false
          else begin
            let s = Parallel.run_changes ~cost:t.cost ?tracer:t.tracer cfg t.net batch in
            total := Cycle.add !total s;
            List.iter
              (fun inst ->
                Conflict_set.mark_fired t.net.Network.cs inst;
                pending := !pending @ on_inst inst)
              (Conflict_set.pending t.net.Network.cs)
          end
        done;
        !total)

let history t = List.rev t.history_rev
let reset_history t = t.history_rev <- []
let totals t = List.fold_left Cycle.add Cycle.empty (history t)
