open Psme_obs
open Psme_rete

let mem_accesses tr ~t_us ~proc ~task accesses =
  List.iter
    (fun (a : Runtime.access) ->
      Trace.emit tr Trace.Mem_access ~t_us ~proc ~node:a.Runtime.acc_node
        ~task ~scanned:a.Runtime.acc_line
        ~emitted:
          (Stream.access_bits ~write:a.Runtime.acc_write
             ~locked:a.Runtime.acc_locked)
        ())
    accesses
