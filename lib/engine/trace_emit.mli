(** Shared tracer-emission helpers for the engines. *)

open Psme_obs
open Psme_rete

val mem_accesses :
  Trace.t -> t_us:float -> proc:int -> task:int -> Runtime.access list -> unit
(** Emit one [Mem_access] event per critical section a task performed,
    using the field-reuse convention of {!Psme_obs.Stream}. *)
