open Psme_rete

type params = {
  two_input_base_us : float;
  entry_base_us : float;
  pnode_base_us : float;
  per_scan_us : float;
  per_child_us : float;
  alpha_act_us : float;
  queue_op_us : float;
  poll_us : float;
  spin_unit_us : float;
  cycle_overhead_us : float;
  fire_us : float;
}

(* Calibration: with typical activations scanning 2–8 entries and
   generating 0–2 children, costs land in the paper's 200–800 µs band
   with a mean near 400 µs. A queue operation of 30 µs against a 400 µs
   task saturates one shared queue at roughly 400/(2*30) = 7 match
   processes — the Figure 6-1 knee. *)
let default =
  {
    two_input_base_us = 190.;
    entry_base_us = 80.;
    pnode_base_us = 110.;
    per_scan_us = 30.;
    per_child_us = 45.;
    alpha_act_us = 8.;
    queue_op_us = 30.;
    poll_us = 25.;
    spin_unit_us = 10.;
    cycle_overhead_us = 350.;
    fire_us = 120.;
  }

let task_cost p kind (o : Runtime.outcome) =
  let base =
    match kind with
    | Network.Entry -> p.entry_base_us
    | Network.Pnode _ -> p.pnode_base_us
    | Network.Join _ | Network.Neg _ | Network.Ncc _ | Network.Ncc_partner _
    | Network.Bjoin _ -> p.two_input_base_us
  in
  base
  +. (p.per_scan_us *. float_of_int o.Runtime.scanned)
  +. (p.per_child_us *. float_of_int (Array.length o.Runtime.children))
