(** Uniform front end over the three match engines.

    The Soar architecture and the experiment harness talk to a match
    engine only through this interface, so a run can be repeated
    serially, on real domains, or on the simulated multiprocessor
    without touching the production system. *)

open Psme_rete

type mode =
  | Serial_mode
  | Parallel_mode of Parallel.config
  | Sim_mode of Sim.config

type t

val create : ?cost:Cost.params -> ?tracer:Psme_obs.Trace.t -> mode -> Network.t -> t
(** With [tracer], every episode is bracketed by cycle begin/end events
    and the underlying engine emits its task/queue/lock events; the
    engine keeps a running virtual clock so consecutive cycles abut on
    one global timeline (the tracer's base is advanced by each cycle's
    makespan). All engines also feed the global {!Psme_obs.Metrics}
    registry (counters [engine.cycles], [engine.tasks], ...; gauges
    [engine.cycle.serial_us], [engine.cycle.makespan_us],
    [engine.cycle.speedup_x]) and the always-on {!Psme_obs.Telemetry}
    layer (cycle-latency histogram; each episode runs inside a [Match]
    phase section for GC attribution). *)

val network : t -> Network.t
val mode : t -> mode
val tracer : t -> Psme_obs.Trace.t option
val vclock_us : t -> float
(** Virtual time consumed by all recorded episodes so far. *)

val run_changes : t -> (Task.flag * Psme_ops5.Wme.t) list -> Cycle.stats
(** Run one buffered set of wme changes to quiescence; records the cycle
    in the history. Resets the memory tables' per-cycle access counters
    first. *)

val run_tasks : t -> Task.t list -> Cycle.stats
(** Run explicit activations (the §5.2 update phase); recorded in the
    history like a cycle. *)

val run_changes_async :
  t ->
  on_inst:(Conflict_set.inst -> (Task.flag * Psme_ops5.Wme.t) list) ->
  (Task.flag * Psme_ops5.Wme.t) list ->
  Cycle.stats
(** One whole elaboration phase as a single episode: instantiations fire
    through [on_inst] as soon as they match (paper §7's asynchronous
    elaboration). Supported natively by the serial and simulated
    engines; the real-domains engine falls back to barrier-synchronized
    waves (the callback is never re-entered concurrently). *)

val history : t -> Cycle.stats list
(** Per-cycle stats, oldest first. *)

val reset_history : t -> unit
val totals : t -> Cycle.stats
