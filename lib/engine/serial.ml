open Psme_support
open Psme_obs
open Psme_rete

(* Tasks are carried as (id, parent, task) so the tracer's event stream
   names the spawn DAG; ids are assigned at spawn, so a parent's id is
   always smaller than its children's (the critical-path analyzer's
   invariant). Tracing off costs one branch per task. *)

let run_tasks ?(cost = Cost.default) ?tracer net seed =
  let t0 = Clock.now_ns () in
  let stack = Vec.create () in
  let next_id = ref 0 in
  let fresh () =
    let i = !next_id in
    incr next_id;
    i
  in
  List.iter (fun task -> Vec.push stack (fresh (), -1, task)) seed;
  let tasks = ref 0 in
  let serial_us = ref 0. in
  let scanned = ref 0 in
  let emitted = ref 0 in
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some (id, parent, task) ->
      let node = Task.node task in
      let kind = (Network.node net node).Network.kind in
      (match tracer with
      | Some tr ->
        Trace.emit tr Trace.Task_start ~t_us:!serial_us ~proc:0 ~node ~task:id
          ~parent ()
      | None -> ());
      let o = Runtime.exec net task in
      incr tasks;
      let c = Cost.task_cost cost kind o in
      Telemetry.record_task_us Telemetry.global c;
      let nkids = Array.length o.Runtime.children in
      (match tracer with
      | Some tr ->
        Trace.emit tr Trace.Task_end ~t_us:(!serial_us +. c) ~proc:0 ~node
          ~task:id ~parent ~dur_us:c ~scanned:o.Runtime.scanned ~emitted:nkids
          ();
        Trace_emit.mem_accesses tr ~t_us:(!serial_us +. c) ~proc:0 ~task:id
          o.Runtime.accesses
      | None -> ());
      serial_us := !serial_us +. c;
      scanned := !scanned + o.Runtime.scanned;
      emitted := !emitted + nkids;
      Array.iter (fun k -> Vec.push stack (fresh (), id, k)) o.Runtime.children;
      drain ()
  in
  drain ();
  {
    Cycle.empty with
    tasks = !tasks;
    serial_us = !serial_us;
    makespan_us = !serial_us;
    scanned = !scanned;
    emitted = !emitted;
    wall_ns = Clock.now_ns () - t0;
  }

let run_changes_async ?(cost = Cost.default) ?tracer net ~on_inst changes =
  let t0 = Clock.now_ns () in
  let alpha = ref 0 in
  let stack = Vec.create () in
  let next_id = ref 0 in
  let fresh () =
    let i = !next_id in
    incr next_id;
    i
  in
  let seed ~parent flag w =
    let tasks, acts = Runtime.seed_wme_change net flag w in
    alpha := !alpha + acts;
    List.iter (fun t -> Vec.push stack (fresh (), parent, t)) tasks
  in
  List.iter (fun (flag, w) -> seed ~parent:(-1) flag w) changes;
  let tasks = ref 0 in
  let serial_us = ref 0. in
  let scanned = ref 0 in
  let emitted = ref 0 in
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some (id, parent, task) ->
      let node = Task.node task in
      let kind = (Network.node net node).Network.kind in
      (match tracer with
      | Some tr ->
        Trace.emit tr Trace.Task_start ~t_us:!serial_us ~proc:0 ~node ~task:id
          ~parent ()
      | None -> ());
      let o = Runtime.exec net task in
      incr tasks;
      let c = Cost.task_cost cost kind o in
      Telemetry.record_task_us Telemetry.global c;
      let nkids = Array.length o.Runtime.children in
      (match tracer with
      | Some tr ->
        Trace.emit tr Trace.Task_end ~t_us:(!serial_us +. c) ~proc:0 ~node
          ~task:id ~parent ~dur_us:c ~scanned:o.Runtime.scanned ~emitted:nkids
          ();
        Trace_emit.mem_accesses tr ~t_us:(!serial_us +. c) ~proc:0 ~task:id
          o.Runtime.accesses
      | None -> ());
      serial_us := !serial_us +. c;
      scanned := !scanned + o.Runtime.scanned;
      emitted := !emitted + nkids;
      Array.iter (fun k -> Vec.push stack (fresh (), id, k)) o.Runtime.children;
      List.iter
        (fun (flag, inst) ->
          match flag with
          | Task.Add ->
            serial_us := !serial_us +. cost.Cost.fire_us;
            (* wme changes of the firing chain through the P-node task *)
            List.iter (fun (f, w) -> seed ~parent:id f w) (on_inst inst)
          | Task.Delete -> ())
        o.Runtime.insts;
      drain ()
  in
  drain ();
  let alpha_us = cost.Cost.alpha_act_us *. float_of_int !alpha in
  {
    Cycle.empty with
    tasks = !tasks;
    alpha_activations = !alpha;
    serial_us = !serial_us +. alpha_us;
    makespan_us = !serial_us +. alpha_us;
    scanned = !scanned;
    emitted = !emitted;
    wall_ns = Clock.now_ns () - t0;
  }

let run_changes ?(cost = Cost.default) ?tracer net changes =
  let alpha = ref 0 in
  let seed =
    List.concat_map
      (fun (flag, w) ->
        let tasks, acts = Runtime.seed_wme_change net flag w in
        alpha := !alpha + acts;
        tasks)
      changes
  in
  let stats = run_tasks ~cost ?tracer net seed in
  let alpha_us = cost.Cost.alpha_act_us *. float_of_int !alpha in
  {
    stats with
    Cycle.alpha_activations = !alpha;
    serial_us = stats.Cycle.serial_us +. alpha_us;
    makespan_us = stats.Cycle.makespan_us +. alpha_us;
  }
