open Psme_support
open Psme_obs
open Psme_rete

type config = {
  procs : int;
  queues : Parallel.queue_mode;
  collect_trace : bool;
}

(* Queue items carry (id, parent, push_t_us, task): serial numbers are
   assigned at spawn time, so a parent's id is always below its
   children's — the invariant the critical-path analyzer relies on —
   and the virtual push time lets the popper record queue dwell into
   the telemetry layer. *)
type squeue = {
  items : (int * int * float * Task.t) Vec.t;
  mutable busy_until : float;
}

type event =
  | Try_pop of int  (** processor becomes ready to look for work *)
  | Finish of { proc : int; parent : int; children : Task.t array }
  | Inject of { proc : int; parent : int; tasks : Task.t list }
      (** the control process delivers the wme changes of a fired
          instantiation (asynchronous elaboration, §7) *)

let run_tasks_gen ?(cost = Cost.default) ?tracer ?on_inst config net seed =
  let t0 = Clock.now_ns () in
  let nq =
    match config.queues with
    | Parallel.Single_queue -> 1
    | Parallel.Multiple_queues -> max 1 config.procs
  in
  let queues = Array.init nq (fun _ -> { items = Vec.create (); busy_until = 0. }) in
  let next_id = ref 0 in
  let fresh () =
    let i = !next_id in
    incr next_id;
    i
  in
  let outstanding = ref 0 in
  List.iteri
    (fun i task ->
      incr outstanding;
      let id = fresh () in
      Vec.push queues.(i mod nq).items (id, -1, 0., task);
      match tracer with
      | Some tr ->
        (* seeds are placed by the control process before time starts *)
        Trace.emit tr Trace.Queue_push ~t_us:0. ~proc:(-1)
          ~node:(Task.node task) ~task:id ()
      | None -> ())
    seed;
  let events = Event_queue.create () in
  for p = 0 to config.procs - 1 do
    Event_queue.add events ~time:0. (Try_pop p)
  done;
  let tasks_done = ref 0 in
  let serial_us = ref 0. in
  let scanned = ref 0 in
  let emitted = ref 0 in
  let spins = ref 0. in
  let failed_pops = ref 0 in
  let pops = ref 0 in
  let steal_attempts = ref 0 in
  (* probes of a non-own queue (k > 0); successful ones are steals *)
  let steals = ref 0 in
  let makespan = ref 0. in
  let alpha = ref 0 in
  let pending_injections = ref 0 in
  let trace = Vec.create () in
  let sample time =
    if config.collect_trace then Vec.push trace (time, !outstanding)
  in
  sample 0.;
  (* Exclusive access to a queue: wait until it is free, charge the
     wait as lock spins, occupy it for one operation. Returns the time
     at which the operation completes. *)
  let queue_access q ~proc ~at =
    let start = Float.max at q.busy_until in
    (if start > at then begin
       spins := !spins +. ((start -. at) /. cost.Cost.spin_unit_us);
       match tracer with
       | Some tr ->
         Trace.emit tr Trace.Lock_wait ~t_us:start ~proc ~dur_us:(start -. at) ()
       | None -> ()
     end);
    q.busy_until <- start +. cost.Cost.queue_op_us;
    q.busy_until
  in
  let my_queue p = p mod nq in
  (* Push one spawned task, charging a queue operation. *)
  let push_child q ~proc ~parent ~at task =
    let t = queue_access q ~proc ~at in
    let id = fresh () in
    Vec.push q.items (id, parent, t, task);
    incr outstanding;
    (match tracer with
    | Some tr ->
      Trace.emit tr Trace.Queue_push ~t_us:t ~proc ~node:(Task.node task)
        ~task:id ~parent ()
    | None -> ());
    t
  in
  let handle time = function
    | Inject { proc; parent; tasks } ->
      let q = queues.(my_queue proc) in
      let t =
        List.fold_left
          (fun t task -> push_child q ~proc:(-1) ~parent ~at:t task)
          time tasks
      in
      decr pending_injections;
      sample t;
      makespan := Float.max !makespan t
    | Finish { proc; parent; children } ->
      (* Push the generated tasks onto this process's queue, one queue
         operation each, then account for the finished task and go look
         for more work. *)
      let q = queues.(my_queue proc) in
      let t =
        Array.fold_left
          (fun t task -> push_child q ~proc ~parent ~at:t task)
          time children
      in
      decr outstanding;
      sample t;
      makespan := Float.max !makespan t;
      Event_queue.add events ~time:t (Try_pop proc)
    | Try_pop proc ->
      if !outstanding > 0 || !pending_injections > 0 then begin
        (* Scan queues starting from our own; each probe is a queue
           operation; an empty probe is a failed pop. *)
        let rec scan k t =
          if k >= nq then begin
            (* Nothing anywhere: poll again shortly. *)
            Event_queue.add events ~time:(t +. cost.Cost.poll_us) (Try_pop proc)
          end
          else begin
            let q = queues.((my_queue proc + k) mod nq) in
            let t = queue_access q ~proc ~at:t in
            (if k > 0 then incr steal_attempts);
            match Vec.pop q.items with
            | None ->
              incr failed_pops;
              (match tracer with
              | Some tr ->
                Trace.emit tr Trace.Queue_failed_pop ~t_us:t ~proc ()
              | None -> ());
              scan (k + 1) t
            | Some (id, parent, push_t, task) ->
              incr pops;
              (if k > 0 then incr steals);
              (* dwell is virtual: pop time minus push time *)
              Telemetry.record_dwell_us Telemetry.global (t -. push_t);
              let node = Task.node task in
              let kind = (Network.node net node).Network.kind in
              (match tracer with
              | Some tr ->
                (if k = 0 then Trace.emit tr Trace.Queue_pop ~t_us:t ~proc ~task:id ()
                 else
                   (* steal provenance: the victim queue index rides in
                      the node field (see Trace.mli) *)
                   Trace.emit tr Trace.Queue_steal ~t_us:t ~proc
                     ~node:((my_queue proc + k) mod nq)
                     ~task:id ());
                Trace.emit tr Trace.Task_start ~t_us:t ~proc ~node ~task:id
                  ~parent ()
              | None -> ());
              let o = Runtime.exec net task in
              incr tasks_done;
              scanned := !scanned + o.Runtime.scanned;
              let nkids = Array.length o.Runtime.children in
              emitted := !emitted + nkids;
              let c = Cost.task_cost cost kind o in
              Telemetry.record_task_us Telemetry.global c;
              serial_us := !serial_us +. c;
              (match tracer with
              | Some tr ->
                Trace.emit tr Trace.Task_end ~t_us:(t +. c) ~proc ~node
                  ~task:id ~parent ~dur_us:c ~scanned:o.Runtime.scanned
                  ~emitted:nkids ();
                Trace_emit.mem_accesses tr ~t_us:(t +. c) ~proc ~task:id
                  o.Runtime.accesses
              | None -> ());
              (* asynchronous elaboration: fire newly added
                 instantiations now; their wme changes are injected by
                 the control process after the firing cost *)
              (match on_inst with
              | None -> ()
              | Some fire ->
                List.iter
                  (fun (flag, inst) ->
                    match flag with
                    | Task.Add ->
                      let changes = fire inst in
                      let injected =
                        List.concat_map
                          (fun (f, w) ->
                            let tasks, acts = Runtime.seed_wme_change net f w in
                            alpha := !alpha + acts;
                            tasks)
                          changes
                      in
                      serial_us := !serial_us +. cost.Cost.fire_us;
                      if injected <> [] then begin
                        incr pending_injections;
                        Event_queue.add events
                          ~time:(t +. c +. cost.Cost.fire_us)
                          (Inject { proc; parent = id; tasks = injected })
                      end
                    | Task.Delete -> ())
                  o.Runtime.insts);
              sample t;
              Event_queue.add events ~time:(t +. c)
                (Finish { proc; parent = id; children = o.Runtime.children })
          end
        in
        scan 0 time
      end
    (* outstanding = 0: the cycle is over; the process stops. *)
  in
  let rec loop () =
    match Event_queue.pop events with
    | None -> ()
    | Some (time, ev) ->
      handle time ev;
      loop ()
  in
  loop ();
  sample !makespan;
  let tm = Telemetry.global in
  Telemetry.add_queue_pushes tm !next_id;
  Telemetry.add_queue_pops tm !pops;
  Telemetry.add_steal_attempts tm !steal_attempts;
  Telemetry.add_steals tm !steals;
  {
    Cycle.tasks = !tasks_done;
    alpha_activations = !alpha;
    serial_us = !serial_us;
    makespan_us = !makespan;
    queue_spins = !spins;
    failed_pops = !failed_pops;
    scanned = !scanned;
    emitted = !emitted;
    wall_ns = Clock.now_ns () - t0;
    trace = Vec.to_array trace;
  }

let run_tasks ?cost ?tracer config net seed =
  run_tasks_gen ?cost ?tracer ?on_inst:None config net seed

let seed_all net changes =
  let alpha = ref 0 in
  let tasks =
    List.concat_map
      (fun (flag, w) ->
        let tasks, acts = Runtime.seed_wme_change net flag w in
        alpha := !alpha + acts;
        tasks)
      changes
  in
  (tasks, !alpha)

let finish_stats cost stats extra_alpha =
  let alpha = stats.Cycle.alpha_activations + extra_alpha in
  let alpha_us = cost.Cost.alpha_act_us *. float_of_int extra_alpha in
  (* The control process performs the buffered wme changes before the
     match starts (the paper's corrected discipline); charge that
     constant-test pass to both the serial and the parallel time. *)
  {
    stats with
    Cycle.alpha_activations = alpha;
    serial_us = stats.Cycle.serial_us +. alpha_us;
    makespan_us = stats.Cycle.makespan_us +. alpha_us;
  }

let run_changes ?(cost = Cost.default) ?tracer config net changes =
  let seed, alpha = seed_all net changes in
  finish_stats cost (run_tasks ~cost ?tracer config net seed) alpha

let run_changes_async ?(cost = Cost.default) ?tracer config net ~on_inst changes =
  let seed, alpha = seed_all net changes in
  finish_stats cost (run_tasks_gen ~cost ?tracer ~on_inst config net seed) alpha
