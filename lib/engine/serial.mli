(** Reference engine: one process, immediate execution.

    Defines the semantics the parallel and simulated engines must
    reproduce, and the uniprocessor times the paper's speedups are
    computed against. *)

open Psme_rete

val run_tasks :
  ?cost:Cost.params ->
  ?tracer:Psme_obs.Trace.t ->
  Network.t ->
  Task.t list ->
  Cycle.stats
(** Process the given activations and everything they generate, LIFO,
    until quiescent. With [tracer], emits task start/end events on
    virtual processor 0 at cost-model virtual times, carrying the
    spawn DAG (task and parent serial numbers). *)

val run_changes :
  ?cost:Cost.params ->
  ?tracer:Psme_obs.Trace.t ->
  Network.t ->
  (Task.flag * Psme_ops5.Wme.t) list ->
  Cycle.stats
(** Buffer a cycle's wme changes through the alpha network, then match
    to quiescence (the paper's corrected cycle discipline: the match
    starts only after all wme changes of the cycle are in). *)

val run_changes_async :
  ?cost:Cost.params ->
  ?tracer:Psme_obs.Trace.t ->
  Network.t ->
  on_inst:(Conflict_set.inst -> (Task.flag * Psme_ops5.Wme.t) list) ->
  (Task.flag * Psme_ops5.Wme.t) list ->
  Cycle.stats
(** Asynchronous elaboration (paper §7): whenever a P-node activation
    adds an instantiation, [on_inst] fires it immediately and its wme
    changes join the same episode — the whole elaboration phase matches
    as one continuous task stream instead of barrier-separated cycles.
    Soar productions only add wmes, so the callback's changes must be
    additions. *)
