(** The real parallel match engine (OCaml 5 domains).

    Reproduces the PSM-E process structure: P match processes pull node
    activations from shared task queues (one global queue, or one per
    process with scanning/stealing), execute them against the shared
    line-locked memories, and push the successor activations back. A
    cycle ends when the outstanding-task count reaches zero.

    Correctness does not depend on scheduling: every engine must produce
    the same conflict set as {!Serial} (the property tests check this).
    On a single-core container the wall-clock speedup is not meaningful;
    the {!Sim} engine produces the paper's speedup figures. *)

open Psme_rete

type queue_mode =
  | Single_queue  (** one shared mutex-guarded queue *)
  | Multiple_queues
      (** one Chase–Lev deque per process: the owner pushes and pops
          lock-free, idle processes steal the oldest task from their
          neighbours' deques (probing in ring order, as the paper's
          multiple-queue variant scans). A lost steal race counts as a
          failed pop, like a contended [try_lock] did. *)

type config = {
  processes : int;   (** match processes (not counting the caller) *)
  queues : queue_mode;
}

val run_tasks :
  ?cost:Cost.params ->
  ?tracer:Psme_obs.Trace.t ->
  config ->
  Network.t ->
  Task.t list ->
  Cycle.stats
(** With [tracer], workers emit task start/end (wall-clock spans) and
    queue pop/steal/failed-pop events; the tracer's internal mutex
    serializes emission across domains. *)

val run_changes :
  ?cost:Cost.params ->
  ?tracer:Psme_obs.Trace.t ->
  config ->
  Network.t ->
  (Task.flag * Psme_ops5.Wme.t) list ->
  Cycle.stats
