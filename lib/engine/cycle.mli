(** Per-cycle measurements, shared by all engines. *)

type stats = {
  tasks : int;             (** node activations executed *)
  alpha_activations : int; (** constant-test activations during seeding *)
  serial_us : float;       (** sum of task costs: the uniprocessor time *)
  makespan_us : float;     (** completion time on the engine's processors *)
  queue_spins : float;     (** spins waiting for task-queue access *)
  failed_pops : int;       (** pops that found an empty queue *)
  scanned : int;           (** memory entries scanned by all tasks *)
  emitted : int;           (** child tasks generated *)
  wall_ns : int;           (** real elapsed time (monotonic clock) *)
  trace : (float * int) array;
      (** (virtual time µs, tasks in system) samples; empty unless the
          engine was asked to trace *)
}

val empty : stats
val speedup : stats -> float
(** [serial_us / makespan_us]; 1.0 for degenerate cycles. *)

val add : stats -> stats -> stats
(** Aggregate two cycles (traces are dropped). *)

val pp : Format.formatter -> stats -> unit

val to_json : stats -> string
(** One JSON object; the field names ([tasks], [alpha_activations],
    [serial_us], [makespan_us], [queue_spins], [failed_pops], [scanned],
    [emitted], [wall_ns], [speedup]) are a stable contract pinned by a
    unit test — [soar_cli profile --json] consumers rely on them. *)
