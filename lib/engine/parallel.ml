open Psme_support
open Psme_obs
open Psme_rete

type queue_mode =
  | Single_queue
  | Multiple_queues

type config = {
  processes : int;
  queues : queue_mode;
}

(* Queue items carry (id, parent, push_ns, task): id/parent for the
   tracer's spawn DAG (ids come from one atomic counter, so a parent's
   id is below its children's), push_ns so the popper can record queue
   dwell time into the telemetry layer. *)
type item = int * int * int * Task.t

(* Multiple_queues uses one Chase–Lev deque per worker: the owner
   pushes/pops its own deque lock-free and thieves CAS-steal the oldest
   task. Single_queue must keep a mutex queue — every worker pushes
   children into the one shared queue, which violates the deque's
   single-owner contract. *)
type queues =
  | Shared of shared
  | Deques of item Ws_deque.t array

and shared = {
  lock : Mutex.t;
  items : item Vec.t;
}

let shared_try_pop q =
  if Mutex.try_lock q.lock then begin
    let item = Vec.pop q.items in
    Mutex.unlock q.lock;
    item
  end
  else None

let run_tasks ?(cost = Cost.default) ?tracer config net seed =
  let t0 = Clock.now_ns () in
  let now_us () = float_of_int (Clock.now_ns () - t0) /. 1e3 in
  let nq = match config.queues with Single_queue -> 1 | Multiple_queues -> config.processes in
  let queues =
    match config.queues with
    | Single_queue -> Shared { lock = Mutex.create (); items = Vec.create () }
    | Multiple_queues -> Deques (Array.init nq (fun _ -> Ws_deque.create ()))
  in
  (* outstanding = queued + currently executing; the cycle ends at 0. *)
  let outstanding = Atomic.make 0 in
  let tasks_done = Atomic.make 0 in
  let scanned = Atomic.make 0 in
  let emitted = Atomic.make 0 in
  let failed_pops = Atomic.make 0 in
  let serial_us_bits = Atomic.make 0 in
  (* accumulate µs as integer tenths to stay atomic *)
  let next_id = Atomic.make 0 in
  (* Per-worker latency histograms, merged into the global telemetry
     after join — exact counts without racing the single-writer
     histograms from many domains. *)
  let nproc = max 1 config.processes in
  let task_h = Array.init nproc (fun _ -> Loghist.create ()) in
  let dwell_h = Array.init nproc (fun _ -> Loghist.create ()) in
  (* Seeding happens before the workers spawn, so pushing into a
     worker's deque from here cannot race its owner. *)
  let seed_push qi item =
    match queues with
    | Shared q -> Mutex.protect q.lock (fun () -> Vec.push q.items item)
    | Deques ds -> Ws_deque.push ds.(qi) item
  in
  List.iteri
    (fun i task ->
      Atomic.incr outstanding;
      let id = Atomic.fetch_and_add next_id 1 in
      seed_push (i mod nq) (id, -1, Clock.now_ns (), task);
      match tracer with
      | Some tr ->
        Trace.emit tr Trace.Queue_push ~t_us:(now_us ()) ~proc:(-1)
          ~node:(Task.node task) ~task:id ()
      | None -> ())
    seed;
  let worker me () =
    let my_q = me mod nq in
    (* probe queue (my_q + k) mod nq: own pop at k = 0, steal after *)
    let probe k =
      match queues with
      | Shared q -> shared_try_pop q
      | Deques ds ->
        if k = 0 then Ws_deque.pop ds.(my_q)
        else Ws_deque.steal ~thief:me ds.((my_q + k) mod nq)
    in
    let push_child item =
      match queues with
      | Shared q -> Mutex.protect q.lock (fun () -> Vec.push q.items item)
      | Deques ds -> Ws_deque.push ds.(my_q) item
    in
    let rec loop () =
      if Atomic.get outstanding = 0 then ()
      else begin
        let item =
          let rec scan k =
            if k >= nq then None
            else
              match probe k with
              | Some (id, parent, push_ns, task) ->
                Loghist.add dwell_h.(me) (Clock.now_ns () - push_ns);
                (match tracer with
                | Some tr ->
                  (if k = 0 then
                     Trace.emit tr Trace.Queue_pop ~t_us:(now_us ()) ~proc:me
                       ~task:id ()
                   else
                     (* steal provenance: the victim queue index rides
                        in the node field (see Trace.mli) *)
                     Trace.emit tr Trace.Queue_steal ~t_us:(now_us ()) ~proc:me
                       ~node:((my_q + k) mod nq)
                       ~task:id ())
                | None -> ());
                Some (id, parent, task)
              | None ->
                Atomic.incr failed_pops;
                (match tracer with
                | Some tr ->
                  Trace.emit tr Trace.Queue_failed_pop ~t_us:(now_us ())
                    ~proc:me ()
                | None -> ());
                scan (k + 1)
          in
          scan 0
        in
        (match item with
        | None -> Domain.cpu_relax ()
        | Some (id, parent, task) ->
          let node = Task.node task in
          let kind = (Network.node net node).Network.kind in
          let start_us = now_us () in
          (match tracer with
          | Some tr ->
            Trace.emit tr Trace.Task_start ~t_us:start_us ~proc:me ~node
              ~task:id ~parent ()
          | None -> ());
          let exec_t0 = Clock.now_ns () in
          let o = Runtime.exec net task in
          Loghist.add task_h.(me) (Clock.now_ns () - exec_t0);
          Atomic.incr tasks_done;
          ignore (Atomic.fetch_and_add scanned o.Runtime.scanned);
          let kids = o.Runtime.children in
          let nkids = Array.length kids in
          ignore (Atomic.fetch_and_add emitted nkids);
          ignore
            (Atomic.fetch_and_add serial_us_bits
               (int_of_float (10. *. Cost.task_cost cost kind o)));
          ignore (Atomic.fetch_and_add outstanding nkids);
          (match tracer with
          | Some tr ->
            let end_us = now_us () in
            (* real engine: the span is the measured wall time *)
            Trace.emit tr Trace.Task_end ~t_us:end_us ~proc:me ~node ~task:id
              ~parent
              ~dur_us:(Float.max 0.001 (end_us -. start_us))
              ~scanned:o.Runtime.scanned ~emitted:nkids ();
            Trace_emit.mem_accesses tr ~t_us:end_us ~proc:me ~task:id
              o.Runtime.accesses
          | None -> ());
          Array.iter
            (fun k ->
              let kid = Atomic.fetch_and_add next_id 1 in
              push_child (kid, id, Clock.now_ns (), k);
              match tracer with
              | Some tr ->
                Trace.emit tr Trace.Queue_push ~t_us:(now_us ()) ~proc:me
                  ~node:(Task.node k) ~task:kid ~parent:id ()
              | None -> ())
            kids;
          Atomic.decr outstanding);
        loop ()
      end
    in
    loop ()
  in
  let domains =
    List.init (max 1 config.processes) (fun i -> Domain.spawn (worker i))
  in
  List.iter Domain.join domains;
  let wall_ns = Clock.now_ns () - t0 in
  (* fold per-worker histograms and queue contention into the global
     telemetry; workers are joined, so the reads are exact *)
  let tm = Telemetry.global in
  Array.iter (fun h -> Loghist.merge_into ~into:(Telemetry.task_hist tm) h) task_h;
  Array.iter (fun h -> Loghist.merge_into ~into:(Telemetry.dwell_hist tm) h) dwell_h;
  (match queues with
  | Shared _ ->
    (* one mutex queue: every push/pop goes through it *)
    Telemetry.add_queue_pushes tm (Atomic.get next_id);
    Telemetry.add_queue_pops tm (Atomic.get tasks_done)
  | Deques ds ->
    Array.iter
      (fun d ->
        let s = Ws_deque.stats d in
        Telemetry.add_queue_pushes tm s.Ws_deque.pushes;
        Telemetry.add_queue_pops tm s.Ws_deque.pops;
        Telemetry.add_pop_races tm s.Ws_deque.pop_races;
        Telemetry.add_steal_attempts tm s.Ws_deque.steal_attempts;
        Telemetry.add_steals tm s.Ws_deque.steals;
        Telemetry.add_steal_cas_failures tm s.Ws_deque.steal_cas_failures)
      ds);
  {
    Cycle.empty with
    tasks = Atomic.get tasks_done;
    serial_us = float_of_int (Atomic.get serial_us_bits) /. 10.;
    makespan_us = float_of_int wall_ns /. 1000.;
    failed_pops = Atomic.get failed_pops;
    scanned = Atomic.get scanned;
    emitted = Atomic.get emitted;
    wall_ns;
  }

let run_changes ?(cost = Cost.default) ?tracer config net changes =
  let alpha = ref 0 in
  let seed =
    List.concat_map
      (fun (flag, w) ->
        let tasks, acts = Runtime.seed_wme_change net flag w in
        alpha := !alpha + acts;
        tasks)
      changes
  in
  let stats = run_tasks ~cost ?tracer config net seed in
  { stats with Cycle.alpha_activations = !alpha }
