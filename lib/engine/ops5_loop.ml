open Psme_support
open Psme_ops5
open Psme_rete

type strategy =
  | Lex
  | Mea

type t = {
  schema : Schema.t;
  net : Network.t;
  eng : Engine.t;
  wm : Wm.t;
  strategy : strategy;
  mutable halted : bool;
  mutable output_rev : string list;
  mutable gensym_counter : int;
}

let create ?(engine = Engine.Serial_mode) ?(cost = Cost.default) ?(strategy = Lex) schema
    productions =
  let net = Network.create schema in
  ignore (Build.add_all net productions);
  {
    schema;
    net;
    eng = Engine.create ~cost engine net;
    wm = Wm.create ();
    strategy;
    halted = false;
    output_rev = [];
    gensym_counter = 0;
  }

let network t = t.net
let wm t = t.wm
let output t = List.rev t.output_rev

let flush t changes = ignore (Engine.run_changes t.eng changes)

let add_wme t ~cls pairs =
  let cls = Sym.intern cls in
  let fields = Array.make (Schema.arity t.schema cls) Value.nil in
  List.iter
    (fun (attr, v) -> fields.(Schema.field_index t.schema cls (Sym.intern attr)) <- v)
    pairs;
  let w = Wm.add t.wm ~cls ~fields in
  flush t [ (Task.Add, w) ];
  w

let remove_wme t w =
  Wm.remove t.wm w;
  flush t [ (Task.Delete, w) ]

(* --- LEX conflict resolution ------------------------------------------ *)

(* Recency: compare the sorted-descending timetag vectors
   lexicographically; more recent dominates. Specificity: total number
   of tests in the production's LHS. *)
let recency_key (inst : Conflict_set.inst) =
  let tags = Array.map (fun w -> w.Wme.timetag) (Token.wmes inst.Conflict_set.token) in
  Array.sort (fun a b -> compare b a) tags;
  tags

let rec compare_tag_vectors a b i =
  match i >= Array.length a, i >= Array.length b with
  | true, true -> 0
  | true, false -> -1  (* shorter, older: loses *)
  | false, true -> 1
  | false, false ->
    let c = compare a.(i) b.(i) in
    if c <> 0 then c else compare_tag_vectors a b (i + 1)

let specificity t (inst : Conflict_set.inst) =
  match Network.find_production t.net inst.Conflict_set.prod with
  | None -> 0
  | Some pm ->
    let rec tests_of_cond = function
      | Cond.Pos ce | Cond.Neg ce -> List.length ce.Cond.tests
      | Cond.Ncc group -> List.fold_left (fun a c -> a + tests_of_cond c) 0 group
    in
    List.fold_left
      (fun a c -> a + tests_of_cond c)
      0 pm.Network.meta_production.Production.lhs

let first_ce_recency (inst : Conflict_set.inst) =
  (Token.wme inst.Conflict_set.token 0).Wme.timetag

let select t =
  let candidates = Conflict_set.pending t.net.Network.cs in
  let better a b =
    (* MEA: the first condition element (the goal/context element in
       means-ends analysis) dominates *)
    let mea =
      match t.strategy with
      | Mea -> compare (first_ce_recency a) (first_ce_recency b)
      | Lex -> 0
    in
    if mea <> 0 then mea > 0
    else
    let c = compare_tag_vectors (recency_key a) (recency_key b) 0 in
    if c <> 0 then c > 0
    else
      let c = compare (specificity t a) (specificity t b) in
      if c <> 0 then c > 0
      else Conflict_set.inst_equal a b || compare a.Conflict_set.prod b.Conflict_set.prod > 0
  in
  List.fold_left
    (fun acc inst ->
      match acc with
      | None -> Some inst
      | Some best -> if better inst best then Some inst else acc)
    None candidates

(* --- firing --------------------------------------------------------------- *)

let fire t (inst : Conflict_set.inst) =
  Conflict_set.mark_fired t.net.Network.cs inst;
  let pm =
    match Network.find_production t.net inst.Conflict_set.prod with
    | Some pm -> pm
    | None -> invalid_arg "fired instantiation of unknown production"
  in
  let prod = pm.Network.meta_production in
  let bindings = Network.bindings_of t.net inst.Conflict_set.prod inst.Conflict_set.token in
  let gensyms = Hashtbl.create 4 in
  let resolve = function
    | Action.Tconst v -> v
    | Action.Tvar v -> (
      match List.assoc_opt v bindings with
      | Some value -> value
      | None -> invalid_arg (Printf.sprintf "unbound RHS variable <%s>" v))
    | Action.Tgensym p -> (
      match Hashtbl.find_opt gensyms p with
      | Some v -> v
      | None ->
        t.gensym_counter <- t.gensym_counter + 1;
        let v = Value.sym (Printf.sprintf "%s%d*gen" p t.gensym_counter) in
        Hashtbl.replace gensyms p v;
        v)
  in
  let changes = ref [] in
  let matched_wme i = Token.wme inst.Conflict_set.token (i - 1) in
  List.iter
    (fun action ->
      match action with
      | Action.Make (cls, assigns) ->
        let fields = Array.make (Schema.arity t.schema cls) Value.nil in
        List.iter (fun (f, term) -> fields.(f) <- resolve term) assigns;
        let w = Wm.add t.wm ~cls ~fields in
        changes := (Task.Add, w) :: !changes
      | Action.Remove i ->
        let w = matched_wme i in
        if Wm.mem t.wm w then begin
          Wm.remove t.wm w;
          changes := (Task.Delete, w) :: !changes
        end
      | Action.Modify (i, assigns) ->
        let old = matched_wme i in
        if Wm.mem t.wm old then begin
          Wm.remove t.wm old;
          changes := (Task.Delete, old) :: !changes;
          let fields = Array.copy old.Wme.fields in
          List.iter (fun (f, term) -> fields.(f) <- resolve term) assigns;
          let w = Wm.add t.wm ~cls:old.Wme.cls ~fields in
          changes := (Task.Add, w) :: !changes
        end
      | Action.Write terms ->
        let render v = match v with Value.Str s -> s | _ -> Value.to_string v in
        t.output_rev <-
          String.concat " " (List.map (fun term -> render (resolve term)) terms)
          :: t.output_rev
      | Action.Halt -> t.halted <- true)
    prod.Production.rhs;
  flush t (List.rev !changes)

type stop_reason =
  | Halted
  | Quiescent
  | Cycle_limit

let run ?(max_cycles = 10_000) t =
  let fired = ref 0 in
  let reason = ref Cycle_limit in
  (try
     while !fired < max_cycles do
       if t.halted then begin
         reason := Halted;
         raise Exit
       end;
       match select t with
       | None ->
         reason := Quiescent;
         raise Exit
       | Some inst ->
         fire t inst;
         incr fired
     done
   with Exit -> ());
  if t.halted then reason := Halted;
  (!reason, !fired)
