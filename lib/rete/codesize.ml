let open_coded = ref true

(* Open-coded constants (bytes): a two-input node's body inlines the
   hash computation (~40B), the line lock acquire/release (~36B), the
   opposite-memory scan loop (~48B), and the child-token build and
   queue-push sequence (~26B per successor); each equality test inlines
   a field fetch + compare (~28B) and each residual predicate a call-out
   (~20B). Entry and P-nodes are simpler bodies. Closed-coded variants
   replace inline sequences with calls (the paper's 15–20B/node figure
   plus a shared runtime). *)

let two_input_base = 150
let per_eq_test = 28
let per_other_test = 20
let per_successor = 26
let entry_base = 84
let pnode_base = 120
let ncc_base = 140
let partner_base = 110
let bjoin_base = 170
let per_btest = 30

let closed_two_input = 18
let closed_other = 12

let bytes_of_node _net (n : Network.node) =
  let nsucc = List.length (Network.successors n) in
  if not !open_coded then
    match n.Network.kind with
    | Network.Join _ | Network.Neg _ | Network.Ncc _ | Network.Bjoin _ ->
      closed_two_input
    | Network.Entry | Network.Ncc_partner _ | Network.Pnode _ -> closed_other
  else
    match n.Network.kind with
    | Network.Entry -> entry_base + (per_successor * nsucc)
    | Network.Join ti | Network.Neg ti ->
      two_input_base
      + (per_eq_test * List.length ti.Network.eq)
      + (per_other_test * List.length ti.Network.others)
      + (per_successor * nsucc)
    | Network.Ncc _ -> ncc_base + (per_successor * nsucc)
    | Network.Ncc_partner _ -> partner_base
    | Network.Bjoin bi ->
      bjoin_base
      + (per_btest * (List.length bi.Network.b_eq + List.length bi.Network.b_others))
      + (per_successor * nsucc)
    | Network.Pnode _ -> pnode_base

let bytes_of_addition net (res : Build.add_result) =
  List.fold_left
    (fun acc nid -> acc + bytes_of_node net (Network.node net nid))
    0 res.Build.new_beta_nodes

(* --- compiled-program (closure) sizes --------------------------------- *)

(* The closure compiler's analogue of the byte model above: what the
   node programs actually allocated, counted by [Program]'s size model
   (closures and their heap words). Zero everywhere when the network
   runs interpreted. *)

type compiled_report = {
  cp_programs : int;  (** nodes with an installed program *)
  cp_closures : int;
  cp_words : int;
}

let cp_empty = { cp_programs = 0; cp_closures = 0; cp_words = 0 }

let cp_add net r nid =
  match Program.node_entry net nid with
  | None -> r
  | Some _ ->
    {
      cp_programs = r.cp_programs + 1;
      cp_closures = r.cp_closures + Program.node_closures net nid;
      cp_words = r.cp_words + Program.node_words net nid;
    }

let compiled_report net =
  Network.fold_nodes net ~init:cp_empty ~f:(fun r n -> cp_add net r n.Network.id)

let compiled_of_production net (pm : Network.pmeta) =
  List.fold_left (cp_add net) cp_empty pm.Network.created_nodes

let bytes_per_two_input_node net (res : Build.add_result) =
  let total = ref 0 and count = ref 0 in
  List.iter
    (fun nid ->
      let n = Network.node net nid in
      match n.Network.kind with
      | Network.Join _ | Network.Neg _ | Network.Ncc _ | Network.Bjoin _ ->
        total := !total + bytes_of_node net n;
        incr count
      | Network.Entry | Network.Ncc_partner _ | Network.Pnode _ -> ())
    res.Build.new_beta_nodes;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count
