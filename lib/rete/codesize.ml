let open_coded = ref true

(* Open-coded constants (bytes): a two-input node's body inlines the
   hash computation (~40B), the line lock acquire/release (~36B), the
   opposite-memory scan loop (~48B), and the child-token build and
   queue-push sequence (~26B per successor); each equality test inlines
   a field fetch + compare (~28B) and each residual predicate a call-out
   (~20B). Entry and P-nodes are simpler bodies. Closed-coded variants
   replace inline sequences with calls (the paper's 15–20B/node figure
   plus a shared runtime). *)

let two_input_base = 150
let per_eq_test = 28
let per_other_test = 20
let per_successor = 26
let entry_base = 84
let pnode_base = 120
let ncc_base = 140
let partner_base = 110
let bjoin_base = 170
let per_btest = 30

let closed_two_input = 18
let closed_other = 12

let bytes_of_node _net (n : Network.node) =
  let nsucc = List.length (Network.successors n) in
  if not !open_coded then
    match n.Network.kind with
    | Network.Join _ | Network.Neg _ | Network.Ncc _ | Network.Bjoin _ ->
      closed_two_input
    | Network.Entry | Network.Ncc_partner _ | Network.Pnode _ -> closed_other
  else
    match n.Network.kind with
    | Network.Entry -> entry_base + (per_successor * nsucc)
    | Network.Join ti | Network.Neg ti ->
      two_input_base
      + (per_eq_test * List.length ti.Network.eq)
      + (per_other_test * List.length ti.Network.others)
      + (per_successor * nsucc)
    | Network.Ncc _ -> ncc_base + (per_successor * nsucc)
    | Network.Ncc_partner _ -> partner_base
    | Network.Bjoin bi ->
      bjoin_base
      + (per_btest * (List.length bi.Network.b_eq + List.length bi.Network.b_others))
      + (per_successor * nsucc)
    | Network.Pnode _ -> pnode_base

(* Addition results can outlive their nodes (a later excise removes
   unshared parts of the chain); dead ids contribute nothing rather than
   raising. *)
let bytes_of_addition net (res : Build.add_result) =
  List.fold_left
    (fun acc nid ->
      match Network.node_opt net nid with
      | Some n -> acc + bytes_of_node net n
      | None -> acc)
    0 res.Build.new_beta_nodes

(* --- sharing accounting ----------------------------------------------- *)

type sharing = {
  sh_nodes : int;
  sh_shared : int;
  sh_bytes : int;
  sh_per_production : (Psme_support.Sym.t * int * int) list;
}

(* Recomputed from the chains of the productions currently in the
   network, not from creation-time records: an excised production's
   nodes either disappeared with it or survive because a live chain
   runs through them — either way the excised production no longer
   owns anything. A node shared by several live chains is owned by the
   first of them in addition order (the chain that would have created
   it had the others never existed). *)
let sharing_report net =
  let owner = Hashtbl.create 64 in
  let uses = Hashtbl.create 64 in
  let prods = Network.productions net in
  List.iter
    (fun (pm : Network.pmeta) ->
      let name = pm.Network.meta_production.Psme_ops5.Production.name in
      List.iter
        (fun nid ->
          if Network.node_opt net nid <> None then begin
            if not (Hashtbl.mem owner nid) then Hashtbl.replace owner nid name;
            Hashtbl.replace uses nid
              (1 + Option.value ~default:0 (Hashtbl.find_opt uses nid))
          end)
        (List.sort_uniq compare pm.Network.chain))
    prods;
  let per =
    List.map
      (fun (pm : Network.pmeta) ->
        let name = pm.Network.meta_production.Psme_ops5.Production.name in
        let nodes = ref 0 and bytes = ref 0 in
        Hashtbl.iter
          (fun nid o ->
            if Psme_support.Sym.equal o name then begin
              incr nodes;
              match Network.node_opt net nid with
              | Some n -> bytes := !bytes + bytes_of_node net n
              | None -> ()
            end)
          owner;
        (name, !nodes, !bytes))
      prods
  in
  let sh_nodes = Hashtbl.length owner in
  let sh_shared =
    Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) uses 0
  in
  let sh_bytes = List.fold_left (fun acc (_, _, b) -> acc + b) 0 per in
  { sh_nodes; sh_shared; sh_bytes; sh_per_production = per }

(* --- compiled-program (closure) sizes --------------------------------- *)

(* The closure compiler's analogue of the byte model above: what the
   node programs actually allocated, counted by [Program]'s size model
   (closures and their heap words). Zero everywhere when the network
   runs interpreted. *)

type compiled_report = {
  cp_programs : int;  (** nodes with an installed program *)
  cp_closures : int;
  cp_words : int;
}

let cp_empty = { cp_programs = 0; cp_closures = 0; cp_words = 0 }

let cp_add net r nid =
  match Program.node_entry net nid with
  | None -> r
  | Some _ ->
    {
      cp_programs = r.cp_programs + 1;
      cp_closures = r.cp_closures + Program.node_closures net nid;
      cp_words = r.cp_words + Program.node_words net nid;
    }

let compiled_report net =
  Network.fold_nodes net ~init:cp_empty ~f:(fun r n -> cp_add net r n.Network.id)

(* Only nodes still alive: creation-time records go stale when a later
   excise removes part of the chain. *)
let compiled_of_production net (pm : Network.pmeta) =
  List.fold_left
    (fun r nid ->
      if Network.node_opt net nid = None then r else cp_add net r nid)
    cp_empty pm.Network.created_nodes

let bytes_per_two_input_node net (res : Build.add_result) =
  let total = ref 0 and count = ref 0 in
  List.iter
    (fun nid ->
      match Network.node_opt net nid with
      | None -> ()
      | Some n ->
      match n.Network.kind with
      | Network.Join _ | Network.Neg _ | Network.Ncc _ | Network.Bjoin _ ->
        total := !total + bytes_of_node net n;
        incr count
      | Network.Entry | Network.Ncc_partner _ | Network.Pnode _ -> ())
    res.Build.new_beta_nodes;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count
