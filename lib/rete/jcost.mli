(** Static join-cost model.

    Estimates, without running the network, what a production's beta
    chain will cost: per-CE alpha-memory cardinalities from constant-test
    specificity, per-level scan work from the token×memory product the
    two-input nodes perform (the paper's dominant term), and join
    selectivity from the variable links between a CE and the already
    placed prefix. The absolute numbers are model units, not wmes — only
    the {e ranking} across productions and across orders of one
    production is meaningful, which is what the analyzer reports and
    what the profiler-correlation test asserts.

    Lives in [Psme_rete] (not [Psme_check]) because {!Build} consumes
    {!suggest_order} for join reordering while the analyzer consumes the
    chains for cost findings; the check library already depends on this
    one. *)

open Psme_support
open Psme_ops5

val base_card : float ref
(** Assumed wme population per class before constant tests (model
    parameter; default 16). *)

val quadratic_bound : unit -> float
(** [base_card²] — the token-count threshold beyond which a chain is
    flagged as super-quadratic (an unlinked or badly ordered join). *)

(** Per-condition statistics, derived by scanning a CE's tests in the
    exact order {!Build} consumes them. *)
type ce_stats = {
  cs_idx : int;  (** index among the production's positive CEs *)
  cs_cls : Sym.t;
  cs_selectivity : float;  (** product of constant-test selectivities, (0,1] *)
  cs_card : float;  (** estimated alpha-memory cardinality *)
  cs_eq_vars : string list;  (** vars with an equality occurrence *)
  cs_pred_vars : string list;  (** vars occurring under <>, <, <=, >, >= *)
  cs_requires : string list;
      (** vars whose first occurrence is a predicate — must be bound by
          an earlier CE for the build to accept this placement *)
  cs_vars : string list;  (** all distinct vars, equality vars first *)
}

(** One join level of a simulated chain. *)
type step = {
  st_ce : int;  (** positive-CE index placed at this level *)
  st_scan : float;  (** estimated opposite-memory scan work *)
  st_tokens : float;  (** tokens flowing out of this level *)
  st_linked : bool;  (** shares ≥1 bound variable with the prefix *)
}

type chain = {
  ch_order : int array;  (** positive-CE indices in placement order *)
  ch_steps : step list;  (** positives in order, then slotless negatives *)
  ch_cost : float;  (** Σ scan — the chain-cost bound *)
  ch_peak : float;  (** max tokens at any level *)
  ch_cross : int list;  (** levels joined with no variable linkage *)
}

val stats_of_ce : int -> Cond.ce -> ce_stats

val chain : Production.t -> chain
(** Cost of the production as written (negatives charged after the
    positive prefix they filter). *)

val chain_of_order : Production.t -> int array -> chain
(** Cost under an explicit placement order of the positive CEs.
    @raise Invalid_argument if the order's length is wrong. *)

val reorderable : Production.t -> bool
(** No NCC groups (their group-local slot layout pins the written
    order) and at least two positive CEs. *)

val suggest : Production.t -> chain option
(** Greedy dependency-respecting search for a cheaper placement:
    most-selective-linked-first, unlinked (cross-product) placements
    deferred as last resorts, ties broken by original index so the
    result is deterministic. [None] when the production is not
    {!reorderable}, the search returns the written order, or the
    predicted saving is negligible. *)

val suggest_order : Production.t -> int array option
(** [suggest] projected to the order — what {!Build} consumes. *)
