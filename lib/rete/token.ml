open Psme_ops5

(* A token is immutable, but the usual way one is built is by extending
   its parent with one wme per join level. Storing a flat array makes
   that O(n) per level (O(n²) down a chain); storing the parent pointer
   makes it O(1) and lets deep tokens share their prefixes. The flat
   view is still needed by slot accessors, so it is materialized lazily
   and memoized.

   [raw] is the rolling timetag hash *without* the final [land max_int]
   masking, so extension is one multiply-add and the masked [hash] is
   bit-identical to hashing the materialized array (the khash values the
   memories were laid out with, and the cost model measured, do not
   change). *)

type t = {
  rep : rep;
  len : int;
  raw : int;  (* unmasked rolling hash of the wme timetags *)
  mutable arr : Wme.t array;  (* [||] = not yet materialized (len > 0) *)
}

and rep =
  | Flat  (* slots are in [arr] from construction *)
  | Snoc of t * Wme.t  (* parent chain plus one appended wme *)

let raw_of_wmes wmes =
  Array.fold_left (fun acc w -> (acc * 31) + w.Wme.timetag) 17 wmes

let of_wmes wmes =
  { rep = Flat; len = Array.length wmes; raw = raw_of_wmes wmes; arr = wmes }

let empty = of_wmes [||]

let extend t w =
  { rep = Snoc (t, w); len = t.len + 1; raw = (t.raw * 31) + w.Wme.timetag;
    arr = [||] }

let singleton w = extend empty w

let length t = t.len
let hash t = t.raw land max_int

(* Materialize (and memoize) the flat slot array. Tokens are shared
   across match processes; the memo write is a benign race — every
   domain computes the same array and a torn pointer cannot be observed
   (word-sized writes are atomic in the OCaml memory model). *)
let wmes t =
  if t.len = 0 then t.arr
  else if Array.length t.arr = t.len then t.arr
  else begin
    let last = function
      | { rep = Snoc (_, w); _ } -> w
      | { rep = Flat; arr; len; _ } -> arr.(len - 1)
    in
    let a = Array.make t.len (last t) in
    let rec fill node =
      match node.rep with
      | Flat -> Array.blit node.arr 0 a 0 node.len
      | Snoc (parent, w) ->
        if Array.length node.arr = node.len then Array.blit node.arr 0 a 0 node.len
        else begin
          a.(node.len - 1) <- w;
          fill parent
        end
    in
    fill t;
    t.arr <- a;
    a
  end

let wme t i =
  if i < 0 || i >= t.len then invalid_arg "Token.wme";
  if Array.length t.arr = t.len then t.arr.(i)
  else begin
    (* walk back from the tail; joins mostly touch recent slots, and
       stored tokens get materialized on their first full scan *)
    let rec back node =
      match node.rep with
      | Flat -> node.arr.(i)
      | Snoc (parent, w) -> if i = node.len - 1 then w else back parent
    in
    if t.len - i <= 4 then back t else (wmes t).(i)
  end

let concat a b =
  if b.len = 0 then a
  else if a.len = 0 then b
  else begin
    let bw = wmes b in
    let arr = Array.make (a.len + b.len) bw.(0) in
    Array.blit (wmes a) 0 arr 0 a.len;
    Array.blit bw 0 arr a.len b.len;
    of_wmes arr
  end

let prefix t n =
  if n = t.len then t
  else begin
    (* share the chain when only the tail is trimmed *)
    let rec strip node k =
      match node.rep with
      | Snoc (parent, _) when node.len > n && k > 0 -> strip parent (k - 1)
      | _ -> node
    in
    let stripped = strip t 4 in
    if stripped.len = n then stripped else of_wmes (Array.sub (wmes t) 0 n)
  end

let suffix t n =
  if n = 0 then t else of_wmes (Array.sub (wmes t) n (t.len - n))

let equal a b =
  a == b
  || (a.raw = b.raw && a.len = b.len
     && begin
       (* walk the two chains in lockstep; physically equal ancestors
          (shared prefixes, the common case among join results) end the
          comparison early *)
       let rec eq x y =
         x == y
         ||
         match x.rep, y.rep with
         | Snoc (xp, xw), Snoc (yp, yw) -> Wme.equal xw yw && eq xp yp
         | _ ->
           let xa = wmes x and ya = wmes y in
           let ok = ref true in
           Array.iteri (fun i w -> if not (Wme.equal w ya.(i)) then ok := false) xa;
           !ok
       in
       eq a b
     end)

let field t ~slot ~fld = Wme.field (wme t slot) fld

let permute t perm =
  let src = wmes t in
  of_wmes (Array.map (fun i -> src.(i)) perm)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf w -> Format.pp_print_int ppf w.Wme.timetag))
    (Array.to_list (wmes t))
