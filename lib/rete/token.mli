(** Partial instantiations.

    A token is the paper's PI: the list of wmes matched so far along one
    path through the beta network. A node's [layout] maps slots back to
    the production's positive-CE indices (identity for linear networks,
    permuted for bilinear ones).

    Representation: a token extended from its parent keeps a pointer to
    it (plus the one appended wme), so {!extend} — the per-join-level
    operation — is O(1) in the chain length and deep tokens share their
    prefixes; the flat slot array is materialized lazily by {!wmes} and
    memoized. The structural hash is maintained incrementally and is
    bit-identical to hashing the materialized slots, so the memory-line
    layout (khash values) is unchanged from the flat representation. *)

open Psme_ops5

type t

val of_wmes : Wme.t array -> t
(** The array is taken over by the token; do not mutate it afterwards. *)

val singleton : Wme.t -> t

val extend : t -> Wme.t -> t
(** Append one wme (the usual linear-join step). O(1): shares the
    receiver as the new token's prefix. *)

val concat : t -> t -> t
(** Concatenate two tokens (binary joins in bilinear networks). *)

val length : t -> int

val wmes : t -> Wme.t array
(** The flat slot array (materialized on first use, then memoized; the
    memo write is a benign race between domains). Do not mutate. *)

val wme : t -> int -> Wme.t

val prefix : t -> int -> t
(** First [n] slots. *)

val suffix : t -> int -> t
(** All slots from index [n] on. *)

val equal : t -> t -> bool
(** Structural equality over the wme timetags, with a physical-equality
    short-circuit (also applied level-by-level down shared chains). *)

val hash : t -> int
val field : t -> slot:int -> fld:int -> Psme_support.Value.t

val permute : t -> int array -> t
(** [permute t perm] builds a token whose slot [i] is [t]'s slot
    [perm.(i)] — used at P-nodes to restore CE order. *)

val pp : Format.formatter -> t -> unit
