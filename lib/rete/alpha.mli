(** The alpha (constant-test) network.

    Wmes are discriminated first on their class, then down shared chains
    of constant tests; each chain may end in an {e alpha memory} whose
    successors are the two-input (or entry) nodes fed on their right
    input. Constant tests are cheap relative to two-input nodes (the
    paper: ~90% of optimized match time is in two-input nodes), so the
    engines run the whole alpha pass for a wme change inline and only
    the resulting right activations become schedulable tasks. *)

open Psme_support
open Psme_ops5

(** Tests that depend only on the candidate wme. [A_same] covers
    intra-CE variable consistency such as [(block ^a <x> ^b <x>)]. *)
type atest =
  | A_const of int * Value.t
  | A_disj of int * Value.t list
  | A_rel of int * Cond.relation * Value.t
  | A_same of int * Cond.relation * int  (** field REL field *)

val atest_holds : atest -> Wme.t -> bool

(** Structural-equality contract: chain sharing in {!add_chain} compares
    tests field-by-field with {!Psme_support.Value.equal} (so [Int 3]
    and [Float 3.] never share a node even though some relations treat
    them as equal magnitudes), and [A_disj] value lists are canonicalized
    — sorted by [Value.compare] and deduplicated — on entry, so
    [<<red blue>>] and [<<blue red>>] produce one shared node. Tests
    containing the same [float] NaN never compare equal and will not
    share. *)

type t

val create : alloc_id:(unit -> int) -> t
(** [alloc_id] draws from the network-wide monotone node-ID counter, so
    alpha nodes obey the paper's incremental-ID scheme too. *)

val add_chain : t -> cls:Sym.t -> atest list -> int
(** [add_chain t ~cls tests] finds or creates the test chain for a CE
    (tests are deduplicated and sorted canonically by the caller;
    [A_disj] value order is additionally canonicalized here) and
    returns the alpha-memory id at its end. Shares every prefix with
    existing chains, comparing tests per the structural-equality
    contract above. *)

val add_successor : t -> amem:int -> node:int -> unit
(** Register a beta node fed by alpha memory [amem]. Keeps the successor
    list free of duplicates. *)

val remove_successor : t -> node:int -> unit
(** Unregister a beta node from every alpha memory (production excise). *)

val matching_amems : t -> Wme.t -> (int -> unit) -> int
(** Apply the function to each alpha memory the wme reaches; returns the
    number of constant-test node activations performed (for the cost
    model). [A_const] siblings at each level are resolved through a
    per-level [(field, value)] hash dispatch rather than tested one by
    one, but the activation count still charges every sibling of an
    expanded node and memories are emitted in the same order as the
    undispatched depth-first walk. *)

val successors : t -> amem:int -> int list
(** Beta nodes fed by this alpha memory, in registration order. *)

val amems : t -> int list
(** All alpha-memory ids, ascending (analysis hook). *)

val amem_exists : t -> int -> bool

val chain_of : t -> amem:int -> (Sym.t * atest list) option
(** The class and (canonicalized) constant-test chain feeding an alpha
    memory — what a wme must satisfy to reach it. Analysis
    introspection: the static analyzer abstract-interprets this chain to
    find memories no wme can ever reach. *)

val iter_chains : t -> (amem:int -> cls:Sym.t -> tests:atest list -> unit) -> unit
(** {!chain_of} over every alpha memory, in no particular order. *)

val node_count : t -> int
(** Constant-test nodes + alpha memories currently in the network. *)

val stats_activations : t -> int
(** Cumulative constant-test activations. *)
