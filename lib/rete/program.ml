open Psme_support
open Psme_ops5
open Network

(* Closure-compiled node programs — the single-core analogue of PSM-E's
   open-coded machine code (PAPER §4). Each node's test sequence is
   compiled ONCE, when the node is created, into specialized OCaml
   closures; activations then run through a dispatch array indexed by
   node id (the §5.1 jumptable). Three specializations happen at compile
   time:

     1. khash extraction: the fold over the node's [eq] list becomes a
        closure specialized to the node's slots/fields (and folds to the
        node's seed constant when the list is empty);
     2. test fusion: the [jtest]/[btest] chains become ONE staged
        predicate. Staging is the key trick: the predicate first
        specializes on the activation-fixed operand (extracting its
        fields exactly once), then runs monomorphically over every
        candidate of the memory scan — where the interpreter re-walks
        the test list and re-extracts the fixed side per candidate;
     3. fan-out: successor arrays are read directly (registration
        order), so emit allocates only the task records themselves.

   Every compiled handler mirrors its interpreter twin in [Runtime]
   line by line: scanned counts, accesses, children order and conflict
   transitions are bit-identical, which is what lets the interpreter
   remain the differential oracle. *)

type access = {
  acc_node : int;
  acc_line : int;
  acc_write : bool;
  acc_locked : bool;
}

type outcome = {
  children : Task.t array;
  scanned : int;
  matched : int;
  insts : (Task.flag * Conflict_set.inst) list;
  accesses : access list;
}

let no_children =
  { children = [||]; scanned = 0; matched = 0; insts = []; accesses = [] }

(* Fault-injection hook for the race detector's self-test: when set, exec
   sections run WITHOUT taking the line lock (and report their accesses as
   unlocked). Never enable outside analysis tests. Shared by the compiled
   and interpreted paths. *)
let elide = ref false
let set_lock_elision b = elide := b
let lock_elision () = !elide

let with_line mem ~line f = if !elide then f () else Memory.locked mem ~line f

let access ~node ~line =
  { acc_node = node; acc_line = line; acc_write = true; acc_locked = not !elide }

(* --- fan-out ---------------------------------------------------------- *)

let task_to flag token (sid, port) =
  match port with
  | P_left -> Task.Left { node = sid; flag; token }
  | P_right -> Task.Rtok { node = sid; flag; token }

let emit n flag token = Array.map (task_to flag token) n.succs

(* Tokens in list order, each fanned to all successors in registration
   order — exactly the order the per-token emit concatenation produced. *)
let emit_all n flag tokens =
  let succs = n.succs in
  let ns = Array.length succs in
  match tokens with
  | [] -> [||]
  | t0 :: _ when ns > 0 ->
    let k = List.length tokens in
    let out = Array.make (k * ns) (task_to flag t0 succs.(0)) in
    List.iteri
      (fun ti tok ->
        for si = 0 to ns - 1 do
          out.((ti * ns) + si) <- task_to flag tok succs.(si)
        done)
      tokens;
    out
  | _ :: _ -> [||]

(* Negative-node transitions carry their own flag per token. *)
let emit_transitions n transitions =
  let succs = n.succs in
  let ns = Array.length succs in
  match transitions with
  | [] -> [||]
  | (f0, t0) :: _ when ns > 0 ->
    let k = List.length transitions in
    let out = Array.make (k * ns) (task_to f0 t0 succs.(0)) in
    List.iteri
      (fun ti (fl, tok) ->
        for si = 0 to ns - 1 do
          out.((ti * ns) + si) <- task_to fl tok succs.(si)
        done)
      transitions;
    out
  | _ :: _ -> [||]

(* Fused extend+emit for join scans: matched operands arrive as a list
   in REVERSE scan order (one cons per match — an empty scan allocates
   nothing); rows are filled back-to-front so each extended token fans
   to every successor in registration order — the exact sequence
   [emit_all] produced from the rev_map'd match list, without
   materializing it. Token extension is skipped entirely when the node
   has no successors (extension is pure, so nothing observable is
   lost). *)
let emit_extended n flag ~extend rev_ms k =
  let succs = n.succs in
  let ns = Array.length succs in
  if k = 0 || ns = 0 then [||]
  else begin
    let rec fill out ti = function
      | [] -> out
      | m :: rest ->
        let tok = extend m in
        let row = ti * ns in
        for si = 0 to ns - 1 do
          out.(row + si) <- task_to flag tok succs.(si)
        done;
        fill out (ti - 1) rest
    in
    match rev_ms with
    | [] -> [||]
    | last :: _ ->
      let out = Array.make (k * ns) (task_to flag (extend last) succs.(0)) in
      fill out (k - 1) rev_ms
  end

(* --- staged test compilation ----------------------------------------- *)

(* A staged predicate ['fixed -> 'cand -> bool] specializes on the
   activation operand first; the returned inner closure is what the scan
   loop calls per candidate. *)

let conj f g x =
  let pf = f x and pg = g x in
  fun y -> pf y && pg y

let staged_true =
  let yes _ = true in
  fun _ -> yes

let chain = function
  | [] -> staged_true
  | [ p ] -> p
  | p :: rest -> List.fold_left conj p rest

(* One jtest, compile-time resolved: the comparator is picked per
   relation ONCE (no [eval_relation] dispatch per candidate; [Eq] calls
   [Value.equal] directly). The comparator's argument order is the
   interpreter's: (token-side value, wme-side value). *)
type spec = {
  sp_slot : int;
  sp_lfld : int;
  sp_cmp : Value.t -> Value.t -> bool;
  sp_rfld : int;
}

(* Each relation resolves to a direct comparator at compile time — no
   per-candidate dispatch on the relation constructor. The ordered
   relations keep [eval_relation]'s numeric-coercion semantics. *)
let ord rel a b = Cond.eval_relation rel a b

let cmp_of = function
  | Cond.Eq -> Value.equal
  | Cond.Ne -> fun a b -> not (Value.equal a b)
  | (Cond.Lt | Cond.Le | Cond.Gt | Cond.Ge) as rel -> ord rel

let spec_of (jt : jtest) =
  { sp_slot = jt.l_slot; sp_lfld = jt.l_fld; sp_cmp = cmp_of jt.rel; sp_rfld = jt.r_fld }

let tfield tok (s : spec) = Token.field tok ~slot:s.sp_slot ~fld:s.sp_lfld

(* Chains made only of [Eq]/[Ne] — the dominant shape (equality join key
   plus inequality residuals) — compile to branches that call
   [Value.equal] DIRECTLY, the negation folded into an xor against a
   staged bool: zero per-candidate comparator indirection. Anything with
   an ordered relation falls back to the [spec] comparators. *)
type eqne = {
  en_slot : int;
  en_lfld : int;
  en_neg : bool;  (* true = [Ne]: candidate passes when values differ *)
  en_rfld : int;
}

let eqne_of (jt : jtest) =
  match jt.rel with
  | Cond.Eq ->
    Some { en_slot = jt.l_slot; en_lfld = jt.l_fld; en_neg = false; en_rfld = jt.r_fld }
  | Cond.Ne ->
    Some { en_slot = jt.l_slot; en_lfld = jt.l_fld; en_neg = true; en_rfld = jt.r_fld }
  | Cond.Lt | Cond.Le | Cond.Gt | Cond.Ge -> None

let eqne_all jts =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | jt :: rest -> (
      match eqne_of jt with Some e -> go (e :: acc) rest | None -> None)
  in
  go [] jts

let enfield tok (e : eqne) = Token.field tok ~slot:e.en_slot ~fld:e.en_lfld

let eqne_staged_left = function
  | [] -> staged_true
  | [ a ] ->
    let na = a.en_neg in
    fun tok ->
      let va = enfield tok a in
      fun w -> Value.equal va (Wme.field w a.en_rfld) <> na
  | [ a; b ] ->
    let na = a.en_neg and nb = b.en_neg in
    fun tok ->
      let va = enfield tok a and vb = enfield tok b in
      fun w ->
        Value.equal va (Wme.field w a.en_rfld) <> na
        && Value.equal vb (Wme.field w b.en_rfld) <> nb
  | [ a; b; c ] ->
    let na = a.en_neg and nb = b.en_neg and nc = c.en_neg in
    fun tok ->
      let va = enfield tok a and vb = enfield tok b and vc = enfield tok c in
      fun w ->
        Value.equal va (Wme.field w a.en_rfld) <> na
        && Value.equal vb (Wme.field w b.en_rfld) <> nb
        && Value.equal vc (Wme.field w c.en_rfld) <> nc
  | [ a; b; c; d ] ->
    let na = a.en_neg and nb = b.en_neg in
    let nc = c.en_neg and nd = d.en_neg in
    fun tok ->
      let va = enfield tok a and vb = enfield tok b in
      let vc = enfield tok c and vd = enfield tok d in
      fun w ->
        Value.equal va (Wme.field w a.en_rfld) <> na
        && Value.equal vb (Wme.field w b.en_rfld) <> nb
        && Value.equal vc (Wme.field w c.en_rfld) <> nc
        && Value.equal vd (Wme.field w d.en_rfld) <> nd
  | ens ->
    let arr = Array.of_list ens in
    let n = Array.length arr in
    fun tok ->
      let vals = Array.map (fun e -> enfield tok e) arr in
      fun w ->
        let rec go i =
          i >= n
          ||
          let e = arr.(i) in
          Value.equal vals.(i) (Wme.field w e.en_rfld) <> e.en_neg && go (i + 1)
        in
        go 0

let eqne_staged_right = function
  | [] -> staged_true
  | [ a ] ->
    let na = a.en_neg in
    fun w ->
      let va = Wme.field w a.en_rfld in
      fun tok -> Value.equal (enfield tok a) va <> na
  | [ a; b ] ->
    let na = a.en_neg and nb = b.en_neg in
    fun w ->
      let va = Wme.field w a.en_rfld and vb = Wme.field w b.en_rfld in
      fun tok ->
        Value.equal (enfield tok a) va <> na && Value.equal (enfield tok b) vb <> nb
  | [ a; b; c ] ->
    let na = a.en_neg and nb = b.en_neg and nc = c.en_neg in
    fun w ->
      let va = Wme.field w a.en_rfld and vb = Wme.field w b.en_rfld in
      let vc = Wme.field w c.en_rfld in
      fun tok ->
        Value.equal (enfield tok a) va <> na
        && Value.equal (enfield tok b) vb <> nb
        && Value.equal (enfield tok c) vc <> nc
  | [ a; b; c; d ] ->
    let na = a.en_neg and nb = b.en_neg in
    let nc = c.en_neg and nd = d.en_neg in
    fun w ->
      let va = Wme.field w a.en_rfld and vb = Wme.field w b.en_rfld in
      let vc = Wme.field w c.en_rfld and vd = Wme.field w d.en_rfld in
      fun tok ->
        Value.equal (enfield tok a) va <> na
        && Value.equal (enfield tok b) vb <> nb
        && Value.equal (enfield tok c) vc <> nc
        && Value.equal (enfield tok d) vd <> nd
  | ens ->
    let arr = Array.of_list ens in
    let n = Array.length arr in
    fun w ->
      let vals = Array.map (fun e -> Wme.field w e.en_rfld) arr in
      fun tok ->
        let rec go i =
          i >= n
          ||
          let e = arr.(i) in
          Value.equal (enfield tok e) vals.(i) <> e.en_neg && go (i + 1)
        in
        go 0

(* The fused chain, staged on the left token (join/neg LEFT
   activations): ONE closure that extracts every token-side operand at
   activation time, then runs monomorphically per scanned wme. Arities
   1–4 are unrolled (no per-activation combinator allocation, no
   per-candidate chain walk); longer chains fall back to an array loop.
   Test order matches the interpreter: all [eq], then all [others];
   short-circuit is left-to-right. *)
let jtests_staged_left ti =
  let jts = ti.eq @ ti.others in
  match eqne_all jts with
  | Some ens -> eqne_staged_left ens
  | None ->
  match List.map spec_of jts with
  | [] -> staged_true
  | [ a ] ->
    fun tok ->
      let va = tfield tok a in
      fun w -> a.sp_cmp va (Wme.field w a.sp_rfld)
  | [ a; b ] ->
    fun tok ->
      let va = tfield tok a and vb = tfield tok b in
      fun w ->
        a.sp_cmp va (Wme.field w a.sp_rfld) && b.sp_cmp vb (Wme.field w b.sp_rfld)
  | [ a; b; c ] ->
    fun tok ->
      let va = tfield tok a and vb = tfield tok b and vc = tfield tok c in
      fun w ->
        a.sp_cmp va (Wme.field w a.sp_rfld)
        && b.sp_cmp vb (Wme.field w b.sp_rfld)
        && c.sp_cmp vc (Wme.field w c.sp_rfld)
  | [ a; b; c; d ] ->
    fun tok ->
      let va = tfield tok a and vb = tfield tok b in
      let vc = tfield tok c and vd = tfield tok d in
      fun w ->
        a.sp_cmp va (Wme.field w a.sp_rfld)
        && b.sp_cmp vb (Wme.field w b.sp_rfld)
        && c.sp_cmp vc (Wme.field w c.sp_rfld)
        && d.sp_cmp vd (Wme.field w d.sp_rfld)
  | specs ->
    let arr = Array.of_list specs in
    let n = Array.length arr in
    fun tok ->
      let vals = Array.map (fun s -> tfield tok s) arr in
      fun w ->
        let rec go i =
          i >= n
          ||
          let s = arr.(i) in
          s.sp_cmp vals.(i) (Wme.field w s.sp_rfld) && go (i + 1)
        in
        go 0

(* Staged on the right wme (join/neg RIGHT activations): the wme-side
   operands are extracted once, the per-candidate closure reads token
   fields. *)
let jtests_staged_right ti =
  let jts = ti.eq @ ti.others in
  match eqne_all jts with
  | Some ens -> eqne_staged_right ens
  | None ->
  match List.map spec_of jts with
  | [] -> staged_true
  | [ a ] ->
    fun w ->
      let va = Wme.field w a.sp_rfld in
      fun tok -> a.sp_cmp (tfield tok a) va
  | [ a; b ] ->
    fun w ->
      let va = Wme.field w a.sp_rfld and vb = Wme.field w b.sp_rfld in
      fun tok -> a.sp_cmp (tfield tok a) va && b.sp_cmp (tfield tok b) vb
  | [ a; b; c ] ->
    fun w ->
      let va = Wme.field w a.sp_rfld and vb = Wme.field w b.sp_rfld in
      let vc = Wme.field w c.sp_rfld in
      fun tok ->
        a.sp_cmp (tfield tok a) va
        && b.sp_cmp (tfield tok b) vb
        && c.sp_cmp (tfield tok c) vc
  | [ a; b; c; d ] ->
    fun w ->
      let va = Wme.field w a.sp_rfld and vb = Wme.field w b.sp_rfld in
      let vc = Wme.field w c.sp_rfld and vd = Wme.field w d.sp_rfld in
      fun tok ->
        a.sp_cmp (tfield tok a) va
        && b.sp_cmp (tfield tok b) vb
        && c.sp_cmp (tfield tok c) vc
        && d.sp_cmp (tfield tok d) vd
  | specs ->
    let arr = Array.of_list specs in
    let n = Array.length arr in
    fun w ->
      let vals = Array.map (fun s -> Wme.field w s.sp_rfld) arr in
      fun tok ->
        let rec go i =
          i >= n
          ||
          let s = arr.(i) in
          s.sp_cmp (tfield tok s) vals.(i) && go (i + 1)
        in
        go 0

let btest_left (bt : btest) =
  match bt with
  | B_fields { a_slot; a_fld; rel; b_slot; b_fld } -> (
    match rel with
    | Cond.Eq ->
      fun a ->
        let av = Token.field a ~slot:a_slot ~fld:a_fld in
        fun b -> Value.equal av (Token.field b ~slot:b_slot ~fld:b_fld)
    | rel ->
      fun a ->
        let av = Token.field a ~slot:a_slot ~fld:a_fld in
        fun b -> Cond.eval_relation rel av (Token.field b ~slot:b_slot ~fld:b_fld))
  | B_same_wme { a_slot; b_slot } ->
    fun a ->
      let aw = Token.wme a a_slot in
      fun b -> Wme.equal aw (Token.wme b b_slot)

let btest_right (bt : btest) =
  match bt with
  | B_fields { a_slot; a_fld; rel; b_slot; b_fld } ->
    fun b ->
      let bv = Token.field b ~slot:b_slot ~fld:b_fld in
      fun a -> Cond.eval_relation rel (Token.field a ~slot:a_slot ~fld:a_fld) bv
  | B_same_wme { a_slot; b_slot } ->
    fun b ->
      let bw = Token.wme b b_slot in
      fun a -> Wme.equal (Token.wme a a_slot) bw

let btests_staged_left bi = chain (List.map btest_left (bi.b_eq @ bi.b_others))
let btests_staged_right bi = chain (List.map btest_right (bi.b_eq @ bi.b_others))

(* --- specialized khash extraction ------------------------------------- *)

(* Bit-identical to the [Network.khash_*] folds (same [mix], same
   order); an empty [eq] list folds the whole hash to the node's seed. *)

let khash_left_prog nid eq =
  let seed = id_seed nid in
  match eq with
  | [] -> fun _ -> seed
  | [ jt ] ->
    let s = jt.l_slot and f = jt.l_fld in
    fun tok -> mix seed (Token.field tok ~slot:s ~fld:f)
  | jts ->
    let pairs = Array.of_list (List.map (fun jt -> (jt.l_slot, jt.l_fld)) jts) in
    fun tok ->
      let acc = ref seed in
      Array.iter
        (fun (s, f) -> acc := mix !acc (Token.field tok ~slot:s ~fld:f))
        pairs;
      !acc

let khash_right_prog nid eq =
  let seed = id_seed nid in
  match eq with
  | [] -> fun _ -> seed
  | [ jt ] ->
    let f = jt.r_fld in
    fun w -> mix seed (Wme.field w f)
  | jts ->
    let flds = Array.of_list (List.map (fun jt -> jt.r_fld) jts) in
    fun w ->
      let acc = ref seed in
      Array.iter (fun f -> acc := mix !acc (Wme.field w f)) flds;
      !acc

let bhash_left_step (bt : btest) =
  match bt with
  | B_fields { a_slot; a_fld; rel = Cond.Eq; _ } ->
    fun acc tok -> mix acc (Token.field tok ~slot:a_slot ~fld:a_fld)
  | B_same_wme { a_slot; _ } ->
    fun acc tok -> (acc * 31) + (Token.wme tok a_slot).Wme.timetag land max_int
  | B_fields _ -> fun acc _ -> acc

let bhash_right_step (bt : btest) =
  match bt with
  | B_fields { b_slot; b_fld; rel = Cond.Eq; _ } ->
    fun acc tok -> mix acc (Token.field tok ~slot:b_slot ~fld:b_fld)
  | B_same_wme { b_slot; _ } ->
    fun acc tok -> (acc * 31) + (Token.wme tok b_slot).Wme.timetag land max_int
  | B_fields _ -> fun acc _ -> acc

let bkhash_prog nid steps =
  let seed = id_seed nid in
  match steps with
  | [] -> fun _ -> seed
  | [ s ] -> fun tok -> s seed tok
  | ss ->
    let arr = Array.of_list ss in
    fun tok ->
      let acc = ref seed in
      Array.iter (fun s -> acc := s !acc tok) arr;
      !acc

(* --- the program record ------------------------------------------------ *)

type entry = {
  run_left : Task.flag -> Token.t -> outcome;
  run_right : Task.flag -> Wme.t -> outcome;
  run_rtok : Task.flag -> Token.t -> outcome;
  e_closures : int;  (** closures this program compiled to *)
  e_words : int;     (** modeled heap words of those closures *)
}

(* Invalid-port handlers raise the same diagnostics as the interpreter's
   dispatch, so misrouted tasks fail identically on both paths. *)
let bad_left _ _ =
  invalid_arg "Runtime.exec: left token delivered to a right-only node"

let bad_right _ _ =
  invalid_arg "Runtime.exec: wme delivered to a token-only node"

let bad_rtok _ _ =
  invalid_arg "Runtime.exec: right token delivered to a non-binary node"

(* Modeled size of a compiled program (the Codesize report): closures
   counted as the compiler allocates them — one arity-specialized staged
   chain per test direction (capturing k spec records of 4 fields each,
   plus a 2-word closure header), one khash extractor per non-folded
   side, one handler per live port — handlers capture the memory, ids
   and sub-closures. *)
let test_chain_size k = if k = 0 then (0, 0) else (1, (5 * k) + 2)

let handler_words = 8
let khash_words = 4

let sizes kind =
  match kind with
  | Entry -> (1, handler_words)
  | Join ti | Neg ti ->
    let k = List.length ti.eq + List.length ti.others in
    let tc, tw = test_chain_size k in
    let kh = if ti.eq = [] then 0 else 1 in
    ( (2 * tc) + (2 * kh) + 2,
      (2 * tw) + (2 * kh * khash_words) + (2 * handler_words) )
  | Ncc _ -> (1, handler_words)
  | Ncc_partner _ -> (1, handler_words + 2)
  | Bjoin bi ->
    let k = List.length bi.b_eq + List.length bi.b_others in
    let tc, tw = test_chain_size k in
    let kh = if bi.b_eq = [] then 0 else 1 in
    ( (2 * tc) + (2 * kh) + 2,
      (2 * tw) + (2 * kh * khash_words) + (2 * handler_words) )
  | Pnode _ -> (1, handler_words)

(* --- per-kind compilers ------------------------------------------------ *)

let compile_entry net n =
  let mem = net.mem in
  let nid = n.id in
  let seed = id_seed nid in
  let run_right flag w =
    let kh = (seed + Wme.hash w) land max_int in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let transitioned =
      with_line mem ~line (fun () ->
          match flag with
          | Task.Add -> Memory.right_add mem ~node:nid ~khash:kh (Memory.R_wme w)
          | Task.Delete -> Memory.right_remove mem ~node:nid ~khash:kh (Memory.R_wme w))
    in
    if not transitioned then { no_children with accesses = [ acc ] }
    else
      { children = emit n flag (Token.singleton w); scanned = 0; matched = 1;
        insts = []; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left = bad_left; run_right; run_rtok = bad_rtok; e_closures; e_words }

let compile_join net n ti =
  let mem = net.mem in
  let nid = n.id in
  let lkh = khash_left_prog nid ti.eq in
  let rkh = khash_right_prog nid ti.eq in
  let ltest = jtests_staged_left ti in
  let rtest = jtests_staged_right ti in
  let run_left flag token =
    let kh = lkh token in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let matches = ref [] in
    let nm = ref 0 in
    let scanned = ref 0 in
    let live =
      with_line mem ~line (fun () ->
          let live =
            match flag with
            | Task.Add -> (
              match Memory.left_add mem ~node:nid ~khash:kh token ~count:0 with
              | `Activated _ -> true
              | `Inert -> false)
            | Task.Delete -> (
              match Memory.left_remove mem ~node:nid ~khash:kh token with
              | `Deactivated _ -> true
              | `Inert -> false)
          in
          if live then begin
            let test = ltest token in
            scanned :=
              Memory.right_iter mem ~node:nid ~khash:kh (fun payload ->
                  match payload with
                  | Memory.R_wme w ->
                    if test w then begin
                      matches := w :: !matches;
                      incr nm
                    end
                  | Memory.R_tok _ -> ())
          end;
          live)
    in
    if not live then { no_children with accesses = [ acc ] }
    else
      { children =
          emit_extended n flag ~extend:(fun w -> Token.extend token w) !matches !nm;
        scanned = !scanned; matched = !nm; insts = []; accesses = [ acc ] }
  in
  let run_right flag w =
    let kh = rkh w in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let matches = ref [] in
    let nm = ref 0 in
    let scanned = ref 0 in
    let live =
      with_line mem ~line (fun () ->
          let live =
            match flag with
            | Task.Add -> Memory.right_add mem ~node:nid ~khash:kh (Memory.R_wme w)
            | Task.Delete -> Memory.right_remove mem ~node:nid ~khash:kh (Memory.R_wme w)
          in
          if live then begin
            let test = rtest w in
            scanned :=
              Memory.left_iter mem ~node:nid ~khash:kh (fun e ->
                  if test e.Memory.l_token then begin
                    matches := e.Memory.l_token :: !matches;
                    incr nm
                  end)
          end;
          live)
    in
    if not live then { no_children with accesses = [ acc ] }
    else
      { children =
          emit_extended n flag ~extend:(fun tok -> Token.extend tok w) !matches !nm;
        scanned = !scanned; matched = !nm; insts = []; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left; run_right; run_rtok = bad_rtok; e_closures; e_words }

let compile_neg net n ti =
  let mem = net.mem in
  let nid = n.id in
  let lkh = khash_left_prog nid ti.eq in
  let rkh = khash_right_prog nid ti.eq in
  let ltest = jtests_staged_left ti in
  let rtest = jtests_staged_right ti in
  let run_left flag token =
    let kh = lkh token in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let pass = ref false in
    let scanned = ref 0 in
    with_line mem ~line (fun () ->
        match flag with
        | Task.Add ->
          let test = ltest token in
          let count = ref 0 in
          scanned :=
            Memory.right_iter mem ~node:nid ~khash:kh (fun payload ->
                match payload with
                | Memory.R_wme w -> if test w then incr count
                | Memory.R_tok _ -> ());
          (match Memory.left_add mem ~node:nid ~khash:kh token ~count:!count with
          | `Activated _ -> pass := !count = 0
          | `Inert -> ())
        | Task.Delete -> (
          match Memory.left_remove mem ~node:nid ~khash:kh token with
          | `Deactivated e -> pass := e.Memory.l_count = 0
          | `Inert -> ()));
    if !pass then
      { children = emit n flag token; scanned = !scanned; matched = 1;
        insts = []; accesses = [ acc ] }
    else { no_children with scanned = !scanned; accesses = [ acc ] }
  in
  let run_right flag w =
    let kh = rkh w in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let transitions = ref [] in
    let nt = ref 0 in
    let scanned = ref 0 in
    with_line mem ~line (fun () ->
        match flag with
        | Task.Add ->
          if Memory.right_add mem ~node:nid ~khash:kh (Memory.R_wme w) then begin
            let test = rtest w in
            scanned :=
              Memory.left_iter mem ~node:nid ~khash:kh (fun e ->
                  if test e.Memory.l_token then begin
                    e.Memory.l_count <- e.Memory.l_count + 1;
                    if e.Memory.l_count = 1 then begin
                      transitions := (Task.Delete, e.Memory.l_token) :: !transitions;
                      incr nt
                    end
                  end)
          end
        | Task.Delete ->
          if Memory.right_remove mem ~node:nid ~khash:kh (Memory.R_wme w) then begin
            let test = rtest w in
            scanned :=
              Memory.left_iter mem ~node:nid ~khash:kh (fun e ->
                  if test e.Memory.l_token then begin
                    e.Memory.l_count <- e.Memory.l_count - 1;
                    if e.Memory.l_count = 0 then begin
                      transitions := (Task.Add, e.Memory.l_token) :: !transitions;
                      incr nt
                    end
                  end)
          end);
    { children = emit_transitions n (List.rev !transitions); scanned = !scanned;
      matched = !nt; insts = []; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left; run_right; run_rtok = bad_rtok; e_closures; e_words }

let compile_ncc net n =
  let mem = net.mem in
  let nid = n.id in
  let seed = id_seed nid in
  let run_left flag token =
    let kh = (seed + Token.hash token) land max_int in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let pass = ref false in
    let scanned = ref 0 in
    with_line mem ~line (fun () ->
        match flag with
        | Task.Add ->
          let count = ref 0 in
          let tlen = Token.length token in
          scanned :=
            Memory.right_iter mem ~node:nid ~khash:kh (fun payload ->
                match payload with
                | Memory.R_tok sub ->
                  if Token.equal (Token.prefix sub tlen) token then incr count
                | Memory.R_wme _ -> ());
          (match Memory.left_add mem ~node:nid ~khash:kh token ~count:!count with
          | `Activated _ -> pass := !count = 0
          | `Inert -> ())
        | Task.Delete -> (
          match Memory.left_remove mem ~node:nid ~khash:kh token with
          | `Deactivated e -> pass := e.Memory.l_count = 0
          | `Inert -> ()));
    if !pass then
      { children = emit n flag token; scanned = !scanned; matched = 1;
        insts = []; accesses = [ acc ] }
    else { no_children with scanned = !scanned; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left; run_right = bad_right; run_rtok = bad_rtok; e_closures; e_words }

let compile_partner net n ~ncc ~prefix_len =
  let mem = net.mem in
  let ncc_node = Network.node net ncc in
  let seed = id_seed ncc in
  let run_rtok flag subtok =
    let prefix = Token.prefix subtok prefix_len in
    let kh = (seed + Token.hash prefix) land max_int in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:ncc ~line in
    let transitions = ref [] in
    let nt = ref 0 in
    let scanned = ref 0 in
    with_line mem ~line (fun () ->
        match flag with
        | Task.Add ->
          if Memory.right_add mem ~node:ncc ~khash:kh (Memory.R_tok subtok) then
            scanned :=
              Memory.left_iter mem ~node:ncc ~khash:kh (fun e ->
                  if Token.equal e.Memory.l_token prefix then begin
                    e.Memory.l_count <- e.Memory.l_count + 1;
                    if e.Memory.l_count = 1 then begin
                      transitions := (Task.Delete, e.Memory.l_token) :: !transitions;
                      incr nt
                    end
                  end)
        | Task.Delete ->
          if Memory.right_remove mem ~node:ncc ~khash:kh (Memory.R_tok subtok) then
            scanned :=
              Memory.left_iter mem ~node:ncc ~khash:kh (fun e ->
                  if Token.equal e.Memory.l_token prefix then begin
                    e.Memory.l_count <- e.Memory.l_count - 1;
                    if e.Memory.l_count = 0 then begin
                      transitions := (Task.Add, e.Memory.l_token) :: !transitions;
                      incr nt
                    end
                  end));
    { children = emit_transitions ncc_node (List.rev !transitions);
      scanned = !scanned; matched = !nt; insts = []; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left = bad_left; run_right = bad_right; run_rtok; e_closures; e_words }

let compile_bjoin net n bi =
  let mem = net.mem in
  let nid = n.id in
  let lkh = bkhash_prog nid (List.map bhash_left_step bi.b_eq) in
  let rkh = bkhash_prog nid (List.map bhash_right_step bi.b_eq) in
  let ltest = btests_staged_left bi in
  let rtest = btests_staged_right bi in
  let drop = bi.right_drop in
  let run_left flag token =
    let kh = lkh token in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let matches = ref [] in
    let nm = ref 0 in
    let scanned = ref 0 in
    let live =
      with_line mem ~line (fun () ->
          let live =
            match flag with
            | Task.Add -> (
              match Memory.left_add mem ~node:nid ~khash:kh token ~count:0 with
              | `Activated _ -> true
              | `Inert -> false)
            | Task.Delete -> (
              match Memory.left_remove mem ~node:nid ~khash:kh token with
              | `Deactivated _ -> true
              | `Inert -> false)
          in
          if live then begin
            let test = ltest token in
            scanned :=
              Memory.right_iter mem ~node:nid ~khash:kh (fun payload ->
                  match payload with
                  | Memory.R_tok rt ->
                    if test rt then begin
                      matches := rt :: !matches;
                      incr nm
                    end
                  | Memory.R_wme _ -> ())
          end;
          live)
    in
    if not live then { no_children with accesses = [ acc ] }
    else
      { children =
          emit_extended n flag !matches !nm
            ~extend:(fun rt -> Token.concat token (Token.suffix rt drop));
        scanned = !scanned; matched = !nm; insts = []; accesses = [ acc ] }
  in
  let run_rtok flag rtok =
    let kh = rkh rtok in
    let line = Memory.line_of mem ~khash:kh in
    let acc = access ~node:nid ~line in
    let matches = ref [] in
    let nm = ref 0 in
    let scanned = ref 0 in
    let live =
      with_line mem ~line (fun () ->
          let live =
            match flag with
            | Task.Add -> Memory.right_add mem ~node:nid ~khash:kh (Memory.R_tok rtok)
            | Task.Delete ->
              Memory.right_remove mem ~node:nid ~khash:kh (Memory.R_tok rtok)
          in
          if live then begin
            let test = rtest rtok in
            scanned :=
              Memory.left_iter mem ~node:nid ~khash:kh (fun e ->
                  if test e.Memory.l_token then begin
                    matches := e.Memory.l_token :: !matches;
                    incr nm
                  end)
          end;
          live)
    in
    if not live then { no_children with accesses = [ acc ] }
    else
      { children =
          emit_extended n flag !matches !nm
            ~extend:(fun lt -> Token.concat lt (Token.suffix rtok drop));
        scanned = !scanned; matched = !nm; insts = []; accesses = [ acc ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left; run_right = bad_right; run_rtok; e_closures; e_words }

let compile_pnode net n pi =
  let cs = net.cs in
  let name = pi.production.Production.name in
  let perm = pi.perm in
  let run_left flag token =
    let inst_token =
      match perm with None -> token | Some p -> Token.permute token p
    in
    let inst = { Conflict_set.prod = name; token = inst_token } in
    (match flag with
    | Task.Add -> Conflict_set.add cs inst
    | Task.Delete -> Conflict_set.remove cs inst);
    { no_children with matched = 1; insts = [ (flag, inst) ] }
  in
  let e_closures, e_words = sizes n.kind in
  { run_left; run_right = bad_right; run_rtok = bad_rtok; e_closures; e_words }

let compile net n =
  match n.kind with
  | Entry -> compile_entry net n
  | Join ti -> compile_join net n ti
  | Neg ti -> compile_neg net n ti
  | Ncc _ -> compile_ncc net n
  | Ncc_partner { ncc; prefix_len } -> compile_partner net n ~ncc ~prefix_len
  | Bjoin bi -> compile_bjoin net n bi
  | Pnode pi -> compile_pnode net n pi

(* --- the jumptable ----------------------------------------------------- *)

type table = {
  mutable slots : entry option array;
  mutable count : int;
}

type Network.jumptable += Table of table

let table net =
  match net.jumptable with Table t -> Some t | _ -> None

let get_table net =
  match net.jumptable with
  | Table t -> t
  | _ ->
    let t = { slots = Array.make 64 None; count = 0 } in
    net.jumptable <- Table t;
    t

(* Grow by doubling; the table record itself never changes identity, so
   a run-time addition extends the dispatch in place (§5.1) instead of
   rebuilding the network. *)
let ensure_slot t i =
  let cap = Array.length t.slots in
  if i >= cap then begin
    let ncap = ref (cap * 2) in
    while i >= !ncap do
      ncap := !ncap * 2
    done;
    let slots = Array.make !ncap None in
    Array.blit t.slots 0 slots 0 cap;
    t.slots <- slots
  end

let install net nid =
  let t = get_table net in
  ensure_slot t nid;
  (match t.slots.(nid) with Some _ -> () | None -> t.count <- t.count + 1);
  t.slots.(nid) <- Some (compile net (Network.node net nid))

let compile_new net ids =
  if net.config.compiled then List.iter (install net) ids

let compile_all net =
  if net.config.compiled then
    Network.iter_nodes net (fun n -> install net n.id)

let clear_node net nid =
  match net.jumptable with
  | Table t when nid < Array.length t.slots ->
    (match t.slots.(nid) with
    | Some _ ->
      t.slots.(nid) <- None;
      t.count <- t.count - 1
    | None -> ())
  | _ -> ()

let find net nid =
  match net.jumptable with
  | Table t -> if nid < Array.length t.slots then t.slots.(nid) else None
  | _ -> None

let run e task =
  match task with
  | Task.Left { flag; token; _ } -> e.run_left flag token
  | Task.Right { flag; wme; _ } -> e.run_right flag wme
  | Task.Rtok { flag; token; _ } -> e.run_rtok flag token

(* --- introspection ----------------------------------------------------- *)

let table_capacity t = Array.length t.slots
let table_count t = t.count

let compiled_count net =
  match net.jumptable with Table t -> t.count | _ -> 0

let node_entry net nid = find net nid

let node_closures net nid =
  match find net nid with Some e -> e.e_closures | None -> 0

let node_words net nid =
  match find net nid with Some e -> e.e_words | None -> 0
