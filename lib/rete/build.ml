open Psme_support
open Psme_ops5

type add_result = {
  meta : Network.pmeta;
  first_new_id : int;
  new_beta_nodes : int list;
}

exception Build_error of string

let err fmt = Format.kasprintf (fun m -> raise (Build_error m)) fmt

let invert = function
  | Cond.Lt -> Cond.Gt
  | Cond.Gt -> Cond.Lt
  | Cond.Le -> Cond.Ge
  | Cond.Ge -> Cond.Le
  | (Cond.Eq | Cond.Ne) as r -> r

(* --- per-CE analysis ----------------------------------------------- *)

type ce_analysis = {
  amem : int;
  ti : Network.two_input;
  global_binds : (string * (int * int)) list;  (* binding order *)
  ce_deferred : (string * Cond.relation * int) list;  (* var, wme-side rel, field *)
}

(* Split a CE into alpha tests and beta join tests against the current
   token layout. [lookup] resolves variables already bound in the layout;
   [defer] says a variable is bound elsewhere in the production but not
   visible on this side (bilinear groups); [slot_for_binds] is the slot
   this CE's wme will occupy if the CE is positive. *)
let analyze net ~lookup ~defer ~slot_for_binds ce =
  let atests = ref [] in
  let eq = ref [] in
  let others = ref [] in
  let locals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let globals = ref [] in
  let deferred = ref [] in
  let add_var_test field rel v =
    (* semantics: wme.field REL (value of v) *)
    match Hashtbl.find_opt locals v with
    | Some f0 ->
      if not (f0 = field && rel = Cond.Eq) then
        atests := Alpha.A_same (field, rel, f0) :: !atests
    | None -> (
      match lookup v with
      | Some (slot, fld) ->
        let jt = { Network.l_slot = slot; l_fld = fld; rel = invert rel; r_fld = field } in
        if jt.Network.rel = Cond.Eq then eq := jt :: !eq else others := jt :: !others
      | None ->
        if defer v then begin
          deferred := (v, rel, field) :: !deferred;
          Hashtbl.replace locals v field
        end
        else if rel = Cond.Eq then begin
          Hashtbl.replace locals v field;
          match slot_for_binds with
          | Some slot -> globals := (v, (slot, field)) :: !globals
          | None -> ()
        end
        else err "variable <%s> used in a predicate before being bound" v)
  in
  let rec handle field = function
    | Cond.T_const v -> atests := Alpha.A_const (field, v) :: !atests
    | Cond.T_disj vs -> atests := Alpha.A_disj (field, vs) :: !atests
    | Cond.T_rel (rel, Cond.Oconst c) -> atests := Alpha.A_rel (field, rel, c) :: !atests
    | Cond.T_var v -> add_var_test field Cond.Eq v
    | Cond.T_rel (rel, Cond.Ovar v) -> add_var_test field rel v
    | Cond.T_conj ts -> List.iter (handle field) ts
  in
  List.iter (fun (f, t) -> handle f t) ce.Cond.tests;
  (* Canonical orders make structurally equal CEs produce equal specs,
     which is what node sharing compares. *)
  let atests = List.sort_uniq Stdlib.compare !atests in
  let amem = Alpha.add_chain net.Network.alpha ~cls:ce.Cond.cls atests in
  {
    amem;
    ti =
      {
        Network.eq = List.sort Stdlib.compare !eq;
        others = List.sort Stdlib.compare !others;
      };
    global_binds = List.rev !globals;
    ce_deferred = List.rev !deferred;
  }

(* --- chain state ---------------------------------------------------- *)

type chain_state = {
  net : Network.t;
  binds : (string, int * int) Hashtbl.t;
  mutable bind_order_rev : (string * (int * int)) list;
  mutable cur : Network.node option;
  mutable len : int;
  mutable chain_rev : int list;
  created : int Vec.t;
  mutable defer : string -> bool;
  mutable deferred_rev : (string * Cond.relation * int * int) list;
      (* var, wme-side rel, slot, field *)
}

let fresh_state net created =
  {
    net;
    binds = Hashtbl.create 16;
    bind_order_rev = [];
    cur = None;
    len = 0;
    chain_rev = [];
    created;
    defer = (fun _ -> false);
    deferred_rev = [];
  }

let clone_state st =
  {
    st with
    binds = Hashtbl.copy st.binds;
    bind_order_rev = st.bind_order_rev;
    chain_rev = [];
  }

let share_on net = net.Network.config.Network.share

let note_created st n = Vec.push st.created n.Network.id
let note_chain st n = st.chain_rev <- n.Network.id :: st.chain_rev

let register_binds st binds =
  List.iter
    (fun (v, pos) ->
      if not (Hashtbl.mem st.binds v) then begin
        Hashtbl.replace st.binds v pos;
        st.bind_order_rev <- (v, pos) :: st.bind_order_rev
      end)
    binds

(* Find an existing successor of [parent] that is structurally the node
   we are about to create. *)
let find_shared_child net parent ~port pred =
  List.find_map
    (fun (id, p) ->
      if p = port then
        let n = Network.node net id in
        if pred n then Some n else None
      else None)
    (Network.successors parent)

let get_entry st amem =
  let net = st.net in
  let existing =
    if share_on net then
      List.find_map
        (fun id ->
          let n = Network.node net id in
          match n.Network.kind with Network.Entry -> Some n | _ -> None)
        (Alpha.successors net.Network.alpha ~amem)
    else None
  in
  match existing with
  | Some n -> n
  | None ->
    let n = Network.add_node net ~kind:Network.Entry ~parent:None ~alpha_src:(Some amem) in
    Alpha.add_successor net.Network.alpha ~amem ~node:n.Network.id;
    note_created st n;
    n

let spec_hash ~neg amem ti = Hashtbl.hash_param 64 256 (neg, amem, ti)

let get_two_input st ~neg amem ti =
  let net = st.net in
  let parent = match st.cur with Some c -> c | None -> err "two-input node with no parent" in
  let key = (parent.Network.id, spec_hash ~neg amem ti) in
  let spec_matches n =
    n.Network.alpha_src = Some amem
    &&
    match n.Network.kind, neg with
    | Network.Join ti', false -> ti' = ti
    | Network.Neg ti', true -> ti' = ti
    | _ -> false
  in
  (* The share index makes the share-point search O(1): candidates are
     verified structurally, so collisions and entries for excised nodes
     only cost a failed check. *)
  let existing =
    if share_on net then
      match Hashtbl.find_opt net.Network.share_index key with
      | None -> None
      | Some ids ->
        List.find_map
          (fun id ->
            match Hashtbl.find_opt net.Network.beta id with
            | Some n when spec_matches n -> Some n
            | _ -> None)
          ids
    else None
  in
  match existing with
  | Some n -> n
  | None ->
    let kind = if neg then Network.Neg ti else Network.Join ti in
    let n = Network.add_node net ~kind ~parent:(Some parent.Network.id) ~alpha_src:(Some amem) in
    Network.add_successor net ~of_:parent.Network.id ~node:n.Network.id ~port:Network.P_left;
    Alpha.add_successor net.Network.alpha ~amem ~node:n.Network.id;
    let prev = Option.value ~default:[] (Hashtbl.find_opt net.Network.share_index key) in
    Hashtbl.replace net.Network.share_index key (n.Network.id :: prev);
    note_created st n;
    n

let add_positive_ce st ce =
  let a =
    analyze st.net
      ~lookup:(Hashtbl.find_opt st.binds)
      ~defer:st.defer
      ~slot_for_binds:(Some st.len) ce
  in
  let n =
    match st.cur with
    | None ->
      if a.ti.Network.eq <> [] || a.ti.Network.others <> [] then
        err "first condition cannot reference earlier bindings";
      get_entry st a.amem
    | Some _ -> get_two_input st ~neg:false a.amem a.ti
  in
  register_binds st a.global_binds;
  st.deferred_rev <-
    List.fold_left
      (fun acc (v, rel, field) -> (v, rel, st.len, field) :: acc)
      st.deferred_rev a.ce_deferred;
  st.len <- st.len + 1;
  st.cur <- Some n;
  note_chain st n

let add_negative_ce st ce =
  let a =
    analyze st.net
      ~lookup:(Hashtbl.find_opt st.binds)
      ~defer:(fun _ -> false)
      ~slot_for_binds:None ce
  in
  if a.ce_deferred <> [] then err "negated CE references a variable bound in another group";
  let n = get_two_input st ~neg:true a.amem a.ti in
  st.cur <- Some n;
  note_chain st n

let rec add_cond st = function
  | Cond.Pos ce -> add_positive_ce st ce
  | Cond.Neg ce -> add_negative_ce st ce
  | Cond.Ncc group -> add_ncc st group

and add_ncc st group =
  let net = st.net in
  let parent = match st.cur with Some c -> c | None -> err "NCC cannot open a production" in
  (* Build the subnetwork from the current node; its bindings are local
     to the group. *)
  let sub = clone_state st in
  List.iter (add_cond sub) group;
  let sub_end = match sub.cur with Some c -> c | None -> assert false in
  st.chain_rev <- List.rev_append (List.rev sub.chain_rev) st.chain_rev;
  let ncc =
    Network.add_node net ~kind:(Network.Ncc { prefix_len = st.len })
      ~parent:(Some parent.Network.id) ~alpha_src:None
  in
  Network.add_successor net ~of_:parent.Network.id ~node:ncc.Network.id ~port:Network.P_left;
  note_created st ncc;
  let partner =
    Network.add_node net
      ~kind:(Network.Ncc_partner { ncc = ncc.Network.id; prefix_len = st.len })
      ~parent:(Some sub_end.Network.id) ~alpha_src:None
  in
  Network.add_successor net ~of_:sub_end.Network.id ~node:partner.Network.id
    ~port:Network.P_right;
  note_created st partner;
  st.cur <- Some ncc;
  note_chain st ncc;
  note_chain st partner

(* --- P-node --------------------------------------------------------- *)

let attach_pnode st prod ~perm ~bindings =
  let net = st.net in
  let parent = match st.cur with Some c -> c | None -> assert false in
  let pinfo = { Network.production = prod; perm; bindings } in
  let n =
    Network.add_node net ~kind:(Network.Pnode pinfo) ~parent:(Some parent.Network.id)
      ~alpha_src:None
  in
  Network.add_successor net ~of_:parent.Network.id ~node:n.Network.id ~port:Network.P_left;
  note_created st n;
  note_chain st n;
  n

(* --- linear build ---------------------------------------------------- *)

let build_linear net prod created =
  let st = fresh_state net created in
  List.iter (add_cond st) prod.Production.lhs;
  let bindings = List.rev st.bind_order_rev in
  let pnode = attach_pnode st prod ~perm:None ~bindings in
  (pnode, List.rev st.chain_rev)

(* --- reordered linear build ------------------------------------------- *)

(* Linear build with the positive CEs placed in [order] (a permutation
   from {!Jcost.suggest_order}, which respects predicate-binding
   dependencies) and the negations after all positives — sound because
   the LHS is a declarative conjunction and every variable a negation
   consults is bound by some positive CE. Slots follow placement order;
   as in the bilinear build, the P-node carries the permutation back to
   CE order and the bindings are remapped to CE coordinates, so conflict
   sets, RHS evaluation and chunking see exactly the written production. *)
let build_reordered net prod created order =
  let st = fresh_state net created in
  let positives = Array.of_list (Cond.positives prod.Production.lhs) in
  Array.iter (fun ce_idx -> add_positive_ce st positives.(ce_idx)) order;
  List.iter
    (function
      | Cond.Neg ce -> add_negative_ce st ce
      | Cond.Pos _ -> ()
      | Cond.Ncc _ -> err "reordered build cannot place an NCC group")
    prod.Production.lhs;
  let layout = order in
  let perm = Array.make (Array.length layout) 0 in
  Array.iteri (fun slot ce_idx -> perm.(ce_idx) <- slot) layout;
  let bindings =
    List.rev_map
      (fun (v, (slot, fld)) -> (v, (layout.(slot), fld)))
      st.bind_order_rev
  in
  let pnode = attach_pnode st prod ~perm:(Some perm) ~bindings in
  (pnode, List.rev st.chain_rev)

(* --- bilinear build --------------------------------------------------- *)

(* First positive CE (by position among positives) in which each variable
   gets its binding occurrence under linear compilation. *)
let first_binding_positions positives =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun idx ce ->
      let rec scan_test field = function
        | Cond.T_var v -> if not (Hashtbl.mem tbl v) then Hashtbl.replace tbl v idx
        | Cond.T_conj ts -> List.iter (scan_test field) ts
        | Cond.T_const _ | Cond.T_rel _ | Cond.T_disj _ -> ()
      in
      List.iter (fun (f, t) -> scan_test f t) ce.Cond.tests)
    positives;
  tbl

type side = {
  s_node : Network.node;
  s_layout : int array;  (* slot -> positive-CE index *)
  s_binds : (string, int * int) Hashtbl.t;
  s_bind_order_rev : (string * (int * int)) list;
  s_deferred : (string * Cond.relation * int * int) list;
}

let rec chunks k = function
  | [] -> []
  | l ->
    let rec take n acc = function
      | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let c, rest = take k [] l in
    c :: chunks k rest

let combine_sides st_created net (a : side) (b : side) ~ctx_len =
  let b_eq = ref [] in
  let b_others = ref [] in
  for j = 0 to ctx_len - 1 do
    b_eq := Network.B_same_wme { a_slot = j; b_slot = j } :: !b_eq
  done;
  List.iter
    (fun (v, rel, slot_b, fld_b) ->
      match Hashtbl.find_opt a.s_binds v with
      | Some (slot_a, fld_a) ->
        let bt =
          Network.B_fields
            { a_slot = slot_a; a_fld = fld_a; rel = invert rel; b_slot = slot_b; b_fld = fld_b }
        in
        (* semantics: b-side field REL a-side value; B_fields evaluates
           a REL' b, hence the inversion. *)
        if invert rel = Cond.Eq then b_eq := bt :: !b_eq else b_others := bt :: !b_others
      | None -> err "variable <%s> of a bilinear group is never bound" v)
    b.s_deferred;
  let bi =
    {
      Network.b_eq = List.sort Stdlib.compare !b_eq;
      b_others = List.sort Stdlib.compare !b_others;
      right_drop = ctx_len;
    }
  in
  let spec_matches n =
    match n.Network.kind with
    | Network.Bjoin bi' ->
      bi' = bi
      && List.exists
           (fun (id, p) -> id = n.Network.id && p = Network.P_right)
           (Network.successors b.s_node)
    | _ -> false
  in
  let node =
    let existing =
      if share_on net then
        find_shared_child net a.s_node ~port:Network.P_left spec_matches
      else None
    in
    match existing with
    | Some n -> n
    | None ->
      let n =
        Network.add_node net ~kind:(Network.Bjoin bi)
          ~parent:(Some a.s_node.Network.id) ~alpha_src:None
      in
      Network.add_successor net ~of_:a.s_node.Network.id ~node:n.Network.id
        ~port:Network.P_left;
      Network.add_successor net ~of_:b.s_node.Network.id ~node:n.Network.id
        ~port:Network.P_right;
      Vec.push st_created n.Network.id;
      n
  in
  let a_len = Array.length a.s_layout in
  let layout =
    Array.append a.s_layout (Array.sub b.s_layout ctx_len (Array.length b.s_layout - ctx_len))
  in
  let binds = Hashtbl.copy a.s_binds in
  let order = ref a.s_bind_order_rev in
  List.iter
    (fun (v, (slot, fld)) ->
      if not (Hashtbl.mem binds v) && slot >= ctx_len then begin
        let pos = (slot - ctx_len + a_len, fld) in
        Hashtbl.replace binds v pos;
        order := (v, pos) :: !order
      end)
    (List.rev b.s_bind_order_rev);
  {
    s_node = node;
    s_layout = layout;
    s_binds = binds;
    s_bind_order_rev = !order;
    s_deferred = a.s_deferred;
  }

let build_bilinear net prod created =
  let cfg = net.Network.config in
  let positives = Cond.positives prod.Production.lhs in
  let n_pos = List.length positives in
  let ctx_len = min cfg.Network.bilinear_ctx n_pos in
  let first_bind = first_binding_positions positives in
  let chain_acc = ref [] in
  (* context prefix *)
  let st = fresh_state net created in
  List.iteri
    (fun i ce -> if i < ctx_len then add_positive_ce st ce)
    positives;
  chain_acc := st.chain_rev;
  let ctx_node = match st.cur with Some c -> c | None -> err "empty context" in
  let ctx_side =
    {
      s_node = ctx_node;
      s_layout = Array.init ctx_len (fun i -> i);
      s_binds = Hashtbl.copy st.binds;
      s_bind_order_rev = st.bind_order_rev;
      s_deferred = [];
    }
  in
  let rest = List.filteri (fun i _ -> i >= ctx_len) positives in
  let rest_idx = List.mapi (fun i ce -> (ctx_len + i, ce)) rest in
  let groups = chunks cfg.Network.bilinear_group rest_idx in
  let sides =
    List.map
      (fun group ->
        let gst = fresh_state net created in
        Hashtbl.iter (fun v p -> Hashtbl.replace gst.binds v p) ctx_side.s_binds;
        gst.bind_order_rev <- ctx_side.s_bind_order_rev;
        gst.cur <- Some ctx_node;
        gst.len <- ctx_len;
        let layout = ref (Array.init ctx_len (fun i -> i)) in
        List.iter
          (fun (ce_idx, ce) ->
            gst.defer <-
              (fun v ->
                match Hashtbl.find_opt first_bind v with
                | Some j -> j < ce_idx
                | None -> false);
            add_positive_ce gst ce;
            layout := Array.append !layout [| ce_idx |])
          group;
        chain_acc := List.rev_append (List.rev gst.chain_rev) !chain_acc;
        {
          s_node = (match gst.cur with Some c -> c | None -> assert false);
          s_layout = !layout;
          s_binds = gst.binds;
          s_bind_order_rev = gst.bind_order_rev;
          s_deferred = List.rev gst.deferred_rev;
        })
      groups
  in
  let combined =
    match sides with
    | [] -> ctx_side
    | first :: rest ->
      List.fold_left
        (fun acc side ->
          let r = combine_sides created net acc side ~ctx_len in
          chain_acc := r.s_node.Network.id :: !chain_acc;
          r)
        first rest
  in
  (* negative conditions and NCCs, applied to the combined stream *)
  let nst = fresh_state net created in
  Hashtbl.iter (fun v p -> Hashtbl.replace nst.binds v p) combined.s_binds;
  nst.bind_order_rev <- combined.s_bind_order_rev;
  nst.cur <- Some combined.s_node;
  nst.len <- Array.length combined.s_layout;
  List.iter
    (fun c ->
      match c with
      | Cond.Pos _ -> ()
      | Cond.Neg _ | Cond.Ncc _ -> add_cond nst c)
    prod.Production.lhs;
  chain_acc := List.rev_append (List.rev nst.chain_rev) !chain_acc;
  (* P-node: permute slots back to CE order. *)
  let layout = combined.s_layout in
  let perm = Array.make (Array.length layout) 0 in
  Array.iteri (fun slot ce_idx -> perm.(ce_idx) <- slot) layout;
  let identity = Array.for_all2 (fun a b -> a = b) perm (Array.init (Array.length perm) Fun.id) in
  let bindings =
    List.rev_map
      (fun (v, (slot, fld)) -> (v, (layout.(slot), fld)))
      nst.bind_order_rev
  in
  let pnode =
    attach_pnode nst prod ~perm:(if identity then None else Some perm) ~bindings
  in
  chain_acc := pnode.Network.id :: !chain_acc;
  (pnode, List.rev !chain_acc)

(* --- entry points ----------------------------------------------------- *)

let add_production net prod =
  let name = prod.Production.name in
  if Hashtbl.mem net.Network.prods name then
    invalid_arg
      (Printf.sprintf "Build.add_production: %s already present" (Sym.name name));
  let first_new_id = Network.next_id net in
  let created = Vec.create () in
  let cfg = net.Network.config in
  let use_bilinear =
    cfg.Network.bilinear
    && List.length (Cond.positives prod.Production.lhs) >= cfg.Network.bilinear_min_ces
  in
  let reorder =
    if use_bilinear || not cfg.Network.reorder_joins then None
    else Jcost.suggest_order prod
  in
  let pnode, chain =
    if use_bilinear then build_bilinear net prod created
    else
      match reorder with
      | Some order -> build_reordered net prod created order
      | None -> build_linear net prod created
  in
  let meta =
    {
      Network.pnode = pnode.Network.id;
      meta_production = prod;
      chain;
      created_nodes = Vec.to_list created;
    }
  in
  Hashtbl.replace net.Network.prods name meta;
  net.Network.prod_order_rev <- name :: net.Network.prod_order_rev;
  (* Compile node programs for the newly created nodes and splice them
     into the jumptable (§5.1) — run-time additions (chunks) execute
     compiled without rebuilding anything. Shared nodes keep their
     existing programs; the programs read the successor arrays through
     the node records, so fan-out patches are picked up for free. *)
  Program.compile_new net (Vec.to_list created);
  { meta; first_new_id; new_beta_nodes = Vec.to_list created }

let add_all net prods = List.map (add_production net) prods

let excise_production net name =
  match Hashtbl.find_opt net.Network.prods name with
  | None -> invalid_arg "Build.excise_production: unknown production"
  | Some pm ->
    Hashtbl.remove net.Network.prods name;
    net.Network.prod_order_rev <-
      List.filter (fun s -> not (Sym.equal s name)) net.Network.prod_order_rev;
    let find_partner ncc_id =
      Hashtbl.fold
        (fun _ n acc ->
          match n.Network.kind with
          | Network.Ncc_partner { ncc; _ } when ncc = ncc_id -> Some n
          | _ -> acc)
        net.Network.beta None
    in
    let rec maybe_remove id =
      match Hashtbl.find_opt net.Network.beta id with
      | None -> ()
      | Some n ->
        if Network.successors n = [] then begin
          (* An NCC node also owns its partner and through it the
             subnetwork; remove the partner first so the subnetwork can
             unwind. *)
          (match n.Network.kind with
          | Network.Ncc _ -> (
            match find_partner n.Network.id with
            | Some partner ->
              Hashtbl.remove net.Network.beta partner.Network.id;
              Program.clear_node net partner.Network.id;
              Memory.drop_node net.Network.mem ~node:partner.Network.id;
              (match partner.Network.parent with
              | Some p ->
                Network.remove_successor net ~of_:p ~node:partner.Network.id;
                maybe_remove p
              | None -> ())
            | None -> ())
          | _ -> ());
          Hashtbl.remove net.Network.beta id;
          Program.clear_node net id;
          Memory.drop_node net.Network.mem ~node:id;
          (match n.Network.alpha_src with
          | Some _ -> Alpha.remove_successor net.Network.alpha ~node:id
          | None -> ());
          (match n.Network.parent with
          | Some p ->
            Network.remove_successor net ~of_:p ~node:id;
            maybe_remove p
          | None -> ())
        end
    in
    maybe_remove pm.Network.pnode;
    (* Drop remaining conflict-set entries of this production. *)
    List.iter
      (fun inst ->
        if Sym.equal inst.Conflict_set.prod name then
          Conflict_set.remove net.Network.cs inst)
      (Conflict_set.to_list net.Network.cs)
