open Psme_support
open Psme_ops5

type jtest = {
  l_slot : int;
  l_fld : int;
  rel : Cond.relation;
  r_fld : int;
}

type btest =
  | B_fields of { a_slot : int; a_fld : int; rel : Cond.relation; b_slot : int; b_fld : int }
  | B_same_wme of { a_slot : int; b_slot : int }

type two_input = {
  eq : jtest list;
  others : jtest list;
}

type binary = {
  b_eq : btest list;
  b_others : btest list;
  right_drop : int;
}

type pinfo = {
  production : Production.t;
  perm : int array option;
  bindings : (string * (int * int)) list;
}

type kind =
  | Entry
  | Join of two_input
  | Neg of two_input
  | Ncc of { prefix_len : int }
  | Ncc_partner of { ncc : int; prefix_len : int }
  | Bjoin of binary
  | Pnode of pinfo

type port = P_left | P_right

type node = {
  id : int;
  kind : kind;
  parent : int option;
  alpha_src : int option;
  (* successor fan-out in registration order, kept as an immutable array
     that is replaced wholesale when the wiring changes (build/update
     time only): activation emit indexes it without allocating, and a
     compiled node program can keep reading the field after a run-time
     addition patches the fan-out (§5.1). *)
  mutable succs : (int * port) array;
}

type config = {
  share : bool;
  bilinear : bool;
  bilinear_ctx : int;
  bilinear_group : int;
  bilinear_min_ces : int;
  lines : int;
  compiled : bool;
  reorder_joins : bool;
}

let default_config =
  { share = true; bilinear = false; bilinear_ctx = 3; bilinear_group = 3;
    bilinear_min_ces = 8; lines = 512; compiled = true; reorder_joins = false }

(* The jumptable of compiled node programs. The concrete constructor is
   added by [Program] (which sits above this module); keeping the type
   extensible here lets the network carry its dispatch table without a
   dependency cycle. *)
type jumptable = ..
type jumptable += Jt_none

type pmeta = {
  pnode : int;
  meta_production : Production.t;
  chain : int list;
  created_nodes : int list;
}

type t = {
  schema : Schema.t;
  config : config;
  counter : int ref;
  beta : (int, node) Hashtbl.t;
  alpha : Alpha.t;
  mem : Memory.t;
  cs : Conflict_set.t;
  prods : (Sym.t, pmeta) Hashtbl.t;
  mutable prod_order_rev : Sym.t list;
  share_index : (int * int, int list) Hashtbl.t;
  mutable jumptable : jumptable;
}

let create ?(config = default_config) schema =
  (* One monotone counter serves alpha and beta nodes alike (§5.2). *)
  let counter = ref 0 in
  let alloc () =
    let i = !counter in
    incr counter;
    i
  in
  {
    schema;
    config;
    counter;
    beta = Hashtbl.create 256;
    alpha = Alpha.create ~alloc_id:alloc;
    mem = Memory.create ~lines:config.lines ();
    cs = Conflict_set.create ();
    prods = Hashtbl.create 64;
    prod_order_rev = [];
    share_index = Hashtbl.create 256;
    jumptable = Jt_none;
  }

let next_id t = !(t.counter)

let alloc_id t =
  let i = !(t.counter) in
  incr t.counter;
  i

let add_node t ~kind ~parent ~alpha_src =
  let n = { id = alloc_id t; kind; parent; alpha_src; succs = [||] } in
  Hashtbl.replace t.beta n.id n;
  n

let node t id = Hashtbl.find t.beta id
let node_opt t id = Hashtbl.find_opt t.beta id

let iter_nodes t f = Hashtbl.iter (fun _ n -> f n) t.beta

let fold_nodes t ~init ~f = Hashtbl.fold (fun _ n acc -> f acc n) t.beta init

let successor_array n = n.succs

let successors n = Array.to_list n.succs

let add_successor t ~of_ ~node:nid ~port =
  let p = node t of_ in
  if not (Array.exists (fun (i, _) -> i = nid) p.succs) then
    p.succs <- Array.append p.succs [| (nid, port) |]

let remove_successor t ~of_ ~node:nid =
  let p = node t of_ in
  if Array.exists (fun (i, _) -> i = nid) p.succs then
    p.succs <-
      Array.of_list (List.filter (fun (i, _) -> i <> nid) (Array.to_list p.succs))

let productions t =
  List.rev_map (fun s -> Hashtbl.find t.prods s) t.prod_order_rev

let find_production t name = Hashtbl.find_opt t.prods name

let beta_node_count t = Hashtbl.length t.beta

let two_input_node_count t =
  Hashtbl.fold
    (fun _ n acc ->
      match n.kind with
      | Join _ | Neg _ | Ncc _ | Bjoin _ -> acc + 1
      | Entry | Ncc_partner _ | Pnode _ -> acc)
    t.beta 0

(* --- hash keys ----------------------------------------------------- *)

let mix acc v = (acc * 31) + Value.hash v land max_int

let id_seed id = (id * 0x9e3779b1) land max_int

let khash_right n w =
  match n.kind with
  | Join ti | Neg ti ->
    List.fold_left (fun acc jt -> mix acc (Wme.field w jt.r_fld)) (id_seed n.id) ti.eq
  | Entry | Ncc _ | Ncc_partner _ | Bjoin _ | Pnode _ ->
    invalid_arg "khash_right: not a wme-joining node"

let khash_left n tok =
  match n.kind with
  | Join ti | Neg ti ->
    List.fold_left
      (fun acc jt -> mix acc (Token.field tok ~slot:jt.l_slot ~fld:jt.l_fld))
      (id_seed n.id) ti.eq
  | Entry | Ncc _ | Ncc_partner _ | Bjoin _ | Pnode _ ->
    invalid_arg "khash_left: not a wme-joining node"

let khash_entry n w = (id_seed n.id + Wme.hash w) land max_int

let khash_ncc_left n tok =
  match n.kind with
  | Ncc _ -> (id_seed n.id + Token.hash tok) land max_int
  | _ -> invalid_arg "khash_ncc_left"

let khash_ncc_right n subtok =
  match n.kind with
  | Ncc_partner { ncc; prefix_len } ->
    (id_seed ncc + Token.hash (Token.prefix subtok prefix_len)) land max_int
  | _ -> invalid_arg "khash_ncc_right"

let btest_left_hash acc tok = function
  | B_fields { a_slot; a_fld; rel = Cond.Eq; _ } ->
    mix acc (Token.field tok ~slot:a_slot ~fld:a_fld)
  | B_same_wme { a_slot; _ } ->
    (acc * 31) + (Token.wme tok a_slot).Wme.timetag land max_int
  | B_fields _ -> acc

let btest_right_hash acc tok = function
  | B_fields { b_slot; b_fld; rel = Cond.Eq; _ } ->
    mix acc (Token.field tok ~slot:b_slot ~fld:b_fld)
  | B_same_wme { b_slot; _ } ->
    (acc * 31) + (Token.wme tok b_slot).Wme.timetag land max_int
  | B_fields _ -> acc

let khash_bjoin_left n tok =
  match n.kind with
  | Bjoin b -> List.fold_left (fun acc bt -> btest_left_hash acc tok bt) (id_seed n.id) b.b_eq
  | _ -> invalid_arg "khash_bjoin_left"

let khash_bjoin_right n tok =
  match n.kind with
  | Bjoin b -> List.fold_left (fun acc bt -> btest_right_hash acc tok bt) (id_seed n.id) b.b_eq
  | _ -> invalid_arg "khash_bjoin_right"

(* --- test evaluation ---------------------------------------------- *)

let jtest_holds tok w jt =
  Cond.eval_relation jt.rel
    (Token.field tok ~slot:jt.l_slot ~fld:jt.l_fld)
    (Wme.field w jt.r_fld)

let jtests_hold ti tok w =
  List.for_all (jtest_holds tok w) ti.eq && List.for_all (jtest_holds tok w) ti.others

let btest_holds a b = function
  | B_fields { a_slot; a_fld; rel; b_slot; b_fld } ->
    Cond.eval_relation rel
      (Token.field a ~slot:a_slot ~fld:a_fld)
      (Token.field b ~slot:b_slot ~fld:b_fld)
  | B_same_wme { a_slot; b_slot } -> Wme.equal (Token.wme a a_slot) (Token.wme b b_slot)

let btests_hold bi a b =
  List.for_all (btest_holds a b) bi.b_eq && List.for_all (btest_holds a b) bi.b_others

(* --- instantiation bindings ---------------------------------------- *)

let pinfo_of t name =
  match Hashtbl.find_opt t.prods name with
  | None -> raise Not_found
  | Some pm -> (
    match (node t pm.pnode).kind with
    | Pnode pi -> pi
    | _ -> assert false)

let binding_value pi tok var =
  let slot, fld = List.assoc var pi.bindings in
  Token.field tok ~slot ~fld

let bindings_of t name tok =
  let pi = pinfo_of t name in
  List.map (fun (v, (slot, fld)) -> (v, Token.field tok ~slot ~fld)) pi.bindings
