(** Executing node activations.

    [exec] performs one task against the shared match state and returns
    the successor tasks plus the work accounting the simulator's cost
    model charges for. Inserting into a memory and probing the opposite
    memory happen under the entry's line lock, so concurrent executions
    of joinable activations produce each join result exactly once (see
    {!Memory}). Thread-safe: any number of match processes may call
    [exec] concurrently.

    Two execution paths produce bit-identical outcomes: the closure
    compiler ({!Program}, the PSM-E machine-code analogue, selected by
    [Network.config.compiled]) and the interpreter below, retained as
    the differential oracle. *)

open Psme_ops5

type access = Program.access = {
  acc_node : int;   (** beta node owning the memory entries touched *)
  acc_line : int;   (** hash line (lock granule, §6.1) *)
  acc_write : bool; (** every exec section mutates (insert-then-probe) *)
  acc_locked : bool;  (** false only under {!set_lock_elision} *)
}
(** One critical section performed against the global hashed memories.
    Engines forward these to the trace as [Mem_access] events; the race
    detector replays them against the happens-before order. *)

type outcome = Program.outcome = {
  children : Task.t array;
      (** successor tasks, in emission order (tokens in production
          order, successors in registration order) *)
  scanned : int;  (** opposite-memory entries scanned under the lock *)
  matched : int;  (** successful pairings (tokens emitted downstream) *)
  insts : (Task.flag * Conflict_set.inst) list;
      (** conflict-set transitions performed (P-node activations only) —
          engines running asynchronous elaboration fire these without
          waiting for quiescence (paper §7) *)
  accesses : access list;
      (** line-lock sections this task performed (empty for P-nodes) *)
}

val exec : Network.t -> Task.t -> outcome
(** Dispatches through the compiled node program when one is installed
    (the §5.1 jumptable), falling back to the interpreter otherwise. *)

val exec_interpreted : Network.t -> Task.t -> outcome
(** Force the interpreter path regardless of installed programs — the
    oracle side of differential tests. *)

val set_lock_elision : bool -> unit
(** Fault injection for the race detector's self-test: when enabled, exec
    critical sections skip the line lock and report their accesses with
    [acc_locked = false]. Process-wide; reset to [false] after use.
    Shared with the compiled path. *)

val lock_elision : unit -> bool

val seed_wme_change :
  ?min_node_id:int -> Network.t -> Task.flag -> Wme.t -> Task.t list * int
(** Run the alpha (constant-test) network for one wme change and return
    the right activations it produces, plus the number of constant-test
    node activations performed. [min_node_id] filters deliveries to
    nodes with at least that ID — the §5.2 update filter. *)

val replay_parent :
  Network.t -> parent:Network.node -> child:int -> port:Network.port -> Task.t list
(** "Specially execute" an existing node: recompute its stored output
    tokens from its memory state and address them to exactly one (new)
    successor — the last-shared-node step of the §5.2 update. *)

val excess_cross_products : Network.t -> int
(** Diagnostic: total left-store entries across Bjoin nodes (state kept
    by bilinear networks beyond what a linear network stores). *)
