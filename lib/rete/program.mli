(** Closure-compiled node programs — the PSM-E "machine code" analogue.

    PSM-E compiles every Rete node to native code and splices newly
    learned productions into a jumptable at run time (PAPER §4, §5.1).
    The single-core OCaml analogue implemented here compiles each node's
    test sequence ONCE — when the node is built, including nodes added
    by chunking mid-run — into specialized closures:

    - the [jtest]/[btest] chain is fused into one staged predicate that
      extracts the activation-fixed operand's fields once per activation
      and then runs monomorphically over every scanned candidate;
    - khash extraction is specialized to the node's slot/field list and
      constant-folds to the node's seed when the key is empty;
    - successor fan-out reads the node's precomputed array, so emit
      allocates only the task records.

    Compiled programs live in a dispatch table indexed by node ID (the
    jumptable) carried in [Network.t]. Handlers are bit-identical to the
    [Runtime] interpreter in every measured respect — scanned counts,
    accesses, children order, conflict-set transitions — so the
    interpreter remains the differential oracle. *)

(** {2 Outcome of one activation}

    These are the canonical definitions; [Runtime] re-exports them. *)

type access = {
  acc_node : int;
  acc_line : int;
  acc_write : bool;
  acc_locked : bool;
}

type outcome = {
  children : Task.t array;
  scanned : int;
  matched : int;
  insts : (Task.flag * Conflict_set.inst) list;
  accesses : access list;
}

val no_children : outcome

val set_lock_elision : bool -> unit
(** Fault injection for the race detector's self-test (shared by the
    compiled and interpreted paths). *)

val lock_elision : unit -> bool

val with_line : Memory.t -> line:int -> (unit -> 'a) -> 'a
val access : node:int -> line:int -> access

(** {2 Fan-out helpers}

    Allocation-free except for the result array; also used by the
    interpreter path in [Runtime]. Order: tokens in list order, each
    fanned to all successors in registration order. *)

val emit : Network.node -> Task.flag -> Token.t -> Task.t array
val emit_all : Network.node -> Task.flag -> Token.t list -> Task.t array
val emit_transitions :
  Network.node -> (Task.flag * Token.t) list -> Task.t array

(** {2 Compiled programs and the jumptable} *)

type entry
(** One node's compiled program: a handler per live port plus its
    modeled size. *)

type table
(** The dispatch array of compiled programs, indexed by node ID. Grows
    in place (by doubling) as run-time additions append nodes — the
    table record's identity never changes, which is what "splice into
    the jumptable" (§5.1) means here. *)

type Network.jumptable += Table of table

val run : entry -> Task.t -> outcome
val find : Network.t -> int -> entry option
(** [None] for never-compiled or excised nodes; callers fall back to
    the interpreter. *)

val compile_new : Network.t -> int list -> unit
(** Compile and install programs for newly created nodes. No-op when
    [config.compiled] is false, so the builder calls unconditionally. *)

val compile_all : Network.t -> unit
val clear_node : Network.t -> int -> unit
(** Drop an excised node's program so queued tasks fall back to the
    interpreter's excised-node handling. *)

(** {2 Introspection (Codesize report, tests)} *)

val table : Network.t -> table option
val table_capacity : table -> int
val table_count : table -> int
val compiled_count : Network.t -> int

val node_entry : Network.t -> int -> entry option
val node_closures : Network.t -> int -> int
(** Number of closures the node's program compiled to (0 if not
    compiled). *)

val node_words : Network.t -> int -> int
(** Modeled heap words of those closures — the compiled-code analogue of
    {!Codesize}'s per-node byte model. *)
