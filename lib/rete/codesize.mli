(** Model of generated machine-code size (Table 5-1).

    PSM-E compiled each node to open-coded NS32032 machine code; the
    paper reports ~219–304 bytes per two-input node (inline-expanded)
    and notes closed-coding would shrink that to ~15–20 bytes at some
    speed cost. Our "code generation" targets heap data structures, so
    we report a byte model derived from the node structure: a fixed
    open-coded body per node kind plus per-test and per-successor
    instruction sequences. The model's constants are stated here so the
    Table 5-1 reproduction is an honest function of the networks we
    actually build, not an echo of the paper's numbers. *)

val bytes_of_node : Network.t -> Network.node -> int

val open_coded : bool ref
(** When set to [false], uses the paper's closed-coded estimate
    (procedure calls instead of inline expansion). Default [true]. *)

val bytes_of_addition : Network.t -> Build.add_result -> int
(** Bytes of code generated when this production was added: the sum over
    the nodes the addition actually created (shared nodes cost nothing,
    which is exactly why shared compilation is smaller and faster).
    Nodes the addition created but a later excise removed contribute
    nothing. *)

(** {2 Sharing accounting}

    Ownership recomputed over the productions {e currently} in the
    network (excised productions own nothing — their unshared nodes are
    gone and their shared nodes are re-attributed to the surviving
    chains). *)

type sharing = {
  sh_nodes : int;  (** live beta nodes on some live production chain *)
  sh_shared : int;  (** nodes on at least two live chains *)
  sh_bytes : int;  (** byte model total over owned nodes *)
  sh_per_production : (Psme_support.Sym.t * int * int) list;
      (** (production, owned nodes, owned bytes), in addition order; a
          shared node is owned by the earliest-added live production
          whose chain runs through it *)
}

val sharing_report : Network.t -> sharing

val bytes_per_two_input_node : Network.t -> Build.add_result -> float
(** Average over the two-input nodes created by the addition; [nan] if
    it created none. *)

(** {2 Compiled node programs}

    What the closure compiler ({!Program}) actually installed — the
    paper's code-size-vs-learning measurement applied to the compiled
    path. All zero when the network runs interpreted. *)

type compiled_report = {
  cp_programs : int;  (** nodes with an installed program *)
  cp_closures : int;  (** closures those programs compiled to *)
  cp_words : int;     (** modeled heap words of those closures *)
}

val compiled_report : Network.t -> compiled_report
(** Totals over every live node of the network. *)

val compiled_of_production : Network.t -> Network.pmeta -> compiled_report
(** Programs of the nodes this production's addition created (shared
    nodes are charged to the production that created them, mirroring
    {!bytes_of_addition}). *)
