open Psme_ops5
open Network

(* The canonical access/outcome definitions moved to [Program] (the
   compiled path); re-exported here with type equations so engines and
   analyses keep reading [o.Runtime.children] etc. unchanged. *)

type access = Program.access = {
  acc_node : int;
  acc_line : int;
  acc_write : bool;
  acc_locked : bool;
}

type outcome = Program.outcome = {
  children : Task.t array;
  scanned : int;
  matched : int;
  insts : (Task.flag * Conflict_set.inst) list;
  accesses : access list;
}

let no_children = Program.no_children

(* Fault-injection hook, shared with the compiled path (lives in
   [Program] so both execution paths elide the same lock). *)
let set_lock_elision = Program.set_lock_elision
let lock_elision = Program.lock_elision

let with_line net ~line f = Program.with_line net.mem ~line f
let access = Program.access

(* Fan-out through the node's precomputed successor array; shared with
   the compiled path so both emit in identical order (tokens in list
   order, successors in registration order). *)
let emit = Program.emit
let emit_all = Program.emit_all

(* --- entry ---------------------------------------------------------- *)

let exec_entry net n (flag : Task.flag) w =
  let kh = khash_entry n w in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let transitioned =
    with_line net ~line (fun () ->
        match flag with
        | Task.Add -> Memory.right_add net.mem ~node:n.id ~khash:kh (Memory.R_wme w)
        | Task.Delete -> Memory.right_remove net.mem ~node:n.id ~khash:kh (Memory.R_wme w))
  in
  if not transitioned then { no_children with accesses = [ acc ] }
  else
    let tok = Token.singleton w in
    { children = emit n flag tok; scanned = 0; matched = 1; insts = [];
      accesses = [ acc ] }

(* --- join ----------------------------------------------------------- *)

let exec_join_left net n ti (flag : Task.flag) token =
  let kh = khash_left n token in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let matches = ref [] in
  let scanned = ref 0 in
  let live =
    with_line net ~line (fun () ->
        let live =
          match flag with
          | Task.Add -> (
            match Memory.left_add net.mem ~node:n.id ~khash:kh token ~count:0 with
            | `Activated _ -> true
            | `Inert -> false)
          | Task.Delete -> (
            match Memory.left_remove net.mem ~node:n.id ~khash:kh token with
            | `Deactivated _ -> true
            | `Inert -> false)
        in
        if live then
          scanned :=
            Memory.right_iter net.mem ~node:n.id ~khash:kh (fun payload ->
                match payload with
                | Memory.R_wme w -> if jtests_hold ti token w then matches := w :: !matches
                | Memory.R_tok _ -> ());
        live)
  in
  if not live then { no_children with accesses = [ acc ] }
  else
    let tokens = List.rev_map (fun w -> Token.extend token w) !matches in
    { children = emit_all n flag tokens; scanned = !scanned; matched = List.length tokens;
      insts = []; accesses = [ acc ] }

let exec_join_right net n ti (flag : Task.flag) w =
  let kh = khash_right n w in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let matches = ref [] in
  let scanned = ref 0 in
  let live =
    with_line net ~line (fun () ->
        let live =
          match flag with
          | Task.Add -> Memory.right_add net.mem ~node:n.id ~khash:kh (Memory.R_wme w)
          | Task.Delete -> Memory.right_remove net.mem ~node:n.id ~khash:kh (Memory.R_wme w)
        in
        if live then
          scanned :=
            Memory.left_iter net.mem ~node:n.id ~khash:kh (fun e ->
                if jtests_hold ti e.Memory.l_token w then matches := e.Memory.l_token :: !matches);
        live)
  in
  if not live then { no_children with accesses = [ acc ] }
  else
    let tokens = List.rev_map (fun tok -> Token.extend tok w) !matches in
    { children = emit_all n flag tokens; scanned = !scanned; matched = List.length tokens;
      insts = []; accesses = [ acc ] }

(* --- negative ------------------------------------------------------- *)

let exec_neg_left net n ti (flag : Task.flag) token =
  let kh = khash_left n token in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let pass = ref false in
  let scanned = ref 0 in
  with_line net ~line (fun () ->
      match flag with
      | Task.Add ->
        let count = ref 0 in
        scanned :=
          Memory.right_iter net.mem ~node:n.id ~khash:kh (fun payload ->
              match payload with
              | Memory.R_wme w -> if jtests_hold ti token w then incr count
              | Memory.R_tok _ -> ());
        (match Memory.left_add net.mem ~node:n.id ~khash:kh token ~count:!count with
        | `Activated _ -> pass := !count = 0
        | `Inert -> ())
      | Task.Delete -> (
        match Memory.left_remove net.mem ~node:n.id ~khash:kh token with
        | `Deactivated e -> pass := e.Memory.l_count = 0
        | `Inert -> ()));
  if !pass then
    { children = emit n flag token; scanned = !scanned; matched = 1; insts = [];
      accesses = [ acc ] }
  else { no_children with scanned = !scanned; accesses = [ acc ] }

let exec_neg_right net n ti (flag : Task.flag) w =
  let kh = khash_right n w in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let transitions = ref [] in
  let scanned = ref 0 in
  with_line net ~line (fun () ->
      match flag with
      | Task.Add ->
        if Memory.right_add net.mem ~node:n.id ~khash:kh (Memory.R_wme w) then
          scanned :=
            Memory.left_iter net.mem ~node:n.id ~khash:kh (fun e ->
                if jtests_hold ti e.Memory.l_token w then begin
                  e.Memory.l_count <- e.Memory.l_count + 1;
                  if e.Memory.l_count = 1 then
                    transitions := (Task.Delete, e.Memory.l_token) :: !transitions
                end)
      | Task.Delete ->
        if Memory.right_remove net.mem ~node:n.id ~khash:kh (Memory.R_wme w) then
          scanned :=
            Memory.left_iter net.mem ~node:n.id ~khash:kh (fun e ->
                if jtests_hold ti e.Memory.l_token w then begin
                  e.Memory.l_count <- e.Memory.l_count - 1;
                  if e.Memory.l_count = 0 then
                    transitions := (Task.Add, e.Memory.l_token) :: !transitions
                end));
  let transitions = List.rev !transitions in
  { children = Program.emit_transitions n transitions; scanned = !scanned;
    matched = List.length transitions; insts = []; accesses = [ acc ] }

(* --- NCC ------------------------------------------------------------- *)

let exec_ncc_left net n prefix_len (flag : Task.flag) token =
  ignore prefix_len;
  let kh = khash_ncc_left n token in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let pass = ref false in
  let scanned = ref 0 in
  with_line net ~line (fun () ->
      match flag with
      | Task.Add ->
        let count = ref 0 in
        scanned :=
          Memory.right_iter net.mem ~node:n.id ~khash:kh (fun payload ->
              match payload with
              | Memory.R_tok sub ->
                if Token.equal (Token.prefix sub (Token.length token)) token then incr count
              | Memory.R_wme _ -> ());
        (match Memory.left_add net.mem ~node:n.id ~khash:kh token ~count:!count with
        | `Activated _ -> pass := !count = 0
        | `Inert -> ())
      | Task.Delete -> (
        match Memory.left_remove net.mem ~node:n.id ~khash:kh token with
        | `Deactivated e -> pass := e.Memory.l_count = 0
        | `Inert -> ()));
  if !pass then
    { children = emit n flag token; scanned = !scanned; matched = 1; insts = [];
      accesses = [ acc ] }
  else { no_children with scanned = !scanned; accesses = [ acc ] }

let exec_ncc_partner net n ~ncc ~prefix_len (flag : Task.flag) subtok =
  let ncc_node = node net ncc in
  let prefix = Token.prefix subtok prefix_len in
  let kh = khash_ncc_right n subtok in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:ncc ~line in
  let transitions = ref [] in
  let scanned = ref 0 in
  with_line net ~line (fun () ->
      match flag with
      | Task.Add ->
        if Memory.right_add net.mem ~node:ncc ~khash:kh (Memory.R_tok subtok) then
          scanned :=
            Memory.left_iter net.mem ~node:ncc ~khash:kh (fun e ->
                if Token.equal e.Memory.l_token prefix then begin
                  e.Memory.l_count <- e.Memory.l_count + 1;
                  if e.Memory.l_count = 1 then
                    transitions := (Task.Delete, e.Memory.l_token) :: !transitions
                end)
      | Task.Delete ->
        if Memory.right_remove net.mem ~node:ncc ~khash:kh (Memory.R_tok subtok) then
          scanned :=
            Memory.left_iter net.mem ~node:ncc ~khash:kh (fun e ->
                if Token.equal e.Memory.l_token prefix then begin
                  e.Memory.l_count <- e.Memory.l_count - 1;
                  if e.Memory.l_count = 0 then
                    transitions := (Task.Add, e.Memory.l_token) :: !transitions
                end));
  let transitions = List.rev !transitions in
  { children = Program.emit_transitions ncc_node transitions; scanned = !scanned;
    matched = List.length transitions; insts = []; accesses = [ acc ] }

(* --- binary join (bilinear networks) --------------------------------- *)

let exec_bjoin_left net n bi (flag : Task.flag) token =
  let kh = khash_bjoin_left n token in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let matches = ref [] in
  let scanned = ref 0 in
  let live =
    with_line net ~line (fun () ->
        let live =
          match flag with
          | Task.Add -> (
            match Memory.left_add net.mem ~node:n.id ~khash:kh token ~count:0 with
            | `Activated _ -> true
            | `Inert -> false)
          | Task.Delete -> (
            match Memory.left_remove net.mem ~node:n.id ~khash:kh token with
            | `Deactivated _ -> true
            | `Inert -> false)
        in
        if live then
          scanned :=
            Memory.right_iter net.mem ~node:n.id ~khash:kh (fun payload ->
                match payload with
                | Memory.R_tok rt -> if btests_hold bi token rt then matches := rt :: !matches
                | Memory.R_wme _ -> ());
        live)
  in
  if not live then { no_children with accesses = [ acc ] }
  else
    let tokens =
      List.rev_map (fun rt -> Token.concat token (Token.suffix rt bi.right_drop)) !matches
    in
    { children = emit_all n flag tokens; scanned = !scanned; matched = List.length tokens;
      insts = []; accesses = [ acc ] }

let exec_bjoin_right net n bi (flag : Task.flag) rtok =
  let kh = khash_bjoin_right n rtok in
  let line = Memory.line_of net.mem ~khash:kh in
  let acc = access ~node:n.id ~line in
  let matches = ref [] in
  let scanned = ref 0 in
  let live =
    with_line net ~line (fun () ->
        let live =
          match flag with
          | Task.Add -> Memory.right_add net.mem ~node:n.id ~khash:kh (Memory.R_tok rtok)
          | Task.Delete -> Memory.right_remove net.mem ~node:n.id ~khash:kh (Memory.R_tok rtok)
        in
        if live then
          scanned :=
            Memory.left_iter net.mem ~node:n.id ~khash:kh (fun e ->
                if btests_hold bi e.Memory.l_token rtok then
                  matches := e.Memory.l_token :: !matches);
        live)
  in
  if not live then { no_children with accesses = [ acc ] }
  else
    let tokens =
      List.rev_map (fun lt -> Token.concat lt (Token.suffix rtok bi.right_drop)) !matches
    in
    { children = emit_all n flag tokens; scanned = !scanned; matched = List.length tokens;
      insts = []; accesses = [ acc ] }

(* --- P-node ----------------------------------------------------------- *)

let exec_pnode net _n pi (flag : Task.flag) token =
  let inst_token =
    match pi.perm with None -> token | Some perm -> Token.permute token perm
  in
  let inst =
    { Conflict_set.prod = pi.production.Production.name; token = inst_token }
  in
  (match flag with
  | Task.Add -> Conflict_set.add net.cs inst
  | Task.Delete -> Conflict_set.remove net.cs inst);
  { no_children with matched = 1; insts = [ (flag, inst) ] }

(* --- dispatch ---------------------------------------------------------- *)

(* Process-wide activation counters, shared by all engines (the
   observability layer's registry). Atomic, so the real parallel
   engine's domains can bump them concurrently. *)
let m_tasks = Psme_obs.Metrics.counter Psme_obs.Metrics.global "rete.runtime.tasks"
let m_scanned = Psme_obs.Metrics.counter Psme_obs.Metrics.global "rete.runtime.scanned"
let m_children = Psme_obs.Metrics.counter Psme_obs.Metrics.global "rete.runtime.children"

let m_alpha =
  Psme_obs.Metrics.counter Psme_obs.Metrics.global "rete.runtime.alpha_activations"

let exec_dispatch net task =
  match task with
  | Task.Right { node = nid; flag; wme } -> (
    match Hashtbl.find_opt net.beta nid with
    | None -> no_children  (* node excised while the task was queued *)
    | Some n -> (
      match n.kind with
      | Entry -> exec_entry net n flag wme
      | Join ti -> exec_join_right net n ti flag wme
      | Neg ti -> exec_neg_right net n ti flag wme
      | Ncc _ | Ncc_partner _ | Bjoin _ | Pnode _ ->
        invalid_arg "Runtime.exec: wme delivered to a token-only node"))
  | Task.Left { node = nid; flag; token } -> (
    match Hashtbl.find_opt net.beta nid with
    | None -> no_children
    | Some n -> (
      match n.kind with
      | Join ti -> exec_join_left net n ti flag token
      | Neg ti -> exec_neg_left net n ti flag token
      | Ncc { prefix_len } -> exec_ncc_left net n prefix_len flag token
      | Bjoin bi -> exec_bjoin_left net n bi flag token
      | Pnode pi -> exec_pnode net n pi flag token
      | Entry | Ncc_partner _ ->
        invalid_arg "Runtime.exec: left token delivered to a right-only node"))
  | Task.Rtok { node = nid; flag; token } -> (
    match Hashtbl.find_opt net.beta nid with
    | None -> no_children
    | Some n -> (
      match n.kind with
      | Ncc_partner { ncc; prefix_len } -> exec_ncc_partner net n ~ncc ~prefix_len flag token
      | Bjoin bi -> exec_bjoin_right net n bi flag token
      | Entry | Join _ | Neg _ | Ncc _ | Pnode _ ->
        invalid_arg "Runtime.exec: right token delivered to a non-binary node"))

(* The jumptable dispatch (§5.1): a compiled program, when installed,
   handles the task; never-compiled or excised nodes fall back to the
   interpreter (whose beta lookup also absorbs tasks queued to excised
   nodes). *)
let exec net task =
  let o =
    match Program.find net (Task.node task) with
    | Some p -> Program.run p task
    | None -> exec_dispatch net task
  in
  Psme_obs.Metrics.incr m_tasks;
  Psme_obs.Metrics.add m_scanned o.scanned;
  Psme_obs.Metrics.add m_children (Array.length o.children);
  o

let exec_interpreted net task =
  let o = exec_dispatch net task in
  Psme_obs.Metrics.incr m_tasks;
  Psme_obs.Metrics.add m_scanned o.scanned;
  Psme_obs.Metrics.add m_children (Array.length o.children);
  o

(* --- alpha seeding ------------------------------------------------------ *)

let seed_wme_change ?(min_node_id = 0) net flag w =
  let tasks = ref [] in
  let activations =
    Alpha.matching_amems net.alpha w (fun amem ->
        List.iter
          (fun nid ->
            if nid >= min_node_id then
              tasks := Task.Right { node = nid; flag; wme = w } :: !tasks)
          (Alpha.successors net.alpha ~amem))
  in
  Psme_obs.Metrics.add m_alpha activations;
  (List.rev !tasks, activations)

(* --- replay (update phase, §5.2) ----------------------------------------- *)

let to_port ~child ~port flag token =
  match port with
  | P_left -> Task.Left { node = child; flag; token }
  | P_right -> Task.Rtok { node = child; flag; token }

let replay_parent net ~parent ~child ~port =
  let out = ref [] in
  let push tok = out := to_port ~child ~port Task.Add tok :: !out in
  (match parent.kind with
  | Entry ->
    Memory.iter_node_right net.mem ~node:parent.id (fun payload ->
        match payload with
        | Memory.R_wme w -> push (Token.singleton w)
        | Memory.R_tok _ -> ())
  | Join ti ->
    (* Recompute the join of the node's stored left and right state. *)
    let lefts = ref [] in
    Memory.iter_node_left net.mem ~node:parent.id (fun e -> lefts := e.Memory.l_token :: !lefts);
    List.iter
      (fun tok ->
        let kh = khash_left parent tok in
        let line = Memory.line_of net.mem ~khash:kh in
        Memory.locked net.mem ~line (fun () ->
            ignore
              (Memory.right_iter net.mem ~node:parent.id ~khash:kh (fun payload ->
                   match payload with
                   | Memory.R_wme w ->
                     if jtests_hold ti tok w then push (Token.extend tok w)
                   | Memory.R_tok _ -> ()))))
      !lefts
  | Neg _ | Ncc _ ->
    Memory.iter_node_left net.mem ~node:parent.id (fun e ->
        if e.Memory.l_count = 0 then push e.Memory.l_token)
  | Bjoin bi ->
    let lefts = ref [] in
    Memory.iter_node_left net.mem ~node:parent.id (fun e -> lefts := e.Memory.l_token :: !lefts);
    List.iter
      (fun tok ->
        let kh = khash_bjoin_left parent tok in
        let line = Memory.line_of net.mem ~khash:kh in
        Memory.locked net.mem ~line (fun () ->
            ignore
              (Memory.right_iter net.mem ~node:parent.id ~khash:kh (fun payload ->
                   match payload with
                   | Memory.R_tok rt ->
                     if btests_hold bi tok rt then
                       push (Token.concat tok (Token.suffix rt bi.right_drop))
                   | Memory.R_wme _ -> ()))))
      !lefts
  | Ncc_partner _ | Pnode _ ->
    invalid_arg "Runtime.replay_parent: node kind stores no replayable output");
  List.rev !out

let excess_cross_products net =
  let total = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      match n.kind with
      | Bjoin _ ->
        Memory.iter_node_left net.mem ~node:n.id (fun _ -> incr total)
      | _ -> ())
    net.beta;
  !total
