(** The Rete network: nodes, their wiring, and the shared match state.

    Node IDs are allocated from a single monotone counter (alpha and
    beta nodes alike), which is the paper's §5.2 invariant: a node added
    later always has a larger ID than every pre-existing node, and once
    a production's chain stops being shared it never becomes shared
    again deeper down. Run-time addition appends nodes and patches
    successor lists — the data-structure analogue of patching the PSM-E
    jumptable. *)

open Psme_support
open Psme_ops5

(** A beta test between a left-token field and a right-wme field. *)
type jtest = {
  l_slot : int;
  l_fld : int;
  rel : Cond.relation;
  r_fld : int;
}

(** A test between fields of two tokens (binary joins). *)
type btest =
  | B_fields of { a_slot : int; a_fld : int; rel : Cond.relation; b_slot : int; b_fld : int }
  | B_same_wme of { a_slot : int; b_slot : int }
      (** the two tokens hold the very same wme in these slots (shared
          context prefix of a bilinear network) *)

type two_input = {
  eq : jtest list;      (** equality tests — they define the hash key *)
  others : jtest list;  (** residual (non-equality) tests *)
}

type binary = {
  b_eq : btest list;
  b_others : btest list;
  right_drop : int;  (** leading right-token slots dropped on concat *)
}

type pinfo = {
  production : Production.t;
  perm : int array option;  (** slot permutation to CE order; [None] = identity *)
  bindings : (string * (int * int)) list;
      (** variable -> (positive-CE index, field) *)
}

type kind =
  | Entry        (** converts a first-CE wme into a 1-token *)
  | Join of two_input
  | Neg of two_input
  | Ncc of { prefix_len : int }
  | Ncc_partner of { ncc : int; prefix_len : int }
  | Bjoin of binary
  | Pnode of pinfo

type port = P_left | P_right

type node = {
  id : int;
  kind : kind;
  parent : int option;     (** main (left) input node *)
  alpha_src : int option;  (** alpha memory feeding the right input *)
  mutable succs : (int * port) array;
      (** successor fan-out in registration order; replaced wholesale
          (never mutated in place) when run-time addition patches the
          wiring, so activation emit and compiled node programs read it
          without locking *)
}

type config = {
  share : bool;          (** reuse structurally identical nodes *)
  bilinear : bool;       (** build constrained bilinear networks (§6.2) *)
  bilinear_ctx : int;    (** context-prefix length (Gr1) *)
  bilinear_group : int;  (** CEs per group *)
  bilinear_min_ces : int;  (** only restructure productions at least this long *)
  lines : int;           (** hash lines in the global memories *)
  compiled : bool;
      (** execute activations through closure-compiled node programs
          (the PSM-E machine-code analogue, §4/§5.1); the interpreter
          remains available as the oracle when [false] *)
  reorder_joins : bool;
      (** place positive CEs in the order {!Jcost.suggest} predicts is
          cheapest (negations after all positives); the P-node's slot
          permutation restores CE order, so conflict sets, bindings and
          chunking are unchanged. Off by default. *)
}

val default_config : config

type jumptable = ..
(** Dispatch table of compiled node programs, indexed by node ID. The
    concrete constructor lives in [Program]; the network only carries
    the slot (see {!Program.table}). *)

type jumptable += Jt_none

type pmeta = {
  pnode : int;
  meta_production : Production.t;
  chain : int list;          (** beta nodes along this production, root-first *)
  created_nodes : int list;  (** nodes newly created when it was added *)
}

type t = {
  schema : Schema.t;
  config : config;
  counter : int ref;  (** the single monotone node-ID counter *)
  beta : (int, node) Hashtbl.t;
  alpha : Alpha.t;
  mem : Memory.t;
  cs : Conflict_set.t;
  prods : (Sym.t, pmeta) Hashtbl.t;
  mutable prod_order_rev : Sym.t list;
  share_index : (int * int, int list) Hashtbl.t;
      (** (parent id, spec hash) -> candidate child ids; the compiler's
          O(1) share-point lookup (the builder still verifies specs
          structurally, so stale or colliding entries are harmless) *)
  mutable jumptable : jumptable;
}

val create : ?config:config -> Schema.t -> t
val next_id : t -> int
(** The ID the next node will receive; nodes created later always have
    IDs at least this value (used as the update filter's threshold). *)

val alloc_id : t -> int
val add_node :
  t -> kind:kind -> parent:int option -> alpha_src:int option -> node
val node : t -> int -> node
val node_opt : t -> int -> node option

val iter_nodes : t -> (node -> unit) -> unit
(** Visit every beta node, in no particular order (analysis hook). *)

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val successors : node -> (int * port) list
(** In registration order. *)

val successor_array : node -> (int * port) array
(** The fan-out array itself (immutable; do not mutate). The hot path's
    view of {!successors}. *)

val add_successor : t -> of_:int -> node:int -> port:port -> unit
val remove_successor : t -> of_:int -> node:int -> unit

val productions : t -> pmeta list
(** In addition order. *)

val find_production : t -> Sym.t -> pmeta option
val beta_node_count : t -> int
val two_input_node_count : t -> int

(** {2 Hash keys and test evaluation} *)

val mix : int -> Value.t -> int
(** One step of the khash fold. Exported so {!Program}'s specialized
    khash closures compute bit-identical keys to the interpreter's. *)

val id_seed : int -> int

val khash_right : node -> Wme.t -> int
val khash_left : node -> Token.t -> int
val khash_entry : node -> Wme.t -> int
val khash_ncc_left : node -> Token.t -> int
val khash_ncc_right : node -> Token.t -> int
(** Hash of the [prefix_len]-prefix of a subnetwork token, under the NCC
    node's id. *)

val khash_bjoin_left : node -> Token.t -> int
val khash_bjoin_right : node -> Token.t -> int

val jtests_hold : two_input -> Token.t -> Wme.t -> bool
(** All tests of the node ([eq] and [others]) hold. *)

val btests_hold : binary -> Token.t -> Token.t -> bool

val bindings_of : t -> Sym.t -> Token.t -> (string * Value.t) list
(** Variable values of an instantiation of the named production. *)

val binding_value : pinfo -> Token.t -> string -> Value.t
(** Value of one variable; raises [Not_found] for unknown variables. *)
