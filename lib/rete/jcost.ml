open Psme_support
open Psme_ops5

(* Model parameters. The absolute numbers are arbitrary; everything the
   model is used for (ranking productions, comparing orders of one
   production, flagging unbounded growth) only depends on ratios. *)
let base_card = ref 16.
let const_sel = 0.1
let ne_sel = 0.9
let ord_sel = 0.5
let pred_join_sel = 0.5
let min_card = 0.05
let min_tokens = 0.01

let quadratic_bound () = !base_card *. !base_card

(* --- per-CE statistics ---------------------------------------------- *)

type ce_stats = {
  cs_idx : int;
  cs_cls : Sym.t;
  cs_selectivity : float;
  cs_card : float;
  cs_eq_vars : string list;
  cs_pred_vars : string list;
  cs_requires : string list;
  cs_vars : string list;
}

(* Scan a CE's tests exactly in the order the compiler consumes them
   (fields ascending — [Cond.ce] sorts — conjunction elements in list
   order), classifying each variable occurrence the way
   [Build.analyze]'s [add_var_test] would. *)
let stats_of_ce idx (ce : Cond.ce) =
  let sel = ref 1.0 in
  let eq_vars = ref [] and pred_vars = ref [] and requires = ref [] in
  let eq_seen = Hashtbl.create 8 in
  let add l v = if not (List.mem v !l) then l := v :: !l in
  let occur rel v =
    match rel with
    | Cond.Eq ->
      add eq_vars v;
      Hashtbl.replace eq_seen v ()
    | Cond.Ne | Cond.Lt | Cond.Le | Cond.Gt | Cond.Ge ->
      add pred_vars v;
      (* first occurrence is a predicate: the build needs the binding
         from an earlier CE *)
      if not (Hashtbl.mem eq_seen v) then add requires v
  in
  let atom = function
    | Cond.T_const _ -> sel := !sel *. const_sel
    | Cond.T_disj vs ->
      sel := !sel *. Float.min 1.0 (const_sel *. float_of_int (List.length vs))
    | Cond.T_rel (Cond.Eq, Cond.Oconst _) -> sel := !sel *. const_sel
    | Cond.T_rel (Cond.Ne, Cond.Oconst _) -> sel := !sel *. ne_sel
    | Cond.T_rel ((Cond.Lt | Cond.Le | Cond.Gt | Cond.Ge), Cond.Oconst _) ->
      sel := !sel *. ord_sel
    | Cond.T_var v -> occur Cond.Eq v
    | Cond.T_rel (rel, Cond.Ovar v) -> occur rel v
    | Cond.T_conj _ -> assert false (* flattened below *)
  in
  List.iter (fun (_, ts) -> List.iter atom ts) (Cond.tests_by_field ce);
  let sel = Float.max 1e-4 !sel in
  {
    cs_idx = idx;
    cs_cls = ce.Cond.cls;
    cs_selectivity = sel;
    cs_card = Float.max min_card (!base_card *. sel);
    cs_eq_vars = List.rev !eq_vars;
    cs_pred_vars = List.rev !pred_vars;
    cs_requires = List.rev !requires;
    cs_vars =
      List.rev !eq_vars
      @ List.filter (fun v -> not (List.mem v !eq_vars)) (List.rev !pred_vars);
  }

(* --- chain simulation ------------------------------------------------ *)

type step = {
  st_ce : int;
  st_scan : float;
  st_tokens : float;
  st_linked : bool;
}

type chain = {
  ch_order : int array;
  ch_steps : step list;
  ch_cost : float;
  ch_peak : float;
  ch_cross : int list;
}

(* One join level: previous token stream vs. an alpha memory of
   cardinality [card], with [eq] hash-selective links and [pred]
   residual-predicate links to the bound prefix. The scan term is the
   paper's dominant per-node cost (opposite-memory iteration), the token
   term is what flows to the next level. *)
let join_level ~tokens ~card ~eq ~pred =
  let scan = tokens *. card in
  let jsel =
    (1.0 /. !base_card) ** float_of_int eq *. (pred_join_sel ** float_of_int pred)
  in
  let out = Float.max min_tokens (tokens *. card *. jsel) in
  (scan, out)

let simulate stats order ~negs =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let steps = ref [] in
  let cost = ref 0. and peak = ref 0. and cross = ref [] in
  let tokens = ref 1.0 in
  let level = ref 0 in
  let place ~slotless (cs : ce_stats) =
    let eq = List.length (List.filter (Hashtbl.mem bound) cs.cs_eq_vars) in
    let pred =
      List.length
        (List.filter
           (fun v -> Hashtbl.mem bound v && not (List.mem v cs.cs_eq_vars))
           cs.cs_pred_vars)
    in
    let linked = eq + pred > 0 in
    let scan, out =
      if !level = 0 then (cs.cs_card, cs.cs_card)
      else join_level ~tokens:!tokens ~card:cs.cs_card ~eq ~pred
    in
    cost := !cost +. scan;
    if not slotless then begin
      if !level > 0 && not linked && cs.cs_vars <> [] then
        cross := !level :: !cross;
      tokens := out;
      peak := Float.max !peak out;
      incr level;
      List.iter (fun v -> Hashtbl.replace bound v ()) cs.cs_eq_vars
    end;
    steps :=
      { st_ce = cs.cs_idx; st_scan = scan; st_tokens = !tokens; st_linked = linked }
      :: !steps
  in
  Array.iter (fun i -> place ~slotless:false stats.(i)) order;
  (* negated CEs and NCC groups filter the final stream: they add scan
     cost but no slots *)
  List.iter (fun cs -> place ~slotless:true cs) negs;
  {
    ch_order = order;
    ch_steps = List.rev !steps;
    ch_cost = !cost;
    ch_peak = !peak;
    ch_cross = List.rev !cross;
  }

(* Top-level condition split: positive CEs carry slots; negatives and
   NCC groups (flattened) are slotless filters. *)
let split_lhs lhs =
  let pos = ref [] and neg = ref [] in
  List.iter
    (fun c ->
      match c with
      | Cond.Pos ce -> pos := ce :: !pos
      | Cond.Neg ce -> neg := ce :: !neg
      | Cond.Ncc group ->
        List.iter
          (fun ce -> neg := ce :: !neg)
          (Cond.positives group))
    lhs;
  (List.rev !pos, List.rev !neg)

let stats_of (p : Production.t) =
  let pos, neg = split_lhs p.Production.lhs in
  let stats = Array.of_list (List.mapi stats_of_ce pos) in
  let nstats = List.mapi (fun i ce -> stats_of_ce (Array.length stats + i) ce) neg in
  (stats, nstats)

let chain (p : Production.t) =
  let stats, negs = stats_of p in
  simulate stats (Array.init (Array.length stats) Fun.id) ~negs

let chain_of_order (p : Production.t) order =
  let stats, negs = stats_of p in
  if Array.length order <> Array.length stats then
    invalid_arg "Jcost.chain_of_order: order length mismatch";
  simulate stats order ~negs

(* --- order search ----------------------------------------------------- *)

let reorderable (p : Production.t) =
  List.for_all
    (function Cond.Pos _ | Cond.Neg _ -> true | Cond.Ncc _ -> false)
    p.Production.lhs
  && List.length (Cond.positives p.Production.lhs) >= 2

(* Greedy most-selective-linked-first placement. A CE is eligible when
   every variable its predicates need is already bound; among eligible
   CEs, prefer ones linked to the placed prefix and the smallest
   resulting (scan, tokens). The original written order is always a
   valid placement (the production compiled), and the minimum-index
   unplaced CE only depends on lower-index CEs, so the eligible set is
   never empty. *)
let greedy_order stats =
  let n = Array.length stats in
  let placed = Array.make n false in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = Array.make n 0 in
  let tokens = ref 1.0 in
  for level = 0 to n - 1 do
    let best = ref (-1) in
    let best_key = ref (infinity, infinity, max_int) in
    for i = 0 to n - 1 do
      if (not placed.(i))
         && List.for_all (Hashtbl.mem bound) stats.(i).cs_requires
      then begin
        let cs = stats.(i) in
        let eq = List.length (List.filter (Hashtbl.mem bound) cs.cs_eq_vars) in
        let pred =
          List.length
            (List.filter
               (fun v -> Hashtbl.mem bound v && not (List.mem v cs.cs_eq_vars))
               cs.cs_pred_vars)
        in
        let linked = if level = 0 || eq + pred > 0 || cs.cs_vars = [] then 0. else 1. in
        let scan, out =
          if level = 0 then (cs.cs_card, cs.cs_card)
          else join_level ~tokens:!tokens ~card:cs.cs_card ~eq ~pred
        in
        (* unlinked joins are last resorts whatever their size *)
        let key = (linked *. 1e12 +. out, scan, i) in
        if key < !best_key then begin
          best := i;
          best_key := key
        end
      end
    done;
    let i = !best in
    assert (i >= 0);
    placed.(i) <- true;
    order.(level) <- i;
    let cs = stats.(i) in
    let eq = List.length (List.filter (Hashtbl.mem bound) cs.cs_eq_vars) in
    let pred =
      List.length
        (List.filter
           (fun v -> Hashtbl.mem bound v && not (List.mem v cs.cs_eq_vars))
           cs.cs_pred_vars)
    in
    let _, out =
      if level = 0 then (cs.cs_card, cs.cs_card)
      else join_level ~tokens:!tokens ~card:cs.cs_card ~eq ~pred
    in
    tokens := out;
    List.iter (fun v -> Hashtbl.replace bound v ()) cs.cs_eq_vars
  done;
  order

let is_identity order =
  let ok = ref true in
  Array.iteri (fun i v -> if i <> v then ok := false) order;
  !ok

let suggest (p : Production.t) =
  if not (reorderable p) then None
  else begin
    let stats, negs = stats_of p in
    let order = greedy_order stats in
    if is_identity order then None
    else
      let written = simulate stats (Array.init (Array.length stats) Fun.id) ~negs in
      let better = simulate stats order ~negs in
      if better.ch_cost < written.ch_cost *. 0.999 then Some better else None
  end

let suggest_order p = Option.map (fun c -> c.ch_order) (suggest p)
