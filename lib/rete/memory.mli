(** The two global hashed token memories (paper §6.1).

    PSM-E keeps the state of {e all} left memory nodes in one hash table
    and of all right memory nodes in another. The hash key combines (1)
    the values of the variable bindings tested for equality at the
    destination two-input node and (2) that node's unique ID, so tokens
    that could pass the node's equal-variable tests land in the same
    bucket. A {e line} is the pair of corresponding left/right buckets;
    one lock guards a line, which is exactly what makes a two-input
    node's insert-then-probe atomic with respect to the opposite side
    (each joinable pair of activations is serialized by its common line,
    so every join result is produced exactly once).

    Entries are {e reference counted}: within one buffered cycle an add
    wave and a delete wave for the same data may be processed in either
    order on different match processes, so a delete arriving before its
    add leaves a negative entry that the add later annihilates. The
    [`Activated]/[`Deactivated] transitions (refs crossing 1 and 0) are
    the only points where join results are emitted, which makes the
    final match state independent of scheduling.

    Left entries are tokens with a mutable counter (used by negative and
    NCC nodes); right entries are wmes (for joins/negatives) or tokens
    (subnetwork results arriving at NCC partners).

    Internally each line also keeps a secondary index from [(node,
    khash)] to the positions of that key's entries, so probes and
    iterations walk only their own chain instead of every entry sharing
    the line. The index preserves line order (positions are visited
    ascending), so iteration yields the same entry sequence a full line
    scan would — the serial engine's schedule, and every derived
    measurement, is unchanged. The [scanned] value reported by the
    [*_iter] functions is still the {e line} population (the paper's
    bucket-scan cost that the simulator charges), not the number of
    entries physically visited. *)

open Psme_ops5

type left_entry = {
  l_token : Token.t;
  mutable l_refs : int;
  mutable l_count : int;  (** negative-join result count; 0 for joins *)
}

type right_payload =
  | R_wme of Wme.t
  | R_tok of Token.t

type t

val create : ?lines:int -> unit -> t
(** [lines] defaults to 512 and is rounded up to a power of two. *)

val line_count : t -> int
val line_of : t -> khash:int -> int

val locked : t -> line:int -> (unit -> 'a) -> 'a
(** Run a critical section holding the line lock, counting spins. All
    functions below must be called inside [locked] on the entry's line
    (they do not themselves lock). *)

val left_add :
  t -> node:int -> khash:int -> Token.t -> count:int ->
  [ `Activated of left_entry | `Inert ]
(** [`Activated] when the entry's reference count crossed to 1 (the
    caller should probe and emit); [`Inert] when the add annihilated an
    early delete. [count] initializes the negative-join counter on a
    fresh entry. *)

val left_remove :
  t -> node:int -> khash:int -> Token.t -> [ `Deactivated of left_entry | `Inert ]
(** [`Deactivated] when the count crossed to 0 (caller emits deletes);
    [`Inert] records an early delete (tombstone). *)

val left_iter : t -> node:int -> khash:int -> (left_entry -> unit) -> int
(** Visit {e active} (refs >= 1) entries of [node] in the bucket, in
    line order; returns the population of the line's left side (the
    comparison count the simulator charges for a bucket scan), even
    though only the [(node, khash)] chain is physically visited. *)

val right_add : t -> node:int -> khash:int -> right_payload -> bool
(** True when the payload became active (probe and emit). *)

val right_remove : t -> node:int -> khash:int -> right_payload -> bool
(** True when the payload became inactive (probe and emit deletes). *)

val right_iter : t -> node:int -> khash:int -> (right_payload -> unit) -> int

val drop_node : t -> node:int -> unit
(** Remove all entries belonging to a node (excising a production). *)

val iter_node_left : t -> node:int -> (left_entry -> unit) -> unit
(** Visit every active left entry of a node across all lines, taking
    each line's lock. Used when a last-shared node is "specially
    executed" to replay its stored state during a run-time update
    (§5.2). *)

val iter_node_right : t -> node:int -> (right_payload -> unit) -> unit

val fold_left_entries :
  t -> init:'a -> f:('a -> node:int -> khash:int -> left_entry -> 'a) -> 'a
(** Fold over {e every} left entry across all lines — including
    tombstones ([l_refs <= 0]) — taking each line's lock. The state
    verifier's snapshot hook: at quiescence the visible entries are
    exactly the node memories' contents. *)

val fold_right_entries :
  t ->
  init:'a ->
  f:('a -> node:int -> khash:int -> refs:int -> right_payload -> 'a) ->
  'a

(** {2 Instrumentation} *)

val reset_cycle_stats : t -> unit
(** Fold the per-cycle access counters into the histogram and clear them
    (call at each elaboration-cycle boundary). *)

val left_accesses_per_line : t -> int array
(** Left-token accesses per line since the last reset — the quantity of
    Figure 6-2. *)

val access_histogram : t -> (int * int) list
(** Accumulated over all completed cycles, sorted by key: [(k, n)]
    where [n] is the total number of left accesses that landed on lines
    receiving exactly [k] left accesses within their cycle. Units are
    {e accesses}, not distinct tokens or line populations: a line with
    [k] accesses in a cycle contributes [k] to bin [k], so each [n] is a
    multiple of [k] and [sum n = total left accesses] over the
    accumulated cycles. Normalizing [n] by the total gives Figure 6-2's
    "percent of left tokens with [k] accesses to their bucket". *)

val clear_access_histogram : t -> unit

val total_spins : t -> int
(** Lock spins observed since creation (real parallel engine). *)

val total_left_accesses : t -> int
val total_right_accesses : t -> int
