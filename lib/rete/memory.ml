open Psme_support
open Psme_ops5

type left_entry = {
  l_token : Token.t;
  mutable l_refs : int;
  mutable l_count : int;
}

type right_payload =
  | R_wme of Wme.t
  | R_tok of Token.t

type l_item = { ln : int; lkh : int; entry : left_entry }
type r_item = { rn : int; rkh : int; payload : right_payload; mutable r_refs : int }

(* Each line stores its entries in one Vec (the line "population" the
   cost model charges a probe for), plus a secondary index mapping a
   bucket key — (node, khash) folded to an int — to the *ascending*
   positions of that bucket's entries in the Vec. Probes and iterations
   walk only their own bucket chain; iterating positions in ascending
   order visits entries in exactly the order the unindexed line scan
   did, so the serial engine's task schedule (and therefore its measured
   [scanned] stream) is unchanged.

   Key folding may collide two distinct (node, khash) pairs into one
   chain; every entry still carries its own [ln]/[lkh] and each probe
   re-checks them, so a collision only lengthens the chain. *)

type line = {
  lock : Mutex.t;
  left : l_item Vec.t;
  right : r_item Vec.t;
  (* allocated on first use: most lines of a fresh memory are never
     touched, and Network.create should stay cheap *)
  mutable lidx : (int, int Vec.t) Hashtbl.t option;
  mutable ridx : (int, int Vec.t) Hashtbl.t option;
  mutable left_accesses : int;  (* since last reset_cycle_stats *)
}

type t = {
  lines : line array;
  mask : int;
  spins : int Atomic.t;
  left_total : int Atomic.t;
  right_total : int Atomic.t;
  hist : (int, int) Hashtbl.t;
  (* accesses-per-line-per-cycle [k] -> total left accesses on lines
     that saw [k] accesses that cycle (each line contributes k); see
     [access_histogram] in the interface *)
}

let bkey ~node ~khash = ((node * 0x9e3779b1) lxor khash) land max_int

(* --- ascending position lists ---------------------------------------- *)

let ivec_remove v x =
  let n = Vec.length v in
  let rec find i = if i >= n then -1 else if Vec.get v i = x then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    for j = i to n - 2 do
      Vec.set v j (Vec.get v (j + 1))
    done;
    ignore (Vec.pop v)
  end

let ivec_insert_sorted v x =
  Vec.push v x;
  let rec shift j =
    if j > 0 && Vec.get v (j - 1) > x then begin
      Vec.set v j (Vec.get v (j - 1));
      shift (j - 1)
    end
    else Vec.set v j x
  in
  shift (Vec.length v - 1)

let idx_push idx key pos =
  match Hashtbl.find_opt idx key with
  | Some v -> Vec.push v pos (* pos is the line's new maximum: stays ascending *)
  | None ->
    let v = Vec.create () in
    Vec.push v pos;
    Hashtbl.replace idx key v

let idx_remove idx key pos =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some v ->
    ivec_remove v pos;
    if Vec.is_empty v then Hashtbl.remove idx key

let idx_find idx key =
  match idx with None -> None | Some h -> Hashtbl.find_opt h key

(* Mirror Vec.swap_remove in the index: the removed entry's position
   disappears, and the entry moved down from the end re-registers at its
   new position (which must be re-sorted into its own chain). *)
let swap_remove_indexed vec oidx ~key_of i =
  let idx = match oidx with Some h -> h | None -> assert false in
  let n = Vec.length vec in
  idx_remove idx (key_of (Vec.get vec i)) i;
  if i < n - 1 then begin
    let moved_key = key_of (Vec.get vec (n - 1)) in
    (match Hashtbl.find_opt idx moved_key with
    | Some v ->
      ivec_remove v (n - 1);
      ivec_insert_sorted v i
    | None -> assert false);
    ()
  end;
  Vec.swap_remove vec i

let force_idx get set line =
  match get line with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 8 in
    set line h;
    h

let force_lidx line = force_idx (fun l -> l.lidx) (fun l h -> l.lidx <- Some h) line
let force_ridx line = force_idx (fun l -> l.ridx) (fun l h -> l.ridx <- Some h) line

let lkey_of (it : l_item) = bkey ~node:it.ln ~khash:it.lkh
let rkey_of (it : r_item) = bkey ~node:it.rn ~khash:it.rkh

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(lines = 512) () =
  let n = next_pow2 lines in
  let t =
    {
      lines =
        Array.init n (fun _ ->
            { lock = Mutex.create (); left = Vec.create (); right = Vec.create ();
              lidx = None; ridx = None;
              left_accesses = 0 });
      mask = n - 1;
      spins = Atomic.make 0;
      left_total = Atomic.make 0;
      right_total = Atomic.make 0;
      hist = Hashtbl.create 64;
    }
  in
  (* The most recently created memory owns the well-known probe names;
     sampling costs nothing on the access paths. *)
  let module M = Psme_obs.Metrics in
  M.set_probe M.global "rete.memory.lines" (fun () -> float_of_int n);
  M.set_probe M.global "rete.memory.left_accesses" (fun () ->
      float_of_int (Atomic.get t.left_total));
  M.set_probe M.global "rete.memory.right_accesses" (fun () ->
      float_of_int (Atomic.get t.right_total));
  M.set_probe M.global "rete.memory.lock_spins" (fun () ->
      float_of_int (Atomic.get t.spins));
  t

let line_count t = Array.length t.lines
let line_of t ~khash = khash land t.mask

let locked t ~line f =
  let l = t.lines.(line) in
  let tm = Psme_obs.Telemetry.global in
  Psme_obs.Telemetry.incr_lock_acquired tm;
  if not (Mutex.try_lock l.lock) then begin
    (* Spin as the paper's processes do, counting attempts. *)
    Psme_obs.Telemetry.incr_lock_contended tm;
    let spun = ref 0 in
    while not (Mutex.try_lock l.lock) do
      incr spun;
      Domain.cpu_relax ()
    done;
    Atomic.fetch_and_add t.spins !spun |> ignore;
    Psme_obs.Telemetry.add_lock_spins tm !spun
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock l.lock) f

let touch_left t line =
  let l = t.lines.(line) in
  l.left_accesses <- l.left_accesses + 1;
  Atomic.incr t.left_total

(* First matching entry in ascending line position — the same entry (and
   the same scan outcome) the full line scan used to find. *)
let find_left line ~node ~khash token =
  match idx_find line.lidx (bkey ~node ~khash) with
  | None -> None
  | Some ps ->
    let n = Vec.length ps in
    let rec go j =
      if j >= n then None
      else
        let i = Vec.get ps j in
        let item = Vec.get line.left i in
        if item.ln = node && item.lkh = khash && Token.equal item.entry.l_token token
        then Some (i, item)
        else go (j + 1)
    in
    go 0

let left_push line ~node ~khash entry =
  Vec.push line.left { ln = node; lkh = khash; entry };
  idx_push (force_lidx line) (bkey ~node ~khash) (Vec.length line.left - 1)

let left_swap_remove line i = swap_remove_indexed line.left line.lidx ~key_of:lkey_of i

let left_add t ~node ~khash token ~count =
  let line = line_of t ~khash in
  touch_left t line;
  let l = t.lines.(line) in
  match find_left l ~node ~khash token with
  | Some (i, item) ->
    item.entry.l_refs <- item.entry.l_refs + 1;
    if item.entry.l_refs = 0 then begin
      (* annihilated an early delete *)
      left_swap_remove l i;
      `Inert
    end
    else if item.entry.l_refs = 1 then `Activated item.entry
    else `Inert
  | None ->
    let entry = { l_token = token; l_refs = 1; l_count = count } in
    left_push l ~node ~khash entry;
    `Activated entry

let left_remove t ~node ~khash token =
  let line = line_of t ~khash in
  touch_left t line;
  let l = t.lines.(line) in
  match find_left l ~node ~khash token with
  | Some (i, item) ->
    item.entry.l_refs <- item.entry.l_refs - 1;
    if item.entry.l_refs = 0 then begin
      left_swap_remove l i;
      `Deactivated item.entry
    end
    else `Inert
  | None ->
    (* early delete: leave a tombstone for the add to annihilate *)
    left_push l ~node ~khash { l_token = token; l_refs = -1; l_count = 0 };
    `Inert

let left_iter t ~node ~khash f =
  let line = line_of t ~khash in
  touch_left t line;
  let l = t.lines.(line) in
  (* the cost model charges for the whole line (the paper's hash-bucket
     scan); only the bucket chain is actually walked *)
  let scanned = Vec.length l.left in
  (match idx_find l.lidx (bkey ~node ~khash) with
  | None -> ()
  | Some ps ->
    (* index positions mirror swap_remove in lockstep, so they are
       always < length under the line lock: unsafe_get is in-bounds *)
    for j = 0 to Vec.length ps - 1 do
      let item = Vec.unsafe_get l.left (Vec.unsafe_get ps j) in
      if item.ln = node && item.lkh = khash && item.entry.l_refs >= 1 then
        f item.entry
    done);
  scanned

let payload_equal a b =
  match a, b with
  | R_wme x, R_wme y -> Wme.equal x y
  | R_tok x, R_tok y -> Token.equal x y
  | (R_wme _ | R_tok _), _ -> false

let find_right line ~node ~khash payload =
  match idx_find line.ridx (bkey ~node ~khash) with
  | None -> None
  | Some ps ->
    let n = Vec.length ps in
    let rec go j =
      if j >= n then None
      else
        let i = Vec.get ps j in
        let item = Vec.get line.right i in
        if item.rn = node && item.rkh = khash && payload_equal item.payload payload
        then Some (i, item)
        else go (j + 1)
    in
    go 0

let right_push line ~node ~khash payload ~refs =
  Vec.push line.right { rn = node; rkh = khash; payload; r_refs = refs };
  idx_push (force_ridx line) (bkey ~node ~khash) (Vec.length line.right - 1)

let right_swap_remove line i = swap_remove_indexed line.right line.ridx ~key_of:rkey_of i

let right_add t ~node ~khash payload =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let l = t.lines.(line) in
  match find_right l ~node ~khash payload with
  | Some (i, item) ->
    item.r_refs <- item.r_refs + 1;
    if item.r_refs = 0 then begin
      right_swap_remove l i;
      false
    end
    else item.r_refs = 1
  | None ->
    right_push l ~node ~khash payload ~refs:1;
    true

let right_remove t ~node ~khash payload =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let l = t.lines.(line) in
  match find_right l ~node ~khash payload with
  | Some (i, item) ->
    item.r_refs <- item.r_refs - 1;
    if item.r_refs = 0 then begin
      right_swap_remove l i;
      true
    end
    else false
  | None ->
    right_push l ~node ~khash payload ~refs:(-1);
    false

let right_iter t ~node ~khash f =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let l = t.lines.(line) in
  let scanned = Vec.length l.right in
  (match idx_find l.ridx (bkey ~node ~khash) with
  | None -> ()
  | Some ps ->
    (* same in-bounds argument as left_iter *)
    for j = 0 to Vec.length ps - 1 do
      let item = Vec.unsafe_get l.right (Vec.unsafe_get ps j) in
      if item.rn = node && item.rkh = khash && item.r_refs >= 1 then f item.payload
    done);
  scanned

let drop_node t ~node =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          let rec purge_left i =
            if i < Vec.length line.left then
              if (Vec.get line.left i).ln = node then begin
                left_swap_remove line i;
                purge_left i
              end
              else purge_left (i + 1)
          in
          purge_left 0;
          let rec purge_right i =
            if i < Vec.length line.right then
              if (Vec.get line.right i).rn = node then begin
                right_swap_remove line i;
                purge_right i
              end
              else purge_right (i + 1)
          in
          purge_right 0))
    t.lines

let iter_node_left t ~node f =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          Vec.iter
            (fun item -> if item.ln = node && item.entry.l_refs >= 1 then f item.entry)
            line.left))
    t.lines

let iter_node_right t ~node f =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          Vec.iter
            (fun item -> if item.rn = node && item.r_refs >= 1 then f item.payload)
            line.right))
    t.lines

let fold_left_entries t ~init ~f =
  Array.fold_left
    (fun acc line ->
      Mutex.protect line.lock (fun () ->
          Vec.fold
            (fun acc item -> f acc ~node:item.ln ~khash:item.lkh item.entry)
            acc line.left))
    init t.lines

let fold_right_entries t ~init ~f =
  Array.fold_left
    (fun acc line ->
      Mutex.protect line.lock (fun () ->
          Vec.fold
            (fun acc item ->
              f acc ~node:item.rn ~khash:item.rkh ~refs:item.r_refs item.payload)
            acc line.right))
    init t.lines

let reset_cycle_stats t =
  Array.iter
    (fun line ->
      if line.left_accesses > 0 then begin
        let k = line.left_accesses in
        (* each of the line's k accesses was one left token arriving at a
           line with k accesses this cycle: weight the bin by k *)
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.hist k) in
        Hashtbl.replace t.hist k (prev + k);
        line.left_accesses <- 0
      end)
    t.lines

let access_histogram t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.hist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear_access_histogram t = Hashtbl.reset t.hist

let left_accesses_per_line t = Array.map (fun line -> line.left_accesses) t.lines
let total_spins t = Atomic.get t.spins
let total_left_accesses t = Atomic.get t.left_total
let total_right_accesses t = Atomic.get t.right_total
