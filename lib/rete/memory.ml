open Psme_support
open Psme_ops5

type left_entry = {
  l_token : Token.t;
  mutable l_refs : int;
  mutable l_count : int;
}

type right_payload =
  | R_wme of Wme.t
  | R_tok of Token.t

type l_item = { ln : int; lkh : int; entry : left_entry }
type r_item = { rn : int; rkh : int; payload : right_payload; mutable r_refs : int }

type line = {
  lock : Mutex.t;
  left : l_item Vec.t;
  right : r_item Vec.t;
  mutable left_accesses : int;  (* since last reset_cycle_stats *)
}

type t = {
  lines : line array;
  mask : int;
  spins : int Atomic.t;
  left_total : int Atomic.t;
  right_total : int Atomic.t;
  hist : (int, int) Hashtbl.t;  (* accesses-per-line-per-cycle -> tokens *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(lines = 512) () =
  let n = next_pow2 lines in
  let t =
    {
      lines =
        Array.init n (fun _ ->
            { lock = Mutex.create (); left = Vec.create (); right = Vec.create ();
              left_accesses = 0 });
      mask = n - 1;
      spins = Atomic.make 0;
      left_total = Atomic.make 0;
      right_total = Atomic.make 0;
      hist = Hashtbl.create 64;
    }
  in
  (* The most recently created memory owns the well-known probe names;
     sampling costs nothing on the access paths. *)
  let module M = Psme_obs.Metrics in
  M.set_probe M.global "rete.memory.lines" (fun () -> float_of_int n);
  M.set_probe M.global "rete.memory.left_accesses" (fun () ->
      float_of_int (Atomic.get t.left_total));
  M.set_probe M.global "rete.memory.right_accesses" (fun () ->
      float_of_int (Atomic.get t.right_total));
  M.set_probe M.global "rete.memory.lock_spins" (fun () ->
      float_of_int (Atomic.get t.spins));
  t

let line_count t = Array.length t.lines
let line_of t ~khash = khash land t.mask

let locked t ~line f =
  let l = t.lines.(line) in
  if not (Mutex.try_lock l.lock) then begin
    (* Spin as the paper's processes do, counting attempts. *)
    let spun = ref 0 in
    while not (Mutex.try_lock l.lock) do
      incr spun;
      Domain.cpu_relax ()
    done;
    Atomic.fetch_and_add t.spins !spun |> ignore
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock l.lock) f

let touch_left t line =
  let l = t.lines.(line) in
  l.left_accesses <- l.left_accesses + 1;
  Atomic.incr t.left_total

let find_left v ~node ~khash token =
  let n = Vec.length v in
  let rec go i =
    if i >= n then None
    else
      let item = Vec.get v i in
      if item.ln = node && item.lkh = khash && Token.equal item.entry.l_token token then
        Some (i, item)
      else go (i + 1)
  in
  go 0

let left_add t ~node ~khash token ~count =
  let line = line_of t ~khash in
  touch_left t line;
  let v = t.lines.(line).left in
  match find_left v ~node ~khash token with
  | Some (i, item) ->
    item.entry.l_refs <- item.entry.l_refs + 1;
    if item.entry.l_refs = 0 then begin
      (* annihilated an early delete *)
      Vec.swap_remove v i;
      `Inert
    end
    else if item.entry.l_refs = 1 then `Activated item.entry
    else `Inert
  | None ->
    let entry = { l_token = token; l_refs = 1; l_count = count } in
    Vec.push v { ln = node; lkh = khash; entry };
    `Activated entry

let left_remove t ~node ~khash token =
  let line = line_of t ~khash in
  touch_left t line;
  let v = t.lines.(line).left in
  match find_left v ~node ~khash token with
  | Some (i, item) ->
    item.entry.l_refs <- item.entry.l_refs - 1;
    if item.entry.l_refs = 0 then begin
      Vec.swap_remove v i;
      `Deactivated item.entry
    end
    else `Inert
  | None ->
    (* early delete: leave a tombstone for the add to annihilate *)
    Vec.push v
      { ln = node; lkh = khash; entry = { l_token = token; l_refs = -1; l_count = 0 } };
    `Inert

let left_iter t ~node ~khash f =
  let line = line_of t ~khash in
  touch_left t line;
  let v = t.lines.(line).left in
  let scanned = Vec.length v in
  for i = 0 to scanned - 1 do
    let item = Vec.get v i in
    if item.ln = node && item.lkh = khash && item.entry.l_refs >= 1 then f item.entry
  done;
  scanned

let payload_equal a b =
  match a, b with
  | R_wme x, R_wme y -> Wme.equal x y
  | R_tok x, R_tok y -> Token.equal x y
  | (R_wme _ | R_tok _), _ -> false

let find_right v ~node ~khash payload =
  let n = Vec.length v in
  let rec go i =
    if i >= n then None
    else
      let item = Vec.get v i in
      if item.rn = node && item.rkh = khash && payload_equal item.payload payload then
        Some (i, item)
      else go (i + 1)
  in
  go 0

let right_add t ~node ~khash payload =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let v = t.lines.(line).right in
  match find_right v ~node ~khash payload with
  | Some (i, item) ->
    item.r_refs <- item.r_refs + 1;
    if item.r_refs = 0 then begin
      Vec.swap_remove v i;
      false
    end
    else item.r_refs = 1
  | None ->
    Vec.push v { rn = node; rkh = khash; payload; r_refs = 1 };
    true

let right_remove t ~node ~khash payload =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let v = t.lines.(line).right in
  match find_right v ~node ~khash payload with
  | Some (i, item) ->
    item.r_refs <- item.r_refs - 1;
    if item.r_refs = 0 then begin
      Vec.swap_remove v i;
      true
    end
    else false
  | None ->
    Vec.push v { rn = node; rkh = khash; payload; r_refs = -1 };
    false

let right_iter t ~node ~khash f =
  let line = line_of t ~khash in
  Atomic.incr t.right_total;
  let v = t.lines.(line).right in
  let scanned = Vec.length v in
  for i = 0 to scanned - 1 do
    let item = Vec.get v i in
    if item.rn = node && item.rkh = khash && item.r_refs >= 1 then f item.payload
  done;
  scanned

let drop_node t ~node =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          let rec purge_left i =
            if i < Vec.length line.left then
              if (Vec.get line.left i).ln = node then begin
                Vec.swap_remove line.left i;
                purge_left i
              end
              else purge_left (i + 1)
          in
          purge_left 0;
          let rec purge_right i =
            if i < Vec.length line.right then
              if (Vec.get line.right i).rn = node then begin
                Vec.swap_remove line.right i;
                purge_right i
              end
              else purge_right (i + 1)
          in
          purge_right 0))
    t.lines

let iter_node_left t ~node f =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          Vec.iter
            (fun item -> if item.ln = node && item.entry.l_refs >= 1 then f item.entry)
            line.left))
    t.lines

let iter_node_right t ~node f =
  Array.iter
    (fun line ->
      Mutex.protect line.lock (fun () ->
          Vec.iter
            (fun item -> if item.rn = node && item.r_refs >= 1 then f item.payload)
            line.right))
    t.lines

let fold_left_entries t ~init ~f =
  Array.fold_left
    (fun acc line ->
      Mutex.protect line.lock (fun () ->
          Vec.fold
            (fun acc item -> f acc ~node:item.ln ~khash:item.lkh item.entry)
            acc line.left))
    init t.lines

let fold_right_entries t ~init ~f =
  Array.fold_left
    (fun acc line ->
      Mutex.protect line.lock (fun () ->
          Vec.fold
            (fun acc item ->
              f acc ~node:item.rn ~khash:item.rkh ~refs:item.r_refs item.payload)
            acc line.right))
    init t.lines

let reset_cycle_stats t =
  Array.iter
    (fun line ->
      if line.left_accesses > 0 then begin
        let k = line.left_accesses in
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.hist k) in
        Hashtbl.replace t.hist k (prev + k);
        line.left_accesses <- 0
      end)
    t.lines

let access_histogram t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.hist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear_access_histogram t = Hashtbl.reset t.hist

let left_accesses_per_line t = Array.map (fun line -> line.left_accesses) t.lines
let total_spins t = Atomic.get t.spins
let total_left_accesses t = Atomic.get t.left_total
let total_right_accesses t = Atomic.get t.right_total
