open Psme_support
open Psme_ops5

type atest =
  | A_const of int * Value.t
  | A_disj of int * Value.t list
  | A_rel of int * Cond.relation * Value.t
  | A_same of int * Cond.relation * int

let atest_holds test w =
  match test with
  | A_const (f, v) -> Value.equal (Wme.field w f) v
  | A_disj (f, vs) -> List.exists (Value.equal (Wme.field w f)) vs
  | A_rel (f, rel, v) -> Cond.eval_relation rel (Wme.field w f) v
  | A_same (f1, rel, f2) -> Cond.eval_relation rel (Wme.field w f1) (Wme.field w f2)

type anode = {
  _aid : int;
  test : atest;
  mutable children : anode list;
  mutable mem : amem option;
}

and amem = {
  mid : int;
  mutable succs : int list;  (* reverse registration order *)
}

type t = {
  alloc_id : unit -> int;
  roots : (Sym.t, root) Hashtbl.t;
  mems : (int, amem) Hashtbl.t;
  mutable n_nodes : int;
  mutable activations : int;
}

and root = {
  mutable top_children : anode list;
  mutable top_mem : amem option;  (* CE with class test only *)
}

let create ~alloc_id =
  { alloc_id; roots = Hashtbl.create 64; mems = Hashtbl.create 64;
    n_nodes = 0; activations = 0 }

let get_root t cls =
  match Hashtbl.find_opt t.roots cls with
  | Some r -> r
  | None ->
    let r = { top_children = []; top_mem = None } in
    Hashtbl.replace t.roots cls r;
    r

let new_mem t =
  let m = { mid = t.alloc_id (); succs = [] } in
  Hashtbl.replace t.mems m.mid m;
  t.n_nodes <- t.n_nodes + 1;
  m

let add_chain t ~cls tests =
  let root = get_root t cls in
  (* Walk/extend the chain one test at a time, sharing prefixes. *)
  let rec place_in children_get children_set mem_get mem_set = function
    | [] -> (
      match mem_get () with
      | Some m -> m.mid
      | None ->
        let m = new_mem t in
        mem_set (Some m);
        m.mid)
    | test :: rest -> (
      match List.find_opt (fun c -> c.test = test) (children_get ()) with
      | Some child ->
        place_in
          (fun () -> child.children)
          (fun l -> child.children <- l)
          (fun () -> child.mem)
          (fun m -> child.mem <- m)
          rest
      | None ->
        let child =
          { _aid = t.alloc_id (); test; children = []; mem = None }
        in
        t.n_nodes <- t.n_nodes + 1;
        children_set (child :: children_get ());
        place_in
          (fun () -> child.children)
          (fun l -> child.children <- l)
          (fun () -> child.mem)
          (fun m -> child.mem <- m)
          rest)
  in
  place_in
    (fun () -> root.top_children)
    (fun l -> root.top_children <- l)
    (fun () -> root.top_mem)
    (fun m -> root.top_mem <- m)
    tests

let add_successor t ~amem ~node =
  let m = Hashtbl.find t.mems amem in
  if not (List.mem node m.succs) then m.succs <- node :: m.succs

let remove_successor t ~node =
  Hashtbl.iter (fun _ m -> m.succs <- List.filter (fun i -> i <> node) m.succs) t.mems

let matching_amems t w f =
  let count = ref 0 in
  (match Hashtbl.find_opt t.roots w.Wme.cls with
  | None -> ()
  | Some root ->
    (match root.top_mem with Some m -> f m.mid | None -> ());
    let rec walk node =
      incr count;
      if atest_holds node.test w then begin
        (match node.mem with Some m -> f m.mid | None -> ());
        List.iter walk node.children
      end
    in
    List.iter walk root.top_children);
  t.activations <- t.activations + !count;
  !count

let successors t ~amem = List.rev (Hashtbl.find t.mems amem).succs

let amems t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.mems [] |> List.sort compare

let amem_exists t amem = Hashtbl.mem t.mems amem
let node_count t = t.n_nodes
let stats_activations t = t.activations
