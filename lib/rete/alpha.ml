open Psme_support
open Psme_ops5

type atest =
  | A_const of int * Value.t
  | A_disj of int * Value.t list
  | A_rel of int * Cond.relation * Value.t
  | A_same of int * Cond.relation * int

let atest_holds test w =
  match test with
  | A_const (f, v) -> Value.equal (Wme.field w f) v
  | A_disj (f, vs) -> List.exists (Value.equal (Wme.field w f)) vs
  | A_rel (f, rel, v) -> Cond.eval_relation rel (Wme.field w f) v
  | A_same (f1, rel, f2) -> Cond.eval_relation rel (Wme.field w f1) (Wme.field w f2)

(* Node sharing compares tests with [Value.equal] (not polymorphic
   equality) so a test built from an interned symbol and one built from
   the same symbol re-interned still share; [A_disj] values are
   canonicalized (sorted, deduplicated) on entry to [add_chain], making
   disjunction equality order-insensitive. *)
let atest_equal a b =
  match a, b with
  | A_const (f1, v1), A_const (f2, v2) -> f1 = f2 && Value.equal v1 v2
  | A_disj (f1, vs1), A_disj (f2, vs2) ->
    f1 = f2
    && List.length vs1 = List.length vs2
    && List.for_all2 Value.equal vs1 vs2
  | A_rel (f1, r1, v1), A_rel (f2, r2, v2) -> f1 = f2 && r1 = r2 && Value.equal v1 v2
  | A_same (f1, r1, g1), A_same (f2, r2, g2) -> f1 = f2 && r1 = r2 && g1 = g2
  | (A_const _ | A_disj _ | A_rel _ | A_same _), _ -> false

let canonical_atest = function
  | A_disj (f, vs) -> A_disj (f, List.sort_uniq Value.compare vs)
  | (A_const _ | A_rel _ | A_same _) as t -> t

module VH = Hashtbl.Make (struct
  type t = int * Value.t

  let equal (f1, v1) (f2, v2) = f1 = f2 && Value.equal v1 v2
  let hash (f, v) = ((f * 0x9e3779b1) lxor Value.hash v) land max_int
end)

(* Each chain level keeps, alongside the plain child list, a dispatch
   table for its [A_const] children: a wme can match at most one
   constant test per field, so one hash probe per distinct field
   replaces testing every constant sibling. Non-constant children
   (disjunctions, relations, same-field tests) are still tested one by
   one — they are rare. The walk still *charges* one activation per
   sibling (the dispatch is an implementation shortcut, not a change to
   the network the cost model measures), and passing children are
   expanded in child-list order (newest first, via [seq]) so emission
   order matches the pre-dispatch walk exactly. *)

type anode = {
  _aid : int;
  test : atest;
  seq : int;  (* insertion index within the parent level *)
  children : level;
  mutable mem : amem option;
}

and level = {
  mutable all : anode list;  (* newest first *)
  mutable size : int;
  consts : anode VH.t;  (* (field, value) -> the unique A_const child *)
  mutable const_fields : int list;  (* distinct fields among const children *)
  mutable others : anode list;  (* non-const children, newest first *)
}

and amem = {
  mid : int;
  mutable succs : int list;  (* reverse registration order *)
}

type t = {
  alloc_id : unit -> int;
  roots : (Sym.t, root) Hashtbl.t;
  mems : (int, amem) Hashtbl.t;
  chains : (int, Sym.t * atest list) Hashtbl.t;
      (* amem id -> the class and test chain that feeds it (analysis
         introspection; the walk itself never consults this) *)
  mutable n_nodes : int;
  mutable activations : int;
}

and root = {
  top_children : level;
  mutable top_mem : amem option;  (* CE with class test only *)
}

let level_create () =
  { all = []; size = 0; consts = VH.create 4; const_fields = []; others = [] }

let level_add lvl node =
  lvl.all <- node :: lvl.all;
  lvl.size <- lvl.size + 1;
  match node.test with
  | A_const (f, v) ->
    VH.replace lvl.consts (f, v) node;
    if not (List.mem f lvl.const_fields) then lvl.const_fields <- f :: lvl.const_fields
  | A_disj _ | A_rel _ | A_same _ -> lvl.others <- node :: lvl.others

let level_find lvl test =
  match test with
  | A_const (f, v) -> VH.find_opt lvl.consts (f, v)
  | A_disj _ | A_rel _ | A_same _ ->
    List.find_opt (fun c -> atest_equal c.test test) lvl.others

let create ~alloc_id =
  { alloc_id; roots = Hashtbl.create 64; mems = Hashtbl.create 64;
    chains = Hashtbl.create 64; n_nodes = 0; activations = 0 }

let get_root t cls =
  match Hashtbl.find_opt t.roots cls with
  | Some r -> r
  | None ->
    let r = { top_children = level_create (); top_mem = None } in
    Hashtbl.replace t.roots cls r;
    r

let new_mem t =
  let m = { mid = t.alloc_id (); succs = [] } in
  Hashtbl.replace t.mems m.mid m;
  t.n_nodes <- t.n_nodes + 1;
  m

let add_chain t ~cls tests =
  let tests = List.map canonical_atest tests in
  let record mid = Hashtbl.replace t.chains mid (cls, tests) in
  let root = get_root t cls in
  (* Walk/extend the chain one test at a time, sharing prefixes. *)
  let rec place lvl get_mem set_mem = function
    | [] -> (
      match get_mem () with
      | Some m -> m.mid
      | None ->
        let m = new_mem t in
        set_mem (Some m);
        record m.mid;
        m.mid)
    | test :: rest ->
      let child =
        match level_find lvl test with
        | Some c -> c
        | None ->
          let c =
            { _aid = t.alloc_id (); test; seq = lvl.size;
              children = level_create (); mem = None }
          in
          t.n_nodes <- t.n_nodes + 1;
          level_add lvl c;
          c
      in
      place child.children (fun () -> child.mem) (fun m -> child.mem <- m) rest
  in
  place root.top_children
    (fun () -> root.top_mem)
    (fun m -> root.top_mem <- m)
    tests

let add_successor t ~amem ~node =
  let m = Hashtbl.find t.mems amem in
  if not (List.mem node m.succs) then m.succs <- node :: m.succs

let remove_successor t ~node =
  Hashtbl.iter (fun _ m -> m.succs <- List.filter (fun i -> i <> node) m.succs) t.mems

let matching_amems t w f =
  let count = ref 0 in
  (match Hashtbl.find_opt t.roots w.Wme.cls with
  | None -> ()
  | Some root ->
    (match root.top_mem with Some m -> f m.mid | None -> ());
    let rec expand node =
      (match node.mem with Some m -> f m.mid | None -> ());
      walk node.children
    and walk lvl =
      if lvl.size > 0 then begin
        (* every sibling at an expanded level counts as one activation,
           exactly as the undispatched walk performed *)
        count := !count + lvl.size;
        let cands = ref [] in
        List.iter
          (fun fld ->
            match VH.find_opt lvl.consts (fld, Wme.field w fld) with
            | Some n -> cands := n :: !cands
            | None -> ())
          lvl.const_fields;
        List.iter
          (fun n -> if atest_holds n.test w then cands := n :: !cands)
          lvl.others;
        match !cands with
        | [] -> ()
        | [ n ] -> expand n
        | many ->
          List.iter expand (List.sort (fun a b -> compare b.seq a.seq) many)
      end
    in
    walk root.top_children);
  t.activations <- t.activations + !count;
  !count

let successors t ~amem = List.rev (Hashtbl.find t.mems amem).succs

let amems t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.mems [] |> List.sort compare

let amem_exists t amem = Hashtbl.mem t.mems amem

let chain_of t ~amem = Hashtbl.find_opt t.chains amem

let iter_chains t f =
  Hashtbl.iter (fun mid (cls, tests) -> f ~amem:mid ~cls ~tests) t.chains

let node_count t = t.n_nodes
let stats_activations t = t.activations
