open Psme_support
open Psme_ops5

type inst = {
  prod : Sym.t;
  token : Token.t;
}

let inst_equal a b = Sym.equal a.prod b.prod && Token.equal a.token b.token

module H = Hashtbl.Make (struct
  type t = inst

  let equal = inst_equal
  let hash i = (Sym.hash i.prod * 31) + Token.hash i.token land max_int
end)

(* Reference counted: within a buffered cycle the add and the delete of
   the same instantiation may arrive in either order on different match
   processes; a delete-before-add leaves a negative entry that the add
   annihilates, so the final contents are schedule-independent. *)
type entry = { mutable refs : int; mutable fired : bool }

type t = {
  lock : Mutex.t;
  tbl : entry H.t;
}

let create () = { lock = Mutex.create (); tbl = H.create 256 }

let add t inst =
  Mutex.protect t.lock (fun () ->
      match H.find_opt t.tbl inst with
      | Some e ->
        e.refs <- e.refs + 1;
        if e.refs = 0 then H.remove t.tbl inst
      | None -> H.replace t.tbl inst { refs = 1; fired = false })

let remove t inst =
  Mutex.protect t.lock (fun () ->
      match H.find_opt t.tbl inst with
      | Some e ->
        e.refs <- e.refs - 1;
        if e.refs = 0 then H.remove t.tbl inst
      | None -> H.replace t.tbl inst { refs = -1; fired = false })

let mem t inst =
  Mutex.protect t.lock (fun () ->
      match H.find_opt t.tbl inst with Some e -> e.refs >= 1 | None -> false)

let size t =
  Mutex.protect t.lock (fun () ->
      H.fold (fun _ e acc -> if e.refs >= 1 then acc + 1 else acc) t.tbl 0)

let compare_inst a b =
  let c = String.compare (Sym.name a.prod) (Sym.name b.prod) in
  if c <> 0 then c
  else
    let ta = Array.map (fun w -> w.Wme.timetag) (Token.wmes a.token)
    and tb = Array.map (fun w -> w.Wme.timetag) (Token.wmes b.token) in
    Stdlib.compare ta tb

let sorted t pred =
  Mutex.protect t.lock (fun () ->
      H.fold (fun i e acc -> if e.refs >= 1 && pred e then i :: acc else acc) t.tbl [])
  |> List.sort compare_inst

let pending t = sorted t (fun e -> not e.fired)
let to_list t = sorted t (fun _ -> true)

let mark_fired t inst =
  Mutex.protect t.lock (fun () ->
      match H.find_opt t.tbl inst with
      | Some e -> e.fired <- true
      | None -> ())

let clear t = Mutex.protect t.lock (fun () -> H.reset t.tbl)

let pp ppf t =
  List.iter
    (fun i -> Format.fprintf ppf "%a %a@." Sym.pp i.prod Token.pp i.token)
    (to_list t)
