open Psme_support

type t = {
  cls : Sym.t;
  fields : Value.t array;
  timetag : int;
}

let make ~cls ~fields ~timetag = { cls; fields; timetag }

let[@inline] field t i = t.fields.(i)

let same_contents a b =
  Sym.equal a.cls b.cls
  && Array.length a.fields = Array.length b.fields
  && begin
    let ok = ref true in
    Array.iteri (fun i v -> if not (Value.equal v b.fields.(i)) then ok := false) a.fields;
    !ok
  end

let equal a b = a.timetag = b.timetag
let compare a b = Stdlib.compare a.timetag b.timetag

let hash t =
  Array.fold_left
    (fun acc v -> (acc * 31) + Value.hash v)
    (Sym.hash t.cls) t.fields
  land max_int

let pp schema ppf t =
  Format.fprintf ppf "(%a" Sym.pp t.cls;
  Array.iteri
    (fun i v ->
      if not (Value.is_nil v) then
        Format.fprintf ppf " ^%a %a" Sym.pp (Schema.attr_name schema t.cls i) Value.pp v)
    t.fields;
  Format.fprintf ppf ")";
  Format.fprintf ppf "@@%d" t.timetag

let pp_plain ppf t =
  Format.fprintf ppf "(%a" Sym.pp t.cls;
  Array.iter (fun v -> Format.fprintf ppf " %a" Value.pp v) t.fields;
  Format.fprintf ppf ")@@%d" t.timetag
