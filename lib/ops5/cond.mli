(** Condition elements: the left-hand-side patterns of productions. *)

open Psme_support

type relation = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Oconst of Value.t
  | Ovar of string  (** must be bound by an earlier (or same-CE earlier) test *)

type test =
  | T_const of Value.t  (** constant equality, e.g. [^color blue] *)
  | T_var of string     (** variable bind-or-equality, e.g. [^name <x>] *)
  | T_rel of relation * operand  (** predicate test, e.g. [^size > 3], [^on <> <x>] *)
  | T_disj of Value.t list       (** [^color << red blue >>] *)
  | T_conj of test list          (** [^size { <s> > 3 }] *)

type ce = {
  cls : Sym.t;
  tests : (int * test) list;  (** (field index, test), sorted by field *)
}

type t =
  | Pos of ce
  | Neg of ce
  | Ncc of t list
      (** conjunctive negation: no combination of wmes matches the whole
          group (the Soar extension; OPS5 negation only covers one CE) *)

val ce : Sym.t -> (int * test) list -> ce
(** Smart constructor: sorts tests by field index and checks for
    duplicate constant tests on one field. *)

val eval_relation : relation -> Value.t -> Value.t -> bool
(** [eval_relation rel actual expected]. Ordering relations on
    non-numeric operands fall back to {!Value.compare}. *)

val atoms : test -> test list
(** Flatten a test ([T_conj] included) into atomic constraints, in
    evaluation order. *)

val tests_by_field : ce -> (int * test list) list
(** The CE's tests grouped per field: conjunctions flattened, atoms
    deduplicated, fields ascending. The normal form the static analyses
    ({!Psme_check.Domain}, join-cost estimation) consume. *)

val normalize_ce : ce -> ce
(** Canonical form: one entry per field, atoms flattened, deduplicated
    and sorted. Two CEs with equal canonical forms accept exactly the
    same wmes, so normalized structural equality is a sound (incomplete)
    CE-equivalence test. *)

val test_is_alpha : test -> bool
(** True when the test depends only on the candidate wme (constants,
    disjunctions, predicates against constants) and can run in the alpha
    network. *)

val vars_of_test : test -> string list
(** Variables occurring in a test, binding occurrences first. *)

val vars_of_ce : ce -> string list
val vars : t -> string list

val positives : t list -> ce list
(** All positive CEs in order, descending into NCC groups. *)

val count_ces : t list -> int
(** Total number of primitive CEs (positive and negative, inside NCCs
    too) — the paper's "number of condition elements" metric. *)

val pp_test : Format.formatter -> test -> unit
val pp_ce : Schema.t -> Format.formatter -> ce -> unit
val pp : Schema.t -> Format.formatter -> t -> unit
