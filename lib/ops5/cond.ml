open Psme_support

type relation = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Oconst of Value.t
  | Ovar of string

type test =
  | T_const of Value.t
  | T_var of string
  | T_rel of relation * operand
  | T_disj of Value.t list
  | T_conj of test list

type ce = {
  cls : Sym.t;
  tests : (int * test) list;
}

type t =
  | Pos of ce
  | Neg of ce
  | Ncc of t list

let ce cls tests =
  let tests = List.stable_sort (fun (a, _) (b, _) -> Stdlib.compare a b) tests in
  let rec check = function
    | (f1, T_const _) :: ((f2, T_const _) :: _ as rest) ->
      if f1 = f2 then
        invalid_arg "Cond.ce: two constant tests on the same field";
      check rest
    | _ :: rest -> check rest
    | [] -> ()
  in
  check tests;
  { cls; tests }

let eval_relation rel actual expected =
  match rel with
  | Eq -> Value.equal actual expected
  | Ne -> not (Value.equal actual expected)
  | Lt | Le | Gt | Ge -> (
    let cmp =
      match Value.numeric actual, Value.numeric expected with
      | Some a, Some b -> Stdlib.compare a b
      | _ -> Value.compare actual expected
    in
    match rel with
    | Lt -> cmp < 0
    | Le -> cmp <= 0
    | Gt -> cmp > 0
    | Ge -> cmp >= 0
    | Eq | Ne -> assert false)

(* --- normalization helpers (static analysis) ----------------------- *)

(* Flatten a test ([T_conj] included) into its atomic constraints, in
   evaluation order. *)
let rec atoms = function
  | T_conj ts -> List.concat_map atoms ts
  | t -> [ t ]

(* A CE's tests grouped per field: conjunctions flattened, fields in
   ascending order (the order [ce] already guarantees), atoms within a
   field deduplicated structurally. *)
let tests_by_field c =
  let by_field = Hashtbl.create 8 in
  let fields = ref [] in
  List.iter
    (fun (f, t) ->
      if not (Hashtbl.mem by_field f) then fields := f :: !fields;
      Hashtbl.replace by_field f
        (Option.value ~default:[] (Hashtbl.find_opt by_field f) @ atoms t))
    c.tests;
  List.rev_map
    (fun f ->
      let ts = Hashtbl.find by_field f in
      let rec dedup seen = function
        | [] -> List.rev seen
        | t :: rest ->
          if List.exists (fun t' -> t' = t) seen then dedup seen rest
          else dedup (t :: seen) rest
      in
      (f, dedup [] ts))
    !fields

(* Canonical form for structural comparison: one entry per field, atoms
   flattened, deduplicated and sorted. Two CEs with the same canonical
   form accept exactly the same wmes. *)
let normalize_ce c =
  {
    c with
    tests =
      List.map
        (fun (f, ts) ->
          match List.sort Stdlib.compare ts with
          | [ t ] -> (f, t)
          | ts -> (f, T_conj ts))
        (tests_by_field c);
  }

let rec test_is_alpha = function
  | T_const _ | T_disj _ -> true
  | T_rel (_, Oconst _) -> true
  | T_rel (_, Ovar _) | T_var _ -> false
  | T_conj ts -> List.for_all test_is_alpha ts

let rec vars_of_test = function
  | T_var v -> [ v ]
  | T_rel (_, Ovar v) -> [ v ]
  | T_conj ts -> List.concat_map vars_of_test ts
  | T_const _ | T_rel (_, Oconst _) | T_disj _ -> []

let vars_of_ce ce = List.concat_map (fun (_, t) -> vars_of_test t) ce.tests

let rec vars = function
  | Pos ce | Neg ce -> vars_of_ce ce
  | Ncc group -> List.concat_map vars group

let rec positives conds =
  List.concat_map
    (function
      | Pos ce -> [ ce ]
      | Neg _ -> []
      | Ncc group -> positives group)
    conds

let rec count_ces conds =
  List.fold_left
    (fun acc c ->
      acc
      +
      match c with
      | Pos _ | Neg _ -> 1
      | Ncc group -> count_ces group)
    0 conds

let pp_relation ppf = function
  | Eq -> Format.pp_print_string ppf "="
  | Ne -> Format.pp_print_string ppf "<>"
  | Lt -> Format.pp_print_string ppf "<"
  | Le -> Format.pp_print_string ppf "<="
  | Gt -> Format.pp_print_string ppf ">"
  | Ge -> Format.pp_print_string ppf ">="

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Ovar v -> Format.fprintf ppf "<%s>" v

let rec pp_test ppf = function
  | T_const v -> Value.pp ppf v
  | T_var v -> Format.fprintf ppf "<%s>" v
  | T_rel (r, o) -> Format.fprintf ppf "%a %a" pp_relation r pp_operand o
  | T_disj vs ->
    Format.fprintf ppf "<< %a >>"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Value.pp)
      vs
  | T_conj ts ->
    Format.fprintf ppf "{ %a }"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_test)
      ts

let pp_ce schema ppf ce =
  Format.fprintf ppf "(%a" Sym.pp ce.cls;
  List.iter
    (fun (i, t) ->
      Format.fprintf ppf " ^%a %a" Sym.pp (Schema.attr_name schema ce.cls i) pp_test t)
    ce.tests;
  Format.fprintf ppf ")"

let rec pp schema ppf = function
  | Pos ce -> pp_ce schema ppf ce
  | Neg ce -> Format.fprintf ppf "-%a" (pp_ce schema) ce
  | Ncc group ->
    Format.fprintf ppf "-{%a}"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (pp schema))
      group
