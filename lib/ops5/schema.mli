(** Class declarations ([literalize] in OPS5).

    A schema maps each wme class to its ordered attribute list, fixing
    the field index used for that attribute in every wme of the class.
    The Rete compiler and the parser both consult the schema; declaring
    classes up front (rather than hashing attribute names at match time)
    is what lets conditions compile to direct array indexing. *)

open Psme_support

type t

val create : unit -> t

val declare : t -> string -> string list -> unit
(** [declare schema cls attrs] registers class [cls] with named
    attributes [attrs] (in field order). Re-declaring a class with the
    same attributes is a no-op; with different attributes it raises
    [Invalid_argument]. *)

val declared : t -> Sym.t -> bool
val arity : t -> Sym.t -> int
(** Number of attributes of a class. Raises [Not_found] if undeclared. *)

val field_index : t -> Sym.t -> Sym.t -> int
(** [field_index schema cls attr] is the field slot of [attr] in [cls].
    Raises [Not_found] if the class or attribute is unknown. *)

val attr_name : t -> Sym.t -> int -> Sym.t
(** Inverse of {!field_index}. *)

val attributes : t -> Sym.t -> Sym.t list
(** All attributes of a class, in field order. Raises [Not_found] if the
    class is undeclared. *)

val classes : t -> Sym.t list
(** All declared classes, in declaration order. *)

val copy : t -> t
