open Psme_support

type cls_info = {
  attrs : Sym.t array;
  index : (Sym.t, int) Hashtbl.t;
}

type t = {
  classes : (Sym.t, cls_info) Hashtbl.t;
  mutable order : Sym.t list; (* reverse declaration order *)
}

let create () = { classes = Hashtbl.create 64; order = [] }

let declare t cls attrs =
  let cls = Sym.intern cls in
  let attrs = Array.of_list (List.map Sym.intern attrs) in
  match Hashtbl.find_opt t.classes cls with
  | Some info ->
    if info.attrs <> attrs then
      invalid_arg
        (Printf.sprintf "Schema.declare: class %s re-declared with different attributes"
           (Sym.name cls))
  | None ->
    let index = Hashtbl.create (Array.length attrs) in
    Array.iteri (fun i a -> Hashtbl.replace index a i) attrs;
    Hashtbl.replace t.classes cls { attrs; index };
    t.order <- cls :: t.order

let declared t cls = Hashtbl.mem t.classes cls

let info t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some i -> i
  | None -> raise Not_found

let arity t cls = Array.length (info t cls).attrs

let field_index t cls attr =
  match Hashtbl.find_opt (info t cls).index attr with
  | Some i -> i
  | None -> raise Not_found

let attr_name t cls i = (info t cls).attrs.(i)

let attributes t cls = Array.to_list (info t cls).attrs

let classes t = List.rev t.order

let copy t =
  let t' = create () in
  List.iter
    (fun cls ->
      let i = info t cls in
      Hashtbl.replace t'.classes cls i;
      t'.order <- cls :: t'.order)
    (classes t);
  t'
