(** Vector clocks over a fixed set of processes.

    The race detector builds one component per (virtual) processor; the
    happens-before order of two tasks is the componentwise order of the
    spawning task's completion clock and the spawned task's start
    clock. *)

type t

val create : int -> t
(** All components zero. *)

val copy : t -> t
val incr : t -> int -> unit
val join : t -> t -> unit
(** [join a b] sets [a] to the componentwise maximum of [a] and [b]. *)

val leq : t -> t -> bool
(** Componentwise [<=]: [leq a b] means every event [a] has seen, [b]
    has seen too — i.e. [a] happens-before-or-equals [b]. *)

val get : t -> int -> int
val dim : t -> int
val pp : Format.formatter -> t -> unit
