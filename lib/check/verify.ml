open Psme_support
open Psme_ops5
open Psme_rete
open Network

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let node_name id = Printf.sprintf "node %d" id

let structure (net : Network.t) =
  let fs = ref [] in
  let err rule subject detail = fs := Finding.error ~rule ~subject detail :: !fs in
  let warn rule subject detail =
    fs := Finding.warning ~rule ~subject detail :: !fs
  in
  let checked = ref 0 in
  let max_id = ref (-1) in
  iter_nodes net (fun n ->
      incr checked;
      if n.id > !max_id then max_id := n.id;
      (* parent link *)
      (match n.parent with
      | None -> ()
      | Some p -> (
        match node_opt net p with
        | None ->
          err "missing-parent" (node_name n.id)
            (Printf.sprintf "parent %d does not exist" p)
        | Some pn ->
          if p >= n.id then
            err "id-order" (node_name n.id)
              (Printf.sprintf
                 "parent %d does not have a smaller id (the §5.2 monotone-ID \
                  invariant)"
                 p);
          if not (List.exists (fun (sid, _) -> sid = n.id) (successors pn)) then
            err "parent-link" (node_name n.id)
              (Printf.sprintf "parent %d does not list it as a successor" p)));
      (* successor edges *)
      List.iter
        (fun (sid, port) ->
          match node_opt net sid with
          | None ->
            err "succ-dangling" (node_name n.id)
              (Printf.sprintf "successor %d does not exist" sid)
          | Some child -> (
            if sid <= n.id then
              err "id-order" (node_name n.id)
                (Printf.sprintf "successor %d does not have a larger id" sid);
            match port with
            | P_left ->
              if child.parent <> Some n.id then
                err "parent-link" (node_name sid)
                  (Printf.sprintf
                     "receives a left edge from %d but does not name it as \
                      parent"
                     n.id)
            | P_right -> (
              match child.kind with
              | Ncc_partner _ ->
                if child.parent <> Some n.id then
                  err "parent-link" (node_name sid)
                    (Printf.sprintf
                       "NCC partner fed from %d but does not name it as parent"
                       n.id)
              | Bjoin _ -> ()
              | Entry | Join _ | Neg _ | Ncc _ | Pnode _ ->
                err "kind-wiring" (node_name sid)
                  "receives a right token edge but is neither an NCC partner \
                   nor a binary join")))
        (successors n);
      (* kind/wiring agreement *)
      (match n.kind with
      | Entry ->
        if n.parent <> None then
          err "kind-wiring" (node_name n.id) "entry node has a parent";
        if n.alpha_src = None then
          err "kind-wiring" (node_name n.id) "entry node has no alpha feed"
      | Join _ | Neg _ ->
        if n.parent = None then
          err "kind-wiring" (node_name n.id) "two-input node has no parent";
        if n.alpha_src = None then
          err "kind-wiring" (node_name n.id) "two-input node has no alpha feed"
      | Ncc _ | Bjoin _ | Pnode _ ->
        if n.parent = None then
          err "kind-wiring" (node_name n.id) "token node has no parent";
        if n.alpha_src <> None then
          err "kind-wiring" (node_name n.id) "token-only node has an alpha feed"
      | Ncc_partner { ncc; prefix_len } -> (
        if n.parent = None then
          err "kind-wiring" (node_name n.id) "NCC partner has no parent";
        if n.alpha_src <> None then
          err "kind-wiring" (node_name n.id) "NCC partner has an alpha feed";
        match node_opt net ncc with
        | None ->
          err "kind-wiring" (node_name n.id)
            (Printf.sprintf "names missing NCC node %d" ncc)
        | Some m -> (
          if ncc >= n.id then
            err "id-order" (node_name n.id)
              (Printf.sprintf "NCC node %d was not created before its partner"
                 ncc);
          match m.kind with
          | Ncc { prefix_len = pl } ->
            if pl <> prefix_len then
              err "kind-wiring" (node_name n.id)
                (Printf.sprintf "prefix length %d disagrees with NCC's %d"
                   prefix_len pl)
          | _ ->
            err "kind-wiring" (node_name n.id)
              (Printf.sprintf "node %d is not an NCC node" ncc))));
      match n.kind with
      | Pnode _ | Ncc_partner _ ->
        if successors n <> [] then
          err "kind-wiring" (node_name n.id) "terminal node has successors"
      | _ -> ());
  (* alpha feeds, both directions *)
  iter_nodes net (fun n ->
      match n.alpha_src with
      | None -> ()
      | Some a ->
        if not (Alpha.amem_exists net.alpha a) then
          err "alpha-unregistered" (node_name n.id)
            (Printf.sprintf "names missing alpha memory %d" a)
        else begin
          if a >= n.id then
            err "id-order" (node_name n.id)
              (Printf.sprintf "alpha memory %d does not have a smaller id" a);
          if not (List.mem n.id (Alpha.successors net.alpha ~amem:a)) then
            err "alpha-unregistered" (node_name n.id)
              (Printf.sprintf "not registered under its alpha memory %d" a)
        end);
  List.iter
    (fun a ->
      List.iter
        (fun sid ->
          match node_opt net sid with
          | None ->
            err "succ-dangling"
              (Printf.sprintf "amem %d" a)
              (Printf.sprintf "successor %d does not exist" sid)
          | Some sn ->
            if sn.alpha_src <> Some a then
              err "alpha-unregistered" (node_name sid)
                (Printf.sprintf
                   "registered under alpha memory %d but does not name it" a))
        (Alpha.successors net.alpha ~amem:a))
    (Alpha.amems net.alpha);
  (* explicit acyclicity (edge monotonicity already implies it) *)
  let color = Hashtbl.create 97 in
  let cyclic = ref false in
  let rec dfs id =
    match Hashtbl.find_opt color id with
    | Some 1 -> cyclic := true
    | Some _ -> ()
    | None ->
      Hashtbl.replace color id 1;
      (match node_opt net id with
      | None -> ()
      | Some n -> List.iter (fun (sid, _) -> dfs sid) (successors n));
      Hashtbl.replace color id 2
  in
  iter_nodes net (fun n -> dfs n.id);
  if !cyclic then err "cycle" "network" "successor graph contains a cycle";
  (* every P-node reachable from an entry node *)
  let fwd = Hashtbl.create 97 in
  let rec reach id =
    if not (Hashtbl.mem fwd id) then begin
      Hashtbl.replace fwd id ();
      match node_opt net id with
      | None -> ()
      | Some n ->
        List.iter (fun (sid, _) -> reach sid) (successors n);
        (match n.kind with Ncc_partner { ncc; _ } -> reach ncc | _ -> ())
    end
  in
  iter_nodes net (fun n -> if n.kind = Entry then reach n.id);
  List.iter
    (fun pm ->
      let pname = Sym.name pm.meta_production.Production.name in
      if not (Hashtbl.mem fwd pm.pnode) then
        err "unreachable-pnode" pname
          (Printf.sprintf "P-node %d is not reachable from any entry node"
             pm.pnode);
      (match node_opt net pm.pnode with
      | None -> err "pmeta" pname "P-node does not exist"
      | Some pn -> (
        match pn.kind with
        | Pnode pi ->
          if not (Sym.equal pi.production.Production.name
                    pm.meta_production.Production.name)
          then err "pmeta" pname "P-node names a different production"
        | _ -> err "pmeta" pname "pnode is not a P-node"));
      List.iter
        (fun cid ->
          if node_opt net cid = None then
            err "pmeta" pname (Printf.sprintf "chain node %d does not exist" cid))
        pm.chain)
    (productions net);
  (* every node feeds some P-node (no orphans after add/excise) *)
  let rev : (int, int list) Hashtbl.t = Hashtbl.create 97 in
  let add_rev ~src ~dst =
    Hashtbl.replace rev dst
      (src :: Option.value ~default:[] (Hashtbl.find_opt rev dst))
  in
  iter_nodes net (fun n ->
      List.iter (fun (sid, _) -> add_rev ~src:n.id ~dst:sid) (successors n);
      match n.kind with
      | Ncc_partner { ncc; _ } -> add_rev ~src:n.id ~dst:ncc
      | _ -> ());
  let back = Hashtbl.create 97 in
  let rec reach_back id =
    if not (Hashtbl.mem back id) then begin
      Hashtbl.replace back id ();
      List.iter reach_back (Option.value ~default:[] (Hashtbl.find_opt rev id))
    end
  in
  iter_nodes net (fun n ->
      match n.kind with Pnode _ -> reach_back n.id | _ -> ());
  iter_nodes net (fun n ->
      if not (Hashtbl.mem back n.id) then
        err "orphan-node" (node_name n.id) "feeds no production node");
  (* the single monotone counter is ahead of every allocated id *)
  if next_id net <= !max_id then
    err "counter" "network"
      (Printf.sprintf "next id %d is not beyond the largest node id %d"
         (next_id net) !max_id);
  (* structurally identical siblings defeat sharing *)
  if net.config.share then begin
    let by_parent : (int, node list) Hashtbl.t = Hashtbl.create 97 in
    iter_nodes net (fun n ->
        match (n.parent, n.kind) with
        | Some p, (Join _ | Neg _ | Bjoin _) ->
          Hashtbl.replace by_parent p
            (n :: Option.value ~default:[] (Hashtbl.find_opt by_parent p))
        | _ -> ());
    Hashtbl.iter
      (fun p kids ->
        let rec pairs = function
          | [] -> ()
          | k :: rest ->
            List.iter
              (fun k2 ->
                if k.kind = k2.kind && k.alpha_src = k2.alpha_src then
                  warn "share-missed" (node_name k2.id)
                    (Printf.sprintf
                       "structurally identical to sibling %d under parent %d \
                        despite sharing being enabled"
                       k.id p))
              rest;
            pairs rest
        in
        pairs kids)
      by_parent
  end;
  Finding.report ~checked:!checked (List.rev !fs)

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let token_tags tok =
  Array.to_list (Array.map (fun w -> w.Wme.timetag) (Token.wmes tok))

let tags_str tags = String.concat "," (List.map string_of_int tags)

let payload_tags = function
  | Memory.R_wme w -> (0, [ w.Wme.timetag ])
  | Memory.R_tok t -> (1, token_tags t)

type lrec = { mutable refs : int; mutable lcount : int; mutable n : int }

let left_map (net : Network.t) =
  let tbl : (int * int * int list, lrec) Hashtbl.t = Hashtbl.create 256 in
  Memory.fold_left_entries net.mem ~init:() ~f:(fun () ~node ~khash e ->
      let key = (node, khash, token_tags e.Memory.l_token) in
      match Hashtbl.find_opt tbl key with
      | Some r ->
        r.refs <- r.refs + e.Memory.l_refs;
        r.n <- r.n + 1
      | None ->
        Hashtbl.replace tbl key
          { refs = e.Memory.l_refs; lcount = e.Memory.l_count; n = 1 });
  tbl

let right_map (net : Network.t) =
  let tbl : (int * int * (int * int list), lrec) Hashtbl.t =
    Hashtbl.create 256
  in
  Memory.fold_right_entries net.mem ~init:() ~f:(fun () ~node ~khash ~refs p ->
      let key = (node, khash, payload_tags p) in
      match Hashtbl.find_opt tbl key with
      | Some r ->
        r.refs <- r.refs + refs;
        r.n <- r.n + 1
      | None -> Hashtbl.replace tbl key { refs; lcount = 0; n = 1 });
  tbl

let cs_fingerprint (net : Network.t) =
  Conflict_set.to_list net.cs
  |> List.map (fun i ->
         (Sym.name i.Conflict_set.prod, token_tags i.Conflict_set.token))
  |> List.sort compare

let state (net : Network.t) wmes =
  let fs = ref [] in
  let err rule subject detail = fs := Finding.error ~rule ~subject detail :: !fs in
  let checked = ref 0 in
  let prods = List.map (fun pm -> pm.meta_production) (productions net) in
  let net2 = Network.create ~config:net.config net.schema in
  match
    List.iter (fun p -> ignore (Build.add_production net2 p)) prods;
    ()
  with
  | exception e ->
    Finding.report
      [
        Finding.warning ~rule:"rebuild-mismatch" ~subject:"network"
          (Printf.sprintf "serial rebuild failed (%s); state check skipped"
             (Printexc.to_string e));
      ]
  | () ->
    let ids n = List.sort compare (fold_nodes n ~init:[] ~f:(fun acc x -> x.id :: acc)) in
    if ids net <> ids net2 then
      Finding.report
        [
          Finding.warning ~rule:"rebuild-mismatch" ~subject:"network"
            "rebuilding the production sequence yields different node ids \
             (a production was excised?); state check skipped";
        ]
    else begin
      ignore
        (Psme_engine.Serial.run_changes net2
           (List.map (fun w -> (Task.Add, w)) wmes));
      let describe_left (node, _kh, tags) =
        Printf.sprintf "node %d token [%s]" node (tags_str tags)
      in
      let describe_right (node, _kh, (_, tags)) =
        Printf.sprintf "node %d payload [%s]" node (tags_str tags)
      in
      let diff describe ~neg orig rebuilt =
        Hashtbl.iter
          (fun key (r : lrec) ->
            incr checked;
            if r.n > 1 then
              err "duplicate-entry" (describe key)
                (Printf.sprintf "%d memory entries for one key" r.n);
            match Hashtbl.find_opt rebuilt key with
            | None ->
              if r.refs > 0 then
                err "state-extra" (describe key)
                  "present in the live memories but absent from the serial \
                   rebuild"
              else
                err "stale-tombstone" (describe key)
                  (Printf.sprintf
                     "tombstone (refs %d) survives at quiescence" r.refs)
            | Some (r2 : lrec) ->
              if r.refs <> r2.refs then
                err "state-refcount" (describe key)
                  (Printf.sprintf
                     "live refcount %d, rebuilt %d — a duplicate or missing \
                      delivery (the §5.2 node-ID filter)"
                     r.refs r2.refs);
              if neg && r.lcount <> r2.lcount then
                err "state-negcount" (describe key)
                  (Printf.sprintf "live negative-join count %d, rebuilt %d"
                     r.lcount r2.lcount))
          orig;
        Hashtbl.iter
          (fun key _ ->
            if not (Hashtbl.mem orig key) then begin
              incr checked;
              err "state-missing" (describe key)
                "absent from the live memories but produced by the serial \
                 rebuild"
            end)
          rebuilt
      in
      diff describe_left ~neg:true (left_map net) (left_map net2);
      diff describe_right ~neg:false (right_map net) (right_map net2);
      let cs1 = cs_fingerprint net and cs2 = cs_fingerprint net2 in
      if cs1 <> cs2 then
        err "conflict-set-diff" "conflict set"
          (Printf.sprintf "live holds %d instantiation(s), rebuild %d — or \
                           they differ in content"
             (List.length cs1) (List.length cs2));
      Finding.report ~checked:!checked (List.rev !fs)
    end

let full net wmes = Finding.merge (structure net) (state net wmes)
