open Psme_support
open Psme_ops5

(* ------------------------------------------------------------------ *)
(* Per-CE satisfiability                                               *)
(* ------------------------------------------------------------------ *)

(* Flatten a field's tests ([T_conj] included) into atomic constraints. *)
let atoms = Cond.atoms

let rel_holds rel v c = Cond.eval_relation rel v c

(* Contradictory numeric bounds: fold Gt/Ge/Lt/Le constant operands into
   an interval and check it is non-empty. *)
let bounds_empty tests =
  let lo = ref neg_infinity and lo_strict = ref false in
  let hi = ref infinity and hi_strict = ref false in
  List.iter
    (fun t ->
      match t with
      | Cond.T_rel (rel, Cond.Oconst c) -> (
        match Value.numeric c with
        | None -> ()
        | Some x -> (
          match rel with
          | Cond.Gt ->
            if x > !lo || (x = !lo && not !lo_strict) then begin
              lo := x;
              lo_strict := true
            end
          | Cond.Ge -> if x > !lo then lo := x
          | Cond.Lt ->
            if x < !hi || (x = !hi && not !hi_strict) then begin
              hi := x;
              hi_strict := true
            end
          | Cond.Le -> if x < !hi then hi := x
          | Cond.Eq | Cond.Ne -> ()))
      | _ -> ())
    tests;
  !lo > !hi || (!lo = !hi && (!lo_strict || !hi_strict))

let field_unsat tests =
  let consts =
    List.filter_map (function
      | Cond.T_const v -> Some v
      | Cond.T_rel (Cond.Eq, Cond.Oconst v) -> Some v
      | _ -> None)
      tests
  in
  let disjs =
    List.filter_map (function Cond.T_disj vs -> Some vs | _ -> None) tests
  in
  let const_clash =
    match consts with
    | v :: rest -> List.exists (fun v' -> not (Value.equal v v')) rest
    | [] -> false
  in
  let const_vs_disj =
    match consts with
    | v :: _ -> List.exists (fun vs -> not (List.exists (Value.equal v) vs)) disjs
    | [] -> false
  in
  let empty_disj = List.exists (fun vs -> vs = []) disjs in
  let disjoint_disjs =
    match disjs with
    | a :: rest ->
      List.exists
        (fun b -> not (List.exists (fun v -> List.exists (Value.equal v) b) a))
        rest
    | [] -> false
  in
  let const_vs_pred =
    match consts with
    | v :: _ ->
      List.exists
        (function
          | Cond.T_rel (rel, Cond.Oconst c) -> not (rel_holds rel v c)
          | _ -> false)
        tests
    | [] -> false
  in
  const_clash || const_vs_disj || empty_disj || disjoint_disjs || const_vs_pred
  || bounds_empty tests

let ce_unsat (ce : Cond.ce) =
  (* group tests by field *)
  let by_field = Hashtbl.create 8 in
  List.iter
    (fun (f, t) ->
      Hashtbl.replace by_field f
        (atoms t @ Option.value ~default:[] (Hashtbl.find_opt by_field f)))
    ce.Cond.tests;
  Hashtbl.fold (fun _ tests acc -> acc || field_unsat tests) by_field false

(* ------------------------------------------------------------------ *)
(* Variable accounting                                                 *)
(* ------------------------------------------------------------------ *)

let rec test_vars = function
  | Cond.T_const _ | Cond.T_disj _ | Cond.T_rel (_, Cond.Oconst _) -> []
  | Cond.T_var v | Cond.T_rel (_, Cond.Ovar v) -> [ v ]
  | Cond.T_conj ts -> List.concat_map test_vars ts

let ce_var_occurrences (ce : Cond.ce) =
  List.concat_map (fun (_, t) -> test_vars t) ce.Cond.tests

let rec cond_var_occurrences = function
  | Cond.Pos ce | Cond.Neg ce -> ce_var_occurrences ce
  | Cond.Ncc cs -> List.concat_map cond_var_occurrences cs

let var_occurrences (p : Production.t) =
  List.concat_map cond_var_occurrences p.Production.lhs
  @ List.concat_map Action.vars p.Production.rhs

(* ------------------------------------------------------------------ *)
(* Schema checks                                                       *)
(* ------------------------------------------------------------------ *)

let schema_findings schema pname (p : Production.t) =
  let fs = ref [] in
  let check_ce (ce : Cond.ce) =
    if not (Schema.declared schema ce.Cond.cls) then
      fs :=
        Finding.error ~rule:"undeclared-class" ~subject:pname
          (Printf.sprintf "condition names undeclared class %s"
             (Sym.name ce.Cond.cls))
        :: !fs
    else
      let arity = Schema.arity schema ce.Cond.cls in
      List.iter
        (fun (f, _) ->
          if f < 0 || f >= arity then
            fs :=
              Finding.error ~rule:"bad-field" ~subject:pname
                (Printf.sprintf "field %d is out of range for class %s" f
                   (Sym.name ce.Cond.cls))
              :: !fs)
        ce.Cond.tests
  in
  let rec walk = function
    | Cond.Pos ce | Cond.Neg ce -> check_ce ce
    | Cond.Ncc cs -> List.iter walk cs
  in
  List.iter walk p.Production.lhs;
  let check_fields cls fields what =
    if not (Schema.declared schema cls) then
      fs :=
        Finding.error ~rule:"undeclared-class" ~subject:pname
          (Printf.sprintf "%s names undeclared class %s" what (Sym.name cls))
        :: !fs
    else
      let arity = Schema.arity schema cls in
      List.iter
        (fun (f, _) ->
          if f < 0 || f >= arity then
            fs :=
              Finding.error ~rule:"bad-field" ~subject:pname
                (Printf.sprintf "%s field %d is out of range for class %s" what
                   f (Sym.name cls))
              :: !fs)
        fields
  in
  List.iter
    (function
      | Action.Make (cls, fields) -> check_fields cls fields "make"
      | Action.Modify (i, fields) -> (
        match Production.positive_ce p i with
        | ce -> check_fields ce.Cond.cls fields "modify"
        | exception _ -> ())
      | Action.Remove _ | Action.Write _ | Action.Halt -> ())
    p.Production.rhs;
  !fs

(* ------------------------------------------------------------------ *)
(* Per-production rules                                                *)
(* ------------------------------------------------------------------ *)

let production schema (p : Production.t) =
  let pname = Sym.name p.Production.name in
  let fs = ref (schema_findings schema pname p) in
  let add f = fs := f :: !fs in
  (* unused variables: one occurrence total means the binding is never
     consulted (an unbound use would have been rejected at [make]) *)
  let occs = var_occurrences p in
  let freq = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.replace freq v (1 + Option.value ~default:0 (Hashtbl.find_opt freq v)))
    occs;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        if Hashtbl.find freq v = 1 then
          add
            (Finding.warning ~rule:"unused-variable" ~subject:pname
               (Printf.sprintf "variable <%s> is bound but never used" v))
      end)
    occs;
  (* unlinked positive CEs: cross-products *)
  let prev_vars = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      match c with
      | Cond.Pos ce ->
        let vars = ce_var_occurrences ce in
        if
          i > 0 && vars <> []
          && not (List.exists (Hashtbl.mem prev_vars) vars)
        then
          add
            (Finding.warning ~rule:"unlinked-ce" ~subject:pname
               (Printf.sprintf
                  "condition %d shares no variable with any earlier positive \
                   condition (cross-product join)"
                  (i + 1)));
        List.iter (fun v -> Hashtbl.replace prev_vars v ()) vars
      | Cond.Neg _ | Cond.Ncc _ -> ())
    p.Production.lhs;
  (* unsatisfiable CEs *)
  let rec walk_unsat path = function
    | Cond.Pos ce | Cond.Neg ce ->
      if ce_unsat ce then
        add
          (Finding.error ~rule:"unsatisfiable-ce" ~subject:pname
             (Printf.sprintf
                "condition %s on class %s has contradictory tests and can \
                 never match"
                path (Sym.name ce.Cond.cls)))
    | Cond.Ncc cs ->
      List.iteri (fun j c -> walk_unsat (path ^ "." ^ string_of_int (j + 1)) c) cs
  in
  List.iteri
    (fun i c -> walk_unsat (string_of_int (i + 1)) c)
    p.Production.lhs;
  (* duplicate CEs and self-blocking negations (top level) *)
  let rec dups = function
    | [] -> ()
    | c :: rest ->
      (match c with
      | Cond.Pos ce ->
        if List.exists (fun c' -> c' = Cond.Pos ce) rest then
          add
            (Finding.warning ~rule:"duplicate-ce" ~subject:pname
               (Printf.sprintf "positive condition on %s appears twice"
                  (Sym.name ce.Cond.cls)));
        if List.exists (fun c' -> c' = Cond.Neg ce) rest then
          add
            (Finding.error ~rule:"unsatisfiable-production" ~subject:pname
               (Printf.sprintf
                  "condition on %s is both required and negated: its own \
                   match always blocks it"
                  (Sym.name ce.Cond.cls)))
      | Cond.Neg ce ->
        if List.exists (fun c' -> c' = Cond.Neg ce) rest then
          add
            (Finding.warning ~rule:"duplicate-ce" ~subject:pname
               (Printf.sprintf "negated condition on %s appears twice"
                  (Sym.name ce.Cond.cls)));
        if List.exists (fun c' -> c' = Cond.Pos ce) rest then
          add
            (Finding.error ~rule:"unsatisfiable-production" ~subject:pname
               (Printf.sprintf
                  "condition on %s is both required and negated: its own \
                   match always blocks it"
                  (Sym.name ce.Cond.cls)))
      | Cond.Ncc _ -> ());
      dups rest
  in
  dups p.Production.lhs;
  (* no-op modify *)
  List.iter
    (function
      | Action.Modify (i, []) ->
        add
          (Finding.warning ~rule:"no-op-modify" ~subject:pname
             (Printf.sprintf "modify of condition %d changes nothing" i))
      | _ -> ())
    p.Production.rhs;
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* Pragmas and whole programs                                          *)
(* ------------------------------------------------------------------ *)

let pragmas_of_source src = Finding.pragmas_of_source ~tool:"lint" src

let source schema src =
  let suppressed = Finding.suppressed_by ~tool:"lint" src in
  let prods =
    List.filter_map
      (function Parser.Prod p -> Some p | Parser.Literalize _ -> None)
      (Parser.parse_program schema src)
  in
  let fs = ref [] in
  List.iter (fun p -> fs := !fs @ production schema p) prods;
  (* duplicate productions across the program *)
  let rec dup_prods = function
    | [] -> ()
    | (p : Production.t) :: rest ->
      List.iter
        (fun (p' : Production.t) ->
          if
            p.Production.lhs = p'.Production.lhs
            && p.Production.rhs = p'.Production.rhs
          then
            fs :=
              !fs
              @ [
                  Finding.warning ~rule:"duplicate-production"
                    ~subject:(Sym.name p'.Production.name)
                    (Printf.sprintf "identical to production %s"
                       (Sym.name p.Production.name));
                ])
        rest;
      dup_prods rest
  in
  dup_prods prods;
  let kept, dropped = List.partition (fun f -> not (suppressed f)) !fs in
  Finding.report ~checked:(List.length prods) ~suppressed:(List.length dropped)
    kept
