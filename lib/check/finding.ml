type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;
  subject : string;
  detail : string;
}

type report = {
  findings : finding list;
  checked : int;
  suppressed : int;
}

let error ~rule ~subject detail = { severity = Error; rule; subject; detail }
let warning ~rule ~subject detail = { severity = Warning; rule; subject; detail }

let report ?(checked = 0) ?(suppressed = 0) findings =
  { findings; checked; suppressed }

let empty = { findings = []; checked = 0; suppressed = 0 }

let merge a b =
  {
    findings = a.findings @ b.findings;
    checked = a.checked + b.checked;
    suppressed = a.suppressed + b.suppressed;
  }

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors = count Error
let warnings = count Warning

let exit_code ?(strict = false) r =
  if errors r > 0 then 1
  else if strict && r.findings <> [] then 1
  else 0

let pp_finding ppf f =
  Format.fprintf ppf "%s[%s] %s: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.rule f.subject f.detail

let pp ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) r.findings;
  Format.fprintf ppf "%d finding(s) (%d error(s), %d warning(s)), %d checked"
    (List.length r.findings) (errors r) (warnings r) r.checked;
  if r.suppressed > 0 then Format.fprintf ppf ", %d suppressed" r.suppressed
