type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;
  subject : string;
  detail : string;
}

type report = {
  findings : finding list;
  checked : int;
  suppressed : int;
}

let error ~rule ~subject detail = { severity = Error; rule; subject; detail }
let warning ~rule ~subject detail = { severity = Warning; rule; subject; detail }

let report ?(checked = 0) ?(suppressed = 0) findings =
  { findings; checked; suppressed }

let empty = { findings = []; checked = 0; suppressed = 0 }

let merge a b =
  {
    findings = a.findings @ b.findings;
    checked = a.checked + b.checked;
    suppressed = a.suppressed + b.suppressed;
  }

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors = count Error
let warnings = count Warning

let exit_code ?(strict = false) r =
  if errors r > 0 then 1
  else if strict && r.findings <> [] then 1
  else 0

(* --- suppression pragmas -------------------------------------------- *)

(* [; <tool>: allow <rule> [<subject>]] comment lines, shared by the
   linter and the static analyzer so both suppress findings the same
   way. *)
let pragmas_of_source ~tool src =
  let prefix = "; " ^ tool ^ ": allow " in
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           let rest =
             String.sub line (String.length prefix)
               (String.length line - String.length prefix)
           in
           match String.split_on_char ' ' (String.trim rest) with
           | [ rule ] -> Some (rule, None)
           | rule :: prod :: _ -> Some (rule, Some prod)
           | [] -> None
         else None)

let suppressed_by ~tool src =
  let pragmas = pragmas_of_source ~tool src in
  fun f ->
    List.exists
      (fun (rule, prod) ->
        rule = f.rule
        && match prod with None -> true | Some p -> p = f.subject)
      pragmas

let to_json r =
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let finding f =
    Printf.sprintf
      "{\"severity\": \"%s\", \"rule\": \"%s\", \"subject\": \"%s\", \"detail\": \"%s\"}"
      (match f.severity with Error -> "error" | Warning -> "warning")
      (escape f.rule) (escape f.subject) (escape f.detail)
  in
  Printf.sprintf
    "{\"findings\": [%s], \"errors\": %d, \"warnings\": %d, \"checked\": %d, \"suppressed\": %d}"
    (String.concat ", " (List.map finding r.findings))
    (errors r) (warnings r) r.checked r.suppressed

let pp_finding ppf f =
  Format.fprintf ppf "%s[%s] %s: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.rule f.subject f.detail

let pp ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) r.findings;
  Format.fprintf ppf "%d finding(s) (%d error(s), %d warning(s)), %d checked"
    (List.length r.findings) (errors r) (warnings r) r.checked;
  if r.suppressed > 0 then Format.fprintf ppf ", %d suppressed" r.suppressed
