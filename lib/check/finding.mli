(** Findings: the common currency of the analysis suite.

    Every analyzer — the network verifier, the production linter, the
    race detector — reduces to a list of findings plus a count of the
    units it examined, so the CLI can render them uniformly and turn
    them into stable exit codes. *)

type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;  (** stable kebab-case rule name, e.g. ["id-order"] *)
  subject : string;  (** what it is about: a production, node, line... *)
  detail : string;
}

type report = {
  findings : finding list;
  checked : int;  (** units examined (nodes, productions, accesses) *)
  suppressed : int;  (** findings dropped by pragma annotations *)
}

val error : rule:string -> subject:string -> string -> finding
val warning : rule:string -> subject:string -> string -> finding

val report : ?checked:int -> ?suppressed:int -> finding list -> report
val merge : report -> report -> report
val empty : report

val errors : report -> int
val warnings : report -> int

val exit_code : ?strict:bool -> report -> int
(** 0 when clean, 1 when the report contains errors — or, under
    [strict], any finding at all. *)

val pragmas_of_source : tool:string -> string -> (string * string option) list
(** [; <tool>: allow <rule> [<subject>]] comment lines of a source text:
    (rule, optional subject) pairs. Shared by the linter ([tool:"lint"])
    and the static analyzer ([tool:"analyze"]). *)

val suppressed_by : tool:string -> string -> finding -> bool
(** Predicate over findings: suppressed by one of the source's pragmas
    (rule matches; subject matches or the pragma names none). *)

val to_json : report -> string
(** Machine-readable rendering: findings with severity/rule/subject/
    detail plus the error/warning/checked/suppressed counts. *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> report -> unit
