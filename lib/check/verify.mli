(** Rete network verifier: structural invariants and state consistency.

    {b Structure} ({!structure}) walks the live network and checks the
    wiring invariants the paper's incremental schemes rely on:

    - every edge (parent link, successor link, alpha feed) points at an
      existing node, and edges are strictly ID-increasing — the §5.2
      monotone-ID soundness condition for the update filter, which also
      makes the graph acyclic by construction (a DFS double-checks);
    - node kinds agree with their wiring (entries have no parent, joins
      and negatives have both a parent and an alpha feed, NCC partners
      name their NCC node, P-nodes terminate chains);
    - every node registered under an alpha memory names that memory, and
      vice versa;
    - every P-node is reachable from an entry node and every node feeds
      some P-node (no orphans after add/excise);
    - per-production metadata ([pmeta]) is consistent, and the ID
      counter is ahead of every allocated node.

    {b State} ({!state}) recomputes what the global hashed memories
    (§6.1) should contain: it rebuilds the same production sequence into
    a fresh network (builds are deterministic, so node IDs coincide),
    seeds the given working memory serially, and diffs the two memory
    snapshots entry by entry — reference counts included — plus the two
    conflict sets. A §5.2 update bug (duplicate delivery into a shared
    node, a missed replay) shows up as a refcount or missing-token
    diff. *)

open Psme_ops5
open Psme_rete

val structure : Network.t -> Finding.report
(** [checked] counts beta nodes examined. *)

val state : Network.t -> Wme.t list -> Finding.report
(** [state net wmes] diffs [net]'s match state against a from-scratch
    rebuild seeded with [wmes] (the current working memory). Requires
    quiescence. If the network's production sequence cannot be rebuilt
    deterministically (a production was excised), the diff is skipped
    and a single [rebuild-mismatch] warning is reported. [checked]
    counts memory entries compared. *)

val full : Network.t -> Wme.t list -> Finding.report
(** {!structure} then {!state}, merged. *)
