(** Static network analyzer.

    Compile-time analysis over production sets and the built Rete
    network. Three families of rules (stable names, usable in
    [; analyze: allow <rule> [<subject>]] pragmas):

    {b Satisfiability} — abstract interpretation of condition tests over
    {!Domain}:

    - [unsat-condition] (error) — a positive CE has a field whose test
      conjunction admits no value: the production can never fire.
      Strictly stronger than the linter's [unsatisfiable-ce] (the domain
      folds constants, disjunctions, exclusions and mixed-kind ordering
      bounds together);
    - [vacuous-negation] (warning) — a negated CE (or a CE inside an NCC
      group) that can never match: the negation always passes.

    {b Redundancy} — condition-set implication under a variable
    substitution:

    - [shadowed-pair] (warning) — two productions with equivalent LHSs:
      they match exactly the same wme combinations;
    - [subsumed-production] (warning) — every match of this production is
      also a match of a more general one. With a network at hand the
      detail reports the duplicated structure in {!Psme_rete.Codesize}'s
      byte model.

    {b Join cost} — the {!Psme_rete.Jcost} static model:

    - [cross-product-join] (warning) — a join level sharing no variable
      with the conditions before it;
    - [join-cost] (warning) — the worst-case token count exceeds the
      quadratic bound;
    - [condition-reorder] (warning) — a dependency-respecting reordering
      cuts the predicted chain cost by ≥ 1.25x (the order the CLI's
      [--reorder] and [Network.config.reorder_joins] apply).

    {b Network} rules (need a built network):

    - [dead-alpha-memory] (error) — an alpha memory whose constant-test
      chain no wme can pass;
    - [dead-node] (error) — a beta node that can never emit a token:
      contradictory join tests, a dead right input, or a dead left
      input (complementing {!Verify.structure}, which flags nodes that
      are structurally orphaned rather than semantically dead). *)

open Psme_ops5
open Psme_rete

val production : Production.t -> Finding.finding list
(** Per-production rules: satisfiability and join cost. *)

val subsumes : Production.t -> Production.t -> bool
(** [subsumes p q]: every match of [q] is also a match of [p] — [p] is
    at least as general. Sound but incomplete (NCC groups and LHSs over
    8 positive CEs give [false]). *)

val productions : Production.t list -> Finding.report
(** Per-production rules plus the pairwise redundancy rules. *)

val network : Network.t -> Finding.report
(** The network rules over every alpha memory and beta node. *)

val static_costs : Production.t list -> (string * float) list
(** Predicted worst-case chain cost per production (model units) — the
    static side of the profiler-correlation validation. *)

val source : ?net:Network.t -> Schema.t -> string -> Finding.report
(** Parse a program (applying [literalize] forms to the schema), run
    every rule — the network rules only when [net] is given — and apply
    the source's [; analyze: allow] pragmas. Raises
    {!Parser.Parse_error} as the parser does. *)
