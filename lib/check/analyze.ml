open Psme_support
open Psme_ops5
open Psme_rete

(* --- per-CE satisfiability ------------------------------------------- *)

let field_domains ce =
  List.map (fun (f, atoms) -> (f, Domain.of_tests atoms)) (Cond.tests_by_field ce)

let unsat_fields ce =
  List.filter_map
    (fun (f, d) -> if Domain.is_empty d then Some f else None)
    (field_domains ce)

(* Primitive CEs of a LHS with their sign, NCC groups included (a CE
   inside an NCC counts as negated — its never matching makes the group
   vacuous, not the production). *)
let rec prims sign acc = function
  | [] -> acc
  | Cond.Pos ce :: rest -> prims sign ((sign, ce) :: acc) rest
  | Cond.Neg ce :: rest -> prims sign ((`Neg, ce) :: acc) rest
  | Cond.Ncc group :: rest -> prims sign (prims `Neg acc group) rest

let primitive_ces lhs = List.rev (prims `Pos [] lhs)

let satisfiability_findings (p : Production.t) =
  let name = Sym.name p.Production.name in
  List.concat
    (List.mapi
       (fun i (sign, ce) ->
         match unsat_fields ce with
         | [] -> []
         | fs ->
           let fields =
             String.concat ", " (List.map string_of_int fs)
           in
           let where =
             Printf.sprintf "CE %d (%s ^%s)" (i + 1)
               (match sign with `Pos -> "positive" | `Neg -> "negated")
               fields
           in
           [
             (match sign with
             | `Pos ->
               Finding.error ~rule:"unsat-condition" ~subject:name
                 (Printf.sprintf
                    "%s: no value can satisfy the field's tests; the \
                     production can never fire"
                    where)
             | `Neg ->
               Finding.warning ~rule:"vacuous-negation" ~subject:name
                 (Printf.sprintf
                    "%s: the negated pattern can never match, so the \
                     negation always passes"
                    where));
           ])
       (primitive_ces p.Production.lhs))

(* --- subsumption / shadowing ----------------------------------------- *)

(* θ maps variables of the subsuming (more general) production P to
   variables of the subsumed Q. *)
let extend theta x y =
  match List.assoc_opt x theta with
  | Some y' -> if String.equal y y' then Some theta else None
  | None -> Some ((x, y) :: theta)

let var_atoms atoms =
  List.filter_map
    (function
      | Cond.T_var v -> Some (Cond.Eq, v)
      | Cond.T_rel (rel, Cond.Ovar v) -> Some (rel, v)
      | _ -> None)
    atoms

let const_domain atoms =
  Domain.of_tests
    (List.filter
       (function
         | Cond.T_var _ | Cond.T_rel (_, Cond.Ovar _) -> false
         | _ -> true)
       atoms)

(* [ce_covers ~link theta ~lo ~hi]: every wme matching [lo] also matches
   [hi]. Constant constraints via exact per-field domain containment;
   each variable atom of [hi] must be mirrored at the same field in [lo]
   with the same relation, the pairing recorded through [link] (which
   updates θ or refuses). Returns every consistent θ (the caller
   backtracks over them). *)
let ce_covers ~link theta ~(lo : Cond.ce) ~(hi : Cond.ce) =
  if not (Sym.equal lo.Cond.cls hi.Cond.cls) then []
  else begin
    let lo_fields = Cond.tests_by_field lo in
    let atoms_at f = Option.value ~default:[] (List.assoc_opt f lo_fields) in
    List.fold_left
      (fun thetas (f, hi_atoms) ->
        if thetas = [] then []
        else begin
          let lo_atoms = atoms_at f in
          if not (Domain.leq (const_domain lo_atoms) (const_domain hi_atoms))
          then []
          else
            let lo_vars = var_atoms lo_atoms in
            List.fold_left
              (fun thetas (rel, hv) ->
                List.concat_map
                  (fun theta ->
                    List.filter_map
                      (fun (rel', lv) ->
                        if rel' = rel then link theta hv lv else None)
                      lo_vars)
                  thetas)
              thetas (var_atoms hi_atoms)
        end)
      [ theta ]
      (Cond.tests_by_field hi)
  end

let split_signed lhs =
  let pos = ref [] and neg = ref [] and ncc = ref false in
  List.iter
    (function
      | Cond.Pos ce -> pos := ce :: !pos
      | Cond.Neg ce -> neg := ce :: !neg
      | Cond.Ncc _ -> ncc := true)
    lhs;
  (List.rev !pos, List.rev !neg, !ncc)

let max_subsume_ces = 8

(* [subsumes p q]: every match of [q] is a match of [p] (p is the more
   general production). Sound but incomplete: NCC groups and very long
   LHSs bail out to [false]. *)
let subsumes (p : Production.t) (q : Production.t) =
  let p_pos, p_neg, p_ncc = split_signed p.Production.lhs in
  let q_pos, q_neg, q_ncc = split_signed q.Production.lhs in
  if p_ncc || q_ncc then false
  else if List.length p_pos > max_subsume_ces
          || List.length q_pos > max_subsume_ces
  then false
  else begin
    (* positives: map each CE of p onto some CE of q such that the q CE
       is at least as specific (p vars on the hi side) *)
    let link_pos theta pv qv = extend theta pv qv in
    (* negatives: p's negation must be implied, i.e. every wme matching
       p's negated pattern (θ-mapped) matches q's (q vars on the hi
       side) *)
    let link_neg theta qv pv = extend theta pv qv in
    let rec assign_neg theta = function
      | [] -> true
      | n_p :: rest ->
        List.exists
          (fun n_q ->
            List.exists
              (fun theta -> assign_neg theta rest)
              (ce_covers ~link:link_neg theta ~lo:n_p ~hi:n_q))
          q_neg
    in
    let rec assign_pos theta = function
      | [] -> assign_neg theta p_neg
      | p_ce :: rest ->
        List.exists
          (fun q_ce ->
            List.exists
              (fun theta -> assign_pos theta rest)
              (ce_covers ~link:link_pos theta ~lo:q_ce ~hi:p_ce))
          q_pos
    in
    assign_pos [] p_pos
  end

(* Wasted structure of a duplicated chain, in Codesize's byte model:
   the beta nodes of [q]'s chain that [p]'s chain does not share. *)
let wasted_nodes net (pm : Network.pmeta) (qm : Network.pmeta) =
  let unshared =
    List.filter (fun id -> not (List.mem id pm.Network.chain)) qm.Network.chain
  in
  let bytes =
    List.fold_left
      (fun acc id ->
        match Network.node_opt net id with
        | Some n -> acc + Codesize.bytes_of_node net n
        | None -> acc)
      0 unshared
  in
  (List.length unshared, bytes)

let pair_findings ?net prods =
  let fs = ref [] in
  let emit f = fs := f :: !fs in
  let sharing_detail p q =
    match net with
    | None -> ""
    | Some net -> (
      match
        ( Network.find_production net p.Production.name,
          Network.find_production net q.Production.name )
      with
      | Some pm, Some qm ->
        let n, bytes = wasted_nodes net pm qm in
        if n = 0 then " (all beta nodes shared)"
        else
          Printf.sprintf " (%d unshared beta node(s), ~%d bytes of duplicated code)"
            n bytes
      | _ -> "")
  in
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
          let pq = subsumes p q and qp = subsumes q p in
          if pq && qp then
            emit
              (Finding.warning ~rule:"shadowed-pair"
                 ~subject:(Sym.name q.Production.name)
                 (Printf.sprintf
                    "LHS is equivalent to production %s: both match exactly \
                     the same wme combinations%s"
                    (Sym.name p.Production.name)
                    (sharing_detail p q)))
          else if pq then
            emit
              (Finding.warning ~rule:"subsumed-production"
                 ~subject:(Sym.name q.Production.name)
                 (Printf.sprintf
                    "subsumed by production %s: every match of this \
                     production is also a match of %s%s"
                    (Sym.name p.Production.name)
                    (Sym.name p.Production.name)
                    (sharing_detail p q)))
          else if qp then
            emit
              (Finding.warning ~rule:"subsumed-production"
                 ~subject:(Sym.name p.Production.name)
                 (Printf.sprintf
                    "subsumed by production %s: every match of this \
                     production is also a match of %s%s"
                    (Sym.name q.Production.name)
                    (Sym.name q.Production.name)
                    (sharing_detail q p))))
        rest;
      pairs rest
  in
  pairs prods;
  List.rev !fs

(* --- join-cost findings ---------------------------------------------- *)

let order_to_string order =
  String.concat " "
    (Array.to_list (Array.map (fun i -> string_of_int (i + 1)) order))

let reorder_gain = 1.25

let cost_findings (p : Production.t) =
  let name = Sym.name p.Production.name in
  let ch = Jcost.chain p in
  let fs = ref [] in
  if ch.Jcost.ch_cross <> [] then begin
    let cross_scan =
      List.fold_left (fun acc (_, st) -> acc +. st.Jcost.st_scan) 0.
        (List.filteri
           (fun i _ -> List.mem i ch.Jcost.ch_cross)
           (List.mapi (fun i st -> (i, st)) ch.Jcost.ch_steps))
    in
    fs :=
      Finding.warning ~rule:"cross-product-join" ~subject:name
        (Printf.sprintf
           "join level(s) %s share no variable with the preceding \
            conditions: every pairing matches (predicted scan work %.2f of \
            the chain's %.2f)"
           (String.concat ", "
              (List.map (fun l -> string_of_int (l + 1)) ch.Jcost.ch_cross))
           cross_scan ch.Jcost.ch_cost)
      :: !fs
  end;
  if ch.Jcost.ch_peak > Jcost.quadratic_bound () then
    fs :=
      Finding.warning ~rule:"join-cost" ~subject:name
        (Printf.sprintf
           "worst-case chain cost %.0f with peak token count %.0f exceeds \
            the quadratic bound %.0f"
           ch.Jcost.ch_cost ch.Jcost.ch_peak
           (Jcost.quadratic_bound ()))
      :: !fs;
  (match Jcost.suggest p with
  | Some better when ch.Jcost.ch_cost >= better.Jcost.ch_cost *. reorder_gain ->
    fs :=
      Finding.warning ~rule:"condition-reorder" ~subject:name
        (Printf.sprintf
           "reordering conditions as [%s] cuts the predicted chain cost \
            from %.0f to %.0f (%.1fx)"
           (order_to_string better.Jcost.ch_order)
           ch.Jcost.ch_cost better.Jcost.ch_cost
           (ch.Jcost.ch_cost /. better.Jcost.ch_cost))
      :: !fs
  | _ -> ());
  List.rev !fs

let static_costs prods =
  List.map
    (fun (p : Production.t) ->
      (Sym.name p.Production.name, (Jcost.chain p).Jcost.ch_cost))
    prods

(* --- network analysis: dead and vacuous nodes ------------------------- *)

let domain_of_atests tests =
  (* group the alpha chain's constant tests per field; A_same (intra-wme
     field relations) is not field-local, so it is skipped —
     conservative: skipping a constraint can only make the domain
     larger, never produce a false "dead" verdict *)
  let by_field = Hashtbl.create 8 in
  let touch f t =
    let old = try Hashtbl.find by_field f with Not_found -> [] in
    Hashtbl.replace by_field f (t :: old)
  in
  List.iter
    (fun t ->
      match t with
      | Alpha.A_const (f, v) -> touch f (Cond.T_const v)
      | Alpha.A_disj (f, vs) -> touch f (Cond.T_disj vs)
      | Alpha.A_rel (f, rel, v) -> touch f (Cond.T_rel (rel, Cond.Oconst v))
      | Alpha.A_same _ -> ())
    tests;
  Hashtbl.fold
    (fun f ts acc -> (f, Domain.of_tests (List.rev ts)) :: acc)
    by_field []

let amem_unsat tests =
  List.exists (fun (_, d) -> Domain.is_empty d) (domain_of_atests tests)

(* Contradictory pairs of join tests on the same (left field, right
   field) pair: the node can never pass a token. *)
let rels_contradict a b =
  match a, b with
  | Cond.Eq, (Cond.Ne | Cond.Lt | Cond.Gt)
  | Cond.Ne, Cond.Eq
  | Cond.Lt, (Cond.Gt | Cond.Ge | Cond.Eq)
  | Cond.Le, Cond.Gt
  | Cond.Gt, (Cond.Lt | Cond.Le | Cond.Eq)
  | Cond.Ge, Cond.Lt -> true
  | _ -> false

let two_input_contradiction (ti : Network.two_input) =
  let all = ti.Network.eq @ ti.Network.others in
  let rec scan = function
    | [] -> None
    | (j : Network.jtest) :: rest ->
      let clash =
        List.find_opt
          (fun (k : Network.jtest) ->
            j.Network.l_slot = k.Network.l_slot
            && j.Network.l_fld = k.Network.l_fld
            && j.Network.r_fld = k.Network.r_fld
            && rels_contradict j.Network.rel k.Network.rel)
          rest
      in
      (match clash with
      | Some k -> Some (j, k)
      | None -> scan rest)
  in
  scan all

let owners net id =
  List.filter_map
    (fun (pm : Network.pmeta) ->
      if List.mem id pm.Network.chain then
        Some (Sym.name pm.Network.meta_production.Production.name)
      else None)
    (Network.productions net)

let owners_str net id =
  match owners net id with
  | [] -> ""
  | ps -> Printf.sprintf " (production %s)" (String.concat ", " ps)

let network (net : Network.t) =
  let fs = ref [] in
  let emit f = fs := f :: !fs in
  let checked = ref 0 in
  (* 1. alpha memories whose constant-test chain is unsatisfiable *)
  let dead_amems = Hashtbl.create 8 in
  Alpha.iter_chains net.Network.alpha (fun ~amem ~cls ~tests ->
      incr checked;
      if amem_unsat tests then begin
        Hashtbl.replace dead_amems amem ();
        emit
          (Finding.error ~rule:"dead-alpha-memory"
             ~subject:(Printf.sprintf "amem %d" amem)
             (Printf.sprintf
                "no wme of class %s can pass its constant-test chain"
                (Sym.name cls)))
      end);
  (* 2. beta nodes with contradictory join tests *)
  let dead = Hashtbl.create 8 in
  Network.iter_nodes net (fun n ->
      incr checked;
      let contradiction =
        match n.Network.kind with
        | Network.Join ti | Network.Neg ti -> two_input_contradiction ti
        | _ -> None
      in
      match contradiction with
      | Some _ -> (
        match n.Network.kind with
        | Network.Join _ ->
          Hashtbl.replace dead n.Network.id ();
          emit
            (Finding.error ~rule:"dead-node"
               ~subject:(Printf.sprintf "node %d" n.Network.id)
               (Printf.sprintf
                  "join tests are contradictory: the node can never emit a \
                   token%s"
                  (owners_str net n.Network.id)))
        | _ ->
          emit
            (Finding.warning ~rule:"vacuous-negation"
               ~subject:(Printf.sprintf "node %d" n.Network.id)
               (Printf.sprintf
                  "negation tests are contradictory: the negation always \
                   passes%s"
                  (owners_str net n.Network.id))))
      | None -> ());
  (* 3. propagate: a node fed on the right by a dead alpha memory never
     right-activates; for joins and entries that kills the output, for
     negations it makes them vacuous. Then anything left-fed by a dead
     node is dead too. *)
  Network.iter_nodes net (fun n ->
      match n.Network.alpha_src with
      | Some am when Hashtbl.mem dead_amems am -> (
        match n.Network.kind with
        | Network.Entry | Network.Join _ | Network.Bjoin _ ->
          if not (Hashtbl.mem dead n.Network.id) then begin
            Hashtbl.replace dead n.Network.id ();
            emit
              (Finding.error ~rule:"dead-node"
                 ~subject:(Printf.sprintf "node %d" n.Network.id)
                 (Printf.sprintf
                    "right input is dead alpha memory %d: the node can \
                     never emit a token%s"
                    am (owners_str net n.Network.id)))
          end
        | Network.Neg _ ->
          emit
            (Finding.warning ~rule:"vacuous-negation"
               ~subject:(Printf.sprintf "node %d" n.Network.id)
               (Printf.sprintf
                  "right input is dead alpha memory %d: the negation always \
                   passes%s"
                  am (owners_str net n.Network.id)))
        | _ -> ())
      | _ -> ());
  (* transitive closure over left inputs, in id order (parents precede
     children thanks to the monotone-ID invariant) *)
  let ids =
    Network.fold_nodes net ~init:[] ~f:(fun acc n -> n.Network.id :: acc)
    |> List.sort compare
  in
  List.iter
    (fun id ->
      match Network.node_opt net id with
      | None -> ()
      | Some n -> (
        match n.Network.parent with
        | Some p when Hashtbl.mem dead p && not (Hashtbl.mem dead id) ->
          Hashtbl.replace dead id ();
          emit
            (Finding.error ~rule:"dead-node"
               ~subject:(Printf.sprintf "node %d" id)
               (Printf.sprintf
                  "left input node %d is dead: unreachable%s" p
                  (owners_str net id)))
        | _ -> ()))
    ids;
  Finding.report ~checked:!checked (List.rev !fs)

(* --- entry points ----------------------------------------------------- *)

let production (p : Production.t) =
  satisfiability_findings p @ cost_findings p

let productions prods =
  let per = List.concat_map production prods in
  let pairs = pair_findings prods in
  Finding.report ~checked:(List.length prods) (per @ pairs)

let source ?net schema src =
  let suppressed = Finding.suppressed_by ~tool:"analyze" src in
  let prods =
    List.filter_map
      (function Parser.Prod p -> Some p | Parser.Literalize _ -> None)
      (Parser.parse_program schema src)
  in
  let per = List.concat_map production prods in
  let pairs = pair_findings ?net prods in
  let net_report =
    match net with Some net -> network net | None -> Finding.empty
  in
  let all = per @ pairs @ net_report.Finding.findings in
  let kept, dropped = List.partition (fun f -> not (suppressed f)) all in
  Finding.report
    ~checked:(List.length prods + net_report.Finding.checked)
    ~suppressed:(List.length dropped)
    kept
