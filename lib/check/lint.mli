(** Schema-aware OPS5/Soar production linter.

    Rules (stable names, usable in pragmas):

    - [undeclared-class] (error) — a CE or [make] names a class absent
      from the schema;
    - [bad-field] (error) — a field index beyond the class arity;
    - [unsatisfiable-ce] (error) — a CE whose per-field constraints are
      contradictory (two different constants, a constant outside a
      disjunction, an empty disjunction, disjoint disjunctions, a
      constant failing a constant predicate, or contradictory numeric
      bounds): the production can never fire;
    - [unsatisfiable-production] (error) — a positive CE repeated
      verbatim as a top-level negation: its own match always blocks it;
    - [unused-variable] (warning) — a variable bound once and never
      consulted again (tests, negations, RHS);
    - [unlinked-ce] (warning) — a positive CE sharing no variable with
      any earlier positive CE: every pairing matches, a cross-product
      (the paper's null-memory blowup);
    - [duplicate-ce] (warning) — the same CE twice with the same sign;
    - [duplicate-production] (warning) — two productions with identical
      conditions and actions under different names;
    - [no-op-modify] (warning) — a [modify] that changes nothing.

    {b Pragmas.} A source comment of the form
    [; lint: allow <rule> [<production>]] suppresses the rule, for the
    named production or file-wide; suppressed findings are counted in
    the report. *)

open Psme_ops5

val production : Schema.t -> Production.t -> Finding.finding list
(** Per-production rules only (no cross-production or pragma logic). *)

val source : Schema.t -> string -> Finding.report
(** Parse a program (applying [literalize] forms to the schema), lint
    every production, apply cross-production rules and pragmas. Raises
    {!Parser.Parse_error} as the parser does. *)

val pragmas_of_source : string -> (string * string option) list
(** [(rule, production)] pairs; [None] = file-wide. *)
