open Psme_support
open Psme_ops5

(* The effective total preorder [eval_relation] applies when an ordering
   test compares a candidate value against a *constant*: numerics by
   magnitude (Int 3 and Float 3. tie), and across kinds the constructor
   order of [Value.compare] — symbols below all numbers, strings above.
   Ranking values this way lets the interval logic reason about mixed
   Int/Float bounds exactly. *)
let key = function
  | Value.Sym _ as v -> (0, v)
  | Value.Int i -> (1, Value.Float (float_of_int i))
  | Value.Float _ as v -> (1, v)
  | Value.Str _ as v -> (2, v)

let key_compare (r1, v1) (r2, v2) =
  if r1 <> r2 then Stdlib.compare r1 r2 else Value.compare v1 v2

type t = {
  members : Value.t list option;
      (* [Some vs]: exactly these values remain (each already satisfies
         every constraint applied so far; [excluded]/[rels] then stay
         empty). [None]: all values minus the constraints below. *)
  excluded : Value.t list;
  rels : (Cond.relation * Value.t) list;  (* Lt/Le/Gt/Ge only *)
}

let top = { members = None; excluded = []; rels = [] }
let bottom = { members = Some []; excluded = []; rels = [] }

(* Exact concrete membership: members are authoritative when finite,
   otherwise evaluate every recorded constraint the way the matcher
   would. *)
let mem d v =
  match d.members with
  | Some vs -> List.exists (Value.equal v) vs
  | None ->
    (not (List.exists (Value.equal v) d.excluded))
    && List.for_all (fun (rel, c) -> Cond.eval_relation rel v c) d.rels

let restrict_members d keep =
  match d.members with
  | Some vs -> { bottom with members = Some (List.filter keep vs) }
  | None -> assert false

let to_finite d vs =
  let vs =
    List.fold_left
      (fun acc v ->
        if mem d v && not (List.exists (Value.equal v) acc) then v :: acc
        else acc)
      [] vs
  in
  { bottom with members = Some (List.rev vs) }

let add_uniq v vs = if List.exists (Value.equal v) vs then vs else v :: vs

let rec constrain d test =
  match test with
  | Cond.T_var _ | Cond.T_rel (_, Cond.Ovar _) ->
    d (* variable links are join structure, not field-value constraints *)
  | Cond.T_conj ts -> List.fold_left constrain d ts
  | Cond.T_const c | Cond.T_rel (Cond.Eq, Cond.Oconst c) -> (
    match d.members with
    | Some _ -> restrict_members d (Value.equal c)
    | None -> to_finite d [ c ])
  | Cond.T_disj cs -> (
    match d.members with
    | Some _ -> restrict_members d (fun v -> List.exists (Value.equal v) cs)
    | None -> to_finite d cs)
  | Cond.T_rel (Cond.Ne, Cond.Oconst c) -> (
    match d.members with
    | Some _ -> restrict_members d (fun v -> not (Value.equal v c))
    | None -> { d with excluded = add_uniq c d.excluded })
  | Cond.T_rel ((Cond.Lt | Cond.Le | Cond.Gt | Cond.Ge) as rel, Cond.Oconst c)
    -> (
    match d.members with
    | Some _ -> restrict_members d (fun v -> Cond.eval_relation rel v c)
    | None -> { d with rels = (rel, c) :: d.rels })

let of_tests ts = List.fold_left constrain top ts

(* Greatest lower / least upper bound over the rank order. Both present
   and contradictory -> no value can pass: a value either obeys the rank
   order exactly (same kind or numeric vs numeric) or sits strictly
   outside both bounds' rank band, failing one of them. *)
let bounds d =
  let lo = ref None and hi = ref None in
  List.iter
    (fun (rel, c) ->
      let replace cell strict better =
        match !cell with
        | None -> cell := Some (strict, c)
        | Some (s0, c0) ->
          let cmp = key_compare (key c) (key c0) in
          if better cmp || (cmp = 0 && strict && not s0) then
            cell := Some (strict, c)
      in
      match rel with
      | Cond.Gt -> replace lo true (fun cmp -> cmp > 0)
      | Cond.Ge -> replace lo false (fun cmp -> cmp > 0)
      | Cond.Lt -> replace hi true (fun cmp -> cmp < 0)
      | Cond.Le -> replace hi false (fun cmp -> cmp < 0)
      | Cond.Eq | Cond.Ne -> ())
    d.rels;
  (!lo, !hi)

let is_empty d =
  match d.members with
  | Some [] -> true
  | Some _ -> false
  | None -> (
    match bounds d with
    | Some (lo_strict, lo), Some (hi_strict, hi) ->
      let cmp = key_compare (key lo) (key hi) in
      cmp > 0 || (cmp = 0 && (lo_strict || hi_strict))
    | _ -> false)

(* Does d1's constraint set imply rel2? Conservative: only via a single
   stronger bound of the same direction. *)
let implies_rel d1 (rel2, c2) =
  let k2 = key c2 in
  List.exists
    (fun (rel1, c1) ->
      let cmp = key_compare (key c1) k2 in
      match rel2, rel1 with
      | Cond.Gt, Cond.Gt -> cmp >= 0
      | Cond.Gt, Cond.Ge -> cmp > 0
      | Cond.Ge, (Cond.Gt | Cond.Ge) -> cmp >= 0
      | Cond.Lt, Cond.Lt -> cmp <= 0
      | Cond.Lt, Cond.Le -> cmp < 0
      | Cond.Le, (Cond.Lt | Cond.Le) -> cmp <= 0
      | _ -> false)
    d1.rels

let leq d1 d2 =
  match d1.members, d2.members with
  | Some vs, _ -> List.for_all (mem d2) vs
  | None, Some _ -> is_empty d1
  | None, None ->
    (* every exclusion of d2 must already be impossible under d1, and
       every ordering bound of d2 implied by one of d1's *)
    List.for_all (fun c -> not (mem d1 c)) d2.excluded
    && List.for_all (implies_rel d1) d2.rels

let equal d1 d2 = leq d1 d2 && leq d2 d1

let pp ppf d =
  match d.members with
  | Some [] -> Format.fprintf ppf "\xe2\x8a\xa5"
  | Some vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
         Value.pp)
      vs
  | None ->
    if d.excluded = [] && d.rels = [] then Format.fprintf ppf "\xe2\x8a\xa4"
    else begin
      let first = ref true in
      let sep () =
        if !first then first := false else Format.fprintf ppf " "
      in
      List.iter
        (fun c ->
          sep ();
          Format.fprintf ppf "<>%a" Value.pp c)
        d.excluded;
      List.iter
        (fun (rel, c) ->
          sep ();
          let s =
            match rel with
            | Cond.Lt -> "<"
            | Cond.Le -> "<="
            | Cond.Gt -> ">"
            | Cond.Ge -> ">="
            | Cond.Eq -> "="
            | Cond.Ne -> "<>"
          in
          Format.fprintf ppf "%s%a" s Value.pp c)
        d.rels
    end
