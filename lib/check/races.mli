(** Happens-before / lockset race detector over match traces.

    Consumes a captured event stream ({!Psme_obs.Trace}) and replays it
    per elaboration cycle (task serials restart each episode; cycles are
    barrier-separated, so no race crosses one):

    - {b happens-before}: vector clocks, one component per (virtual)
      processor, advanced at every [Task_start]/[Task_end] and joined
      across the task-spawn edges ([parent] completes before a child
      starts) — the queue push/pop order the engines already obey;
    - {b locksets}, Eraser-style but specialized: every memory access
      carries its hash line, and the line lock is the only lock the
      §6.1 scheme prescribes — two accesses to the same line are
      protected exactly when both held the line lock.

    A {e race} is a pair of accesses to the same hash line, from
    different tasks, at least one a write, unordered by happens-before
    and not both holding the line lock. Against a correctly locked
    engine the lockset check discharges every concurrent pair, so clean
    runs cost one pass; under {!Psme_rete.Runtime.set_lock_elision} the
    unordered pairs surface.

    The detector also flags a task popped twice from the task queues in
    one cycle — the symptom of an unlocked queue. *)

open Psme_obs

type race = {
  r_cycle : int;
  r_line : int;  (** the contended hash line (lock granule) *)
  r_node1 : int;
  r_task1 : int;
  r_proc1 : int;
  r_locked1 : bool;
  r_node2 : int;
  r_task2 : int;
  r_proc2 : int;
  r_locked2 : bool;
}

type report = {
  races : race list;  (** at most [max_reports], in discovery order *)
  n_races : int;  (** total racy pairs found *)
  n_accesses : int;
  n_unlocked : int;
  n_tasks : int;
  n_cycles : int;
  double_pops : (int * int) list;  (** (cycle, task serial) popped twice *)
}

val analyze : ?max_reports:int -> Trace.event array -> report
(** [max_reports] caps the retained [races] list (default 20); counting
    continues past the cap. *)

val to_findings : report -> Finding.report
val pp : Format.formatter -> report -> unit
