(** Abstract value domain for one wme field.

    The set of values a field can hold under a conjunction of constant
    tests — finite enumerations from [^f c] / [<< ... >>], exclusions
    from [<> c], and ordering intervals from [< <= > >=] against
    constants (ranked the way {!Psme_ops5.Cond.eval_relation} ranks
    mixed kinds: symbols below all numbers, numbers by magnitude,
    strings above). Every representable constraint is tracked exactly,
    so {!is_empty} is a sound unsatisfiability verdict and {!leq} a
    sound (conservative) implication test; variable tests are ignored —
    they are join structure, handled separately by the subsumption
    checker. *)

open Psme_support
open Psme_ops5

type t

val top : t
(** All values. *)

val bottom : t
(** No value — an unsatisfiable field. *)

val constrain : t -> Cond.test -> t
(** Refine with one test. Constant, disjunction and predicate-vs-constant
    atoms are applied exactly ([T_conj] recursively); variable tests
    leave the domain unchanged. *)

val of_tests : Cond.test list -> t
(** [constrain] folded over a field's atoms, from {!top}. *)

val mem : t -> Value.t -> bool
(** Exact concrete membership: would this value pass every constraint
    the way the matcher evaluates them? *)

val is_empty : t -> bool
(** No concrete value can satisfy the constraints. Sound: [true] is a
    proof of unsatisfiability (finite enumerations are checked
    exhaustively, interval emptiness via the rank order). *)

val leq : t -> t -> bool
(** [leq d1 d2]: every value in [d1] is in [d2]. Conservative — [false]
    may mean "could not prove"; [true] is a proof. The subsumption
    detector's per-field implication test. *)

val equal : t -> t -> bool
(** Mutual {!leq}. *)

val pp : Format.formatter -> t -> unit
