open Psme_obs

type race = {
  r_cycle : int;
  r_line : int;
  r_node1 : int;
  r_task1 : int;
  r_proc1 : int;
  r_locked1 : bool;
  r_node2 : int;
  r_task2 : int;
  r_proc2 : int;
  r_locked2 : bool;
}

type report = {
  races : race list;
  n_races : int;
  n_accesses : int;
  n_unlocked : int;
  n_tasks : int;
  n_cycles : int;
  double_pops : (int * int) list;
}

(* Pairwise comparison budget: a pathological single-line trace would be
   quadratic; past the budget we stop comparing (the findings already
   found stand, and clean runs never get near it because the lockset
   check discharges pairs first). *)
let pair_budget = 4_000_000

let analyze ?(max_reports = 20) events =
  let races = ref [] in
  let n_races = ref 0 in
  let n_accesses = ref 0 in
  let n_unlocked = ref 0 in
  let n_tasks = ref 0 in
  let double_pops = ref [] in
  let budget = ref pair_budget in
  let cycles = Stream.by_cycle events in
  List.iter
    (fun (cycle, evs) ->
      let procs = Stream.procs evs in
      let proc_idx = Hashtbl.create 8 in
      List.iteri (fun i p -> Hashtbl.replace proc_idx p i) procs;
      let dim = max 1 (List.length procs) in
      let vc_proc = Array.init dim (fun _ -> Vclock.create dim) in
      let start_vc : (int, Vclock.t) Hashtbl.t = Hashtbl.create 256 in
      let done_vc : (int, Vclock.t) Hashtbl.t = Hashtbl.create 256 in
      let pops : (int, int) Hashtbl.t = Hashtbl.create 256 in
      let accesses = ref [] in
      Array.iter
        (fun (e : Trace.event) ->
          match e.Trace.kind with
          | Trace.Task_start -> (
            match Hashtbl.find_opt proc_idx e.Trace.proc with
            | None -> ()
            | Some pi ->
              incr n_tasks;
              let vc = vc_proc.(pi) in
              (match Hashtbl.find_opt done_vc e.Trace.parent with
              | Some pvc -> Vclock.join vc pvc
              | None -> ());
              Vclock.incr vc pi;
              Hashtbl.replace start_vc e.Trace.task (Vclock.copy vc))
          | Trace.Task_end -> (
            match Hashtbl.find_opt proc_idx e.Trace.proc with
            | None -> ()
            | Some pi ->
              Hashtbl.replace done_vc e.Trace.task (Vclock.copy vc_proc.(pi)))
          | Trace.Queue_pop | Trace.Queue_steal ->
            if e.Trace.task >= 0 then begin
              let n =
                1 + Option.value ~default:0 (Hashtbl.find_opt pops e.Trace.task)
              in
              Hashtbl.replace pops e.Trace.task n;
              if n = 2 then double_pops := (cycle, e.Trace.task) :: !double_pops
            end
          | Trace.Mem_access -> (
            match Stream.mem_access_of_event e with
            | None -> ()
            | Some a ->
              incr n_accesses;
              if not a.Stream.ma_locked then incr n_unlocked;
              accesses := a :: !accesses)
          | _ -> ())
        evs;
      (* a pair is ordered when one task's completion clock precedes the
         other task's start clock *)
      let ordered t1 t2 =
        match (Hashtbl.find_opt done_vc t1, Hashtbl.find_opt start_vc t2) with
        | Some d1, Some s2 when Vclock.leq d1 s2 -> true
        | _ -> (
          match (Hashtbl.find_opt done_vc t2, Hashtbl.find_opt start_vc t1) with
          | Some d2, Some s1 -> Vclock.leq d2 s1
          | _ -> true (* incomplete trace: do not report *))
      in
      let by_line : (int, Stream.mem_access list) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun (a : Stream.mem_access) ->
          Hashtbl.replace by_line a.Stream.ma_line
            (a :: Option.value ~default:[] (Hashtbl.find_opt by_line a.Stream.ma_line)))
        !accesses;
      Hashtbl.iter
        (fun line accs ->
          let rec pairs = function
            | [] -> ()
            | (a : Stream.mem_access) :: rest ->
              List.iter
                (fun (b : Stream.mem_access) ->
                  if !budget > 0 then begin
                    decr budget;
                    if
                      a.Stream.ma_task <> b.Stream.ma_task
                      && (a.Stream.ma_write || b.Stream.ma_write)
                      && not (a.Stream.ma_locked && b.Stream.ma_locked)
                      && not (ordered a.Stream.ma_task b.Stream.ma_task)
                    then begin
                      incr n_races;
                      if List.length !races < max_reports then
                        races :=
                          {
                            r_cycle = cycle;
                            r_line = line;
                            r_node1 = a.Stream.ma_node;
                            r_task1 = a.Stream.ma_task;
                            r_proc1 = a.Stream.ma_proc;
                            r_locked1 = a.Stream.ma_locked;
                            r_node2 = b.Stream.ma_node;
                            r_task2 = b.Stream.ma_task;
                            r_proc2 = b.Stream.ma_proc;
                            r_locked2 = b.Stream.ma_locked;
                          }
                          :: !races
                    end
                  end)
                rest;
              pairs rest
          in
          pairs accs)
        by_line)
    cycles;
  {
    races = List.rev !races;
    n_races = !n_races;
    n_accesses = !n_accesses;
    n_unlocked = !n_unlocked;
    n_tasks = !n_tasks;
    n_cycles = List.length cycles;
    double_pops = List.rev !double_pops;
  }

let to_findings r =
  let race_findings =
    List.map
      (fun x ->
        Finding.error ~rule:"data-race"
          ~subject:(Printf.sprintf "line %d (cycle %d)" x.r_line x.r_cycle)
          (Printf.sprintf
             "task %d (proc %d, node %d%s) and task %d (proc %d, node %d%s) \
              touch the same hash line unordered by happens-before"
             x.r_task1 x.r_proc1 x.r_node1
             (if x.r_locked1 then "" else ", unlocked")
             x.r_task2 x.r_proc2 x.r_node2
             (if x.r_locked2 then "" else ", unlocked")))
      r.races
  in
  let pop_findings =
    List.map
      (fun (cycle, task) ->
        Finding.error ~rule:"double-pop"
          ~subject:(Printf.sprintf "task %d (cycle %d)" task cycle)
          "popped twice from the task queues: the queue lock was not held")
      r.double_pops
  in
  let extra =
    if r.n_races > List.length r.races then
      [
        Finding.error ~rule:"data-race" ~subject:"summary"
          (Printf.sprintf "%d further racy pair(s) not listed"
             (r.n_races - List.length r.races));
      ]
    else []
  in
  Finding.report ~checked:r.n_accesses (race_findings @ extra @ pop_findings)

let pp ppf r =
  Format.fprintf ppf
    "%d cycle(s), %d task(s), %d memory access(es) (%d unlocked): %d racy \
     pair(s), %d double pop(s)"
    r.n_cycles r.n_tasks r.n_accesses r.n_unlocked r.n_races
    (List.length r.double_pops)
