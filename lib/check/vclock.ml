type t = int array

let create n = Array.make (max 1 n) 0
let copy = Array.copy
let incr t i = t.(i) <- t.(i) + 1

let join a b =
  for i = 0 to Array.length a - 1 do
    if b.(i) > a.(i) then a.(i) <- b.(i)
  done

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let get t i = t.(i)
let dim = Array.length

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t)))
