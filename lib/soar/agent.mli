(** The Soar architecture: elaborate–decide loop, impasses, subgoals,
    and chunking, driving a PSM-E match engine.

    Faithful to the paper's production-system modifications (§3):
    productions only add wmes; all instantiations in the conflict set
    fire in parallel within an elaboration cycle; elaboration repeats to
    quiescence before a decision; chunks are built when a subgoal
    creates a result in a supergoal, compiled into the network at the
    end of the elaboration cycle, and their memory-node state is updated
    from the current working memory (§5).

    Documented simplifications (see DESIGN.md): no i-support truth
    maintenance (wmes persist until their goal is garbage-collected or a
    slot decision consumes them); impasses arise from ties (the
    mechanism the paper's measured tasks exercise); negated conditions
    are not backtraced into chunks. *)

open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine

type config = {
  learning : bool;
  max_decisions : int;
  max_elab_cycles : int;  (** per elaboration phase, runaway guard *)
  engine_mode : Engine.mode;
  net_config : Network.config;
  cost : Cost.params;
  trace : bool;  (** log decisions and firings via [Logs] *)
  async_elaboration : bool;
      (** the paper's §7 proposal: fire instantiations as soon as they
          match and synchronize only at decisions, so an elaboration
          phase runs as one continuous episode (more parallelism in the
          small-cycle regime) *)
  tracer : Psme_obs.Trace.t option;
      (** structured event tracing: handed to the engine (task, queue
          and cycle events on one virtual timeline) and fed chunk
          add/update markers by the architecture *)
}

val default_config : config

(** Everything measured about one installed chunk (Tables 5-1/5-2,
    Figure 6-9). *)
type chunk_info = {
  ci_prod : Production.t;
  ci_ces : int;             (** condition elements in the chunk *)
  ci_bytes : int;           (** code-size model, §5.1 *)
  ci_bytes_per_two_input : float;  (** [nan] if no two-input node was created *)
  ci_compile_ns : int;      (** wall time of the run-time compilation *)
  ci_new_nodes : int;
}

type run_summary = {
  decisions : int;
  elab_cycles : int;
  halted : bool;            (** a production executed [(halt)] *)
  stalled : bool;           (** quiescent with nothing to decide *)
  chunks : chunk_info list;
  match_stats : Cycle.stats list;   (** one per elaboration cycle *)
  update_stats : Cycle.stats list;  (** one per chunk-installation batch
                                        (each quiescence point's chunks
                                        are updated together, §5.2) *)
  output : string list;             (** [(write ...)] actions *)
}

type t

val prepare_schema : Schema.t -> unit
(** Declare the architecture's classes ([preference], the [goal]
    triple). Must run before task sources are parsed; {!create} also
    applies it. *)

val create : ?config:config -> Schema.t -> Production.t list -> t
(** The schema gains the [preference] class and a [goal] triple class.
    All productions are compiled before the run; chunks join them at
    run time. *)

val config : t -> config
val schema : t -> Schema.t
val network : t -> Network.t
val engine : t -> Engine.t
val wm : t -> Wm.t
val top_goal : t -> Sym.t
val goal_depth : t -> int
(** Current context-stack depth. *)

val new_id : t -> string -> Sym.t
(** Mint an identifier attached to the top goal (for initial state
    construction). *)

val add_triple : t -> cls:string -> id:Sym.t -> attr:string -> value:Value.t -> unit
(** Buffer an object augmentation (processed by the next elaboration
    cycle). The class is declared as a triple class if new. *)

val set_input : t -> (int -> (string * Sym.t * string * Value.t) list) -> unit
(** Attach an input function (the paper's §7 I/O module): before each
    decision cycle it is called with the cycle number and its
    [(class, id, attribute, value)] augmentations are added to working
    memory — external sensor input raising the rate of wme change. With
    an input attached, a quiescent cycle with nothing to decide waits
    for input instead of stalling; the run ends at the decision limit or
    a [(halt)]. *)

val set_monitor : t -> (int -> unit) -> unit
(** Attach a per-decision callback: after every decision cycle it is
    called with the running decision count. Drives the CLI's telemetry
    watch mode (rolling delta lines during long runs). *)

val run : t -> run_summary
(** Run decision cycles until halt, stall, or the decision limit. May be
    called again to continue (e.g. after adding more wmes). *)

val learned_productions : t -> Production.t list
(** Chunks built so far (for after-chunking runs). *)

val flush_match : t -> unit
(** Push any wme changes still buffered at the end of a run (a [(halt)]
    action exits mid-phase) through the match engine without firing
    productions, so the network state agrees with {!wm} again. Needed
    before diffing network memories against working memory. *)

val slot : t -> goal:Sym.t -> role:string -> Value.t option
(** Current context-slot value, if decided. *)
