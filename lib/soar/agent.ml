open Psme_support
open Psme_ops5
open Psme_rete
open Psme_engine

let src = Logs.Src.create "soar.agent" ~doc:"Soar decide/chunking"
module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  learning : bool;
  max_decisions : int;
  max_elab_cycles : int;
  engine_mode : Engine.mode;
  net_config : Network.config;
  cost : Cost.params;
  trace : bool;
  async_elaboration : bool;
  tracer : Psme_obs.Trace.t option;
}

let default_config =
  {
    learning = true;
    max_decisions = 500;
    max_elab_cycles = 200;
    engine_mode = Engine.Serial_mode;
    net_config = Network.default_config;
    cost = Cost.default;
    trace = false;
    async_elaboration = false;
    tracer = None;
  }

type chunk_info = {
  ci_prod : Production.t;
  ci_ces : int;
  ci_bytes : int;
  ci_bytes_per_two_input : float;
  ci_compile_ns : int;
  ci_new_nodes : int;
}

type run_summary = {
  decisions : int;
  elab_cycles : int;
  halted : bool;
  stalled : bool;
  chunks : chunk_info list;
  match_stats : Cycle.stats list;
  update_stats : Cycle.stats list;
  output : string list;
}

type goal = {
  gid : Sym.t;
  depth : int;
  why : impasse option;
}

and impasse = {
  i_super : Sym.t;
  i_role : Sym.t;
  i_items : Value.t list;
}

type pending_result = {
  pr_wme : Wme.t;
  pr_creator : Chunker.creator;
  pr_target_level : int;
}

type t = {
  cfg : config;
  schema : Schema.t;
  net : Network.t;
  eng : Engine.t;
  wm : Wm.t;
  mutable goals : goal list;  (* top first *)
  id_level : (Sym.t, int) Hashtbl.t;
  wme_level : (int, int) Hashtbl.t;  (* timetag -> attachment level *)
  creators : (int, Chunker.creator) Hashtbl.t;  (* timetag -> provenance *)
  mutable pending : (Task.flag * Wme.t) list;  (* buffered cycle changes, reversed *)
  mutable pending_results : pending_result list;
  mutable chunk_forms : (string, unit) Hashtbl.t;  (* canonical chunk dedup *)
  mutable chunk_count : int;
  mutable halted : bool;
  mutable output_rev : string list;
  mutable chunks_rev : chunk_info list;
  mutable update_stats_rev : Cycle.stats list;
  mutable match_stats_rev : Cycle.stats list;
  mutable decisions : int;
  mutable elab_cycles : int;
  mutable input_fn : (int -> (string * Sym.t * string * Value.t) list) option;
  mutable monitor : (int -> unit) option;
      (* called after every decision with the running count; drives the
         CLI's telemetry watch mode *)
}

let goal_cls = "goal"
let roles = [ "problem-space"; "state"; "operator" ]

let config t = t.cfg
let schema t = t.schema
let network t = t.net
let engine t = t.eng
let wm t = t.wm
let top_goal t = (List.hd t.goals).gid
let goal_depth t = List.length t.goals

(* --- identifiers and levels ------------------------------------------ *)

let register_id t sym level =
  match Hashtbl.find_opt t.id_level sym with
  | Some _ -> ()
  | None -> Hashtbl.replace t.id_level sym level

let is_id t v =
  match v with
  | Value.Sym s -> Hashtbl.mem t.id_level s
  | _ -> false

let id_level t sym =
  match Hashtbl.find_opt t.id_level sym with Some l -> Some l | None -> None

(* The id a wme is attached to: field 0 of a triple-class wme, the goal
   field of a preference. *)
let attachment_id t w =
  if Sym.name w.Wme.cls = Prefs.class_name then
    match w.Wme.fields.(0) with Value.Sym g -> Some g | _ -> None
  else if Array.length w.Wme.fields = 3 then
    match w.Wme.fields.(0) with
    | Value.Sym s when Hashtbl.mem t.id_level s -> Some s
    | _ -> None
  else None

let wme_level t w =
  match Hashtbl.find_opt t.wme_level w.Wme.timetag with
  | Some l -> l
  | None -> 1

(* --- wme creation ------------------------------------------------------ *)

let ensure_triple_class t cls =
  let c = Sym.intern cls in
  if not (Schema.declared t.schema c) then
    Schema.declare t.schema cls Parser.triple_fields

(* Add a wme unless an identical one is present (Soar WM is a set).
   [level] is the creation context's goal depth; the wme's level is its
   attachment id's level when that id is known. *)
let internal_add t ~cls ~fields ~level ~creator =
  match Wm.find_same_contents t.wm ~cls ~fields with
  | Some _ -> None
  | None ->
    let w = Wm.add t.wm ~cls ~fields in
    (* register a new identifier introduced in field 0 of a triple *)
    (if Array.length fields = 3 && Sym.name cls <> Prefs.class_name then
       match fields.(0) with
       | Value.Sym s -> register_id t s level
       | _ -> ());
    let lvl =
      match attachment_id t w with
      | Some id -> ( match id_level t id with Some l -> l | None -> level)
      | None -> level
    in
    Hashtbl.replace t.wme_level w.Wme.timetag lvl;
    (match creator with
    | Some c -> Hashtbl.replace t.creators w.Wme.timetag c
    | None -> ());
    t.pending <- (Task.Add, w) :: t.pending;
    Some (w, lvl)

let internal_remove t w =
  if Wm.mem t.wm w then begin
    Wm.remove t.wm w;
    Hashtbl.remove t.wme_level w.Wme.timetag;
    Hashtbl.remove t.creators w.Wme.timetag;
    (* A wme added and removed within the same buffered cycle must not
       reach the engines at all: concurrent processing of its Add and
       Delete would be order-dependent. Cancel the pending Add instead. *)
    if List.exists (fun (f, x) -> f = Task.Add && Wme.equal x w) t.pending then
      t.pending <-
        List.filter (fun (f, x) -> not (f = Task.Add && Wme.equal x w)) t.pending
    else t.pending <- (Task.Delete, w) :: t.pending
  end

let new_id t prefix =
  let s = Sym.fresh prefix in
  register_id t s 1;
  s

let add_triple t ~cls ~id ~attr ~value =
  ensure_triple_class t cls;
  let c = Sym.intern cls in
  register_id t id (List.length t.goals);
  let fields = [| Value.Sym id; Value.sym attr; value |] in
  ignore (internal_add t ~cls:c ~fields ~level:(List.length t.goals) ~creator:None)

(* --- queries ------------------------------------------------------------ *)

let goal_sym = lazy (Sym.intern goal_cls)

let slot t ~goal ~role =
  let role_v = Value.sym role in
  let found = ref None in
  Wm.iter
    (fun w ->
      if
        Sym.equal w.Wme.cls (Lazy.force goal_sym)
        && Value.equal w.Wme.fields.(0) (Value.Sym goal)
        && Value.equal w.Wme.fields.(1) role_v
      then found := Some w.Wme.fields.(2))
    t.wm;
  !found

let slot_wme t ~goal ~role =
  let role_v = Value.sym role in
  let found = ref None in
  Wm.iter
    (fun w ->
      if
        Sym.equal w.Wme.cls (Lazy.force goal_sym)
        && Value.equal w.Wme.fields.(0) (Value.Sym goal)
        && Value.equal w.Wme.fields.(1) role_v
      then found := Some w)
    t.wm;
  !found

let prefs_for t ~goal ~role =
  let out = ref [] in
  Wm.iter
    (fun w ->
      match Prefs.decode w with
      | Some (g, r, vote) when Sym.equal g goal && Sym.equal r (Sym.intern role) ->
        out := (vote, w) :: !out
      | _ -> ())
    t.wm;
  List.rev !out

(* --- construction -------------------------------------------------------- *)

let prepare_schema schema =
  Prefs.declare schema;
  Schema.declare schema goal_cls Parser.triple_fields

let create ?(config = default_config) schema productions =
  prepare_schema schema;
  let net = Network.create ~config:config.net_config schema in
  ignore (Build.add_all net productions);
  let eng =
    Engine.create ~cost:config.cost ?tracer:config.tracer config.engine_mode net
  in
  let t =
    {
      cfg = config;
      schema;
      net;
      eng;
      wm = Wm.create ();
      goals = [];
      id_level = Hashtbl.create 256;
      wme_level = Hashtbl.create 1024;
      creators = Hashtbl.create 1024;
      pending = [];
      pending_results = [];
      chunk_forms = Hashtbl.create 64;
      chunk_count = 0;
      halted = false;
      output_rev = [];
      chunks_rev = [];
      update_stats_rev = [];
      match_stats_rev = [];
      decisions = 0;
      elab_cycles = 0;
      input_fn = None;
      monitor = None;
    }
  in
  (* the top goal *)
  let g1 = Sym.fresh "g" in
  register_id t g1 1;
  t.goals <- [ { gid = g1; depth = 1; why = None } ];
  ignore
    (internal_add t ~cls:(Lazy.force goal_sym)
       ~fields:[| Value.Sym g1; Value.sym "top-goal"; Value.sym "yes" |]
       ~level:1 ~creator:None);
  t

(* --- firing --------------------------------------------------------------- *)

let instantiation_level t (inst : Conflict_set.inst) =
  Array.fold_left
    (fun acc w -> max acc (wme_level t w))
    1 (Token.wmes inst.Conflict_set.token)

let fire_instantiation_unmetered t (inst : Conflict_set.inst) =
  let pm =
    match Network.find_production t.net inst.Conflict_set.prod with
    | Some pm -> pm
    | None -> invalid_arg "instantiation of unknown production"
  in
  let prod = pm.Network.meta_production in
  let bindings = Network.bindings_of t.net inst.Conflict_set.prod inst.Conflict_set.token in
  let level = instantiation_level t inst in
  let creator =
    {
      Chunker.c_conds = Array.to_list (Token.wmes inst.Conflict_set.token);
      c_level = level;
    }
  in
  let gensyms = Hashtbl.create 4 in
  let resolve = function
    | Action.Tconst v -> v
    | Action.Tvar v -> (
      match List.assoc_opt v bindings with
      | Some value -> value
      | None -> invalid_arg (Printf.sprintf "unbound RHS variable <%s>" v))
    | Action.Tgensym p -> (
      (* one fresh symbol per (prefix, firing) so several assignments in
         one action can share an id *)
      match Hashtbl.find_opt gensyms p with
      | Some s -> Value.Sym s
      | None ->
        let s = Sym.fresh p in
        register_id t s level;
        Hashtbl.replace gensyms p s;
        Value.Sym s)
  in
  List.iter
    (fun action ->
      match action with
      | Action.Make (cls, assigns) -> (
        let fields = Array.make (Schema.arity t.schema cls) Value.nil in
        List.iter (fun (f, term) -> fields.(f) <- resolve term) assigns;
        match internal_add t ~cls ~fields ~level ~creator:(Some creator) with
        | Some (w, wlvl) ->
          if wlvl < level then
            t.pending_results <-
              { pr_wme = w; pr_creator = creator; pr_target_level = wlvl }
              :: t.pending_results
        | None -> ())
      | Action.Write terms ->
        let render v =
          match v with Value.Str s -> s | _ -> Value.to_string v
        in
        let line =
          String.concat " " (List.map (fun term -> render (resolve term)) terms)
        in
        t.output_rev <- line :: t.output_rev;
        if t.cfg.trace then Log.app (fun m -> m "write: %s" line)
      | Action.Halt -> t.halted <- true
      | Action.Remove _ | Action.Modify _ ->
        invalid_arg
          (Printf.sprintf "production %s: Soar productions only add wmes"
             (Sym.name prod.Production.name)))
    prod.Production.rhs

(* RHS firing is the telemetry "act" phase. *)
let fire_instantiation t inst =
  Psme_obs.Telemetry.with_phase Psme_obs.Telemetry.global Psme_obs.Telemetry.Act
    (fun () -> fire_instantiation_unmetered t inst)

(* --- chunking --------------------------------------------------------------- *)

(* Compile one chunk into the network; its state update runs batched
   with the other chunks of this elaboration cycle. *)
let compile_chunk t grounds (result : Wme.t) =
  t.chunk_count <- t.chunk_count + 1;
  let name = Sym.fresh "chunk-" in
  match
    Chunker.build t.schema ~is_id:(is_id t) ~name ~grounds
      ~results:[ (result.Wme.cls, result.Wme.fields) ]
  with
  | None -> None
  | Some prod ->
    let form = Chunker.canonical_form t.schema prod in
    if Hashtbl.mem t.chunk_forms form then None
    else begin
      Hashtbl.replace t.chunk_forms form ();
      let (res : Build.add_result), compile_ns =
        Clock.time_ns (fun () -> Build.add_production t.net prod)
      in
      let info =
        {
          ci_prod = prod;
          ci_ces = Production.num_ces prod;
          ci_bytes = Codesize.bytes_of_addition t.net res;
          ci_bytes_per_two_input = Codesize.bytes_per_two_input_node t.net res;
          ci_compile_ns = compile_ns;
          ci_new_nodes = List.length res.Build.new_beta_nodes;
        }
      in
      t.chunks_rev <- info :: t.chunks_rev;
      (match t.cfg.tracer with
      | Some tr ->
        Psme_obs.Trace.emit tr Psme_obs.Trace.Chunk_add ~t_us:0.
          ~node:res.Build.meta.Network.pnode ~emitted:info.ci_new_nodes ()
      | None -> ());
      if t.cfg.trace then
        Log.app (fun m ->
            m "chunk %s: %d CEs, %d new nodes" (Sym.name prod.Production.name)
              info.ci_ces info.ci_new_nodes);
      Some (prod, res)
    end

let build_pending_chunks_unmetered t =
  let results = List.rev t.pending_results in
  t.pending_results <- [];
  if t.cfg.learning && results <> [] then begin
    let installed =
      List.filter_map
        (fun pr ->
          let grounds =
            Chunker.backtrace
              ~creator_of:(fun w -> Hashtbl.find_opt t.creators w.Wme.timetag)
              ~level_of:(wme_level t)
              ~target_level:pr.pr_target_level
              ~seeds:pr.pr_creator.Chunker.c_conds
          in
          compile_chunk t grounds pr.pr_wme)
        results
    in
    match installed with
    | [] -> ()
    | _ ->
      (* One update pass fills the memories of every chunk added at this
         quiescence point (§5.2), with full match parallelism. *)
      let tasks =
        Update.update_tasks_batch t.net t.wm (List.map snd installed)
      in
      (match t.cfg.tracer with
      | Some tr ->
        Psme_obs.Trace.emit tr Psme_obs.Trace.Chunk_update ~t_us:0.
          ~emitted:(List.length installed) ()
      | None -> ());
      let ustats = Engine.run_tasks t.eng tasks in
      t.update_stats_rev <- ustats :: t.update_stats_rev;
      (* instantiations derived by the update describe already-derived
         results; mark them fired so they do not re-fire spuriously *)
      let new_names = List.map (fun (p, _) -> p.Production.name) installed in
      List.iter
        (fun inst ->
          if List.exists (Sym.equal inst.Conflict_set.prod) new_names then
            Conflict_set.mark_fired t.net.Network.cs inst)
        (Conflict_set.pending t.net.Network.cs)
  end

(* Chunk compilation + network splice is the "chunk-splice" phase; the
   nested match episode it runs (memory update) opens its own [Match]
   section, and the telemetry layer attributes exclusively. *)
let build_pending_chunks t =
  Psme_obs.Telemetry.with_phase Psme_obs.Telemetry.global
    Psme_obs.Telemetry.Chunk_splice (fun () -> build_pending_chunks_unmetered t)

(* --- elaboration ----------------------------------------------------------- *)

let take_pending t =
  let changes = List.rev t.pending in
  t.pending <- [];
  changes

let elaboration_phase t =
  let cycles = ref 0 in
  let continue_ = ref true in
  while !continue_ && not t.halted && !cycles < t.cfg.max_elab_cycles do
    let changes = take_pending t in
    let insts_before = Conflict_set.pending t.net.Network.cs in
    if changes = [] && insts_before = [] then continue_ := false
    else begin
      incr cycles;
      t.elab_cycles <- t.elab_cycles + 1;
      let stats = Engine.run_changes t.eng changes in
      t.match_stats_rev <- stats :: t.match_stats_rev;
      let insts = Conflict_set.pending t.net.Network.cs in
      List.iter
        (fun inst ->
          Conflict_set.mark_fired t.net.Network.cs inst;
          fire_instantiation t inst)
        insts;
      if t.cfg.trace then
        Log.debug (fun m ->
            m "elab cycle %d: %d changes, %d firings" t.elab_cycles
              (List.length changes) (List.length insts))
    end
  done;
  (* chunks are added at the end of the elaboration cycle, at quiescence *)
  build_pending_chunks t

(* The §7 alternative: elaboration waves overlap in one engine episode,
   with instantiations fired as soon as they match.

   Soundness: once the decision phase's deletions have settled, an
   elaboration episode only ever ADDS wmes, so a match of a production
   without negated conditions is monotone — it can never be retracted
   later in the episode and is safe to fire immediately. Matches that
   involve negations or conjunctive negations can be transient (a
   blocking wme may still be in flight), so they are deferred to the
   episode's quiescence, where the conflict set holds exactly the
   surviving ones. *)
let async_safe (prod : Production.t) =
  List.for_all
    (function Cond.Pos _ -> true | Cond.Neg _ | Cond.Ncc _ -> false)
    prod.Production.lhs

let fire_now t inst =
  Conflict_set.mark_fired t.net.Network.cs inst;
  fire_instantiation t inst

let elaboration_phase_async t =
  (* wave 0 is synchronous: the decision's deletions must settle before
     additive monotonicity holds *)
  let changes0 = take_pending t in
  let insts0 = Conflict_set.pending t.net.Network.cs in
  if changes0 <> [] || insts0 <> [] then begin
    t.elab_cycles <- t.elab_cycles + 1;
    let stats0 = Engine.run_changes t.eng changes0 in
    t.match_stats_rev <- stats0 :: t.match_stats_rev;
    List.iter (fire_now t) (Conflict_set.pending t.net.Network.cs);
    (* subsequent waves are pure additions: run them as overlapping
       asynchronous episodes *)
    let episodes = ref 0 in
    let continue_ = ref true in
    while !continue_ && not t.halted && !episodes < t.cfg.max_elab_cycles do
      let changes = take_pending t in
      if changes = [] then continue_ := false
      else begin
        incr episodes;
        t.elab_cycles <- t.elab_cycles + 1;
        let stats =
          Engine.run_changes_async t.eng
            ~on_inst:(fun inst ->
              match Network.find_production t.net inst.Conflict_set.prod with
              | Some pm when async_safe pm.Network.meta_production ->
                fire_now t inst;
                take_pending t
              | Some _ | None -> []  (* deferred to quiescence *))
            changes
        in
        t.match_stats_rev <- stats :: t.match_stats_rev;
        (* fire the deferred (negation-involving) survivors *)
        List.iter (fire_now t) (Conflict_set.pending t.net.Network.cs);
        if t.cfg.trace then
          Log.debug (fun m ->
              m "async elaboration episode: %d changes, %d tasks" (List.length changes)
                stats.Cycle.tasks)
      end
    done
  end;
  build_pending_chunks t

(* --- decisions ---------------------------------------------------------------- *)

type decision_outcome =
  | Decided
  | Impassed
  | Nothing

let destroy_goals_below t depth =
  if List.exists (fun g -> g.depth > depth) t.goals then begin
    t.goals <- List.filter (fun g -> g.depth <= depth) t.goals;
    let victims = ref [] in
    Wm.iter (fun w -> if wme_level t w > depth then victims := w :: !victims) t.wm;
    List.iter (internal_remove t) !victims;
    Hashtbl.iter
      (fun id l -> if l > depth then Hashtbl.remove t.id_level id)
      (Hashtbl.copy t.id_level)
  end

let clear_slot_and_deeper_roles t g role_idx =
  List.iteri
    (fun i role ->
      if i >= role_idx then begin
        (match slot_wme t ~goal:g.gid ~role with
        | Some w -> internal_remove t w
        | None -> ());
        (* consume the slot's preferences *)
        List.iter (fun (_, w) -> internal_remove t w) (prefs_for t ~goal:g.gid ~role)
      end)
    roles

let install_slot t g role_idx value =
  clear_slot_and_deeper_roles t g role_idx;
  destroy_goals_below t g.depth;
  let role = List.nth roles role_idx in
  ignore
    (internal_add t ~cls:(Lazy.force goal_sym)
       ~fields:[| Value.Sym g.gid; Value.sym role; value |]
       ~level:g.depth ~creator:None);
  if t.cfg.trace then
    Log.app (fun m ->
        m "decide: %s %s <- %s" (Sym.name g.gid) role (Value.to_string value))

let create_subgoal t g role items item_pref_wmes =
  destroy_goals_below t g.depth;
  let g2 = Sym.fresh "g" in
  let depth = g.depth + 1 in
  register_id t g2 depth;
  t.goals <- t.goals @ [ { gid = g2; depth; why = Some { i_super = g.gid; i_role = Sym.intern role; i_items = items } } ];
  let arch attr v creator =
    ignore
      (internal_add t ~cls:(Lazy.force goal_sym)
         ~fields:[| Value.Sym g2; Value.sym attr; v |]
         ~level:depth ~creator)
  in
  arch "object" (Value.Sym g.gid) None;
  arch "impasse" (Value.sym "tie") None;
  arch "role" (Value.sym role) None;
  List.iter
    (fun item ->
      (* an ^item wme is derived from the item's acceptable preference,
         so backtracing a chunk through it reaches the supergoal *)
      let creator =
        match
          List.find_opt
            (fun (vote, _) ->
              vote.Prefs.ptype = Prefs.Acceptable && Value.equal vote.Prefs.value item)
            item_pref_wmes
        with
        | Some (_, w) -> Some { Chunker.c_conds = [ w ]; c_level = depth }
        | None -> None
      in
      arch "item" item creator)
    items;
  if t.cfg.trace then
    Log.app (fun m ->
        m "impasse: tie on %s of %s -> subgoal %s (%d items)" role (Sym.name g.gid)
          (Sym.name g2) (List.length items))

let rejected_in votes v =
  List.exists
    (fun (vote, _) -> vote.Prefs.ptype = Prefs.Reject && Value.equal vote.Prefs.value v)
    votes

let decision_phase_unmetered t =
  let outcome = ref Nothing in
  (try
     List.iter
       (fun g ->
         List.iteri
           (fun role_idx role ->
             let votes = prefs_for t ~goal:g.gid ~role in
             let current = slot t ~goal:g.gid ~role in
             match Prefs.decide (List.map fst votes), current with
             | Prefs.Winner v, Some cur when Value.equal v cur -> ()
             | Prefs.Winner v, _ ->
               install_slot t g role_idx v;
               outcome := Decided;
               raise Exit
             | Prefs.No_candidates, Some cur when rejected_in votes cur ->
               clear_slot_and_deeper_roles t g role_idx;
               destroy_goals_below t g.depth;
               outcome := Decided;
               raise Exit
             | Prefs.No_candidates, _ -> ()
             | Prefs.Tie _, Some _ ->
               (* the incumbent persists until rejected *)
               ()
             | Prefs.Tie items, None ->
               (* continue into an existing matching subgoal, else create *)
               let existing =
                 List.find_opt
                   (fun sub ->
                     sub.depth = g.depth + 1
                     &&
                     match sub.why with
                     | Some w ->
                       Sym.equal w.i_super g.gid
                       && Sym.equal w.i_role (Sym.intern role)
                       && List.length w.i_items = List.length items
                       && List.for_all2 Value.equal w.i_items items
                     | None -> false)
                   t.goals
               in
               (match existing with
               | Some _ -> ()  (* walk continues into the subgoal *)
               | None ->
                 create_subgoal t g role items votes;
                 outcome := Impassed;
                 raise Exit))
           roles)
       t.goals
   with Exit -> ());
  !outcome

(* The decision procedure is the "conflict-resolution" phase. *)
let decision_phase t =
  Psme_obs.Telemetry.with_phase Psme_obs.Telemetry.global
    Psme_obs.Telemetry.Conflict_resolution (fun () -> decision_phase_unmetered t)

(* --- top level -------------------------------------------------------------- *)

let set_input t f = t.input_fn <- Some f
let set_monitor t f = t.monitor <- Some f

let inject_input t =
  match t.input_fn with
  | None -> ()
  | Some f ->
    List.iter
      (fun (cls, id, attr, value) -> add_triple t ~cls ~id ~attr ~value)
      (f t.decisions)

let run t =
  let match0 = List.length t.match_stats_rev in
  let update0 = List.length t.update_stats_rev in
  let chunks0 = List.length t.chunks_rev in
  let dec0 = t.decisions in
  let elab0 = t.elab_cycles in
  let stalled = ref false in
  let continue_ = ref true in
  while !continue_ && not t.halted && t.decisions - dec0 < t.cfg.max_decisions do
    inject_input t;
    if t.cfg.async_elaboration then elaboration_phase_async t else elaboration_phase t;
    if t.halted then continue_ := false
    else begin
      (match decision_phase t with
      | Decided | Impassed -> t.decisions <- t.decisions + 1
      | Nothing ->
        (* with an input function attached, quiescence without a decision
           just means we are waiting for the world: keep cycling *)
        if t.pending = [] && t.input_fn = None then begin
          stalled := true;
          continue_ := false
        end
        else t.decisions <- t.decisions + 1);
      match t.monitor with Some f -> f t.decisions | None -> ()
    end
  done;
  let take n l = List.filteri (fun i _ -> i < List.length l - n) l in
  ignore take;
  let since n l = List.rev l |> List.filteri (fun i _ -> i >= n) in
  {
    decisions = t.decisions - dec0;
    elab_cycles = t.elab_cycles - elab0;
    halted = t.halted;
    stalled = !stalled;
    chunks = since chunks0 t.chunks_rev;
    match_stats = since match0 t.match_stats_rev;
    update_stats = since update0 t.update_stats_rev;
    output = List.rev t.output_rev;
  }

let learned_productions t =
  List.rev_map (fun ci -> ci.ci_prod) t.chunks_rev

(* A [(halt)] fired mid-phase leaves wme changes buffered in [pending]:
   working memory already holds them but the match network never saw
   them. Verifiers that diff network state against [Wm] need the two in
   sync, so this pushes the stragglers through the engine — without
   firing anything — to restore quiescence. *)
let flush_match t =
  let changes = take_pending t in
  if changes <> [] then begin
    let stats = Engine.run_changes t.eng changes in
    t.match_stats_rev <- stats :: t.match_stats_rev
  end
