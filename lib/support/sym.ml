type t = int

(* The intern table is append-only: a symbol's integer is an index into
   [names]. Reads of already-interned symbols go through [name] without
   locking, which is safe because we never resize [names] in place — we
   swap in a larger copy while holding the lock, and stale reads of the
   old array are still correct for indices below the old length. *)

let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 4096
let names = ref (Array.make 4096 "")
let next = ref 0
let fresh_counter = ref 0

let intern s =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table s with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        let cur = !names in
        if i >= Array.length cur then begin
          let bigger = Array.make (2 * Array.length cur) "" in
          Array.blit cur 0 bigger 0 (Array.length cur);
          names := bigger
        end;
        !names.(i) <- s;
        Hashtbl.add table s i;
        i)

let name t = !names.(t)
let[@inline] equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = t * 0x9e3779b1 land max_int
let count () = Mutex.protect lock (fun () -> !next)
let pp ppf t = Format.pp_print_string ppf (name t)

let fresh prefix =
  let rec try_next () =
    let n = Mutex.protect lock (fun () -> incr fresh_counter; !fresh_counter) in
    let s = Printf.sprintf "%s%d" prefix n in
    let exists = Mutex.protect lock (fun () -> Hashtbl.mem table s) in
    if exists then try_next () else intern s
  in
  try_next ()
