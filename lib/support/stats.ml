type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let total t = t.sum
let min t = t.mn
let max t = t.mx
let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2;
      mn = Stdlib.min a.mn b.mn;
      mx = Stdlib.max a.mx b.mx;
      sum = a.sum +. b.sum }
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f"
    t.n (mean t) t.mn t.mx (stddev t)

let percentile xs p =
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Stdlib.compare sorted;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    sorted.(idx)
  end
