type t =
  | Sym of Sym.t
  | Int of int
  | Float of float
  | Str of string

let[@inline] equal a b =
  match a, b with
  | Sym x, Sym y -> Sym.equal x y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | (Sym _ | Int _ | Float _ | Str _), _ -> false

let compare a b =
  match a, b with
  | Sym x, Sym y -> Sym.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float _, _ -> -1
  | _, Float _ -> 1

let hash = function
  | Sym s -> Sym.hash s
  | Int i -> i * 0x85ebca6b land max_int
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let sym s = Sym (Sym.intern s)
let int i = Int i
let nil = sym "nil"
let is_nil v = equal v nil

let numeric = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Sym _ | Str _ -> None

let pp ppf = function
  | Sym s -> Sym.pp ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
