(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Not thread-safe; each engine owns its vectors or guards them with the
    locks it already holds for the enclosing structure. *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a t
(** [make capacity] pre-sizes the backing store. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val get : 'a t -> int -> 'a
val unsafe_get : 'a t -> int -> 'a
(** [get] without the bounds check. The index must already be known to be
    [< length t] (e.g. a loop bound); for scan hot paths only. *)

val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val last : 'a t -> 'a option
val swap_remove : 'a t -> int -> unit
(** O(1) removal that moves the last element into slot [i]. *)
