type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }
let make capacity = { data = [||]; len = 0 } |> fun t ->
  if capacity > 0 then t.data <- Array.make capacity (Obj.magic 0);
  t

let length t = t.len
let is_empty t = t.len = 0

let ensure t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let cap' = max 8 (max n (2 * cap)) in
    let data' = Array.make cap' (Obj.magic 0) in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    t.data.(t.len) <- Obj.magic 0;
    Some x
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let[@inline] unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let clear t =
  Array.fill t.data 0 t.len (Obj.magic 0);
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i t.data.(i) done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.swap_remove";
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- Obj.magic 0
