(** Streaming summary statistics and simple series utilities. *)

type t
(** Accumulates count / mean / min / max / variance in one pass
    (Welford's algorithm). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val total : t -> float
val min : t -> float
val max : t -> float
val stddev : t -> float
val merge : t -> t -> t
(** Combine two accumulators (parallel reduction). *)

val pp : Format.formatter -> t -> unit

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; sorts a copy. Nearest-rank:
    [p = 0] is the minimum, [p = 100] the maximum. An empty array yields
    [nan]; [p] outside [0,100] (or nan) raises [Invalid_argument]. *)
