(** Chase–Lev work-stealing deque.

    Single-owner: exactly one domain may call {!push}/{!pop} (they are
    lock-free and uncontended except on the last element); any number of
    other domains may call {!steal}, which takes the {e oldest} element
    via a CAS on the top index. The buffer is circular and grows
    (owner-side) when full, so pushes never fail.

    FIFO for thieves, LIFO for the owner — the owner works depth-first
    on its own spawned tasks while thieves take the oldest (largest)
    work, the scheduling the match engine wants for locality. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 256) is the initial buffer size, rounded up to a
    power of two. The deque grows as needed; capacity is not a bound on
    contents. *)

val push : 'a t -> 'a -> unit
(** Owner only. Push at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only. Pop the most recently pushed element; [None] when
    empty (also when a thief won the race for the last element). *)

val steal : ?thief:int -> 'a t -> 'a option
(** Any domain. Take the oldest element; [None] when the deque looks
    empty {e or} the CAS lost a race with another thief or the owner —
    callers treat both as a failed probe and move on rather than spin.
    [thief] labels a successful steal with the stealing worker's id for
    the {!provenance} victim→thief counters. *)

val size : 'a t -> int
(** Snapshot of the current element count (racy; for stats only). *)

(** Per-deque contention counters, maintained unconditionally (a few
    plain/atomic increments per operation — cheap enough to leave on).
    [steal_attempts] counts probes that saw a non-empty deque;
    [steal_cas_failures] the subset that then lost the top CAS;
    [pop_races] owner pops that lost the last-element race to a thief;
    [failed_steals] every unsuccessful probe — empty-looking deques
    plus lost CAS races — the per-deque view the global telemetry
    counters cannot give. *)
type stats = {
  pushes : int;
  pops : int;
  pop_races : int;
  steal_attempts : int;
  steals : int;
  steal_cas_failures : int;
  failed_steals : int;
}

val stats : 'a t -> stats
(** Snapshot of the counters. Owner-side fields ([pushes], [pops],
    [pop_races]) are read racily when called from another domain —
    quiesce the owner (e.g. after join) for exact values. *)

val provenance : 'a t -> (int * int) list
(** Steal provenance for this deque (the victim): [(thief, steals)]
    pairs, ascending by thief id, for every thief that passed its id to
    {!steal} and succeeded at least once. Thief ids are tracked modulo
    64 — exact for any realistic worker count. *)
