(* Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), the standard
   single-owner lock-free deque: the owner pushes and pops at the bottom
   without synchronization except on the last element; thieves CAS the
   top. [top] only ever increases, so the CAS has no ABA problem.

   The circular buffer is published through one [Atomic.t] holding an
   immutable {arr; mask} pair, so a thief always sees a consistent
   array/mask combination. Slot reads race with owner writes only when
   the thief's subsequent CAS on [top] is doomed to fail (the owner can
   reuse a slot only after [top] has moved past it), so a stale read is
   never returned. Slots hold ['a option] so no dummy element is
   needed; the owner clears slots it pops to avoid retaining tasks. *)

type 'a buf = { arr : 'a option array; mask : int }

type stats = {
  pushes : int;
  pops : int;
  pop_races : int;
  steal_attempts : int;
  steals : int;
  steal_cas_failures : int;
  failed_steals : int;
}

(* Steal provenance is a fixed bank of per-thief counters: growing an
   array under concurrent thieves would race, so thief ids hash into
   [prov_slots] slots (collision-free for up to 64 workers, far above
   the paper's 13-processor Multimax). *)
let prov_slots = 64
let prov_mask = prov_slots - 1

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;  (* written only by the owner *)
  buf : 'a buf Atomic.t;
  (* contention counters; owner-side ones are plain fields (single
     writer), thief-side ones are atomic. Bumps are unconditional —
     the telemetry layer keeps them always-on, so they must stay a
     couple of plain increments, not a branch on a flag. *)
  mutable n_pushes : int;
  mutable n_pops : int;
  mutable n_pop_races : int; (* owner lost the last-element CAS *)
  n_steal_attempts : int Atomic.t; (* probes that saw a non-empty deque *)
  n_steals : int Atomic.t;
  n_steal_cas_failures : int Atomic.t; (* probes that lost the top CAS *)
  n_empty_steals : int Atomic.t; (* probes that saw an empty deque *)
  prov : int Atomic.t array; (* successful steals by thief id *)
}

let create ?(capacity = 256) () =
  let cap =
    let rec p n = if n >= capacity then n else p (n * 2) in
    p 16
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make { arr = Array.make cap None; mask = cap - 1 };
    n_pushes = 0;
    n_pops = 0;
    n_pop_races = 0;
    n_steal_attempts = Atomic.make 0;
    n_steals = Atomic.make 0;
    n_steal_cas_failures = Atomic.make 0;
    n_empty_steals = Atomic.make 0;
    prov = Array.init prov_slots (fun _ -> Atomic.make 0);
  }

let grow q bf t b =
  let cap = (bf.mask + 1) * 2 in
  let nbf = { arr = Array.make cap None; mask = cap - 1 } in
  for i = t to b - 1 do
    nbf.arr.(i land nbf.mask) <- bf.arr.(i land bf.mask)
  done;
  Atomic.set q.buf nbf;
  nbf

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let bf = Atomic.get q.buf in
  let bf = if b - t > bf.mask then grow q bf t b else bf in
  bf.arr.(b land bf.mask) <- Some x;
  q.n_pushes <- q.n_pushes + 1;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty; restore *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let bf = Atomic.get q.buf in
    let i = b land bf.mask in
    let x = bf.arr.(i) in
    if b > t then begin
      bf.arr.(i) <- None;
      q.n_pops <- q.n_pops + 1;
      x
    end
    else begin
      (* last element: race thieves for it via [top] *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        bf.arr.(i) <- None;
        q.n_pops <- q.n_pops + 1;
        x
      end
      else begin
        q.n_pop_races <- q.n_pop_races + 1;
        None
      end
    end
  end

let steal ?thief q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t <= 0 then begin
    Atomic.incr q.n_empty_steals;
    None
  end
  else begin
    Atomic.incr q.n_steal_attempts;
    let bf = Atomic.get q.buf in
    let x = bf.arr.(t land bf.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then begin
      Atomic.incr q.n_steals;
      (match thief with
      | Some id -> Atomic.incr q.prov.(id land prov_mask)
      | None -> ());
      x
    end
    else begin
      (* lost the race; treat as a failed probe, do not spin *)
      Atomic.incr q.n_steal_cas_failures;
      None
    end
  end

let size q =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  max 0 (b - t)

let stats q =
  {
    pushes = q.n_pushes;
    pops = q.n_pops;
    pop_races = q.n_pop_races;
    steal_attempts = Atomic.get q.n_steal_attempts;
    steals = Atomic.get q.n_steals;
    steal_cas_failures = Atomic.get q.n_steal_cas_failures;
    failed_steals =
      Atomic.get q.n_empty_steals + Atomic.get q.n_steal_cas_failures;
  }

let provenance q =
  let rec collect i acc =
    if i < 0 then acc
    else
      let n = Atomic.get q.prov.(i) in
      collect (i - 1) (if n > 0 then (i, n) :: acc else acc)
  in
  collect (prov_slots - 1) []
