open Psme_obs
open Psme_rete
open Psme_engine
open Psme_soar
open Psme_workloads

type diagnosis = {
  d_task : string;
  d_procs : int;
  d_cycles : int;
  d_small_cycles : int;
  d_long_tail_cycles : int;
  d_avg_tail_ratio : float;
  d_deepest : (string * int) list;
  d_cp_ratio : float;
  d_cp_bound : float;
  d_chain_prod : (string * float) option;
  d_recommend_bilinear : bool;
  d_recommend_async : bool;
  d_baseline_speedup : float;
  d_ledger : Attribution.totals;
  d_dominant : string;
  d_dominant_share : float;
  d_worst : Attribution.ledger option;
}

let small_cycle_tasks = 50
let tail_concurrency = 2
let tail_ratio_threshold = 0.4
let deep_chain_threshold = 25

(* Share of a cycle's virtual time spent with at most [tail_concurrency]
   tasks in the system, from the simulator's (time, outstanding) trace. *)
let tail_ratio (s : Cycle.stats) =
  let tr = Array.to_list s.Cycle.trace in
  let tr = List.sort (fun (a, _) (b, _) -> compare a b) tr in
  match tr with
  | [] | [ _ ] -> 0.
  | (t0, _) :: _ ->
    let rec walk acc prev_t prev_n = function
      | [] -> (acc, prev_t)
      | (t, n) :: rest ->
        let acc = if prev_n <= tail_concurrency then acc +. (t -. prev_t) else acc in
        walk acc t n rest
    in
    let low_time, t_end = walk 0. t0 max_int (List.tl tr) in
    let span = t_end -. t0 in
    if span <= 0. then 0. else low_time /. span

let chain_depth net pnode_id =
  let rec go id acc =
    match (Network.node net id).Network.parent with
    | None -> acc
    | Some p -> go p (acc + 1)
  in
  go pnode_id 1

let speedup stats =
  let s = List.fold_left (fun a c -> a +. c.Cycle.serial_us) 0. stats in
  let m = List.fold_left (fun a c -> a +. c.Cycle.makespan_us) 0. stats in
  if m <= 0. then 1. else s /. m

let run_without ?tracer (w : Workload.t) ~procs ~trace ~async ~bilinear =
  let net_config =
    if bilinear then
      { Network.default_config with Network.bilinear = true; bilinear_min_ces = 15 }
    else Network.default_config
  in
  let config =
    {
      Agent.default_config with
      Agent.learning = false;
      async_elaboration = async;
      net_config;
      tracer;
      engine_mode =
        Engine.Sim_mode
          { Sim.procs; queues = Parallel.Multiple_queues; collect_trace = trace };
    }
  in
  let agent = w.Workload.make ~config () in
  let summary = Agent.run agent in
  (agent, summary)

let diagnose ?(procs = 11) (w : Workload.t) =
  let tracer = Trace.create () in
  let agent, summary =
    run_without ~tracer w ~procs ~trace:true ~async:false ~bilinear:false
  in
  let cycles = List.filter (fun (s : Cycle.stats) -> s.Cycle.tasks > 0) summary.Agent.match_stats in
  let small =
    List.length (List.filter (fun (s : Cycle.stats) -> s.Cycle.tasks < small_cycle_tasks) cycles)
  in
  let big = List.filter (fun (s : Cycle.stats) -> s.Cycle.tasks >= small_cycle_tasks) cycles in
  let ratios = List.map tail_ratio big in
  let long_tails = List.length (List.filter (fun r -> r > tail_ratio_threshold) ratios) in
  let avg_ratio =
    match ratios with
    | [] -> 0.
    | _ -> List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)
  in
  let net = Agent.network agent in
  let deepest =
    Network.productions net
    |> List.map (fun pm ->
           ( Psme_support.Sym.name pm.Network.meta_production.Psme_ops5.Production.name,
             chain_depth net pm.Network.pnode ))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 5)
  in
  let has_deep = List.exists (fun (_, d) -> d >= deep_chain_threshold) deepest in
  (* profiler evidence: rebuild each cycle's spawn DAG from the event
     stream and measure the longest task chain — the hard floor on the
     cycle's makespan whatever the processor count *)
  let reports = Critical_path.per_cycle (Trace.events tracer) in
  let cp_ratio =
    let withspan =
      List.filter (fun r -> r.Critical_path.cp_makespan_us > 0.) reports
    in
    match withspan with
    | [] -> 0.
    | _ ->
      List.fold_left
        (fun a r -> a +. (r.Critical_path.cp_us /. r.Critical_path.cp_makespan_us))
        0. withspan
      /. float_of_int (List.length withspan)
  in
  let cp_bound, chain_prod =
    match Critical_path.longest reports with
    | None -> (Float.infinity, None)
    | Some r ->
      let owners = Observe.node_prods net r.Critical_path.cp_head_node in
      let prod =
        match owners with
        | name :: _ -> Some (name, r.Critical_path.cp_us)
        | [] -> None
      in
      (Critical_path.bound_speedup r, prod)
  in
  (* the speedup-loss ledger: where the processor-time between ideal
     P× and the achieved schedule actually went *)
  let cost = (Agent.config agent).Agent.cost in
  let ledgers =
    Attribution.per_cycle ~procs ~queue_op_us:cost.Cost.queue_op_us
      (Trace.events tracer)
  in
  let ledger = Attribution.totals ledgers in
  let dominant, dominant_us =
    if ledger.Attribution.t_cycles = 0 then ("", 0.)
    else Attribution.totals_dominant ledger
  in
  {
    d_task = w.Workload.name;
    d_procs = procs;
    d_cycles = List.length cycles;
    d_small_cycles = small;
    d_long_tail_cycles = long_tails;
    d_avg_tail_ratio = avg_ratio;
    d_deepest = deepest;
    d_cp_ratio = cp_ratio;
    d_cp_bound = cp_bound;
    d_chain_prod = chain_prod;
    (* a chain deep enough to restructure, plus any sign of serial tails *)
    d_recommend_bilinear = has_deep && (long_tails > 0 || avg_ratio > 0.05);
    (* synchronization overhead dominates when a quarter of the cycles
       are too small to keep the processes busy *)
    d_recommend_async =
      float_of_int small > 0.25 *. float_of_int (max 1 (List.length cycles));
    d_baseline_speedup = speedup summary.Agent.match_stats;
    d_ledger = ledger;
    d_dominant = dominant;
    d_dominant_share =
      (if ledger.Attribution.t_gap_us <= 0. then 0.
       else dominant_us /. ledger.Attribution.t_gap_us);
    d_worst = Attribution.worst ledgers;
  }

type tuning_result = {
  t_before : float;
  t_after : float;
  t_applied : string list;
}

let apply_recommendations (w : Workload.t) d =
  let applied =
    (if d.d_recommend_bilinear then [ "bilinear networks (>= 15 CEs)" ] else [])
    @ (if d.d_recommend_async then [ "asynchronous elaboration" ] else [])
  in
  match applied with
  | [] -> { t_before = d.d_baseline_speedup; t_after = d.d_baseline_speedup; t_applied = [] }
  | _ ->
    let _, summary =
      run_without w ~procs:d.d_procs ~trace:false ~async:d.d_recommend_async
        ~bilinear:d.d_recommend_bilinear
    in
    {
      t_before = d.d_baseline_speedup;
      t_after = speedup summary.Agent.match_stats;
      t_applied = applied;
    }

let pp ppf d =
  Format.fprintf ppf "task             %s (%d simulated processes)@." d.d_task d.d_procs;
  Format.fprintf ppf "cycles           %d (%d small, %d with long serial tails)@."
    d.d_cycles d.d_small_cycles d.d_long_tail_cycles;
  Format.fprintf ppf "avg tail ratio   %.2f of large-cycle time at <=%d concurrent tasks@."
    d.d_avg_tail_ratio tail_concurrency;
  Format.fprintf ppf "baseline speedup %.2f@." d.d_baseline_speedup;
  Format.fprintf ppf
    "critical path    %.2f of a cycle's makespan on the longest spawn chain@."
    d.d_cp_ratio;
  (match d.d_chain_prod with
  | Some (name, us) ->
    Format.fprintf ppf
      "                 worst chain ends in %s (%.0f us; chain-limited speedup %.2f)@."
      name us d.d_cp_bound
  | None -> ());
  (if d.d_dominant <> "" then begin
     let t = d.d_ledger in
     Format.fprintf ppf
       "speedup loss     %s: %.0f%% of the %.0f us gap to ideal %d-proc time@."
       (Attribution.component_label d.d_dominant)
       (100. *. d.d_dominant_share)
       t.Attribution.t_gap_us d.d_procs;
     Format.fprintf ppf
       "                 ledger: chain %.0f us, imbalance %.0f us, queue %.0f us, lock %.0f us@."
       t.Attribution.t_cp_residual_us t.Attribution.t_imbalance_us
       t.Attribution.t_queue_us t.Attribution.t_lock_us;
     match d.d_worst with
     | Some w ->
       Format.fprintf ppf
         "                 worst cycle %d loses %.0f us (%s; chain %.0f us of %.0f us makespan)@."
         w.Attribution.a_cycle w.Attribution.a_gap_us
         (Attribution.component_label (fst (Attribution.dominant w)))
         w.Attribution.a_cp_us w.Attribution.a_makespan_us
     | None -> ()
   end);
  Format.fprintf ppf "deepest chains:@.";
  List.iter (fun (name, depth) -> Format.fprintf ppf "  %-40s depth %d@." name depth)
    d.d_deepest;
  Format.fprintf ppf "recommendations: %s@."
    (match d.d_recommend_bilinear, d.d_recommend_async with
    | true, true -> "bilinear networks + asynchronous elaboration"
    | true, false -> "bilinear networks for the long chains"
    | false, true -> "asynchronous elaboration (small cycles dominate)"
    | false, false -> "none (parallelism is healthy)")
