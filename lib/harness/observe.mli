(** Bridges a compiled Rete network to the observability layer.

    {!Psme_obs} deliberately knows nothing about the Rete
    representation: the profiler and the Chrome-trace exporter take the
    node metadata as plain lookup functions. This module derives those
    functions from a {!Psme_rete.Network.t} — node kinds, human-readable
    node names, and the node → owning-productions map (a shared node is
    owned by every production whose chain passes through it). *)

open Psme_rete
open Psme_obs

val node_kind : Network.t -> int -> string
(** ["entry"], ["join"], ["neg"], ["ncc"], ["ncc-partner"], ["bjoin"],
    ["pnode"]; ["?"] for ids not in the beta network (e.g. alpha
    sources). *)

val node_name : Network.t -> int -> string
(** E.g. ["join#12"]; P-nodes carry the production name,
    ["pnode#40(chunk-1)"]. *)

val node_prods : Network.t -> int -> string list
(** Productions whose chain passes through the node, in addition order.
    Computed once per call site (the table is built eagerly), so hoist
    the partial application out of loops. *)

val profile : Network.t -> Trace.event array -> Profile.t
(** {!Psme_obs.Profile.of_events} with this network's metadata. *)

val chrome_trace :
  ?ledgers:Attribution.ledger list ->
  Network.t ->
  Buffer.t ->
  Trace.event array ->
  unit
(** {!Psme_obs.Chrome_trace.to_buffer} with this network's node names
    (queue events included; [ledgers] adds the attribution counter
    track). *)
