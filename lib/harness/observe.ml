open Psme_support
open Psme_rete
open Psme_obs

let kind_name = function
  | Network.Entry -> "entry"
  | Network.Join _ -> "join"
  | Network.Neg _ -> "neg"
  | Network.Ncc _ -> "ncc"
  | Network.Ncc_partner _ -> "ncc-partner"
  | Network.Bjoin _ -> "bjoin"
  | Network.Pnode _ -> "pnode"

let node_kind net id =
  match Hashtbl.find_opt net.Network.beta id with
  | None -> "?"
  | Some n -> kind_name n.Network.kind

let node_name net id =
  match Hashtbl.find_opt net.Network.beta id with
  | None -> Printf.sprintf "node#%d" id
  | Some n -> (
    match n.Network.kind with
    | Network.Pnode pi ->
      Printf.sprintf "pnode#%d(%s)" id
        (Sym.name pi.Network.production.Psme_ops5.Production.name)
    | k -> Printf.sprintf "%s#%d" (kind_name k) id)

(* node id -> owning production names, via every chain that passes
   through it (shared nodes get all their owners) *)
let prod_table net =
  let tbl = Hashtbl.create 256 in
  let add id name =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl id) in
    if not (List.mem name prev) then Hashtbl.replace tbl id (name :: prev)
  in
  List.iter
    (fun pm ->
      let name = Sym.name pm.Network.meta_production.Psme_ops5.Production.name in
      List.iter (fun id -> add id name) pm.Network.chain;
      add pm.Network.pnode name)
    (Network.productions net);
  tbl

let node_prods net =
  let tbl = prod_table net in
  fun id -> List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl id))

let profile net events =
  Profile.of_events ~node_kind:(node_kind net) ~node_prods:(node_prods net) events

let chrome_trace ?ledgers net buf events =
  Chrome_trace.to_buffer ~node_name:(node_name net) ?ledgers buf events
